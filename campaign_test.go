package prochecker

import (
	"context"
	"strings"
	"testing"
	"time"

	"prochecker/internal/jobs"
)

func TestParseImplementationCaseInsensitive(t *testing.T) {
	cases := []struct {
		in   string
		want Implementation
	}{
		{"conformant", Conformant},
		{"CONFORMANT", Conformant},
		{"srsLTE", SRSLTE},
		{"srslte", SRSLTE},
		{"SRSLTE", SRSLTE},
		{"OAI", OAI},
		{"oai", OAI},
	}
	for _, c := range cases {
		got, err := ParseImplementation(c.in)
		if err != nil {
			t.Fatalf("ParseImplementation(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseImplementation(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseImplementationUnknownListsValidSet(t *testing.T) {
	_, err := ParseImplementation("amarisoft")
	if err == nil {
		t.Fatal("unknown implementation accepted")
	}
	for _, want := range []string{"amarisoft", "conformant", "srsLTE", "OAI"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestNormalizeJobSpecCanonicalises(t *testing.T) {
	got, err := NormalizeJobSpec(JobSpec{
		Impl:       "srslte",
		Faults:     "drop=0.15,corrupt=0",
		Seed:       42,
		Properties: []string{"S07", "S06", "S06"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Impl != "srsLTE" {
		t.Fatalf("Impl = %q, want canonical srsLTE", got.Impl)
	}
	if strings.Contains(got.Faults, "corrupt") {
		t.Fatalf("Faults = %q, want zero-probability stage dropped", got.Faults)
	}
	if strings.Join(got.Properties, ",") != "S06,S07" {
		t.Fatalf("Properties = %v, want sorted deduped [S06 S07]", got.Properties)
	}
	if got.Catalogue != CatalogueVersion() {
		t.Fatalf("Catalogue = %q, want %q", got.Catalogue, CatalogueVersion())
	}
	// Idempotent: normalizing a normalized spec changes nothing.
	again, err := NormalizeJobSpec(got)
	if err != nil {
		t.Fatal(err)
	}
	if again.Key() != got.Key() {
		t.Fatal("NormalizeJobSpec is not idempotent")
	}
}

func TestNormalizeJobSpecRejectsBadInput(t *testing.T) {
	if _, err := NormalizeJobSpec(JobSpec{Impl: "nope"}); err == nil {
		t.Fatal("unknown implementation accepted")
	}
	if _, err := NormalizeJobSpec(JobSpec{Impl: "OAI", Faults: "bogus=1"}); err == nil {
		t.Fatal("bad fault spec accepted")
	}
	if _, err := NormalizeJobSpec(JobSpec{Impl: "OAI", Properties: []string{"S99"}}); err == nil {
		t.Fatal("unknown property accepted")
	}
}

// Equivalent submissions must collapse onto one key; materially
// different ones must not (the content-address is the dedup boundary).
func TestJobKeyEquivalenceAndDiscrimination(t *testing.T) {
	norm := func(s JobSpec) string {
		t.Helper()
		n, err := NormalizeJobSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		return n.Key()
	}
	base := norm(JobSpec{Impl: "srsLTE", Faults: "drop=0.15", Seed: 42, Properties: []string{"S06"}})
	if k := norm(JobSpec{Impl: "SRSLTE", Faults: "corrupt=0,drop=0.15", Seed: 42, Properties: []string{"S06", "S06"}}); k != base {
		t.Fatal("equivalent submission (case, fault-spec noise, duplicate property) missed the cache key")
	}
	if k := norm(JobSpec{Impl: "srsLTE", Faults: "drop=0.25", Seed: 42, Properties: []string{"S06"}}); k == base {
		t.Fatal("changed fault spec kept the same key")
	}
	if k := norm(JobSpec{Impl: "srsLTE", Faults: "drop=0.15", Seed: 43, Properties: []string{"S06"}}); k == base {
		t.Fatal("changed seed kept the same key")
	}
}

// The differential guarantee behind caching: running the same spec
// twice yields byte-identical stored verdict JSON, so a cache hit is
// indistinguishable from a fresh computation.
func TestRunJobDeterministicBytes(t *testing.T) {
	spec := JobSpec{Impl: "srsLTE", Faults: "drop=0.15", Seed: 42, Properties: []string{"S06"}}
	ctx := context.Background()
	a, err := RunJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := a.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Fatalf("same spec produced different canonical bytes:\n%s\nvs\n%s", ab, bb)
	}
	if len(a.Verdicts) != 1 || a.Verdicts[0].ID != "S06" {
		t.Fatalf("verdicts = %+v, want exactly S06", a.Verdicts)
	}
}

func TestCampaignSpecJobsMatrix(t *testing.T) {
	spec := CampaignSpec{
		Impls:      []string{"conformant", "srslte", "OAI"},
		Faults:     []string{"", "drop=0.15"},
		Seed:       42,
		Properties: []string{"S06"},
	}
	specs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("matrix expanded to %d jobs, want 6", len(specs))
	}
	labels := make([]string, 0, len(specs))
	for _, s := range specs {
		labels = append(labels, JobLabel(s))
	}
	want := "conformant conformant+drop=0.15 srsLTE srsLTE+drop=0.15 OAI OAI+drop=0.15"
	if got := strings.Join(labels, " "); got != want {
		t.Fatalf("labels = %q, want %q", got, want)
	}
	keys := make(map[string]bool)
	for _, s := range specs {
		keys[s.Key()] = true
	}
	if len(keys) != 6 {
		t.Fatalf("matrix cells share keys: %d unique of 6", len(keys))
	}

	// Empty fault list means one benign column per implementation.
	benign, err := CampaignSpec{Impls: []string{"OAI"}, Seed: 1}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(benign) != 1 || benign[0].Faults != "" {
		t.Fatalf("benign campaign = %+v, want one faultless job", benign)
	}

	if _, err := (CampaignSpec{Seed: 1}).Jobs(); err == nil {
		t.Fatal("empty implementation list accepted")
	}
}

func TestCatalogueVersionStable(t *testing.T) {
	v := CatalogueVersion()
	if len(v) != 12 {
		t.Fatalf("CatalogueVersion() = %q, want 12 hex chars", v)
	}
	if v != CatalogueVersion() {
		t.Fatal("CatalogueVersion() not stable across calls")
	}
}

// A job service wired with the real runner must serve a repeated spec
// from the store with byte-identical content (the tentpole's dedup
// guarantee, end to end).
func TestServiceDedupWithRealRunner(t *testing.T) {
	store, err := jobs.OpenStore(t.TempDir(), 16)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := jobs.New(jobs.Config{
		Runner:    JobRunner(2),
		Normalize: NormalizeJobSpec,
		Store:     store,
		Workers:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	spec := JobSpec{Impl: "srslte", Faults: "drop=0.15", Seed: 42, Properties: []string{"S06"}}
	first, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil := time.Now().Add(30 * time.Second)
	for {
		j, _ := svc.Get(first.ID)
		if j.Terminal() {
			first = j
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatal("job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if first.State != jobs.StateDone {
		t.Fatalf("first job state = %s (error %q), want done", first.State, first.Error)
	}

	second, err := svc.Submit(JobSpec{Impl: "SRSLTE", Faults: "drop=0.15,corrupt=0", Seed: 42, Properties: []string{"S06", "S06"}})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.State != jobs.StateDone {
		t.Fatalf("equivalent resubmission state=%s cacheHit=%v, want instant cache hit", second.State, second.CacheHit)
	}
	fb, err := first.Result.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := second.Result.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(fb) != string(sb) {
		t.Fatal("cached result differs from fresh result")
	}
}
