package prochecker

import (
	"strings"
	"testing"
)

func TestPropertiesCatalogue(t *testing.T) {
	all := Properties()
	if len(all) != 62 {
		t.Fatalf("properties = %d, want 62", len(all))
	}
	common := 0
	for _, p := range all {
		if p.CommonLTEInspector != "" {
			common++
		}
	}
	if common != 14 {
		t.Errorf("common properties = %d, want 14", common)
	}
}

func TestAnalyzeUnknownImplementation(t *testing.T) {
	if _, err := Analyze("nokia"); err == nil {
		t.Error("unknown implementation accepted")
	}
}

func TestAnalyzePipeline(t *testing.T) {
	a, err := Analyze(SRSLTE)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a.Implementation() != SRSLTE {
		t.Errorf("Implementation = %v", a.Implementation())
	}
	s, c, _, tr := a.ModelSize()
	if s < 4 || c < 5 || tr < 10 {
		t.Errorf("model suspiciously small: %d states, %d conditions, %d transitions", s, c, tr)
	}
	if !strings.Contains(a.FSMDOT(), "digraph") {
		t.Error("FSMDOT not DOT")
	}
	if !strings.Contains(a.SMV(), "MODULE main") {
		t.Error("SMV output malformed")
	}
	if !strings.Contains(a.Coverage(), "coverage") {
		t.Error("coverage summary malformed")
	}
	if !strings.Contains(a.Log(), "[FUNC]") {
		t.Error("log rendering malformed")
	}
}

func TestCheckPropertyP1(t *testing.T) {
	a, err := Analyze(Conformant)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := a.CheckProperty("S06")
	if err != nil {
		t.Fatalf("CheckProperty: %v", err)
	}
	if !res.AttackFound {
		t.Errorf("P1 not found: %s", res.Detail)
	}
	if _, err := a.CheckProperty("XX99"); err == nil {
		t.Error("unknown property accepted")
	}
}

func TestValidateAttacks(t *testing.T) {
	p1, err := ValidateP1(OAI)
	if err != nil {
		t.Fatalf("ValidateP1: %v", err)
	}
	if !p1.Succeeded() {
		t.Errorf("P1 validation failed: %+v", p1)
	}
	p3, err := ValidateP3(Conformant)
	if err != nil {
		t.Fatalf("ValidateP3: %v", err)
	}
	if !p3.Succeeded() {
		t.Errorf("P3 validation failed: %+v", p3)
	}
	if _, err := ValidateP1("bogus"); err == nil {
		t.Error("bogus implementation accepted")
	}
}
