package prochecker

import (
	"context"
	"testing"

	"prochecker/internal/obs"
)

// TestCheckAllWithObserver is the observability acceptance test: a full
// catalogue run over a worker pool with an observer attached yields a
// manifest whose span tree covers every pipeline phase and whose
// registry carries the core metrics. Under -race it also hammers the
// registry and span tree from the evaluator's worker pool.
func TestCheckAllWithObserver(t *testing.T) {
	o := obs.New()
	a, err := AnalyzeContext(context.Background(), Conformant,
		WithWorkers(4), WithObserver(o))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a.Observer() != o {
		t.Fatal("Observer() should return the attached observer")
	}
	results, err := a.CheckAll()
	if err != nil {
		t.Fatalf("CheckAll: %v", err)
	}
	total := len(Properties())
	if len(results) != total {
		t.Fatalf("completed %d of %d properties", len(results), total)
	}

	m := o.Manifest()
	names := map[string]bool{}
	for _, n := range m.Spans.Names() {
		names[n] = true
	}
	for _, phase := range []string{
		"run", "analyze", "pipeline.build_model", "conformance.suite",
		"extract.model", "threat.compose", "check.catalogue",
		"property.evaluate", "cegar.verify", "cegar.iteration",
		"mc.explore", "equivalence.scenario",
	} {
		if !names[phase] {
			t.Errorf("manifest span tree missing phase %q (have %v)", phase, m.Spans.Names())
		}
	}

	counter := func(name string) int64 {
		v, _ := m.Metrics[name].(int64)
		return v
	}
	if got := counter("report.properties_checked"); got != int64(total) {
		t.Errorf("report.properties_checked = %d, want %d", got, total)
	}
	if counter("mc.states_explored") == 0 {
		t.Error("mc.states_explored not recorded")
	}
	if counter("mc.explorations") == 0 {
		t.Error("mc.explorations not recorded")
	}
	if counter("mc.graph_cache_hits")+counter("mc.graph_cache_misses") == 0 {
		t.Error("graph cache hit/miss counters not recorded")
	}
	if counter("cegar.iterations") == 0 {
		t.Error("cegar.iterations not recorded")
	}
	if counter("conformance.cases") == 0 {
		t.Error("conformance.cases not recorded")
	}
	hist, ok := m.Metrics["report.property_check_ms"].(obs.HistogramSnapshot)
	if !ok {
		t.Fatalf("report.property_check_ms missing or wrong type: %T", m.Metrics["report.property_check_ms"])
	}
	if hist.Count != int64(total) {
		t.Errorf("property latency histogram count = %d, want %d", hist.Count, total)
	}
	checks, ok := m.Metrics["mc.check_ms"].(obs.HistogramSnapshot)
	if !ok || checks.Count == 0 {
		t.Errorf("mc.check_ms histogram missing or empty: %+v", m.Metrics["mc.check_ms"])
	}

	// Per-property latency gauges exist for every catalogue entry.
	for _, p := range Properties() {
		if _, ok := m.Metrics["report.check_ms."+p.ID]; !ok {
			t.Errorf("missing per-property latency gauge for %s", p.ID)
		}
	}
}

// TestAnalyzeWithoutObserver guards the zero-cost-when-disabled
// contract at the API level: the default path carries no observer and
// still works end to end.
func TestAnalyzeWithoutObserver(t *testing.T) {
	a, err := Analyze(Conformant, WithObserver(nil))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a.Observer() != nil {
		t.Fatal("Observer() should be nil when none was attached")
	}
	r, err := a.CheckProperty("S06")
	if err != nil {
		t.Fatalf("CheckProperty: %v", err)
	}
	if r.ID != "S06" {
		t.Fatalf("result = %+v", r)
	}
}
