#!/usr/bin/env bash
# Tier-1 CI for the repo: static checks, the full test suite under the
# race detector, and the fault-injection benchmark baseline.
#
#   ./ci.sh          # vet + build + race tests + refresh BENCH_faults.json + BENCH_mc.json
#   ./ci.sh quick    # vet + build + plain tests (no race, no bench)
set -euo pipefail
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

if [[ "${1:-}" == "quick" ]]; then
    echo "== go test =="
    go test ./...
    exit 0
fi

echo "== go test -race =="
go test -race ./...

echo "== fault-injection bench baseline =="
bench_out=$(go test -run '^$' -bench 'BenchmarkConformance(Faults|Benign)$' -benchtime 20x .)
echo "$bench_out"

# Render the benchmark lines into BENCH_faults.json:
#   BenchmarkConformanceFaults   20   4522434 ns/op
echo "$bench_out" | awk '
BEGIN { print "{"; print "  \"series\": \"fault-injected conformance suite (srsLTE, drop=0.10 corrupt=0.10, seed 42)\","; print "  \"benchmarks\": [" }
/^Benchmark/ {
    gsub(/-[0-9]+$/, "", $1)
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $1, $2, $3)
    lines[n++] = line
}
END {
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    print "  ]"; print "}"
}' > BENCH_faults.json
echo "wrote BENCH_faults.json"

echo "== model-checker bench baseline =="
mc_bench_out=$(go test -run '^$' -bench 'BenchmarkCheckAll(Sequential|Parallel)$|BenchmarkCEGARVerifyAll$' -benchtime 3x .)
echo "$mc_bench_out"

# Render into BENCH_mc.json, with the sequential/parallel speedup the
# acceptance criterion reads (engine CheckAll vs per-property BFS):
#   BenchmarkCheckAllSequential   3   6522434123 ns/op
echo "$mc_bench_out" | awk '
BEGIN { print "{"; print "  \"series\": \"shared-frontier model checking, full MC catalogue (conformant profile)\","; print "  \"benchmarks\": [" }
/^Benchmark/ {
    gsub(/-[0-9]+$/, "", $1)
    ns[$1] = $3
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $1, $2, $3)
    lines[n++] = line
}
END {
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    print "  ],"
    if (ns["BenchmarkCheckAllSequential"] > 0 && ns["BenchmarkCheckAllParallel"] > 0)
        printf "  \"checkall_speedup_vs_sequential\": %.2f\n", ns["BenchmarkCheckAllSequential"] / ns["BenchmarkCheckAllParallel"]
    else
        print "  \"checkall_speedup_vs_sequential\": null"
    print "}"
}' > BENCH_mc.json
echo "wrote BENCH_mc.json"
