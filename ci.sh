#!/usr/bin/env bash
# Tier-1 CI for the repo: static checks (gofmt, vet, the custom
# srccheck source lint), the full test suite under the race detector,
# the model-lint gate over all three shipped profiles, the smoke runs,
# and the benchmark baselines.
#
#   ./ci.sh          # static checks + race tests + model-lint gate + smokes + refresh BENCH_*.json
#   ./ci.sh quick    # static checks + plain tests (no race, no gate, no smoke, no bench)
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: files need formatting:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== srccheck (custom source lint) =="
go run ./cmd/srccheck .

if [[ "${1:-}" == "quick" ]]; then
    echo "== go test =="
    go test -count=1 -shuffle=on ./...
    exit 0
fi

echo "== go test -race =="
go test -race -count=1 -shuffle=on ./...

echo "== model-lint gate =="
# Every shipped profile must lint clean at ERROR severity on a benign
# extraction; the CLI exits 6 (model-lint) otherwise.
lint_dir=$(mktemp -d)
trap 'rm -rf "$lint_dir"' EXIT
go build -o "$lint_dir/prochecker" ./cmd/prochecker
lint_start_ms=$(($(date +%s%N) / 1000000))
for impl in conformant srsLTE OAI; do
    "$lint_dir/prochecker" -impl "$impl" -lint -quiet > "$lint_dir/$impl.lint" \
        || { echo "model-lint gate: $impl failed"; cat "$lint_dir/$impl.lint"; exit 1; }
done
lint_end_ms=$(($(date +%s%N) / 1000000))
grep -q "no diagnostics\|info(s)" "$lint_dir/conformant.lint" \
    || { echo "model-lint gate: conformant report malformed"; exit 1; }
echo "model-lint gate OK (3 profiles clean at error severity, $((lint_end_ms - lint_start_ms)) ms)"

echo "== dataflow lint gate =="
# The PC1xx dataflow family must discriminate the shipped profiles: the
# conformant extraction carries no plaintext-identity exposure, while
# srsLTE and OAI each reproduce at least one known leak (cleartext SQN
# in the srsLTE auth_request, GUTI/IMSI on plaintext channels in OAI).
if grep -q "PC101" "$lint_dir/conformant.lint"; then
    echo "dataflow gate: conformant reported a PC101 plaintext-identity exposure"
    cat "$lint_dir/conformant.lint"; exit 1
fi
for impl in srsLTE OAI; do
    grep -q "PC101" "$lint_dir/$impl.lint" \
        || { echo "dataflow gate: $impl reported no PC101 plaintext-identity exposure"; cat "$lint_dir/$impl.lint"; exit 1; }
done
# The dataflow passes run to a fixpoint over maps — a second lint of the
# same model must render byte-identical diagnostics.
for impl in conformant srsLTE OAI; do
    "$lint_dir/prochecker" -impl "$impl" -lint -quiet > "$lint_dir/$impl.lint2" \
        || { echo "dataflow gate: $impl relint failed"; cat "$lint_dir/$impl.lint2"; exit 1; }
    diff -u "$lint_dir/$impl.lint" "$lint_dir/$impl.lint2" > /dev/null \
        || { echo "dataflow gate: $impl lint output is nondeterministic"; diff -u "$lint_dir/$impl.lint" "$lint_dir/$impl.lint2"; exit 1; }
done
echo "dataflow lint gate OK (conformant PC101-clean, srsLTE/OAI exposures reproduced deterministically)"

echo "== observability smoke =="
# Start a real run with the live metrics endpoint, scrape /debug/vars
# from outside while -serve-wait keeps it up, and assert the core
# pipeline metrics and a well-formed manifest came out.
smoke_dir=$(mktemp -d)
smoke_pid=""
cleanup_smoke() {
    [[ -n "$smoke_pid" ]] && kill "$smoke_pid" 2>/dev/null || true
    [[ -n "${worker_a_pid:-}" ]] && kill "$worker_a_pid" 2>/dev/null || true
    [[ -n "${worker_b_pid:-}" ]] && kill "$worker_b_pid" 2>/dev/null || true
    rm -rf "$smoke_dir" "$lint_dir"
}
trap cleanup_smoke EXIT
go build -o "$smoke_dir/prochecker" ./cmd/prochecker
"$smoke_dir/prochecker" -impl conformant -check S06 -quiet \
    -manifest "$smoke_dir/run.json" -metrics-addr 127.0.0.1:0 -serve-wait \
    2> "$smoke_dir/stderr.log" &
smoke_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*serving metrics on http://\([^/]*\)/debug/vars.*#\1#p' "$smoke_dir/stderr.log" | head -1)
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "smoke: metrics endpoint never came up"; cat "$smoke_dir/stderr.log"; exit 1; }
# The manifest is written when the run body completes, before
# -serve-wait parks the process; wait for it so the scrape sees final
# counts.
for _ in $(seq 1 600); do
    [[ -s "$smoke_dir/run.json" ]] && break
    sleep 0.1
done
[[ -s "$smoke_dir/run.json" ]] || { echo "smoke: manifest never appeared"; exit 1; }
vars=$(curl -sf "http://$addr/debug/vars")
for metric in mc.states_explored mc.graph_cache_misses mc.check_ms \
              report.properties_checked cegar.iterations conformance.cases; do
    grep -q "$metric" <<<"$vars" || { echo "smoke: /debug/vars missing $metric"; exit 1; }
done
grep -q '"tool": "prochecker"' "$smoke_dir/run.json" || { echo "smoke: manifest malformed"; exit 1; }
kill "$smoke_pid" && wait "$smoke_pid" 2>/dev/null || true
smoke_pid=""
echo "observability smoke OK (scraped http://$addr/debug/vars)"

echo "== job-service smoke =="
# Boot the batch-analysis service, drive a 2-profile campaign through
# the HTTP API, assert the queue/cache metrics surfaced on /debug/vars,
# prove the content-addressed store serves a resubmission, and drain
# with SIGTERM.
serve_store="$smoke_dir/store"
"$smoke_dir/prochecker" -serve 127.0.0.1:0 -store "$serve_store" -workers 2 \
    2> "$smoke_dir/serve.log" &
smoke_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*serving jobs API on http://\([^/]*\)/v1/jobs.*#\1#p' "$smoke_dir/serve.log" | head -1)
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "smoke: jobs API never came up"; cat "$smoke_dir/serve.log"; exit 1; }

campaign_body='{"campaign": {"impls": ["conformant", "srsLTE"], "faults": ["", "drop=0.15"], "seed": 42, "properties": ["S06"]}}'
campaign_id=$(curl -sf -X POST -H 'Content-Type: application/json' \
    -d "$campaign_body" "http://$addr/v1/jobs" | sed -n 's/.*"id": *"\(c-[0-9]*\)".*/\1/p')
[[ -n "$campaign_id" ]] || { echo "smoke: campaign submission failed"; exit 1; }
state=""
for _ in $(seq 1 600); do
    state=$(curl -sf "http://$addr/v1/campaigns/$campaign_id" | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' | head -1)
    [[ "$state" == "done" || "$state" == "failed" || "$state" == "cancelled" ]] && break
    sleep 0.1
done
[[ "$state" == "done" ]] || { echo "smoke: campaign ended $state, want done"; exit 1; }

vars=$(curl -sf "http://$addr/debug/vars")
for metric in jobs.queue_latency_ms jobs.cache_misses jobs.submitted jobs.completed; do
    grep -q "$metric" <<<"$vars" || { echo "smoke: /debug/vars missing $metric"; exit 1; }
done

# Resubmit the same matrix: every cell must come out of the store.
curl -sf -X POST -H 'Content-Type: application/json' \
    -d "$campaign_body" "http://$addr/v1/jobs" > /dev/null
hits=$(curl -sf "http://$addr/debug/vars" | tr ',' '\n' | sed -n 's/.*"jobs.cache_hits": *\([0-9]*\).*/\1/p' | head -1)
[[ "${hits:-0}" -ge 1 ]] || { echo "smoke: resubmission produced no cache hits"; exit 1; }

kill -TERM "$smoke_pid"
drain_rc=0
wait "$smoke_pid" || drain_rc=$?
smoke_pid=""
[[ "$drain_rc" -eq 0 ]] || { echo "smoke: SIGTERM drain exited $drain_rc, want 0"; cat "$smoke_dir/serve.log"; exit 1; }
echo "job-service smoke OK (campaign $campaign_id done, ${hits} cache hit(s), clean drain)"

echo "== live-streaming smoke =="
# Boot the service with its event bus, validate the Prometheus scrape
# with the in-repo format checker, tail a campaign's SSE stream while
# it runs (lifecycle events must arrive before completion), replay the
# retained history, follow a campaign from the CLI, and replay a
# sealed flight recording after the drain.
go build -o "$smoke_dir/promcheck" ./cmd/promcheck
stream_store="$smoke_dir/stream-store"
"$smoke_dir/prochecker" -serve 127.0.0.1:0 -store "$stream_store" -workers 2 \
    2> "$smoke_dir/stream-serve.log" &
smoke_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*serving jobs API on http://\([^/]*\)/v1/jobs.*#\1#p' "$smoke_dir/stream-serve.log" | head -1)
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "smoke: streaming jobs API never came up"; cat "$smoke_dir/stream-serve.log"; exit 1; }

curl -sf "http://$addr/metrics" | "$smoke_dir/promcheck" > /dev/null \
    || { echo "smoke: cold /metrics scrape failed validation"; exit 1; }

campaign_id=$(curl -sf -X POST -H 'Content-Type: application/json' \
    -d "$campaign_body" "http://$addr/v1/jobs" | sed -n 's/.*"id": *"\(c-[0-9]*\)".*/\1/p')
[[ -n "$campaign_id" ]] || { echo "smoke: streaming campaign submission failed"; exit 1; }
curl -sN --max-time 120 "http://$addr/v1/campaigns/$campaign_id/events" \
    > "$smoke_dir/events.sse" &
stream_curl_pid=$!
saw_live=""
state=""
for _ in $(seq 1 600); do
    if [[ -z "$saw_live" ]] && grep -q '"type":"job"' "$smoke_dir/events.sse" 2>/dev/null; then
        saw_live=$(curl -sf "http://$addr/v1/campaigns/$campaign_id" \
            | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' | head -1)
    fi
    state=$(curl -sf "http://$addr/v1/campaigns/$campaign_id" | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' | head -1)
    [[ "$state" == "done" || "$state" == "failed" || "$state" == "cancelled" ]] && break
    sleep 0.1
done
[[ "$state" == "done" ]] || { echo "smoke: streamed campaign ended $state, want done"; exit 1; }
[[ -n "$saw_live" ]] \
    || { echo "smoke: no job lifecycle event arrived over SSE before the campaign completed"; cat "$smoke_dir/events.sse"; exit 1; }
# The stream must deliver the synthetic campaign summary and close by
# itself (curl exits without hitting its --max-time).
for _ in $(seq 1 100); do
    grep -q '"type":"campaign".*"name":"done"' "$smoke_dir/events.sse" && break
    sleep 0.1
done
grep -q '"type":"campaign".*"name":"done"' "$smoke_dir/events.sse" \
    || { echo "smoke: SSE stream never delivered the campaign summary"; cat "$smoke_dir/events.sse"; exit 1; }
for _ in $(seq 1 100); do
    kill -0 "$stream_curl_pid" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$stream_curl_pid" 2>/dev/null \
    && { echo "smoke: SSE stream did not close after the terminal event"; exit 1; }
wait "$stream_curl_pid" 2>/dev/null || true

# Reconnect from the beginning of retention: the finished campaign
# replays its history (id: lines carry bus sequence numbers) and ends
# with the summary again.
replay=$(curl -sf --max-time 30 "http://$addr/v1/campaigns/$campaign_id/events?from=0" || true)
grep -q '"name":"running"' <<<"$replay" \
    || { echo "smoke: replayed stream is missing lifecycle history"; echo "$replay"; exit 1; }
grep -q '^id: ' <<<"$replay" \
    || { echo "smoke: replayed stream frames carry no SSE ids"; echo "$replay"; exit 1; }

# The warm /metrics scrape must validate and carry the event-bus and
# per-impl labelled families.
curl -sf "http://$addr/metrics" > "$smoke_dir/metrics.prom"
"$smoke_dir/promcheck" "$smoke_dir/metrics.prom" > /dev/null \
    || { echo "smoke: warm /metrics scrape failed validation"; exit 1; }
for family in prochecker_jobs_submitted prochecker_obs_events_published 'prochecker_jobs_terminal_by_impl{impl='; do
    grep -q "$family" "$smoke_dir/metrics.prom" \
        || { echo "smoke: /metrics missing $family"; cat "$smoke_dir/metrics.prom"; exit 1; }
done

# CLI -follow: resubmit the matrix (served from the store, so it
# settles immediately) and tail it to the final verdict table.
"$smoke_dir/prochecker" -server "http://$addr" -campaign "conformant,srsLTE" \
    -faults ";drop=0.15" -seed 42 -check S06 -follow \
    > "$smoke_dir/follow.out" 2> "$smoke_dir/follow.err" \
    || { echo "smoke: -follow run failed"; cat "$smoke_dir/follow.err"; exit 1; }
grep -q "campaign done" "$smoke_dir/follow.err" \
    || { echo "smoke: -follow tail never reported the campaign terminal"; cat "$smoke_dir/follow.err"; exit 1; }

kill -TERM "$smoke_pid"
wait "$smoke_pid" || { echo "smoke: streaming server drain failed"; cat "$smoke_dir/stream-serve.log"; exit 1; }
smoke_pid=""

# Flight recordings sealed at job termination replay offline with their
# CRC verified.
flight=$(ls "$stream_store"/flight/j-*.jsonl 2>/dev/null | head -1)
[[ -n "$flight" ]] || { echo "smoke: no flight recordings under $stream_store/flight"; exit 1; }
"$smoke_dir/prochecker" -replay-flight "$flight" > "$smoke_dir/flight.out" \
    || { echo "smoke: flight replay failed"; cat "$smoke_dir/flight.out"; exit 1; }
grep -q "crc verified" "$smoke_dir/flight.out" \
    || { echo "smoke: flight replay did not verify the CRC footer"; cat "$smoke_dir/flight.out"; exit 1; }
echo "live-streaming smoke OK (campaign $campaign_id streamed live, /metrics valid, flight $(basename "$flight") replayed)"

echo "== crash-recovery smoke =="
# SIGKILL the durable (-wal) service mid-campaign, restart it on the
# same store+WAL directories, and assert nothing was lost: the campaign
# finishes under its original ID with its original job set, and a
# resubmission of the same matrix is served from the store.
wal_dir="$smoke_dir/wal"
crash_store="$smoke_dir/crash-store"
"$smoke_dir/prochecker" -serve 127.0.0.1:0 -store "$crash_store" -wal "$wal_dir" -workers 2 \
    2> "$smoke_dir/crash.log" &
smoke_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*serving jobs API on http://\([^/]*\)/v1/jobs.*#\1#p' "$smoke_dir/crash.log" | head -1)
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "smoke: durable jobs API never came up"; cat "$smoke_dir/crash.log"; exit 1; }

campaign_id=$(curl -sf -X POST -H 'Content-Type: application/json' \
    -d "$campaign_body" "http://$addr/v1/jobs" | sed -n 's/.*"id": *"\(c-[0-9]*\)".*/\1/p')
[[ -n "$campaign_id" ]] || { echo "smoke: durable campaign submission failed"; exit 1; }
jobs_before=$(curl -sf "http://$addr/v1/campaigns/$campaign_id" | grep -o '"j-[0-9]*"' | sort -u)
sleep 0.3    # let some cells start, then crash hard
kill -9 "$smoke_pid"
wait "$smoke_pid" 2>/dev/null || true
smoke_pid=""

"$smoke_dir/prochecker" -serve 127.0.0.1:0 -store "$crash_store" -wal "$wal_dir" -workers 2 \
    2> "$smoke_dir/crash2.log" &
smoke_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*serving jobs API on http://\([^/]*\)/v1/jobs.*#\1#p' "$smoke_dir/crash2.log" | head -1)
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "smoke: restarted jobs API never came up"; cat "$smoke_dir/crash2.log"; exit 1; }
grep -q "wal recovery from" "$smoke_dir/crash2.log" \
    || { echo "smoke: restart printed no WAL recovery banner"; cat "$smoke_dir/crash2.log"; exit 1; }

state=""
for _ in $(seq 1 600); do
    state=$(curl -sf "http://$addr/v1/campaigns/$campaign_id" | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' | head -1)
    [[ "$state" == "done" || "$state" == "failed" || "$state" == "cancelled" ]] && break
    sleep 0.1
done
[[ "$state" == "done" ]] || { echo "smoke: resumed campaign ended ${state:-lost}, want done"; cat "$smoke_dir/crash2.log"; exit 1; }
jobs_after=$(curl -sf "http://$addr/v1/campaigns/$campaign_id" | grep -o '"j-[0-9]*"' | sort -u)
[[ "$jobs_before" == "$jobs_after" ]] \
    || { echo "smoke: job set changed across crash+restart"; echo "before: $jobs_before"; echo "after: $jobs_after"; exit 1; }

# Resubmit the same matrix: every cell must come out of the store.
curl -sf -X POST -H 'Content-Type: application/json' \
    -d "$campaign_body" "http://$addr/v1/jobs" > /dev/null
hits=$(curl -sf "http://$addr/debug/vars" | tr ',' '\n' | sed -n 's/.*"jobs.cache_hits": *\([0-9]*\).*/\1/p' | head -1)
[[ "${hits:-0}" -ge 4 ]] || { echo "smoke: resubmission after recovery produced ${hits:-0} cache hits, want >= 4"; exit 1; }

kill -TERM "$smoke_pid"
drain_rc=0
wait "$smoke_pid" || drain_rc=$?
smoke_pid=""
[[ "$drain_rc" -eq 0 ]] || { echo "smoke: post-recovery SIGTERM drain exited $drain_rc, want 0"; cat "$smoke_dir/crash2.log"; exit 1; }
grep -q "wal checkpointed" "$smoke_dir/crash2.log" \
    || { echo "smoke: drain printed no WAL checkpoint banner"; cat "$smoke_dir/crash2.log"; exit 1; }
echo "crash-recovery smoke OK (campaign $campaign_id survived SIGKILL, ${hits} cache hit(s) on resubmit)"

echo "== fleet smoke =="
# Boot a workerless coordinator, attach two fleet worker agents over the
# lease API, drive a campaign through them, prove both workers took
# leases, and assert a resubmission is served entirely from the store.
fleet_store="$smoke_dir/fleet-store"
fleet_wal="$smoke_dir/fleet-wal"
"$smoke_dir/prochecker" -serve 127.0.0.1:0 -store "$fleet_store" -wal "$fleet_wal" \
    -workers 0 -retries 3 -lease-ttl 10s \
    2> "$smoke_dir/fleet.log" &
smoke_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*serving jobs API on http://\([^/]*\)/v1/jobs.*#\1#p' "$smoke_dir/fleet.log" | head -1)
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "smoke: fleet coordinator never came up"; cat "$smoke_dir/fleet.log"; exit 1; }

"$smoke_dir/prochecker" -worker -server "http://$addr" -worker-id smoke-a -concurrency 1 \
    -snapshot-dir "$smoke_dir/fleet-snap-a" 2> "$smoke_dir/fleet-worker-a.log" &
worker_a_pid=$!
"$smoke_dir/prochecker" -worker -server "http://$addr" -worker-id smoke-b -concurrency 1 \
    -snapshot-dir "$smoke_dir/fleet-snap-b" 2> "$smoke_dir/fleet-worker-b.log" &
worker_b_pid=$!

campaign_id=$(curl -sf -X POST -H 'Content-Type: application/json' \
    -d "$campaign_body" "http://$addr/v1/jobs" | sed -n 's/.*"id": *"\(c-[0-9]*\)".*/\1/p')
[[ -n "$campaign_id" ]] || { echo "smoke: fleet campaign submission failed"; exit 1; }
state=""
for _ in $(seq 1 600); do
    state=$(curl -sf "http://$addr/v1/campaigns/$campaign_id" | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' | head -1)
    [[ "$state" == "done" || "$state" == "failed" || "$state" == "cancelled" ]] && break
    sleep 0.1
done
[[ "$state" == "done" ]] || { echo "smoke: fleet campaign ended ${state:-lost}, want done"; cat "$smoke_dir/fleet.log"; exit 1; }

# Both workers must have taken leases: the per-worker gauge families
# exist on /metrics, and every completed job is attributed to one.
fleet_metrics=$(curl -sf "http://$addr/metrics")
for w in smoke-a smoke-b; do
    grep -q "prochecker_jobs_leases_active{worker=\"$w\"}" <<<"$fleet_metrics" \
        || { echo "smoke: worker $w never took a lease"; grep leases_active <<<"$fleet_metrics"; exit 1; }
done
grep -q 'prochecker_dist_leases_granted [1-9]' <<<"$fleet_metrics" \
    || { echo "smoke: no leases granted on the fleet coordinator"; exit 1; }
curl -sf "http://$addr/v1/jobs" | grep -q '"worker": *"smoke-' \
    || { echo "smoke: completed jobs carry no worker attribution"; exit 1; }

# Resubmit the same matrix: every cell must come out of the store, with
# no new leases handed out for cached work.
granted_before=$(sed -n 's/^prochecker_dist_leases_granted \([0-9]*\)$/\1/p' <<<"$fleet_metrics")
curl -sf -X POST -H 'Content-Type: application/json' \
    -d "$campaign_body" "http://$addr/v1/jobs" > /dev/null
hits=$(curl -sf "http://$addr/debug/vars" | tr ',' '\n' | sed -n 's/.*"jobs.cache_hits": *\([0-9]*\).*/\1/p' | head -1)
[[ "${hits:-0}" -ge 4 ]] || { echo "smoke: fleet resubmission produced ${hits:-0} cache hits, want >= 4"; exit 1; }
sleep 0.5
granted_after=$(curl -sf "http://$addr/metrics" | sed -n 's/^prochecker_dist_leases_granted \([0-9]*\)$/\1/p')
[[ "$granted_after" == "$granted_before" ]] \
    || { echo "smoke: cached resubmission consumed leases ($granted_before -> $granted_after)"; exit 1; }

kill -TERM "$worker_a_pid" "$worker_b_pid"
wait "$worker_a_pid" || { echo "smoke: worker smoke-a exited dirty"; cat "$smoke_dir/fleet-worker-a.log"; exit 1; }
wait "$worker_b_pid" || { echo "smoke: worker smoke-b exited dirty"; cat "$smoke_dir/fleet-worker-b.log"; exit 1; }
worker_a_pid="" worker_b_pid=""
kill -TERM "$smoke_pid"
drain_rc=0
wait "$smoke_pid" || drain_rc=$?
smoke_pid=""
[[ "$drain_rc" -eq 0 ]] || { echo "smoke: fleet coordinator drain exited $drain_rc, want 0"; cat "$smoke_dir/fleet.log"; exit 1; }
echo "fleet smoke OK (campaign $campaign_id done across 2 workers, ${hits} cache hit(s) on resubmit)"

echo "== memory-budget spill smoke =="
# Run a real check under a deliberately tiny resident-state budget and a
# constrained Go heap: the exploration must still complete (cold arena
# segments spill to the anonymous disk file) and the manifest must
# record that spilling actually happened.
spill_snap="$smoke_dir/spill-snap"
GOMEMLIMIT=128MiB "$smoke_dir/prochecker" -impl srsLTE -check S06 -quiet \
    -workers 2 -shards 4 -mem-budget 32768 -snapshot-dir "$spill_snap" \
    -manifest "$smoke_dir/spill.json" \
    || { echo "smoke: budgeted run failed"; exit 1; }
spill_bytes=$(sed -n 's/.*"mc.spill_bytes": *\([0-9]*\).*/\1/p' "$smoke_dir/spill.json" | head -1)
[[ "${spill_bytes:-0}" -ge 1 ]] \
    || { echo "smoke: no bytes spilled under the 32 KiB budget"; exit 1; }
# A second run over the completed-exploration snapshots must resume
# instead of recomputing, and still reach the same verdict set.
"$smoke_dir/prochecker" -impl srsLTE -check S06 -quiet \
    -workers 2 -shards 4 -mem-budget 32768 -snapshot-dir "$spill_snap" \
    -manifest "$smoke_dir/spill2.json" \
    || { echo "smoke: resumed budgeted run failed"; exit 1; }
resume_level=$(sed -n 's/.*"mc.resume_level": *\([0-9]*\).*/\1/p' "$smoke_dir/spill2.json" | head -1)
[[ "${resume_level:-0}" -ge 1 ]] \
    || { echo "smoke: second run did not resume from snapshots"; exit 1; }
echo "memory-budget spill smoke OK (${spill_bytes} bytes spilled under GOMEMLIMIT=128MiB, resumed at level ${resume_level})"

echo "== fault-injection bench baseline =="
bench_out=$(go test -run '^$' -bench 'BenchmarkConformance(Faults|Benign)$' -benchtime 20x .)
echo "$bench_out"

# Render the benchmark lines into BENCH_faults.json:
#   BenchmarkConformanceFaults   20   4522434 ns/op
echo "$bench_out" | awk '
BEGIN { print "{"; print "  \"series\": \"fault-injected conformance suite (srsLTE, drop=0.10 corrupt=0.10, seed 42)\","; print "  \"benchmarks\": [" }
/^Benchmark/ {
    gsub(/-[0-9]+$/, "", $1)
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $1, $2, $3)
    lines[n++] = line
}
END {
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    print "  ]"; print "}"
}' > BENCH_faults.json
echo "wrote BENCH_faults.json"

echo "== model-checker bench baseline =="
# Remember the committed speedup before regenerating, so the storage
# rework underneath the shared frontier can be gated against it below.
prev_speedup=$(sed -n 's/.*"checkall_speedup_vs_sequential": *\([0-9.]*\).*/\1/p' BENCH_mc.json 2>/dev/null | head -1)
mc_bench_out=$(go test -run '^$' -bench 'BenchmarkCheckAll(Sequential|Parallel)$|BenchmarkCEGARVerifyAll$' -benchtime 3x .)
echo "$mc_bench_out"

# Render into BENCH_mc.json, with the sequential/parallel speedup the
# acceptance criterion reads (engine CheckAll vs per-property BFS).
# Benchmark lines carry (value, unit) pairs from field 3 on — ns/op
# first, then any b.ReportMetric extras such as the graph-cache
# counters:
#   BenchmarkCheckAllParallel  3  652243412 ns/op  8.00 cache-hits/op  1.00 cache-misses/op
echo "$mc_bench_out" | awk '
BEGIN { print "{"; print "  \"series\": \"shared-frontier model checking, full MC catalogue (conformant profile)\","; print "  \"benchmarks\": [" }
/^Benchmark/ {
    gsub(/-[0-9]+$/, "", $1)
    ns[$1] = $3
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", $1, $2, $3)
    for (i = 5; i + 1 <= NF; i += 2) {
        unit = $(i+1)
        gsub(/\/op$/, "_per_op", unit)
        gsub(/-/, "_", unit)
        line = line sprintf(", \"%s\": %s", unit, $i)
    }
    line = line "}"
    lines[n++] = line
}
END {
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    print "  ],"
    if (ns["BenchmarkCheckAllSequential"] > 0 && ns["BenchmarkCheckAllParallel"] > 0)
        printf "  \"checkall_speedup_vs_sequential\": %.2f\n", ns["BenchmarkCheckAllSequential"] / ns["BenchmarkCheckAllParallel"]
    else
        print "  \"checkall_speedup_vs_sequential\": null"
    print "}"
}' > BENCH_mc.json
echo "wrote BENCH_mc.json"

# Regression gate: the arena/shard/spill storage layer must not cost the
# engine its parallel speedup — the refreshed number may not fall more
# than 10% below the committed baseline.
new_speedup=$(sed -n 's/.*"checkall_speedup_vs_sequential": *\([0-9.]*\).*/\1/p' BENCH_mc.json | head -1)
if [[ -n "$prev_speedup" && -n "$new_speedup" ]]; then
    awk -v p="$prev_speedup" -v n="$new_speedup" 'BEGIN { exit !(n >= 0.9 * p) }' \
        || { echo "bench gate: checkall speedup $new_speedup fell more than 10% below baseline $prev_speedup"; exit 1; }
    echo "checkall speedup gate OK ($new_speedup vs baseline $prev_speedup)"
fi

echo "== distributed-exploration bench baseline =="
dist_bench_out=$(go test -run '^$' -bench 'BenchmarkExploreSharded|BenchmarkExploreSpill$|BenchmarkStateBytesMapBaseline$' -benchtime 1x .)
echo "$dist_bench_out"

# Render into BENCH_dist.json. Benchmark lines carry ReportMetric pairs
# after ns/op — bytes/state (peak resident state bytes over states
# explored) and states/sec:
#   BenchmarkExploreSharded/shards_8  1  702924395 ns/op  14.66 bytes/state  394355 states/sec
# The headline ratio divides the map-era representation's bytes/state
# (measured live by BenchmarkStateBytesMapBaseline) by the arena's; the
# acceptance floor for the storage rework is 4x.
echo "$dist_bench_out" | awk '
BEGIN { print "{"; print "  \"series\": \"sharded disk-spillable exploration, composed srsLTE model\","; print "  \"benchmarks\": [" }
/^Benchmark/ {
    gsub(/-[0-9]+$/, "", $1)
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", $1, $2, $3)
    for (i = 5; i + 1 <= NF; i += 2) {
        unit = $(i+1)
        gsub(/\//, "_per_", unit)
        gsub(/-/, "_", unit)
        line = line sprintf(", \"%s\": %s", unit, $i)
        if (unit == "bytes_per_state") bps[$1] = $i
    }
    line = line "}"
    lines[n++] = line
}
END {
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    print "  ],"
    if (bps["BenchmarkStateBytesMapBaseline"] > 0 && bps["BenchmarkExploreSharded/shards_1"] > 0)
        printf "  \"state_bytes_reduction_vs_map\": %.2f\n", bps["BenchmarkStateBytesMapBaseline"] / bps["BenchmarkExploreSharded/shards_1"]
    else
        print "  \"state_bytes_reduction_vs_map\": null"
    print "}"
}' > BENCH_dist.json
echo "wrote BENCH_dist.json"

reduction=$(sed -n 's/.*"state_bytes_reduction_vs_map": *\([0-9.]*\).*/\1/p' BENCH_dist.json | head -1)
[[ -n "$reduction" ]] && awk -v r="$reduction" 'BEGIN { exit !(r >= 4) }' \
    || { echo "bench gate: state-bytes reduction ${reduction:-unmeasured} is below the 4x floor"; exit 1; }
echo "state-bytes reduction gate OK (${reduction}x vs map-based representation)"

echo "== campaign service bench baseline =="
serve_bench_out=$(go test -run '^$' -bench 'BenchmarkServeCampaign$' -benchtime 2x ./internal/server)
echo "$serve_bench_out"

# Render into BENCH_serve.json with the cache speedup (cold campaign
# recomputes every cell; cached serves all of them from the store):
#   BenchmarkServeCampaign/cold-8     2   6046071920 ns/op
echo "$serve_bench_out" | awk '
BEGIN { print "{"; print "  \"series\": \"HTTP campaign round trip, 3 impls x 2 fault specs, property S06\","; print "  \"benchmarks\": [" }
/^Benchmark/ {
    gsub(/-[0-9]+$/, "", $1)
    ns[$1] = $3
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $1, $2, $3)
    lines[n++] = line
}
END {
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    print "  ],"
    if (ns["BenchmarkServeCampaign/cold"] > 0 && ns["BenchmarkServeCampaign/cached"] > 0)
        printf "  \"cache_speedup_vs_cold\": %.2f\n", ns["BenchmarkServeCampaign/cold"] / ns["BenchmarkServeCampaign/cached"]
    else
        print "  \"cache_speedup_vs_cold\": null"
    print "}"
}' > BENCH_serve.json
echo "wrote BENCH_serve.json"

echo "== durability bench baseline =="
# The in-memory cold campaign is re-measured here, in the same
# invocation as the durable variant, so the overhead ratio compares
# runs under identical machine load (the BENCH_serve.json numbers were
# taken minutes earlier).
wal_bench_out=$(go test -run '^$' -bench 'BenchmarkWALAppend$' -benchtime 2000x ./internal/jobs
    go test -run '^$' -bench 'BenchmarkServeCampaign$|BenchmarkServeCampaignDurable$' -benchtime 3x ./internal/server)
echo "$wal_bench_out"

# Render into BENCH_wal.json with the durable-overhead ratio the
# acceptance criterion reads (<= 1.05, WAL fsyncs are group-committed
# off the hot path):
#   BenchmarkWALAppend             2000   24712 ns/op
#   BenchmarkServeCampaignDurable     3   6102481920 ns/op
echo "$wal_bench_out" | awk '
BEGIN { print "{"; print "  \"series\": \"write-ahead log durability: record append fsync path and WAL-enabled campaign round trip\","; print "  \"benchmarks\": [" }
/^Benchmark/ {
    gsub(/-[0-9]+$/, "", $1)
    ns[$1] = $3
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $1, $2, $3)
    lines[n++] = line
}
END {
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    print "  ],"
    if (ns["BenchmarkServeCampaignDurable"] > 0 && ns["BenchmarkServeCampaign/cold"] > 0)
        printf "  \"durable_overhead_vs_in_memory\": %.3f\n", ns["BenchmarkServeCampaignDurable"] / ns["BenchmarkServeCampaign/cold"]
    else
        print "  \"durable_overhead_vs_in_memory\": null"
    print "}"
}' > BENCH_wal.json
echo "wrote BENCH_wal.json"

echo "== model-lint bench baseline =="
lint_bench_out=$(go test -run '^$' -bench 'BenchmarkLintModel$' -benchtime 50x .)
echo "$lint_bench_out"

# Render into BENCH_lint.json, with the wall-time the three-profile CI
# gate took above (model build included, which dominates):
#   BenchmarkLintModel   50   183042 ns/op
echo "$lint_bench_out" | awk -v gate_ms="$((lint_end_ms - lint_start_ms))" '
BEGIN { print "{"; print "  \"series\": \"model lint pre-check, all passes over the srsLTE composition\","; print "  \"benchmarks\": [" }
/^Benchmark/ {
    gsub(/-[0-9]+$/, "", $1)
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $1, $2, $3)
    lines[n++] = line
}
END {
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    print "  ],"
    printf "  \"ci_gate_wall_ms_three_profiles\": %s\n", gate_ms
    print "}"
}' > BENCH_lint.json
echo "wrote BENCH_lint.json"

echo "== static-analysis bench baseline =="
# The full MC catalogue over the plain LTEInspector composition, with
# and without the static vacuity pre-pass; both run on a warm engine
# with Workers=1 so the delta is exactly the property passes the pruner
# skips, not scheduler slack.
sa_bench_out=$(go test -run '^$' -bench 'BenchmarkCheckAllVacuity(Unpruned|Pruned)$' -benchtime 5x .)
echo "$sa_bench_out"

# Render into BENCH_sa.json with the pruning speedup the acceptance
# criterion reads (>= 1.15x). Lines carry the pruned-property count as a
# ReportMetric pair after ns/op:
#   BenchmarkCheckAllVacuityPruned   5   38467217 ns/op   30.00 pruned/op
echo "$sa_bench_out" | awk '
BEGIN { print "{"; print "  \"series\": \"static vacuity pre-pruning, full MC catalogue (plain LTEInspector composition, warm engine, 1 worker)\","; print "  \"benchmarks\": [" }
/^Benchmark/ {
    gsub(/-[0-9]+$/, "", $1)
    ns[$1] = $3
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", $1, $2, $3)
    for (i = 5; i + 1 <= NF; i += 2) {
        unit = $(i+1)
        gsub(/\/op$/, "_per_op", unit)
        gsub(/-/, "_", unit)
        line = line sprintf(", \"%s\": %s", unit, $i)
    }
    line = line "}"
    lines[n++] = line
}
END {
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    print "  ],"
    if (ns["BenchmarkCheckAllVacuityUnpruned"] > 0 && ns["BenchmarkCheckAllVacuityPruned"] > 0)
        printf "  \"vacuity_prune_speedup\": %.2f\n", ns["BenchmarkCheckAllVacuityUnpruned"] / ns["BenchmarkCheckAllVacuityPruned"]
    else
        print "  \"vacuity_prune_speedup\": null"
    print "}"
}' > BENCH_sa.json
echo "wrote BENCH_sa.json"

sa_speedup=$(sed -n 's/.*"vacuity_prune_speedup": *\([0-9.]*\).*/\1/p' BENCH_sa.json | head -1)
[[ -n "$sa_speedup" ]] && awk -v s="$sa_speedup" 'BEGIN { exit !(s >= 1.15) }' \
    || { echo "bench gate: vacuity-prune speedup ${sa_speedup:-unmeasured} is below the 1.15x floor"; exit 1; }
echo "vacuity-prune speedup gate OK (${sa_speedup}x vs unpruned catalogue)"

echo "== observability-plane bench baseline =="
# The bus publish path (the cost every instrumented call site pays) and
# the whole-pipeline overhead of streaming: the shared-frontier CheckAll
# run is re-measured with a live bus subscriber attached, in the same
# invocation as the bare run so both see identical machine load.
obs_bench_out=$(go test -run '^$' -bench 'BenchmarkEventBusPublish' -benchtime 200000x ./internal/obs
    go test -run '^$' -bench 'BenchmarkCheckAllParallel$|BenchmarkCheckAllParallelWithSubscriber$' -benchtime 4x .)
echo "$obs_bench_out"

# Render into BENCH_obs.json with the subscriber-overhead ratio the
# acceptance criterion reads (<= 1.05: publishing is one ring append
# under a mutex and never blocks on consumers):
#   BenchmarkEventBusPublish                 200000   163.4 ns/op   0 B/op   0 allocs/op
#   BenchmarkCheckAllParallelWithSubscriber       4   2063234018 ns/op   35.00 events/op
echo "$obs_bench_out" | awk '
BEGIN { print "{"; print "  \"series\": \"live observability plane: event-bus publish path and streaming overhead on the full MC catalogue\","; print "  \"benchmarks\": [" }
/^Benchmark/ {
    gsub(/-[0-9]+$/, "", $1)
    ns[$1] = $3
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", $1, $2, $3)
    for (i = 5; i + 1 <= NF; i += 2) {
        unit = $(i+1)
        gsub(/\/op$/, "_per_op", unit)
        gsub(/\//, "_per_", unit)
        gsub(/-/, "_", unit)
        line = line sprintf(", \"%s\": %s", unit, $i)
    }
    line = line "}"
    lines[n++] = line
}
END {
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    print "  ],"
    if (ns["BenchmarkCheckAllParallel"] > 0 && ns["BenchmarkCheckAllParallelWithSubscriber"] > 0)
        printf "  \"subscriber_overhead_vs_bare\": %.3f\n", ns["BenchmarkCheckAllParallelWithSubscriber"] / ns["BenchmarkCheckAllParallel"]
    else
        print "  \"subscriber_overhead_vs_bare\": null"
    print "}"
}' > BENCH_obs.json
echo "wrote BENCH_obs.json"

overhead=$(sed -n 's/.*"subscriber_overhead_vs_bare": *\([0-9.]*\).*/\1/p' BENCH_obs.json | head -1)
[[ -n "$overhead" ]] && awk -v o="$overhead" 'BEGIN { exit !(o <= 1.05) }' \
    || { echo "bench gate: live-subscriber overhead ${overhead:-unmeasured} exceeds the 5% bound"; exit 1; }
echo "streaming overhead gate OK (${overhead}x vs bare CheckAll)"

echo "== fleet bench baseline =="
# 1-worker vs 2-worker campaign wall-clock through the lease protocol.
# The runner is a fixed 40ms sleep standing in for off-box remote
# compute, so the ratio measures how much campaign latency the
# coordinator overlaps across workers (honest even on a 1-CPU host).
fleet_bench_out=$(go test -run '^$' -bench 'BenchmarkFleetCampaign$' -benchtime 3x ./internal/server)
echo "$fleet_bench_out"

# Render into BENCH_fleet.json with the 2-worker speedup the acceptance
# criterion reads (>= 1.5x):
#   BenchmarkFleetCampaign/workers=1   3   378667631 ns/op
echo "$fleet_bench_out" | awk '
BEGIN { print "{"; print "  \"series\": \"distributed campaign over the lease protocol, 9 cells x 40ms fixed service time\","; print "  \"benchmarks\": [" }
/^Benchmark/ {
    gsub(/-[0-9]+$/, "", $1)
    ns[$1] = $3
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $1, $2, $3)
    lines[n++] = line
}
END {
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    print "  ],"
    if (ns["BenchmarkFleetCampaign/workers=1"] > 0 && ns["BenchmarkFleetCampaign/workers=2"] > 0)
        printf "  \"fleet_speedup_2_workers_vs_1\": %.2f\n", ns["BenchmarkFleetCampaign/workers=1"] / ns["BenchmarkFleetCampaign/workers=2"]
    else
        print "  \"fleet_speedup_2_workers_vs_1\": null"
    print "}"
}' > BENCH_fleet.json
echo "wrote BENCH_fleet.json"

fleet_speedup=$(sed -n 's/.*"fleet_speedup_2_workers_vs_1": *\([0-9.]*\).*/\1/p' BENCH_fleet.json | head -1)
[[ -n "$fleet_speedup" ]] && awk -v s="$fleet_speedup" 'BEGIN { exit !(s >= 1.5) }' \
    || { echo "bench gate: fleet speedup ${fleet_speedup:-unmeasured} is below the 1.5x floor"; exit 1; }
echo "fleet speedup gate OK (${fleet_speedup}x with 2 workers vs 1)"
