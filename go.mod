module prochecker

go 1.22
