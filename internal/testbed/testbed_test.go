package testbed

import (
	"strings"
	"testing"

	"prochecker/internal/core/cegar"
	"prochecker/internal/core/threat"
	"prochecker/internal/ltemodels"
	"prochecker/internal/mc"
	"prochecker/internal/spec"
	"prochecker/internal/ue"
)

// TestValidateP1AllProfiles: the service-disruption attack is a
// standards-level flaw and must succeed end to end on every
// implementation.
func TestValidateP1AllProfiles(t *testing.T) {
	for _, p := range []ue.Profile{ue.ProfileConformant, ue.ProfileSRS, ue.ProfileOAI} {
		t.Run(p.String(), func(t *testing.T) {
			res, err := ValidateP1(p)
			if err != nil {
				t.Fatalf("ValidateP1: %v", err)
			}
			if !res.StaleChallengeAccepted {
				t.Error("stale challenge rejected")
			}
			if !res.KeysDesynchronised {
				t.Error("keys did not desynchronise")
			}
			if !res.ServiceDisrupted {
				t.Error("service not disrupted")
			}
			if !res.Succeeded() {
				t.Errorf("P1 validation failed: %+v", res)
			}
		})
	}
}

func TestValidateP3AllProfiles(t *testing.T) {
	for _, p := range []ue.Profile{ue.ProfileConformant, ue.ProfileSRS, ue.ProfileOAI} {
		t.Run(p.String(), func(t *testing.T) {
			res, err := ValidateP3(p)
			if err != nil {
				t.Fatalf("ValidateP3: %v", err)
			}
			if res.CommandsDropped != 5 {
				t.Errorf("dropped %d commands, want 5 (1 initial + 4 retransmissions)", res.CommandsDropped)
			}
			if !res.ProcedureAborted {
				t.Error("procedure not aborted")
			}
			if !res.GUTIUnchangedAtUE {
				t.Error("GUTI changed despite denial")
			}
			if !res.Succeeded() {
				t.Errorf("P3 validation failed: %+v", res)
			}
		})
	}
}

// TestReplayVerifierTrace closes the loop: a realizable counterexample
// from the CEGAR pipeline is replayed against the live implementation.
func TestReplayVerifierTrace(t *testing.T) {
	composed, err := threat.Compose(threat.Config{
		UE:  ltemodels.LTEInspectorUE(),
		MME: ltemodels.MME(),
	})
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	prop := mc.NeverFires{
		PropName: "ue-never-deregistered-by-injected-attach-reject",
		Match: func(name string) bool {
			return strings.Contains(name, ":recv:attach_reject@inject")
		},
	}
	out, err := cegar.Verify(composed, prop, cegar.Config{PreCapture: true})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if out.Verified || out.Attack == nil {
		t.Fatalf("expected an attack, got %+v", out)
	}
	res, err := ReplayTrace(ue.ProfileConformant, out.Attack)
	if err != nil {
		t.Fatalf("ReplayTrace: %v", err)
	}
	if res.AdversaryActions == 0 {
		t.Error("no adversary action was executed on the testbed")
	}
	// The injected attach_reject deregisters the live UE too.
	if res.FinalUEState != spec.EMMDeregistered {
		t.Errorf("final UE state = %s, want EMM_DEREGISTERED", res.FinalUEState)
	}
}

func TestReplayTraceNil(t *testing.T) {
	if _, err := ReplayTrace(ue.ProfileConformant, nil); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestForgeCoversPlainMessages(t *testing.T) {
	for _, m := range []spec.MessageName{
		spec.AttachReject, spec.TAUReject, spec.ServiceReject,
		spec.AuthReject, spec.DetachRequestNW, spec.IdentityRequest,
		spec.Paging, spec.AttachRequest,
	} {
		if _, ok := forge(m); !ok {
			t.Errorf("forge(%s) failed", m)
		}
	}
	if _, ok := forge(spec.AttachAccept); ok {
		t.Error("forged a protected attach_accept")
	}
}
