// Package testbed is the in-process substitute for the paper's
// USD-$4000 software-defined-radio testbed: real UE and MME
// implementations wired over an adversary-controllable channel, used to
// validate that counterexamples found by the verification loop actually
// drive the implementation into the bad state (Section VI, "Testbed").
//
// It offers two layers: canned end-to-end attack validations for the
// paper's headline findings (P1 service disruption, P3 selective denial),
// and a generic executor that maps a model-checking counterexample's
// adversary steps onto live channel actions.
package testbed

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"prochecker/internal/channel"
	"prochecker/internal/conformance"
	"prochecker/internal/mc"
	"prochecker/internal/nas"
	"prochecker/internal/obs"
	"prochecker/internal/resilience"
	"prochecker/internal/spec"
	"prochecker/internal/ue"
)

// P1Result reports the end-to-end validation of the service-disruption
// attack (Figure 4).
type P1Result struct {
	// StaleChallengeAccepted: the victim accepted the days-old captured
	// authentication_request.
	StaleChallengeAccepted bool
	// KeysDesynchronised: after the stale acceptance, UE and network hold
	// different NAS keys.
	KeysDesynchronised bool
	// ServiceDisrupted: a genuine protected downlink message is now
	// discarded by the UE.
	ServiceDisrupted bool
}

// Succeeded reports whether the full attack chain worked.
func (r P1Result) Succeeded() bool {
	return r.StaleChallengeAccepted && r.KeysDesynchronised && r.ServiceDisrupted
}

// ValidateP1 runs the two-phase attack of Figure 4 against a live
// implementation: phase 1 captures an authentication_request (here: the
// first challenge, which the adversary drops so the network retries);
// phase 2 replays the stale challenge to the attached victim.
func ValidateP1(profile ue.Profile) (P1Result, error) {
	var out P1Result
	env, err := conformance.NewEnv(profile, nil)
	if err != nil {
		return out, fmt.Errorf("testbed: %w", err)
	}
	// Phase 1: capture-and-drop the first challenge.
	drop := &channel.DropFilter{
		Dir:   channel.Downlink,
		Match: func(p nas.Packet) bool { return p.Header == nas.HeaderPlain },
		Limit: 1,
	}
	env.Link.SetAdversary(drop)
	req, err := env.UE.StartAttach()
	if err != nil {
		return out, fmt.Errorf("testbed: starting attach: %w", err)
	}
	env.SendUplink(req)
	if drop.DroppedSoFar() != 1 {
		return out, fmt.Errorf("testbed: challenge was not captured")
	}
	stale := env.Link.Captured(channel.Downlink)[0]

	// The network retries; the attach completes with a fresh vector.
	env.Link.SetAdversary(nil)
	retry, err := env.MME.StartReauthentication()
	if err != nil {
		return out, fmt.Errorf("testbed: auth retry: %w", err)
	}
	env.SendDownlink(retry)
	if !env.UE.Registered() {
		return out, fmt.Errorf("testbed: victim did not register (state %s)", env.UE.State())
	}
	keysBefore := env.UE.Keys()

	// Phase 2: replay the stale challenge directly to the victim.
	replies := env.UE.HandleDownlink(stale)
	for _, r := range replies {
		if r.Header != nas.HeaderPlain {
			continue
		}
		if m, err := nas.Unmarshal(r.Payload); err == nil && m.Name() == spec.AuthResponse {
			out.StaleChallengeAccepted = true
		}
	}
	out.KeysDesynchronised = env.UE.Keys() != keysBefore && env.UE.Keys() != env.MME.Keys()

	// The legitimate network's next protected message is now discarded.
	info, err := env.MME.SendEMMInformation()
	if err != nil {
		return out, fmt.Errorf("testbed: sending emm_information: %w", err)
	}
	before := env.UE.Recorder().Len()
	env.UE.HandleDownlink(info)
	disrupted := true
	for _, rec := range env.UE.Recorder().Snapshot()[before:] {
		if rec.Name == "mac_valid" && rec.Value == "1" {
			disrupted = false
		}
	}
	out.ServiceDisrupted = disrupted
	return out, nil
}

// P3Result reports the selective-denial validation.
type P3Result struct {
	// CommandsDropped counts the suppressed transmissions (1 initial + 4
	// retransmissions).
	CommandsDropped int
	// ProcedureAborted: the MME abandoned the reallocation.
	ProcedureAborted bool
	// GUTIUnchangedAtUE: the victim still uses the old temporary
	// identity, enabling long-term tracking.
	GUTIUnchangedAtUE bool
}

// Succeeded reports whether the denial chain worked.
func (r P3Result) Succeeded() bool {
	return r.CommandsDropped == 5 && r.ProcedureAborted && r.GUTIUnchangedAtUE
}

// ValidateP3 runs the selective security-procedure denial: a MITM relay
// surreptitiously drops every guti_reallocation_command until the network
// aborts the procedure on the fifth T3450 expiry.
func ValidateP3(profile ue.Profile) (P3Result, error) {
	var out P3Result
	env, err := conformance.NewEnv(profile, nil)
	if err != nil {
		return out, fmt.Errorf("testbed: %w", err)
	}
	if err := env.Attach(); err != nil {
		return out, fmt.Errorf("testbed: attach: %w", err)
	}
	oldGUTI := env.UE.GUTI()
	drop := &channel.DropFilter{
		Dir: channel.Downlink,
		// The attacker infers the message type from metadata (length,
		// temporal order); here every ciphered downlink packet during the
		// window is the reallocation command.
		Match: func(p nas.Packet) bool { return p.Header == nas.HeaderIntegrityCiphered },
	}
	env.Link.SetAdversary(drop)
	cmd, err := env.MME.StartGUTIReallocation()
	if err != nil {
		return out, fmt.Errorf("testbed: starting reallocation: %w", err)
	}
	env.SendDownlink(cmd)
	for {
		retx, ok := env.MME.TickTimer()
		if !ok {
			break
		}
		env.SendDownlink(retx)
	}
	out.CommandsDropped = drop.DroppedSoFar()
	for _, p := range env.MME.AbortedProcedures() {
		if p == spec.GUTIRealloCommand {
			out.ProcedureAborted = true
		}
	}
	out.GUTIUnchangedAtUE = env.UE.GUTI() == oldGUTI
	return out, nil
}

// StepOutcome records how one counterexample step mapped onto the live
// system.
type StepOutcome struct {
	Rule    string
	Action  string
	Skipped bool
}

// ReplayResult is the outcome of replaying a counterexample trace.
type ReplayResult struct {
	Steps []StepOutcome
	// AdversaryActions counts the drop/replay/inject steps actually
	// performed.
	AdversaryActions int
	// FinalUEState / FinalMMEState snapshot the implementations after the
	// replay.
	FinalUEState  spec.EMMState
	FinalMMEState spec.MMEState
}

// ReplayTrace executes a model-checking counterexample against a live
// environment: internal events start procedures, adversary steps are
// mapped to channel actions, and protocol steps happen through normal
// delivery. Unmappable steps are recorded as skipped.
func ReplayTrace(profile ue.Profile, trace *mc.Trace) (ReplayResult, error) {
	return ReplayTraceContext(context.Background(), profile, trace, nil)
}

// ReplayTraceContext is ReplayTrace with cancellation and an optional
// background link adversary (e.g. a seeded channel.FaultConfig chain),
// replaying the counterexample over a faulty link. When ctx is
// cancelled mid-replay the steps executed so far are returned together
// with an error wrapping resilience.ErrCancelled.
func ReplayTraceContext(ctx context.Context, profile ue.Profile, trace *mc.Trace, adv channel.Adversary) (out ReplayResult, err error) {
	_, span := obs.Start(ctx, "testbed.replay", obs.A("profile", profile.String()))
	defer func() {
		span.SetAttr("steps", strconv.Itoa(len(out.Steps)))
		span.SetAttr("adversary_actions", strconv.Itoa(out.AdversaryActions))
		if reg := obs.FromContext(ctx).Metrics(); reg != nil {
			reg.Counter("testbed.replays").Inc()
			reg.Counter("testbed.replay_steps").Add(int64(len(out.Steps)))
		}
		span.EndErr(err)
	}()
	if trace == nil {
		return out, fmt.Errorf("testbed: nil trace")
	}
	env, err := conformance.NewEnv(profile, adv)
	if err != nil {
		return out, fmt.Errorf("testbed: %w", err)
	}

	limit := len(trace.Steps)
	if trace.LoopStart >= 0 && trace.LoopStart < limit {
		// One pass through the lasso suffices on the testbed.
		limit = len(trace.Steps)
	}
	for _, step := range trace.Steps[:limit] {
		if ctx.Err() != nil {
			out.FinalUEState = env.UE.State()
			out.FinalMMEState = env.MME.State()
			return out, fmt.Errorf("testbed: replay stopped after %d of %d steps: %w",
				len(out.Steps), limit, resilience.ErrCancelled)
		}
		oc := StepOutcome{Rule: step.Rule}
		switch {
		case strings.HasPrefix(step.Rule, "ue:internal:"):
			oc.Action = runUEInternal(env, step.Rule)
		case strings.HasPrefix(step.Rule, "mme:internal:"), strings.HasPrefix(step.Rule, "mme:guti_realloc:start"):
			oc.Action = runMMEInternal(env, step.Rule)
		case step.Tags["actor"] == "adv":
			oc.Action = runAdversary(env, step.Tags)
			if oc.Action != "" {
				out.AdversaryActions++
			}
		default:
			// Protocol recv steps happen through the pump.
			oc.Skipped = true
		}
		if oc.Action == "" && !oc.Skipped {
			oc.Skipped = true
		}
		out.Steps = append(out.Steps, oc)
		env.Pump()
	}
	out.FinalUEState = env.UE.State()
	out.FinalMMEState = env.MME.State()
	return out, nil
}

func runUEInternal(env *conformance.Env, rule string) string {
	switch {
	case strings.Contains(rule, "/attach_request"):
		if p, err := env.UE.StartAttach(); err == nil {
			env.SendUplink(p)
			return "attach started"
		}
	case strings.Contains(rule, "/detach_request_ue"):
		if p, err := env.UE.StartDetach(false); err == nil {
			env.SendUplink(p)
			return "detach started"
		}
	case strings.Contains(rule, "/tracking_area_update_request"):
		if p, err := env.UE.StartTAU(conformance.DefaultTAC + 1); err == nil {
			env.SendUplink(p)
			return "TAU started"
		}
	case strings.Contains(rule, "/service_request"):
		if p, err := env.UE.StartServiceRequest(); err == nil {
			env.SendUplink(p)
			return "service request started"
		}
	}
	return ""
}

func runMMEInternal(env *conformance.Env, rule string) string {
	switch {
	case strings.Contains(rule, "guti_realloc:start"), strings.Contains(rule, "/guti_reallocation_command"):
		if p, err := env.MME.StartGUTIReallocation(); err == nil {
			env.SendDownlink(p)
			return "GUTI reallocation started"
		}
	case strings.Contains(rule, "/paging_request"):
		if p, err := env.MME.Page(false); err == nil {
			env.SendDownlink(p)
			return "paging sent"
		}
	case strings.Contains(rule, "/identity_request"):
		if p, err := env.MME.SendIdentityRequest(nas.IDTypeIMSI); err == nil {
			env.SendDownlink(p)
			return "identity request sent"
		}
	case strings.Contains(rule, "/detach_request_nw"):
		if p, err := env.MME.StartDetach(nas.DetachEPS); err == nil {
			env.SendDownlink(p)
			return "network detach sent"
		}
	case strings.Contains(rule, "/authentication_request"):
		if p, err := env.MME.StartReauthentication(); err == nil {
			env.SendDownlink(p)
			return "re-authentication sent"
		}
	}
	return ""
}

func runAdversary(env *conformance.Env, tags map[string]string) string {
	msg := spec.MessageName(tags["msg"])
	dir := channel.Downlink
	if spec.IsUplink(msg) {
		dir = channel.Uplink
	}
	switch tags["kind"] {
	case "drop":
		// Drain the matching queued packet, if any.
		if p, ok := env.Link.Recv(dir); ok {
			_ = p
			return fmt.Sprintf("dropped in-flight %s packet", dir)
		}
		return "drop (channel empty)"
	case "replay":
		for _, p := range env.Link.Captured(dir) {
			if matchesMessage(env, p, msg, dir) {
				env.Link.Inject(dir, p)
				return fmt.Sprintf("replayed captured %s", msg)
			}
		}
		return ""
	case "inject":
		if p, ok := forge(msg); ok {
			env.Link.Inject(dir, p)
			return fmt.Sprintf("injected forged %s", msg)
		}
		return ""
	default:
		return ""
	}
}

// matchesMessage decides whether a captured packet carries the given
// message type; plain packets are decoded, protected ones matched by the
// flow position heuristic a real attacker would use (header type).
func matchesMessage(env *conformance.Env, p nas.Packet, msg spec.MessageName, dir channel.Direction) bool {
	if p.Header == nas.HeaderPlain {
		m, err := nas.Unmarshal(p.Payload)
		return err == nil && m.Name() == msg
	}
	switch msg {
	case spec.SecurityModeCommand:
		return p.Header == nas.HeaderIntegrity && dir == channel.Downlink
	case spec.AttachAccept, spec.GUTIRealloCommand, spec.TAUAccept, spec.EMMInformation:
		return p.Header == nas.HeaderIntegrityCiphered && dir == channel.Downlink
	default:
		return p.Header != nas.HeaderPlain
	}
}

// forge crafts an adversary-chosen plain message of the given type;
// protected messages cannot be forged (the CPV guarantees traces never
// require it).
func forge(msg spec.MessageName) (nas.Packet, bool) {
	var m nas.Message
	switch msg {
	case spec.AttachReject:
		m = &nas.AttachReject{Cause: nas.CauseIllegalUE}
	case spec.TAUReject:
		m = &nas.TAUReject{Cause: nas.CauseTANotAllowed}
	case spec.ServiceReject:
		m = &nas.ServiceReject{Cause: nas.CauseEPSNotAllowed}
	case spec.AuthReject:
		m = &nas.AuthReject{}
	case spec.DetachRequestNW:
		m = &nas.DetachRequestNW{Type: nas.DetachEPS}
	case spec.IdentityRequest:
		m = &nas.IdentityRequest{IDType: nas.IDTypeIMSI}
	case spec.Paging:
		m = &nas.PagingRequest{IDType: nas.IDTypeIMSI, IMSI: conformance.DefaultIMSI}
	case spec.AttachRequest:
		m = &nas.AttachRequest{IMSI: "999990000000666"}
	default:
		return nas.Packet{}, false
	}
	p, err := (&nas.Context{}).Seal(m, nas.HeaderPlain, nas.DirDownlink)
	if err != nil {
		return nas.Packet{}, false
	}
	return p, true
}
