package cegar

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"prochecker/internal/mc"
	"prochecker/internal/resilience"
)

// catalogueLikeProps builds a small mixed batch: a property that needs a
// refinement, one that verifies outright, and one with an attack.
func catalogueLikeProps() []mc.Property {
	return []mc.Property{
		mc.NeverFires{
			PropName: "refined-forgery",
			Match:    ruleContains("ue:recv:authentication_request@inject"),
		},
		mc.NeverFires{
			PropName: "trivially-verified",
			Match:    func(string) bool { return false },
		},
		mc.NeverFires{
			PropName: "replay-attack",
			Match:    ruleContains("ue:recv:authentication_request@replay"),
		},
	}
}

// TestVerifyAllParallelMatchesSequential: the batch under a worker pool
// returns the same outcomes, in the same order, as the sequential walk.
func TestVerifyAllParallelMatchesSequential(t *testing.T) {
	c := composed(t, false)
	props := catalogueLikeProps()
	seq, err := VerifyAllContext(context.Background(), c, props, Config{PreCapture: true, Workers: 1})
	if err != nil {
		t.Fatalf("sequential VerifyAllContext: %v", err)
	}
	par, err := VerifyAllContext(context.Background(), c, props, Config{PreCapture: true, Workers: 4})
	if err != nil {
		t.Fatalf("parallel VerifyAllContext: %v", err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel outcomes diverge:\n  sequential %+v\n  parallel   %+v", seq, par)
	}
	if len(par) != len(props) {
		t.Fatalf("completed %d of %d properties", len(par), len(props))
	}
	for i, p := range props {
		if par[i].Property != p.Name() {
			t.Errorf("outcome %d is %s, want %s (ordering lost)", i, par[i].Property, p.Name())
		}
	}
}

// TestVerifyAllSharedExploration: with lazy clone-on-refine, the first
// iteration of every property discharges on one cached graph.
func TestVerifyAllSharedExploration(t *testing.T) {
	c := composed(t, false)
	props := []mc.Property{
		mc.NeverFires{PropName: "a", Match: func(string) bool { return false }},
		mc.NeverFires{PropName: "b", Match: func(string) bool { return false }},
		mc.NeverFires{PropName: "c", Match: func(string) bool { return false }},
	}
	engine := mc.NewEngine()
	for _, p := range props {
		if _, err := engine.CheckContext(context.Background(), c.System, p, mc.Options{}); err != nil {
			t.Fatalf("CheckContext: %v", err)
		}
	}
	if hits, builds := engine.CacheStats(); builds != 1 || hits != len(props)-1 {
		t.Fatalf("hits=%d builds=%d, want %d/1: properties did not share one exploration",
			hits, builds, len(props)-1)
	}
}

// TestVerifyContextBudgetExhausted: a starved state budget surfaces as
// the typed resilience error with the Unknown verdict attached.
func TestVerifyContextBudgetExhausted(t *testing.T) {
	c := composed(t, false)
	prop := mc.NeverFires{PropName: "p", Match: func(string) bool { return false }}
	out, err := VerifyContext(context.Background(), c, prop, Config{
		PreCapture: true,
		MC:         mc.Options{MaxStates: 3},
	})
	if !errors.Is(err, resilience.ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	if !out.Unknown {
		t.Errorf("budget-exhausted outcome not marked Unknown: %+v", out)
	}

	// The batch API keeps the inconclusive outcome and surfaces the error.
	outs, err := VerifyAllContext(context.Background(), c, []mc.Property{prop}, Config{
		PreCapture: true,
		MC:         mc.Options{MaxStates: 3},
	})
	if !errors.Is(err, resilience.ErrBudgetExhausted) {
		t.Fatalf("batch: want ErrBudgetExhausted, got %v", err)
	}
	if len(outs) != 1 || !outs[0].Unknown {
		t.Errorf("batch outcomes = %+v, want one Unknown", outs)
	}
	if resilience.ExitCode(err) != resilience.ExitBudgetExhausted {
		t.Errorf("exit code %d, want %d", resilience.ExitCode(err), resilience.ExitBudgetExhausted)
	}
}
