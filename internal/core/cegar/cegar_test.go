package cegar

import (
	"strings"
	"testing"

	"prochecker/internal/core/fsmodel"
	"prochecker/internal/core/threat"
	"prochecker/internal/ltemodels"
	"prochecker/internal/mc"
	"prochecker/internal/spec"
	"prochecker/internal/sqn"
)

func composed(t *testing.T, supervise bool) *threat.Composed {
	t.Helper()
	c, err := threat.Compose(threat.Config{
		Name:                 "cegar-test",
		UE:                   ltemodels.LTEInspectorUE(),
		MME:                  ltemodels.MME(),
		SuperviseGUTIRealloc: supervise,
	})
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	return c
}

func ruleContains(substrs ...string) func(string) bool {
	return func(name string) bool {
		for _, s := range substrs {
			if !strings.Contains(name, s) {
				return false
			}
		}
		return true
	}
}

// TestForgeryRefinedAway is the canonical CEGAR round trip: the abstract
// model lets the adversary inject an authentication_request, the CPV
// refutes the forgery (it needs K), the rule is pruned, and the property
// verifies.
func TestForgeryRefinedAway(t *testing.T) {
	c := composed(t, false)
	prop := mc.NeverFires{
		PropName: "ue-never-processes-forged-auth-request",
		Match:    ruleContains("ue:recv:authentication_request@inject"),
	}
	out, err := Verify(c, prop, Config{PreCapture: true})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !out.Verified {
		t.Fatalf("property not verified: %+v", out)
	}
	if len(out.Refinements) == 0 {
		t.Fatal("no refinement recorded; the CEGAR loop never engaged")
	}
	found := false
	for _, r := range out.Refinements {
		if r.Kind == PruneRule && strings.Contains(r.Rule, "inject") &&
			strings.Contains(r.Rule, "authentication_request") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a pruned forged-auth rule, got %+v", out.Refinements)
	}
	if out.Iterations < 2 {
		t.Errorf("iterations = %d, want >= 2 (refine then verify)", out.Iterations)
	}
}

// TestReplayAttackSurvivesValidation: replaying a previously observed
// attach_request is cryptographically fine, so the counterexample must be
// reported as a real attack — after the lazy observation refinement has
// forced the trace to contain the capture first.
func TestReplayAttackSurvivesValidation(t *testing.T) {
	c := composed(t, false)
	prop := mc.NeverFires{
		PropName: "mme-never-processes-replayed-attach-request",
		Match:    ruleContains("mme:recv:attach_request@replay"),
	}
	out, err := Verify(c, prop, Config{PreCapture: false})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if out.Verified {
		t.Fatal("replay attack missed")
	}
	if out.Attack == nil {
		t.Fatal("no attack trace")
	}
	// The lazy refinement must have fired: a replay before any genuine
	// attach_request is spurious.
	sawObsRefinement := false
	for _, r := range out.Refinements {
		if r.Kind == GuardReplayOnObservation && string(r.Msg) == "attach_request" {
			sawObsRefinement = true
		}
	}
	if !sawObsRefinement {
		t.Errorf("expected GuardReplayOnObservation refinement, got %+v", out.Refinements)
	}
	// In the final attack, a genuine attach_request precedes the replay.
	names := out.Attack.RuleNames()
	genuineIdx, replayIdx := -1, -1
	for i, n := range names {
		if strings.Contains(n, "ue:internal") && strings.Contains(n, "attach_request") && genuineIdx < 0 {
			genuineIdx = i
		}
		if strings.Contains(n, "adv:replay") && strings.Contains(n, "attach_request") {
			replayIdx = i
		}
	}
	if genuineIdx < 0 || replayIdx < 0 || genuineIdx > replayIdx {
		t.Errorf("attack does not capture before replaying:\n%s", out.Attack)
	}
	if len(out.AttackFeasibility) == 0 {
		t.Error("attack lacks feasibility explanations")
	}
}

// TestP1StyleReplayWithPreCapture: with the cross-session capture phase,
// replaying an authentication_request needs no in-trace observation.
func TestP1StyleReplayWithPreCapture(t *testing.T) {
	c := composed(t, false)
	prop := mc.NeverFires{
		PropName: "ue-never-processes-replayed-auth-request",
		Match:    ruleContains("ue:recv:authentication_request@replay"),
	}
	out, err := Verify(c, prop, Config{PreCapture: true})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if out.Verified {
		t.Fatal("P1-style replay missed")
	}
	if len(out.Refinements) != 0 {
		t.Errorf("pre-captured replay should need no refinement, got %+v", out.Refinements)
	}
}

// TestP3SelectiveDenial: the GUTI reallocation response property is
// violated by a drop-everything adversary; drops are always feasible so
// the first counterexample is already an attack.
func TestP3SelectiveDenial(t *testing.T) {
	c := composed(t, true)
	prop := mc.Response{
		PropName: "guti-reallocation-completes",
		Trigger:  ruleContains("mme:guti_realloc:start"),
		Goal:     ruleContains("mme:recv:guti_reallocation_complete"),
	}
	out, err := Verify(c, prop, Config{PreCapture: true})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if out.Verified {
		t.Fatal("P3 selective denial missed")
	}
	hasDrop := false
	for _, n := range out.Attack.RuleNames() {
		if strings.Contains(n, "adv:drop") {
			hasDrop = true
		}
	}
	if !hasDrop {
		t.Errorf("P3 attack trace lacks drops:\n%s", out.Attack)
	}
}

// TestFreshnessLimitClosesP1: when the deployed USIM enforces the Annex C
// limit L, the stale-SQN acceptance is refuted and the replayed-challenge
// *acceptance* property holds. This needs a UE model with SQN predicates,
// so we build a minimal one.
func TestFreshnessLimitClosesP1(t *testing.T) {
	ueModel := minimalSQNUE(t)
	c, err := threat.Compose(threat.Config{
		UE:  ueModel,
		MME: ltemodels.MME(),
	})
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	prop := mc.NeverFires{
		PropName: "ue-never-accepts-stale-sqn",
		Match:    ruleContains("ue:recv:authentication_request@replay", "sqn_in_range=1"),
	}

	// Without L: attack (the COTS reality).
	out, err := Verify(c, prop, Config{PreCapture: true})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if out.Verified {
		t.Fatal("stale SQN acceptance missed with L disabled")
	}

	// With L enforced: the CPV refutes the stale acceptance and the
	// property verifies.
	out2, err := Verify(c, prop, Config{
		PreCapture: true,
		SQN:        sqn.Config{INDBits: sqn.DefaultINDBits, FreshnessLimit: 2},
	})
	if err != nil {
		t.Fatalf("Verify with L: %v", err)
	}
	if !out2.Verified {
		t.Fatalf("property should verify with freshness limit: %+v", out2)
	}
	pruned := false
	for _, r := range out2.Refinements {
		if r.Kind == PruneRule && strings.Contains(r.Reason, "freshness limit") {
			pruned = true
		}
	}
	if !pruned {
		t.Errorf("expected stale-SQN prune refinement, got %+v", out2.Refinements)
	}
}

// TestVerifyAllOrdering exercises the batch API.
func TestVerifyAllOrdering(t *testing.T) {
	c := composed(t, false)
	props := []mc.Property{
		mc.NeverFires{PropName: "a", Match: func(string) bool { return false }},
		mc.NeverFires{PropName: "b", Match: func(string) bool { return false }},
	}
	outs, err := VerifyAll(c, props, Config{})
	if err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
	if len(outs) != 2 || outs[0].Property != "a" || outs[1].Property != "b" {
		t.Errorf("VerifyAll = %+v", outs)
	}
}

// minimalSQNUE builds a tiny UE model whose authentication transition
// carries the sqn_in_range predicate, like the automatically extracted
// models do.
func minimalSQNUE(t *testing.T) *fsmodel.FSM {
	t.Helper()
	m := fsmodel.New("UE/minimal-sqn", fsmodel.State(spec.EMMDeregistered))
	m.AddTransition(fsmodel.Transition{
		From: fsmodel.State(spec.EMMRegisteredInitiated),
		To:   fsmodel.State(spec.EMMRegisteredInitiated),
		Cond: fsmodel.Condition{
			Message: spec.AuthRequest,
			Predicates: []fsmodel.Predicate{
				{Var: "mac_valid", Value: "1"},
				{Var: "sqn_in_range", Value: "1"},
			},
		},
		Actions: []spec.MessageName{spec.AuthResponse},
	})
	m.AddTransition(fsmodel.Transition{
		From: fsmodel.State(spec.EMMRegisteredInitiated),
		To:   fsmodel.State(spec.EMMRegisteredInitiated),
		Cond: fsmodel.Condition{
			Message: spec.AuthRequest,
			Predicates: []fsmodel.Predicate{
				{Var: "mac_valid", Value: "1"},
				{Var: "sqn_in_range", Value: "0"},
			},
		},
		Actions: []spec.MessageName{spec.AuthSyncFailure},
	})
	return m
}

func TestVerifyNilComposed(t *testing.T) {
	if _, err := Verify(nil, mc.Invariant{PropName: "x"}, Config{}); err == nil {
		t.Error("nil composed accepted")
	}
}
