// Package cegar implements ProChecker's verification loop (Section IV-B):
// the counterexample-guided abstraction refinement between the symbolic
// model checker and the cryptographic protocol verifier. The model
// checker runs over the threat-instrumented model, which abstracts all
// cryptographic constructs; every counterexample's adversary steps are
// validated against the Dolev-Yao theory by the CPV, spurious steps are
// refined away by pruning the offending adversary rule, and the loop
// continues until the property verifies or a realizable counterexample —
// an attack — is found.
package cegar

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"prochecker/internal/core/threat"
	"prochecker/internal/cpv"
	"prochecker/internal/mc"
	"prochecker/internal/obs"
	"prochecker/internal/resilience"
	"prochecker/internal/spec"
	"prochecker/internal/sqn"
	"prochecker/internal/ts"
)

// DefaultMaxIterations bounds the refinement loop; in practice two or
// three iterations suffice.
const DefaultMaxIterations = 32

// Config parameterises one verification run.
type Config struct {
	// PreCapture grants the adversary a cross-session capture phase
	// (Figure 4's phase 1). On in the paper's threat model.
	PreCapture bool
	// SQN describes the deployed Annex C scheme; the freshness limit L
	// decides whether a stale-but-in-range replayed SQN is feasible.
	// The zero value means sqn.DefaultConfig() (L disabled — the COTS
	// reality).
	SQN sqn.Config
	// MaxIterations bounds the refinement loop.
	MaxIterations int
	// MC tunes the model checker.
	MC mc.Options
	// Workers bounds the property-level parallelism of VerifyAllContext
	// and, unless MC.Workers overrides it, the checker's exploration
	// pool. 0 means runtime.GOMAXPROCS(0).
	Workers int
}

func (c Config) maxIterations() int {
	if c.MaxIterations > 0 {
		return c.MaxIterations
	}
	return DefaultMaxIterations
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// mcOptions threads the catalogue-level worker budget down to the
// checker when the caller has not tuned mc.Options.Workers explicitly.
func (c Config) mcOptions() mc.Options {
	opts := c.MC
	if opts.Workers == 0 {
		opts.Workers = c.Workers
	}
	return opts
}

func (c Config) sqnConfig() sqn.Config {
	if c.SQN == (sqn.Config{}) {
		return sqn.DefaultConfig()
	}
	return c.SQN
}

// RefinementKind selects how a spurious step is refined away.
type RefinementKind uint8

// Refinement kinds.
const (
	// PruneRule removes the rule entirely — exact when the step is
	// infeasible in every context (forging a protected message, stale
	// SQN under an enforced freshness limit).
	PruneRule RefinementKind = iota + 1
	// GuardReplayOnObservation is the lazy-abstraction refinement for
	// replays attempted before anything was captured: an observation bit
	// for the message is added to the model, set whenever a genuine
	// instance crosses a channel, and the replay rule is guarded on it.
	GuardReplayOnObservation
)

// Refinement records one refinement step of the loop.
type Refinement struct {
	Kind   RefinementKind
	Rule   string
	Msg    spec.MessageName
	Reason string
}

// Outcome is the verdict of the CEGAR loop on one property.
type Outcome struct {
	Property string
	// Verified is true when the property holds on the refined model.
	Verified bool
	// Attack is the realizable counterexample when Verified is false.
	Attack *mc.Trace
	// AttackFeasibility explains why each adversary step of the attack is
	// possible.
	AttackFeasibility []string
	// Iterations counts model-checker runs.
	Iterations int
	// Refinements lists the spurious adversary rules pruned.
	Refinements []Refinement
	// StatesExplored is the last model-checking run's exploration size.
	StatesExplored int
	// Unknown marks runs that hit the exploration or iteration bound.
	Unknown bool
}

// Verify runs the MC ⇄ CPV loop for one property on a composed model.
func Verify(composed *threat.Composed, prop mc.Property, cfg Config) (Outcome, error) {
	return VerifyContext(context.Background(), composed, prop, cfg)
}

// VerifyContext is Verify with cancellation: the refinement loop checks
// ctx before every model-checker run and, when cancelled, returns the
// partial outcome so far together with an error wrapping
// resilience.ErrCancelled — a distinct ending from the Unknown verdict
// the iteration/exploration bounds produce.
//
// Each run is one "cegar.verify" span with one "cegar.iteration" child
// per refinement-loop pass (each wrapping the model-checker run and,
// when a counterexample needs validating, a "cpv.validate" child), and
// the loop's totals land in the cegar.* registry counters.
func VerifyContext(ctx context.Context, composed *threat.Composed, prop mc.Property, cfg Config) (Outcome, error) {
	ctx, span := obs.Start(ctx, "cegar.verify", obs.A("property", prop.Name()))
	out, err := verifyContext(ctx, composed, prop, cfg)
	if reg := obs.FromContext(ctx).Metrics(); reg != nil {
		reg.Counter("cegar.iterations").Add(int64(out.Iterations))
		reg.Counter("cegar.refinements").Add(int64(len(out.Refinements)))
		reg.Counter("cegar.spurious_counterexamples").Add(int64(len(out.Refinements)))
		if out.Attack != nil {
			reg.Counter("cegar.attacks").Inc()
		}
	}
	span.SetAttr("iterations", strconv.Itoa(out.Iterations))
	span.SetAttr("refinements", strconv.Itoa(len(out.Refinements)))
	span.SetAttr("verdict", verdictLabel(out))
	span.EndErr(err)
	return out, err
}

// verdictLabel names an outcome for span attributes.
func verdictLabel(out Outcome) string {
	switch {
	case out.Attack != nil:
		return "attack"
	case out.Verified:
		return "verified"
	default:
		return "inconclusive"
	}
}

func verifyContext(ctx context.Context, composed *threat.Composed, prop mc.Property, cfg Config) (Outcome, error) {
	if composed == nil || composed.System == nil {
		return Outcome{}, fmt.Errorf("cegar: nil composed model")
	}
	// The composed system is used read-only until the first refinement
	// actually mutates it; cloning lazily lets every property's first
	// iteration share one cached reachability graph.
	sys := composed.System
	owned := false
	opts := cfg.mcOptions()
	out := Outcome{Property: prop.Name()}

	for out.Iterations < cfg.maxIterations() {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("cegar: verifying %s after %d iteration(s): %w",
				prop.Name(), out.Iterations, resilience.ErrCancelled)
		}
		out.Iterations++
		iterCtx, iterSpan := obs.Start(ctx, "cegar.iteration", obs.A("n", strconv.Itoa(out.Iterations)))
		res, err := mc.CheckContext(iterCtx, sys, prop, opts)
		out.StatesExplored = res.StatesExplored
		if err != nil {
			iterSpan.EndErr(err)
			if resilience.Cancelled(err) {
				return out, fmt.Errorf("cegar: verifying %s after %d iteration(s): %w",
					prop.Name(), out.Iterations, resilience.ErrCancelled)
			}
			if errors.Is(err, resilience.ErrBudgetExhausted) {
				// The bounded exploration could not settle the property;
				// record the inconclusive verdict and surface the typed
				// budget error instead of a silent Unknown.
				out.Unknown = true
			}
			return out, err
		}
		if res.Truncated {
			out.Unknown = true
			iterSpan.End()
			return out, nil
		}
		if res.Verified {
			out.Verified = true
			iterSpan.End()
			return out, nil
		}
		if res.Counterexample == nil {
			// The checker rejected the property without evidence (e.g. a
			// condition referencing an unknown variable); refining blindly
			// would loop forever.
			err := fmt.Errorf("cegar: %s: model checker returned neither verdict nor counterexample", prop.Name())
			iterSpan.EndErr(err)
			return out, err
		}
		_, cpvSpan := obs.Start(iterCtx, "cpv.validate", obs.A("steps", strconv.Itoa(len(res.Counterexample.Steps))))
		spurious, refinement, feasibility := validate(res.Counterexample, cfg)
		cpvSpan.SetAttr("spurious", strconv.FormatBool(spurious))
		cpvSpan.End()
		if !spurious {
			out.Attack = res.Counterexample
			out.AttackFeasibility = feasibility
			iterSpan.End()
			return out, nil
		}
		if !owned {
			sys = sys.Clone()
			owned = true
		}
		if err := applyRefinement(sys, refinement); err != nil {
			iterSpan.EndErr(err)
			return out, err
		}
		out.Refinements = append(out.Refinements, refinement)
		iterSpan.SetAttr("refined", refinement.Rule)
		iterSpan.End()
	}
	out.Unknown = true
	return out, nil
}

// validate replays the counterexample through the CPV: it accumulates
// intruder knowledge from every genuine message crossing a public channel
// and checks each adversary step's feasibility. It returns the first
// spurious step as a refinement, or the per-step feasibility explanations
// when the whole trace is realizable.
func validate(trace *mc.Trace, cfg Config) (spurious bool, ref Refinement, feasibility []string) {
	verifier := cpv.NewNASVerifier(cfg.PreCapture)
	staleSQNFeasible := cfg.sqnConfig().FreshnessLimit == 0

	prev := trace.Initial
	for _, step := range trace.Steps {
		// Knowledge accumulation: any channel transitioning to a
		// X@genuine value means a genuine message crossed the air.
		for _, ch := range []string{threat.VarDL, threat.VarUL} {
			after := step.After[ch]
			if after != prev[ch] {
				if m, origin, ok := threat.ParseSlot(after); ok && origin == threat.OriginGenuine {
					verifier.ObserveGenuine(m)
				}
			}
		}

		switch step.Tags[threat.TagActor] {
		case "adv":
			action := cpv.Action{
				Kind:    cpv.ActionKind(step.Tags[threat.TagKind]),
				Message: spec.MessageName(step.Tags[threat.TagMsg]),
			}
			f := verifier.Feasible(action)
			if !f.Feasible {
				kind := PruneRule
				if action.Kind == cpv.ActReplay {
					// Replays are context sensitive: infeasible now, but
					// feasible once the message has been observed. Refine
					// lazily instead of pruning.
					kind = GuardReplayOnObservation
				}
				return true, Refinement{Kind: kind, Rule: step.Rule, Msg: action.Message, Reason: f.Reason}, nil
			}
			feasibility = append(feasibility, fmt.Sprintf("%s(%s): %s", action.Kind, action.Message, f.Reason))
		case "ue", "mme":
			// A transition justified by a stale-yet-in-range SQN is only
			// feasible when the Annex C freshness limit L is absent
			// (Section VII-A); otherwise the USIM would reject it.
			if step.Tags[threat.TagSQNOld] == "1" {
				if !staleSQNFeasible {
					return true, Refinement{
						Kind:   PruneRule,
						Rule:   step.Rule,
						Reason: "stale SQN acceptance impossible: the deployed USIM enforces the Annex C freshness limit L",
					}, nil
				}
				feasibility = append(feasibility,
					fmt.Sprintf("stale SQN accepted: the %d-slot SQN array has no freshness limit", uint64(1)<<cfg.sqnConfig().INDBits))
			}
		}
		prev = step.After
	}
	return false, Refinement{}, feasibility
}

// applyRefinement edits the working system to rule the spurious step out.
func applyRefinement(sys *ts.System, ref Refinement) error {
	switch ref.Kind {
	case PruneRule:
		if !sys.RemoveRule(ref.Rule) {
			return fmt.Errorf("cegar: refinement loop stuck on rule %s", ref.Rule)
		}
		return nil
	case GuardReplayOnObservation:
		obsVar := "obs_" + string(ref.Msg)
		if err := sys.AddVar(obsVar, "0", "1"); err != nil {
			// Already refined for this message yet the same spurious step
			// recurred: the loop cannot make progress.
			return fmt.Errorf("cegar: refinement loop stuck on replay of %s: %w", ref.Msg, err)
		}
		genuineDL := threat.Slot(ref.Msg, threat.OriginGenuine)
		sys.MapRules(func(r ts.Rule) ts.Rule {
			// Every rule that puts a genuine instance on a channel now
			// also records the observation.
			for _, a := range r.Assigns {
				if a.Value == genuineDL && (a.Var == threat.VarDL || a.Var == threat.VarUL) {
					r.Assigns = append(append([]ts.Assign{}, r.Assigns...), ts.Assign{Var: obsVar, Value: "1"})
					break
				}
			}
			// The replay rules for this message require the observation.
			if r.Tags[threat.TagActor] == "adv" && r.Tags[threat.TagKind] == "replay" && r.Tags[threat.TagMsg] == string(ref.Msg) {
				r.Guard = ts.And{r.Guard, ts.Eq{Var: obsVar, Value: "1"}}
			}
			return r
		})
		return nil
	default:
		return fmt.Errorf("cegar: unknown refinement kind %d", ref.Kind)
	}
}

// VerifyAll runs the loop for each property in order.
func VerifyAll(composed *threat.Composed, props []mc.Property, cfg Config) ([]Outcome, error) {
	return VerifyAllContext(context.Background(), composed, props, cfg)
}

// VerifyAllContext runs the loop for each property over a bounded worker
// pool (cfg.Workers, default GOMAXPROCS) with graceful degradation:
// per-property failures are collected while the remaining properties
// still run, and the completed outcomes are returned in property order —
// identical to a sequential walk — alongside the aggregated error.
// Unrefined properties share one cached exploration of the composed
// system, so the batch is cheaper than the sum of its parts.
// Cancellation stops the catalogue walk promptly.
func VerifyAllContext(ctx context.Context, composed *threat.Composed, props []mc.Property, cfg Config) ([]Outcome, error) {
	type slot struct {
		out  Outcome
		err  error
		done bool
	}
	slots := make([]slot, len(props))
	workers := cfg.workers()
	if workers > len(props) {
		workers = len(props)
	}

	if workers <= 1 {
		for i, p := range props {
			if ctx.Err() != nil {
				break
			}
			slots[i].out, slots[i].err = VerifyContext(ctx, composed, p, cfg)
			slots[i].done = true
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					slots[i].out, slots[i].err = VerifyContext(ctx, composed, props[i], cfg)
					slots[i].done = true
				}
			}()
		}
		for i := range props {
			if ctx.Err() != nil {
				break
			}
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	out := make([]Outcome, 0, len(props))
	var errs resilience.Collector
	for i, p := range props {
		s := slots[i]
		switch {
		case !s.done || resilience.Cancelled(s.err):
			// Accounted for by the single catalogue-stopped entry below.
		case s.err == nil:
			out = append(out, s.out)
		case errors.Is(s.err, resilience.ErrBudgetExhausted):
			// The outcome still carries its Unknown verdict; keep it and
			// surface the typed error alongside.
			out = append(out, s.out)
			errs.Add(fmt.Errorf("cegar: verifying %s: %w", p.Name(), s.err))
		default:
			errs.Add(fmt.Errorf("cegar: verifying %s: %w", p.Name(), s.err))
		}
	}
	if ctx.Err() != nil {
		errs.Add(fmt.Errorf("cegar: catalogue stopped after %d of %d properties: %w",
			len(out), len(props), resilience.ErrCancelled))
	}
	return out, errs.Err()
}
