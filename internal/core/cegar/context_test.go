package cegar

import (
	"context"
	"errors"
	"testing"

	"prochecker/internal/core/threat"
	"prochecker/internal/ltemodels"
	"prochecker/internal/mc"
	"prochecker/internal/resilience"
	"prochecker/internal/ts"
)

func composedForTest(t *testing.T) *threat.Composed {
	t.Helper()
	composed, err := threat.Compose(threat.Config{
		Name:                 "IMP/LTEInspector",
		UE:                   ltemodels.LTEInspectorUE(),
		MME:                  ltemodels.MME(),
		SuperviseGUTIRealloc: true,
	})
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	return composed
}

func firstMCProperty(t *testing.T) mc.Property {
	t.Helper()
	// A trivially-true invariant: verifies in one iteration when live,
	// and the cancelled context must stop the loop before the checker
	// ever runs.
	return mc.Invariant{PropName: "ctx-test", Holds: ts.And{}}
}

func TestVerifyContextAlreadyCancelled(t *testing.T) {
	composed := composedForTest(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := VerifyContext(ctx, composed, firstMCProperty(t), Config{PreCapture: true})
	if !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if out.Iterations != 0 {
		t.Errorf("cancelled run still iterated %d times", out.Iterations)
	}
	if out.Verified || out.Attack != nil {
		t.Error("cancelled run reported a verdict")
	}
}

func TestVerifyAllContextCollectsAndStops(t *testing.T) {
	composed := composedForTest(t)
	prop := firstMCProperty(t)

	// Live context: the property verifies and VerifyAll succeeds.
	outs, err := VerifyAllContext(context.Background(), composed, []mc.Property{prop}, Config{})
	if err != nil {
		t.Fatalf("VerifyAllContext: %v", err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d outcomes, want 1", len(outs))
	}

	// Cancelled context: prompt return, no outcomes, typed error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs, err = VerifyAllContext(ctx, composed, []mc.Property{prop, prop}, Config{})
	if !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if len(outs) != 0 {
		t.Errorf("cancelled catalogue produced %d outcomes", len(outs))
	}
}
