package fsmodel

import (
	"strings"
	"testing"

	"prochecker/internal/spec"
)

func TestDiffDisjointAndShared(t *testing.T) {
	a := New("a", "S")
	b := New("b", "S")
	shared := tr("S", "T", spec.AttachAccept, spec.AttachComplete)
	a.AddTransition(shared)
	b.AddTransition(shared)
	extraA := tr("S", "S", spec.Paging, spec.ServiceRequest)
	a.AddTransition(extraA)
	extraB := tr("T", "S", spec.DetachRequestNW, spec.DetachAccept)
	b.AddTransition(extraB)

	onlyA, onlyB := Diff(a, b)
	if len(onlyA) != 1 || onlyA[0].Key() != extraA.Key() {
		t.Errorf("onlyA = %v", onlyA)
	}
	if len(onlyB) != 1 || onlyB[0].Key() != extraB.Key() {
		t.Errorf("onlyB = %v", onlyB)
	}
}

func TestDiffIdenticalModelsClean(t *testing.T) {
	a := New("a", "S")
	a.AddTransition(tr("S", "T", spec.AttachAccept, spec.AttachComplete))
	rep := Deviations(a, a.Clone())
	if !rep.Clean() {
		t.Errorf("identical models deviate: %s", rep)
	}
	if !strings.Contains(rep.String(), "none") {
		t.Error("clean report should say none")
	}
}

func TestDiffPredicateSensitive(t *testing.T) {
	// The same endpoints with different predicates are different
	// behaviour — exactly how quirk transitions surface.
	a := New("a", "S")
	a.AddTransition(Transition{
		From: "S", To: "T",
		Cond:    Condition{Message: spec.AttachAccept, Predicates: []Predicate{{"count_fresh", "1"}}},
		Actions: []spec.MessageName{spec.AttachComplete},
	})
	b := New("b", "S")
	b.AddTransition(Transition{
		From: "S", To: "T",
		Cond:    Condition{Message: spec.AttachAccept, Predicates: []Predicate{{"count_fresh", "0"}}},
		Actions: []spec.MessageName{spec.AttachComplete},
	})
	onlyA, onlyB := Diff(a, b)
	if len(onlyA) != 1 || len(onlyB) != 1 {
		t.Errorf("predicate difference not surfaced: %v / %v", onlyA, onlyB)
	}
}

func TestDeviationReportRendersBothDirections(t *testing.T) {
	a := New("subject", "S")
	a.AddTransition(tr("S", "S", spec.Paging, spec.ServiceRequest))
	b := New("reference", "S")
	b.AddTransition(tr("S", "S", spec.EMMInformation, spec.NullAction))
	rep := Deviations(a, b)
	out := rep.String()
	if !strings.Contains(out, "+ ") || !strings.Contains(out, "- ") {
		t.Errorf("report misses directions:\n%s", out)
	}
	if rep.Clean() {
		t.Error("deviating models reported clean")
	}
}
