// Package fsmodel defines the protocol finite-state machine that is the
// currency of ProChecker: the 5-tuple (Σ, Γ, S, s₀, T) of Section III-B,
// with transitions (s_in, s_out, σ, γ) whose conditions carry both the
// triggering message and data-level predicates lifted from the
// implementation's sanity-check variables.
//
// It also implements the refinement relation of Section VII-B used to
// compare the automatically extracted model against LTEInspector's
// hand-built one, and Graphviz DOT export for inspection.
package fsmodel

import (
	"fmt"
	"sort"
	"strings"

	"prochecker/internal/spec"
)

// State is a protocol state name (e.g. EMM_REGISTERED).
type State string

// Predicate is one data-level constraint on a transition's condition,
// taken from a sanity-check variable in the information-rich log
// (e.g. mac_valid = 1).
type Predicate struct {
	Var   string
	Value string
}

// String renders the predicate as var=value.
func (p Predicate) String() string { return p.Var + "=" + p.Value }

// Condition is a transition trigger: the incoming message plus zero or
// more predicates that make it stricter (the σ ∧ φ form of the refinement
// definition).
type Condition struct {
	Message    spec.MessageName
	Predicates []Predicate
}

// String renders the condition deterministically.
func (c Condition) String() string {
	if len(c.Predicates) == 0 {
		return string(c.Message)
	}
	parts := make([]string, 0, len(c.Predicates))
	for _, p := range sortedPredicates(c.Predicates) {
		parts = append(parts, p.String())
	}
	return string(c.Message) + " & " + strings.Join(parts, " & ")
}

// Key returns a canonical identity for set membership.
func (c Condition) Key() string { return c.String() }

func sortedPredicates(ps []Predicate) []Predicate {
	out := make([]Predicate, len(ps))
	copy(out, ps)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Var != out[j].Var {
			return out[i].Var < out[j].Var
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Transition is one protocol step (s_in, s_out, σ, γ).
type Transition struct {
	From    State
	To      State
	Cond    Condition
	Actions []spec.MessageName
}

// Key returns a canonical identity for deduplication.
func (t Transition) Key() string {
	acts := make([]string, 0, len(t.Actions))
	for _, a := range t.Actions {
		acts = append(acts, string(a))
	}
	sort.Strings(acts)
	return fmt.Sprintf("%s -> %s [%s / %s]", t.From, t.To, t.Cond.Key(), strings.Join(acts, ","))
}

// String renders the transition human-readably.
func (t Transition) String() string { return t.Key() }

// FSM is the protocol state machine (Σ, Γ, S, s₀, T).
type FSM struct {
	// Name labels the machine (e.g. "UE/srsLTE").
	Name string
	// Initial is s₀.
	Initial State

	states      map[State]bool
	conditions  map[string]Condition
	actions     map[spec.MessageName]bool
	transitions map[string]Transition
	order       []string // insertion order of transition keys
}

// New creates an empty FSM with the given name and initial state.
func New(name string, initial State) *FSM {
	f := &FSM{
		Name:        name,
		Initial:     initial,
		states:      make(map[State]bool),
		conditions:  make(map[string]Condition),
		actions:     make(map[spec.MessageName]bool),
		transitions: make(map[string]Transition),
	}
	if initial != "" {
		f.states[initial] = true
	}
	return f
}

// AddState registers a state.
func (f *FSM) AddState(s State) {
	if s != "" {
		f.states[s] = true
	}
}

// AddTransition inserts a transition, registering its states, condition
// and actions; duplicates are merged. It reports whether the transition
// was new.
func (f *FSM) AddTransition(t Transition) bool {
	if t.From == "" || t.To == "" {
		return false
	}
	t.Cond.Predicates = sortedPredicates(t.Cond.Predicates)
	key := t.Key()
	if _, dup := f.transitions[key]; dup {
		return false
	}
	f.transitions[key] = t
	f.order = append(f.order, key)
	f.states[t.From] = true
	f.states[t.To] = true
	f.conditions[t.Cond.Key()] = t.Cond
	for _, a := range t.Actions {
		f.actions[a] = true
	}
	return true
}

// States returns the state set in sorted order.
func (f *FSM) States() []State {
	out := make([]State, 0, len(f.states))
	for s := range f.states {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasState reports membership of s in S.
func (f *FSM) HasState(s State) bool { return f.states[s] }

// Conditions returns Σ in sorted order.
func (f *FSM) Conditions() []Condition {
	keys := make([]string, 0, len(f.conditions))
	for k := range f.conditions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Condition, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.conditions[k])
	}
	return out
}

// ConditionMessages returns the distinct condition message names.
func (f *FSM) ConditionMessages() []spec.MessageName {
	set := make(map[spec.MessageName]bool)
	for _, c := range f.conditions {
		set[c.Message] = true
	}
	return spec.SortedMessageNames(set)
}

// Actions returns Γ in sorted order.
func (f *FSM) Actions() []spec.MessageName {
	return spec.SortedMessageNames(f.actions)
}

// Transitions returns T in insertion order.
func (f *FSM) Transitions() []Transition {
	out := make([]Transition, 0, len(f.order))
	for _, k := range f.order {
		out = append(out, f.transitions[k])
	}
	return out
}

// Size summarises the model: |S|, |Σ|, |Γ|, |T|.
func (f *FSM) Size() (states, conditions, actions, transitions int) {
	return len(f.states), len(f.conditions), len(f.actions), len(f.transitions)
}

// OutgoingFrom returns the transitions leaving state s.
func (f *FSM) OutgoingFrom(s State) []Transition {
	var out []Transition
	for _, t := range f.Transitions() {
		if t.From == s {
			out = append(out, t)
		}
	}
	return out
}

// Reachable returns the states reachable from the initial state.
func (f *FSM) Reachable() map[State]bool {
	seen := map[State]bool{}
	if f.Initial == "" {
		return seen
	}
	stack := []State{f.Initial}
	seen[f.Initial] = true
	adj := make(map[State][]State)
	for _, t := range f.transitions {
		adj[t.From] = append(adj[t.From], t.To)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range adj[s] {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return seen
}

// Validate reports structural problems: no initial state, transitions
// from unknown states, or unreachable states.
func (f *FSM) Validate() []string {
	var problems []string
	if f.Initial == "" {
		problems = append(problems, "no initial state")
	} else if !f.states[f.Initial] {
		problems = append(problems, fmt.Sprintf("initial state %s not in state set", f.Initial))
	}
	reach := f.Reachable()
	for _, s := range f.States() {
		if !reach[s] {
			problems = append(problems, fmt.Sprintf("state %s unreachable from %s", s, f.Initial))
		}
	}
	return problems
}

// Merge folds other's transitions into f.
func (f *FSM) Merge(other *FSM) {
	if other == nil {
		return
	}
	for _, t := range other.Transitions() {
		f.AddTransition(t)
	}
}

// Clone deep-copies the FSM.
func (f *FSM) Clone() *FSM {
	out := New(f.Name, f.Initial)
	for s := range f.states {
		out.AddState(s)
	}
	for _, t := range f.Transitions() {
		out.AddTransition(t)
	}
	return out
}

// DOT renders the FSM in Graphviz format, with conditions and actions as
// edge labels, matching the paper's "Graphviz-like language" input to the
// model generator.
func (f *FSM) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", f.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=ellipse];\n")
	if f.Initial != "" {
		fmt.Fprintf(&b, "  __start [shape=point];\n  __start -> %q;\n", string(f.Initial))
	}
	for _, s := range f.States() {
		fmt.Fprintf(&b, "  %q;\n", string(s))
	}
	for _, t := range f.Transitions() {
		acts := make([]string, 0, len(t.Actions))
		for _, a := range t.Actions {
			acts = append(acts, string(a))
		}
		label := t.Cond.String() + " / " + strings.Join(acts, ",")
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", string(t.From), string(t.To), label)
	}
	b.WriteString("}\n")
	return b.String()
}
