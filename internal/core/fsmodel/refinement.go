package fsmodel

import (
	"fmt"
	"sort"

	"prochecker/internal/spec"
)

// MappingKind classifies how a coarse-model transition maps into the
// refined model, following the three cases of the paper's refinement
// definition (Section VII-B).
type MappingKind uint8

// The three mapping cases.
const (
	// MappedDirect: case (i) — the transition exists verbatim.
	MappedDirect MappingKind = iota + 1
	// MappedStricter: case (ii) — same endpoints, condition of the form
	// σ ∧ φ (same message, extra predicates).
	MappedStricter
	// MappedSplit: case (iii) — the transition maps onto a path through
	// new intermediate states.
	MappedSplit
)

// String implements fmt.Stringer.
func (k MappingKind) String() string {
	switch k {
	case MappedDirect:
		return "direct"
	case MappedStricter:
		return "stricter-condition"
	case MappedSplit:
		return "split-via-new-states"
	default:
		return "unmapped"
	}
}

// StateMapping maps each coarse-model state onto the refined-model
// state(s) it corresponds to (one-to-many when the refined model has
// sub-states, e.g. ue_deregistered -> {EMM_DEREGISTERED,
// EMM_DEREGISTERED_ATTACH_NEEDED}).
type StateMapping map[State][]State

// TransitionMapping records how one coarse transition mapped.
type TransitionMapping struct {
	Coarse Transition
	Kind   MappingKind
	// Refined holds the matched refined transition(s); for MappedSplit
	// it is the path.
	Refined []Transition
}

// Report is the outcome of a refinement check.
type Report struct {
	// StatesMapped is true when every coarse state maps to at least one
	// refined state that exists (property 1).
	StatesMapped bool
	// ConditionsSuperset / ActionsSuperset are property 2: the refined
	// Σ/Γ contain every coarse condition message / action.
	ConditionsSuperset bool
	ActionsSuperset    bool
	// NewStates lists refined states with no coarse pre-image — the
	// sub-states automated extraction surfaces.
	NewStates []State
	// NewConditionMessages / NewPredicates list refinements of Σ.
	NewConditionMessages []string
	NewPredicates        []string
	// Mappings records property 3 per coarse transition.
	Mappings []TransitionMapping
	// Unmapped lists coarse transitions with no refined counterpart.
	Unmapped []Transition

	missingStates     []State
	missingConditions []string
	missingActions    []string
}

// Refines reports whether the report proves a refinement: all states
// mapped, condition/action supersets, and every transition mapped.
func (r *Report) Refines() bool {
	return r.StatesMapped && r.ConditionsSuperset && r.ActionsSuperset && len(r.Unmapped) == 0
}

// Problems lists human-readable reasons Refines() is false (empty when it
// is true).
func (r *Report) Problems() []string {
	var out []string
	for _, s := range r.missingStates {
		out = append(out, fmt.Sprintf("coarse state %s has no refined counterpart", s))
	}
	for _, c := range r.missingConditions {
		out = append(out, fmt.Sprintf("coarse condition %s missing from refined Σ", c))
	}
	for _, a := range r.missingActions {
		out = append(out, fmt.Sprintf("coarse action %s missing from refined Γ", a))
	}
	for _, t := range r.Unmapped {
		out = append(out, fmt.Sprintf("transition not mapped: %s", t))
	}
	return out
}

// CountByKind tallies transition mappings per kind.
func (r *Report) CountByKind() map[MappingKind]int {
	out := make(map[MappingKind]int)
	for _, m := range r.Mappings {
		out[m.Kind]++
	}
	return out
}

// maxSplitDepth bounds case-(iii) path search: a coarse transition may
// split into at most this many refined hops.
const maxSplitDepth = 3

// CheckRefinement verifies that refined is a refinement of coarse under
// the given state mapping, per the paper's definition.
func CheckRefinement(coarse, refined *FSM, mapping StateMapping) *Report {
	rep := &Report{StatesMapped: true, ConditionsSuperset: true, ActionsSuperset: true}

	// Property 1: every coarse state maps onto existing refined states.
	mapped := make(map[State]bool) // refined states with a pre-image
	for _, s := range coarse.States() {
		targets := mapping[s]
		ok := false
		for _, t := range targets {
			if refined.HasState(t) {
				ok = true
				mapped[t] = true
			}
		}
		if !ok {
			rep.StatesMapped = false
			rep.missingStates = append(rep.missingStates, s)
		}
	}
	for _, s := range refined.States() {
		if !mapped[s] {
			rep.NewStates = append(rep.NewStates, s)
		}
	}

	// Property 2: Σ and Γ supersets (at message granularity, since the
	// refined conditions add predicates on top).
	refinedMsgs := make(map[string]bool)
	for _, m := range refined.ConditionMessages() {
		refinedMsgs[string(m)] = true
	}
	coarseMsgs := make(map[string]bool)
	for _, m := range coarse.ConditionMessages() {
		coarseMsgs[string(m)] = true
		if !refinedMsgs[string(m)] {
			rep.ConditionsSuperset = false
			rep.missingConditions = append(rep.missingConditions, string(m))
		}
	}
	for m := range refinedMsgs {
		if !coarseMsgs[m] {
			rep.NewConditionMessages = append(rep.NewConditionMessages, m)
		}
	}
	sort.Strings(rep.NewConditionMessages)

	predSet := make(map[string]bool)
	for _, c := range refined.Conditions() {
		for _, p := range c.Predicates {
			predSet[p.String()] = true
		}
	}
	for p := range predSet {
		rep.NewPredicates = append(rep.NewPredicates, p)
	}
	sort.Strings(rep.NewPredicates)

	refinedActs := make(map[string]bool)
	for _, a := range refined.Actions() {
		refinedActs[string(a)] = true
	}
	for _, a := range coarse.Actions() {
		if !refinedActs[string(a)] {
			rep.ActionsSuperset = false
			rep.missingActions = append(rep.missingActions, string(a))
		}
	}

	// Property 3: map every coarse transition.
	for _, t := range coarse.Transitions() {
		m, ok := mapTransition(t, refined, mapping)
		if !ok {
			rep.Unmapped = append(rep.Unmapped, t)
			continue
		}
		rep.Mappings = append(rep.Mappings, m)
	}
	return rep
}

// mapTransition attempts the three mapping cases in order of preference.
func mapTransition(t Transition, refined *FSM, mapping StateMapping) (TransitionMapping, bool) {
	froms := mapping[t.From]
	tos := mapping[t.To]
	toSet := make(map[State]bool, len(tos))
	for _, s := range tos {
		toSet[s] = true
	}

	var direct, stricter *Transition
	for _, from := range froms {
		for _, rt := range refined.OutgoingFrom(from) {
			if !toSet[rt.To] || rt.Cond.Message != t.Cond.Message {
				continue
			}
			if !actionsCover(rt.Actions, t.Actions) {
				continue
			}
			rtCopy := rt
			if len(rt.Cond.Predicates) == 0 && len(t.Cond.Predicates) == 0 {
				direct = &rtCopy
			} else if predicatesCover(rt.Cond.Predicates, t.Cond.Predicates) {
				if stricter == nil {
					stricter = &rtCopy
				}
			}
		}
	}
	if direct != nil {
		return TransitionMapping{Coarse: t, Kind: MappedDirect, Refined: []Transition{*direct}}, true
	}
	if stricter != nil {
		return TransitionMapping{Coarse: t, Kind: MappedStricter, Refined: []Transition{*stricter}}, true
	}

	// Case (iii): a path whose first hop is triggered by σ and that ends
	// in a mapped to-state, accumulating the coarse actions along the way.
	for _, from := range froms {
		if path, ok := findSplitPath(refined, from, toSet, t, maxSplitDepth); ok {
			return TransitionMapping{Coarse: t, Kind: MappedSplit, Refined: path}, true
		}
	}
	return TransitionMapping{}, false
}

// findSplitPath searches for a path of at most depth hops realising the
// coarse transition: the first hop fires on the coarse condition message
// and the union of actions along the path covers the coarse actions.
func findSplitPath(refined *FSM, from State, toSet map[State]bool, t Transition, depth int) ([]Transition, bool) {
	type node struct {
		state State
		path  []Transition
	}
	queue := []node{{state: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if len(cur.path) >= depth {
			continue
		}
		for _, rt := range refined.OutgoingFrom(cur.state) {
			if len(cur.path) == 0 && rt.Cond.Message != t.Cond.Message {
				continue // first hop must fire on σ
			}
			next := node{state: rt.To, path: append(append([]Transition{}, cur.path...), rt)}
			if toSet[rt.To] && len(next.path) >= 2 {
				all := collectActions(next.path)
				if actionsCover(all, t.Actions) {
					return next.path, true
				}
			}
			queue = append(queue, next)
		}
	}
	return nil, false
}

func collectActions(path []Transition) []spec.MessageName {
	var out []spec.MessageName
	for _, t := range path {
		out = append(out, t.Actions...)
	}
	return out
}

func actionsCover(have, want []spec.MessageName) bool {
	set := make(map[spec.MessageName]bool, len(have))
	for _, a := range have {
		set[a] = true
	}
	for _, a := range want {
		if !set[a] {
			return false
		}
	}
	return true
}

func predicatesCover(have, want []Predicate) bool {
	set := make(map[string]bool, len(have))
	for _, p := range have {
		set[p.String()] = true
	}
	for _, p := range want {
		if !set[p.String()] {
			return false
		}
	}
	return true
}
