package fsmodel

import (
	"fmt"
	"sort"
	"strings"
)

// Diff computes the behavioural difference between two FSMs extracted
// with the same signature sets: transitions present in exactly one of
// them. Diffing an open-source profile's model against the conformant
// one surfaces the implementation deviations (I1-I6) directly — the
// "implementation mismatch" class of violations from Section III.
func Diff(a, b *FSM) (onlyA, onlyB []Transition) {
	inA := make(map[string]bool)
	for _, t := range a.Transitions() {
		inA[t.Key()] = true
	}
	inB := make(map[string]bool)
	for _, t := range b.Transitions() {
		inB[t.Key()] = true
	}
	for _, t := range a.Transitions() {
		if !inB[t.Key()] {
			onlyA = append(onlyA, t)
		}
	}
	for _, t := range b.Transitions() {
		if !inA[t.Key()] {
			onlyB = append(onlyB, t)
		}
	}
	return onlyA, onlyB
}

// DeviationReport summarises a Diff between a subject model and a
// reference (conformant) model.
type DeviationReport struct {
	Subject   string
	Reference string
	// Extra transitions exist only in the subject: behaviour the
	// reference implementation does not exhibit (accepting replays,
	// plaintext, ...).
	Extra []Transition
	// Missing transitions exist only in the reference: behaviour the
	// subject lacks (e.g. srsUE never reaches the sync-failure path it
	// short-circuits with I3).
	Missing []Transition
}

// Deviations diffs subject against reference and classifies the result.
func Deviations(subject, reference *FSM) *DeviationReport {
	extra, missing := Diff(subject, reference)
	sort.Slice(extra, func(i, j int) bool { return extra[i].Key() < extra[j].Key() })
	sort.Slice(missing, func(i, j int) bool { return missing[i].Key() < missing[j].Key() })
	return &DeviationReport{
		Subject:   subject.Name,
		Reference: reference.Name,
		Extra:     extra,
		Missing:   missing,
	}
}

// Clean reports whether the subject exhibits no deviations at all.
func (r *DeviationReport) Clean() bool {
	return len(r.Extra) == 0 && len(r.Missing) == 0
}

// String renders the report.
func (r *DeviationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "behavioural deviations of %s from %s:\n", r.Subject, r.Reference)
	if r.Clean() {
		b.WriteString("  none\n")
		return b.String()
	}
	if len(r.Extra) > 0 {
		fmt.Fprintf(&b, "  %d transition(s) only in %s:\n", len(r.Extra), r.Subject)
		for _, t := range r.Extra {
			fmt.Fprintf(&b, "    + %s\n", t)
		}
	}
	if len(r.Missing) > 0 {
		fmt.Fprintf(&b, "  %d transition(s) only in %s:\n", len(r.Missing), r.Reference)
		for _, t := range r.Missing {
			fmt.Fprintf(&b, "    - %s\n", t)
		}
	}
	return b.String()
}
