package fsmodel

import (
	"testing"

	"prochecker/internal/spec"
)

// buildLTEInspectorLike builds a tiny coarse model in LTEInspector's
// style and a ProChecker-style refinement of it, following the two
// examples of Figure 7.
func buildFig7Models() (coarse, refined *FSM, mapping StateMapping) {
	coarse = New("LTEInspector", "ue_deregistered")
	// Fig 7(i): register_initiated --smc/smc_complete--> registered.
	coarse.AddTransition(Transition{
		From: "ue_register_initiated", To: "ue_registered",
		Cond:    Condition{Message: spec.SecurityModeCommand},
		Actions: []spec.MessageName{spec.SecurityModeComplet},
	})
	// Fig 7(ii): dereg_initiated --detach_request/detach_accept--> deregistered.
	coarse.AddTransition(Transition{
		From: "ue_dereg_initiated", To: "ue_deregistered",
		Cond:    Condition{Message: spec.DetachRequestNW},
		Actions: []spec.MessageName{spec.DetachAccept},
	})

	refined = New("ProChecker", "EMM_DEREGISTERED")
	// (i) refined: same endpoints, stricter condition with the sequence
	// number predicate.
	refined.AddTransition(Transition{
		From: "EMM_REGISTERED_INITIATED", To: "EMM_REGISTERED",
		Cond: Condition{
			Message:    spec.SecurityModeCommand,
			Predicates: []Predicate{{"ue_sequence_number", "0"}},
		},
		Actions: []spec.MessageName{spec.SecurityModeComplet},
	})
	// (ii) refined: split through the new intermediate state
	// EMM_DEREGISTERED_ATTACH_NEEDED.
	refined.AddTransition(Transition{
		From: "EMM_DEREGISTERED_INITIATED", To: "EMM_DEREGISTERED_ATTACH_NEEDED",
		Cond:    Condition{Message: spec.DetachRequestNW, Predicates: []Predicate{{"detach_type", "2"}}},
		Actions: []spec.MessageName{spec.DetachAccept},
	})
	refined.AddTransition(Transition{
		From: "EMM_DEREGISTERED_ATTACH_NEEDED", To: "EMM_DEREGISTERED",
		Cond:    Condition{Message: spec.AttachReject},
		Actions: []spec.MessageName{spec.NullAction},
	})

	mapping = StateMapping{
		"ue_register_initiated": {"EMM_REGISTERED_INITIATED"},
		"ue_registered":         {"EMM_REGISTERED"},
		"ue_dereg_initiated":    {"EMM_DEREGISTERED_INITIATED"},
		"ue_deregistered":       {"EMM_DEREGISTERED", "EMM_DEREGISTERED_ATTACH_NEEDED"},
	}
	return coarse, refined, mapping
}

func TestFig7RefinementHolds(t *testing.T) {
	coarse, refined, mapping := buildFig7Models()
	rep := CheckRefinement(coarse, refined, mapping)
	if !rep.Refines() {
		t.Fatalf("refinement rejected: %v", rep.Problems())
	}
	counts := rep.CountByKind()
	// Both transitions map with stricter conditions: the SMC one gains
	// the sequence-number predicate (Fig 7(i)); the detach one lands on
	// the new sub-state (mapped under ue_deregistered) with a detach_type
	// predicate.
	if counts[MappedStricter]+counts[MappedSplit]+counts[MappedDirect] != 2 {
		t.Errorf("total mappings = %v, want 2 transitions mapped", counts)
	}
	var smcKind MappingKind
	for _, m := range rep.Mappings {
		if m.Coarse.Cond.Message == spec.SecurityModeCommand {
			smcKind = m.Kind
		}
	}
	if smcKind != MappedStricter {
		t.Errorf("SMC transition mapped as %s, want stricter-condition (Fig 7(i))", smcKind)
	}
	// The new intermediate state appears as a refinement surplus only if
	// unmapped; here it is mapped under ue_deregistered, so NewStates is
	// empty. Check the new predicate instead.
	foundPred := false
	for _, p := range rep.NewPredicates {
		if p == "ue_sequence_number=0" {
			foundPred = true
		}
	}
	if !foundPred {
		t.Errorf("NewPredicates = %v, want ue_sequence_number=0", rep.NewPredicates)
	}
}

func TestRefinementFailsOnMissingState(t *testing.T) {
	coarse, refined, mapping := buildFig7Models()
	delete(mapping, "ue_registered")
	rep := CheckRefinement(coarse, refined, mapping)
	if rep.Refines() {
		t.Error("refinement held despite unmapped coarse state")
	}
	if rep.StatesMapped {
		t.Error("StatesMapped = true with a deleted mapping")
	}
}

func TestRefinementFailsOnMissingCondition(t *testing.T) {
	coarse, refined, mapping := buildFig7Models()
	coarse.AddTransition(Transition{
		From: "ue_registered", To: "ue_deregistered",
		Cond:    Condition{Message: spec.AuthReject},
		Actions: []spec.MessageName{spec.NullAction},
	})
	rep := CheckRefinement(coarse, refined, mapping)
	if rep.Refines() {
		t.Error("refinement held despite missing condition message")
	}
	if rep.ConditionsSuperset {
		t.Error("ConditionsSuperset = true with auth_reject absent from refined model")
	}
}

func TestRefinementFailsOnMissingAction(t *testing.T) {
	coarse, refined, mapping := buildFig7Models()
	coarse.AddTransition(Transition{
		From: "ue_register_initiated", To: "ue_registered",
		Cond:    Condition{Message: spec.SecurityModeCommand},
		Actions: []spec.MessageName{spec.TAUComplete}, // never in refined Γ
	})
	rep := CheckRefinement(coarse, refined, mapping)
	if rep.ActionsSuperset {
		t.Error("ActionsSuperset = true with tau_complete absent")
	}
	if len(rep.Unmapped) == 0 {
		t.Error("transition with uncoverable action was mapped")
	}
}

func TestSplitMapping(t *testing.T) {
	// Force a genuine case-(iii) split: the action is only completed on
	// the second hop.
	coarse := New("c", "a1")
	coarse.AddTransition(Transition{
		From: "a1", To: "a2",
		Cond:    Condition{Message: spec.AttachAccept},
		Actions: []spec.MessageName{spec.AttachComplete},
	})
	refined := New("r", "B1")
	refined.AddTransition(Transition{
		From: "B1", To: "Bmid",
		Cond:    Condition{Message: spec.AttachAccept},
		Actions: []spec.MessageName{spec.NullAction},
	})
	refined.AddTransition(Transition{
		From: "Bmid", To: "B2",
		Cond:    Condition{Message: spec.EMMInformation},
		Actions: []spec.MessageName{spec.AttachComplete},
	})
	mapping := StateMapping{"a1": {"B1"}, "a2": {"B2"}}
	rep := CheckRefinement(coarse, refined, mapping)
	if !rep.Refines() {
		t.Fatalf("split refinement rejected: %v", rep.Problems())
	}
	if rep.CountByKind()[MappedSplit] != 1 {
		t.Errorf("mappings = %v, want one split", rep.CountByKind())
	}
	// Bmid has no coarse pre-image: it must appear as a new state.
	if len(rep.NewStates) != 1 || rep.NewStates[0] != "Bmid" {
		t.Errorf("NewStates = %v, want [Bmid]", rep.NewStates)
	}
}

func TestMappingKindStrings(t *testing.T) {
	if MappedDirect.String() != "direct" ||
		MappedStricter.String() != "stricter-condition" ||
		MappedSplit.String() != "split-via-new-states" ||
		MappingKind(0).String() != "unmapped" {
		t.Error("mapping kind strings wrong")
	}
}
