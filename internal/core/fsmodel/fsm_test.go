package fsmodel

import (
	"strings"
	"testing"
	"testing/quick"

	"prochecker/internal/spec"
)

func tr(from, to State, msg spec.MessageName, acts ...spec.MessageName) Transition {
	return Transition{From: from, To: to, Cond: Condition{Message: msg}, Actions: acts}
}

func TestAddTransitionRegistersTuple(t *testing.T) {
	f := New("test", "A")
	ok := f.AddTransition(tr("A", "B", spec.AttachAccept, spec.AttachComplete))
	if !ok {
		t.Fatal("AddTransition returned false for new transition")
	}
	s, c, a, tt := f.Size()
	if s != 2 || c != 1 || a != 1 || tt != 1 {
		t.Errorf("Size = (%d,%d,%d,%d), want (2,1,1,1)", s, c, a, tt)
	}
}

func TestAddTransitionDeduplicates(t *testing.T) {
	f := New("test", "A")
	f.AddTransition(tr("A", "B", spec.AttachAccept, spec.AttachComplete))
	if f.AddTransition(tr("A", "B", spec.AttachAccept, spec.AttachComplete)) {
		t.Error("duplicate transition reported as new")
	}
	if _, _, _, n := f.Size(); n != 1 {
		t.Errorf("transitions = %d, want 1", n)
	}
}

func TestAddTransitionRejectsEmptyStates(t *testing.T) {
	f := New("test", "A")
	if f.AddTransition(tr("", "B", spec.AttachAccept)) {
		t.Error("transition with empty From accepted")
	}
	if f.AddTransition(tr("A", "", spec.AttachAccept)) {
		t.Error("transition with empty To accepted")
	}
}

func TestConditionStringDeterministic(t *testing.T) {
	c1 := Condition{Message: spec.AttachAccept, Predicates: []Predicate{{"b", "1"}, {"a", "0"}}}
	c2 := Condition{Message: spec.AttachAccept, Predicates: []Predicate{{"a", "0"}, {"b", "1"}}}
	if c1.String() != c2.String() {
		t.Errorf("condition strings differ: %q vs %q", c1, c2)
	}
	if want := "attach_accept & a=0 & b=1"; c1.String() != want {
		t.Errorf("String = %q, want %q", c1.String(), want)
	}
}

func TestPredicateOrderInsensitiveDedup(t *testing.T) {
	f := New("test", "A")
	f.AddTransition(Transition{From: "A", To: "B",
		Cond: Condition{Message: spec.AuthRequest, Predicates: []Predicate{{"x", "1"}, {"y", "0"}}}})
	added := f.AddTransition(Transition{From: "A", To: "B",
		Cond: Condition{Message: spec.AuthRequest, Predicates: []Predicate{{"y", "0"}, {"x", "1"}}}})
	if added {
		t.Error("predicate order changed transition identity")
	}
}

func TestReachableAndValidate(t *testing.T) {
	f := New("test", "A")
	f.AddTransition(tr("A", "B", spec.AttachAccept))
	f.AddTransition(tr("B", "A", spec.DetachRequestNW))
	f.AddState("ORPHAN")
	problems := f.Validate()
	if len(problems) != 1 || !strings.Contains(problems[0], "ORPHAN") {
		t.Errorf("Validate = %v, want one ORPHAN problem", problems)
	}
	reach := f.Reachable()
	if !reach["A"] || !reach["B"] || reach["ORPHAN"] {
		t.Errorf("Reachable = %v", reach)
	}
}

func TestValidateNoInitial(t *testing.T) {
	f := New("test", "")
	if problems := f.Validate(); len(problems) == 0 {
		t.Error("Validate passed with no initial state")
	}
}

func TestMergeAndClone(t *testing.T) {
	a := New("a", "S0")
	a.AddTransition(tr("S0", "S1", spec.AttachAccept))
	b := New("b", "S0")
	b.AddTransition(tr("S1", "S0", spec.DetachRequestNW))
	a.Merge(b)
	if _, _, _, n := a.Size(); n != 2 {
		t.Errorf("merged transitions = %d, want 2", n)
	}
	c := a.Clone()
	c.AddTransition(tr("S1", "S2", spec.Paging))
	if _, _, _, n := a.Size(); n != 2 {
		t.Error("Clone aliases original")
	}
	a.Merge(nil) // must not panic
}

func TestOutgoingFrom(t *testing.T) {
	f := New("test", "A")
	f.AddTransition(tr("A", "B", spec.AttachAccept))
	f.AddTransition(tr("A", "C", spec.AttachReject))
	f.AddTransition(tr("B", "A", spec.DetachRequestNW))
	if got := len(f.OutgoingFrom("A")); got != 2 {
		t.Errorf("OutgoingFrom(A) = %d, want 2", got)
	}
}

func TestDOTContainsEdgesAndInitial(t *testing.T) {
	f := New("ue", "EMM_DEREGISTERED")
	f.AddTransition(Transition{
		From: "EMM_REGISTERED_INITIATED", To: "EMM_REGISTERED",
		Cond:    Condition{Message: spec.AttachAccept, Predicates: []Predicate{{"mac_valid", "1"}}},
		Actions: []spec.MessageName{spec.AttachComplete},
	})
	dot := f.DOT()
	for _, want := range []string{
		"digraph", "__start", "EMM_DEREGISTERED",
		"attach_accept & mac_valid=1 / attach_complete",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT misses %q:\n%s", want, dot)
		}
	}
}

func TestTransitionsInsertionOrderStable(t *testing.T) {
	f := New("test", "A")
	f.AddTransition(tr("A", "B", spec.AttachAccept))
	f.AddTransition(tr("B", "C", spec.Paging))
	f.AddTransition(tr("C", "A", spec.DetachRequestNW))
	ts := f.Transitions()
	if ts[0].To != "B" || ts[1].To != "C" || ts[2].To != "A" {
		t.Errorf("insertion order not preserved: %v", ts)
	}
}

func TestPropertySizeConsistency(t *testing.T) {
	// |T| of the FSM always equals the number of distinct keys inserted.
	prop := func(edges []uint8) bool {
		f := New("q", "S0")
		keys := make(map[string]bool)
		states := []State{"S0", "S1", "S2", "S3"}
		msgs := []spec.MessageName{spec.AttachAccept, spec.Paging, spec.AuthRequest}
		for _, e := range edges {
			t := tr(states[e%4], states[(e/4)%4], msgs[(e/16)%3])
			keys[t.Key()] = true
			f.AddTransition(t)
		}
		_, _, _, n := f.Size()
		return n == len(keys)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
