package props

import (
	"prochecker/internal/cpv"
	"prochecker/internal/spec"
)

// ESMCatalogue is the session-management property set — an extension
// beyond the paper's 62 NAS/EMM properties, demonstrating that the same
// machinery (extraction, threat composition, CEGAR) applies per layer
// (challenge C4).
func ESMCatalogue() []Property {
	return []Property{
		{
			ID: "E01", Class: Security, Kind: KindMC,
			Text:    "The UE shall not activate a bearer from an unprotected activation command.",
			Source:  "TS 24.301 4.4.4.2 (ESM rides on the secured NAS connection)",
			Detects: []string{AttackI2},
			MC: never("E01", nameHas(
				":recv:"+string(spec.ActDefaultBearerReq)+"@",
				"plain_header=1",
				"/"+string(spec.ActDefaultBearerAcc),
			)),
		},
		{
			ID: "E02", Class: Security, Kind: KindMC,
			Text:    "The UE shall not act on a replayed bearer activation.",
			Source:  "TS 24.301 4.4.3.2",
			Detects: []string{AttackI1},
			MC: never("E02", nameHas(
				":recv:"+string(spec.ActDefaultBearerReq)+"@replay",
				"/"+string(spec.ActDefaultBearerAcc),
			)),
		},
		{
			ID: "E03", Class: Security, Kind: KindMC,
			Text:    "An initiated PDN connectivity procedure eventually activates the bearer or is rejected.",
			Source:  "TS 24.301 6.5.1",
			Detects: []string{AttackP3},
			MC: response("E03",
				nameHas("ue:internal:", "/"+string(spec.PDNConnectivityReq)),
				nameHas("mme:recv:"+string(spec.ActDefaultBearerAcc)+"@"),
				nil,
			),
		},
		{
			ID: "E04", Class: Security, Kind: KindMC,
			Text:   "A forged bearer activation shall never be accepted.",
			Source: "TS 24.301 4.4.4",
			MC: never("E04", nameHas(
				":recv:"+string(spec.ActDefaultBearerReq)+"@inject",
				"/"+string(spec.ActDefaultBearerAcc),
			)),
		},
		{
			ID: "E05", Class: Privacy, Kind: KindKnowledge,
			Text:   "The APN in ciphered session-management signalling stays confidential.",
			Source: "TS 24.301 6.5.1 (sent ciphered)",
			Knowledge: &KnowledgeQuery{
				Observe: []cpv.Term{cpv.MessageTerm(spec.ActDefaultBearerReq)},
				Target:  cpv.PayloadTerm(spec.ActDefaultBearerReq),
			},
		},
	}
}
