package props

import (
	"testing"

	"prochecker/internal/core/fsmodel"
	"prochecker/internal/core/threat"
	"prochecker/internal/ltemodels"
	"prochecker/internal/mc"
	"prochecker/internal/ue"
)

func TestCatalogueCountsMatchPaper(t *testing.T) {
	sec, priv := Counts()
	if sec != 37 {
		t.Errorf("security properties = %d, want 37", sec)
	}
	if priv != 25 {
		t.Errorf("privacy properties = %d, want 25", priv)
	}
	if sec+priv != 62 {
		t.Errorf("total = %d, want 62", sec+priv)
	}
}

func TestCatalogueWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for _, p := range Catalogue() {
		if p.ID == "" || p.Text == "" || p.Source == "" {
			t.Errorf("property %q incomplete: %+v", p.ID, p)
		}
		if seen[p.ID] {
			t.Errorf("duplicate property ID %s", p.ID)
		}
		seen[p.ID] = true
		switch p.Kind {
		case KindMC:
			if p.MC == nil {
				t.Errorf("%s: KindMC without MC builder", p.ID)
			}
			if prop := p.MC(); prop.Name() != p.ID {
				t.Errorf("%s: MC property named %q", p.ID, prop.Name())
			}
		case KindEquivalence:
			if p.Equivalence == nil {
				t.Errorf("%s: KindEquivalence without query", p.ID)
			}
		case KindKnowledge:
			if p.Knowledge == nil || p.Knowledge.Target == nil {
				t.Errorf("%s: KindKnowledge without query", p.ID)
			}
		default:
			t.Errorf("%s: unknown kind %q", p.ID, p.Kind)
		}
	}
}

func TestTableIICommonSetHas14(t *testing.T) {
	common := CommonWithLTEInspector()
	if len(common) != 14 {
		t.Fatalf("common properties = %d, want 14 (Table II)", len(common))
	}
	for _, p := range common {
		if p.Kind != KindMC {
			t.Errorf("%s: Table II property must be model-checkable on both models", p.ID)
		}
	}
}

func TestEveryTableIAttackHasDetector(t *testing.T) {
	attacks := []string{
		AttackP1, AttackP2, AttackP3,
		AttackI1, AttackI2, AttackI3, AttackI4, AttackI5, AttackI6,
		AttackAuthSyncDoS, AttackKickOff, AttackPanic, AttackTMSILink,
		AttackIMSIPaging, AttackSyncFailLink, AttackAuthRelay, AttackNumb,
		AttackTAUDowngrade, AttackDenialAll, AttackPagingHijack,
		AttackDetachDown, AttackServiceDenial, AttackGUTILink,
	}
	if len(attacks) != 23 {
		t.Fatalf("attack universe = %d, want 23 (Table I rows)", len(attacks))
	}
	for _, a := range attacks {
		if len(Detecting(a)) == 0 {
			t.Errorf("attack %s has no detecting property", a)
		}
	}
}

func TestByID(t *testing.T) {
	p, ok := ByID("S06")
	if !ok || p.Class != Security {
		t.Errorf("ByID(S06) = %+v, %v", p, ok)
	}
	if _, ok := ByID("NOPE"); ok {
		t.Error("ByID(NOPE) found something")
	}
}

func TestKnowledgeQueries(t *testing.T) {
	for _, tt := range []struct {
		id       string
		verified bool
	}{
		{"V11", false}, // IMSI attach exposes the IMSI: attack
		{"V12", true},  // GUTI attach conceals it
		{"V13", false}, // plaintext identity_response leaks
		{"V14", true},  // ciphered identity_response conceals
		{"V15", true},  // AUTS conceals SQN
		{"V16", true},
		{"V17", true},
		{"V18", true},
		{"V19", true},
		{"V20", true},
		{"V21", true},
	} {
		t.Run(tt.id, func(t *testing.T) {
			p, ok := ByID(tt.id)
			if !ok || p.Knowledge == nil {
				t.Fatalf("property %s missing or not a knowledge query", tt.id)
			}
			res := EvaluateKnowledge(*p.Knowledge)
			if res.Verified != tt.verified {
				t.Errorf("%s verified = %v, want %v (%s)", tt.id, res.Verified, tt.verified, res.Detail)
			}
		})
	}
}

func TestEquivalenceP2AllProfiles(t *testing.T) {
	// P2 is a standards-level flaw: every implementation's victim is
	// distinguishable by its answer to a stale replayed challenge.
	p, _ := ByID("V04")
	for _, profile := range []ue.Profile{ue.ProfileConformant, ue.ProfileSRS, ue.ProfileOAI} {
		t.Run(profile.String(), func(t *testing.T) {
			res, err := EvaluateEquivalence(*p.Equivalence, profile)
			if err != nil {
				t.Fatalf("EvaluateEquivalence: %v", err)
			}
			if res.Verified {
				t.Errorf("P2 linkability missed: %s", res.Detail)
			}
			if res.VictimResponse != "authentication_response" {
				t.Errorf("victim answered %q, want authentication_response", res.VictimResponse)
			}
			if res.OtherResponse != "auth_mac_failure" {
				t.Errorf("bystander answered %q, want auth_mac_failure", res.OtherResponse)
			}
		})
	}
}

func TestEquivalenceSyncFailureLinkability(t *testing.T) {
	p, _ := ByID("V05")
	res, err := EvaluateEquivalence(*p.Equivalence, ue.ProfileConformant)
	if err != nil {
		t.Fatalf("EvaluateEquivalence: %v", err)
	}
	if res.Verified {
		t.Errorf("sync-failure linkability missed: %s", res.Detail)
	}
	if res.VictimResponse != "auth_sync_failure" || res.OtherResponse != "auth_mac_failure" {
		t.Errorf("responses = %q / %q", res.VictimResponse, res.OtherResponse)
	}
}

func TestEquivalenceSMCReplayProfileDependent(t *testing.T) {
	p, _ := ByID("V06")
	conformant, err := EvaluateEquivalence(*p.Equivalence, ue.ProfileConformant)
	if err != nil {
		t.Fatalf("conformant: %v", err)
	}
	if !conformant.Verified {
		t.Errorf("conformant UE distinguishable on replayed SMC: %s", conformant.Detail)
	}
	for _, profile := range []ue.Profile{ue.ProfileSRS, ue.ProfileOAI} {
		res, err := EvaluateEquivalence(*p.Equivalence, profile)
		if err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		if res.Verified {
			t.Errorf("%s: I6 linkability missed: %s", profile, res.Detail)
		}
	}
}

func TestEquivalenceGUTIRealloReplay(t *testing.T) {
	p, _ := ByID("V07")
	conformant, err := EvaluateEquivalence(*p.Equivalence, ue.ProfileConformant)
	if err != nil {
		t.Fatalf("conformant: %v", err)
	}
	if !conformant.Verified {
		t.Errorf("conformant UE linkable via replayed reallocation: %s", conformant.Detail)
	}
	srs, err := EvaluateEquivalence(*p.Equivalence, ue.ProfileSRS)
	if err != nil {
		t.Fatalf("srs: %v", err)
	}
	if srs.Verified {
		t.Errorf("srs replay acceptance should be linkable: %s", srs.Detail)
	}
}

func TestEquivalenceAttachIdentity(t *testing.T) {
	p, _ := ByID("V08")
	res, err := EvaluateEquivalence(*p.Equivalence, ue.ProfileConformant)
	if err != nil {
		t.Fatalf("EvaluateEquivalence: %v", err)
	}
	// Our implementations, like the evaluated stacks, include the IMSI in
	// attach_request: linkable (standards-level exposure).
	if res.Verified {
		t.Errorf("attach identity exposure missed: %s", res.Detail)
	}
}

func TestEquivalenceGUTICrossRealloc(t *testing.T) {
	p, _ := ByID("V23")
	res, err := EvaluateEquivalence(*p.Equivalence, ue.ProfileConformant)
	if err != nil {
		t.Fatalf("EvaluateEquivalence: %v", err)
	}
	if !res.Verified {
		t.Errorf("ciphered reallocation leaked the GUTI: %s", res.Detail)
	}
}

func TestEvaluateEquivalenceUnknownScenario(t *testing.T) {
	if _, err := EvaluateEquivalence(EquivalenceQuery{Scenario: "bogus"}, ue.ProfileConformant); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestTableIIPropsBuildOnCoarseModel: every Table II property must be
// checkable on the LTEInspector composition (the Figure 8 requirement).
func TestTableIIPropsBuildOnCoarseModel(t *testing.T) {
	c, err := threat.Compose(threat.Config{
		UE:                   ltemodels.LTEInspectorUE(),
		MME:                  ltemodels.MME(),
		UEInternal:           []fsmodel.Transition{},
		SuperviseGUTIRealloc: true,
	})
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	// Spot-check two safety properties end to end; building all 14
	// verifies the constructors do not panic on the coarse model.
	for _, p := range CommonWithLTEInspector() {
		prop := p.MC()
		if prop.Name() != p.ID {
			t.Errorf("%s: builder returned %q", p.ID, prop.Name())
		}
	}
	res := mc.Check(c.System, ByIDMust(t, "S24").MC(), mc.Options{})
	if res.Verified {
		t.Error("S24 (injected attach_reject) verified on coarse model; expected violation")
	}
}

// ByIDMust fetches a property or fails the test.
func ByIDMust(t *testing.T, id string) Property {
	t.Helper()
	p, ok := ByID(id)
	if !ok {
		t.Fatalf("property %s missing", id)
	}
	return p
}
