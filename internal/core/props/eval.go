package props

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"prochecker/internal/channel"
	"prochecker/internal/conformance"
	"prochecker/internal/cpv"
	"prochecker/internal/nas"
	"prochecker/internal/obs"
	"prochecker/internal/resilience"
	"prochecker/internal/security"
	"prochecker/internal/spec"
	"prochecker/internal/sqn"
	"prochecker/internal/ue"
)

// Equivalence scenario identifiers.
const (
	// ScenarioAuthResponseLinkability is P2: a stale captured challenge
	// is replayed to every UE in a cell; the victim answers
	// authentication_response, everyone else auth_mac_failure.
	ScenarioAuthResponseLinkability = "auth_response_linkability"
	// ScenarioSyncFailureLinkability is the 3G-style attack: the victim
	// answers a consumed challenge with auth_sync_failure, others with
	// auth_mac_failure.
	ScenarioSyncFailureLinkability = "sync_failure_linkability"
	// ScenarioSMCReplayLinkability is I6: a captured
	// security_mode_command is replayed; a quirky victim answers.
	ScenarioSMCReplayLinkability = "smc_replay_linkability"
	// ScenarioGUTIRealloReplayLinkability replays a captured
	// (GUTI/TMSI) reallocation command.
	ScenarioGUTIRealloReplayLinkability = "guti_realloc_replay_linkability"
	// ScenarioAttachIdentityLinkability checks whether consecutive attach
	// requests expose a linkable permanent identifier.
	ScenarioAttachIdentityLinkability = "attach_identity_linkability"
	// ScenarioGUTICrossRealloc checks that reallocated GUTIs are not
	// observable on the air.
	ScenarioGUTICrossRealloc = "guti_cross_realloc"
)

// KnowledgeResult is the outcome of a deduction query.
type KnowledgeResult struct {
	Verified  bool
	Derivable bool
	Detail    string
}

// EvaluateKnowledge runs an intruder-deduction property: the property
// holds iff the target is NOT derivable after observing the query's
// terms.
func EvaluateKnowledge(q KnowledgeQuery) KnowledgeResult {
	if q.Target == nil {
		return KnowledgeResult{Detail: "no target term"}
	}
	know := cpv.NewKnowledge(cpv.PublicInitialKnowledge()...)
	for _, t := range q.Observe {
		know.Add(t)
	}
	derivable := know.Derivable(q.Target)
	detail := fmt.Sprintf("target %s derivable=%v after observing %d message(s)", q.Target, derivable, len(q.Observe))
	return KnowledgeResult{Verified: !derivable, Derivable: derivable, Detail: detail}
}

// EquivalenceResult is the outcome of a linkability scenario.
type EquivalenceResult struct {
	// Verified is true when victim and bystander are indistinguishable.
	Verified bool
	// VictimResponse / OtherResponse label what each answered to the
	// distinguishing probe ("" = silence).
	VictimResponse string
	OtherResponse  string
	Detail         string
}

// EvaluateEquivalence runs a linkability scenario against live UE
// instances of the given implementation profile — the in-process
// equivalent of posing the observational-equivalence query to ProVerif
// and validating it on the testbed.
func EvaluateEquivalence(q EquivalenceQuery, profile ue.Profile) (EquivalenceResult, error) {
	return EvaluateEquivalenceContext(context.Background(), q, profile)
}

// EvaluateEquivalenceContext is EvaluateEquivalence with cancellation:
// each scenario checks ctx before building its environments and again
// between setup and the distinguishing probes, returning an error
// wrapping resilience.ErrCancelled once ctx is done.
func EvaluateEquivalenceContext(ctx context.Context, q EquivalenceQuery, profile ue.Profile) (res EquivalenceResult, err error) {
	ctx, span := obs.Start(ctx, "equivalence.scenario", obs.A("scenario", q.Scenario))
	defer func() {
		if err == nil {
			span.SetAttr("verified", fmt.Sprint(res.Verified))
		}
		if reg := obs.FromContext(ctx).Metrics(); reg != nil {
			reg.Counter("equivalence.scenarios").Inc()
		}
		span.EndErr(err)
	}()
	if err := cancelled(ctx, q.Scenario); err != nil {
		return EquivalenceResult{}, err
	}
	switch q.Scenario {
	case ScenarioAuthResponseLinkability:
		return authReplayScenario(ctx, profile, false)
	case ScenarioSyncFailureLinkability:
		return authReplayScenario(ctx, profile, true)
	case ScenarioSMCReplayLinkability:
		return protectedReplayScenario(ctx, profile, nas.HeaderIntegrity)
	case ScenarioGUTIRealloReplayLinkability:
		return gutiRealloReplayScenario(ctx, profile)
	case ScenarioAttachIdentityLinkability:
		return attachIdentityScenario(ctx, profile)
	case ScenarioGUTICrossRealloc:
		return gutiCrossReallocScenario(ctx, profile)
	default:
		return EquivalenceResult{}, fmt.Errorf("props: unknown equivalence scenario %q", q.Scenario)
	}
}

// cancelled converts a done context into the typed cancellation error.
func cancelled(ctx context.Context, scenario string) error {
	if ctx.Err() != nil {
		return fmt.Errorf("props: scenario %s: %w", scenario, resilience.ErrCancelled)
	}
	return nil
}

// responseLabel classifies a UE's reply packets for distinguishability.
func responseLabel(replies []nas.Packet) string {
	if len(replies) == 0 {
		return ""
	}
	p := replies[0]
	if p.Header == nas.HeaderPlain {
		if m, err := nas.Unmarshal(p.Payload); err == nil {
			return string(m.Name())
		}
		return "plain"
	}
	// Protected replies are classified by on-air metadata only (header
	// type), as a real adversary would.
	return "protected:" + p.Header.String()
}

// authReplayScenario builds the two-UE experiment of Figures 4 and 6.
// When consumed is false the replayed challenge is stale-but-fresh for
// the victim (P2); when true it was already consumed (sync-failure
// linkability).
func authReplayScenario(ctx context.Context, profile ue.Profile, consumed bool) (EquivalenceResult, error) {
	kVictim := security.KeyFromBytes([]byte("victim-k"))
	kOther := security.KeyFromBytes([]byte("other-k"))
	victim, err := ue.New(ue.Config{Profile: profile, IMSI: "001010000000001", K: kVictim})
	if err != nil {
		return EquivalenceResult{}, fmt.Errorf("props: building victim: %w", err)
	}
	other, err := ue.New(ue.Config{Profile: profile, IMSI: "001010000000002", K: kOther})
	if err != nil {
		return EquivalenceResult{}, fmt.Errorf("props: building bystander: %w", err)
	}

	gen, err := sqn.NewGenerator(sqn.DefaultConfig())
	if err != nil {
		return EquivalenceResult{}, err
	}
	mkChallenge := func(seq uint64, seed byte) (nas.Packet, error) {
		var rand [security.RANDSize]byte
		rand[0] = seed
		v := security.GenerateVector(kVictim, rand, seq)
		return (&nas.Context{}).Seal(&nas.AuthRequest{RAND: v.RAND, AUTN: v.AUTN}, nas.HeaderPlain, nas.DirDownlink)
	}

	if err := cancelled(ctx, ScenarioAuthResponseLinkability); err != nil {
		return EquivalenceResult{}, err
	}
	seq1 := gen.Next()
	captured, err := mkChallenge(seq1, 1)
	if err != nil {
		return EquivalenceResult{}, fmt.Errorf("props: building challenge: %w", err)
	}
	if consumed {
		// The victim already answered this exact challenge.
		victim.HandleDownlink(captured)
	} else {
		// The victim moved on to a newer challenge; the captured one is
		// stale but its IND slot is untouched (P1's precondition).
		fresh, err := mkChallenge(gen.Next(), 2)
		if err != nil {
			return EquivalenceResult{}, fmt.Errorf("props: building challenge: %w", err)
		}
		victim.HandleDownlink(fresh)
	}

	vResp := responseLabel(victim.HandleDownlink(captured))
	oResp := responseLabel(other.HandleDownlink(captured))
	res := EquivalenceResult{
		Verified:       vResp == oResp,
		VictimResponse: vResp,
		OtherResponse:  oResp,
	}
	res.Detail = fmt.Sprintf("victim answered %q, bystander %q", vResp, oResp)
	return res, nil
}

// protectedReplayScenario attaches a victim, captures a protected
// downlink message with the given header, and replays it to the victim
// and to a bystander from another session.
func protectedReplayScenario(ctx context.Context, profile ue.Profile, header nas.SecurityHeader) (EquivalenceResult, error) {
	env, err := conformance.NewEnv(profile, nil)
	if err != nil {
		return EquivalenceResult{}, err
	}
	if err := env.Attach(); err != nil {
		return EquivalenceResult{}, fmt.Errorf("props: attaching victim: %w", err)
	}
	if err := cancelled(ctx, ScenarioSMCReplayLinkability); err != nil {
		return EquivalenceResult{}, err
	}
	var probe *nas.Packet
	for _, p := range env.Link.Captured(channel.Downlink) {
		if p.Header == header {
			pp := p
			probe = &pp
			break
		}
	}
	if probe == nil {
		return EquivalenceResult{}, errors.New("props: no protected message captured for replay")
	}
	other, err := ue.New(ue.Config{Profile: profile, IMSI: "001010000000009", K: security.KeyFromBytes([]byte("bystander"))})
	if err != nil {
		return EquivalenceResult{}, err
	}
	vResp := responseLabel(env.UE.HandleDownlink(*probe))
	oResp := responseLabel(other.HandleDownlink(*probe))
	return EquivalenceResult{
		Verified:       vResp == oResp,
		VictimResponse: vResp,
		OtherResponse:  oResp,
		Detail:         fmt.Sprintf("victim answered %q, bystander %q", vResp, oResp),
	}, nil
}

// gutiRealloReplayScenario is protectedReplayScenario specialised to the
// reallocation command (the EPS analogue of TMSI reallocation replay).
func gutiRealloReplayScenario(ctx context.Context, profile ue.Profile) (EquivalenceResult, error) {
	env, err := conformance.NewEnv(profile, nil)
	if err != nil {
		return EquivalenceResult{}, err
	}
	if err := env.Attach(); err != nil {
		return EquivalenceResult{}, err
	}
	if err := cancelled(ctx, ScenarioGUTIRealloReplayLinkability); err != nil {
		return EquivalenceResult{}, err
	}
	cmd, err := env.MME.StartGUTIReallocation()
	if err != nil {
		return EquivalenceResult{}, err
	}
	env.SendDownlink(cmd)
	other, err := ue.New(ue.Config{Profile: profile, IMSI: "001010000000009", K: security.KeyFromBytes([]byte("bystander"))})
	if err != nil {
		return EquivalenceResult{}, err
	}
	vResp := responseLabel(env.UE.HandleDownlink(cmd))
	oResp := responseLabel(other.HandleDownlink(cmd))
	return EquivalenceResult{
		Verified:       vResp == oResp,
		VictimResponse: vResp,
		OtherResponse:  oResp,
		Detail:         fmt.Sprintf("victim answered %q, bystander %q", vResp, oResp),
	}, nil
}

// attachIdentityScenario checks whether two consecutive attaches of the
// same UE are linkable by a cleartext permanent identifier.
func attachIdentityScenario(ctx context.Context, profile ue.Profile) (EquivalenceResult, error) {
	env, err := conformance.NewEnv(profile, nil)
	if err != nil {
		return EquivalenceResult{}, err
	}
	if err := env.Attach(); err != nil {
		return EquivalenceResult{}, err
	}
	if err := cancelled(ctx, ScenarioAttachIdentityLinkability); err != nil {
		return EquivalenceResult{}, err
	}
	det, err := env.UE.StartDetach(false)
	if err != nil {
		return EquivalenceResult{}, err
	}
	env.SendUplink(det)
	if err := env.Attach(); err != nil {
		return EquivalenceResult{}, err
	}
	// Inspect every captured uplink attach_request for the IMSI.
	imsi := []byte(env.UE.IMSI())
	linkCount := 0
	attaches := 0
	for _, p := range env.Link.Captured(channel.Uplink) {
		if p.Header != nas.HeaderPlain {
			continue
		}
		m, err := nas.Unmarshal(p.Payload)
		if err != nil || m.Name() != spec.AttachRequest {
			continue
		}
		attaches++
		if bytes.Contains(p.Payload, imsi) {
			linkCount++
		}
	}
	verified := linkCount == 0
	return EquivalenceResult{
		Verified: verified,
		Detail:   fmt.Sprintf("%d of %d attach_requests carried the IMSI in cleartext", linkCount, attaches),
	}, nil
}

// gutiCrossReallocScenario checks that the reallocated GUTI value never
// appears on the air in cleartext.
func gutiCrossReallocScenario(ctx context.Context, profile ue.Profile) (EquivalenceResult, error) {
	env, err := conformance.NewEnv(profile, nil)
	if err != nil {
		return EquivalenceResult{}, err
	}
	if err := env.Attach(); err != nil {
		return EquivalenceResult{}, err
	}
	if err := cancelled(ctx, ScenarioGUTICrossRealloc); err != nil {
		return EquivalenceResult{}, err
	}
	cmd, err := env.MME.StartGUTIReallocation()
	if err != nil {
		return EquivalenceResult{}, err
	}
	env.SendDownlink(cmd)
	newGUTI := env.MME.GUTI()
	var gutiBytes [4]byte
	gutiBytes[0] = byte(newGUTI >> 24)
	gutiBytes[1] = byte(newGUTI >> 16)
	gutiBytes[2] = byte(newGUTI >> 8)
	gutiBytes[3] = byte(newGUTI)
	exposed := false
	for _, dir := range []channel.Direction{channel.Downlink, channel.Uplink} {
		for _, p := range env.Link.Captured(dir) {
			if p.Header == nas.HeaderIntegrityCiphered {
				continue // payload opaque; Seal already ciphered it
			}
			if bytes.Contains(p.Payload, gutiBytes[:]) {
				exposed = true
			}
		}
	}
	return EquivalenceResult{
		Verified: !exposed,
		Detail:   fmt.Sprintf("new GUTI %#x exposed in cleartext: %v", newGUTI, exposed),
	}, nil
}
