// Package props is ProChecker's formal property catalogue: the 62
// security and privacy properties (37 security, 25 privacy) extracted
// from the conformance test suites and TS 24.301/TS 33.102, formalised
// over the threat-composed model (Section VI, "Formal property
// gathering").
//
// Three property kinds mirror how the paper instantiates its tooling:
//
//   - KindMC properties are checked by the model checker inside the CEGAR
//     loop (safety over states/events and response liveness);
//   - KindEquivalence properties are ProVerif-style observational
//     equivalence (linkability) queries, evaluated with the CPV's
//     distinguishability check against live implementation instances;
//   - KindKnowledge properties are intruder-deduction queries: given the
//     messages an adversary observes, is a secret derivable?
//
// Each property records which Table I attack(s) it detects and whether it
// is one of the 14 properties shared with LTEInspector (Table II).
package props

import (
	"strings"

	"prochecker/internal/cpv"
	"prochecker/internal/mc"
	"prochecker/internal/spec"
	"prochecker/internal/ts"
)

// Class is the property classification of Section VI.
type Class string

// Property classes.
const (
	Security Class = "security"
	Privacy  Class = "privacy"
)

// Kind selects the verification engine.
type Kind string

// Property kinds.
const (
	KindMC          Kind = "model-checking"
	KindEquivalence Kind = "observational-equivalence"
	KindKnowledge   Kind = "intruder-knowledge"
)

// Attack identifiers of Table I.
const (
	AttackP1            = "P1"
	AttackP2            = "P2"
	AttackP3            = "P3"
	AttackI1            = "I1"
	AttackI2            = "I2"
	AttackI3            = "I3"
	AttackI4            = "I4"
	AttackI5            = "I5"
	AttackI6            = "I6"
	AttackAuthSyncDoS   = "prev:auth_sync_failure_dos"
	AttackKickOff       = "prev:stealthy_kicking_off"
	AttackPanic         = "prev:panic"
	AttackTMSILink      = "prev:linkability_tmsi_reallocation"
	AttackIMSIPaging    = "prev:linkability_imsi_paging"
	AttackSyncFailLink  = "prev:linkability_auth_sync_failure"
	AttackAuthRelay     = "prev:authentication_relay"
	AttackNumb          = "prev:numb"
	AttackTAUDowngrade  = "prev:downgrade_tau_reject"
	AttackDenialAll     = "prev:denial_of_all_services"
	AttackPagingHijack  = "prev:paging_hijacking"
	AttackDetachDown    = "prev:detach_downgrade"
	AttackServiceDenial = "prev:service_denial"
	AttackGUTILink      = "prev:linkability_guti_tmsi"
)

// KnowledgeQuery is an intruder-deduction property: after observing the
// given terms, the Target must NOT be derivable for the property to hold.
type KnowledgeQuery struct {
	Observe []cpv.Term
	Target  cpv.Term
}

// EquivalenceQuery names a linkability scenario executed against live
// implementation instances (see Evaluate in eval.go).
type EquivalenceQuery struct {
	Scenario string
}

// Property is one entry of the catalogue.
type Property struct {
	ID    string
	Class Class
	Kind  Kind
	// Text is the informal requirement, as derived from the conformance
	// suite / specification.
	Text string
	// Source cites the requirement's origin.
	Source string
	// CommonLTEInspector is the Table II name when the property is shared
	// with LTEInspector ("" otherwise).
	CommonLTEInspector string
	// Detects lists the Table I attacks this property's violation
	// witnesses.
	Detects []string
	// MC builds the model-checking property (KindMC only).
	MC func() mc.Property
	// Knowledge is the deduction query (KindKnowledge only).
	Knowledge *KnowledgeQuery
	// Equivalence is the linkability scenario (KindEquivalence only).
	Equivalence *EquivalenceQuery
}

// nameHas builds a rule-name matcher requiring every fragment.
func nameHas(fragments ...string) func(string) bool {
	return func(name string) bool {
		for _, f := range fragments {
			if !strings.Contains(name, f) {
				return false
			}
		}
		return true
	}
}

// nameHasNot extends a matcher with forbidden fragments.
func nameHasNot(match func(string) bool, forbidden ...string) func(string) bool {
	return func(name string) bool {
		if !match(name) {
			return false
		}
		for _, f := range forbidden {
			if strings.Contains(name, f) {
				return false
			}
		}
		return true
	}
}

// registeredStates lists "registered" state names across model styles so
// response properties work on both the extracted and the LTEInspector
// models (unknown values are treated as never-occurring).
func registeredStates() []string {
	return []string{
		string(spec.EMMRegistered),
		string(spec.EMMRegisteredNormalService),
		"ue_registered",
	}
}

func never(id string, match func(string) bool) func() mc.Property {
	return func() mc.Property { return mc.NeverFires{PropName: id, Match: match} }
}

func response(id string, trigger, goal func(string) bool, goalState ts.Cond) func() mc.Property {
	return func() mc.Property {
		return mc.Response{PropName: id, Trigger: trigger, Goal: goal, GoalState: goalState}
	}
}

// Catalogue returns all 62 properties in stable order.
func Catalogue() []Property {
	var out []Property
	out = append(out, securityProperties()...)
	out = append(out, privacyProperties()...)
	return out
}

func securityProperties() []Property {
	replayApplied := func(msg, action string) func(string) bool {
		return nameHas(":recv:"+msg+"@replay", "/"+action)
	}
	return []Property{
		{
			ID: "S01", Class: Security, Kind: KindMC,
			Text:    "The UE shall not act on a replayed attach_accept message.",
			Source:  "TS 24.301 4.4.3.2 (replay protection)",
			Detects: []string{AttackI1},
			MC:      never("S01", nameHasNot(nameHas(":recv:attach_accept@replay"), "/null_action")),
		},
		{
			ID: "S02", Class: Security, Kind: KindMC,
			Text:    "The UE shall not answer a replayed security_mode_command.",
			Source:  "TS 24.301 4.4.3.2",
			Detects: []string{AttackI1, AttackI6},
			MC:      never("S02", replayApplied("security_mode_command", "security_mode_complete")),
		},
		{
			ID: "S03", Class: Security, Kind: KindMC,
			Text:    "The UE shall not apply a replayed guti_reallocation_command.",
			Source:  "TS 24.301 4.4.3.2",
			Detects: []string{AttackI1},
			MC:      never("S03", replayApplied("guti_reallocation_command", "guti_reallocation_complete")),
		},
		{
			ID: "S04", Class: Security, Kind: KindMC,
			Text:    "The UE shall not act on a replayed tracking_area_update_accept.",
			Source:  "TS 24.301 4.4.3.2",
			Detects: []string{AttackI1},
			MC:      never("S04", nameHasNot(nameHas(":recv:tracking_area_update_accept@replay"), "/null_action")),
		},
		{
			ID: "S05", Class: Security, Kind: KindMC,
			Text:    "The UE shall not act on a replayed emm_information.",
			Source:  "TS 24.301 4.4.3.2",
			Detects: []string{AttackI1},
			MC:      never("S05", nameHasNot(nameHas(":recv:emm_information@replay"), "/null_action")),
		},
		{
			ID: "S06", Class: Security, Kind: KindMC,
			Text:    "If the UE is in the registered-initiated state, it will get authenticated with an authentication sequence number greater than the previously accepted SQN.",
			Source:  "TS 33.102 Annex C",
			Detects: []string{AttackP1},
			MC:      never("S06", nameHas(":recv:authentication_request@replay", "sqn_in_range=1", "/authentication_response")),
		},
		{
			ID: "S07", Class: Security, Kind: KindMC,
			Text:    "The UE shall never accept an authentication challenge whose SQN fails the range check (counter reset).",
			Source:  "TS 33.102 6.3.3",
			Detects: []string{AttackI3},
			MC:      never("S07", nameHas(":recv:authentication_request@", "sqn_in_range=0", "/authentication_response")),
		},
		{
			ID: "S08", Class: Security, Kind: KindMC,
			Text:    "For a given NAS security context, a given NAS COUNT shall be accepted at most one time.",
			Source:  "TS 24.301 4.4.3.2 (quoted in Section VII-A)",
			Detects: []string{AttackI1},
			MC:      never("S08", nameHasNot(nameHas("ue:recv:", "@replay", "count_fresh=0"), "/null_action")),
		},
		{
			ID: "S09", Class: Security, Kind: KindMC,
			Text:    "The UE shall not apply a plain-NAS(0x0) guti_reallocation_command after security-context establishment.",
			Source:  "TS 24.301 4.4.4.2",
			Detects: []string{AttackI2},
			MC:      never("S09", nameHas(":recv:guti_reallocation_command@", "plain_header=1", "/guti_reallocation_complete")),
		},
		{
			ID: "S10", Class: Security, Kind: KindMC,
			Text:    "A plain-NAS attach_accept shall never register the UE.",
			Source:  "TS 24.301 4.4.4.2",
			Detects: []string{AttackI2},
			MC:      never("S10", nameHas(":recv:attach_accept@", "plain_header=1", "->EMM_REGISTERED/")),
		},
		{
			ID: "S11", Class: Security, Kind: KindMC,
			Text:    "A plain-NAS tracking_area_update_accept shall not be processed after security establishment.",
			Source:  "TS 24.301 4.4.4.2",
			Detects: []string{AttackI2},
			MC:      never("S11", nameHasNot(nameHas(":recv:tracking_area_update_accept@", "plain_header=1"), "/null_action")),
		},
		{
			ID: "S12", Class: Security, Kind: KindMC,
			Text:    "A plain-NAS security_mode_command shall never complete the security procedure.",
			Source:  "TS 24.301 5.4.3",
			Detects: []string{AttackI2},
			MC:      never("S12", nameHas(":recv:security_mode_command@", "plain_header=1", "/security_mode_complete")),
		},
		{
			ID: "S13", Class: Security, Kind: KindMC,
			Text:   "A forged attach_accept (invalid MAC) shall never register the UE.",
			Source: "TS 24.301 4.4.4",
			MC:     never("S13", nameHas(":recv:attach_accept@inject", "->EMM_REGISTERED/")),
		},
		{
			ID: "S14", Class: Security, Kind: KindMC,
			Text:   "A forged guti_reallocation_command shall never be applied.",
			Source: "TS 24.301 5.4.1",
			MC:     never("S14", nameHas(":recv:guti_reallocation_command@inject", "/guti_reallocation_complete")),
		},
		{
			ID: "S15", Class: Security, Kind: KindMC,
			Text:   "A forged security_mode_command shall never be completed.",
			Source: "TS 24.301 5.4.3",
			MC:     never("S15", nameHas(":recv:security_mode_command@inject", "/security_mode_complete")),
		},
		{
			ID: "S16", Class: Security, Kind: KindMC,
			Text:    "After a reject/release message the UE shall not move to the registered state without completing authentication and security-mode procedures.",
			Source:  "TS 24.301 5.5.1.2.5",
			Detects: []string{AttackI4},
			MC:      never("S16", nameHas(":recv:attach_accept@", ":EMM_DEREGISTERED->EMM_REGISTERED/")),
		},
		{
			ID: "S17", Class: Security, Kind: KindMC,
			Text:               "An initiated attach procedure eventually completes with the UE registered.",
			Source:             "TS 24.301 5.5.1",
			CommonLTEInspector: "attach procedure completion",
			Detects:            []string{AttackServiceDenial, AttackDenialAll},
			MC: response("S17",
				nameHas("ue:internal:", "/attach_request"),
				nil,
				ts.In{Var: "ue_state", Values: registeredStates()},
			),
		},
		{
			ID: "S18", Class: Security, Kind: KindMC,
			Text:               "An initiated security-mode procedure eventually completes.",
			Source:             "TS 24.301 5.4.3",
			CommonLTEInspector: "security mode control completion",
			Detects:            []string{AttackP3},
			MC: response("S18",
				nameHas("/security_mode_command"),
				nameHas("mme:recv:security_mode_complete@"),
				nil,
			),
		},
		{
			ID: "S19", Class: Security, Kind: KindMC,
			Text:               "If the MME initiates a GUTI reallocation, the UE will complete that procedure.",
			Source:             "TS 24.301 5.4.1 / T3450",
			CommonLTEInspector: "GUTI reallocation completion",
			Detects:            []string{AttackP3},
			MC: response("S19",
				nameHas("guti_realloc:start"),
				nameHas("mme:recv:guti_reallocation_complete@"),
				nil,
			),
		},
		{
			ID: "S20", Class: Security, Kind: KindMC,
			Text:               "An initiated tracking-area update eventually completes.",
			Source:             "TS 24.301 5.5.3",
			CommonLTEInspector: "tracking area update completion",
			Detects:            []string{AttackServiceDenial},
			MC: response("S20",
				nameHas("/tracking_area_update_request"),
				nameHas("ue:recv:tracking_area_update_accept@genuine"),
				nil,
			),
		},
		{
			ID: "S21", Class: Security, Kind: KindMC,
			Text:               "An initiated service request eventually receives service.",
			Source:             "TS 24.301 5.6.1",
			CommonLTEInspector: "service request completion",
			Detects:            []string{AttackServiceDenial},
			MC: response("S21",
				nameHas("ue:internal:", "/service_request"),
				nameHas("ue:recv:service_accept@genuine"),
				nil,
			),
		},
		{
			ID: "S22", Class: Security, Kind: KindMC,
			Text:               "A UE-initiated detach eventually completes at the network.",
			Source:             "TS 24.301 5.5.2.2",
			CommonLTEInspector: "detach procedure completion",
			MC: response("S22",
				nameHas("ue:internal:", "/detach_request_ue"),
				nameHas("mme:recv:detach_request_ue@"),
				nil,
			),
		},
		{
			ID: "S23", Class: Security, Kind: KindMC,
			Text:               "A paged UE eventually initiates the service-request procedure at the network.",
			Source:             "TS 24.301 5.6.2",
			CommonLTEInspector: "paging response",
			Detects:            []string{AttackPagingHijack},
			MC: response("S23",
				nameHas("mme:internal:", "/paging_request"),
				nameHas("mme:recv:service_request@"),
				nil,
			),
		},
		{
			ID: "S24", Class: Security, Kind: KindMC,
			Text:               "An attach_reject without integrity protection shall not move the UE to the deregistered state.",
			Source:             "TS 24.301 5.5.1.2.5",
			CommonLTEInspector: "attach reject authenticity",
			Detects:            []string{AttackDetachDown, AttackDenialAll},
			MC:                 never("S24", nameHas(":recv:attach_reject@inject")),
		},
		{
			ID: "S25", Class: Security, Kind: KindMC,
			Text:               "A tau_reject without integrity protection shall not deregister the UE.",
			Source:             "TS 24.301 5.5.3.2.5",
			CommonLTEInspector: "TAU reject authenticity",
			Detects:            []string{AttackTAUDowngrade},
			MC:                 never("S25", nameHas(":recv:tracking_area_update_reject@inject")),
		},
		{
			ID: "S26", Class: Security, Kind: KindMC,
			Text:               "A service_reject without integrity protection shall not be processed.",
			Source:             "TS 24.301 5.6.1.5",
			CommonLTEInspector: "service reject authenticity",
			Detects:            []string{AttackDenialAll, AttackServiceDenial},
			MC:                 never("S26", nameHasNot(nameHas(":recv:service_reject@inject"), "/null_action")),
		},
		{
			ID: "S27", Class: Security, Kind: KindMC,
			Text:               "An authentication_reject without a failed authentication run shall not permanently block the UE.",
			Source:             "TS 24.301 5.4.2.5",
			CommonLTEInspector: "authentication reject authenticity",
			Detects:            []string{AttackNumb},
			MC:                 never("S27", nameHas(":recv:authentication_reject@inject")),
		},
		{
			ID: "S28", Class: Security, Kind: KindMC,
			Text:               "A detach_request without integrity protection shall not detach the UE.",
			Source:             "TS 24.301 5.5.2.3",
			CommonLTEInspector: "network detach authenticity",
			Detects:            []string{AttackKickOff, AttackDetachDown},
			MC:                 never("S28", nameHas(":recv:detach_request_nw@inject", "/detach_accept")),
		},
		{
			ID: "S29", Class: Security, Kind: KindMC,
			Text:               "An injected paging_request shall not make the UE initiate signalling.",
			Source:             "TS 36.304 7 (paging)",
			CommonLTEInspector: "paging authenticity",
			Detects:            []string{AttackPagingHijack, AttackPanic},
			MC:                 never("S29", nameHas(":recv:paging_request@inject", "/service_request")),
		},
		{
			ID: "S30", Class: Security, Kind: KindMC,
			Text:               "A replayed authentication_request shall not force the UE into authentication resynchronisation.",
			Source:             "TS 33.102 6.3.5",
			CommonLTEInspector: "authentication synchronization",
			Detects:            []string{AttackAuthSyncDoS},
			MC:                 never("S30", nameHas(":recv:authentication_request@replay", "/auth_sync_failure")),
		},
		{
			ID: "S31", Class: Security, Kind: KindMC,
			Text:    "The MME shall not process a replayed attach_request.",
			Source:  "TS 24.301 5.5.1.2",
			Detects: []string{AttackAuthRelay},
			MC:      never("S31", nameHas("mme:recv:attach_request@replay")),
		},
		{
			ID: "S32", Class: Security, Kind: KindMC,
			Text:   "The UE shall reject a security_mode_command whose replayed capabilities mismatch (bidding-down protection).",
			Source: "TS 24.301 5.4.3.3",
			MC:     never("S32", nameHas(":recv:security_mode_command@", "caps_match=0", "/security_mode_complete")),
		},
		{
			ID: "S33", Class: Security, Kind: KindMC,
			Text:   "A forged authentication_request shall never be answered with authentication_response.",
			Source: "TS 33.102 6.3.3",
			MC:     never("S33", nameHas(":recv:authentication_request@inject", "/authentication_response")),
		},
		{
			ID: "S34", Class: Security, Kind: KindMC,
			Text:   "The MME shall not grant service for a replayed service_request.",
			Source: "TS 24.301 4.4.3.2",
			MC:     never("S34", nameHas("mme:recv:service_request@replay", "/service_accept")),
		},
		{
			ID: "S35", Class: Security, Kind: KindMC,
			Text:   "The MME shall not process a replayed tracking_area_update_request.",
			Source: "TS 24.301 4.4.3.2",
			MC:     never("S35", nameHasNot(nameHas("mme:recv:tracking_area_update_request@replay"), "/null_action")),
		},
		{
			ID: "S36", Class: Security, Kind: KindMC,
			Text:   "The MME shall not accept a replayed security_mode_complete.",
			Source: "TS 24.301 4.4.3.2",
			MC:     never("S36", nameHas("mme:recv:security_mode_complete@replay")),
		},
		{
			ID: "S37", Class: Security, Kind: KindMC,
			Text:    "An authentication resynchronisation eventually reaches the network.",
			Source:  "TS 33.102 6.3.5",
			Detects: []string{AttackAuthSyncDoS},
			MC: response("S37",
				nameHas("/auth_sync_failure"),
				nameHas("mme:recv:auth_sync_failure@"),
				nil,
			),
		},
	}
}

func privacyProperties() []Property {
	return []Property{
		{
			ID: "V01", Class: Privacy, Kind: KindMC,
			Text:    "After security establishment, the UE shall not disclose its IMSI in a plaintext identity_response.",
			Source:  "TS 24.301 5.4.4 / TS 33.401 6.1.4",
			Detects: []string{AttackI5},
			MC:      never("V01", nameHas(":recv:identity_request@", "plain_header=1", ":EMM_REGISTERED->", "/identity_response")),
		},
		{
			ID: "V02", Class: Privacy, Kind: KindMC,
			Text:    "An injected identity_request shall not obtain the IMSI.",
			Source:  "TS 24.301 5.4.4 (IMSI catching)",
			Detects: []string{AttackGUTILink},
			MC:      never("V02", nameHas(":recv:identity_request@inject", "/identity_response")),
		},
		{
			ID: "V03", Class: Privacy, Kind: KindMC,
			Text:    "The UE shall not answer paging by IMSI.",
			Source:  "TS 23.401 5.3.4B",
			Detects: []string{AttackIMSIPaging},
			MC:      never("V03", nameHas(":recv:paging_request@", "id_type=1", "/service_request")),
		},
		{
			ID: "V04", Class: Privacy, Kind: KindEquivalence,
			Text:        "Two UEs are indistinguishable by their responses to a replayed authentication_request (stale-SQN acceptance).",
			Source:      "Section VII-A (P2)",
			Detects:     []string{AttackP2},
			Equivalence: &EquivalenceQuery{Scenario: ScenarioAuthResponseLinkability},
		},
		{
			ID: "V05", Class: Privacy, Kind: KindEquivalence,
			Text:        "Two UEs are indistinguishable by their failure responses to a consumed (same-SQN) authentication_request.",
			Source:      "Arapinis et al. (3G linkability), adapted",
			Detects:     []string{AttackSyncFailLink},
			Equivalence: &EquivalenceQuery{Scenario: ScenarioSyncFailureLinkability},
		},
		{
			ID: "V06", Class: Privacy, Kind: KindEquivalence,
			Text:        "Two UEs are indistinguishable by their responses to a replayed security_mode_command.",
			Source:      "Table I (I6)",
			Detects:     []string{AttackI6},
			Equivalence: &EquivalenceQuery{Scenario: ScenarioSMCReplayLinkability},
		},
		{
			ID: "V07", Class: Privacy, Kind: KindEquivalence,
			Text:        "Two UEs are indistinguishable by their responses to a replayed (GUTI/TMSI) reallocation command.",
			Source:      "Arapinis et al. (TMSI reallocation), adapted to EPS",
			Detects:     []string{AttackTMSILink},
			Equivalence: &EquivalenceQuery{Scenario: ScenarioGUTIRealloReplayLinkability},
		},
		{
			ID: "V08", Class: Privacy, Kind: KindEquivalence,
			Text:        "Attach requests are unlinkable across sessions (no permanent identifier in cleartext).",
			Source:      "TS 33.401 6.1.4",
			Detects:     []string{AttackGUTILink},
			Equivalence: &EquivalenceQuery{Scenario: ScenarioAttachIdentityLinkability},
		},
		{
			ID: "V09", Class: Privacy, Kind: KindMC,
			Text:    "An initiated GUTI reallocation eventually refreshes the UE's temporary identity.",
			Source:  "TS 24.301 5.4.1 (GUTI refresh mandate)",
			Detects: []string{AttackP3},
			MC: response("V09",
				nameHas("guti_realloc:start"),
				nameHas("ue:recv:guti_reallocation_command@genuine"),
				nil,
			),
		},
		{
			ID: "V10", Class: Privacy, Kind: KindMC,
			Text:    "The UE shall not respond to a replayed paging_request.",
			Source:  "TS 36.304 7",
			Detects: []string{AttackIMSIPaging},
			MC:      never("V10", nameHas(":recv:paging_request@replay", "/service_request")),
		},
		{
			ID: "V11", Class: Privacy, Kind: KindKnowledge,
			Text:    "An IMSI-based initial attach does not expose the IMSI to a passive adversary.",
			Source:  "TS 33.401 6.1.4 (known exposure)",
			Detects: []string{AttackGUTILink},
			Knowledge: &KnowledgeQuery{
				Observe: []cpv.Term{cpv.MessageTerm(spec.AttachRequest)},
				Target:  cpv.IMSITerm(),
			},
		},
		{
			ID: "V12", Class: Privacy, Kind: KindKnowledge,
			Text:   "A GUTI-based reattach does not expose the IMSI.",
			Source: "TS 23.401 5.3.4B",
			Knowledge: &KnowledgeQuery{
				Observe: []cpv.Term{cpv.TaggedTerm(spec.AttachRequest, cpv.GUTITerm())},
				Target:  cpv.IMSITerm(),
			},
		},
		{
			ID: "V13", Class: Privacy, Kind: KindKnowledge,
			Text:   "A plaintext identity_response does not expose the IMSI to a passive adversary.",
			Source: "TS 24.301 5.4.4",
			Knowledge: &KnowledgeQuery{
				Observe: []cpv.Term{cpv.MessageTerm(spec.IdentityResponse)},
				Target:  cpv.IMSITerm(),
			},
		},
		{
			ID: "V14", Class: Privacy, Kind: KindKnowledge,
			Text:   "A ciphered identity_response conceals the IMSI.",
			Source: "TS 33.401 6.1.4",
			Knowledge: &KnowledgeQuery{
				Observe: []cpv.Term{cpv.TaggedTerm(spec.IdentityResponse, cpv.CipheredTerm(cpv.IMSITerm()))},
				Target:  cpv.IMSITerm(),
			},
		},
		{
			ID: "V15", Class: Privacy, Kind: KindKnowledge,
			Text:   "The resynchronisation token AUTS conceals the UE's SQN.",
			Source: "TS 33.102 6.3.5",
			Knowledge: &KnowledgeQuery{
				Observe: []cpv.Term{cpv.MessageTerm(spec.AuthSyncFailure)},
				Target:  cpv.SQNValueTerm(),
			},
		},
		{
			ID: "V16", Class: Privacy, Kind: KindKnowledge,
			Text:   "A ciphered guti_reallocation_command conceals the new GUTI.",
			Source: "TS 24.301 5.4.1 (sent ciphered)",
			Knowledge: &KnowledgeQuery{
				Observe: []cpv.Term{cpv.MessageTerm(spec.GUTIRealloCommand)},
				Target:  cpv.PayloadTerm(spec.GUTIRealloCommand),
			},
		},
		{
			ID: "V17", Class: Privacy, Kind: KindKnowledge,
			Text:   "A ciphered attach_accept conceals the assigned GUTI.",
			Source: "TS 24.301 5.5.1",
			Knowledge: &KnowledgeQuery{
				Observe: []cpv.Term{cpv.MessageTerm(spec.AttachAccept)},
				Target:  cpv.PayloadTerm(spec.AttachAccept),
			},
		},
		{
			ID: "V18", Class: Privacy, Kind: KindKnowledge,
			Text:   "Ciphered emm_information payloads stay confidential.",
			Source: "TS 24.301 5.4.5",
			Knowledge: &KnowledgeQuery{
				Observe: []cpv.Term{cpv.MessageTerm(spec.EMMInformation)},
				Target:  cpv.PayloadTerm(spec.EMMInformation),
			},
		},
		{
			ID: "V19", Class: Privacy, Kind: KindKnowledge,
			Text:   "A service_request identifies the UE by GUTI only; the IMSI stays concealed.",
			Source: "TS 24.301 5.6.1",
			Knowledge: &KnowledgeQuery{
				Observe: []cpv.Term{cpv.TaggedTerm(spec.ServiceRequest, cpv.GUTITerm())},
				Target:  cpv.IMSITerm(),
			},
		},
		{
			ID: "V20", Class: Privacy, Kind: KindKnowledge,
			Text:   "A tracking_area_update_request identifies the UE by GUTI only.",
			Source: "TS 24.301 5.5.3",
			Knowledge: &KnowledgeQuery{
				Observe: []cpv.Term{cpv.TaggedTerm(spec.TAURequest, cpv.GUTITerm())},
				Target:  cpv.IMSITerm(),
			},
		},
		{
			ID: "V21", Class: Privacy, Kind: KindKnowledge,
			Text:   "A detach_request exposes no permanent identity.",
			Source: "TS 24.301 5.5.2",
			Knowledge: &KnowledgeQuery{
				Observe: []cpv.Term{cpv.TaggedTerm(spec.DetachRequestUE, cpv.GUTITerm())},
				Target:  cpv.IMSITerm(),
			},
		},
		{
			ID: "V22", Class: Privacy, Kind: KindMC,
			Text:   "The UE shall never disclose its IMEI in plaintext after security establishment.",
			Source: "TS 24.301 5.4.4",
			MC:     never("V22", nameHas(":recv:identity_request@", "id_type=3", "plain_header=1", "/identity_response")),
		},
		{
			ID: "V23", Class: Privacy, Kind: KindEquivalence,
			Text:        "GUTI values are unlinkable across reallocations (the command is ciphered).",
			Source:      "TS 24.301 5.4.1",
			Equivalence: &EquivalenceQuery{Scenario: ScenarioGUTICrossRealloc},
		},
		{
			ID: "V24", Class: Privacy, Kind: KindMC,
			Text:   "The UE stays silent on paging for another subscriber.",
			Source: "TS 36.304 7",
			MC:     never("V24", nameHas(":recv:paging_request@", "paging_id_match=0", "/service_request")),
		},
		{
			ID: "V25", Class: Privacy, Kind: KindMC,
			Text:    "The UE shall not answer a replayed authentication challenge (presence-test resistance).",
			Source:  "Section VII-A (P2, model-checking side)",
			Detects: []string{AttackP2},
			MC:      never("V25", nameHas(":recv:authentication_request@replay", "/authentication_response")),
		},
	}
}

// ByID retrieves a property.
func ByID(id string) (Property, bool) {
	for _, p := range Catalogue() {
		if p.ID == id {
			return p, true
		}
	}
	return Property{}, false
}

// CommonWithLTEInspector returns the Table II subset in catalogue order.
func CommonWithLTEInspector() []Property {
	var out []Property
	for _, p := range Catalogue() {
		if p.CommonLTEInspector != "" {
			out = append(out, p)
		}
	}
	return out
}

// Detecting returns the properties that witness the given Table I attack.
func Detecting(attack string) []Property {
	var out []Property
	for _, p := range Catalogue() {
		for _, a := range p.Detects {
			if a == attack {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// Counts tallies the catalogue per class.
func Counts() (security, privacy int) {
	for _, p := range Catalogue() {
		switch p.Class {
		case Security:
			security++
		case Privacy:
			privacy++
		}
	}
	return security, privacy
}
