package extract

import (
	"strings"
	"testing"

	"prochecker/internal/conformance"
	"prochecker/internal/core/fsmodel"
	"prochecker/internal/spec"
	"prochecker/internal/trace"
	"prochecker/internal/ue"
)

// TestRunningExampleFigure3 reproduces the paper's running example: the
// log of Figure 3(d) yields the single transition
// UE_REGISTERED_INIT --attach_accept & mac_valid=1--> UE_REGISTERED
// with action attach_complete.
func TestRunningExampleFigure3(t *testing.T) {
	logText := strings.Join([]string{
		"[FUNC] air_msg_handler",
		"[LOCAL] msg_type = 2",
		"[FUNC] recv_attach_accept",
		"[GLOBAL] guti = 0x0",
		"[GLOBAL] emm_state = UE_REGISTERED_INIT",
		"[LOCAL] mac_valid = 1",
		"[FUNC] send_attach_complete",
		"[EXIT] send_attach_complete",
		"[GLOBAL] emm_state = UE_REGISTERED",
		"[EXIT] recv_attach_accept",
	}, "\n")
	fsm, err := FromText(logText, spec.UESignatures(spec.StyleClosed), Options{Name: "running-example"})
	if err != nil {
		t.Fatalf("FromText: %v", err)
	}
	ts := fsm.Transitions()
	if len(ts) != 1 {
		t.Fatalf("transitions = %d, want 1: %v", len(ts), ts)
	}
	tr := ts[0]
	if tr.From != fsmodel.State(spec.EMMRegisteredInitiated) {
		t.Errorf("From = %s, want EMM_REGISTERED_INITIATED", tr.From)
	}
	if tr.To != fsmodel.State(spec.EMMRegistered) {
		t.Errorf("To = %s, want EMM_REGISTERED", tr.To)
	}
	if tr.Cond.Message != spec.AttachAccept {
		t.Errorf("condition = %s, want attach_accept", tr.Cond.Message)
	}
	if len(tr.Cond.Predicates) != 1 || tr.Cond.Predicates[0] != (fsmodel.Predicate{Var: "mac_valid", Value: "1"}) {
		t.Errorf("predicates = %v, want [mac_valid=1]", tr.Cond.Predicates)
	}
	if len(tr.Actions) != 1 || tr.Actions[0] != spec.AttachComplete {
		t.Errorf("actions = %v, want [attach_complete]", tr.Actions)
	}
}

func TestNullActionWhenValidationFails(t *testing.T) {
	logText := strings.Join([]string{
		"[FUNC] recv_attach_accept",
		"[GLOBAL] emm_state = EMM_REGISTERED_INITIATED",
		"[LOCAL] mac_valid = 0",
		"[EXIT] recv_attach_accept",
	}, "\n")
	fsm, err := FromText(logText, spec.UESignatures(spec.StyleClosed), Options{})
	if err != nil {
		t.Fatalf("FromText: %v", err)
	}
	ts := fsm.Transitions()
	if len(ts) != 1 {
		t.Fatalf("transitions = %d, want 1", len(ts))
	}
	if ts[0].From != ts[0].To {
		t.Errorf("failed validation should self-loop, got %s -> %s", ts[0].From, ts[0].To)
	}
	if len(ts[0].Actions) != 1 || ts[0].Actions[0] != spec.NullAction {
		t.Errorf("actions = %v, want [null_action]", ts[0].Actions)
	}
}

func TestEmptyLogError(t *testing.T) {
	if _, err := FromText("", spec.UESignatures(spec.StyleClosed), Options{}); err == nil {
		t.Error("empty log accepted")
	}
	// A log with records but no incoming blocks is also empty.
	if _, err := FromText("[GLOBAL] emm_state = EMM_NULL\n", spec.UESignatures(spec.StyleClosed), Options{}); err == nil {
		t.Error("blockless log accepted")
	}
}

func TestBlocksDoNotSpanTestCases(t *testing.T) {
	logText := strings.Join([]string{
		"[TEST] tc_1",
		"[FUNC] recv_attach_accept",
		"[GLOBAL] emm_state = EMM_REGISTERED_INITIATED",
		"[TEST] tc_2",
		// This state must not become tc_1's block's outgoing state.
		"[FUNC] recv_paging_request",
		"[GLOBAL] emm_state = EMM_REGISTERED",
		"[EXIT] recv_paging_request",
	}, "\n")
	fsm, err := FromText(logText, spec.UESignatures(spec.StyleClosed), Options{})
	if err != nil {
		t.Fatalf("FromText: %v", err)
	}
	for _, tr := range fsm.Transitions() {
		if tr.Cond.Message == spec.AttachAccept && tr.To == fsmodel.State(spec.EMMRegistered) {
			t.Errorf("block leaked across test-case boundary: %s", tr)
		}
	}
}

func TestUplinkInitiatedSendNotMisattributed(t *testing.T) {
	logText := strings.Join([]string{
		"[FUNC] recv_detach_request_nw",
		"[GLOBAL] emm_state = EMM_REGISTERED",
		"[FUNC] send_detach_accept",
		"[EXIT] send_detach_accept",
		"[GLOBAL] emm_state = EMM_DEREGISTERED",
		"[EXIT] recv_detach_request_nw",
		// UE-initiated attach outside any incoming handler:
		"[FUNC] emm_start_attach",
		"[FUNC] send_attach_request",
		"[EXIT] send_attach_request",
		"[EXIT] emm_start_attach",
	}, "\n")
	fsm, err := FromText(logText, spec.UESignatures(spec.StyleClosed), Options{})
	if err != nil {
		t.Fatalf("FromText: %v", err)
	}
	ts := fsm.Transitions()
	if len(ts) != 1 {
		t.Fatalf("transitions = %d, want 1", len(ts))
	}
	for _, a := range ts[0].Actions {
		if a == spec.AttachRequest {
			t.Error("attach_request misattributed to the detach block")
		}
	}
}

func TestPredicateLastValueWins(t *testing.T) {
	logText := strings.Join([]string{
		"[FUNC] recv_attach_accept",
		"[GLOBAL] emm_state = EMM_REGISTERED_INITIATED",
		"[LOCAL] mac_valid = 0",
		"[LOCAL] mac_valid = 1",
		"[EXIT] recv_attach_accept",
	}, "\n")
	fsm, err := FromText(logText, spec.UESignatures(spec.StyleClosed), Options{})
	if err != nil {
		t.Fatalf("FromText: %v", err)
	}
	preds := fsm.Transitions()[0].Cond.Predicates
	if len(preds) != 1 || preds[0].Value != "1" {
		t.Errorf("predicates = %v, want [mac_valid=1]", preds)
	}
}

func TestPredicateFilterRejectsNoise(t *testing.T) {
	logText := strings.Join([]string{
		"[FUNC] recv_attach_accept",
		"[GLOBAL] emm_state = EMM_REGISTERED_INITIATED",
		"[LOCAL] scratch_buffer_len = 133",
		"[LOCAL] mac_valid = 1",
		"[EXIT] recv_attach_accept",
	}, "\n")
	fsm, err := FromText(logText, spec.UESignatures(spec.StyleClosed), Options{})
	if err != nil {
		t.Fatalf("FromText: %v", err)
	}
	preds := fsm.Transitions()[0].Cond.Predicates
	if len(preds) != 1 || preds[0].Var != "mac_valid" {
		t.Errorf("predicates = %v, want only mac_valid", preds)
	}
}

func TestInitialStateFromLogAndOverride(t *testing.T) {
	logText := strings.Join([]string{
		"[FUNC] recv_attach_accept",
		"[GLOBAL] emm_state = EMM_DEREGISTERED",
		"[EXIT] recv_attach_accept",
	}, "\n")
	fsm, err := FromText(logText, spec.UESignatures(spec.StyleClosed), Options{})
	if err != nil {
		t.Fatalf("FromText: %v", err)
	}
	if fsm.Initial != fsmodel.State(spec.EMMDeregistered) {
		t.Errorf("Initial = %s, want EMM_DEREGISTERED", fsm.Initial)
	}
	fsm2, err := FromText(logText, spec.UESignatures(spec.StyleClosed), Options{Initial: "EMM_NULL"})
	if err != nil {
		t.Fatalf("FromText: %v", err)
	}
	if fsm2.Initial != "EMM_NULL" {
		t.Errorf("Initial override = %s, want EMM_NULL", fsm2.Initial)
	}
}

// TestExtractFromConformanceRun is the end-to-end extraction test: run the
// real conformance suite on each profile and extract its FSM.
func TestExtractFromConformanceRun(t *testing.T) {
	for _, p := range []ue.Profile{ue.ProfileConformant, ue.ProfileSRS, ue.ProfileOAI} {
		t.Run(p.String(), func(t *testing.T) {
			rep, err := conformance.RunSuite(p, true)
			if err != nil {
				t.Fatalf("RunSuite: %v", err)
			}
			sig := spec.UESignatures(ue.StyleFor(p))
			fsm, stats, err := ModelWithStats(rep.Log, sig, Options{Name: "UE/" + p.String()})
			if err != nil {
				t.Fatalf("ModelWithStats: %v", err)
			}
			if stats.Blocks < 20 {
				t.Errorf("blocks = %d, want >= 20 from the full suite", stats.Blocks)
			}
			if stats.States < 4 {
				t.Errorf("states = %d, want >= 4", stats.States)
			}
			if stats.Transitions < 10 {
				t.Errorf("transitions = %d, want >= 10", stats.Transitions)
			}
			if fsm.Initial == "" {
				t.Error("no initial state extracted")
			}
			// Every profile's FSM must contain the core attach transition.
			found := false
			for _, tr := range fsm.Transitions() {
				if tr.Cond.Message == spec.AttachAccept && tr.To == fsmodel.State(spec.EMMRegistered) {
					found = true
				}
			}
			if !found {
				t.Error("attach_accept -> EMM_REGISTERED transition missing")
			}
		})
	}
}

// TestExtractedModelsDifferByProfile: the srs FSM must contain behaviour
// (replayed SMC answered from registered state) that the conformant FSM
// does not.
func TestExtractedModelsDifferByProfile(t *testing.T) {
	get := func(p ue.Profile) *fsmodel.FSM {
		t.Helper()
		rep, err := conformance.RunSuite(p, true)
		if err != nil {
			t.Fatalf("RunSuite: %v", err)
		}
		fsm, err := Model(rep.Log, spec.UESignatures(ue.StyleFor(p)), Options{})
		if err != nil {
			t.Fatalf("Model: %v", err)
		}
		return fsm
	}
	// The I6 signature: an SMC with a *stale* count (count_fresh=0) that
	// is still answered with security_mode_complete. The legitimate
	// rekeying transition exists in every profile; only the quirky ones
	// answer the replay.
	replayedSMCAnswered := func(f *fsmodel.FSM) bool {
		for _, tr := range f.Transitions() {
			if tr.Cond.Message != spec.SecurityModeCommand {
				continue
			}
			stale := false
			for _, p := range tr.Cond.Predicates {
				if p.Var == "count_fresh" && p.Value == "0" {
					stale = true
				}
			}
			if !stale {
				continue
			}
			for _, a := range tr.Actions {
				if a == spec.SecurityModeComplet {
					return true
				}
			}
		}
		return false
	}
	if replayedSMCAnswered(get(ue.ProfileConformant)) {
		t.Error("conformant FSM answers replayed SMC")
	}
	if !replayedSMCAnswered(get(ue.ProfileSRS)) {
		t.Error("srs FSM lacks the I6 replayed-SMC transition")
	}
}

func TestStatsCountsMatchModel(t *testing.T) {
	rep, err := conformance.RunSuite(ue.ProfileConformant, true)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	fsm, stats, err := ModelWithStats(rep.Log, spec.UESignatures(spec.StyleClosed), Options{})
	if err != nil {
		t.Fatalf("ModelWithStats: %v", err)
	}
	s, c, a, tr := fsm.Size()
	if stats.States != s || stats.Conditions != c || stats.Actions != a || stats.Transitions != tr {
		t.Errorf("stats %+v inconsistent with model size (%d,%d,%d,%d)", stats, s, c, a, tr)
	}
}

func TestModelIdempotentOnSameLog(t *testing.T) {
	rep, err := conformance.RunSuite(ue.ProfileOAI, true)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	sig := spec.UESignatures(spec.StyleOAI)
	a, err := Model(rep.Log, sig, Options{})
	if err != nil {
		t.Fatalf("Model a: %v", err)
	}
	b, err := Model(rep.Log, sig, Options{})
	if err != nil {
		t.Fatalf("Model b: %v", err)
	}
	if a.DOT() != b.DOT() {
		t.Error("extraction not deterministic")
	}
}

func TestRoundTripThroughSerialisedLog(t *testing.T) {
	// Render the conformance log to text, re-parse, re-extract: the model
	// must be identical (the extractor works on serialised logs too).
	rep, err := conformance.RunSuite(ue.ProfileConformant, true)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	sig := spec.UESignatures(spec.StyleClosed)
	direct, err := Model(rep.Log, sig, Options{})
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	parsed, err := trace.ParseString(rep.Log.Render())
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	viaText, err := Model(parsed, sig, Options{})
	if err != nil {
		t.Fatalf("Model via text: %v", err)
	}
	if direct.DOT() != viaText.DOT() {
		t.Error("serialisation round trip changed the model")
	}
}
