package extract

import (
	"testing"

	"prochecker/internal/conformance"
	"prochecker/internal/core/fsmodel"
	"prochecker/internal/spec"
	"prochecker/internal/ue"
)

// The per-layer extraction of challenge C4: the same execution log yields
// the EMM machine under the EMM signature sets and the ESM machine under
// the ESM ones, with no cross-contamination.

func TestESMLayerExtractedSeparately(t *testing.T) {
	rep, err := conformance.RunSuite(ue.ProfileConformant, true)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	esmFSM, err := Model(rep.Log, spec.ESMSignatures(spec.StyleClosed), Options{Name: "UE/ESM"})
	if err != nil {
		t.Fatalf("ESM extraction: %v", err)
	}

	// The ESM machine covers the bearer lifecycle.
	wantStates := []fsmodel.State{
		fsmodel.State(spec.BearerActivePending),
		fsmodel.State(spec.BearerActive),
		fsmodel.State(spec.BearerInactive),
	}
	for _, s := range wantStates {
		if !esmFSM.HasState(s) {
			t.Errorf("ESM FSM misses state %s", s)
		}
	}
	var sawActivation, sawDeactivation, sawReject bool
	for _, tr := range esmFSM.Transitions() {
		switch {
		case tr.Cond.Message == spec.ActDefaultBearerReq &&
			tr.To == fsmodel.State(spec.BearerActive):
			sawActivation = true
		case tr.Cond.Message == spec.DeactBearerRequest &&
			tr.To == fsmodel.State(spec.BearerInactive):
			sawDeactivation = true
		case tr.Cond.Message == spec.PDNConnectivityRej:
			sawReject = true
		}
	}
	if !sawActivation || !sawDeactivation || !sawReject {
		t.Errorf("ESM transitions incomplete: activation=%v deactivation=%v reject=%v\n%s",
			sawActivation, sawDeactivation, sawReject, esmFSM.DOT())
	}

	// Layer separation: no EMM material leaks into the ESM machine...
	for _, s := range esmFSM.States() {
		if _, ok := spec.NormalizeStateName(string(s)); !ok {
			t.Errorf("unknown ESM state %s", s)
		}
		for _, emm := range spec.UEStates() {
			if string(s) == string(emm) {
				t.Errorf("EMM state %s leaked into the ESM machine", s)
			}
		}
	}
	for _, m := range esmFSM.ConditionMessages() {
		if spec.IsDownlink(m) {
			t.Errorf("EMM message %s leaked into the ESM machine", m)
		}
	}
}

func TestEMMLayerUnpollutedByESM(t *testing.T) {
	rep, err := conformance.RunSuite(ue.ProfileConformant, true)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	emmFSM, err := Model(rep.Log, spec.UESignatures(spec.StyleClosed), Options{Name: "UE/EMM"})
	if err != nil {
		t.Fatalf("EMM extraction: %v", err)
	}
	for _, s := range emmFSM.States() {
		for _, esm := range spec.ESMStates() {
			if string(s) == string(esm) {
				t.Errorf("ESM state %s leaked into the EMM machine", s)
			}
		}
	}
	for _, m := range emmFSM.ConditionMessages() {
		for _, esm := range spec.ESMDownlinkMessages() {
			if m == esm {
				t.Errorf("ESM message %s leaked into the EMM machine", m)
			}
		}
	}
}

func TestESMExtractionPerProfile(t *testing.T) {
	for _, p := range []ue.Profile{ue.ProfileSRS, ue.ProfileOAI} {
		t.Run(p.String(), func(t *testing.T) {
			rep, err := conformance.RunSuite(p, true)
			if err != nil {
				t.Fatalf("RunSuite: %v", err)
			}
			fsm, err := Model(rep.Log, spec.ESMSignatures(ue.StyleFor(p)), Options{})
			if err != nil {
				t.Fatalf("extraction: %v", err)
			}
			if _, _, _, tr := fsm.Size(); tr < 3 {
				t.Errorf("ESM transitions = %d, want >= 3", tr)
			}
		})
	}
}
