package extract

import (
	"fmt"

	"prochecker/internal/spec"
	"prochecker/internal/trace"
)

// SyntheticLog generates an information-rich log with the given number of
// incoming-message blocks, cycling through realistic NAS interactions.
// It backs the extractor's scalability analysis: the paper reports ~5
// minutes for the largest closed-source log (7087 test cases); the
// extractor's cost must stay linear in log size.
func SyntheticLog(blocks int) trace.Log {
	style := spec.StyleClosed
	states := []spec.EMMState{
		spec.EMMDeregistered, spec.EMMRegisteredInitiated,
		spec.EMMRegistered, spec.EMMRegisteredNormalService,
	}
	type episode struct {
		in    spec.MessageName
		out   spec.MessageName
		preds [][2]string
	}
	episodes := []episode{
		{spec.AuthRequest, spec.AuthResponse, [][2]string{{"mac_valid", "1"}, {"sqn_in_range", "1"}}},
		{spec.SecurityModeCommand, spec.SecurityModeComplet, [][2]string{{"mac_valid", "1"}, {"caps_match", "1"}}},
		{spec.AttachAccept, spec.AttachComplete, [][2]string{{"mac_valid", "1"}, {"count_fresh", "1"}}},
		{spec.GUTIRealloCommand, spec.GUTIRealloComplete, [][2]string{{"mac_valid", "1"}, {"count_fresh", "1"}}},
		{spec.Paging, spec.ServiceRequest, [][2]string{{"paging_id_match", "1"}}},
		{spec.IdentityRequest, spec.IdentityResponse, [][2]string{{"id_type", "1"}}},
		{spec.AttachReject, spec.NullAction, [][2]string{{"plain_header", "1"}, {"emm_cause", "7"}}},
		{spec.EMMInformation, spec.NullAction, [][2]string{{"mac_valid", "1"}, {"count_fresh", "0"}}},
	}

	var log trace.Log
	for i := 0; i < blocks; i++ {
		if i%16 == 0 {
			log = append(log, trace.Record{Kind: trace.KindTestCase, Name: fmt.Sprintf("tc_synthetic_%05d", i/16)})
		}
		ep := episodes[i%len(episodes)]
		from := states[i%len(states)]
		to := states[(i+1)%len(states)]
		sig := style.Recv(ep.in)
		log = append(log,
			trace.Record{Kind: trace.KindFuncEntry, Name: "air_msg_handler"},
			trace.Record{Kind: trace.KindFuncEntry, Name: sig},
			trace.Record{Kind: trace.KindGlobal, Name: "emm_state", Value: string(from)},
			trace.Record{Kind: trace.KindGlobal, Name: "guti", Value: "0x1001"},
		)
		for _, p := range ep.preds {
			log = append(log, trace.Record{Kind: trace.KindLocal, Name: p[0], Value: p[1]})
		}
		// Uninstrumented noise the extractor must skip cheaply.
		log = append(log, trace.Record{Kind: trace.KindLocal, Name: "scratch_len", Value: fmt.Sprintf("%d", i%251)})
		if ep.out != spec.NullAction {
			log = append(log,
				trace.Record{Kind: trace.KindFuncEntry, Name: style.Send(ep.out)},
				trace.Record{Kind: trace.KindFuncExit, Name: style.Send(ep.out)},
			)
		}
		log = append(log,
			trace.Record{Kind: trace.KindGlobal, Name: "emm_state", Value: string(to)},
			trace.Record{Kind: trace.KindFuncExit, Name: sig},
			trace.Record{Kind: trace.KindFuncExit, Name: "air_msg_handler"},
		)
	}
	return log
}
