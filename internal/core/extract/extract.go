// Package extract implements ProChecker's model extractor (Algorithm 1):
// it dissects the information-rich execution log into blocks, one per
// incoming protocol message, and lifts states (from global state
// variables), conditions (from the incoming-handler signature plus
// sanity-check locals) and actions (from outgoing-handler signatures)
// into the FSM (Σ, Γ, S, s₀, T).
package extract

import (
	"errors"
	"fmt"

	"prochecker/internal/core/fsmodel"
	"prochecker/internal/spec"
	"prochecker/internal/trace"
)

// Options tune the extraction.
type Options struct {
	// Name labels the produced FSM.
	Name string
	// Initial overrides the initial state; when empty, the first state
	// signature in the log is used.
	Initial fsmodel.State
	// PredicateFilter selects which local variables become transition
	// predicates. Nil selects DefaultPredicateFilter.
	PredicateFilter func(name string) bool
	// KeepDuplicatePredicates keeps repeated (var, value) pairs within a
	// block; by default the last occurrence wins, since handlers may
	// re-log a variable after refinement of its value.
	KeepDuplicatePredicates bool
}

// DefaultPredicateFilter admits the shared sanity-check vocabulary plus
// the well-known auxiliary condition variables observed across the three
// implementations.
func DefaultPredicateFilter(name string) bool {
	if spec.IsConditionVar(name) {
		return true
	}
	switch name {
	case "caps_match", "res_match", "auts_valid", "paging_id_match",
		"id_type", "emm_cause", "detach_type":
		return true
	default:
		return false
	}
}

// ErrEmptyLog is returned when the log contains no extractable blocks.
var ErrEmptyLog = errors.New("extract: log contains no incoming-message blocks")

// block is one incoming-message episode of the log.
type block struct {
	cond spec.MessageName
	// handler is the incoming-handler signature that opened the block;
	// the block closes when that handler exits, so uplink-initiated
	// sends outside any handler are not misattributed as its actions.
	handler string
	sIn     fsmodel.State
	sOut    fsmodel.State
	preds   []fsmodel.Predicate
	actions []spec.MessageName
}

// Model runs Algorithm 1 over the log with the given signature sets.
func Model(log trace.Log, sig spec.Signatures, opts Options) (*fsmodel.FSM, error) {
	if opts.PredicateFilter == nil {
		opts.PredicateFilter = DefaultPredicateFilter
	}
	name := opts.Name
	if name == "" {
		name = "extracted"
	}

	blocks, firstState := dissect(log, sig, opts)
	if len(blocks) == 0 {
		return nil, ErrEmptyLog
	}
	initial := opts.Initial
	if initial == "" {
		initial = firstState
	}
	fsm := fsmodel.New(name, initial)
	for _, b := range blocks {
		if b.sIn == "" || b.sOut == "" {
			// A block without state dumps cannot contribute a transition;
			// this only happens for handlers outside the instrumented
			// layer.
			continue
		}
		actions := b.actions
		if len(actions) == 0 {
			actions = []spec.MessageName{spec.NullAction}
		}
		fsm.AddTransition(fsmodel.Transition{
			From:    b.sIn,
			To:      b.sOut,
			Cond:    fsmodel.Condition{Message: b.cond, Predicates: b.preds},
			Actions: actions,
		})
	}
	return fsm, nil
}

// dissect splits the log into incoming-message blocks (DivideBlock of
// Algorithm 1) and scans each line for state, condition and action
// signatures.
func dissect(log trace.Log, sig spec.Signatures, opts Options) ([]block, fsmodel.State) {
	stateSet := make(map[string]bool, len(sig.States))
	for _, s := range sig.States {
		stateSet[s] = true
	}

	var blocks []block
	var cur *block
	var firstState fsmodel.State

	flush := func() {
		if cur != nil {
			blocks = append(blocks, *cur)
			cur = nil
		}
	}

	for _, rec := range log {
		switch rec.Kind {
		case trace.KindTestCase:
			// Blocks never span test cases: each case starts pristine.
			flush()
		case trace.KindFuncEntry:
			if m, ok := sig.Incoming[rec.Name]; ok {
				flush()
				cur = &block{cond: m, handler: rec.Name}
				continue
			}
			if m, ok := sig.Outgoing[rec.Name]; ok && cur != nil {
				cur.actions = append(cur.actions, m)
			}
		case trace.KindFuncExit:
			if cur != nil && rec.Name == cur.handler {
				flush()
			}
		case trace.KindGlobal:
			norm, ok := spec.NormalizeStateName(rec.Value)
			if !ok || !stateSet[norm] {
				continue
			}
			if firstState == "" {
				firstState = fsmodel.State(norm)
			}
			if cur == nil {
				continue
			}
			if cur.sIn == "" {
				cur.sIn = fsmodel.State(norm)
			} else {
				cur.sOut = fsmodel.State(norm)
			}
		case trace.KindLocal:
			if cur == nil || !opts.PredicateFilter(rec.Name) {
				continue
			}
			pred := fsmodel.Predicate{Var: rec.Name, Value: rec.Value}
			if opts.KeepDuplicatePredicates {
				cur.preds = append(cur.preds, pred)
				continue
			}
			replaced := false
			for i := range cur.preds {
				if cur.preds[i].Var == rec.Name {
					cur.preds[i] = pred
					replaced = true
					break
				}
			}
			if !replaced {
				cur.preds = append(cur.preds, pred)
			}
		}
	}
	flush()

	// A block whose handler never re-dumped the state keeps sOut == sIn
	// (self-loop), matching the "no transition happened" semantics.
	for i := range blocks {
		if blocks[i].sOut == "" {
			blocks[i].sOut = blocks[i].sIn
		}
	}
	return blocks, firstState
}

// FromText parses a serialised log and extracts the model; convenience
// for CLI use.
func FromText(text string, sig spec.Signatures, opts Options) (*fsmodel.FSM, error) {
	log, err := trace.ParseString(text)
	if err != nil {
		return nil, fmt.Errorf("extract: %w", err)
	}
	return Model(log, sig, opts)
}

// Stats summarises an extraction for reporting.
type Stats struct {
	Blocks      int
	States      int
	Conditions  int
	Actions     int
	Transitions int
}

// ModelWithStats is Model plus block statistics.
func ModelWithStats(log trace.Log, sig spec.Signatures, opts Options) (*fsmodel.FSM, Stats, error) {
	if opts.PredicateFilter == nil {
		opts.PredicateFilter = DefaultPredicateFilter
	}
	blocks, _ := dissect(log, sig, opts)
	fsm, err := Model(log, sig, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	s, c, a, t := fsm.Size()
	return fsm, Stats{Blocks: len(blocks), States: s, Conditions: c, Actions: a, Transitions: t}, nil
}
