// Package threat is the adversarial model instrumentor (Section VI): it
// takes the UE FSM (UEᵘ, automatically extracted) and the MME FSM (MMEᵘ),
// connects them with two unidirectional public channels, and injects a
// Dolev-Yao adversary that may non-deterministically drop, replay or
// inject messages on either channel. The result IMPᵘ is a ts.System ready
// for the model checker, with every adversary rule tagged so the CEGAR
// loop can query the cryptographic protocol verifier about its
// feasibility.
//
// Predicates extracted from the implementation's sanity checks are given
// their threat-model semantics here: mac_valid=1 restricts a transition to
// genuine or replayed (never forged) messages, count_fresh=1 to genuine
// ones, count_fresh=0 to replays, and sqn_in_range under a replay stays
// non-deterministic — the Annex C out-of-order window decides, and the
// CPV adjudicates it during refinement.
package threat

import (
	"fmt"
	"strings"

	"prochecker/internal/core/fsmodel"
	"prochecker/internal/spec"
	"prochecker/internal/ts"
)

// Origins of a message sitting on a public channel.
const (
	OriginGenuine = "genuine"
	OriginReplay  = "replay"
	OriginInject  = "inject"
)

// Channel variable values: "none" or "<message>@<origin>".
const EmptyChannel = "none"

// Slot renders a channel occupancy value.
func Slot(m spec.MessageName, origin string) string {
	return string(m) + "@" + origin
}

// ParseSlot splits a channel value.
func ParseSlot(v string) (spec.MessageName, string, bool) {
	msg, origin, ok := strings.Cut(v, "@")
	if !ok {
		return "", "", false
	}
	return spec.MessageName(msg), origin, true
}

// Variable names of the composed system.
const (
	VarUEState  = "ue_state"
	VarMMEState = "mme_state"
	VarDL       = "chan_dl"
	VarUL       = "chan_ul"
	// VarProcGUTI is the supervision variable of the default GUTI
	// reallocation procedure.
	VarProcGUTI = "proc_guti_realloc"
)

// Supervision variable domain: idle, pending after the initial
// transmission and after each of the four retransmissions, and aborted
// (the paper's fifth-expiry abort).
var procDomain = []string{"idle", "p0", "p1", "p2", "p3", "p4", "aborted"}

// SupervisedProcedure describes a network-initiated procedure supervised
// by a retransmission timer (T3450 for GUTI reallocation in 4G, T3555
// for the configuration update procedure in 5G): the command is
// retransmitted four times and the procedure aborted on the fifth
// expiry — the machinery P3 exploits.
type SupervisedProcedure struct {
	// Name prefixes the supervision rules (mme:<Name>:start, ...).
	Name string
	// Command is the downlink message the procedure sends.
	Command spec.MessageName
	// Complete is the uplink message acknowledging it.
	Complete spec.MessageName
	// ReadyState is the network-side state the procedure starts from.
	ReadyState string
}

// Var returns the procedure's supervision variable name.
func (sp SupervisedProcedure) Var() string { return "proc_" + sp.Name }

// GUTIReallocationProcedure is the paper's 4G instance.
func GUTIReallocationProcedure() SupervisedProcedure {
	return SupervisedProcedure{
		Name:       "guti_realloc",
		Command:    spec.GUTIRealloCommand,
		Complete:   spec.GUTIRealloComplete,
		ReadyState: string(spec.MMERegistered),
	}
}

// Rule-name tags consumed by the CEGAR loop.
const (
	TagActor  = "actor"
	TagKind   = "kind"
	TagMsg    = "msg"
	TagOrigin = "origin"
	TagSQNOld = "sqn_stale_accept"
)

// Config parameterises the composition.
type Config struct {
	// Name labels the composed system.
	Name string
	// UE is the (typically extracted) UE model.
	UE *fsmodel.FSM
	// MME is the network-side model (typically ltemodels.MME()).
	MME *fsmodel.FSM
	// UEInternal supplies UE-initiated transitions to merge into the UE
	// model; nil selects DefaultUEInternal(). Pass an explicit empty
	// slice to merge none.
	UEInternal []fsmodel.Transition
	// SuperviseGUTIRealloc adds the T3450 retransmission/abort machinery
	// for the GUTI reallocation procedure (needed to reproduce P3's
	// five-drop denial); shorthand for adding
	// GUTIReallocationProcedure() to Supervise.
	SuperviseGUTIRealloc bool
	// Supervise lists additional supervised procedures (e.g. the 5G
	// configuration update procedure).
	Supervise []SupervisedProcedure
	// PlainOnAir overrides the message protection classification for
	// generations with different message sets (nil = spec.PlainOnAir).
	PlainOnAir func(spec.MessageName) bool
	// EagerObservationBits adds an observation bit for *every* channel
	// message up front and guards every replay rule on it, instead of
	// letting the CEGAR loop introduce the bits lazily when the CPV
	// refutes an unobserved replay. This is the ablation baseline for
	// the lazy-abstraction design: sound, but it multiplies the state
	// space by 2^messages.
	EagerObservationBits bool
}

// DefaultUEInternal returns the UE-initiated transitions every UE
// exhibits: starting attach, detach, TAU and service request. These are
// not extracted by Algorithm 1 (which keys on incoming messages) and are
// part of the composition environment, like LTEInspector's model.
func DefaultUEInternal() []fsmodel.Transition {
	mk := func(from, to spec.EMMState, action spec.MessageName) fsmodel.Transition {
		return fsmodel.Transition{
			From: fsmodel.State(from), To: fsmodel.State(to),
			Cond:    fsmodel.Condition{Message: spec.InternalEvent},
			Actions: []spec.MessageName{action},
		}
	}
	return []fsmodel.Transition{
		mk(spec.EMMDeregistered, spec.EMMRegisteredInitiated, spec.AttachRequest),
		mk(spec.EMMDeregisteredAttachNeeded, spec.EMMRegisteredInitiated, spec.AttachRequest),
		mk(spec.EMMRegistered, spec.EMMDeregInitiated, spec.DetachRequestUE),
		mk(spec.EMMRegistered, spec.EMMTAUInitiated, spec.TAURequest),
		mk(spec.EMMRegistered, spec.EMMServiceReqInitiated, spec.ServiceRequest),
	}
}

// originSet is a small set abstraction over the three origins.
type originSet map[string]bool

func allOrigins() originSet {
	return originSet{OriginGenuine: true, OriginReplay: true, OriginInject: true}
}

func (o originSet) intersect(allowed ...string) {
	keep := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		keep[a] = true
	}
	for origin := range o {
		if !keep[origin] {
			delete(o, origin)
		}
	}
}

// originsFor computes which message origins are consistent with a
// transition's predicates under the threat model's cryptographic
// semantics. The bool result reports whether the sqn_in_range=1 predicate
// was satisfied by a *stale replay* (the Annex C window), which the CPV
// must adjudicate.
func originsFor(cond fsmodel.Condition) (originSet, bool) {
	origins := allOrigins()
	staleSQNAccept := false
	for _, p := range cond.Predicates {
		switch p.Var {
		case string(spec.CondMACValid):
			if p.Value == "1" {
				origins.intersect(OriginGenuine, OriginReplay)
			} else {
				origins.intersect(OriginInject)
			}
		case string(spec.CondCountFresh):
			if p.Value == "1" {
				origins.intersect(OriginGenuine)
			} else {
				origins.intersect(OriginReplay)
			}
		case string(spec.CondSQNInRange), string(spec.CondSQNFresh):
			if p.Value == "1" {
				// Genuine challenges are always in range; stale replays
				// may be too, thanks to the SQN array (P1). Forgeries
				// never verify.
				origins.intersect(OriginGenuine, OriginReplay)
				if origins[OriginReplay] {
					staleSQNAccept = true
				}
			} else {
				origins.intersect(OriginReplay, OriginInject)
			}
		case "caps_match", "res_match", "auts_valid":
			if p.Value == "1" {
				origins.intersect(OriginGenuine, OriginReplay)
			} else {
				origins.intersect(OriginInject)
			}
		case string(spec.CondPlainHeader):
			// No origin constraint: plain messages are injectable,
			// protected ones are handled by mac_valid/count_fresh.
		default:
			// id_type, emm_cause, detach_type...: payload detail, no
			// origin constraint.
		}
	}
	return origins, staleSQNAccept
}

// defaultOrigins applies to predicate-free transitions (hand-built
// models): plain messages can be genuine, replayed or injected; protected
// ones only genuine under the conformant assumption.
func defaultOrigins(m spec.MessageName, plainOnAir func(spec.MessageName) bool) originSet {
	if plainOnAir == nil {
		plainOnAir = spec.PlainOnAir
	}
	if plainOnAir(m) {
		return allOrigins()
	}
	return originSet{OriginGenuine: true}
}

// Composed bundles the system with the metadata the CEGAR loop needs.
type Composed struct {
	System *ts.System
	Config Config
	// DLMessages / ULMessages are the message types appearing on each
	// channel (for adversary rule generation and property schemas).
	DLMessages []spec.MessageName
	ULMessages []spec.MessageName
	// ForceMergedDL / ForceMergedUL list supervised-procedure messages
	// that no extracted model mentioned and Compose had to merge into
	// the channel domains itself — visible evidence of a perturbed
	// extraction (lint reports them as PC006) instead of a silent patch.
	ForceMergedDL []spec.MessageName
	ForceMergedUL []spec.MessageName
}

// Generation exposes the instrumented system's mutation counter so
// callers holding a Composed (the CEGAR loop, exploration caches) can
// detect refinement edits without reaching into the System: a cached
// reachability graph of IMPᵘ is valid exactly while this value is
// unchanged.
func (c *Composed) Generation() uint64 {
	if c == nil || c.System == nil {
		return 0
	}
	return c.System.Generation()
}

// Compose builds IMPᵘ.
func Compose(cfg Config) (*Composed, error) {
	if cfg.UE == nil || cfg.MME == nil {
		return nil, fmt.Errorf("threat: both UE and MME models are required")
	}
	name := cfg.Name
	if name == "" {
		name = "IMP(" + cfg.UE.Name + ")"
	}

	ue := cfg.UE.Clone()
	internal := cfg.UEInternal
	if internal == nil {
		internal = DefaultUEInternal()
	}
	for _, tr := range internal {
		ue.AddTransition(tr)
	}
	mme := cfg.MME

	sys := ts.NewSystem(name)

	// --- Variables ---
	var ueStates, mmeStates []string
	for _, s := range ue.States() {
		ueStates = append(ueStates, string(s))
	}
	for _, s := range mme.States() {
		mmeStates = append(mmeStates, string(s))
	}
	if err := sys.AddVar(VarUEState, ueStates...); err != nil {
		return nil, err
	}
	if err := sys.AddVar(VarMMEState, mmeStates...); err != nil {
		return nil, err
	}

	supervised := append([]SupervisedProcedure{}, cfg.Supervise...)
	if cfg.SuperviseGUTIRealloc {
		supervised = append(supervised, GUTIReallocationProcedure())
	}
	cfg.Supervise = supervised

	dlMsgs := channelMessages(ue, mme, true)
	ulMsgs := channelMessages(ue, mme, false)
	// The supervision machinery puts its command on the downlink (and
	// expects the completion on the uplink) no matter what the extracted
	// models mention — an extraction perturbed by channel faults can miss
	// these messages entirely, and the domains must still admit them.
	// Each merge is recorded on the Composed so the lint phase can report
	// it (PC006) instead of the pipeline papering over the gap silently.
	var forcedDL, forcedUL []spec.MessageName
	for _, sp := range supervised {
		if merged := ensureMessage(dlMsgs, sp.Command); len(merged) != len(dlMsgs) {
			forcedDL = append(forcedDL, sp.Command)
			dlMsgs = merged
		}
		if merged := ensureMessage(ulMsgs, sp.Complete); len(merged) != len(ulMsgs) {
			forcedUL = append(forcedUL, sp.Complete)
			ulMsgs = merged
		}
	}
	dlDomain := []string{EmptyChannel}
	for _, m := range dlMsgs {
		for _, o := range []string{OriginGenuine, OriginReplay, OriginInject} {
			dlDomain = append(dlDomain, Slot(m, o))
		}
	}
	ulDomain := []string{EmptyChannel}
	for _, m := range ulMsgs {
		for _, o := range []string{OriginGenuine, OriginReplay, OriginInject} {
			ulDomain = append(ulDomain, Slot(m, o))
		}
	}
	if err := sys.AddVar(VarDL, dlDomain...); err != nil {
		return nil, err
	}
	if err := sys.AddVar(VarUL, ulDomain...); err != nil {
		return nil, err
	}
	for _, sp := range supervised {
		if err := sys.AddVar(sp.Var(), procDomain...); err != nil {
			return nil, err
		}
	}

	if err := sys.SetInit(VarUEState, string(ue.Initial)); err != nil {
		return nil, err
	}
	if err := sys.SetInit(VarMMEState, string(mme.Initial)); err != nil {
		return nil, err
	}

	// --- UE rules ---
	if err := addMachineRules(sys, ue, machineUE, cfg); err != nil {
		return nil, err
	}
	// --- MME rules ---
	if err := addMachineRules(sys, mme, machineMME, cfg); err != nil {
		return nil, err
	}
	// --- Supervised procedures (T3450 / T3555 style) ---
	for _, sp := range cfg.Supervise {
		if err := addSupervision(sys, mme, sp); err != nil {
			return nil, err
		}
	}
	// --- Adversary rules ---
	if err := addAdversaryRules(sys, VarDL, dlMsgs); err != nil {
		return nil, err
	}
	if err := addAdversaryRules(sys, VarUL, ulMsgs); err != nil {
		return nil, err
	}

	if cfg.EagerObservationBits {
		if err := addEagerObservation(sys, dlMsgs, ulMsgs); err != nil {
			return nil, err
		}
	}

	return &Composed{
		System: sys, Config: cfg,
		DLMessages: dlMsgs, ULMessages: ulMsgs,
		ForceMergedDL: forcedDL, ForceMergedUL: forcedUL,
	}, nil
}

// addEagerObservation applies the non-lazy abstraction: one observation
// bit per message, set whenever a genuine instance is placed on a
// channel, required by every replay rule. The exception is
// authentication_request, which is pre-capturable across sessions
// (Figure 4 phase 1) and therefore replayable from the start.
func addEagerObservation(sys *ts.System, dlMsgs, ulMsgs []spec.MessageName) error {
	all := append(append([]spec.MessageName{}, dlMsgs...), ulMsgs...)
	seen := make(map[spec.MessageName]bool)
	for _, m := range all {
		if seen[m] || m == spec.AuthRequest {
			seen[m] = true
			continue
		}
		seen[m] = true
		obsVar := "obs_" + string(m)
		if err := sys.AddVar(obsVar, "0", "1"); err != nil {
			return err
		}
		genuine := Slot(m, OriginGenuine)
		msg := string(m)
		sys.MapRules(func(r ts.Rule) ts.Rule {
			for _, a := range r.Assigns {
				if a.Value == genuine && (a.Var == VarDL || a.Var == VarUL) {
					r.Assigns = append(append([]ts.Assign{}, r.Assigns...), ts.Assign{Var: obsVar, Value: "1"})
					break
				}
			}
			if r.Tags[TagActor] == "adv" && r.Tags[TagKind] == "replay" && r.Tags[TagMsg] == msg {
				r.Guard = ts.And{r.Guard, ts.Eq{Var: obsVar, Value: "1"}}
			}
			return r
		})
	}
	return nil
}

type machineSide uint8

const (
	machineUE machineSide = iota + 1
	machineMME
)

// channelMessages collects the message types that can occupy a channel:
// for downlink, the UE's conditions and the MME's actions; vice versa for
// uplink.
func channelMessages(ue, mme *fsmodel.FSM, downlink bool) []spec.MessageName {
	set := make(map[spec.MessageName]bool)
	consumerConds, producerActs := ue.ConditionMessages(), mme.Actions()
	if !downlink {
		consumerConds, producerActs = mme.ConditionMessages(), ue.Actions()
	}
	for _, m := range consumerConds {
		if m != spec.InternalEvent {
			set[m] = true
		}
	}
	for _, m := range producerActs {
		if m != spec.NullAction {
			set[m] = true
		}
	}
	return spec.SortedMessageNames(set)
}

// ensureMessage adds m to a sorted message list if absent, keeping the
// canonical order.
func ensureMessage(msgs []spec.MessageName, m spec.MessageName) []spec.MessageName {
	set := make(map[spec.MessageName]bool, len(msgs)+1)
	for _, existing := range msgs {
		if existing == m {
			return msgs
		}
		set[existing] = true
	}
	set[m] = true
	return spec.SortedMessageNames(set)
}

// addMachineRules lowers one FSM's transitions into guarded commands.
func addMachineRules(sys *ts.System, m *fsmodel.FSM, side machineSide, cfg Config) error {
	stateVar, inVar, outVar := VarUEState, VarDL, VarUL
	actor := "ue"
	if side == machineMME {
		stateVar, inVar, outVar = VarMMEState, VarUL, VarDL
		actor = "mme"
	}
	for _, tr := range m.Transitions() {
		action := firstRealAction(tr.Actions)
		if tr.Cond.Message == spec.InternalEvent {
			// Internal transition: fires when the outgoing channel is
			// free (if it sends) and the machine is in the source state.
			guard := ts.And{ts.Eq{Var: stateVar, Value: string(tr.From)}}
			assigns := []ts.Assign{{Var: stateVar, Value: string(tr.To)}}
			if action != "" {
				guard = append(guard, ts.Eq{Var: outVar, Value: EmptyChannel})
				assigns = append(assigns, ts.Assign{Var: outVar, Value: Slot(action, OriginGenuine)})
			}
			name := fmt.Sprintf("%s:internal:%s->%s/%s", actor, tr.From, tr.To, actionLabel(action))
			if err := sys.AddRule(ts.Rule{
				Name: name, Guard: guard, Assigns: assigns,
				Tags: map[string]string{TagActor: actor, TagKind: "internal"},
			}); err != nil {
				return err
			}
			continue
		}

		var origins originSet
		var staleSQN bool
		if len(tr.Cond.Predicates) > 0 {
			origins, staleSQN = originsFor(tr.Cond)
		} else {
			origins = defaultOrigins(tr.Cond.Message, cfg.PlainOnAir)
		}
		for _, origin := range []string{OriginGenuine, OriginReplay, OriginInject} {
			if !origins[origin] {
				continue
			}
			guard := ts.And{
				ts.Eq{Var: stateVar, Value: string(tr.From)},
				ts.Eq{Var: inVar, Value: Slot(tr.Cond.Message, origin)},
			}
			assigns := []ts.Assign{
				{Var: stateVar, Value: string(tr.To)},
				{Var: inVar, Value: EmptyChannel},
			}
			if action != "" {
				guard = append(guard, ts.Eq{Var: outVar, Value: EmptyChannel})
				assigns = append(assigns, ts.Assign{Var: outVar, Value: Slot(action, OriginGenuine)})
			}
			// Completing a supervised procedure clears its pending state.
			if side == machineMME {
				for _, sp := range cfg.Supervise {
					if tr.Cond.Message == sp.Complete {
						assigns = append(assigns, ts.Assign{Var: sp.Var(), Value: "idle"})
					}
				}
			}
			tags := map[string]string{
				TagActor:  actor,
				TagKind:   "recv",
				TagMsg:    string(tr.Cond.Message),
				TagOrigin: origin,
			}
			if staleSQN && origin == OriginReplay {
				tags[TagSQNOld] = "1"
			}
			name := fmt.Sprintf("%s:recv:%s@%s:%s->%s/%s[%s]",
				actor, tr.Cond.Message, origin, tr.From, tr.To, actionLabel(action), tr.Cond.String())
			if err := sys.AddRule(ts.Rule{Name: name, Guard: guard, Assigns: assigns, Tags: tags}); err != nil {
				return err
			}
		}
	}
	return nil
}

// addSupervision adds one procedure's start/retransmit/abort machinery.
func addSupervision(sys *ts.System, mme *fsmodel.FSM, sp SupervisedProcedure) error {
	if !mme.HasState(fsmodel.State(sp.ReadyState)) {
		return fmt.Errorf("threat: network model lacks state %s needed to supervise %s", sp.ReadyState, sp.Name)
	}
	procVar := sp.Var()
	start := ts.Rule{
		Name: fmt.Sprintf("mme:%s:start", sp.Name),
		Guard: ts.And{
			ts.Eq{Var: VarMMEState, Value: sp.ReadyState},
			ts.Eq{Var: procVar, Value: "idle"},
			ts.Eq{Var: VarDL, Value: EmptyChannel},
		},
		Assigns: []ts.Assign{
			{Var: VarDL, Value: Slot(sp.Command, OriginGenuine)},
			{Var: procVar, Value: "p0"},
		},
		Tags: map[string]string{TagActor: "mme", TagKind: "proc_start", TagMsg: string(sp.Command)},
	}
	if err := sys.AddRule(start); err != nil {
		return err
	}
	pendings := []string{"p0", "p1", "p2", "p3", "p4"}
	for i := 0; i < len(pendings)-1; i++ {
		retx := ts.Rule{
			Name: fmt.Sprintf("mme:%s:timer_expiry_%d", sp.Name, i+1),
			Guard: ts.And{
				ts.Eq{Var: procVar, Value: pendings[i]},
				ts.Eq{Var: VarDL, Value: EmptyChannel},
			},
			Assigns: []ts.Assign{
				{Var: VarDL, Value: Slot(sp.Command, OriginGenuine)},
				{Var: procVar, Value: pendings[i+1]},
			},
			Tags: map[string]string{TagActor: "mme", TagKind: "timer", TagMsg: string(sp.Command)},
		}
		if err := sys.AddRule(retx); err != nil {
			return err
		}
	}
	abort := ts.Rule{
		Name: fmt.Sprintf("mme:%s:abort", sp.Name),
		Guard: ts.And{
			ts.Eq{Var: procVar, Value: "p4"},
			ts.Eq{Var: VarDL, Value: EmptyChannel},
		},
		Assigns: []ts.Assign{{Var: procVar, Value: "aborted"}},
		Tags:    map[string]string{TagActor: "mme", TagKind: "proc_abort", TagMsg: string(sp.Command)},
	}
	return sys.AddRule(abort)
}

// addAdversaryRules adds drop/replay/inject for one channel.
func addAdversaryRules(sys *ts.System, chanVar string, msgs []spec.MessageName) error {
	// Drop: one rule per occupancy value (so the dropped message is
	// identifiable in counterexamples).
	for _, m := range msgs {
		for _, origin := range []string{OriginGenuine, OriginReplay, OriginInject} {
			drop := ts.Rule{
				Name:    fmt.Sprintf("adv:drop:%s:%s@%s", chanVar, m, origin),
				Guard:   ts.Eq{Var: chanVar, Value: Slot(m, origin)},
				Assigns: []ts.Assign{{Var: chanVar, Value: EmptyChannel}},
				Tags:    map[string]string{TagActor: "adv", TagKind: "drop", TagMsg: string(m), TagOrigin: origin},
			}
			if err := sys.AddRule(drop); err != nil {
				return err
			}
		}
		replay := ts.Rule{
			Name:    fmt.Sprintf("adv:replay:%s:%s", chanVar, m),
			Guard:   ts.Eq{Var: chanVar, Value: EmptyChannel},
			Assigns: []ts.Assign{{Var: chanVar, Value: Slot(m, OriginReplay)}},
			Tags:    map[string]string{TagActor: "adv", TagKind: "replay", TagMsg: string(m)},
		}
		if err := sys.AddRule(replay); err != nil {
			return err
		}
		inject := ts.Rule{
			Name:    fmt.Sprintf("adv:inject:%s:%s", chanVar, m),
			Guard:   ts.Eq{Var: chanVar, Value: EmptyChannel},
			Assigns: []ts.Assign{{Var: chanVar, Value: Slot(m, OriginInject)}},
			Tags:    map[string]string{TagActor: "adv", TagKind: "inject", TagMsg: string(m)},
		}
		if err := sys.AddRule(inject); err != nil {
			return err
		}
	}
	return nil
}

func firstRealAction(actions []spec.MessageName) spec.MessageName {
	for _, a := range actions {
		if a != spec.NullAction {
			return a
		}
	}
	return ""
}

func actionLabel(a spec.MessageName) string {
	if a == "" {
		return string(spec.NullAction)
	}
	return string(a)
}
