package threat

import (
	"strings"
	"testing"

	"prochecker/internal/conformance"
	"prochecker/internal/core/extract"
	"prochecker/internal/core/fsmodel"
	"prochecker/internal/ltemodels"
	"prochecker/internal/mc"
	"prochecker/internal/spec"
	"prochecker/internal/ts"
	"prochecker/internal/ue"
)

func composeLTE(t *testing.T, supervise bool) *Composed {
	t.Helper()
	c, err := Compose(Config{
		Name:                 "lte-test",
		UE:                   ltemodels.LTEInspectorUE(),
		MME:                  ltemodels.MME(),
		UEInternal:           []fsmodel.Transition{},
		SuperviseGUTIRealloc: supervise,
	})
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	return c
}

func composeExtracted(t *testing.T, p ue.Profile) *Composed {
	t.Helper()
	rep, err := conformance.RunSuite(p, true)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	fsm, err := extract.Model(rep.Log, spec.UESignatures(ue.StyleFor(p)), extract.Options{Name: "UE/" + p.String()})
	if err != nil {
		t.Fatalf("extract.Model: %v", err)
	}
	c, err := Compose(Config{
		UE:                   fsm,
		MME:                  ltemodels.MME(),
		SuperviseGUTIRealloc: true,
	})
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	return c
}

func TestComposeValidation(t *testing.T) {
	if _, err := Compose(Config{}); err == nil {
		t.Error("Compose without models succeeded")
	}
}

func TestSlotRoundTrip(t *testing.T) {
	v := Slot(spec.AttachAccept, OriginReplay)
	m, o, ok := ParseSlot(v)
	if !ok || m != spec.AttachAccept || o != OriginReplay {
		t.Errorf("ParseSlot(%q) = %v %v %v", v, m, o, ok)
	}
	if _, _, ok := ParseSlot(EmptyChannel); ok {
		t.Error("ParseSlot(none) succeeded")
	}
}

func TestOriginsForPredicates(t *testing.T) {
	tests := []struct {
		name  string
		preds []fsmodel.Predicate
		want  []string
		stale bool
	}{
		{"mac valid", []fsmodel.Predicate{{Var: "mac_valid", Value: "1"}}, []string{OriginGenuine, OriginReplay}, false},
		{"mac invalid", []fsmodel.Predicate{{Var: "mac_valid", Value: "0"}}, []string{OriginInject}, false},
		{"fresh count", []fsmodel.Predicate{{Var: "mac_valid", Value: "1"}, {Var: "count_fresh", Value: "1"}}, []string{OriginGenuine}, false},
		{"stale count", []fsmodel.Predicate{{Var: "mac_valid", Value: "1"}, {Var: "count_fresh", Value: "0"}}, []string{OriginReplay}, false},
		{"sqn ok", []fsmodel.Predicate{{Var: "mac_valid", Value: "1"}, {Var: "sqn_in_range", Value: "1"}}, []string{OriginGenuine, OriginReplay}, true},
		{"sqn bad", []fsmodel.Predicate{{Var: "sqn_in_range", Value: "0"}}, []string{OriginReplay, OriginInject}, false},
		{"contradiction", []fsmodel.Predicate{{Var: "mac_valid", Value: "0"}, {Var: "count_fresh", Value: "1"}}, nil, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, stale := originsFor(fsmodel.Condition{Message: spec.AuthRequest, Predicates: tt.preds})
			if len(got) != len(tt.want) {
				t.Fatalf("origins = %v, want %v", got, tt.want)
			}
			for _, o := range tt.want {
				if !got[o] {
					t.Errorf("origin %s missing", o)
				}
			}
			if stale != tt.stale {
				t.Errorf("stale = %v, want %v", stale, tt.stale)
			}
		})
	}
}

func TestComposedLTEModelReachesRegistered(t *testing.T) {
	c := composeLTE(t, false)
	// Sanity: "the UE can never register" must be violated (registration
	// is reachable), demonstrating the composition makes progress.
	res := mc.Check(c.System, mc.Invariant{
		PropName: "never-registered",
		Holds:    ts.Neq{Var: VarUEState, Value: string(ltemodels.UERegistered)},
	}, mc.Options{})
	if res.Verified {
		t.Fatal("UE registration unreachable in composed model")
	}
	// The counterexample path must include the attach handshake.
	names := strings.Join(res.Counterexample.RuleNames(), "\n")
	for _, want := range []string{"attach_request", "authentication_request", "security_mode_command", "attach_accept"} {
		if !strings.Contains(names, want) {
			t.Errorf("attach counterexample misses %s:\n%s", want, names)
		}
	}
}

func TestComposedModelHasAdversaryRules(t *testing.T) {
	c := composeLTE(t, false)
	var drops, replays, injects int
	for _, r := range c.System.Rules() {
		switch r.Tags[TagKind] {
		case "drop":
			drops++
		case "replay":
			replays++
		case "inject":
			injects++
		}
	}
	if drops == 0 || replays == 0 || injects == 0 {
		t.Errorf("adversary rules missing: drop=%d replay=%d inject=%d", drops, replays, injects)
	}
}

func TestExtractedCompositionStateSpaceTractable(t *testing.T) {
	if testing.Short() {
		t.Skip("state-space exploration in -short mode")
	}
	c := composeExtracted(t, ue.ProfileConformant)
	res := mc.Check(c.System, mc.Invariant{PropName: "explore-all", Holds: ts.True{}}, mc.Options{})
	if !res.Verified {
		t.Fatalf("trivial invariant failed: %+v", res)
	}
	t.Logf("conformant composed model: %d reachable states, %d rules",
		res.StatesExplored, len(c.System.Rules()))
	if res.StatesExplored < 100 {
		t.Errorf("suspiciously small state space: %d", res.StatesExplored)
	}
	if res.Truncated {
		t.Error("state space exceeded the exploration bound")
	}
}

func TestGUTISupervisionAbortReachable(t *testing.T) {
	c := composeLTE(t, true)
	res := mc.Check(c.System, mc.Invariant{
		PropName: "never-aborted",
		Holds:    ts.Neq{Var: VarProcGUTI, Value: "aborted"},
	}, mc.Options{})
	if res.Verified {
		t.Fatal("GUTI reallocation abort unreachable; P3 cannot be expressed")
	}
	// Reaching the abort requires the adversary to suppress (at least)
	// the four retransmissions; the canonical 5-drop attack is validated
	// end to end on the testbed.
	dropCount := 0
	for _, s := range res.Counterexample.Steps {
		if strings.Contains(s.Rule, "adv:drop") && strings.Contains(s.Rule, "guti_reallocation_command") {
			dropCount++
		}
	}
	if dropCount < 4 {
		t.Errorf("abort counterexample drops the command %d times, want >= 4:\n%s",
			dropCount, res.Counterexample)
	}
}

func TestInternalDefaultsMergedForExtractedModel(t *testing.T) {
	c := composeExtracted(t, ue.ProfileConformant)
	found := false
	for _, r := range c.System.Rules() {
		if strings.HasPrefix(r.Name, "ue:internal:") && strings.Contains(r.Name, "attach_request") {
			found = true
		}
	}
	if !found {
		t.Error("UE internal attach trigger missing from composed system")
	}
}

func TestRuleTagsCarryAdversaryMetadata(t *testing.T) {
	c := composeLTE(t, false)
	r, ok := c.System.RuleByName("adv:replay:chan_dl:" + string(spec.AuthRequest))
	if !ok {
		t.Fatal("auth_request replay rule missing")
	}
	if r.Tags[TagKind] != "replay" || r.Tags[TagMsg] != string(spec.AuthRequest) {
		t.Errorf("tags = %v", r.Tags)
	}
}

func TestSMVGenerationFromComposedModel(t *testing.T) {
	c := composeLTE(t, false)
	smv := c.System.SMV()
	for _, want := range []string{"MODULE main", VarUEState, VarMMEState, VarDL, VarUL, "TRANS"} {
		if !strings.Contains(smv, want) {
			t.Errorf("SMV output misses %q", want)
		}
	}
}

// TestComposedGeneration pins the cache-invalidation hook: the composed
// model's generation tracks its system's mutation counter, and the nil
// receivers degrade to zero instead of panicking.
func TestComposedGeneration(t *testing.T) {
	c := composeLTE(t, false)
	if c.Generation() != c.System.Generation() {
		t.Fatalf("Generation() = %d, system reports %d", c.Generation(), c.System.Generation())
	}
	before := c.Generation()
	rules := c.System.Rules()
	if len(rules) == 0 {
		t.Fatal("composed system has no rules")
	}
	if !c.System.RemoveRule(rules[0].Name) {
		t.Fatal("RemoveRule failed")
	}
	if c.Generation() <= before {
		t.Error("refinement edit did not advance the composed generation")
	}
	var nilComposed *Composed
	if nilComposed.Generation() != 0 {
		t.Error("nil Composed should report generation 0")
	}
	if (&Composed{}).Generation() != 0 {
		t.Error("Composed without a system should report generation 0")
	}
}

// TestForceMergedRecording pins the supervised-procedure merge contract:
// when neither composed model mentions a supervised message, Compose
// still merges it into the channel domains but records the merge so the
// lint layer can surface it (PC006) instead of it repairing the model
// silently.
func TestForceMergedRecording(t *testing.T) {
	ueWithGUTI := ltemodels.LTEInspectorUE()
	full := composeLTE(t, true)
	if len(full.ForceMergedDL) != 0 || len(full.ForceMergedUL) != 0 {
		t.Errorf("complete UE model still force-merged: DL=%v UL=%v",
			full.ForceMergedDL, full.ForceMergedUL)
	}

	// A UE model that never mentions the GUTI reallocation procedure.
	bare := fsmodel.New("UE/bare", ueWithGUTI.Initial)
	for _, tr := range ueWithGUTI.Transitions() {
		if tr.Cond.Message == spec.GUTIRealloCommand {
			continue
		}
		keep := tr
		keep.Actions = nil
		for _, a := range tr.Actions {
			if a == spec.GUTIRealloComplete {
				continue
			}
			keep.Actions = append(keep.Actions, a)
		}
		bare.AddTransition(keep)
	}
	c, err := Compose(Config{
		Name:                 "lte-bare",
		UE:                   bare,
		MME:                  ltemodels.MME(),
		UEInternal:           []fsmodel.Transition{},
		SuperviseGUTIRealloc: true,
	})
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	wantDL := false
	for _, m := range c.ForceMergedDL {
		if m == spec.GUTIRealloCommand {
			wantDL = true
		}
	}
	if !wantDL {
		t.Errorf("guti_reallocation_command not recorded as force-merged: DL=%v", c.ForceMergedDL)
	}
	// The merge itself must still have happened: the domain contains it.
	inDomain := false
	for _, m := range c.DLMessages {
		if m == spec.GUTIRealloCommand {
			inDomain = true
		}
	}
	if !inDomain {
		t.Error("force-merged message missing from the downlink domain")
	}
}
