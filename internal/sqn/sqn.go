// Package sqn implements the TS 33.102 Annex C sequence-number management
// scheme for authentication vectors: SQN = SEQ || IND, a USIM-side array
// of 2^IND-bits slots each holding the highest accepted SEQ for that
// index, and the *optional* freshness limit L whose absence is the root
// cause of the paper's P1 (service disruption) and P2 (linkability)
// attacks.
//
// The network-side Generator increments both SEQ and IND for each fresh
// vector; the USIM-side Verifier accepts a received SQN when its SEQ is
// strictly greater than the stored SEQ at the received IND slot. Because
// slots age independently, an adversary who captures-and-drops a vector
// can replay it later and still have it accepted — up to 2^INDBits - 1
// stale vectors, 31 for the 5-bit IND used by COTS UEs (Section VII-A).
package sqn

import (
	"errors"
	"fmt"
)

// DefaultINDBits is the index width observed in COTS UEs (Section VII-A):
// 5 bits, i.e. a 32-slot SQN array.
const DefaultINDBits = 5

// MaxINDBits bounds the index width to keep SQN in 48 bits overall.
const MaxINDBits = 16

// Config parameterises the Annex C scheme.
type Config struct {
	// INDBits is the width of the IND part; the SQN array has 2^INDBits
	// slots.
	INDBits uint
	// FreshnessLimit is the optional limit L from Annex C 2.2: a received
	// SEQ is rejected if seqMS - SEQ > L, where seqMS is the highest SEQ
	// accepted in any slot. Zero means the check is disabled — the
	// default, since the standard leaves L optional and undefined, and no
	// major vendor implements it.
	FreshnessLimit uint64
}

// DefaultConfig mirrors the COTS behaviour: 5 IND bits, no freshness
// limit.
func DefaultConfig() Config { return Config{INDBits: DefaultINDBits} }

func (c Config) validate() error {
	if c.INDBits == 0 || c.INDBits > MaxINDBits {
		return fmt.Errorf("sqn: INDBits must be in [1,%d], got %d", MaxINDBits, c.INDBits)
	}
	return nil
}

// slots returns the SQN-array length a = 2^INDBits.
func (c Config) slots() uint64 { return 1 << c.INDBits }

// Split decomposes an SQN value into its SEQ and IND parts under c.
func (c Config) Split(sqn uint64) (seq, ind uint64) {
	return sqn >> c.INDBits, sqn & (c.slots() - 1)
}

// Join composes SEQ and IND parts into an SQN value under c.
func (c Config) Join(seq, ind uint64) uint64 {
	return seq<<c.INDBits | (ind & (c.slots() - 1))
}

// Generator is the network-side (HSS) SQN source. For each fresh vector it
// increments the global SEQ counter and advances IND cyclically, per the
// paper's description of the scheme.
type Generator struct {
	cfg Config
	seq uint64
	ind uint64
}

// NewGenerator builds a network-side SQN generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg}, nil
}

// Next returns a fresh SQN: SEQ is incremented and IND advances to the
// next slot modulo the array size.
func (g *Generator) Next() uint64 {
	g.seq++
	g.ind = (g.ind + 1) % g.cfg.slots()
	return g.cfg.Join(g.seq, g.ind)
}

// Peek returns the SQN that the most recent Next produced, without
// advancing. It is zero before the first Next.
func (g *Generator) Peek() uint64 { return g.cfg.Join(g.seq, g.ind) }

// Resync fast-forwards the generator after an auth_sync_failure: the next
// SQN's SEQ part will be strictly greater than the SEQ of the sqnMS value
// reported by the USIM. A Resync to an older SEQ is a no-op.
func (g *Generator) Resync(sqnMS uint64) {
	seq, _ := g.cfg.Split(sqnMS)
	if seq > g.seq {
		g.seq = seq
	}
}

// Verification errors.
var (
	// ErrSQNOutOfRange means the received SEQ was not greater than the
	// stored SEQ for its IND slot: the USIM must answer with an
	// auth_sync_failure carrying AUTS.
	ErrSQNOutOfRange = errors.New("sqn: received SEQ not greater than stored SEQ for its IND")
	// ErrSQNTooOld means the optional freshness-limit check L rejected
	// the value (only possible when Config.FreshnessLimit > 0).
	ErrSQNTooOld = errors.New("sqn: received SEQ older than freshness limit L")
)

// Verifier is the USIM-side SQN checker holding the per-IND slot array.
type Verifier struct {
	cfg   Config
	slot  []uint64 // highest accepted SEQ per IND
	seqMS uint64   // highest accepted SEQ across all slots
	used  []bool   // whether the slot has ever accepted a SEQ
}

// NewVerifier builds a USIM-side verifier with an empty SQN array.
func NewVerifier(cfg Config) (*Verifier, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.slots()
	return &Verifier{cfg: cfg, slot: make([]uint64, n), used: make([]bool, n)}, nil
}

// Verify checks a received SQN per Annex C and, on success, records it.
// On ErrSQNOutOfRange the caller should trigger resynchronisation using
// HighestAccepted as SQN_MS.
func (v *Verifier) Verify(sqn uint64) error {
	seq, ind := v.cfg.Split(sqn)
	if v.used[ind] && seq <= v.slot[ind] {
		return ErrSQNOutOfRange
	}
	if v.cfg.FreshnessLimit > 0 && v.seqMS > seq && v.seqMS-seq > v.cfg.FreshnessLimit {
		// Annex C 2.2: optional limit on accepted SQN age. Disabled by
		// default, which is precisely what P1 exploits.
		return ErrSQNTooOld
	}
	v.slot[ind] = seq
	v.used[ind] = true
	if seq > v.seqMS {
		v.seqMS = seq
	}
	return nil
}

// WouldAccept reports whether Verify(sqn) would succeed, without mutating
// the array. The threat model uses this to label transitions.
func (v *Verifier) WouldAccept(sqn uint64) bool {
	seq, ind := v.cfg.Split(sqn)
	if v.used[ind] && seq <= v.slot[ind] {
		return false
	}
	if v.cfg.FreshnessLimit > 0 && v.seqMS > seq && v.seqMS-seq > v.cfg.FreshnessLimit {
		return false
	}
	return true
}

// HighestAccepted returns SQN_MS: the highest previously accepted SQN
// anywhere in the array, used to build the resynchronisation token.
func (v *Verifier) HighestAccepted() uint64 {
	var bestSeq, bestInd uint64
	found := false
	for ind, ok := range v.used {
		if !ok {
			continue
		}
		if !found || v.slot[ind] > bestSeq {
			bestSeq = v.slot[ind]
			bestInd = uint64(ind)
			found = true
		}
	}
	if !found {
		return 0
	}
	return v.cfg.Join(bestSeq, bestInd)
}

// Snapshot returns a copy of the per-slot SEQ values (index = IND).
func (v *Verifier) Snapshot() []uint64 {
	out := make([]uint64, len(v.slot))
	copy(out, v.slot)
	return out
}

// Config returns the scheme parameters of the verifier.
func (v *Verifier) Config() Config { return v.cfg }

// AgingReport quantifies the staleness window the scheme leaves open,
// reproducing the paper's operational-trace analysis (Section VII-A):
// with 5-bit IND, a USIM accepts up to 31 previously captured stale
// authentication requests, and at observed network rates that corresponds
// to vectors that are days old.
type AgingReport struct {
	INDBits uint
	// ArraySize is 2^INDBits.
	ArraySize uint64
	// MaxStaleAccepted is how many captured-and-dropped vectors remain
	// acceptable after the network has moved on: ArraySize - 1.
	MaxStaleAccepted uint64
	// AuthRequestsPerDay parameterises the synthetic operational trace.
	AuthRequestsPerDay float64
	// StaleWindowDays is how old an accepted stale vector can be.
	StaleWindowDays float64
}

// Aging computes the staleness analysis for the scheme under an assumed
// auth-request arrival rate (requests/day, must be > 0).
func Aging(cfg Config, authRequestsPerDay float64) (AgingReport, error) {
	if err := cfg.validate(); err != nil {
		return AgingReport{}, err
	}
	if authRequestsPerDay <= 0 {
		return AgingReport{}, fmt.Errorf("sqn: authRequestsPerDay must be positive, got %v", authRequestsPerDay)
	}
	a := cfg.slots()
	return AgingReport{
		INDBits:            cfg.INDBits,
		ArraySize:          a,
		MaxStaleAccepted:   a - 1,
		AuthRequestsPerDay: authRequestsPerDay,
		StaleWindowDays:    float64(a-1) / authRequestsPerDay,
	}, nil
}

// StaleReplayDemo runs the P1 core scenario end to end on the raw scheme:
// the network issues `captured` vectors that an attacker captures and
// drops, then issues one more that the UE accepts; the attacker then
// replays the captured vectors. It returns how many of the stale vectors
// the verifier accepts.
func StaleReplayDemo(cfg Config, captured int) (accepted int, err error) {
	if captured < 0 {
		return 0, fmt.Errorf("sqn: captured must be non-negative, got %d", captured)
	}
	gen, err := NewGenerator(cfg)
	if err != nil {
		return 0, err
	}
	ver, err := NewVerifier(cfg)
	if err != nil {
		return 0, err
	}
	stale := make([]uint64, 0, captured)
	for i := 0; i < captured; i++ {
		stale = append(stale, gen.Next())
	}
	// The network moves on: the UE accepts a fresh, newer vector.
	if err := ver.Verify(gen.Next()); err != nil {
		return 0, fmt.Errorf("sqn: fresh vector unexpectedly rejected: %w", err)
	}
	// Replay newest-first: each IND slot then accepts at most one stale
	// vector, so acceptance is capped at ArraySize-1 (31 for 5-bit IND),
	// matching the paper's analysis.
	for i := len(stale) - 1; i >= 0; i-- {
		if ver.Verify(stale[i]) == nil {
			accepted++
		}
	}
	return accepted, nil
}
