package sqn

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustGen(t *testing.T, cfg Config) *Generator {
	t.Helper()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g
}

func mustVer(t *testing.T, cfg Config) *Verifier {
	t.Helper()
	v, err := NewVerifier(cfg)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	return v
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewGenerator(Config{INDBits: 0}); err == nil {
		t.Error("INDBits=0 accepted")
	}
	if _, err := NewVerifier(Config{INDBits: MaxINDBits + 1}); err == nil {
		t.Error("INDBits too large accepted")
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	prop := func(seq uint32, ind uint8) bool {
		i := uint64(ind) % cfg.slots()
		sqn := cfg.Join(uint64(seq), i)
		s2, i2 := cfg.Split(sqn)
		return s2 == uint64(seq) && i2 == i
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGeneratorIncrementsBothParts(t *testing.T) {
	g := mustGen(t, DefaultConfig())
	cfg := DefaultConfig()
	prevSeq := uint64(0)
	for i := 1; i <= 70; i++ {
		seq, ind := cfg.Split(g.Next())
		if seq != prevSeq+1 {
			t.Fatalf("step %d: SEQ = %d, want %d", i, seq, prevSeq+1)
		}
		if want := uint64(i) % cfg.slots(); ind != want {
			t.Fatalf("step %d: IND = %d, want %d", i, ind, want)
		}
		prevSeq = seq
	}
}

func TestVerifierAcceptsFreshSequence(t *testing.T) {
	cfg := DefaultConfig()
	g := mustGen(t, cfg)
	v := mustVer(t, cfg)
	for i := 0; i < 100; i++ {
		if err := v.Verify(g.Next()); err != nil {
			t.Fatalf("fresh vector %d rejected: %v", i, err)
		}
	}
}

func TestVerifierRejectsExactReplay(t *testing.T) {
	cfg := DefaultConfig()
	g := mustGen(t, cfg)
	v := mustVer(t, cfg)
	s := g.Next()
	if err := v.Verify(s); err != nil {
		t.Fatalf("first: %v", err)
	}
	if err := v.Verify(s); !errors.Is(err, ErrSQNOutOfRange) {
		t.Errorf("replay of same SQN: err = %v, want ErrSQNOutOfRange", err)
	}
}

// TestStaleAcceptedAtOtherIndex is the crux of P1: a captured-and-dropped
// SQN remains acceptable because its IND slot was never updated.
func TestStaleAcceptedAtOtherIndex(t *testing.T) {
	cfg := DefaultConfig()
	g := mustGen(t, cfg)
	v := mustVer(t, cfg)

	captured := g.Next() // attacker captures and drops this vector
	fresh := g.Next()    // network moves on; UE accepts the next one
	if err := v.Verify(fresh); err != nil {
		t.Fatalf("fresh rejected: %v", err)
	}
	if err := v.Verify(captured); err != nil {
		t.Errorf("stale captured vector rejected (%v); P1 precondition broken", err)
	}
	seqFresh, _ := cfg.Split(fresh)
	seqCaptured, _ := cfg.Split(captured)
	if seqCaptured >= seqFresh {
		t.Fatal("test setup wrong: captured should be older")
	}
}

func TestFreshnessLimitClosesTheHole(t *testing.T) {
	cfg := Config{INDBits: DefaultINDBits, FreshnessLimit: 1}
	g := mustGen(t, cfg)
	v := mustVer(t, cfg)

	captured := g.Next()
	_ = g.Next()
	_ = g.Next()
	newest := g.Next()
	if err := v.Verify(newest); err != nil {
		t.Fatalf("fresh rejected: %v", err)
	}
	if err := v.Verify(captured); !errors.Is(err, ErrSQNTooOld) {
		t.Errorf("with L=1, stale replay err = %v, want ErrSQNTooOld", err)
	}
}

func TestHighestAccepted(t *testing.T) {
	cfg := DefaultConfig()
	g := mustGen(t, cfg)
	v := mustVer(t, cfg)
	if v.HighestAccepted() != 0 {
		t.Error("empty verifier should report 0")
	}
	var last uint64
	for i := 0; i < 10; i++ {
		last = g.Next()
		if err := v.Verify(last); err != nil {
			t.Fatalf("Verify: %v", err)
		}
	}
	if got := v.HighestAccepted(); got != last {
		t.Errorf("HighestAccepted = %d, want %d", got, last)
	}
}

func TestWouldAcceptDoesNotMutate(t *testing.T) {
	cfg := DefaultConfig()
	g := mustGen(t, cfg)
	v := mustVer(t, cfg)
	s := g.Next()
	if !v.WouldAccept(s) {
		t.Fatal("WouldAccept(fresh) = false")
	}
	// Still acceptable: WouldAccept must not have recorded it.
	if err := v.Verify(s); err != nil {
		t.Errorf("Verify after WouldAccept failed: %v", err)
	}
	if v.WouldAccept(s) {
		t.Error("WouldAccept(replayed) = true")
	}
}

// TestStaleReplayDemoMatchesPaper reproduces Section VII-A: with 5-bit IND
// (32-slot array), the USIM accepts up to 31 previously captured stale
// authentication requests.
func TestStaleReplayDemoMatchesPaper(t *testing.T) {
	tests := []struct {
		name     string
		captured int
		want     int
	}{
		{"single captured", 1, 1},
		{"ten captured", 10, 10},
		{"array-1 captured", 31, 31},
		{"beyond array", 100, 31},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := StaleReplayDemo(DefaultConfig(), tt.captured)
			if err != nil {
				t.Fatalf("StaleReplayDemo: %v", err)
			}
			if got != tt.want {
				t.Errorf("accepted = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestStaleReplayDemoWithFreshnessLimit(t *testing.T) {
	cfg := Config{INDBits: DefaultINDBits, FreshnessLimit: 2}
	got, err := StaleReplayDemo(cfg, 31)
	if err != nil {
		t.Fatalf("StaleReplayDemo: %v", err)
	}
	if got > 2 {
		t.Errorf("with L=2, accepted = %d, want <= 2", got)
	}
}

func TestStaleReplayDemoRejectsNegative(t *testing.T) {
	if _, err := StaleReplayDemo(DefaultConfig(), -1); err == nil {
		t.Error("negative captured accepted")
	}
}

func TestAgingReport(t *testing.T) {
	rep, err := Aging(DefaultConfig(), 10) // ~10 auth requests/day
	if err != nil {
		t.Fatalf("Aging: %v", err)
	}
	if rep.ArraySize != 32 || rep.MaxStaleAccepted != 31 {
		t.Errorf("array = %d / stale = %d, want 32 / 31", rep.ArraySize, rep.MaxStaleAccepted)
	}
	// Paper: "it takes at least a few days" to cycle the array — with 10
	// requests/day the stale window is ~3 days.
	if rep.StaleWindowDays < 1 {
		t.Errorf("stale window = %v days, want >= 1 (days-old vectors accepted)", rep.StaleWindowDays)
	}
}

func TestAgingRejectsBadRate(t *testing.T) {
	if _, err := Aging(DefaultConfig(), 0); err == nil {
		t.Error("zero rate accepted")
	}
}

// TestPropertyMonotonePerSlot: after any accepted sequence, each slot
// holds the max SEQ it ever accepted, and verification of anything <= that
// fails for that slot.
func TestPropertyMonotonePerSlot(t *testing.T) {
	cfg := Config{INDBits: 3}
	prop := func(seqs []uint16) bool {
		v, err := NewVerifier(cfg)
		if err != nil {
			return false
		}
		maxPerSlot := make(map[uint64]uint64)
		for i, s := range seqs {
			sqn := cfg.Join(uint64(s), uint64(i)%cfg.slots())
			seq, ind := cfg.Split(sqn)
			if v.Verify(sqn) == nil {
				if prev, ok := maxPerSlot[ind]; ok && seq <= prev {
					return false // accepted a non-increasing SEQ in-slot
				}
				maxPerSlot[ind] = seq
			}
		}
		snap := v.Snapshot()
		for ind, want := range maxPerSlot {
			if snap[ind] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
