package nas

import (
	"testing"
	"testing/quick"

	"prochecker/internal/security"
)

// The decoder faces attacker-controlled bytes; it must never panic and
// must either return a well-formed message or an error.

func TestUnmarshalNeverPanicsOnArbitraryBytes(t *testing.T) {
	prop := func(b []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		m, err := Unmarshal(b)
		if err == nil && m == nil {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalPacketNeverPanics(t *testing.T) {
	prop := func(b []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = UnmarshalPacket(b)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeEncodeDecodeFixpoint: whatever decodes successfully must
// re-encode to something that decodes to the same message.
func TestDecodeEncodeDecodeFixpoint(t *testing.T) {
	prop := func(b []byte) bool {
		m, err := Unmarshal(b)
		if err != nil {
			return true // undecodable input is out of scope
		}
		b2, err := Marshal(m)
		if err != nil {
			return false
		}
		m2, err := Unmarshal(b2)
		if err != nil {
			return false
		}
		return m.Name() == m2.Name()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestOpenNeverPanicsOnArbitraryPackets: a hostile radio peer cannot
// crash the security envelope.
func TestOpenNeverPanicsOnArbitraryPackets(t *testing.T) {
	k := security.KeyFromBytes([]byte("robustness"))
	ctx := &Context{Keys: security.DeriveHierarchy(k, []byte("r")), Active: true}
	prop := func(hdr uint8, seq uint8, mac [4]byte, payload []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		p := Packet{Header: SecurityHeader(hdr % 4), Seq: seq, MAC: mac, Payload: payload}
		_, _, _ = ctx.Open(p, DirDownlink)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestTamperedGenuinePacketsNeverVerify: any bit flip on covered content
// of a genuine protected packet must invalidate its MAC.
func TestTamperedGenuinePacketsNeverVerify(t *testing.T) {
	k := security.KeyFromBytes([]byte("tamper"))
	h := security.DeriveHierarchy(k, []byte("r"))
	sender := &Context{Keys: h, Active: true}
	prop := func(flipByte uint8, flipBit uint8) bool {
		genuine, err := sender.Seal(&GUTIReallocationCommand{GUTI: 7}, HeaderIntegrityCiphered, DirDownlink)
		if err != nil {
			return false
		}
		receiver := &Context{Keys: h, Active: true, DLCount: sender.DLCount - 1}
		raw := MarshalPacket(genuine)
		idx := int(flipByte) % len(raw)
		raw[idx] ^= 1 << (flipBit % 8)
		tampered, err := UnmarshalPacket(raw)
		if err != nil {
			return true // truncated by the flip: rejected outright
		}
		_, insp, err := receiver.Open(tampered, DirDownlink)
		if err != nil {
			return true
		}
		// Any surviving bit flip must invalidate the MAC, unless the flip
		// hit the header byte (the MAC does not cover it in this codec —
		// the header only routes the packet) without changing covered
		// content. A header flip alone leaves payload+MAC intact, so
		// exclude index 0.
		if idx == 0 {
			return true
		}
		return !insp.MACValid
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
