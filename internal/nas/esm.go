package nas

import (
	"bytes"

	"prochecker/internal/spec"
)

// ESM (EPS Session Management, TS 24.301 clause 6) messages: the second
// NAS sub-layer, carried over the same security envelope as EMM. They
// exist so the per-layer extraction requirement (challenge C4) can be
// demonstrated: the same execution log yields a separate ESM machine.

// ESM cause codes (TS 24.301 6.x, abridged).
const (
	ESMCauseInsufficientResources uint8 = 26
	ESMCauseUnknownAPN            uint8 = 27
	ESMCauseActivationRejected    uint8 = 31
	ESMCauseProtocolError         uint8 = 111
)

// PDNConnectivityRequest asks for a default bearer towards an APN.
type PDNConnectivityRequest struct {
	PTI uint8 // procedure transaction identity
	APN string
}

// PDNConnectivityReject denies the PDN connectivity request.
type PDNConnectivityReject struct {
	PTI   uint8
	Cause uint8
}

// ActivateDefaultBearerRequest activates the default EPS bearer.
type ActivateDefaultBearerRequest struct {
	PTI      uint8
	BearerID uint8
	APN      string
}

// ActivateDefaultBearerAccept acknowledges bearer activation.
type ActivateDefaultBearerAccept struct{ BearerID uint8 }

// ActivateDefaultBearerReject refuses bearer activation.
type ActivateDefaultBearerReject struct {
	BearerID uint8
	Cause    uint8
}

// DeactivateBearerRequest tears a bearer down.
type DeactivateBearerRequest struct {
	BearerID uint8
	Cause    uint8
}

// DeactivateBearerAccept acknowledges bearer deactivation.
type DeactivateBearerAccept struct{ BearerID uint8 }

// ESMInformationRequest asks the UE for protocol options (sent when the
// UE deferred them during attach).
type ESMInformationRequest struct{ PTI uint8 }

// ESMInformationResponse answers an esm_information_request.
type ESMInformationResponse struct {
	PTI uint8
	APN string
}

// Name implementations.
func (*PDNConnectivityRequest) Name() spec.MessageName       { return spec.PDNConnectivityReq }
func (*PDNConnectivityReject) Name() spec.MessageName        { return spec.PDNConnectivityRej }
func (*ActivateDefaultBearerRequest) Name() spec.MessageName { return spec.ActDefaultBearerReq }
func (*ActivateDefaultBearerAccept) Name() spec.MessageName  { return spec.ActDefaultBearerAcc }
func (*ActivateDefaultBearerReject) Name() spec.MessageName  { return spec.ActDefaultBearerRej }
func (*DeactivateBearerRequest) Name() spec.MessageName      { return spec.DeactBearerRequest }
func (*DeactivateBearerAccept) Name() spec.MessageName       { return spec.DeactBearerAccept }
func (*ESMInformationRequest) Name() spec.MessageName        { return spec.ESMInformationReq }
func (*ESMInformationResponse) Name() spec.MessageName       { return spec.ESMInformationRespon }

func (m *PDNConnectivityRequest) encode(buf *bytes.Buffer) {
	buf.WriteByte(m.PTI)
	putString(buf, m.APN)
}

func (m *PDNConnectivityRequest) decode(r *bytes.Reader) error {
	var err error
	if m.PTI, err = getByte(r); err != nil {
		return err
	}
	m.APN, err = getString(r)
	return err
}

func (m *PDNConnectivityReject) encode(buf *bytes.Buffer) {
	buf.WriteByte(m.PTI)
	buf.WriteByte(m.Cause)
}

func (m *PDNConnectivityReject) decode(r *bytes.Reader) error {
	var err error
	if m.PTI, err = getByte(r); err != nil {
		return err
	}
	m.Cause, err = getByte(r)
	return err
}

func (m *ActivateDefaultBearerRequest) encode(buf *bytes.Buffer) {
	buf.WriteByte(m.PTI)
	buf.WriteByte(m.BearerID)
	putString(buf, m.APN)
}

func (m *ActivateDefaultBearerRequest) decode(r *bytes.Reader) error {
	var err error
	if m.PTI, err = getByte(r); err != nil {
		return err
	}
	if m.BearerID, err = getByte(r); err != nil {
		return err
	}
	m.APN, err = getString(r)
	return err
}

func (m *ActivateDefaultBearerAccept) encode(buf *bytes.Buffer) { buf.WriteByte(m.BearerID) }
func (m *ActivateDefaultBearerAccept) decode(r *bytes.Reader) error {
	var err error
	m.BearerID, err = getByte(r)
	return err
}

func (m *ActivateDefaultBearerReject) encode(buf *bytes.Buffer) {
	buf.WriteByte(m.BearerID)
	buf.WriteByte(m.Cause)
}

func (m *ActivateDefaultBearerReject) decode(r *bytes.Reader) error {
	var err error
	if m.BearerID, err = getByte(r); err != nil {
		return err
	}
	m.Cause, err = getByte(r)
	return err
}

func (m *DeactivateBearerRequest) encode(buf *bytes.Buffer) {
	buf.WriteByte(m.BearerID)
	buf.WriteByte(m.Cause)
}

func (m *DeactivateBearerRequest) decode(r *bytes.Reader) error {
	var err error
	if m.BearerID, err = getByte(r); err != nil {
		return err
	}
	m.Cause, err = getByte(r)
	return err
}

func (m *DeactivateBearerAccept) encode(buf *bytes.Buffer) { buf.WriteByte(m.BearerID) }
func (m *DeactivateBearerAccept) decode(r *bytes.Reader) error {
	var err error
	m.BearerID, err = getByte(r)
	return err
}

func (m *ESMInformationRequest) encode(buf *bytes.Buffer) { buf.WriteByte(m.PTI) }
func (m *ESMInformationRequest) decode(r *bytes.Reader) error {
	var err error
	m.PTI, err = getByte(r)
	return err
}

func (m *ESMInformationResponse) encode(buf *bytes.Buffer) {
	buf.WriteByte(m.PTI)
	putString(buf, m.APN)
}

func (m *ESMInformationResponse) decode(r *bytes.Reader) error {
	var err error
	if m.PTI, err = getByte(r); err != nil {
		return err
	}
	m.APN, err = getString(r)
	return err
}
