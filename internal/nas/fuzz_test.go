package nas

import (
	"reflect"
	"testing"

	"prochecker/internal/security"
)

// Native fuzz targets: run continuously with `go test -fuzz=FuzzUnmarshal
// ./internal/nas`; the seed corpus below runs as part of the normal test
// suite.

func FuzzUnmarshal(f *testing.F) {
	for _, m := range allMessages() {
		b, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Unmarshal(b)
		if err != nil {
			return
		}
		// Decoded messages must re-encode and decode to the same value.
		b2, err := Marshal(m)
		if err != nil {
			t.Fatalf("re-marshal of decoded %s failed: %v", m.Name(), err)
		}
		m2, err := Unmarshal(b2)
		if err != nil {
			t.Fatalf("re-decode of %s failed: %v", m.Name(), err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("fixpoint broken: %#v != %#v", m, m2)
		}
	})
}

func FuzzOpenPacket(f *testing.F) {
	k := security.KeyFromBytes([]byte("fuzz"))
	h := security.DeriveHierarchy(k, []byte("r"))
	sender := &Context{Keys: h, Active: true}
	for _, m := range allMessages() {
		p, err := sender.Seal(m, HeaderIntegrityCiphered, DirDownlink)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(MarshalPacket(p))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := UnmarshalPacket(raw)
		if err != nil {
			return
		}
		receiver := &Context{Keys: h, Active: true}
		// Must never panic; any error or inspection outcome is fine.
		_, _, _ = receiver.Open(p, DirDownlink)
		plain := &Context{}
		_, _, _ = plain.Open(Packet{Header: HeaderPlain, Payload: p.Payload}, DirDownlink)
	})
}
