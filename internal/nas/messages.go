// Package nas defines the NAS-layer (EPS Mobility Management) messages
// exchanged between UE and MME, their binary wire encoding, and the
// security-protected packet envelope (security header, NAS sequence
// number, MAC, optional ciphering) of TS 24.301.
//
// The envelope deliberately separates mechanism from policy: Open reports
// *what was observed* (MAC validity, header type, sequence number) and the
// UE/MME implementations decide what to accept. That split is what lets
// the three behaviour profiles reproduce the paper's implementation
// deviations (I1-I6) on top of a single shared codec.
package nas

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"prochecker/internal/security"
	"prochecker/internal/spec"
)

// Message is any NAS EMM message.
type Message interface {
	// Name returns the TS 24.301 message name.
	Name() spec.MessageName
	// encode appends the message body (without the type code) to buf.
	encode(buf *bytes.Buffer)
	// decode parses the message body from r.
	decode(r *bytes.Reader) error
}

// EMM cause codes (TS 24.301 Annex A, abridged).
const (
	CauseIMSIUnknown         uint8 = 2
	CauseIllegalUE           uint8 = 3
	CauseEPSNotAllowed       uint8 = 7
	CausePLMNNotAllowed      uint8 = 11
	CauseTANotAllowed        uint8 = 12
	CauseCongestion          uint8 = 22
	CauseMACFailure          uint8 = 20
	CauseSynchFailure        uint8 = 21
	CauseSecurityModeReject  uint8 = 23
	CauseProtocolUnspecified uint8 = 111
)

// Identity types for identity_request/response.
const (
	IDTypeIMSI uint8 = 1
	IDTypeGUTI uint8 = 2
	IDTypeIMEI uint8 = 3
)

// Detach types.
const (
	DetachEPS      uint8 = 1
	DetachReattach uint8 = 2
)

// AttachRequest initiates registration. GUTI is zero when the UE attaches
// with its IMSI.
type AttachRequest struct {
	IMSI   string
	GUTI   uint32
	UECaps uint8
}

// AttachAccept completes attach from the network side and assigns a GUTI.
type AttachAccept struct {
	GUTI  uint32
	TAC   uint16
	T3412 uint8
}

// AttachComplete acknowledges an attach_accept.
type AttachComplete struct{}

// AttachReject denies registration with an EMM cause.
type AttachReject struct{ Cause uint8 }

// AuthRequest carries the AKA challenge.
type AuthRequest struct {
	RAND [security.RANDSize]byte
	AUTN [security.AUTNSize]byte
	KSI  uint8
}

// AuthResponse carries the AKA response RES.
type AuthResponse struct{ RES [security.RESSize]byte }

// AuthMACFailure reports an AUTN MAC verification failure (EMM cause 20).
type AuthMACFailure struct{}

// AuthSyncFailure reports an SQN out-of-range condition with the AUTS
// resynchronisation token (EMM cause 21).
type AuthSyncFailure struct{ AUTS [security.AUTSSize]byte }

// AuthReject aborts authentication from the network side.
type AuthReject struct{}

// SecurityModeCommand selects NAS security algorithms and replays the UE
// capabilities for bidding-down protection.
type SecurityModeCommand struct {
	IntAlg       uint8
	EncAlg       uint8
	ReplayedCaps uint8
}

// SecurityModeComplete acknowledges a security_mode_command.
type SecurityModeComplete struct{}

// SecurityModeReject refuses a security_mode_command.
type SecurityModeReject struct{ Cause uint8 }

// IdentityRequest asks the UE for an identity of the given type.
type IdentityRequest struct{ IDType uint8 }

// IdentityResponse answers an identity_request.
type IdentityResponse struct {
	IDType uint8
	IMSI   string
	GUTI   uint32
}

// GUTIReallocationCommand assigns a fresh GUTI.
type GUTIReallocationCommand struct{ GUTI uint32 }

// GUTIReallocationComplete acknowledges a GUTI reallocation.
type GUTIReallocationComplete struct{}

// TAURequest starts a tracking-area update.
type TAURequest struct {
	GUTI uint32
	TAC  uint16
}

// TAUAccept completes a tracking-area update; GUTI may be zero when the
// network does not reassign one.
type TAUAccept struct {
	GUTI uint32
	TAC  uint16
}

// TAUComplete acknowledges a tau_accept that assigned a GUTI.
type TAUComplete struct{}

// TAUReject denies a tracking-area update.
type TAUReject struct{ Cause uint8 }

// DetachRequestUE is a UE-originated detach.
type DetachRequestUE struct{ SwitchOff bool }

// DetachRequestNW is a network-originated detach.
type DetachRequestNW struct{ Type uint8 }

// DetachAccept acknowledges a detach.
type DetachAccept struct{}

// ServiceRequest asks for user-plane service while registered.
type ServiceRequest struct{ GUTI uint32 }

// ServiceAccept grants a service request.
type ServiceAccept struct{}

// ServiceReject denies a service request.
type ServiceReject struct{ Cause uint8 }

// PagingRequest pages a UE by GUTI (IDType=IDTypeGUTI) or, abusively, by
// IMSI — the distinction behind the IMSI-paging linkability attack.
type PagingRequest struct {
	IDType uint8
	IMSI   string
	GUTI   uint32
}

// EMMInformation is a network-to-UE informational message.
type EMMInformation struct{}

// Name implementations.
func (*AttachRequest) Name() spec.MessageName            { return spec.AttachRequest }
func (*AttachAccept) Name() spec.MessageName             { return spec.AttachAccept }
func (*AttachComplete) Name() spec.MessageName           { return spec.AttachComplete }
func (*AttachReject) Name() spec.MessageName             { return spec.AttachReject }
func (*AuthRequest) Name() spec.MessageName              { return spec.AuthRequest }
func (*AuthResponse) Name() spec.MessageName             { return spec.AuthResponse }
func (*AuthMACFailure) Name() spec.MessageName           { return spec.AuthMACFailure }
func (*AuthSyncFailure) Name() spec.MessageName          { return spec.AuthSyncFailure }
func (*AuthReject) Name() spec.MessageName               { return spec.AuthReject }
func (*SecurityModeCommand) Name() spec.MessageName      { return spec.SecurityModeCommand }
func (*SecurityModeComplete) Name() spec.MessageName     { return spec.SecurityModeComplet }
func (*SecurityModeReject) Name() spec.MessageName       { return spec.SecurityModeReject }
func (*IdentityRequest) Name() spec.MessageName          { return spec.IdentityRequest }
func (*IdentityResponse) Name() spec.MessageName         { return spec.IdentityResponse }
func (*GUTIReallocationCommand) Name() spec.MessageName  { return spec.GUTIRealloCommand }
func (*GUTIReallocationComplete) Name() spec.MessageName { return spec.GUTIRealloComplete }
func (*TAURequest) Name() spec.MessageName               { return spec.TAURequest }
func (*TAUAccept) Name() spec.MessageName                { return spec.TAUAccept }
func (*TAUComplete) Name() spec.MessageName              { return spec.TAUComplete }
func (*TAUReject) Name() spec.MessageName                { return spec.TAUReject }
func (*DetachRequestUE) Name() spec.MessageName          { return spec.DetachRequestUE }
func (*DetachRequestNW) Name() spec.MessageName          { return spec.DetachRequestNW }
func (*DetachAccept) Name() spec.MessageName             { return spec.DetachAccept }
func (*ServiceRequest) Name() spec.MessageName           { return spec.ServiceRequest }
func (*ServiceAccept) Name() spec.MessageName            { return spec.ServiceAccept }
func (*ServiceReject) Name() spec.MessageName            { return spec.ServiceReject }
func (*PagingRequest) Name() spec.MessageName            { return spec.Paging }
func (*EMMInformation) Name() spec.MessageName           { return spec.EMMInformation }

// typeCode is the on-wire numeric message type.
type typeCode uint8

// registry maps type codes to constructors; codes are stable wire ABI.
var registry = map[typeCode]func() Message{
	1:  func() Message { return &AttachRequest{} },
	2:  func() Message { return &AttachAccept{} },
	3:  func() Message { return &AttachComplete{} },
	4:  func() Message { return &AttachReject{} },
	5:  func() Message { return &AuthRequest{} },
	6:  func() Message { return &AuthResponse{} },
	7:  func() Message { return &AuthMACFailure{} },
	8:  func() Message { return &AuthSyncFailure{} },
	9:  func() Message { return &AuthReject{} },
	10: func() Message { return &SecurityModeCommand{} },
	11: func() Message { return &SecurityModeComplete{} },
	12: func() Message { return &SecurityModeReject{} },
	13: func() Message { return &IdentityRequest{} },
	14: func() Message { return &IdentityResponse{} },
	15: func() Message { return &GUTIReallocationCommand{} },
	16: func() Message { return &GUTIReallocationComplete{} },
	17: func() Message { return &TAURequest{} },
	18: func() Message { return &TAUAccept{} },
	19: func() Message { return &TAUComplete{} },
	20: func() Message { return &TAUReject{} },
	21: func() Message { return &DetachRequestUE{} },
	22: func() Message { return &DetachRequestNW{} },
	23: func() Message { return &DetachAccept{} },
	24: func() Message { return &ServiceRequest{} },
	25: func() Message { return &ServiceAccept{} },
	26: func() Message { return &ServiceReject{} },
	27: func() Message { return &PagingRequest{} },
	28: func() Message { return &EMMInformation{} },
	// ESM (session management) messages continue the range.
	29: func() Message { return &PDNConnectivityRequest{} },
	30: func() Message { return &PDNConnectivityReject{} },
	31: func() Message { return &ActivateDefaultBearerRequest{} },
	32: func() Message { return &ActivateDefaultBearerAccept{} },
	33: func() Message { return &ActivateDefaultBearerReject{} },
	34: func() Message { return &DeactivateBearerRequest{} },
	35: func() Message { return &DeactivateBearerAccept{} },
	36: func() Message { return &ESMInformationRequest{} },
	37: func() Message { return &ESMInformationResponse{} },
}

// codeOf returns the wire type code for a message.
func codeOf(m Message) (typeCode, error) {
	for code, mk := range registry {
		if mk().Name() == m.Name() {
			return code, nil
		}
	}
	return 0, fmt.Errorf("nas: message %q not registered", m.Name())
}

// Encoding helpers.
func putString(buf *bytes.Buffer, s string) {
	if len(s) > 255 {
		s = s[:255]
	}
	buf.WriteByte(uint8(len(s)))
	buf.WriteString(s)
}

func getString(r *bytes.Reader) (string, error) {
	n, err := r.ReadByte()
	if err != nil {
		return "", fmt.Errorf("nas: reading string length: %w", err)
	}
	if n == 0 {
		return "", nil
	}
	b := make([]byte, n)
	// io.ReadFull rejects truncated bodies; a bare Read would silently
	// accept a partial read and NUL-pad the value.
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("nas: reading string body: %w", err)
	}
	return string(b), nil
}

func putU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func getU32(r *bytes.Reader) (uint32, error) {
	var b [4]byte
	if _, err := r.Read(b[:]); err != nil {
		return 0, fmt.Errorf("nas: reading u32: %w", err)
	}
	return binary.BigEndian.Uint32(b[:]), nil
}

func putU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func getU16(r *bytes.Reader) (uint16, error) {
	var b [2]byte
	if _, err := r.Read(b[:]); err != nil {
		return 0, fmt.Errorf("nas: reading u16: %w", err)
	}
	return binary.BigEndian.Uint16(b[:]), nil
}

func getByte(r *bytes.Reader) (uint8, error) {
	b, err := r.ReadByte()
	if err != nil {
		return 0, fmt.Errorf("nas: reading byte: %w", err)
	}
	return b, nil
}

func getBytes(r *bytes.Reader, out []byte) error {
	if len(out) == 0 {
		return nil
	}
	if _, err := io.ReadFull(r, out); err != nil {
		return fmt.Errorf("nas: reading %d bytes: %w", len(out), err)
	}
	return nil
}

// encode/decode implementations.

func (m *AttachRequest) encode(buf *bytes.Buffer) {
	putString(buf, m.IMSI)
	putU32(buf, m.GUTI)
	buf.WriteByte(m.UECaps)
}

func (m *AttachRequest) decode(r *bytes.Reader) error {
	var err error
	if m.IMSI, err = getString(r); err != nil {
		return err
	}
	if m.GUTI, err = getU32(r); err != nil {
		return err
	}
	m.UECaps, err = getByte(r)
	return err
}

func (m *AttachAccept) encode(buf *bytes.Buffer) {
	putU32(buf, m.GUTI)
	putU16(buf, m.TAC)
	buf.WriteByte(m.T3412)
}

func (m *AttachAccept) decode(r *bytes.Reader) error {
	var err error
	if m.GUTI, err = getU32(r); err != nil {
		return err
	}
	if m.TAC, err = getU16(r); err != nil {
		return err
	}
	m.T3412, err = getByte(r)
	return err
}

func (m *AttachComplete) encode(*bytes.Buffer)       {}
func (m *AttachComplete) decode(*bytes.Reader) error { return nil }

func (m *AttachReject) encode(buf *bytes.Buffer) { buf.WriteByte(m.Cause) }
func (m *AttachReject) decode(r *bytes.Reader) error {
	var err error
	m.Cause, err = getByte(r)
	return err
}

func (m *AuthRequest) encode(buf *bytes.Buffer) {
	buf.Write(m.RAND[:])
	buf.Write(m.AUTN[:])
	buf.WriteByte(m.KSI)
}

func (m *AuthRequest) decode(r *bytes.Reader) error {
	if err := getBytes(r, m.RAND[:]); err != nil {
		return err
	}
	if err := getBytes(r, m.AUTN[:]); err != nil {
		return err
	}
	var err error
	m.KSI, err = getByte(r)
	return err
}

func (m *AuthResponse) encode(buf *bytes.Buffer)        { buf.Write(m.RES[:]) }
func (m *AuthResponse) decode(r *bytes.Reader) error    { return getBytes(r, m.RES[:]) }
func (m *AuthMACFailure) encode(*bytes.Buffer)          {}
func (m *AuthMACFailure) decode(*bytes.Reader) error    { return nil }
func (m *AuthSyncFailure) encode(buf *bytes.Buffer)     { buf.Write(m.AUTS[:]) }
func (m *AuthSyncFailure) decode(r *bytes.Reader) error { return getBytes(r, m.AUTS[:]) }
func (m *AuthReject) encode(*bytes.Buffer)              {}
func (m *AuthReject) decode(*bytes.Reader) error        { return nil }

func (m *SecurityModeCommand) encode(buf *bytes.Buffer) {
	buf.WriteByte(m.IntAlg)
	buf.WriteByte(m.EncAlg)
	buf.WriteByte(m.ReplayedCaps)
}

func (m *SecurityModeCommand) decode(r *bytes.Reader) error {
	var err error
	if m.IntAlg, err = getByte(r); err != nil {
		return err
	}
	if m.EncAlg, err = getByte(r); err != nil {
		return err
	}
	m.ReplayedCaps, err = getByte(r)
	return err
}

func (m *SecurityModeComplete) encode(*bytes.Buffer)       {}
func (m *SecurityModeComplete) decode(*bytes.Reader) error { return nil }

func (m *SecurityModeReject) encode(buf *bytes.Buffer) { buf.WriteByte(m.Cause) }
func (m *SecurityModeReject) decode(r *bytes.Reader) error {
	var err error
	m.Cause, err = getByte(r)
	return err
}

func (m *IdentityRequest) encode(buf *bytes.Buffer) { buf.WriteByte(m.IDType) }
func (m *IdentityRequest) decode(r *bytes.Reader) error {
	var err error
	m.IDType, err = getByte(r)
	return err
}

func (m *IdentityResponse) encode(buf *bytes.Buffer) {
	buf.WriteByte(m.IDType)
	putString(buf, m.IMSI)
	putU32(buf, m.GUTI)
}

func (m *IdentityResponse) decode(r *bytes.Reader) error {
	var err error
	if m.IDType, err = getByte(r); err != nil {
		return err
	}
	if m.IMSI, err = getString(r); err != nil {
		return err
	}
	m.GUTI, err = getU32(r)
	return err
}

func (m *GUTIReallocationCommand) encode(buf *bytes.Buffer) { putU32(buf, m.GUTI) }
func (m *GUTIReallocationCommand) decode(r *bytes.Reader) error {
	var err error
	m.GUTI, err = getU32(r)
	return err
}

func (m *GUTIReallocationComplete) encode(*bytes.Buffer)       {}
func (m *GUTIReallocationComplete) decode(*bytes.Reader) error { return nil }

func (m *TAURequest) encode(buf *bytes.Buffer) {
	putU32(buf, m.GUTI)
	putU16(buf, m.TAC)
}

func (m *TAURequest) decode(r *bytes.Reader) error {
	var err error
	if m.GUTI, err = getU32(r); err != nil {
		return err
	}
	m.TAC, err = getU16(r)
	return err
}

func (m *TAUAccept) encode(buf *bytes.Buffer) {
	putU32(buf, m.GUTI)
	putU16(buf, m.TAC)
}

func (m *TAUAccept) decode(r *bytes.Reader) error {
	var err error
	if m.GUTI, err = getU32(r); err != nil {
		return err
	}
	m.TAC, err = getU16(r)
	return err
}

func (m *TAUComplete) encode(*bytes.Buffer)       {}
func (m *TAUComplete) decode(*bytes.Reader) error { return nil }

func (m *TAUReject) encode(buf *bytes.Buffer) { buf.WriteByte(m.Cause) }
func (m *TAUReject) decode(r *bytes.Reader) error {
	var err error
	m.Cause, err = getByte(r)
	return err
}

func (m *DetachRequestUE) encode(buf *bytes.Buffer) {
	if m.SwitchOff {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
}

func (m *DetachRequestUE) decode(r *bytes.Reader) error {
	b, err := getByte(r)
	m.SwitchOff = b == 1
	return err
}

func (m *DetachRequestNW) encode(buf *bytes.Buffer) { buf.WriteByte(m.Type) }
func (m *DetachRequestNW) decode(r *bytes.Reader) error {
	var err error
	m.Type, err = getByte(r)
	return err
}

func (m *DetachAccept) encode(*bytes.Buffer)       {}
func (m *DetachAccept) decode(*bytes.Reader) error { return nil }

func (m *ServiceRequest) encode(buf *bytes.Buffer) { putU32(buf, m.GUTI) }
func (m *ServiceRequest) decode(r *bytes.Reader) error {
	var err error
	m.GUTI, err = getU32(r)
	return err
}

func (m *ServiceAccept) encode(*bytes.Buffer)       {}
func (m *ServiceAccept) decode(*bytes.Reader) error { return nil }

func (m *ServiceReject) encode(buf *bytes.Buffer) { buf.WriteByte(m.Cause) }
func (m *ServiceReject) decode(r *bytes.Reader) error {
	var err error
	m.Cause, err = getByte(r)
	return err
}

func (m *PagingRequest) encode(buf *bytes.Buffer) {
	buf.WriteByte(m.IDType)
	putString(buf, m.IMSI)
	putU32(buf, m.GUTI)
}

func (m *PagingRequest) decode(r *bytes.Reader) error {
	var err error
	if m.IDType, err = getByte(r); err != nil {
		return err
	}
	if m.IMSI, err = getString(r); err != nil {
		return err
	}
	m.GUTI, err = getU32(r)
	return err
}

func (m *EMMInformation) encode(*bytes.Buffer)       {}
func (m *EMMInformation) decode(*bytes.Reader) error { return nil }

// Marshal encodes a message (type code + body).
func Marshal(m Message) ([]byte, error) {
	code, err := codeOf(m)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteByte(uint8(code))
	m.encode(&buf)
	return buf.Bytes(), nil
}

// ErrTruncated indicates a message body shorter than its type requires.
var ErrTruncated = errors.New("nas: truncated message")

// Unmarshal decodes a message (type code + body).
func Unmarshal(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("nas: empty buffer: %w", ErrTruncated)
	}
	mk, ok := registry[typeCode(b[0])]
	if !ok {
		return nil, fmt.Errorf("nas: unknown message type code %d", b[0])
	}
	m := mk()
	r := bytes.NewReader(b[1:])
	if err := m.decode(r); err != nil {
		return nil, fmt.Errorf("nas: decoding %s: %w", m.Name(), errors.Join(err, ErrTruncated))
	}
	return m, nil
}
