package nas

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"prochecker/internal/security"
	"prochecker/internal/spec"
)

func allMessages() []Message {
	return []Message{
		&AttachRequest{IMSI: "001010123456789", GUTI: 0xdeadbeef, UECaps: 0x7},
		&AttachAccept{GUTI: 0x1234, TAC: 42, T3412: 6},
		&AttachComplete{},
		&AttachReject{Cause: CauseIllegalUE},
		&AuthRequest{RAND: [16]byte{1, 2, 3}, AUTN: [16]byte{4, 5, 6}, KSI: 2},
		&AuthResponse{RES: [8]byte{9, 8, 7}},
		&AuthMACFailure{},
		&AuthSyncFailure{AUTS: [14]byte{1, 1, 2, 3}},
		&AuthReject{},
		&SecurityModeCommand{IntAlg: 2, EncAlg: 1, ReplayedCaps: 0x7},
		&SecurityModeComplete{},
		&SecurityModeReject{Cause: CauseSecurityModeReject},
		&IdentityRequest{IDType: IDTypeIMSI},
		&IdentityResponse{IDType: IDTypeIMSI, IMSI: "001010123456789"},
		&GUTIReallocationCommand{GUTI: 0xcafe},
		&GUTIReallocationComplete{},
		&TAURequest{GUTI: 0xcafe, TAC: 7},
		&TAUAccept{GUTI: 0xbeef, TAC: 7},
		&TAUComplete{},
		&TAUReject{Cause: CauseTANotAllowed},
		&DetachRequestUE{SwitchOff: true},
		&DetachRequestNW{Type: DetachReattach},
		&DetachAccept{},
		&ServiceRequest{GUTI: 0xcafe},
		&ServiceAccept{},
		&ServiceReject{Cause: CauseCongestion},
		&PagingRequest{IDType: IDTypeGUTI, GUTI: 0xcafe},
		&EMMInformation{},
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	for _, m := range allMessages() {
		t.Run(string(m.Name()), func(t *testing.T) {
			b, err := Marshal(m)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			got, err := Unmarshal(b)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Errorf("round trip = %#v, want %#v", got, m)
			}
		})
	}
}

func TestRegistryCoversEveryMessageOnce(t *testing.T) {
	seen := make(map[spec.MessageName]bool)
	for _, mk := range registry {
		n := mk().Name()
		if seen[n] {
			t.Errorf("message %q registered twice", n)
		}
		seen[n] = true
	}
	for _, m := range allMessages() {
		if !seen[m.Name()] {
			t.Errorf("message %q not registered", m.Name())
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	tests := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"unknown code", []byte{0xff}},
		{"truncated attach_request", []byte{1, 5, 'a'}},
		{"truncated auth_request", []byte{5, 1, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if m, err := Unmarshal(tt.in); err == nil {
				t.Errorf("Unmarshal(%v) = %v, want error", tt.in, m)
			}
		})
	}
}

func TestLongIMSITruncatedNotPanic(t *testing.T) {
	long := bytes.Repeat([]byte("9"), 300)
	m := &AttachRequest{IMSI: string(long)}
	b, err := Marshal(m)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(got.(*AttachRequest).IMSI) != 255 {
		t.Errorf("IMSI length = %d, want truncation to 255", len(got.(*AttachRequest).IMSI))
	}
}

func TestPacketMarshalRoundTrip(t *testing.T) {
	p := Packet{Header: HeaderIntegrity, Seq: 9, MAC: [4]byte{1, 2, 3, 4}, Payload: []byte{5, 6}}
	got, err := UnmarshalPacket(MarshalPacket(p))
	if err != nil {
		t.Fatalf("UnmarshalPacket: %v", err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("round trip = %+v, want %+v", got, p)
	}
}

func TestPacketUnmarshalTooShort(t *testing.T) {
	if _, err := UnmarshalPacket([]byte{1, 2, 3}); err == nil {
		t.Error("short packet accepted")
	}
}

func TestPacketPropertyRoundTrip(t *testing.T) {
	prop := func(hdr uint8, seq uint8, mac [4]byte, payload []byte) bool {
		p := Packet{Header: SecurityHeader(hdr % 3), Seq: seq, MAC: mac, Payload: payload}
		got, err := UnmarshalPacket(MarshalPacket(p))
		if err != nil {
			return false
		}
		if len(p.Payload) == 0 {
			return len(got.Payload) == 0 && got.Header == p.Header && got.Seq == p.Seq && got.MAC == p.MAC
		}
		return reflect.DeepEqual(got, p)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func testContexts(t *testing.T) (ueCtx, mmeCtx *Context) {
	t.Helper()
	k := security.KeyFromBytes([]byte("subscriber"))
	h := security.DeriveHierarchy(k, []byte("rand"))
	return &Context{Keys: h, Active: true}, &Context{Keys: h, Active: true}
}

func TestSealOpenIntegrity(t *testing.T) {
	ueCtx, mmeCtx := testContexts(t)
	msg := &GUTIReallocationCommand{GUTI: 0x42}
	p, err := mmeCtx.Seal(msg, HeaderIntegrity, DirDownlink)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	got, insp, err := ueCtx.Open(p, DirDownlink)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !insp.MACValid || !insp.CountFresh || !insp.WellFormed {
		t.Errorf("inspection = %+v, want all valid", insp)
	}
	if !reflect.DeepEqual(got, msg) {
		t.Errorf("message = %#v, want %#v", got, msg)
	}
}

func TestSealOpenCiphered(t *testing.T) {
	ueCtx, mmeCtx := testContexts(t)
	msg := &IdentityResponse{IDType: IDTypeIMSI, IMSI: "001019999999999"}
	p, err := ueCtx.Seal(msg, HeaderIntegrityCiphered, DirUplink)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	// Ciphered payload must not leak the IMSI.
	if bytes.Contains(p.Payload, []byte("001019999999999")) {
		t.Error("IMSI visible in ciphered payload")
	}
	got, insp, err := mmeCtx.Open(p, DirUplink)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !insp.MACValid {
		t.Error("MAC invalid on genuine ciphered packet")
	}
	if !reflect.DeepEqual(got, msg) {
		t.Errorf("message = %#v, want %#v", got, msg)
	}
}

func TestOpenDetectsTampering(t *testing.T) {
	ueCtx, mmeCtx := testContexts(t)
	p, err := mmeCtx.Seal(&AttachAccept{GUTI: 7}, HeaderIntegrity, DirDownlink)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	p.Payload[len(p.Payload)-1] ^= 0x1
	_, insp, err := ueCtx.Open(p, DirDownlink)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if insp.MACValid {
		t.Error("tampered packet has valid MAC")
	}
}

func TestReplayDetectedByCountFresh(t *testing.T) {
	ueCtx, mmeCtx := testContexts(t)
	p1, err := mmeCtx.Seal(&EMMInformation{}, HeaderIntegrity, DirDownlink)
	if err != nil {
		t.Fatalf("Seal 1: %v", err)
	}
	_, insp1, err := ueCtx.Open(p1, DirDownlink)
	if err != nil {
		t.Fatalf("Open 1: %v", err)
	}
	ueCtx.Accept(insp1, DirDownlink)

	p2, err := mmeCtx.Seal(&EMMInformation{}, HeaderIntegrity, DirDownlink)
	if err != nil {
		t.Fatalf("Seal 2: %v", err)
	}
	_, insp2, err := ueCtx.Open(p2, DirDownlink)
	if err != nil {
		t.Fatalf("Open 2: %v", err)
	}
	ueCtx.Accept(insp2, DirDownlink)

	// Replay of p1: MAC still verifies (it is a genuine packet) but the
	// count is stale — exactly the condition a conformant UE must reject
	// and srsUE (I1) does not.
	_, inspReplay, err := ueCtx.Open(p1, DirDownlink)
	if err != nil {
		t.Fatalf("Open replay: %v", err)
	}
	if !inspReplay.MACValid {
		t.Error("replayed genuine packet should still MAC-verify")
	}
	if inspReplay.CountFresh {
		t.Error("replayed packet reported as count-fresh")
	}
}

func TestResetReceiveCountModelsCounterReset(t *testing.T) {
	ueCtx, mmeCtx := testContexts(t)
	p1, _ := mmeCtx.Seal(&EMMInformation{}, HeaderIntegrity, DirDownlink)
	_, insp1, err := ueCtx.Open(p1, DirDownlink)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ueCtx.Accept(insp1, DirDownlink)
	if ueCtx.DLCount != 1 {
		t.Fatalf("DLCount = %d, want 1", ueCtx.DLCount)
	}
	// srsUE behaviour (I1): reset the downlink counter to the replayed
	// packet's value.
	ueCtx.ResetReceiveCount(insp1, DirDownlink)
	if ueCtx.DLCount != 0 {
		t.Errorf("DLCount after reset = %d, want 0", ueCtx.DLCount)
	}
}

func TestSealPlainNeedsNoContext(t *testing.T) {
	c := &Context{}
	p, err := c.Seal(&AttachRequest{IMSI: "1"}, HeaderPlain, DirUplink)
	if err != nil {
		t.Fatalf("Seal plain: %v", err)
	}
	if p.Header != HeaderPlain {
		t.Errorf("header = %v, want plain", p.Header)
	}
	msg, insp, err := (&Context{}).Open(p, DirUplink)
	if err != nil {
		t.Fatalf("Open plain: %v", err)
	}
	if !insp.PlainHeader || insp.MACValid {
		t.Errorf("inspection = %+v, want plain header without MAC validity", insp)
	}
	if msg.Name() != spec.AttachRequest {
		t.Errorf("message = %s, want attach_request", msg.Name())
	}
}

func TestSealProtectedWithoutContextFails(t *testing.T) {
	c := &Context{}
	if _, err := c.Seal(&EMMInformation{}, HeaderIntegrity, DirDownlink); err == nil {
		t.Error("protected seal without context succeeded")
	}
}

func TestOpenProtectedWithoutContextFails(t *testing.T) {
	_, mmeCtx := testContexts(t)
	p, err := mmeCtx.Seal(&EMMInformation{}, HeaderIntegrity, DirDownlink)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, _, err := (&Context{}).Open(p, DirDownlink); err == nil {
		t.Error("protected open without context succeeded")
	}
}

func TestSecurityHeaderString(t *testing.T) {
	tests := []struct {
		h    SecurityHeader
		want string
	}{
		{HeaderPlain, "plain-NAS(0x0)"},
		{HeaderIntegrity, "integrity-protected(0x1)"},
		{HeaderIntegrityCiphered, "integrity-protected-and-ciphered(0x2)"},
		{SecurityHeader(9), "unknown-header(0x9)"},
	}
	for _, tt := range tests {
		if got := tt.h.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", tt.h, got, tt.want)
		}
	}
}

func TestCountJumpStillFresh(t *testing.T) {
	// P3 precondition: the receiver accepts arbitrarily large forward
	// jumps in COUNT — it only requires "greater", never "consecutive".
	ueCtx, mmeCtx := testContexts(t)
	for i := 0; i < 5; i++ {
		if _, err := mmeCtx.Seal(&EMMInformation{}, HeaderIntegrity, DirDownlink); err != nil {
			t.Fatalf("Seal %d: %v", i, err)
		}
	}
	p, err := mmeCtx.Seal(&GUTIReallocationCommand{GUTI: 1}, HeaderIntegrity, DirDownlink)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	// The UE saw none of the five dropped packets; count jumps 0 -> 5.
	_, insp, err := ueCtx.Open(p, DirDownlink)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !insp.MACValid || !insp.CountFresh {
		t.Errorf("jumped-count packet: inspection = %+v, want valid and fresh", insp)
	}
}
