package nas

import (
	"bytes"
	"fmt"

	"prochecker/internal/security"
)

// SecurityHeader is the NAS security header type (TS 24.301 9.3.1).
type SecurityHeader uint8

// Security header types. HeaderPlain (0x0) after security-context
// establishment is exactly the condition behind implementation issue I2.
const (
	HeaderPlain             SecurityHeader = 0x0
	HeaderIntegrity         SecurityHeader = 0x1
	HeaderIntegrityCiphered SecurityHeader = 0x2
)

// String implements fmt.Stringer.
func (h SecurityHeader) String() string {
	switch h {
	case HeaderPlain:
		return "plain-NAS(0x0)"
	case HeaderIntegrity:
		return "integrity-protected(0x1)"
	case HeaderIntegrityCiphered:
		return "integrity-protected-and-ciphered(0x2)"
	default:
		return fmt.Sprintf("unknown-header(%#x)", uint8(h))
	}
}

// Direction of a NAS packet for COUNT binding.
const (
	DirUplink   uint8 = 0
	DirDownlink uint8 = 1
)

// Packet is the on-air NAS PDU: security header, 8-bit NAS sequence
// number, 32-bit MAC, and the (possibly ciphered) encoded message.
type Packet struct {
	Header  SecurityHeader
	Seq     uint8
	MAC     [security.MACSize]byte
	Payload []byte
}

// MarshalPacket serialises a packet for the radio channel.
func MarshalPacket(p Packet) []byte {
	var buf bytes.Buffer
	buf.WriteByte(uint8(p.Header))
	buf.WriteByte(p.Seq)
	buf.Write(p.MAC[:])
	buf.Write(p.Payload)
	return buf.Bytes()
}

// UnmarshalPacket parses a serialised packet.
func UnmarshalPacket(b []byte) (Packet, error) {
	const hdrLen = 2 + security.MACSize
	if len(b) < hdrLen {
		return Packet{}, fmt.Errorf("nas: packet of %d bytes shorter than header: %w", len(b), ErrTruncated)
	}
	var p Packet
	p.Header = SecurityHeader(b[0])
	p.Seq = b[1]
	copy(p.MAC[:], b[2:2+security.MACSize])
	p.Payload = append([]byte(nil), b[hdrLen:]...)
	return p, nil
}

// Context is a NAS security context: the derived key hierarchy plus the
// uplink and downlink NAS COUNTs.
type Context struct {
	Keys    security.Hierarchy
	ULCount uint32
	DLCount uint32
	Active  bool
	IntAlg  uint8
	EncAlg  uint8
}

// count returns the full NAS COUNT to use for a given direction, with the
// low 8 bits replaced by the on-wire sequence number.
func (c *Context) count(dir uint8, seq uint8) uint32 {
	base := c.ULCount
	if dir == DirDownlink {
		base = c.DLCount
	}
	return base&^0xff | uint32(seq)
}

// Seal protects msg for transmission in the given direction using the
// context's current COUNT, then increments that COUNT. For HeaderPlain the
// message is sent unprotected and COUNT is untouched.
func (c *Context) Seal(msg Message, header SecurityHeader, dir uint8) (Packet, error) {
	body, err := Marshal(msg)
	if err != nil {
		return Packet{}, fmt.Errorf("nas: sealing %s: %w", msg.Name(), err)
	}
	if header == HeaderPlain {
		return Packet{Header: HeaderPlain, Payload: body}, nil
	}
	if !c.Active {
		return Packet{}, fmt.Errorf("nas: sealing %s with header %s: no active security context", msg.Name(), header)
	}
	count := c.ULCount
	if dir == DirDownlink {
		count = c.DLCount
	}
	payload := body
	if header == HeaderIntegrityCiphered {
		payload, err = security.Encrypt(c.Keys.KNASenc, count, dir, body)
		if err != nil {
			return Packet{}, fmt.Errorf("nas: ciphering %s: %w", msg.Name(), err)
		}
	}
	p := Packet{
		Header:  header,
		Seq:     uint8(count & 0xff),
		Payload: payload,
	}
	p.MAC = security.NASMAC(c.Keys.KNASint, count, dir, payload)
	if dir == DirDownlink {
		c.DLCount++
	} else {
		c.ULCount++
	}
	return p, nil
}

// Inspection reports everything Open observed about a received packet.
// Policy decisions — whether to accept a plain packet after context
// establishment, whether to require a fresh COUNT — are left to the
// caller, so that implementation profiles can deviate exactly as the
// evaluated stacks do.
type Inspection struct {
	// Header is the received security header type.
	Header SecurityHeader
	// PlainHeader is true for HeaderPlain (0x0) packets.
	PlainHeader bool
	// MACValid is true when the integrity check passed under the received
	// sequence number.
	MACValid bool
	// CountFresh is true when the received sequence implies a COUNT
	// strictly greater than the last accepted receive COUNT.
	CountFresh bool
	// Count is the full receive COUNT reconstructed from the sequence
	// number.
	Count uint32
	// WellFormed is true when the payload decoded into a known message.
	WellFormed bool
}

// Open decodes a received packet arriving from direction dir (the
// *sender's* direction: DirDownlink for packets a UE receives). It
// verifies integrity and deciphers as the header dictates but does not
// enforce acceptance policy; it reports observations in Inspection.
//
// Open never advances the receive COUNT — the caller commits the count via
// Accept once its policy admits the packet.
func (c *Context) Open(p Packet, dir uint8) (Message, Inspection, error) {
	insp := Inspection{Header: p.Header, PlainHeader: p.Header == HeaderPlain}
	if p.Header == HeaderPlain {
		msg, err := Unmarshal(p.Payload)
		if err != nil {
			return nil, insp, fmt.Errorf("nas: opening plain packet: %w", err)
		}
		insp.WellFormed = true
		return msg, insp, nil
	}
	if !c.Active {
		// Protected packet without a context: cannot verify or decipher.
		return nil, insp, fmt.Errorf("nas: protected packet received without active security context")
	}
	count := c.count(dir, p.Seq)
	insp.Count = count
	last := c.ULCount
	if dir == DirDownlink {
		last = c.DLCount
	}
	insp.CountFresh = count >= last
	insp.MACValid = security.VerifyNASMAC(c.Keys.KNASint, count, dir, p.Payload, p.MAC)
	body := p.Payload
	if p.Header == HeaderIntegrityCiphered {
		var err error
		body, err = security.Decrypt(c.Keys.KNASenc, count, dir, p.Payload)
		if err != nil {
			return nil, insp, fmt.Errorf("nas: deciphering packet: %w", err)
		}
	}
	msg, err := Unmarshal(body)
	if err != nil {
		return nil, insp, fmt.Errorf("nas: opening protected packet: %w", err)
	}
	insp.WellFormed = true
	return msg, insp, nil
}

// Accept commits a received packet's COUNT as consumed, advancing the
// receive COUNT for direction dir to one past it. A conformant receiver
// calls Accept only for packets whose Inspection it admitted.
func (c *Context) Accept(insp Inspection, dir uint8) {
	if insp.PlainHeader {
		return
	}
	next := insp.Count + 1
	if dir == DirDownlink {
		c.DLCount = next
	} else {
		c.ULCount = next
	}
}

// ResetReceiveCount forcibly rewinds the receive COUNT for dir to the
// given packet's count. No conformant stack does this; it models the
// srsUE counter-reset behaviour behind implementation issues I1/I3.
func (c *Context) ResetReceiveCount(insp Inspection, dir uint8) {
	if dir == DirDownlink {
		c.DLCount = insp.Count
	} else {
		c.ULCount = insp.Count
	}
}
