// Package usim simulates the USIM application: it stores the subscriber
// identity and permanent key, verifies AKA challenges (AUTN MAC and the
// Annex C SQN scheme), computes RES, and generates resynchronisation
// tokens. Its SQN handling is the component whose acceptance of
// out-of-order sequence numbers enables attacks P1 and P2.
package usim

import (
	"errors"
	"fmt"

	"prochecker/internal/security"
	"prochecker/internal/sqn"
)

// USIM is a simulated SIM application. Create it with New.
type USIM struct {
	imsi     string
	k        security.Key
	verifier *sqn.Verifier
}

// New builds a USIM for the given IMSI and permanent key, using cfg for
// the Annex C SQN scheme.
func New(imsi string, k security.Key, cfg sqn.Config) (*USIM, error) {
	if imsi == "" {
		return nil, errors.New("usim: empty IMSI")
	}
	v, err := sqn.NewVerifier(cfg)
	if err != nil {
		return nil, fmt.Errorf("usim: building SQN verifier: %w", err)
	}
	return &USIM{imsi: imsi, k: k, verifier: v}, nil
}

// IMSI returns the stored subscriber identity.
func (u *USIM) IMSI() string { return u.imsi }

// ChallengeOutcome classifies the USIM's verdict on an AKA challenge.
type ChallengeOutcome uint8

// Challenge outcomes, in increasing severity of failure.
const (
	// ChallengeOK: MAC verified and SQN accepted; RES and keys follow.
	ChallengeOK ChallengeOutcome = iota + 1
	// ChallengeMACFailure: AUTN MAC did not verify — answer
	// auth_mac_failure (EMM cause 20).
	ChallengeMACFailure
	// ChallengeSyncFailure: MAC verified but SQN out of range — answer
	// auth_sync_failure with AUTS (EMM cause 21).
	ChallengeSyncFailure
)

// ChallengeResult is the USIM's full response to an AKA challenge.
type ChallengeResult struct {
	Outcome ChallengeOutcome
	// RES is valid only for ChallengeOK.
	RES [security.RESSize]byte
	// Keys is the derived NAS key hierarchy, valid only for ChallengeOK.
	Keys security.Hierarchy
	// AUTS is valid only for ChallengeSyncFailure.
	AUTS [security.AUTSSize]byte
	// SQN is the sequence number recovered from AUTN (valid unless the
	// MAC failed).
	SQN uint64
}

// Challenge processes an authentication challenge (RAND, AUTN) exactly as
// TS 33.102 prescribes: verify MAC-A first, then check SQN against the
// slot array; on acceptance derive the key hierarchy.
func (u *USIM) Challenge(rand [security.RANDSize]byte, autn [security.AUTNSize]byte) ChallengeResult {
	seq, err := security.OpenAUTN(u.k, rand, autn)
	if err != nil {
		return ChallengeResult{Outcome: ChallengeMACFailure}
	}
	res := ChallengeResult{SQN: seq}
	if err := u.verifier.Verify(seq); err != nil {
		res.Outcome = ChallengeSyncFailure
		res.AUTS = security.GenerateAUTS(u.k, rand, u.verifier.HighestAccepted())
		return res
	}
	res.Outcome = ChallengeOK
	res.RES = security.F2(u.k, rand[:])
	res.Keys = security.DeriveHierarchy(u.k, rand[:])
	return res
}

// ChallengeIgnoringSQN verifies only the AUTN MAC and, when it passes,
// returns RES and keys regardless of the SQN verdict, without recording
// the SQN. No conformant stack behaves this way: it models srsUE's I3
// behaviour of accepting a replayed authentication_request with an
// already-used sequence number (and subsequently resetting its counters).
func (u *USIM) ChallengeIgnoringSQN(rand [security.RANDSize]byte, autn [security.AUTNSize]byte) ChallengeResult {
	seq, err := security.OpenAUTN(u.k, rand, autn)
	if err != nil {
		return ChallengeResult{Outcome: ChallengeMACFailure}
	}
	return ChallengeResult{
		Outcome: ChallengeOK,
		SQN:     seq,
		RES:     security.F2(u.k, rand[:]),
		Keys:    security.DeriveHierarchy(u.k, rand[:]),
	}
}

// WouldAcceptSQN reports whether the USIM's SQN array would currently
// accept the given sequence number, without mutating state. Used by the
// P1/P2 analyses to probe staleness windows.
func (u *USIM) WouldAcceptSQN(seq uint64) bool {
	return u.verifier.WouldAccept(seq)
}

// HighestAcceptedSQN exposes SQN_MS for diagnostics.
func (u *USIM) HighestAcceptedSQN() uint64 {
	return u.verifier.HighestAccepted()
}
