package usim

import (
	"testing"

	"prochecker/internal/security"
	"prochecker/internal/sqn"
)

const testIMSI = "001010123456789"

func newUSIM(t *testing.T) (*USIM, security.Key, *sqn.Generator) {
	t.Helper()
	k := security.KeyFromBytes([]byte("subscriber-key"))
	u, err := New(testIMSI, k, sqn.DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	g, err := sqn.NewGenerator(sqn.DefaultConfig())
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return u, k, g
}

func challenge(k security.Key, seq uint64) ([security.RANDSize]byte, [security.AUTNSize]byte) {
	var rand [security.RANDSize]byte
	rand[0] = byte(seq)
	rand[1] = byte(seq >> 8)
	v := security.GenerateVector(k, rand, seq)
	return v.RAND, v.AUTN
}

func TestNewValidation(t *testing.T) {
	k := security.KeyFromBytes([]byte("k"))
	if _, err := New("", k, sqn.DefaultConfig()); err == nil {
		t.Error("empty IMSI accepted")
	}
	if _, err := New("imsi", k, sqn.Config{INDBits: 0}); err == nil {
		t.Error("bad SQN config accepted")
	}
}

func TestChallengeSuccess(t *testing.T) {
	u, k, g := newUSIM(t)
	seq := g.Next()
	rand, autn := challenge(k, seq)
	res := u.Challenge(rand, autn)
	if res.Outcome != ChallengeOK {
		t.Fatalf("outcome = %v, want ChallengeOK", res.Outcome)
	}
	if res.SQN != seq {
		t.Errorf("SQN = %d, want %d", res.SQN, seq)
	}
	if res.RES != security.F2(k, rand[:]) {
		t.Error("RES mismatch")
	}
	if res.Keys != security.DeriveHierarchy(k, rand[:]) {
		t.Error("key hierarchy mismatch")
	}
	if u.IMSI() != testIMSI {
		t.Errorf("IMSI = %q", u.IMSI())
	}
}

func TestChallengeMACFailure(t *testing.T) {
	u, k, g := newUSIM(t)
	rand, autn := challenge(k, g.Next())
	autn[15] ^= 0xff
	res := u.Challenge(rand, autn)
	if res.Outcome != ChallengeMACFailure {
		t.Errorf("outcome = %v, want ChallengeMACFailure", res.Outcome)
	}
}

func TestChallengeWrongKeyIsMACFailure(t *testing.T) {
	u, _, g := newUSIM(t)
	otherK := security.KeyFromBytes([]byte("different-operator"))
	rand, autn := challenge(otherK, g.Next())
	if res := u.Challenge(rand, autn); res.Outcome != ChallengeMACFailure {
		t.Errorf("outcome = %v, want ChallengeMACFailure", res.Outcome)
	}
}

func TestChallengeSyncFailureOnExactReplay(t *testing.T) {
	u, k, g := newUSIM(t)
	seq := g.Next()
	rand, autn := challenge(k, seq)
	if res := u.Challenge(rand, autn); res.Outcome != ChallengeOK {
		t.Fatalf("first challenge: %v", res.Outcome)
	}
	res := u.Challenge(rand, autn)
	if res.Outcome != ChallengeSyncFailure {
		t.Fatalf("replayed challenge outcome = %v, want ChallengeSyncFailure", res.Outcome)
	}
	// AUTS must verify and carry SQN_MS (the highest accepted).
	sqnMS, err := security.OpenAUTS(k, rand, res.AUTS)
	if err != nil {
		t.Fatalf("OpenAUTS: %v", err)
	}
	if sqnMS != u.HighestAcceptedSQN() {
		t.Errorf("AUTS SQN_MS = %d, want %d", sqnMS, u.HighestAcceptedSQN())
	}
}

// TestStaleChallengeAccepted reproduces the P1 core at USIM level: a
// captured-and-dropped challenge remains acceptable after a newer one was
// accepted, because its IND slot is untouched.
func TestStaleChallengeAccepted(t *testing.T) {
	u, k, g := newUSIM(t)
	staleSeq := g.Next()
	staleRand, staleAUTN := challenge(k, staleSeq)
	freshSeq := g.Next()
	freshRand, freshAUTN := challenge(k, freshSeq)

	if res := u.Challenge(freshRand, freshAUTN); res.Outcome != ChallengeOK {
		t.Fatalf("fresh challenge: %v", res.Outcome)
	}
	if !u.WouldAcceptSQN(staleSeq) {
		t.Fatal("WouldAcceptSQN(stale) = false; P1 precondition broken")
	}
	res := u.Challenge(staleRand, staleAUTN)
	if res.Outcome != ChallengeOK {
		t.Errorf("stale challenge outcome = %v, want ChallengeOK (the P1 vulnerability)", res.Outcome)
	}
	if res.SQN >= freshSeq {
		t.Error("test setup wrong: stale SQN should be lower than fresh")
	}
}

// TestStaleChallengeKeyDesync shows the P1 consequence: accepting the
// stale challenge re-derives a different key hierarchy, desynchronising
// UE and network.
func TestStaleChallengeKeyDesync(t *testing.T) {
	u, k, g := newUSIM(t)
	staleRand, staleAUTN := challenge(k, g.Next())
	freshRand, freshAUTN := challenge(k, g.Next())

	fresh := u.Challenge(freshRand, freshAUTN)
	if fresh.Outcome != ChallengeOK {
		t.Fatalf("fresh: %v", fresh.Outcome)
	}
	stale := u.Challenge(staleRand, staleAUTN)
	if stale.Outcome != ChallengeOK {
		t.Fatalf("stale: %v", stale.Outcome)
	}
	if stale.Keys == fresh.Keys {
		t.Error("stale challenge produced identical keys; no desync would occur")
	}
}

func TestFreshnessLimitPreventsStaleAcceptance(t *testing.T) {
	k := security.KeyFromBytes([]byte("subscriber-key"))
	u, err := New(testIMSI, k, sqn.Config{INDBits: sqn.DefaultINDBits, FreshnessLimit: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	g, err := sqn.NewGenerator(sqn.DefaultConfig())
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	staleRand, staleAUTN := challenge(k, g.Next())
	_ = g.Next()
	_ = g.Next()
	freshRand, freshAUTN := challenge(k, g.Next())
	if res := u.Challenge(freshRand, freshAUTN); res.Outcome != ChallengeOK {
		t.Fatalf("fresh: %v", res.Outcome)
	}
	if res := u.Challenge(staleRand, staleAUTN); res.Outcome != ChallengeSyncFailure {
		t.Errorf("with L=1, stale challenge outcome = %v, want ChallengeSyncFailure", res.Outcome)
	}
}
