package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestClassifySentinels(t *testing.T) {
	cases := []struct {
		err  error
		want Kind
	}{
		{nil, KindNone},
		{ErrCancelled, KindCancelled},
		{fmt.Errorf("wrapped: %w", ErrCancelled), KindCancelled},
		{context.Canceled, KindCancelled},
		{context.DeadlineExceeded, KindCancelled},
		{ErrFaultInjected, KindFaultInjected},
		{ErrBudgetExhausted, KindBudgetExhausted},
		{fmt.Errorf("case x: %w: boom", ErrCasePanic), KindCasePanic},
		{errors.New("plain failure"), KindInternal},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %s, want %s", tc.err, got, tc.want)
		}
	}
}

func TestClassifyAggregateWorst(t *testing.T) {
	agg := ErrorList{
		fmt.Errorf("a: %w", ErrCancelled),
		fmt.Errorf("b: %w", ErrFaultInjected),
	}
	if got := Classify(agg); got != KindFaultInjected {
		t.Errorf("Classify(cancelled+fault) = %s, want %s", got, KindFaultInjected)
	}
	withInternal := ErrorList{agg, errors.New("broken")}
	if got := Classify(withInternal); got != KindInternal {
		t.Errorf("Classify(nested with internal) = %s, want %s", got, KindInternal)
	}
}

func TestErrorListIsTransparent(t *testing.T) {
	var c Collector
	c.Add(nil)
	c.Add(fmt.Errorf("p1: %w", ErrCancelled))
	c.Add(fmt.Errorf("p2: %w", ErrBudgetExhausted))
	err := c.Err()
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("errors.Is does not see through ErrorList: %v", err)
	}
	if errors.Is(err, ErrCasePanic) {
		t.Error("errors.Is matched an absent sentinel")
	}
}

func TestCollectorSingleAndEmpty(t *testing.T) {
	var empty Collector
	if empty.Err() != nil {
		t.Errorf("empty collector Err = %v, want nil", empty.Err())
	}
	var one Collector
	sentinel := errors.New("only")
	one.Add(sentinel)
	if one.Err() != sentinel {
		t.Errorf("single-error collector should return the error unwrapped, got %v", one.Err())
	}
}

func TestExitCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{fmt.Errorf("x: %w", ErrCancelled), ExitCancelled},
		{fmt.Errorf("x: %w", ErrFaultInjected), ExitFaultInjected},
		{fmt.Errorf("x: %w", ErrBudgetExhausted), ExitBudgetExhausted},
		{fmt.Errorf("x: %w", ErrCasePanic), ExitCasePanic},
		{errors.New("plain"), ExitInternal},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("ExitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestCancelledHelper(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if !Cancelled(fmt.Errorf("run: %w", ctx.Err())) {
		t.Error("context.Canceled not recognised as cancellation")
	}
	if Cancelled(errors.New("other")) {
		t.Error("plain error recognised as cancellation")
	}
}
