package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestClassifySentinels(t *testing.T) {
	cases := []struct {
		err  error
		want Kind
	}{
		{nil, KindNone},
		{ErrCancelled, KindCancelled},
		{fmt.Errorf("wrapped: %w", ErrCancelled), KindCancelled},
		{context.Canceled, KindCancelled},
		{context.DeadlineExceeded, KindCancelled},
		{ErrFaultInjected, KindFaultInjected},
		{ErrBudgetExhausted, KindBudgetExhausted},
		{fmt.Errorf("case x: %w: boom", ErrCasePanic), KindCasePanic},
		{ErrModelLint, KindModelLint},
		{fmt.Errorf("gate: %w", ErrModelLint), KindModelLint},
		{errors.New("plain failure"), KindInternal},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %s, want %s", tc.err, got, tc.want)
		}
	}
}

func TestClassifyAggregateWorst(t *testing.T) {
	agg := ErrorList{
		fmt.Errorf("a: %w", ErrCancelled),
		fmt.Errorf("b: %w", ErrFaultInjected),
	}
	if got := Classify(agg); got != KindFaultInjected {
		t.Errorf("Classify(cancelled+fault) = %s, want %s", got, KindFaultInjected)
	}
	withInternal := ErrorList{agg, errors.New("broken")}
	if got := Classify(withInternal); got != KindInternal {
		t.Errorf("Classify(nested with internal) = %s, want %s", got, KindInternal)
	}
}

func TestErrorListIsTransparent(t *testing.T) {
	var c Collector
	c.Add(nil)
	c.Add(fmt.Errorf("p1: %w", ErrCancelled))
	c.Add(fmt.Errorf("p2: %w", ErrBudgetExhausted))
	err := c.Err()
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("errors.Is does not see through ErrorList: %v", err)
	}
	if errors.Is(err, ErrCasePanic) {
		t.Error("errors.Is matched an absent sentinel")
	}
}

func TestCollectorSingleAndEmpty(t *testing.T) {
	var empty Collector
	if empty.Err() != nil {
		t.Errorf("empty collector Err = %v, want nil", empty.Err())
	}
	var one Collector
	sentinel := errors.New("only")
	one.Add(sentinel)
	if one.Err() != sentinel {
		t.Errorf("single-error collector should return the error unwrapped, got %v", one.Err())
	}
}

func TestExitCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{fmt.Errorf("x: %w", ErrCancelled), ExitCancelled},
		{fmt.Errorf("x: %w", ErrFaultInjected), ExitFaultInjected},
		{fmt.Errorf("x: %w", ErrBudgetExhausted), ExitBudgetExhausted},
		{fmt.Errorf("x: %w", ErrCasePanic), ExitCasePanic},
		{fmt.Errorf("x: %w", ErrModelLint), ExitModelLint},
		{errors.New("plain"), ExitInternal},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("ExitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestClassifyWrappedMultiErrorChains pins the aggregate semantics the
// CLI's manifest and exit code rely on: a degraded catalogue run whose
// ErrorList mixes cancellation with a budget trip must classify (and
// exit) as the more severe budget exhaustion, however deeply each
// member is wrapped.
func TestClassifyWrappedMultiErrorChains(t *testing.T) {
	cancelled := fmt.Errorf("prochecker: catalogue stopped: %w",
		fmt.Errorf("report: %w", ErrCancelled))
	budget := fmt.Errorf("prochecker: verifying S40: %w",
		fmt.Errorf("cegar: %w", fmt.Errorf("mc: %w", ErrBudgetExhausted)))

	cases := []struct {
		name     string
		err      error
		want     Kind
		wantExit int
	}{
		{"list cancelled+budget", ErrorList{cancelled, budget}, KindBudgetExhausted, ExitBudgetExhausted},
		{"list budget+cancelled (order-insensitive)", ErrorList{budget, cancelled}, KindBudgetExhausted, ExitBudgetExhausted},
		{"joined cancelled+budget", errors.Join(cancelled, budget), KindBudgetExhausted, ExitBudgetExhausted},
		{"wrapped list", fmt.Errorf("partial catalogue: %w", ErrorList{cancelled, budget}), KindBudgetExhausted, ExitBudgetExhausted},
		{"nested list in list", ErrorList{ErrorList{cancelled}, ErrorList{budget}}, KindBudgetExhausted, ExitBudgetExhausted},
		{"cancelled+panic", ErrorList{cancelled, fmt.Errorf("case: %w", ErrCasePanic)}, KindCasePanic, ExitCasePanic},
		{"panic+lint (lint is worse)", ErrorList{fmt.Errorf("case: %w", ErrCasePanic), fmt.Errorf("gate: %w", ErrModelLint)}, KindModelLint, ExitModelLint},
		{"cancelled only", ErrorList{cancelled, fmt.Errorf("also: %w", context.DeadlineExceeded)}, KindCancelled, ExitCancelled},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %s, want %s", tc.name, got, tc.want)
		}
		if got := ExitCode(tc.err); got != tc.wantExit {
			t.Errorf("%s: ExitCode = %d, want %d", tc.name, got, tc.wantExit)
		}
	}
}

// TestCollectorAggregatesWrappedChains drives the same mix through the
// Collector, the way CheckAllContext actually builds its error.
func TestCollectorAggregatesWrappedChains(t *testing.T) {
	var c Collector
	c.Add(fmt.Errorf("S06: %w", fmt.Errorf("deadline: %w", ErrCancelled)))
	c.Add(fmt.Errorf("S40: %w", fmt.Errorf("bound: %w", ErrBudgetExhausted)))
	err := c.Err()
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("aggregate lost a member: %v", err)
	}
	if got := Classify(err); got != KindBudgetExhausted {
		t.Errorf("Classify = %s, want %s", got, KindBudgetExhausted)
	}
	if got := ExitCode(err); got != ExitBudgetExhausted {
		t.Errorf("ExitCode = %d, want %d", got, ExitBudgetExhausted)
	}
	if got := Classify(fmt.Errorf("outer: %w", err)); got != KindBudgetExhausted {
		t.Errorf("Classify(wrapped aggregate) = %s, want %s", got, KindBudgetExhausted)
	}
}

func TestCancelledHelper(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if !Cancelled(fmt.Errorf("run: %w", ctx.Err())) {
		t.Error("context.Canceled not recognised as cancellation")
	}
	if Cancelled(errors.New("other")) {
		t.Error("plain error recognised as cancellation")
	}
}
