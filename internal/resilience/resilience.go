// Package resilience provides the pipeline's failure taxonomy: typed
// sentinel errors for the ways an analysis run can end short of a clean
// verdict, a classifier mapping arbitrary errors onto that taxonomy, a
// multi-error collector for graceful degradation (return every completed
// result plus an aggregate of what failed), and the process exit codes
// the CLI derives from a run's worst failure.
//
// The taxonomy distinguishes seven non-fatal endings from a genuine
// internal fault:
//
//   - Cancelled: the caller's context was cancelled or its deadline
//     expired; partial results are valid as far as they go.
//   - FaultInjected: an adversarial channel fault (drop, corruption,
//     duplication, reordering) perturbed the run; failures are expected
//     inputs under the Dolev-Yao threat model, not crashes.
//   - BudgetExhausted: an exploration or iteration bound tripped; the
//     verdict is Unknown rather than wrong.
//   - CasePanic: a test case panicked and was isolated to its own
//     result instead of killing the process.
//   - ModelLint: the model-lint gate refused a model carrying static
//     diagnostics at or above the gate severity; nothing was checked.
//   - RetryExhausted: a retry policy spent every attempt on a failure
//     class that is normally transient; the job is poisoned and was
//     quarantined instead of blocking the queue forever.
//   - LeaseExpired: a distributed worker holding a job lease stopped
//     heartbeating (crash, partition); the work was not wrong, the
//     worker vanished, so the job is requeued for another worker.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// Sentinel errors of the failure taxonomy. Wrap them with %w so
// errors.Is classification survives annotation.
var (
	// ErrCancelled marks work cut short by context cancellation or a
	// deadline, distinct from the Unknown/truncation outcomes of the
	// model checker: the pipeline stopped, the bound did not trip.
	ErrCancelled = errors.New("run cancelled")
	// ErrFaultInjected marks a failure attributable to an adversarial
	// channel fault rather than the implementation under test.
	ErrFaultInjected = errors.New("fault injected")
	// ErrBudgetExhausted marks an exploration/iteration bound tripping.
	ErrBudgetExhausted = errors.New("analysis budget exhausted")
	// ErrCasePanic marks a test case panic that was recovered and
	// isolated to the case's own result.
	ErrCasePanic = errors.New("test case panicked")
	// ErrModelLint marks a run stopped by the model-lint gate: the
	// extracted/composed model carried static diagnostics at or above
	// the gate severity, so checking it would verify the wrong model.
	ErrModelLint = errors.New("model lint gate failed")
	// ErrRetryExhausted marks a job whose retry policy ran out of
	// attempts on a retryable failure class; the job is quarantined as
	// poisoned rather than retried forever.
	ErrRetryExhausted = errors.New("retry attempts exhausted")
	// ErrLeaseExpired marks a job whose distributed worker lease ran
	// out without a heartbeat or result: the worker crashed or was
	// partitioned away mid-attempt. The failure says nothing about the
	// job itself, so it is the canonical retryable class.
	ErrLeaseExpired = errors.New("worker lease expired")
)

// Kind buckets a failure for reporting and exit-code selection.
type Kind uint8

// The failure kinds, ordered by severity: Classify on an aggregate
// reports the most severe member, and Internal outranks the expected,
// recoverable endings.
const (
	KindNone            Kind = iota // no failure
	KindCancelled                   // context cancelled or deadline expired
	KindFaultInjected               // adversarial channel fault
	KindBudgetExhausted             // exploration/iteration bound hit
	KindCasePanic                   // recovered test-case panic
	KindModelLint                   // model-lint gate tripped
	KindRetryExhausted              // retry policy spent on a transient class
	KindLeaseExpired                // distributed worker lease ran out mid-attempt
	KindInternal                    // genuine pipeline fault
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindCancelled:
		return "cancelled"
	case KindFaultInjected:
		return "fault-injected"
	case KindBudgetExhausted:
		return "budget-exhausted"
	case KindCasePanic:
		return "case-panic"
	case KindModelLint:
		return "model-lint"
	case KindRetryExhausted:
		return "retry-exhausted"
	case KindLeaseExpired:
		return "lease-expired"
	case KindInternal:
		return "internal"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Classify maps an error onto the taxonomy. Aggregates (ErrorList,
// errors.Join) classify as their most severe member; nil is KindNone.
// Bare context errors classify as cancelled even when the sentinel was
// never attached.
func Classify(err error) Kind {
	if err == nil {
		return KindNone
	}
	worst := KindNone
	for _, e := range flatten(err) {
		worst = max(worst, classifyOne(e))
	}
	return worst
}

func classifyOne(err error) Kind {
	switch {
	case errors.Is(err, ErrCancelled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return KindCancelled
	case errors.Is(err, ErrFaultInjected):
		return KindFaultInjected
	case errors.Is(err, ErrBudgetExhausted):
		return KindBudgetExhausted
	case errors.Is(err, ErrCasePanic):
		return KindCasePanic
	case errors.Is(err, ErrModelLint):
		return KindModelLint
	case errors.Is(err, ErrRetryExhausted):
		return KindRetryExhausted
	case errors.Is(err, ErrLeaseExpired):
		return KindLeaseExpired
	default:
		return KindInternal
	}
}

// Retryable reports whether a failure of this kind is worth another
// attempt: adversarial channel faults and isolated case panics are
// transient under a reseeded or differently-scheduled run, and an
// expired worker lease says the worker died, not that the job is bad —
// while cancellation, budget exhaustion, lint gates and genuine
// internal faults are deterministic — retrying them burns attempts on
// the same answer. Retry policies consult this instead of hard-coding
// classes.
func (k Kind) Retryable() bool {
	return k == KindFaultInjected || k == KindCasePanic || k == KindLeaseExpired
}

// flatten expands multi-error trees into leaves, descending through
// single-unwrap wrappers to find aggregates below them (e.g. the CLI's
// fmt.Errorf("partial catalogue: %w", ErrorList{...})); an error with
// no aggregate anywhere in its chain is its own single leaf.
func flatten(err error) []error {
	for e := err; e != nil; {
		if multi, ok := e.(interface{ Unwrap() []error }); ok {
			var out []error
			for _, m := range multi.Unwrap() {
				out = append(out, flatten(m)...)
			}
			return out
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			break
		}
		e = u.Unwrap()
	}
	return []error{err}
}

// Exit codes the CLI reports, keyed by the run's classified failure.
const (
	ExitOK              = 0
	ExitInternal        = 1
	ExitCancelled       = 2
	ExitFaultInjected   = 3
	ExitBudgetExhausted = 4
	ExitCasePanic       = 5
	ExitModelLint       = 6
	ExitRetryExhausted  = 7
	ExitLeaseExpired    = 8
)

// ExitCode selects the process exit code for a run that ended with err.
func ExitCode(err error) int { return Classify(err).ExitCode() }

// ExitCode maps the kind onto the CLI exit-code vocabulary.
func (k Kind) ExitCode() int {
	switch k {
	case KindNone:
		return ExitOK
	case KindCancelled:
		return ExitCancelled
	case KindFaultInjected:
		return ExitFaultInjected
	case KindBudgetExhausted:
		return ExitBudgetExhausted
	case KindCasePanic:
		return ExitCasePanic
	case KindModelLint:
		return ExitModelLint
	case KindRetryExhausted:
		return ExitRetryExhausted
	case KindLeaseExpired:
		return ExitLeaseExpired
	case KindInternal:
		return ExitInternal
	default:
		// Unknown future kinds decay to the internal exit code; every
		// declared kind is named above (enforced by exhaustive-switch).
		return ExitInternal
	}
}

// ParseKind inverts Kind.String — the bridge for failure classes that
// crossed a serialization boundary (job records, HTTP status payloads).
func ParseKind(s string) (Kind, bool) {
	for k := KindNone; k <= KindInternal; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return KindInternal, false
}

// errInternal anchors reconstructed internal failures so Sentinel always
// returns a classifiable error for non-clean kinds.
var errInternal = errors.New("internal failure")

// Sentinel returns the taxonomy error a reconstructed failure of this
// kind should wrap (nil for KindNone), so errors.Is classification and
// exit codes survive a round trip through a serialized failure class.
func (k Kind) Sentinel() error {
	switch k {
	case KindNone:
		return nil
	case KindCancelled:
		return ErrCancelled
	case KindFaultInjected:
		return ErrFaultInjected
	case KindBudgetExhausted:
		return ErrBudgetExhausted
	case KindCasePanic:
		return ErrCasePanic
	case KindModelLint:
		return ErrModelLint
	case KindRetryExhausted:
		return ErrRetryExhausted
	case KindLeaseExpired:
		return ErrLeaseExpired
	case KindInternal:
		return errInternal
	default:
		// Unknown future kinds decay to the internal sentinel; every
		// declared kind is named above (enforced by exhaustive-switch).
		return errInternal
	}
}

// ErrorList aggregates the failures of a degraded run while the
// completed results travel alongside. It unwraps to its members, so
// errors.Is/As see through it.
type ErrorList []error

// Error implements error.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d errors:", len(l))
	for _, e := range l {
		b.WriteString("\n  - ")
		b.WriteString(e.Error())
	}
	return b.String()
}

// Unwrap exposes the members to errors.Is and errors.As.
func (l ErrorList) Unwrap() []error { return l }

// Collector accumulates failures during a run that keeps going.
type Collector struct {
	errs ErrorList
}

// Add records a failure; nil is ignored.
func (c *Collector) Add(err error) {
	if err != nil {
		c.errs = append(c.errs, err)
	}
}

// Len reports how many failures were recorded.
func (c *Collector) Len() int { return len(c.errs) }

// Err returns nil when nothing failed, the single failure unwrapped, or
// the aggregate ErrorList.
func (c *Collector) Err() error {
	switch len(c.errs) {
	case 0:
		return nil
	case 1:
		return c.errs[0]
	default:
		return c.errs
	}
}

// Cancelled reports whether err (or any member of an aggregate)
// classifies as a cancellation.
func Cancelled(err error) bool { return Classify(err) == KindCancelled }
