// Package cpv is the in-process cryptographic protocol verifier standing
// in for ProVerif: a symbolic Dolev-Yao engine with a term algebra
// (names, pairs, symmetric encryption, MACs, key-derivation functions),
// intruder-knowledge saturation, a decision procedure for message
// derivability, and a diff-based observational-equivalence check used for
// the linkability (privacy) queries.
//
// The CEGAR loop asks exactly two kinds of question here, matching how
// the paper uses ProVerif: (1) "can the adversary produce this message at
// this point of the counterexample, given everything that crossed the
// public channels?", and (2) "can the adversary distinguish two systems
// by their responses?".
package cpv

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a symbolic message.
type Term interface {
	// Key returns a canonical representation used for identity.
	Key() string
	fmt.Stringer
}

// Name is an atomic term: a key, nonce, identity or public constant.
type Name struct{ ID string }

// Key implements Term.
func (n Name) Key() string { return "n:" + n.ID }

// String implements fmt.Stringer.
func (n Name) String() string { return n.ID }

// Pair is term concatenation.
type Pair struct{ L, R Term }

// Key implements Term.
func (p Pair) Key() string { return "p:(" + p.L.Key() + "," + p.R.Key() + ")" }

// String implements fmt.Stringer.
func (p Pair) String() string { return "<" + p.L.String() + "," + p.R.String() + ">" }

// SEnc is symmetric encryption of Body under Key.
type SEnc struct{ Body, K Term }

// Key implements Term.
func (e SEnc) Key() string { return "e:(" + e.Body.Key() + ")_" + e.K.Key() }

// String implements fmt.Stringer.
func (e SEnc) String() string { return "senc(" + e.Body.String() + ", " + e.K.String() + ")" }

// MAC is a message authentication code over Body under Key.
type MAC struct{ Body, K Term }

// Key implements Term.
func (m MAC) Key() string { return "m:(" + m.Body.Key() + ")_" + m.K.Key() }

// String implements fmt.Stringer.
func (m MAC) String() string { return "mac(" + m.Body.String() + ", " + m.K.String() + ")" }

// Fun is an uninvertible function application (e.g. a KDF): derivable
// only by composing it from derivable arguments.
type Fun struct {
	Name string
	Args []Term
}

// Key implements Term.
func (f Fun) Key() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.Key()
	}
	return "f:" + f.Name + "(" + strings.Join(parts, ",") + ")"
}

// String implements fmt.Stringer.
func (f Fun) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// PairOf folds a list into nested pairs (right associated); a convenience
// for protocol encodings.
func PairOf(terms ...Term) Term {
	if len(terms) == 0 {
		return Name{ID: "nil"}
	}
	out := terms[len(terms)-1]
	for i := len(terms) - 2; i >= 0; i-- {
		out = Pair{L: terms[i], R: out}
	}
	return out
}

// Knowledge is the intruder's term set, kept saturated under analysis
// (pair projection and decryption with derivable keys).
type Knowledge struct {
	terms map[string]Term
}

// NewKnowledge builds a knowledge base from initial terms.
func NewKnowledge(initial ...Term) *Knowledge {
	k := &Knowledge{terms: make(map[string]Term)}
	for _, t := range initial {
		k.Add(t)
	}
	return k
}

// Add inserts a term and re-saturates.
func (k *Knowledge) Add(t Term) {
	if t == nil {
		return
	}
	if _, ok := k.terms[t.Key()]; ok {
		return
	}
	k.terms[t.Key()] = t
	k.saturate()
}

// saturate closes the knowledge under analysis: project pairs, open
// encryptions whose keys are derivable. Iterates to fixpoint — opening
// one encryption may expose keys that open others.
func (k *Knowledge) saturate() {
	for {
		var fresh []Term
		for _, t := range k.terms {
			switch tt := t.(type) {
			case Pair:
				if _, ok := k.terms[tt.L.Key()]; !ok {
					fresh = append(fresh, tt.L)
				}
				if _, ok := k.terms[tt.R.Key()]; !ok {
					fresh = append(fresh, tt.R)
				}
			case SEnc:
				if k.Derivable(tt.K) {
					if _, ok := k.terms[tt.Body.Key()]; !ok {
						fresh = append(fresh, tt.Body)
					}
				}
			}
		}
		if len(fresh) == 0 {
			return
		}
		for _, t := range fresh {
			k.terms[t.Key()] = t
		}
	}
}

// Derivable decides whether the intruder can construct t from the
// saturated knowledge: by possession, pairing, encrypting, MACing or
// applying functions to derivable parts.
func (k *Knowledge) Derivable(t Term) bool {
	return k.derivable(t, make(map[string]bool))
}

func (k *Knowledge) derivable(t Term, visiting map[string]bool) bool {
	key := t.Key()
	if _, ok := k.terms[key]; ok {
		return true
	}
	if visiting[key] {
		return false
	}
	visiting[key] = true
	defer delete(visiting, key)
	switch tt := t.(type) {
	case Pair:
		return k.derivable(tt.L, visiting) && k.derivable(tt.R, visiting)
	case SEnc:
		return k.derivable(tt.Body, visiting) && k.derivable(tt.K, visiting)
	case MAC:
		return k.derivable(tt.Body, visiting) && k.derivable(tt.K, visiting)
	case Fun:
		for _, a := range tt.Args {
			if !k.derivable(a, visiting) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Has reports direct possession (post-saturation) of t.
func (k *Knowledge) Has(t Term) bool {
	_, ok := k.terms[t.Key()]
	return ok
}

// Size returns the number of known terms.
func (k *Knowledge) Size() int { return len(k.terms) }

// Terms lists the knowledge deterministically (for reports).
func (k *Knowledge) Terms() []Term {
	keys := make([]string, 0, len(k.terms))
	for key := range k.terms {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	out := make([]Term, 0, len(keys))
	for _, key := range keys {
		out = append(out, k.terms[key])
	}
	return out
}

// Clone deep-copies the knowledge base.
func (k *Knowledge) Clone() *Knowledge {
	out := &Knowledge{terms: make(map[string]Term, len(k.terms))}
	for key, t := range k.terms {
		out.terms[key] = t
	}
	return out
}
