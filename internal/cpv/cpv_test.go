package cpv

import (
	"testing"
	"testing/quick"

	"prochecker/internal/spec"
)

func TestPairProjection(t *testing.T) {
	k := NewKnowledge(Pair{L: Name{ID: "a"}, R: Name{ID: "b"}})
	if !k.Has(Name{ID: "a"}) || !k.Has(Name{ID: "b"}) {
		t.Error("pair components not projected")
	}
}

func TestDecryptionRequiresKey(t *testing.T) {
	secret := Name{ID: "secret"}
	key := Name{ID: "key"}
	enc := SEnc{Body: secret, K: key}

	k1 := NewKnowledge(enc)
	if k1.Derivable(secret) {
		t.Error("secret derivable without key")
	}
	k2 := NewKnowledge(enc, key)
	if !k2.Derivable(secret) {
		t.Error("secret not derivable with key")
	}
}

func TestSaturationCascades(t *testing.T) {
	// enc1 holds key2; enc2 holds the secret; key1 opens enc1.
	key1, key2 := Name{ID: "k1"}, Name{ID: "k2"}
	secret := Name{ID: "s"}
	enc2 := SEnc{Body: secret, K: key2}
	enc1 := SEnc{Body: key2, K: key1}
	k := NewKnowledge(enc1, enc2, key1)
	if !k.Derivable(secret) {
		t.Error("cascaded decryption failed")
	}
}

func TestLateKeyReopensEncryptions(t *testing.T) {
	key := Name{ID: "k"}
	secret := Name{ID: "s"}
	k := NewKnowledge(SEnc{Body: secret, K: key})
	if k.Derivable(secret) {
		t.Fatal("premature derivation")
	}
	k.Add(key)
	if !k.Derivable(secret) {
		t.Error("adding the key later did not reopen the encryption")
	}
}

func TestSynthesis(t *testing.T) {
	k := NewKnowledge(Name{ID: "a"}, Name{ID: "b"})
	if !k.Derivable(Pair{L: Name{ID: "a"}, R: Name{ID: "b"}}) {
		t.Error("cannot pair known terms")
	}
	if !k.Derivable(MAC{Body: Name{ID: "a"}, K: Name{ID: "b"}}) {
		t.Error("cannot MAC with known key")
	}
	if !k.Derivable(Fun{Name: "f", Args: []Term{Name{ID: "a"}}}) {
		t.Error("cannot apply function to known args")
	}
	if k.Derivable(MAC{Body: Name{ID: "a"}, K: Name{ID: "unknown"}}) {
		t.Error("MAC forged without key")
	}
}

func TestMACNotInvertible(t *testing.T) {
	// Possessing mac(s, k) reveals neither s nor k.
	k := NewKnowledge(MAC{Body: Name{ID: "s"}, K: Name{ID: "k"}})
	if k.Derivable(Name{ID: "s"}) || k.Derivable(Name{ID: "k"}) {
		t.Error("MAC leaked body or key")
	}
}

func TestFunNotInvertible(t *testing.T) {
	k := NewKnowledge(Fun{Name: "kdf", Args: []Term{Name{ID: "k"}}})
	if k.Derivable(Name{ID: "k"}) {
		t.Error("KDF inverted")
	}
}

func TestCloneIndependent(t *testing.T) {
	k := NewKnowledge(Name{ID: "a"})
	c := k.Clone()
	c.Add(Name{ID: "b"})
	if k.Derivable(Name{ID: "b"}) {
		t.Error("clone aliases original")
	}
}

func TestPairOf(t *testing.T) {
	p := PairOf(Name{ID: "a"}, Name{ID: "b"}, Name{ID: "c"})
	want := Pair{L: Name{ID: "a"}, R: Pair{L: Name{ID: "b"}, R: Name{ID: "c"}}}
	if p.Key() != want.Key() {
		t.Errorf("PairOf = %s, want %s", p, want)
	}
	if PairOf().Key() != (Name{ID: "nil"}).Key() {
		t.Error("empty PairOf wrong")
	}
}

func TestTermKeysInjective(t *testing.T) {
	terms := []Term{
		Name{ID: "a"},
		Name{ID: "b"},
		Pair{L: Name{ID: "a"}, R: Name{ID: "b"}},
		Pair{L: Name{ID: "b"}, R: Name{ID: "a"}},
		SEnc{Body: Name{ID: "a"}, K: Name{ID: "b"}},
		MAC{Body: Name{ID: "a"}, K: Name{ID: "b"}},
		Fun{Name: "f", Args: []Term{Name{ID: "a"}}},
		Fun{Name: "g", Args: []Term{Name{ID: "a"}}},
	}
	seen := make(map[string]bool)
	for _, tm := range terms {
		if seen[tm.Key()] {
			t.Errorf("key collision for %s", tm)
		}
		seen[tm.Key()] = true
	}
}

func TestDerivabilityMonotone(t *testing.T) {
	// Property: adding knowledge never makes a derivable term
	// underivable.
	targets := []Term{
		Name{ID: "x"},
		Pair{L: Name{ID: "x"}, R: Name{ID: "y"}},
		SEnc{Body: Name{ID: "x"}, K: Name{ID: "y"}},
	}
	prop := func(addX, addY bool) bool {
		k := NewKnowledge()
		if addX {
			k.Add(Name{ID: "x"})
		}
		before := make([]bool, len(targets))
		for i, tgt := range targets {
			before[i] = k.Derivable(tgt)
		}
		if addY {
			k.Add(Name{ID: "y"})
		}
		for i, tgt := range targets {
			if before[i] && !k.Derivable(tgt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// --- NAS theory tests ---

func TestInjectPlainRejectFeasible(t *testing.T) {
	v := NewNASVerifier(false)
	f := v.Feasible(Action{Kind: ActInject, Message: spec.AttachReject})
	if !f.Feasible {
		t.Errorf("plain attach_reject injection infeasible: %s", f.Reason)
	}
}

func TestInjectProtectedInfeasible(t *testing.T) {
	v := NewNASVerifier(false)
	for _, m := range []spec.MessageName{spec.GUTIRealloCommand, spec.AttachAccept, spec.SecurityModeCommand} {
		f := v.Feasible(Action{Kind: ActInject, Message: m})
		if f.Feasible {
			t.Errorf("forging protected %s reported feasible", m)
		}
	}
}

func TestInjectAuthRequestInfeasibleWithoutCapture(t *testing.T) {
	v := NewNASVerifier(false)
	f := v.Feasible(Action{Kind: ActInject, Message: spec.AuthRequest})
	if f.Feasible {
		t.Error("authentication_request forged without K")
	}
}

func TestReplayRequiresObservation(t *testing.T) {
	v := NewNASVerifier(false)
	if v.Feasible(Action{Kind: ActReplay, Message: spec.GUTIRealloCommand}).Feasible {
		t.Error("replay feasible before observation")
	}
	v.ObserveGenuine(spec.GUTIRealloCommand)
	if !v.Feasible(Action{Kind: ActReplay, Message: spec.GUTIRealloCommand}).Feasible {
		t.Error("replay infeasible after observation")
	}
}

func TestPreCaptureEnablesAuthRequestReplay(t *testing.T) {
	// P1's capture phase: days-old authentication_requests are replayable
	// without any in-trace observation.
	without := NewNASVerifier(false)
	if without.Feasible(Action{Kind: ActReplay, Message: spec.AuthRequest}).Feasible {
		t.Error("auth_request replay feasible without capture phase or observation")
	}
	with := NewNASVerifier(true)
	if !with.Feasible(Action{Kind: ActReplay, Message: spec.AuthRequest}).Feasible {
		t.Error("auth_request replay infeasible despite capture phase")
	}
}

func TestDropAlwaysFeasible(t *testing.T) {
	v := NewNASVerifier(false)
	if !v.Feasible(Action{Kind: ActDrop, Message: spec.GUTIRealloCommand}).Feasible {
		t.Error("drop reported infeasible")
	}
}

func TestIMSILearntFromIdentityResponse(t *testing.T) {
	v := NewNASVerifier(false)
	if v.IMSIKnown() {
		t.Fatal("IMSI known a priori")
	}
	v.ObserveGenuine(spec.IdentityResponse)
	if !v.IMSIKnown() {
		t.Error("IMSI not learnt from plaintext identity_response")
	}
}

func TestIMSINotLearntFromProtectedTraffic(t *testing.T) {
	v := NewNASVerifier(false)
	v.ObserveGenuine(spec.GUTIRealloCommand)
	v.ObserveGenuine(spec.AttachAccept)
	if v.IMSIKnown() {
		t.Error("IMSI leaked from ciphered messages")
	}
}

func TestDistinguishLinkability(t *testing.T) {
	// P2's equivalence query: victim answers a replayed challenge with
	// auth_response; any other UE answers auth_mac_failure.
	v := NewNASVerifier(true)
	probes := []Probe{{Label: "replayed_auth_request", Term: MessageTerm(spec.AuthRequest)}}
	victim := func(Probe) string { return string(spec.AuthResponse) }
	other := func(Probe) string { return string(spec.AuthMACFailure) }
	p, ok := v.Distinguish(probes, victim, other)
	if !ok {
		t.Fatal("victim and other UE not distinguishable")
	}
	if p.Label != "replayed_auth_request" {
		t.Errorf("distinguishing probe = %s", p.Label)
	}
	// Two identical processes are not distinguishable.
	if _, ok := v.Distinguish(probes, victim, victim); ok {
		t.Error("identical processes distinguished")
	}
}

func TestDistinguishSkipsUnderivableProbes(t *testing.T) {
	v := NewNASVerifier(false) // no capture: the probe is not derivable
	probes := []Probe{{Label: "replayed_auth_request", Term: MessageTerm(spec.AuthRequest)}}
	a := func(Probe) string { return "x" }
	b := func(Probe) string { return "y" }
	if _, ok := v.Distinguish(probes, a, b); ok {
		t.Error("distinguished via a probe the adversary cannot produce")
	}
}
