package cpv

import (
	"fmt"

	"prochecker/internal/spec"
)

// NAS protocol theory: symbolic term encodings of the NAS messages, the
// secrets involved, and a session-scoped verifier that answers the CEGAR
// loop's feasibility queries against accumulated intruder knowledge.

// Well-known names of the NAS theory.
var (
	// kSubscriber is the permanent key K shared by USIM and HSS.
	kSubscriber = Name{ID: "K_subscriber"}
	// kNAS is the session NAS key hierarchy (KASME-derived).
	kNAS = Fun{Name: "kdf", Args: []Term{kSubscriber, Name{ID: "rand"}}}
	// sqn is the current authentication sequence number.
	sqnTerm = Name{ID: "sqn"}
	// imsi is public once broadcast but starts secret-ish; we treat it as
	// a name the adversary learns by observing messages carrying it.
	imsiTerm = Name{ID: "imsi"}
)

// tag returns the public message-type tag term.
func tag(m spec.MessageName) Term { return Name{ID: "tag_" + string(m)} }

// Exported term builders for knowledge-query properties.

// IMSITerm is the subscriber's permanent identity.
func IMSITerm() Term { return imsiTerm }

// SQNValueTerm is the raw authentication sequence number.
func SQNValueTerm() Term { return sqnTerm }

// GUTITerm is the temporary identity currently assigned (public once it
// appears in cleartext signalling).
func GUTITerm() Term { return Name{ID: "guti"} }

// PayloadTerm is the confidential payload of a protected message type.
func PayloadTerm(m spec.MessageName) Term { return Name{ID: "payload_" + string(m)} }

// SessionKeyTerm is the NAS session key hierarchy.
func SessionKeyTerm() Term { return kNAS }

// TaggedTerm builds Pair(tag_m, body): a message of type m carrying body.
func TaggedTerm(m spec.MessageName, body Term) Term { return PairOf(tag(m), body) }

// CipheredTerm builds senc(body, k_nas): body sent under the session key.
func CipheredTerm(body Term) Term { return SEnc{Body: body, K: kNAS} }

// MessageTerm is the symbolic encoding of one NAS message type on the
// air. Plain messages are built from public material (plus protocol
// secrets where the real message embeds a cryptographic value, like the
// AUTN MAC in authentication_request); protected messages are MAC'd and
// enciphered under the session key.
func MessageTerm(m spec.MessageName) Term {
	switch m {
	case spec.AuthRequest:
		// rand || AUTN, AUTN containing MAC-A under K: replayable once
		// observed, unforgeable without K.
		return PairOf(tag(m), Name{ID: "rand"}, MAC{Body: PairOf(sqnTerm, Name{ID: "rand"}), K: kSubscriber})
	case spec.AuthResponse:
		// RES = f2(K, rand).
		return PairOf(tag(m), Fun{Name: "f2", Args: []Term{kSubscriber, Name{ID: "rand"}}})
	case spec.AuthSyncFailure:
		// AUTS: conceals SQN_MS under K-derived anonymity key.
		return PairOf(tag(m), MAC{Body: sqnTerm, K: kSubscriber})
	case spec.AttachRequest:
		return PairOf(tag(m), imsiTerm)
	case spec.IdentityResponse:
		return PairOf(tag(m), imsiTerm)
	default:
		if spec.PlainOnAir(m) {
			// Plain signalling carries only public fields (causes,
			// identifiers already on the air).
			return PairOf(tag(m), Name{ID: "public_fields"})
		}
		// Protected messages are integrity protected (and ciphered)
		// under the session key.
		return PairOf(tag(m), SEnc{Body: PairOf(tag(m), Name{ID: "payload_" + string(m)}), K: kNAS},
			MAC{Body: PairOf(tag(m), Name{ID: "payload_" + string(m)}), K: kNAS})
	}
}

// FreshMessageTerm is the term an adversary must build to *inject* (forge)
// a new instance of message type m, with every session-fresh component
// replaced by an adversary-chosen value: its own RAND, its own IMSI, its
// own payload. Replaying a captured instance is a different action
// (ActReplay) checked against possession instead.
func FreshMessageTerm(m spec.MessageName) Term {
	advRand := Name{ID: "rand_adv"}
	switch m {
	case spec.AuthRequest:
		// A fresh challenge needs MAC-A over the adversary's RAND — only
		// K can produce it.
		return PairOf(tag(m), advRand, MAC{Body: PairOf(sqnTerm, advRand), K: kSubscriber})
	case spec.AuthResponse:
		return PairOf(tag(m), Fun{Name: "f2", Args: []Term{kSubscriber, advRand}})
	case spec.AuthSyncFailure:
		return PairOf(tag(m), MAC{Body: sqnTerm, K: kSubscriber})
	case spec.AttachRequest, spec.IdentityResponse:
		// The adversary can always use its *own* identity (the malicious
		// UE of Figure 4's capture phase).
		return PairOf(tag(m), Name{ID: "imsi_adv"})
	default:
		if spec.PlainOnAir(m) {
			return PairOf(tag(m), Name{ID: "public_fields"})
		}
		body := PairOf(tag(m), Name{ID: "payload_adv"})
		return PairOf(tag(m), SEnc{Body: body, K: kNAS}, MAC{Body: body, K: kNAS})
	}
}

// PublicInitialKnowledge is what any Dolev-Yao adversary starts with:
// every message-type tag, the public field constants, and its own
// identity material (IMSI, RAND, payloads of its choosing).
func PublicInitialKnowledge() []Term {
	var out []Term
	for _, m := range append(spec.UplinkMessages(), spec.DownlinkMessages()...) {
		out = append(out, tag(m))
	}
	out = append(out,
		Name{ID: "public_fields"},
		Name{ID: "imsi_adv"},
		Name{ID: "rand_adv"},
		Name{ID: "payload_adv"},
	)
	return out
}

// ActionKind classifies an adversary action from a model-checker
// counterexample.
type ActionKind string

// The Dolev-Yao actions of the threat model (Section III-A).
const (
	ActDrop   ActionKind = "drop"
	ActReplay ActionKind = "replay"
	ActInject ActionKind = "inject"
)

// Action is one adversary step extracted from a counterexample.
type Action struct {
	Kind    ActionKind
	Message spec.MessageName
}

// Feasibility is the verdict on one adversary action.
type Feasibility struct {
	Feasible bool
	Reason   string
}

// NASVerifier tracks one trace's public-channel history and answers
// feasibility queries, playing ProVerif's role in the CEGAR loop.
type NASVerifier struct {
	know *Knowledge
	// preCapture grants knowledge of messages capturable in *earlier
	// sessions*: plain messages whose validity outlives the session, like
	// authentication_request under the Annex C out-of-order acceptance
	// window (P1's capture phase).
	preCapture bool
}

// NewNASVerifier builds a session verifier. preCapture enables the
// cross-session capture phase of Figure 4 (on by default in the paper's
// threat model, since nothing stops an adversary from recording earlier
// traffic).
func NewNASVerifier(preCapture bool) *NASVerifier {
	v := &NASVerifier{know: NewKnowledge(PublicInitialKnowledge()...), preCapture: preCapture}
	if preCapture {
		// The capture phase of P1/P2: a malicious UE attaches, making the
		// MME emit authentication_requests that the adversary records.
		v.know.Add(MessageTerm(spec.AuthRequest))
	}
	return v
}

// Knowledge exposes the accumulated intruder knowledge.
func (v *NASVerifier) Knowledge() *Knowledge { return v.know }

// ObserveGenuine records a genuine protocol message crossing a public
// channel; the adversary learns it.
func (v *NASVerifier) ObserveGenuine(m spec.MessageName) {
	v.know.Add(MessageTerm(m))
}

// Feasible decides whether an adversary action conforms to the
// cryptographic assumptions given the knowledge accumulated so far in the
// trace.
func (v *NASVerifier) Feasible(a Action) Feasibility {
	switch a.Kind {
	case ActDrop:
		// Dropping needs no knowledge at all.
		return Feasibility{Feasible: true, Reason: "dropping a packet requires no cryptographic capability"}
	case ActReplay:
		t := MessageTerm(a.Message)
		if v.know.Has(t) {
			return Feasibility{Feasible: true, Reason: fmt.Sprintf("%s observed on a public channel; replay is possible", a.Message)}
		}
		return Feasibility{Feasible: false, Reason: fmt.Sprintf("%s never crossed a public channel in this trace; nothing to replay", a.Message)}
	case ActInject:
		t := FreshMessageTerm(a.Message)
		if v.know.Derivable(t) {
			return Feasibility{Feasible: true, Reason: fmt.Sprintf("a fresh %s is derivable from public material", a.Message)}
		}
		return Feasibility{Feasible: false, Reason: fmt.Sprintf("forging a fresh %s requires secrets (session or subscriber keys) the adversary cannot derive", a.Message)}
	default:
		return Feasibility{Feasible: false, Reason: fmt.Sprintf("unknown adversary action %q", a.Kind)}
	}
}

// IMSIKnown reports whether the adversary has learnt the subscriber's
// IMSI from the observed traffic — the verdict behind the privacy-leak
// properties (I5 and the paging/identification surfaces).
func (v *NASVerifier) IMSIKnown() bool {
	return v.know.Derivable(imsiTerm)
}

// Probe is one adversary experiment for the observational-equivalence
// check: a message the adversary can send, with a label.
type Probe struct {
	Label string
	Term  Term
}

// Process abstracts a system under equivalence testing: it answers a
// probe with an observable response label (message type, or silence).
type Process func(p Probe) string

// Distinguish runs the diff-equivalence experiment ProVerif's
// observational-equivalence queries perform: for every probe the
// adversary can actually produce (derivability check), compare the two
// processes' observable responses. It returns the first distinguishing
// probe, if any.
func (v *NASVerifier) Distinguish(probes []Probe, a, b Process) (Probe, bool) {
	for _, p := range probes {
		if !v.know.Derivable(p.Term) {
			continue // the adversary cannot mount this experiment
		}
		if a(p) != b(p) {
			return p, true
		}
	}
	return Probe{}, false
}
