package learner

import (
	"testing"

	"prochecker/internal/ue"
)

// toySUL is a deterministic two-state Mealy machine for algorithm tests:
// state A: a/0 -> B, b/1 -> A; state B: a/1 -> A, b/0 -> B.
type toySUL struct {
	state int
}

func (t *toySUL) Reset() error { t.state = 0; return nil }
func (t *toySUL) Step(sym Symbol) (Output, error) {
	switch {
	case t.state == 0 && sym == "a":
		t.state = 1
		return "0", nil
	case t.state == 0 && sym == "b":
		return "1", nil
	case t.state == 1 && sym == "a":
		t.state = 0
		return "1", nil
	default: // state 1, b
		return "0", nil
	}
}

func TestLearnToyMachine(t *testing.T) {
	m, stats, err := Learn(&toySUL{}, []Symbol{"a", "b"}, Options{TestDepth: 4})
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if m.NumStates != 2 {
		t.Fatalf("states = %d, want 2\n%s", m.NumStates, m)
	}
	// The hypothesis must agree with the SUL on a probe word.
	word := []Symbol{"a", "a", "b", "a", "b", "b", "a"}
	sul := &toySUL{}
	if err := sul.Reset(); err != nil {
		t.Fatal(err)
	}
	var want []Output
	for _, sym := range word {
		o, err := sul.Step(sym)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, o)
	}
	got := m.Walk(word)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output %d = %s, want %s", i, got[i], want[i])
		}
	}
	if stats.MembershipQueries == 0 || stats.Resets == 0 {
		t.Errorf("stats not collected: %+v", stats)
	}
}

func TestStepBeforeResetFails(t *testing.T) {
	s := NewUESUL(ue.ProfileConformant)
	if _, err := s.Step(InTriggerAttach); err == nil {
		t.Error("Step before Reset succeeded")
	}
}

func TestUESULDeterministic(t *testing.T) {
	// Active learning requires a deterministic SUL: the same word always
	// yields the same outputs.
	word := []Symbol{InTriggerAttach, InAuthFresh, InSMC, InAttachAccept, InGUTIRealloc, InReplayLast}
	run := func() []Output {
		s := NewUESUL(ue.ProfileSRS)
		if err := s.Reset(); err != nil {
			t.Fatal(err)
		}
		var out []Output
		for _, sym := range word {
			o, err := s.Step(sym)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, o)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestUESULHappyPath(t *testing.T) {
	s := NewUESUL(ue.ProfileConformant)
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	expect := []struct {
		in  Symbol
		out Output
	}{
		{InTriggerAttach, "attach_request"},
		{InAuthFresh, "authentication_response"},
		{InSMC, "security_mode_complete"},
		{InAttachAccept, "attach_complete"},
		{InGUTIRealloc, "guti_reallocation_complete"},
	}
	for _, e := range expect {
		got, err := s.Step(e.in)
		if err != nil {
			t.Fatalf("Step(%s): %v", e.in, err)
		}
		if got != e.out {
			t.Fatalf("Step(%s) = %s, want %s", e.in, got, e.out)
		}
	}
}

func TestUESULQuirkVisibility(t *testing.T) {
	// The black box does expose I1-style behaviour...
	attach := []Symbol{InTriggerAttach, InAuthFresh, InSMC, InAttachAccept, InGUTIRealloc}
	probe := func(profile ue.Profile) Output {
		s := NewUESUL(profile)
		if err := s.Reset(); err != nil {
			t.Fatal(err)
		}
		var last Output
		for _, sym := range append(attach, InReplayLast) {
			o, err := s.Step(sym)
			if err != nil {
				t.Fatal(err)
			}
			last = o
		}
		return last
	}
	if got := probe(ue.ProfileConformant); got != NoOutput {
		t.Errorf("conformant answered a replay: %s", got)
	}
	if got := probe(ue.ProfileSRS); got == NoOutput {
		t.Error("srs silent on replay; I1 invisible to the black box")
	}
}

// TestLearnConformantUE is the headline baseline experiment: learn the
// conformant UE and compare the cost and expressiveness against white-box
// extraction (the numbers EXPERIMENTS.md cites).
func TestLearnConformantUE(t *testing.T) {
	if testing.Short() {
		t.Skip("active learning in -short mode")
	}
	sul := NewUESUL(ue.ProfileConformant)
	m, stats, err := Learn(sul, DefaultAlphabet(), Options{TestDepth: 2, MaxRounds: 24})
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	t.Logf("learned %d states with %d membership queries, %d resets, %d inputs sent, %d equivalence rounds",
		m.NumStates, stats.MembershipQueries, stats.Resets, stats.InputSymbolsSent, stats.Rounds)
	if m.NumStates < 3 {
		t.Errorf("learned machine suspiciously small: %d states", m.NumStates)
	}
	// The paper's point, quantified: the black box needs orders of
	// magnitude more queries than the white-box extraction needs test
	// cases (the conformance catalogue has ~35), and still produces a
	// machine with opaque states and no predicates.
	if stats.MembershipQueries < 100 {
		t.Errorf("membership queries = %d; expected the black-box cost to be >> the ~35 white-box test cases",
			stats.MembershipQueries)
	}
}

func TestLearnDistinguishesProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("active learning in -short mode")
	}
	// The learned machines differ between conformant and srs (the replay
	// behaviour is black-box visible), even if their semantics are opaque.
	ma, _, err := Learn(NewUESUL(ue.ProfileConformant), DefaultAlphabet(), Options{TestDepth: 2, MaxRounds: 24})
	if err != nil {
		t.Fatalf("learn conformant: %v", err)
	}
	mb, _, err := Learn(NewUESUL(ue.ProfileSRS), DefaultAlphabet(), Options{TestDepth: 2, MaxRounds: 24})
	if err != nil {
		t.Fatalf("learn srs: %v", err)
	}
	word := []Symbol{InTriggerAttach, InAuthFresh, InSMC, InAttachAccept, InGUTIRealloc, InReplayLast}
	oa, ob := ma.Walk(word), mb.Walk(word)
	same := true
	for i := range oa {
		if oa[i] != ob[i] {
			same = false
		}
	}
	if same {
		t.Error("learned machines agree on the replay probe; profiles not distinguished")
	}
}
