// Package learner implements the black-box baseline the paper contrasts
// ProChecker against (Sections I and VIII): active-automata learning of
// the implementation's state machine in the style of L* for Mealy
// machines, as used for TLS and SSH ("such approaches are prohibitively
// expensive as they require a significantly high time and number of
// queries ... and the inferred FSM is not sufficiently large and
// semantically rich compared to that of the white-box settings").
//
// The learner sees the UE as a reset-able black box: a membership query
// is a sequence of abstract input symbols, concretised by a mapper that
// owns the session cryptography (exactly how protocol state fuzzers
// drive TLS stacks), and the observation is the UE's response message
// type. The result is a Mealy machine over response labels — with no
// internal state names, no sanity-check predicates and a query bill that
// grows multiplicatively, which is precisely the comparison
// internal/report draws against Algorithm 1's extraction.
package learner

import (
	"fmt"
	"sort"
	"strings"
)

// Symbol is an abstract input the mapper can concretise.
type Symbol string

// Output is the observed response label ("-" for silence).
type Output string

// NoOutput is the silence label.
const NoOutput Output = "-"

// SUL is the system under learning: a reset-able black box.
type SUL interface {
	// Reset returns the system to its initial state.
	Reset() error
	// Step applies one input and returns the observed output.
	Step(sym Symbol) (Output, error)
}

// Stats counts the cost of learning — the currency of the paper's
// black-box-vs-white-box argument.
type Stats struct {
	MembershipQueries  int
	Resets             int
	InputSymbolsSent   int
	EquivalenceQueries int
	Rounds             int
}

// Mealy is the learned machine: states are observation-table rows.
type Mealy struct {
	Alphabet []Symbol
	// States are opaque ids 0..n-1; 0 is initial.
	NumStates int
	// Trans[state][symbol] = next state.
	Trans []map[Symbol]int
	// Out[state][symbol] = output.
	Out []map[Symbol]Output
}

// String renders the machine compactly.
func (m *Mealy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mealy machine: %d states, %d inputs\n", m.NumStates, len(m.Alphabet))
	for s := 0; s < m.NumStates; s++ {
		for _, a := range m.Alphabet {
			fmt.Fprintf(&b, "  q%d --%s/%s--> q%d\n", s, a, m.Out[s][a], m.Trans[s][a])
		}
	}
	return b.String()
}

// Walk runs an input word through the machine, returning the outputs.
func (m *Mealy) Walk(word []Symbol) []Output {
	out := make([]Output, 0, len(word))
	state := 0
	for _, sym := range word {
		out = append(out, m.Out[state][sym])
		state = m.Trans[state][sym]
	}
	return out
}

// Options tune the learner.
type Options struct {
	// MaxRounds bounds refinement rounds (default 16).
	MaxRounds int
	// TestDepth is the conformance-testing depth of the equivalence
	// approximation (default 3): all words of this length over the
	// alphabet are tried against the SUL.
	TestDepth int
}

func (o Options) maxRounds() int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	return 16
}

func (o Options) testDepth() int {
	if o.TestDepth > 0 {
		return o.TestDepth
	}
	return 3
}

// learner holds the observation table of L* for Mealy machines.
type learner struct {
	sul      SUL
	alphabet []Symbol
	opts     Options
	stats    Stats

	// prefixes S (access words) and suffixes E (distinguishing words).
	prefixes [][]Symbol
	suffixes [][]Symbol
	// table maps key(prefix)+"|"+key(suffix) -> output word of the
	// suffix run after the prefix.
	table map[string]string
	cache map[string][]Output
}

// Learn runs active automata learning against the SUL.
func Learn(sul SUL, alphabet []Symbol, opts Options) (*Mealy, Stats, error) {
	l := &learner{
		sul:      sul,
		alphabet: append([]Symbol{}, alphabet...),
		opts:     opts,
		table:    make(map[string]string),
		cache:    make(map[string][]Output),
	}
	l.prefixes = [][]Symbol{{}}
	for _, a := range l.alphabet {
		l.suffixes = append(l.suffixes, []Symbol{a})
	}

	for round := 0; round < opts.maxRounds(); round++ {
		l.stats.Rounds = round + 1
		if err := l.fill(); err != nil {
			return nil, l.stats, err
		}
		if err := l.close(); err != nil {
			return nil, l.stats, err
		}
		m := l.hypothesis()
		l.stats.EquivalenceQueries++
		cex, err := l.findCounterexample(m)
		if err != nil {
			return nil, l.stats, err
		}
		if cex == nil {
			return m, l.stats, nil
		}
		// Add every suffix of the counterexample as a distinguishing
		// word (Maler-Pnueli style counterexample handling).
		for i := 0; i < len(cex); i++ {
			l.addSuffix(cex[i:])
		}
	}
	return nil, l.stats, fmt.Errorf("learner: no fixpoint within %d rounds", opts.maxRounds())
}

func key(word []Symbol) string {
	parts := make([]string, len(word))
	for i, s := range word {
		parts[i] = string(s)
	}
	return strings.Join(parts, ".")
}

func (l *learner) addSuffix(word []Symbol) {
	k := key(word)
	for _, e := range l.suffixes {
		if key(e) == k {
			return
		}
	}
	l.suffixes = append(l.suffixes, append([]Symbol{}, word...))
}

func (l *learner) addPrefix(word []Symbol) {
	k := key(word)
	for _, p := range l.prefixes {
		if key(p) == k {
			return
		}
	}
	l.prefixes = append(l.prefixes, append([]Symbol{}, word...))
}

// query runs a membership query (with caching) and returns the output
// word.
func (l *learner) query(word []Symbol) ([]Output, error) {
	k := key(word)
	if out, ok := l.cache[k]; ok {
		return out, nil
	}
	l.stats.MembershipQueries++
	l.stats.Resets++
	if err := l.sul.Reset(); err != nil {
		return nil, fmt.Errorf("learner: reset: %w", err)
	}
	out := make([]Output, 0, len(word))
	for _, sym := range word {
		l.stats.InputSymbolsSent++
		o, err := l.sul.Step(sym)
		if err != nil {
			return nil, fmt.Errorf("learner: step %s: %w", sym, err)
		}
		out = append(out, o)
	}
	l.cache[k] = out
	return out, nil
}

// row computes the observation-table row of a prefix: the concatenated
// suffix outputs.
func (l *learner) row(prefix []Symbol) (string, error) {
	var parts []string
	for _, e := range l.suffixes {
		word := append(append([]Symbol{}, prefix...), e...)
		out, err := l.query(word)
		if err != nil {
			return "", err
		}
		// Only the suffix's outputs distinguish rows.
		tail := out[len(prefix):]
		strs := make([]string, len(tail))
		for i, o := range tail {
			strs[i] = string(o)
		}
		parts = append(parts, strings.Join(strs, ","))
	}
	return strings.Join(parts, ";"), nil
}

func (l *learner) fill() error {
	for _, p := range l.prefixes {
		if _, err := l.row(p); err != nil {
			return err
		}
	}
	return nil
}

// close ensures every one-step extension of a prefix has a matching row;
// new rows become new prefixes (states).
func (l *learner) close() error {
	for {
		rows := make(map[string]bool)
		for _, p := range l.prefixes {
			r, err := l.row(p)
			if err != nil {
				return err
			}
			rows[r] = true
		}
		added := false
		for _, p := range l.prefixes {
			for _, a := range l.alphabet {
				ext := append(append([]Symbol{}, p...), a)
				r, err := l.row(ext)
				if err != nil {
					return err
				}
				if !rows[r] {
					l.addPrefix(ext)
					rows[r] = true
					added = true
				}
			}
		}
		if !added {
			return nil
		}
	}
}

// hypothesis builds the Mealy machine from the closed table.
func (l *learner) hypothesis() *Mealy {
	// Map row signatures to state ids, keeping the empty prefix first.
	rowOf := func(p []Symbol) string {
		r, _ := l.row(p) // cached by now
		return r
	}
	stateID := map[string]int{}
	var reps [][]Symbol
	for _, p := range l.prefixes {
		r := rowOf(p)
		if _, ok := stateID[r]; !ok {
			stateID[r] = len(reps)
			reps = append(reps, p)
		}
	}
	m := &Mealy{Alphabet: l.alphabet, NumStates: len(reps)}
	m.Trans = make([]map[Symbol]int, len(reps))
	m.Out = make([]map[Symbol]Output, len(reps))
	for i, rep := range reps {
		m.Trans[i] = make(map[Symbol]int, len(l.alphabet))
		m.Out[i] = make(map[Symbol]Output, len(l.alphabet))
		for _, a := range l.alphabet {
			ext := append(append([]Symbol{}, rep...), a)
			m.Trans[i][a] = stateID[rowOf(ext)]
			out, _ := l.query(ext)
			m.Out[i][a] = out[len(out)-1]
		}
	}
	return m
}

// findCounterexample approximates the equivalence oracle by conformance
// testing: every word up to the test depth is run on both machine and
// SUL.
func (l *learner) findCounterexample(m *Mealy) ([]Symbol, error) {
	var words [][]Symbol
	var build func(prefix []Symbol, depth int)
	build = func(prefix []Symbol, depth int) {
		if depth == 0 {
			return
		}
		for _, a := range l.alphabet {
			w := append(append([]Symbol{}, prefix...), a)
			words = append(words, w)
			build(w, depth-1)
		}
	}
	build(nil, l.opts.testDepth())
	// Longer words first expose deeper divergence less often; keep
	// deterministic order for reproducibility.
	sort.Slice(words, func(i, j int) bool {
		if len(words[i]) != len(words[j]) {
			return len(words[i]) < len(words[j])
		}
		return key(words[i]) < key(words[j])
	})
	for _, w := range words {
		real, err := l.query(w)
		if err != nil {
			return nil, err
		}
		predicted := m.Walk(w)
		for i := range real {
			if real[i] != predicted[i] {
				return w, nil
			}
		}
	}
	return nil, nil
}
