package learner

import (
	"fmt"

	"prochecker/internal/nas"
	"prochecker/internal/security"
	"prochecker/internal/spec"
	"prochecker/internal/sqn"
	"prochecker/internal/ue"
)

// The abstract input alphabet of the UE SUL: each symbol is concretised
// by the mapper, which owns the network-side session cryptography —
// the standard mapper construction of TLS/SSH state learning.
const (
	InTriggerAttach     Symbol = "trigger_attach"
	InAuthFresh         Symbol = "auth_request_fresh"
	InAuthStale         Symbol = "auth_request_stale"
	InAuthBadMAC        Symbol = "auth_request_bad_mac"
	InSMC               Symbol = "security_mode_command"
	InAttachAccept      Symbol = "attach_accept"
	InGUTIRealloc       Symbol = "guti_reallocation_command"
	InReplayLast        Symbol = "replay_last_protected"
	InPlainGUTIRealloc  Symbol = "plain_guti_reallocation"
	InPlainIdentityReq  Symbol = "plain_identity_request"
	InPlainAttachReject Symbol = "plain_attach_reject"
)

// DefaultAlphabet is the input set used for the baseline comparison.
func DefaultAlphabet() []Symbol {
	return []Symbol{
		InTriggerAttach, InAuthFresh, InAuthStale, InAuthBadMAC,
		InSMC, InAttachAccept, InGUTIRealloc, InReplayLast,
		InPlainGUTIRealloc, InPlainIdentityReq, InPlainAttachReject,
	}
}

// ueSUL drives a live UE implementation as a black box.
type ueSUL struct {
	profile ue.Profile
	imsi    string
	k       security.Key
	caps    uint8

	dev *ue.UE
	// Network-side mirror the mapper maintains.
	gen        *sqn.Generator
	ctx        nas.Context
	pending    *security.Hierarchy
	challenges []nas.Packet // minted challenges, oldest first
	lastProt   *nas.Packet  // last protected packet delivered
	gutiSeq    uint32
	randSeq    byte
}

// NewUESUL builds a black-box harness around a UE implementation profile.
func NewUESUL(profile ue.Profile) SUL {
	return &ueSUL{
		profile: profile,
		imsi:    "001010123456789",
		k:       security.KeyFromBytes([]byte("sul-subscriber")),
		caps:    0x7,
	}
}

// Reset implements SUL.
func (s *ueSUL) Reset() error {
	dev, err := ue.New(ue.Config{Profile: s.profile, IMSI: s.imsi, K: s.k, UECaps: s.caps})
	if err != nil {
		return fmt.Errorf("learner: building UE: %w", err)
	}
	gen, err := sqn.NewGenerator(sqn.DefaultConfig())
	if err != nil {
		return err
	}
	s.dev = dev
	s.gen = gen
	s.ctx = nas.Context{}
	s.pending = nil
	s.challenges = nil
	s.lastProt = nil
	s.gutiSeq = 0x9000
	s.randSeq = 0
	return nil
}

// Step implements SUL.
func (s *ueSUL) Step(sym Symbol) (Output, error) {
	if s.dev == nil {
		return NoOutput, fmt.Errorf("learner: Step before Reset")
	}
	switch sym {
	case InTriggerAttach:
		p, err := s.dev.StartAttach()
		if err != nil {
			return NoOutput, nil // blocked or already registered: silence
		}
		return s.labelPackets([]nas.Packet{p}), nil
	case InAuthFresh:
		pkt, err := s.mintChallenge(s.gen.Next())
		if err != nil {
			return NoOutput, err
		}
		s.challenges = append(s.challenges, pkt)
		return s.deliver(pkt)
	case InAuthStale:
		if len(s.challenges) == 0 {
			return NoOutput, nil
		}
		return s.deliver(s.challenges[0])
	case InAuthBadMAC:
		var pkt nas.Packet
		bogus := &nas.AuthRequest{}
		bogus.RAND[0] = 0xAA
		bogus.AUTN[0] = 0xBB
		pkt, err := (&nas.Context{}).Seal(bogus, nas.HeaderPlain, nas.DirDownlink)
		if err != nil {
			return NoOutput, err
		}
		return s.deliver(pkt)
	case InSMC:
		if s.pending == nil {
			return NoOutput, nil
		}
		tmp := nas.Context{Keys: *s.pending, Active: true, DLCount: s.ctx.DLCount}
		pkt, err := tmp.Seal(&nas.SecurityModeCommand{IntAlg: 2, EncAlg: 2, ReplayedCaps: s.caps}, nas.HeaderIntegrity, nas.DirDownlink)
		if err != nil {
			return NoOutput, err
		}
		out, err := s.deliver(pkt)
		if err != nil {
			return out, err
		}
		if out == Output(spec.SecurityModeComplet) {
			// The UE activated the context: mirror it.
			s.ctx = nas.Context{Keys: *s.pending, Active: true, DLCount: tmp.DLCount}
			s.pending = nil
		}
		return out, nil
	case InAttachAccept:
		if !s.ctx.Active {
			return NoOutput, nil
		}
		s.gutiSeq++
		pkt, err := s.ctx.Seal(&nas.AttachAccept{GUTI: s.gutiSeq, TAC: 1}, nas.HeaderIntegrityCiphered, nas.DirDownlink)
		if err != nil {
			return NoOutput, err
		}
		return s.deliver(pkt)
	case InGUTIRealloc:
		if !s.ctx.Active {
			return NoOutput, nil
		}
		s.gutiSeq++
		pkt, err := s.ctx.Seal(&nas.GUTIReallocationCommand{GUTI: s.gutiSeq}, nas.HeaderIntegrityCiphered, nas.DirDownlink)
		if err != nil {
			return NoOutput, err
		}
		return s.deliver(pkt)
	case InReplayLast:
		if s.lastProt == nil {
			return NoOutput, nil
		}
		replay := *s.lastProt
		out, err := s.replayDeliver(replay)
		return out, err
	case InPlainGUTIRealloc:
		pkt, err := (&nas.Context{}).Seal(&nas.GUTIReallocationCommand{GUTI: 0x6666}, nas.HeaderPlain, nas.DirDownlink)
		if err != nil {
			return NoOutput, err
		}
		return s.deliver(pkt)
	case InPlainIdentityReq:
		pkt, err := (&nas.Context{}).Seal(&nas.IdentityRequest{IDType: nas.IDTypeIMSI}, nas.HeaderPlain, nas.DirDownlink)
		if err != nil {
			return NoOutput, err
		}
		return s.deliver(pkt)
	case InPlainAttachReject:
		pkt, err := (&nas.Context{}).Seal(&nas.AttachReject{Cause: nas.CauseIllegalUE}, nas.HeaderPlain, nas.DirDownlink)
		if err != nil {
			return NoOutput, err
		}
		return s.deliver(pkt)
	default:
		return NoOutput, fmt.Errorf("learner: unknown symbol %q", sym)
	}
}

// mintChallenge builds a genuine authentication_request for the given
// SQN, remembering the derived hierarchy as pending keys.
func (s *ueSUL) mintChallenge(seq uint64) (nas.Packet, error) {
	s.randSeq++
	var rand [security.RANDSize]byte
	rand[0] = s.randSeq
	v := security.GenerateVector(s.k, rand, seq)
	h := security.DeriveHierarchy(s.k, rand[:])
	s.pending = &h
	return (&nas.Context{}).Seal(&nas.AuthRequest{RAND: v.RAND, AUTN: v.AUTN}, nas.HeaderPlain, nas.DirDownlink)
}

// deliver hands a packet to the UE and labels its response.
func (s *ueSUL) deliver(pkt nas.Packet) (Output, error) {
	if pkt.Header != nas.HeaderPlain {
		cp := pkt
		s.lastProt = &cp
	}
	return s.labelPackets(s.dev.HandleDownlink(pkt)), nil
}

// replayDeliver is deliver without updating lastProt (a replay does not
// become "the last genuine message").
func (s *ueSUL) replayDeliver(pkt nas.Packet) (Output, error) {
	return s.labelPackets(s.dev.HandleDownlink(pkt)), nil
}

// labelPackets classifies the UE's replies the way a black-box harness
// can: plain messages by type, protected ones decoded with the mirror
// context when possible.
func (s *ueSUL) labelPackets(replies []nas.Packet) Output {
	if len(replies) == 0 {
		return NoOutput
	}
	p := replies[0]
	if p.Header == nas.HeaderPlain {
		if m, err := nas.Unmarshal(p.Payload); err == nil {
			return Output(m.Name())
		}
		return Output("plain")
	}
	// Try the active mirror context, then the pending keys.
	for _, ctx := range []*nas.Context{&s.ctx, s.pendingCtx()} {
		if ctx == nil || !ctx.Active {
			continue
		}
		if m, _, err := ctx.Open(p, nas.DirUplink); err == nil {
			return Output(m.Name())
		}
	}
	return Output("protected")
}

func (s *ueSUL) pendingCtx() *nas.Context {
	if s.pending == nil {
		return nil
	}
	return &nas.Context{Keys: *s.pending, Active: true}
}
