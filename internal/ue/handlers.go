package ue

import (
	"prochecker/internal/nas"
	"prochecker/internal/spec"
	"prochecker/internal/usim"
)

// HandleDownlink is the UE's air_msg_handler: it takes one downlink NAS
// packet, routes it to the corresponding incoming-message handler, and
// returns the uplink packets sent in response (empty for null_action).
func (u *UE) HandleDownlink(p nas.Packet) []nas.Packet {
	u.rec.EnterFunc("air_msg_handler")
	defer u.rec.ExitFunc("air_msg_handler")

	msg, insp, viaPending, err := u.open(p)
	if err != nil {
		u.rec.Note("undecodable packet discarded: " + err.Error())
		return nil
	}
	switch m := msg.(type) {
	case *nas.AuthRequest:
		return u.recvAuthRequest(m, insp)
	case *nas.SecurityModeCommand:
		return u.recvSecurityModeCommand(m, insp, viaPending)
	case *nas.AttachAccept:
		return u.recvAttachAccept(m, insp)
	case *nas.AttachReject:
		return u.recvAttachReject(m, insp)
	case *nas.AuthReject:
		return u.recvAuthReject(m, insp)
	case *nas.IdentityRequest:
		return u.recvIdentityRequest(m, insp)
	case *nas.GUTIReallocationCommand:
		return u.recvGUTIRealloc(m, insp)
	case *nas.TAUAccept:
		return u.recvTAUAccept(m, insp)
	case *nas.TAUReject:
		return u.recvTAUReject(m, insp)
	case *nas.DetachRequestNW:
		return u.recvDetachRequest(m, insp)
	case *nas.DetachAccept:
		return u.recvDetachAccept(m, insp)
	case *nas.ServiceAccept:
		return u.recvServiceAccept(m, insp)
	case *nas.ServiceReject:
		return u.recvServiceReject(m, insp)
	case *nas.PagingRequest:
		return u.recvPaging(m, insp)
	case *nas.EMMInformation:
		return u.recvEMMInformation(m, insp)
	case *nas.ActivateDefaultBearerRequest:
		return u.recvActivateDefaultBearer(m, insp)
	case *nas.DeactivateBearerRequest:
		return u.recvDeactivateBearer(m, insp)
	case *nas.ESMInformationRequest:
		return u.recvESMInformationRequest(m, insp)
	case *nas.PDNConnectivityReject:
		return u.recvPDNConnectivityReject(m, insp)
	default:
		u.rec.Note("unhandled downlink message " + string(msg.Name()))
		return nil
	}
}

// open decodes a packet: plain packets with a throwaway context, protected
// packets with the active context, falling back to the pending (post-AKA,
// pre-SMC) keys — the path a fresh security_mode_command takes.
func (u *UE) open(p nas.Packet) (nas.Message, nas.Inspection, bool, error) {
	if p.Header == nas.HeaderPlain {
		msg, insp, err := (&nas.Context{}).Open(p, nas.DirDownlink)
		return msg, insp, false, err
	}
	if u.ctx.Active {
		msg, insp, err := u.ctx.Open(p, nas.DirDownlink)
		if err == nil && (insp.MACValid || u.pending == nil) {
			return msg, insp, false, nil
		}
		// MAC failed under the active context (or undecodable) but new
		// keys are pending: a security_mode_command after re-auth is
		// protected with the *new* keys, so retry below.
		if u.pending == nil {
			return msg, insp, false, err
		}
	}
	if u.pending != nil {
		tmp := nas.Context{Keys: *u.pending, Active: true}
		msg, insp, err := tmp.Open(p, nas.DirDownlink)
		return msg, insp, true, err
	}
	return nil, nas.Inspection{}, false, errProtectedNoCtx
}

var errProtectedNoCtx = errNoCtx{}

type errNoCtx struct{}

func (errNoCtx) Error() string {
	return "ue: protected packet received without active or pending security context"
}

// plainAllowedPreCtx lists messages a UE processes unprotected before any
// security context exists.
func plainAllowedPreCtx(name spec.MessageName) bool {
	switch name {
	case spec.AuthRequest, spec.AuthReject, spec.AttachReject,
		spec.IdentityRequest, spec.TAUReject, spec.ServiceReject,
		spec.Paging, spec.DetachRequestNW, spec.AttachAccept:
		// attach_accept plain pre-ctx is processed (and then fails the
		// security checks inside the handler) — the UE cannot know yet
		// that protection was required.
		return true
	default:
		return false
	}
}

// plainAllowedPostCtx lists messages TS 24.301 4.4.4.2 permits a UE to
// process even unprotected after security activation — the
// standards-level weakness several prior attacks (downgrade, numb,
// stealthy kick-off) build on.
func plainAllowedPostCtx(name spec.MessageName) bool {
	switch name {
	case spec.AuthRequest, spec.AuthReject, spec.AttachReject,
		spec.TAUReject, spec.ServiceReject, spec.Paging,
		spec.DetachRequestNW, spec.IdentityRequest:
		return true
	default:
		return false
	}
}

// admit applies the per-profile acceptance policy to a received packet and
// logs the condition variables a real implementation would compute. It
// commits the NAS COUNT when it accepts a protected packet.
func (u *UE) admit(name spec.MessageName, insp nas.Inspection) bool {
	u.rec.LocalBool(string(spec.CondPlainHeader), insp.PlainHeader)
	if insp.PlainHeader {
		if !u.ctx.Active {
			return plainAllowedPreCtx(name)
		}
		if u.quirks.AcceptPlainAfterCtx {
			// I2 (OAI): all protected messages accepted in plain text
			// after security establishment.
			return true
		}
		return plainAllowedPostCtx(name)
	}
	u.rec.LocalBool(string(spec.CondMACValid), insp.MACValid)
	u.rec.LocalBool(string(spec.CondCountFresh), insp.CountFresh)
	if !insp.MACValid {
		return false
	}
	if insp.CountFresh {
		u.ctx.Accept(insp, nas.DirDownlink)
		return true
	}
	// Stale COUNT: a replay. Conformant stacks discard; the open-source
	// quirks of I1 accept.
	switch {
	case u.quirks.AcceptAnyReplay:
		if u.quirks.ResetCountOnReplay {
			u.ctx.ResetReceiveCount(insp, nas.DirDownlink)
			u.ctx.Accept(insp, nas.DirDownlink)
		}
		return true
	case u.quirks.AcceptLastReplay && insp.Count+1 == u.ctx.DLCount:
		return true
	default:
		return false
	}
}

// enter/exit bracket one incoming-message handler with the global dumps
// the instrumentation inserts.
func (u *UE) enter(name spec.MessageName) string {
	sig := u.style.Recv(name)
	u.rec.EnterFunc(sig)
	u.logGlobals()
	return sig
}

func (u *UE) recvAuthRequest(m *nas.AuthRequest, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.AuthRequest)
	defer u.rec.ExitFunc(sig)
	if !u.admit(spec.AuthRequest, insp) {
		return nil
	}
	res := u.usim.Challenge(m.RAND, m.AUTN)
	u.rec.LocalBool(string(spec.CondMACValid), res.Outcome != usim.ChallengeMACFailure)
	u.rec.LocalBool(string(spec.CondSQNInRange), res.Outcome == usim.ChallengeOK)
	switch res.Outcome {
	case usim.ChallengeMACFailure:
		return u.respond(nil, &nas.AuthMACFailure{}, nas.HeaderPlain)
	case usim.ChallengeSyncFailure:
		if u.quirks.AcceptSameSQN && u.hasLastSQN && res.SQN == u.lastSQN {
			// I3 (srsUE): the same sequence number is accepted again and
			// the counters are reset.
			forced := u.usim.ChallengeIgnoringSQN(m.RAND, m.AUTN)
			if forced.Outcome == usim.ChallengeOK {
				u.rec.Note("quirk: accepting replayed SQN, resetting counters")
				return u.acceptChallenge(forced)
			}
		}
		return u.respond(nil, &nas.AuthSyncFailure{AUTS: res.AUTS}, nas.HeaderPlain)
	default:
		return u.acceptChallenge(res)
	}
}

// acceptChallenge commits a successful AKA run: remembers the SQN, stages
// the new key hierarchy, and — when a context was already active —
// replaces the session keys immediately, which is the key-desynchronising
// effect P1 exploits with a stale challenge.
func (u *UE) acceptChallenge(res usim.ChallengeResult) []nas.Packet {
	u.lastSQN = res.SQN
	u.hasLastSQN = true
	keys := res.Keys
	u.pending = &keys
	if u.ctx.Active {
		u.ctx.Keys = keys
		u.ctx.ULCount = 0
		u.ctx.DLCount = 0
	}
	return u.respond(nil, &nas.AuthResponse{RES: res.RES}, nas.HeaderPlain)
}

func (u *UE) recvSecurityModeCommand(m *nas.SecurityModeCommand, insp nas.Inspection, viaPending bool) []nas.Packet {
	sig := u.enter(spec.SecurityModeCommand)
	defer u.rec.ExitFunc(sig)
	u.rec.LocalBool(string(spec.CondPlainHeader), insp.PlainHeader)
	u.rec.LocalBool(string(spec.CondMACValid), insp.MACValid)
	if insp.PlainHeader || !insp.MACValid {
		return nil // discard: SMC must arrive integrity protected
	}
	if viaPending {
		// Fresh SMC protected with the pending (post-AKA) keys: its COUNT
		// starts the new context and is fresh by construction.
		u.rec.LocalBool(string(spec.CondCountFresh), true)
		capsMatch := m.ReplayedCaps == u.uecaps
		u.rec.LocalBool("caps_match", capsMatch)
		if !capsMatch {
			return u.respond(nil, &nas.SecurityModeReject{Cause: nas.CauseSecurityModeReject}, nas.HeaderPlain)
		}
		u.ctx = nas.Context{
			Keys:    *u.pending,
			Active:  true,
			DLCount: insp.Count + 1,
			IntAlg:  m.IntAlg,
			EncAlg:  m.EncAlg,
		}
		u.pending = nil
		return u.respond(nil, &nas.SecurityModeComplete{}, nas.HeaderIntegrityCiphered)
	}
	// SMC under the active context.
	u.rec.LocalBool(string(spec.CondCountFresh), insp.CountFresh)
	if insp.CountFresh {
		u.ctx.Accept(insp, nas.DirDownlink)
		return u.respond(nil, &nas.SecurityModeComplete{}, nas.HeaderIntegrityCiphered)
	}
	if u.quirks.AcceptReplayedSMC {
		// I6: a replayed security_mode_command is accepted and answered,
		// giving the adversary a linkable response.
		u.rec.Note("quirk: answering replayed security_mode_command")
		return u.respond(nil, &nas.SecurityModeComplete{}, nas.HeaderIntegrityCiphered)
	}
	return nil
}

func (u *UE) recvAttachAccept(m *nas.AttachAccept, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.AttachAccept)
	defer u.rec.ExitFunc(sig)
	if !u.admit(spec.AttachAccept, insp) {
		return nil
	}
	if !insp.PlainHeader || u.quirks.AcceptPlainAfterCtx && u.ctx.Active {
		u.guti = m.GUTI
		u.setState(spec.EMMRegistered)
		return u.respond(nil, &nas.AttachComplete{}, u.protectedHeader())
	}
	// A plain attach_accept without protection: processed but failing the
	// security checks; no transition (null_action).
	return nil
}

// clearBearers drops the session-management state; bearer contexts do
// not outlive the EMM registration.
func (u *UE) clearBearers() {
	u.bearerID = 0
	if u.esmState != spec.BearerInactive {
		u.setESMState(spec.BearerInactive)
	}
}

func (u *UE) recvAttachReject(m *nas.AttachReject, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.AttachReject)
	defer u.rec.ExitFunc(sig)
	if !u.admit(spec.AttachReject, insp) {
		return nil
	}
	u.rec.LocalInt("emm_cause", int(m.Cause))
	if u.quirks.KeepCtxAfterReject {
		// I4 (srsUE): the security context survives the reject, so a
		// later attach can skip authentication and SMC entirely.
		u.rec.Note("quirk: retaining security context after reject")
	} else {
		u.ctx = nas.Context{}
		u.pending = nil
		u.guti = 0
	}
	u.clearBearers()
	u.setState(spec.EMMDeregistered)
	return nil
}

func (u *UE) recvAuthReject(_ *nas.AuthReject, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.AuthReject)
	defer u.rec.ExitFunc(sig)
	if !u.admit(spec.AuthReject, insp) {
		return nil
	}
	// TS 24.301: consider the USIM invalid; no reattach until reboot.
	u.blocked = true
	u.ctx = nas.Context{}
	u.pending = nil
	u.guti = 0
	u.clearBearers()
	u.setState(spec.EMMDeregistered)
	return nil
}

func (u *UE) recvIdentityRequest(m *nas.IdentityRequest, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.IdentityRequest)
	defer u.rec.ExitFunc(sig)
	if !u.admit(spec.IdentityRequest, insp) {
		return nil
	}
	u.rec.LocalInt("id_type", int(m.IDType))
	switch {
	case !u.ctx.Active:
		// Identification before security establishment is
		// standards-sanctioned (and the classic IMSI-catcher surface).
		return u.respond(nil, u.identity(m.IDType), nas.HeaderPlain)
	case insp.PlainHeader && u.quirks.LeakIMSIAfterCtx:
		// I5 (OAI): plaintext IMSI disclosure even after the security
		// context is established.
		u.rec.Note("quirk: leaking IMSI in plaintext after security establishment")
		return u.respond(nil, u.identity(m.IDType), nas.HeaderPlain)
	case !insp.PlainHeader:
		return u.respond(nil, u.identity(m.IDType), nas.HeaderIntegrityCiphered)
	default:
		return nil
	}
}

func (u *UE) identity(idType uint8) *nas.IdentityResponse {
	resp := &nas.IdentityResponse{IDType: idType}
	switch idType {
	case nas.IDTypeGUTI:
		resp.GUTI = u.guti
		if u.guti == 0 {
			resp.IMSI = u.imsi // no GUTI yet: fall back to IMSI
			resp.IDType = nas.IDTypeIMSI
		}
	default:
		resp.IMSI = u.imsi
	}
	return resp
}

func (u *UE) recvGUTIRealloc(m *nas.GUTIReallocationCommand, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.GUTIRealloCommand)
	defer u.rec.ExitFunc(sig)
	if !u.admit(spec.GUTIRealloCommand, insp) {
		return nil
	}
	if insp.PlainHeader && !u.quirks.AcceptPlainAfterCtx {
		return nil
	}
	u.guti = m.GUTI
	return u.respond(nil, &nas.GUTIReallocationComplete{}, u.protectedHeader())
}

func (u *UE) recvTAUAccept(m *nas.TAUAccept, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.TAUAccept)
	defer u.rec.ExitFunc(sig)
	if !u.admit(spec.TAUAccept, insp) {
		return nil
	}
	if !u.tauPending {
		return nil
	}
	u.tauPending = false
	var replies []nas.Packet
	if m.GUTI != 0 {
		u.guti = m.GUTI
		replies = u.respond(replies, &nas.TAUComplete{}, u.protectedHeader())
	}
	u.setState(spec.EMMRegistered)
	return replies
}

func (u *UE) recvTAUReject(m *nas.TAUReject, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.TAUReject)
	defer u.rec.ExitFunc(sig)
	if !u.admit(spec.TAUReject, insp) {
		return nil
	}
	if !u.tauPending {
		// No TAU in progress: a tau_reject is only meaningful while the
		// procedure runs.
		return nil
	}
	u.rec.LocalInt("emm_cause", int(m.Cause))
	u.tauPending = false
	// Severe causes force the UE to deregister — the downgrade /
	// denial-of-service surface of tau_reject (Table I prior attacks).
	switch m.Cause {
	case nas.CauseIllegalUE, nas.CauseEPSNotAllowed, nas.CausePLMNNotAllowed, nas.CauseTANotAllowed:
		u.ctx = nas.Context{}
		u.pending = nil
		u.guti = 0
		u.clearBearers()
		u.setState(spec.EMMDeregistered)
	default:
		u.setState(spec.EMMRegistered)
	}
	return nil
}

func (u *UE) recvDetachRequest(m *nas.DetachRequestNW, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.DetachRequestNW)
	defer u.rec.ExitFunc(sig)
	if !u.admit(spec.DetachRequestNW, insp) {
		return nil
	}
	u.rec.LocalInt("detach_type", int(m.Type))
	replies := u.respond(nil, &nas.DetachAccept{}, u.protectedHeader())
	if !u.quirks.KeepCtxAfterReject {
		u.ctx = nas.Context{}
		u.pending = nil
	}
	u.guti = 0
	if m.Type == nas.DetachReattach {
		// TS 24.301 sub-state: deregistered but an attach is required.
		// The automated extraction surfaces this as the intermediate
		// state of Figure 7(ii)'s refinement example.
		u.clearBearers()
		u.setState(spec.EMMDeregisteredAttachNeeded)
	} else {
		u.clearBearers()
		u.setState(spec.EMMDeregistered)
	}
	return replies
}

func (u *UE) recvDetachAccept(_ *nas.DetachAccept, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.DetachAccept)
	defer u.rec.ExitFunc(sig)
	if u.state != spec.EMMDeregInitiated {
		return nil
	}
	if !insp.PlainHeader && !insp.MACValid {
		return nil
	}
	u.ctx = nas.Context{}
	u.pending = nil
	u.guti = 0
	u.clearBearers()
	u.setState(spec.EMMDeregistered)
	return nil
}

func (u *UE) recvServiceAccept(_ *nas.ServiceAccept, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.ServiceAccept)
	defer u.rec.ExitFunc(sig)
	if !u.admit(spec.ServiceAccept, insp) {
		return nil
	}
	if !u.serviceReqPending {
		return nil
	}
	u.serviceReqPending = false
	// Sub-state of EMM_REGISTERED: user-plane service is up.
	u.setState(spec.EMMRegisteredNormalService)
	return nil
}

func (u *UE) recvServiceReject(m *nas.ServiceReject, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.ServiceReject)
	defer u.rec.ExitFunc(sig)
	if !u.admit(spec.ServiceReject, insp) {
		return nil
	}
	if !u.serviceReqPending {
		return nil
	}
	u.rec.LocalInt("emm_cause", int(m.Cause))
	u.serviceReqPending = false
	switch m.Cause {
	case nas.CauseIllegalUE, nas.CauseEPSNotAllowed:
		u.ctx = nas.Context{}
		u.pending = nil
		u.guti = 0
		u.clearBearers()
		u.setState(spec.EMMDeregistered)
	default:
		u.setState(spec.EMMRegistered)
	}
	return nil
}

func (u *UE) recvPaging(m *nas.PagingRequest, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.Paging)
	defer u.rec.ExitFunc(sig)
	if !u.admit(spec.Paging, insp) {
		return nil
	}
	if !u.registered() {
		return nil
	}
	matched := false
	switch m.IDType {
	case nas.IDTypeGUTI:
		matched = m.GUTI != 0 && m.GUTI == u.guti
	case nas.IDTypeIMSI:
		// Paging by IMSI is answered too — the standards-level surface of
		// the IMSI-to-GUTI linkability attack.
		matched = m.IMSI == u.imsi
	}
	u.rec.LocalBool("paging_id_match", matched)
	if !matched {
		return nil
	}
	u.setState(spec.EMMServiceReqInitiated)
	u.serviceReqPending = true
	return u.respond(nil, &nas.ServiceRequest{GUTI: u.guti}, u.protectedHeader())
}

func (u *UE) recvEMMInformation(_ *nas.EMMInformation, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.EMMInformation)
	defer u.rec.ExitFunc(sig)
	u.admit(spec.EMMInformation, insp)
	return nil
}
