package ue_test

import (
	"testing"

	"prochecker/internal/conformance"
	"prochecker/internal/nas"
	"prochecker/internal/spec"
	"prochecker/internal/ue"
)

func attachAndConnect(t *testing.T, p ue.Profile) *conformance.Env {
	t.Helper()
	env := newEnv(t, p)
	attach(t, env)
	req, err := env.UE.StartPDNConnectivity("internet.example")
	if err != nil {
		t.Fatalf("StartPDNConnectivity: %v", err)
	}
	env.SendUplink(req)
	return env
}

func TestPDNConnectivityLifecycle(t *testing.T) {
	env := attachAndConnect(t, ue.ProfileConformant)
	if got := env.UE.ESMState(); got != spec.BearerActive {
		t.Fatalf("ESM state = %s, want active", got)
	}
	if env.UE.BearerID() == 0 {
		t.Error("no bearer ID recorded")
	}
	if !env.MME.BearerActive() {
		t.Error("MME does not record the bearer")
	}
	deact, err := env.MME.StartBearerDeactivation()
	if err != nil {
		t.Fatalf("StartBearerDeactivation: %v", err)
	}
	env.SendDownlink(deact)
	if got := env.UE.ESMState(); got != spec.BearerInactive {
		t.Errorf("ESM state after deactivation = %s", got)
	}
	if env.MME.BearerActive() {
		t.Error("MME still records the bearer")
	}
}

func TestPDNConnectivityRequiresRegistration(t *testing.T) {
	env := newEnv(t, ue.ProfileConformant)
	if _, err := env.UE.StartPDNConnectivity("internet.example"); err == nil {
		t.Error("PDN connectivity allowed before attach")
	}
}

func TestPDNConnectivityBusyBearer(t *testing.T) {
	env := attachAndConnect(t, ue.ProfileConformant)
	if _, err := env.UE.StartPDNConnectivity("second.example"); err == nil {
		t.Error("second PDN connectivity allowed with an active bearer")
	}
}

func TestPDNConnectivityRejected(t *testing.T) {
	env := newEnv(t, ue.ProfileConformant)
	attach(t, env)
	req, err := env.UE.StartPDNConnectivity("blocked.example")
	if err != nil {
		t.Fatalf("StartPDNConnectivity: %v", err)
	}
	env.SendUplink(req)
	if got := env.UE.ESMState(); got != spec.BearerInactive {
		t.Errorf("ESM state = %s, want inactive after reject", got)
	}
}

func TestMalformedBearerActivationRejected(t *testing.T) {
	// A bearer activation with BearerID 0 is malformed; the UE answers
	// activate_default_eps_bearer_context_reject.
	env := newEnv(t, ue.ProfileConformant)
	attach(t, env)
	// Build the packet under the session keys (mirroring the network's
	// context) so only the malformed field is under test.
	ctx := &nas.Context{Keys: env.UE.Keys(), Active: true, DLCount: env.UE.DownlinkCount()}
	pkt, err := ctx.Seal(&nas.ActivateDefaultBearerRequest{PTI: 1, BearerID: 0, APN: "x"}, nas.HeaderIntegrityCiphered, nas.DirDownlink)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	replies := env.UE.HandleDownlink(pkt)
	if len(replies) != 1 {
		t.Fatalf("replies = %d, want 1 reject", len(replies))
	}
	if got := env.UE.ESMState(); got == spec.BearerActive {
		t.Error("malformed activation activated a bearer")
	}
}

func TestDeactivateWrongBearerIgnored(t *testing.T) {
	env := attachAndConnect(t, ue.ProfileConformant)
	ctx := &nas.Context{Keys: env.UE.Keys(), Active: true, DLCount: env.UE.DownlinkCount()}
	pkt, err := ctx.Seal(&nas.DeactivateBearerRequest{BearerID: 99}, nas.HeaderIntegrityCiphered, nas.DirDownlink)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	env.UE.HandleDownlink(pkt)
	if got := env.UE.ESMState(); got != spec.BearerActive {
		t.Errorf("wrong-bearer deactivation changed state to %s", got)
	}
}

func TestESMInformationAnswered(t *testing.T) {
	env := attachAndConnect(t, ue.ProfileConformant)
	req, err := env.MME.SendESMInformationRequest(7)
	if err != nil {
		t.Fatalf("SendESMInformationRequest: %v", err)
	}
	replies := env.UE.HandleDownlink(req)
	if len(replies) != 1 {
		t.Fatalf("replies = %d, want 1", len(replies))
	}
}

func TestPlainESMSignallingIgnoredByConformant(t *testing.T) {
	env := newEnv(t, ue.ProfileConformant)
	attach(t, env)
	pkt, err := (&nas.Context{}).Seal(&nas.ActivateDefaultBearerRequest{PTI: 1, BearerID: 5, APN: "evil"}, nas.HeaderPlain, nas.DirDownlink)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if replies := env.UE.HandleDownlink(pkt); len(replies) != 0 {
		t.Error("plain bearer activation was answered")
	}
	if env.UE.ESMState() != spec.BearerInactive {
		t.Error("plain bearer activation changed ESM state")
	}
}

func TestPlainESMAcceptedByOAIQuirk(t *testing.T) {
	// I2's reach extends to the ESM layer on OAI: plaintext session
	// management is processed after security establishment.
	env := newEnv(t, ue.ProfileOAI)
	attach(t, env)
	pkt, err := (&nas.Context{}).Seal(&nas.ActivateDefaultBearerRequest{PTI: 1, BearerID: 5, APN: "evil"}, nas.HeaderPlain, nas.DirDownlink)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if replies := env.UE.HandleDownlink(pkt); len(replies) == 0 {
		t.Error("OAI quirk did not accept plain bearer activation")
	}
	if env.UE.ESMState() != spec.BearerActive {
		t.Error("OAI quirk did not activate the bearer")
	}
}

func TestDetachClearsBearer(t *testing.T) {
	env := attachAndConnect(t, ue.ProfileConformant)
	req, err := env.MME.StartDetach(nas.DetachEPS)
	if err != nil {
		t.Fatalf("StartDetach: %v", err)
	}
	env.SendDownlink(req)
	if got := env.UE.ESMState(); got != spec.BearerInactive {
		t.Errorf("ESM state after detach = %s, want inactive", got)
	}
	if env.UE.BearerID() != 0 {
		t.Error("bearer ID survives detach")
	}
}

func TestPowerCycleClearsBearer(t *testing.T) {
	env := attachAndConnect(t, ue.ProfileConformant)
	env.UE.PowerCycle(false)
	if got := env.UE.ESMState(); got != spec.BearerInactive {
		t.Errorf("ESM state after power cycle = %s, want inactive", got)
	}
}

func TestReattachResetsMMEBearer(t *testing.T) {
	env := attachAndConnect(t, ue.ProfileConformant)
	// Reject path (no detach): the UE loses its state.
	rej, err := (&nas.Context{}).Seal(&nas.AttachReject{Cause: nas.CauseIllegalUE}, nas.HeaderPlain, nas.DirDownlink)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	env.UE.HandleDownlink(rej)
	if err := env.Attach(); err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	if env.MME.BearerActive() {
		t.Error("MME kept the dead session's bearer across re-attach")
	}
}
