package ue_test

import (
	"testing"

	"prochecker/internal/channel"
	"prochecker/internal/conformance"
	"prochecker/internal/nas"
	"prochecker/internal/security"
	"prochecker/internal/spec"
	"prochecker/internal/trace"
	"prochecker/internal/ue"
)

func newEnv(t *testing.T, p ue.Profile) *conformance.Env {
	t.Helper()
	env, err := conformance.NewEnv(p, nil)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return env
}

func attach(t *testing.T, env *conformance.Env) {
	t.Helper()
	if err := env.Attach(); err != nil {
		t.Fatalf("Attach: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := ue.New(ue.Config{}); err == nil {
		t.Error("missing IMSI accepted")
	}
	u, err := ue.New(ue.Config{IMSI: "1"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if u.Profile() != ue.ProfileConformant {
		t.Errorf("default profile = %v, want conformant", u.Profile())
	}
	if u.State() != spec.EMMDeregistered {
		t.Errorf("initial state = %v", u.State())
	}
}

func TestQuirksMatchTableI(t *testing.T) {
	tests := []struct {
		profile ue.Profile
		want    ue.Quirks
	}{
		{ue.ProfileConformant, ue.Quirks{}},
		{ue.ProfileSRS, ue.Quirks{
			AcceptAnyReplay: true, ResetCountOnReplay: true,
			AcceptSameSQN: true, KeepCtxAfterReject: true, AcceptReplayedSMC: true,
		}},
		{ue.ProfileOAI, ue.Quirks{
			AcceptLastReplay: true, AcceptPlainAfterCtx: true,
			LeakIMSIAfterCtx: true, AcceptReplayedSMC: true,
		}},
	}
	for _, tt := range tests {
		if got := ue.QuirksFor(tt.profile); got != tt.want {
			t.Errorf("QuirksFor(%v) = %+v, want %+v", tt.profile, got, tt.want)
		}
	}
}

func TestSignatureStylesPerProfile(t *testing.T) {
	if got := ue.StyleFor(ue.ProfileSRS).Recv(spec.AttachAccept); got != "parse_attach_accept" {
		t.Errorf("srs recv signature = %q", got)
	}
	if got := ue.StyleFor(ue.ProfileOAI).Send(spec.AttachComplete); got != "emm_send_attach_complete" {
		t.Errorf("oai send signature = %q", got)
	}
	if got := ue.StyleFor(ue.ProfileConformant).Recv(spec.AuthRequest); got != "recv_authentication_request" {
		t.Errorf("closed recv signature = %q", got)
	}
}

func TestStartAttachWhenRegisteredFails(t *testing.T) {
	env := newEnv(t, ue.ProfileConformant)
	attach(t, env)
	if _, err := env.UE.StartAttach(); err == nil {
		t.Error("StartAttach while registered succeeded")
	}
}

func TestStartTAURequiresRegistered(t *testing.T) {
	env := newEnv(t, ue.ProfileConformant)
	if _, err := env.UE.StartTAU(1); err == nil {
		t.Error("StartTAU while deregistered succeeded")
	}
}

func TestPlainAttachAcceptIgnored(t *testing.T) {
	// An unprotected attach_accept must never register the UE.
	env := newEnv(t, ue.ProfileConformant)
	req, err := env.UE.StartAttach()
	if err != nil {
		t.Fatalf("StartAttach: %v", err)
	}
	_ = req // never delivered; inject a forged plain accept instead
	forged, err := (&nas.Context{}).Seal(&nas.AttachAccept{GUTI: 0x666}, nas.HeaderPlain, nas.DirDownlink)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	replies := env.UE.HandleDownlink(forged)
	if len(replies) != 0 {
		t.Errorf("UE responded to forged plain attach_accept: %d replies", len(replies))
	}
	if env.UE.State() == spec.EMMRegistered {
		t.Error("UE registered from forged plain attach_accept")
	}
}

func TestTamperedProtectedMessageDiscarded(t *testing.T) {
	env := newEnv(t, ue.ProfileConformant)
	attach(t, env)
	cmd, err := env.MME.StartGUTIReallocation()
	if err != nil {
		t.Fatalf("StartGUTIReallocation: %v", err)
	}
	cmd.Payload[0] ^= 0xFF
	before := env.UE.GUTI()
	replies := env.UE.HandleDownlink(cmd)
	if len(replies) != 0 || env.UE.GUTI() != before {
		t.Error("tampered guti_reallocation_command was processed")
	}
}

func TestI2PlainAfterCtx(t *testing.T) {
	// OAI accepts a plain command post-ctx; conformant and srs do not.
	for _, tt := range []struct {
		profile ue.Profile
		want    bool
	}{
		{ue.ProfileConformant, false},
		{ue.ProfileSRS, false},
		{ue.ProfileOAI, true},
	} {
		t.Run(tt.profile.String(), func(t *testing.T) {
			env := newEnv(t, tt.profile)
			attach(t, env)
			cmd, err := (&nas.Context{}).Seal(&nas.GUTIReallocationCommand{GUTI: 0x7777}, nas.HeaderPlain, nas.DirDownlink)
			if err != nil {
				t.Fatalf("Seal: %v", err)
			}
			env.UE.HandleDownlink(cmd)
			if got := env.UE.GUTI() == 0x7777; got != tt.want {
				t.Errorf("plain command accepted = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestI5IMSILeak(t *testing.T) {
	for _, tt := range []struct {
		profile ue.Profile
		want    bool // plaintext IMSI response expected?
	}{
		{ue.ProfileConformant, false},
		{ue.ProfileSRS, false},
		{ue.ProfileOAI, true},
	} {
		t.Run(tt.profile.String(), func(t *testing.T) {
			env := newEnv(t, tt.profile)
			attach(t, env)
			req, err := (&nas.Context{}).Seal(&nas.IdentityRequest{IDType: nas.IDTypeIMSI}, nas.HeaderPlain, nas.DirDownlink)
			if err != nil {
				t.Fatalf("Seal: %v", err)
			}
			replies := env.UE.HandleDownlink(req)
			leaked := false
			for _, r := range replies {
				if r.Header != nas.HeaderPlain {
					continue
				}
				m, err := nas.Unmarshal(r.Payload)
				if err != nil {
					continue
				}
				if ir, ok := m.(*nas.IdentityResponse); ok && ir.IMSI == env.UE.IMSI() {
					leaked = true
				}
			}
			if leaked != tt.want {
				t.Errorf("IMSI leaked = %v, want %v", leaked, tt.want)
			}
		})
	}
}

func TestI4SecurityBypassAfterReject(t *testing.T) {
	run := func(t *testing.T, p ue.Profile) bool {
		t.Helper()
		env := newEnv(t, p)
		attach(t, env)
		// Capture the genuine attach_accept for replay.
		var accept *nas.Packet
		for _, c := range env.Link.Captured(channel.Downlink) {
			if c.Header == nas.HeaderIntegrityCiphered {
				cc := c
				accept = &cc
				break
			}
		}
		if accept == nil {
			t.Fatal("no ciphered attach_accept captured")
		}
		rej, err := (&nas.Context{}).Seal(&nas.AttachReject{Cause: nas.CauseIllegalUE}, nas.HeaderPlain, nas.DirDownlink)
		if err != nil {
			t.Fatalf("Seal: %v", err)
		}
		env.UE.HandleDownlink(rej)
		if env.UE.State() != spec.EMMDeregistered {
			t.Fatalf("UE not deregistered after reject: %s", env.UE.State())
		}
		env.UE.HandleDownlink(*accept)
		return env.UE.State() == spec.EMMRegistered
	}
	if run(t, ue.ProfileConformant) {
		t.Error("conformant UE re-registered from replayed attach_accept after reject")
	}
	if !run(t, ue.ProfileSRS) {
		t.Error("srs UE did not exhibit I4 security bypass")
	}
}

func TestI6ReplayedSMCAnswered(t *testing.T) {
	run := func(t *testing.T, p ue.Profile) bool {
		t.Helper()
		env := newEnv(t, p)
		attach(t, env)
		var smc *nas.Packet
		for _, c := range env.Link.Captured(channel.Downlink) {
			if c.Header == nas.HeaderIntegrity {
				cc := c
				smc = &cc
				break
			}
		}
		if smc == nil {
			t.Fatal("no security_mode_command captured")
		}
		replies := env.UE.HandleDownlink(*smc)
		return len(replies) > 0
	}
	if run(t, ue.ProfileConformant) {
		t.Error("conformant UE answered a replayed security_mode_command")
	}
	if !run(t, ue.ProfileSRS) {
		t.Error("srs UE silent on replayed SMC; I6 not reproduced")
	}
	if !run(t, ue.ProfileOAI) {
		t.Error("oai UE silent on replayed SMC; I6 not reproduced")
	}
}

func TestP1StaleAuthAcceptedAndDesyncs(t *testing.T) {
	// All profiles accept a stale (captured-and-dropped) challenge: the
	// flaw is in the standard's SQN scheme.
	for _, p := range []ue.Profile{ue.ProfileConformant, ue.ProfileSRS, ue.ProfileOAI} {
		t.Run(p.String(), func(t *testing.T) {
			env := newEnv(t, p)
			// Build two challenges; deliver only the second, then replay
			// the first.
			k := env.K
			stale := security.GenerateVector(k, [16]byte{1}, 0b000001_00001) // SEQ=1, IND=1
			fresh := security.GenerateVector(k, [16]byte{2}, 0b000010_00010) // SEQ=2, IND=2

			mkPkt := func(v security.Vector) nas.Packet {
				p, err := (&nas.Context{}).Seal(&nas.AuthRequest{RAND: v.RAND, AUTN: v.AUTN}, nas.HeaderPlain, nas.DirDownlink)
				if err != nil {
					t.Fatalf("Seal: %v", err)
				}
				return p
			}
			if got := env.UE.HandleDownlink(mkPkt(fresh)); len(got) == 0 {
				t.Fatal("fresh challenge not answered")
			}
			replies := env.UE.HandleDownlink(mkPkt(stale))
			if len(replies) == 0 {
				t.Fatal("stale challenge not answered at all")
			}
			m, err := nas.Unmarshal(replies[0].Payload)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if m.Name() != spec.AuthResponse {
				t.Errorf("stale challenge answered with %s, want authentication_response (P1)", m.Name())
			}
		})
	}
}

func TestBlockedUEPowerCycle(t *testing.T) {
	env := newEnv(t, ue.ProfileConformant)
	rej, err := (&nas.Context{}).Seal(&nas.AuthReject{}, nas.HeaderPlain, nas.DirDownlink)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	env.UE.HandleDownlink(rej)
	if !env.UE.Blocked() {
		t.Fatal("UE not blocked")
	}
	env.UE.PowerCycle(false)
	if !env.UE.Blocked() {
		t.Error("blocked flag did not survive power cycle")
	}
	env.UE.PowerCycle(true)
	if env.UE.Blocked() {
		t.Error("clearBlock did not clear the flag")
	}
}

func TestRecorderSeesHandlerSignatures(t *testing.T) {
	rec := &trace.Recorder{}
	u, err := ue.New(ue.Config{Profile: ue.ProfileOAI, IMSI: "1", Recorder: rec})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	req, err := (&nas.Context{}).Seal(&nas.IdentityRequest{IDType: nas.IDTypeIMSI}, nas.HeaderPlain, nas.DirDownlink)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	u.HandleDownlink(req)
	var sawRecv, sawSend bool
	for _, r := range rec.Snapshot() {
		if r.Kind == trace.KindFuncEntry {
			if r.Name == "emm_recv_identity_request" {
				sawRecv = true
			}
			if r.Name == "emm_send_identity_response" {
				sawSend = true
			}
		}
	}
	if !sawRecv || !sawSend {
		t.Errorf("recorder missing OAI-style signatures: recv=%v send=%v", sawRecv, sawSend)
	}
}

func TestPagingWrongIdentityIgnored(t *testing.T) {
	env := newEnv(t, ue.ProfileConformant)
	attach(t, env)
	page, err := (&nas.Context{}).Seal(&nas.PagingRequest{IDType: nas.IDTypeGUTI, GUTI: 0xBAD}, nas.HeaderPlain, nas.DirDownlink)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if replies := env.UE.HandleDownlink(page); len(replies) != 0 {
		t.Error("UE answered a page for a different GUTI")
	}
}

func TestProfileStrings(t *testing.T) {
	if ue.ProfileConformant.String() != "conformant" ||
		ue.ProfileSRS.String() != "srsLTE" ||
		ue.ProfileOAI.String() != "OAI" ||
		ue.Profile(99).String() != "unknown-profile" {
		t.Error("profile strings wrong")
	}
}
