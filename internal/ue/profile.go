// Package ue implements the UE-side NAS (EPS Mobility Management) state
// machine in three behaviour profiles that mirror the implementations the
// paper evaluates: a conformant profile standing in for the closed-source
// commercial stack, an srsLTE/srsUE-like profile, and an
// OpenAirInterface-like profile. The two open-source profiles reproduce
// the paper's implementation issues I1-I6; the protocol-level flaws P1-P3
// are present in all three because they stem from the standard itself.
//
// Every handler is instrumented: it emits function-entry records with the
// profile's signature style, global-state records around each transition,
// and local-variable records for every sanity check — producing exactly
// the information-rich log ProChecker's model extractor consumes.
package ue

import "prochecker/internal/spec"

// Profile selects which implementation's behaviour the UE reproduces.
type Profile uint8

// The three evaluated implementation profiles.
const (
	// ProfileConformant models the closed-source commercial stack: no
	// implementation deviations, only standards-level behaviour.
	ProfileConformant Profile = iota + 1
	// ProfileSRS models srsLTE's srsUE.
	ProfileSRS
	// ProfileOAI models OpenAirInterface's UE.
	ProfileOAI
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	switch p {
	case ProfileConformant:
		return "conformant"
	case ProfileSRS:
		return "srsLTE"
	case ProfileOAI:
		return "OAI"
	default:
		return "unknown-profile"
	}
}

// Quirks enumerates the implementation deviations of Table I. Each field
// maps to one of the paper's implementation issues.
type Quirks struct {
	// AcceptAnyReplay (I1, srsUE): accept any replayed
	// integrity-protected message even though its NAS COUNT is stale.
	AcceptAnyReplay bool
	// ResetCountOnReplay (I1/I3, srsUE): on accepting a replayed message,
	// reset the downlink counter to the counter value in the replayed
	// packet.
	ResetCountOnReplay bool
	// AcceptLastReplay (I1, OAI): accept a replay of exactly the last
	// received message (COUNT == last accepted COUNT).
	AcceptLastReplay bool
	// AcceptPlainAfterCtx (I2, OAI): accept plain-NAS(0x0) messages even
	// after the security context is established, breaking integrity and
	// confidentiality.
	AcceptPlainAfterCtx bool
	// AcceptSameSQN (I3, srsUE): accept a replayed
	// authentication_request whose SQN equals an already-accepted one,
	// re-deriving keys and resetting counters.
	AcceptSameSQN bool
	// KeepCtxAfterReject (I4, srsUE): keep the security context alive
	// after a reject/release message instead of deleting it, so the UE
	// can move deregistered -> registered without fresh authentication
	// and security-mode procedures.
	KeepCtxAfterReject bool
	// LeakIMSIAfterCtx (I5, OAI): answer a plain identity_request for
	// IMSI even after GUTI assignment and security-context
	// establishment.
	LeakIMSIAfterCtx bool
	// AcceptReplayedSMC (I6, both): accept a replayed
	// security_mode_command and answer it, giving an adversary a
	// distinguishable response for linkability.
	AcceptReplayedSMC bool
}

// QuirksFor returns the deviation set of a profile, matching the
// filled circles of Table I.
func QuirksFor(p Profile) Quirks {
	switch p {
	case ProfileSRS:
		return Quirks{
			AcceptAnyReplay:    true,
			ResetCountOnReplay: true,
			AcceptSameSQN:      true,
			KeepCtxAfterReject: true,
			AcceptReplayedSMC:  true,
		}
	case ProfileOAI:
		return Quirks{
			AcceptLastReplay:    true,
			AcceptPlainAfterCtx: true,
			LeakIMSIAfterCtx:    true,
			AcceptReplayedSMC:   true,
		}
	default:
		return Quirks{}
	}
}

// StyleFor returns the handler-signature naming convention each
// implementation uses (Section IX: srsLTE uses send_/parse_, OAI uses
// emm_send_/emm_recv_, the closed-source stack send_/recv_).
func StyleFor(p Profile) spec.SignatureStyle {
	switch p {
	case ProfileSRS:
		return spec.StyleSRS
	case ProfileOAI:
		return spec.StyleOAI
	default:
		return spec.StyleClosed
	}
}
