package ue

import (
	"errors"
	"fmt"

	"prochecker/internal/nas"
	"prochecker/internal/security"
	"prochecker/internal/spec"
	"prochecker/internal/sqn"
	"prochecker/internal/trace"
	"prochecker/internal/usim"
)

// Config parameterises a UE instance.
type Config struct {
	// Profile selects the implementation behaviour; defaults to
	// ProfileConformant.
	Profile Profile
	// IMSI is the subscriber identity stored on the USIM.
	IMSI string
	// K is the permanent subscriber key shared with the home network.
	K security.Key
	// SQN configures the USIM's Annex C scheme; the zero value selects
	// sqn.DefaultConfig().
	SQN sqn.Config
	// Recorder receives the instrumentation log. Optional; a private
	// recorder is created when nil so handlers can log unconditionally.
	Recorder *trace.Recorder
	// UECaps is the capability bitmap replayed in security_mode_command
	// for bidding-down protection.
	UECaps uint8
}

// UE is an instrumented UE-side NAS state machine. Create it with New.
// Its methods are not safe for concurrent use; the conformance runner and
// testbed drive it from a single goroutine, like the real stacks' NAS
// task threads.
type UE struct {
	profile Profile
	quirks  Quirks
	style   spec.SignatureStyle
	rec     *trace.Recorder

	imsi   string
	usim   *usim.USIM
	uecaps uint8

	// Protocol globals — the state the instrumentation dumps.
	state spec.EMMState
	guti  uint32
	ctx   nas.Context

	// pending holds the key hierarchy derived from the last successful
	// AKA run, not yet activated by a security_mode_command.
	pending    *security.Hierarchy
	lastSQN    uint64
	hasLastSQN bool
	// ESM (session management) sub-layer globals.
	esmState spec.ESMState
	bearerID uint8
	pti      uint8
	apn      string

	// tauPending/serviceReqPending track running UE-initiated procedures.
	tauPending        bool
	serviceReqPending bool
	// blocked is set by authentication_reject: the UE considers the SIM
	// invalid and will not reattach (the "numb" condition).
	blocked bool
}

// New builds a UE. It returns an error for a missing IMSI or an invalid
// SQN configuration.
func New(cfg Config) (*UE, error) {
	if cfg.Profile == 0 {
		cfg.Profile = ProfileConformant
	}
	if cfg.IMSI == "" {
		return nil, errors.New("ue: Config.IMSI is required")
	}
	if cfg.SQN == (sqn.Config{}) {
		cfg.SQN = sqn.DefaultConfig()
	}
	card, err := usim.New(cfg.IMSI, cfg.K, cfg.SQN)
	if err != nil {
		return nil, fmt.Errorf("ue: building USIM: %w", err)
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = &trace.Recorder{}
	}
	return &UE{
		profile:  cfg.Profile,
		quirks:   QuirksFor(cfg.Profile),
		style:    StyleFor(cfg.Profile),
		rec:      rec,
		imsi:     cfg.IMSI,
		usim:     card,
		uecaps:   cfg.UECaps,
		state:    spec.EMMDeregistered,
		esmState: spec.BearerInactive,
	}, nil
}

// Accessors used by tests, the testbed and attack validation.

// Profile returns the implementation profile.
func (u *UE) Profile() Profile { return u.profile }

// State returns the current EMM state.
func (u *UE) State() spec.EMMState { return u.state }

// GUTI returns the currently assigned GUTI (0 when none).
func (u *UE) GUTI() uint32 { return u.guti }

// IMSI returns the subscriber identity.
func (u *UE) IMSI() string { return u.imsi }

// SecurityContextActive reports whether a NAS security context is active.
func (u *UE) SecurityContextActive() bool { return u.ctx.Active }

// Keys returns the active NAS key hierarchy (zero value when inactive).
func (u *UE) Keys() security.Hierarchy { return u.ctx.Keys }

// DownlinkCount returns the next expected downlink NAS COUNT.
func (u *UE) DownlinkCount() uint32 { return u.ctx.DLCount }

// Blocked reports whether an authentication_reject has permanently
// blocked the UE from reattaching.
func (u *UE) Blocked() bool { return u.blocked }

// Recorder returns the instrumentation recorder backing this UE.
func (u *UE) Recorder() *trace.Recorder { return u.rec }

// SignatureStyle returns the handler naming convention in use.
func (u *UE) SignatureStyle() spec.SignatureStyle { return u.style }

// logGlobals dumps the protocol's global variables, as the source
// instrumentation does on handler entry and exit.
func (u *UE) logGlobals() {
	u.rec.Global("emm_state", string(u.state))
	u.rec.Global("esm_state", string(u.esmState))
	u.rec.Global("guti", fmt.Sprintf("%#x", u.guti))
	u.rec.GlobalBool("sec_ctx_active", u.ctx.Active)
}

// setState changes the EMM state and logs the new value, producing the
// second state signature of a log block (Algorithm 1 lines 9-10).
func (u *UE) setState(s spec.EMMState) {
	u.state = s
	u.rec.Global("emm_state", string(s))
}

// seal wraps an outgoing message, logging the outgoing-handler signature.
func (u *UE) seal(msg nas.Message, header nas.SecurityHeader) (nas.Packet, error) {
	sig := u.style.Send(msg.Name())
	u.rec.EnterFunc(sig)
	p, err := u.ctx.Seal(msg, header, nas.DirUplink)
	if err != nil {
		u.rec.Note("seal failure: " + err.Error())
		u.rec.ExitFunc(sig)
		return nas.Packet{}, fmt.Errorf("ue: %w", err)
	}
	u.rec.ExitFunc(sig)
	return p, nil
}

// respond is seal plus collection into a reply slice, recording
// null_action-free transitions. A seal failure degrades to no response,
// which the extractor records as null_action.
func (u *UE) respond(replies []nas.Packet, msg nas.Message, header nas.SecurityHeader) []nas.Packet {
	p, err := u.seal(msg, header)
	if err != nil {
		return replies
	}
	return append(replies, p)
}

// protectedHeader picks the header for post-SMC uplink signalling.
func (u *UE) protectedHeader() nas.SecurityHeader {
	if u.ctx.Active {
		return nas.HeaderIntegrityCiphered
	}
	return nas.HeaderPlain
}

// registered reports whether the UE is in EMM_REGISTERED or one of its
// sub-states.
func (u *UE) registered() bool {
	return u.state == spec.EMMRegistered || u.state == spec.EMMRegisteredNormalService
}

// Registered reports whether the UE is in EMM_REGISTERED or one of its
// sub-states.
func (u *UE) Registered() bool { return u.registered() }

// StartAttach begins the attach procedure: the UE enters
// EMM_REGISTERED_INITIATED and emits a plain attach_request. It fails when
// the UE is blocked by a previous authentication_reject or already
// registered.
func (u *UE) StartAttach() (nas.Packet, error) {
	if u.blocked {
		return nas.Packet{}, errors.New("ue: blocked by authentication_reject; not attaching")
	}
	if u.registered() {
		return nas.Packet{}, fmt.Errorf("ue: already registered")
	}
	u.rec.EnterFunc("emm_start_attach")
	u.logGlobals()
	u.setState(spec.EMMRegisteredInitiated)
	req := &nas.AttachRequest{IMSI: u.imsi, GUTI: u.guti, UECaps: u.uecaps}
	p, err := u.seal(req, nas.HeaderPlain)
	u.rec.ExitFunc("emm_start_attach")
	if err != nil {
		return nas.Packet{}, err
	}
	return p, nil
}

// StartDetach begins a UE-originated detach.
func (u *UE) StartDetach(switchOff bool) (nas.Packet, error) {
	u.rec.EnterFunc("emm_start_detach")
	u.logGlobals()
	u.setState(spec.EMMDeregInitiated)
	p, err := u.seal(&nas.DetachRequestUE{SwitchOff: switchOff}, u.protectedHeader())
	u.rec.ExitFunc("emm_start_detach")
	if err != nil {
		return nas.Packet{}, err
	}
	return p, nil
}

// StartTAU begins a tracking-area update; the UE must be registered.
func (u *UE) StartTAU(tac uint16) (nas.Packet, error) {
	if !u.registered() {
		return nas.Packet{}, fmt.Errorf("ue: TAU requires EMM_REGISTERED, in %s", u.state)
	}
	u.rec.EnterFunc("emm_start_tau")
	u.logGlobals()
	u.setState(spec.EMMTAUInitiated)
	u.tauPending = true
	p, err := u.seal(&nas.TAURequest{GUTI: u.guti, TAC: tac}, u.protectedHeader())
	u.rec.ExitFunc("emm_start_tau")
	if err != nil {
		return nas.Packet{}, err
	}
	return p, nil
}

// StartServiceRequest asks for service while registered (also invoked
// internally in response to paging).
func (u *UE) StartServiceRequest() (nas.Packet, error) {
	if !u.registered() {
		return nas.Packet{}, fmt.Errorf("ue: service request requires EMM_REGISTERED, in %s", u.state)
	}
	u.rec.EnterFunc("emm_start_service_request")
	u.logGlobals()
	u.setState(spec.EMMServiceReqInitiated)
	u.serviceReqPending = true
	p, err := u.seal(&nas.ServiceRequest{GUTI: u.guti}, u.protectedHeader())
	u.rec.ExitFunc("emm_start_service_request")
	if err != nil {
		return nas.Packet{}, err
	}
	return p, nil
}

// PowerCycle models a reboot: volatile state is lost but the USIM's SQN
// array and any stored security context survive (as on a real SIM/NV).
// The blocked flag survives too, per the "SIM invalid until reboot of the
// network side" semantics used in the numb attack; pass clearBlock to
// model swapping the SIM.
func (u *UE) PowerCycle(clearBlock bool) {
	u.rec.Note("power cycle")
	u.state = spec.EMMDeregistered
	u.tauPending = false
	u.serviceReqPending = false
	// Bearer contexts are volatile: they do not survive a reboot.
	u.esmState = spec.BearerInactive
	u.bearerID = 0
	if clearBlock {
		u.blocked = false
	}
}
