package ue

import (
	"fmt"

	"prochecker/internal/nas"
	"prochecker/internal/spec"
)

// ESM (session management) sub-layer of the UE: bearer-context state,
// PDN connectivity, and the default-bearer activation/deactivation
// handlers. Instrumented like the EMM layer — the esm_state global is
// dumped alongside emm_state, and the per-layer signature sets let the
// extractor lift a *separate* ESM machine from the same log (challenge
// C4).

// ESMState returns the current bearer-context state.
func (u *UE) ESMState() spec.ESMState { return u.esmState }

// BearerID returns the active default bearer's identity (0 when none).
func (u *UE) BearerID() uint8 { return u.bearerID }

// setESMState changes the ESM state and logs the new value.
func (u *UE) setESMState(s spec.ESMState) {
	u.esmState = s
	u.rec.Global("esm_state", string(s))
}

// StartPDNConnectivity requests a default bearer towards the APN; the UE
// must be registered (ESM rides on the secured EMM session).
func (u *UE) StartPDNConnectivity(apn string) (nas.Packet, error) {
	if !u.registered() {
		return nas.Packet{}, fmt.Errorf("ue: PDN connectivity requires registration, in %s", u.state)
	}
	if u.esmState != spec.BearerInactive {
		return nas.Packet{}, fmt.Errorf("ue: bearer context busy (%s)", u.esmState)
	}
	u.rec.EnterFunc("esm_start_pdn_connectivity")
	u.logGlobals()
	u.pti++
	u.apn = apn
	u.setESMState(spec.BearerActivePending)
	p, err := u.seal(&nas.PDNConnectivityRequest{PTI: u.pti, APN: apn}, u.protectedHeader())
	u.rec.ExitFunc("esm_start_pdn_connectivity")
	if err != nil {
		return nas.Packet{}, err
	}
	return p, nil
}

func (u *UE) recvActivateDefaultBearer(m *nas.ActivateDefaultBearerRequest, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.ActDefaultBearerReq)
	defer u.rec.ExitFunc(sig)
	if !u.admit(spec.ActDefaultBearerReq, insp) {
		return nil
	}
	if insp.PlainHeader && !u.quirks.AcceptPlainAfterCtx {
		// ESM signalling is never processed unprotected.
		return nil
	}
	if m.BearerID == 0 {
		u.rec.LocalBool(string(spec.CondWellFormed), false)
		return u.respond(nil, &nas.ActivateDefaultBearerReject{BearerID: m.BearerID, Cause: nas.ESMCauseProtocolError}, u.protectedHeader())
	}
	u.rec.LocalBool(string(spec.CondWellFormed), true)
	u.bearerID = m.BearerID
	u.setESMState(spec.BearerActive)
	return u.respond(nil, &nas.ActivateDefaultBearerAccept{BearerID: m.BearerID}, u.protectedHeader())
}

func (u *UE) recvDeactivateBearer(m *nas.DeactivateBearerRequest, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.DeactBearerRequest)
	defer u.rec.ExitFunc(sig)
	if !u.admit(spec.DeactBearerRequest, insp) {
		return nil
	}
	if u.esmState != spec.BearerActive || m.BearerID != u.bearerID {
		return nil
	}
	u.rec.LocalInt("esm_cause", int(m.Cause))
	u.bearerID = 0
	u.setESMState(spec.BearerInactive)
	return u.respond(nil, &nas.DeactivateBearerAccept{BearerID: m.BearerID}, u.protectedHeader())
}

func (u *UE) recvESMInformationRequest(m *nas.ESMInformationRequest, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.ESMInformationReq)
	defer u.rec.ExitFunc(sig)
	if !u.admit(spec.ESMInformationReq, insp) {
		return nil
	}
	if insp.PlainHeader && !u.quirks.AcceptPlainAfterCtx {
		return nil
	}
	return u.respond(nil, &nas.ESMInformationResponse{PTI: m.PTI, APN: u.apn}, u.protectedHeader())
}

func (u *UE) recvPDNConnectivityReject(m *nas.PDNConnectivityReject, insp nas.Inspection) []nas.Packet {
	sig := u.enter(spec.PDNConnectivityRej)
	defer u.rec.ExitFunc(sig)
	if !u.admit(spec.PDNConnectivityRej, insp) {
		return nil
	}
	if u.esmState != spec.BearerActivePending || m.PTI != u.pti {
		return nil
	}
	u.rec.LocalInt("esm_cause", int(m.Cause))
	u.setESMState(spec.BearerInactive)
	return nil
}
