// Package spec captures the 3GPP-standard vocabulary that ProChecker's
// model extraction relies on: EMM state names from TS 24.301, NAS message
// names, the send_/recv_ function-signature conventions observed across
// implementations, and the condition-variable vocabulary that appears in
// information-rich logs.
//
// The paper's key insight (Section IV-A) is that implementations reuse the
// standard names for states and messages verbatim, and prefix protocol
// message names consistently (e.g. send_/recv_ or emm_send_/emm_recv_) in
// function signatures. This package is the single source of truth for
// those names.
package spec

import (
	"fmt"
	"sort"
	"strings"
)

// EMMState is a UE-side EPS Mobility Management state as named in
// TS 24.301 section 5.1.3.2. The extractor matches these names against
// global-variable values in execution logs.
type EMMState string

// UE-side EMM states (TS 24.301 5.1.3.2.2). The *_INIT sub-states appear
// in implementations exactly as the paper's running example shows
// (UE_REGISTERED_INIT -> UE_REGISTERED).
const (
	EMMNull                EMMState = "EMM_NULL"
	EMMDeregistered        EMMState = "EMM_DEREGISTERED"
	EMMRegisteredInitiated EMMState = "EMM_REGISTERED_INITIATED"
	EMMRegistered          EMMState = "EMM_REGISTERED"
	EMMDeregInitiated      EMMState = "EMM_DEREGISTERED_INITIATED"
	EMMTAUInitiated        EMMState = "EMM_TRACKING_AREA_UPDATING_INITIATED"
	EMMServiceReqInitiated EMMState = "EMM_SERVICE_REQUEST_INITIATED"

	// Sub-states that the automated extraction surfaces (Section VII-B):
	// ProChecker's model is a refinement of LTEInspector's partly because
	// it discovers sub-states like these.
	EMMRegisteredNormalService  EMMState = "EMM_REGISTERED_NORMAL_SERVICE"
	EMMRegisteredUpdateNeeded   EMMState = "EMM_REGISTERED_UPDATE_NEEDED"
	EMMDeregisteredAttachNeeded EMMState = "EMM_DEREGISTERED_ATTACH_NEEDED"
	EMMDeregisteredNormal       EMMState = "EMM_DEREGISTERED_NORMAL_SERVICE"
)

// MMEState is a network-side EMM state (TS 24.301 5.1.3.4).
type MMEState string

// Network-side EMM states.
const (
	MMEDeregistered    MMEState = "MME_EMM_DEREGISTERED"
	MMECommonProcInit  MMEState = "MME_EMM_COMMON_PROCEDURE_INITIATED"
	MMERegistered      MMEState = "MME_EMM_REGISTERED"
	MMEDeregInitiated  MMEState = "MME_EMM_DEREGISTERED_INITIATED"
	MMEWaitAttachCompl MMEState = "MME_EMM_WAIT_ATTACH_COMPLETE"
)

// UEStates lists every UE-side state name the extractor should recognise,
// in a stable order.
func UEStates() []EMMState {
	return []EMMState{
		EMMNull,
		EMMDeregistered,
		EMMRegisteredInitiated,
		EMMRegistered,
		EMMDeregInitiated,
		EMMTAUInitiated,
		EMMServiceReqInitiated,
		EMMRegisteredNormalService,
		EMMRegisteredUpdateNeeded,
		EMMDeregisteredAttachNeeded,
		EMMDeregisteredNormal,
	}
}

// MMEStates lists every network-side state name, in a stable order.
func MMEStates() []MMEState {
	return []MMEState{
		MMEDeregistered,
		MMECommonProcInit,
		MMERegistered,
		MMEDeregInitiated,
		MMEWaitAttachCompl,
	}
}

// ESMState is a UE-side EPS Session Management (bearer context) state
// (TS 24.301 6.1.3.3). The ESM layer is the second NAS sub-layer; the
// paper's layered-extraction requirement (challenge C4) is demonstrated
// by extracting it separately from the same execution log.
type ESMState string

// UE-side ESM bearer-context states.
const (
	BearerInactive        ESMState = "BEARER_CONTEXT_INACTIVE"
	BearerActivePending   ESMState = "BEARER_CONTEXT_ACTIVE_PENDING"
	BearerActive          ESMState = "BEARER_CONTEXT_ACTIVE"
	BearerInactivePending ESMState = "BEARER_CONTEXT_INACTIVE_PENDING"
)

// ESMStates lists the ESM states in stable order.
func ESMStates() []ESMState {
	return []ESMState{
		BearerInactive, BearerActivePending, BearerActive, BearerInactivePending,
	}
}

// MessageName is a NAS protocol message name as written in TS 24.301,
// lower-cased with underscores — the form used in the paper and, per its
// observation, in implementation function signatures.
type MessageName string

// Uplink (UE -> MME) NAS messages.
const (
	AttachRequest       MessageName = "attach_request"
	AttachComplete      MessageName = "attach_complete"
	AuthResponse        MessageName = "authentication_response"
	AuthFailure         MessageName = "authentication_failure"
	AuthSyncFailure     MessageName = "auth_sync_failure"
	AuthMACFailure      MessageName = "auth_mac_failure"
	SecurityModeComplet MessageName = "security_mode_complete"
	SecurityModeReject  MessageName = "security_mode_reject"
	IdentityResponse    MessageName = "identity_response"
	GUTIRealloComplete  MessageName = "guti_reallocation_complete"
	TAURequest          MessageName = "tracking_area_update_request"
	TAUComplete         MessageName = "tracking_area_update_complete"
	DetachRequestUE     MessageName = "detach_request_ue"
	DetachAccept        MessageName = "detach_accept"
	ServiceRequest      MessageName = "service_request"
	UplinkNASTransport  MessageName = "uplink_nas_transport"
)

// Downlink (MME -> UE) NAS messages.
const (
	AttachAccept        MessageName = "attach_accept"
	AttachReject        MessageName = "attach_reject"
	AuthRequest         MessageName = "authentication_request"
	AuthReject          MessageName = "authentication_reject"
	SecurityModeCommand MessageName = "security_mode_command"
	IdentityRequest     MessageName = "identity_request"
	GUTIRealloCommand   MessageName = "guti_reallocation_command"
	TAUAccept           MessageName = "tracking_area_update_accept"
	TAUReject           MessageName = "tracking_area_update_reject"
	DetachRequestNW     MessageName = "detach_request_nw"
	ServiceAccept       MessageName = "service_accept"
	ServiceReject       MessageName = "service_reject"
	Paging              MessageName = "paging_request"
	EMMInformation      MessageName = "emm_information"
	DownlinkNASTranspor MessageName = "downlink_nas_transport"
)

// ESM (session management) messages, uplink.
const (
	PDNConnectivityReq   MessageName = "pdn_connectivity_request"
	ActDefaultBearerAcc  MessageName = "activate_default_eps_bearer_context_accept"
	ActDefaultBearerRej  MessageName = "activate_default_eps_bearer_context_reject"
	DeactBearerAccept    MessageName = "deactivate_eps_bearer_context_accept"
	ESMInformationRespon MessageName = "esm_information_response"
)

// ESM messages, downlink.
const (
	PDNConnectivityRej  MessageName = "pdn_connectivity_reject"
	ActDefaultBearerReq MessageName = "activate_default_eps_bearer_context_request"
	DeactBearerRequest  MessageName = "deactivate_eps_bearer_context_request"
	ESMInformationReq   MessageName = "esm_information_request"
)

// ESMUplinkMessages lists the UE->MME ESM messages in stable order.
func ESMUplinkMessages() []MessageName {
	return []MessageName{
		PDNConnectivityReq, ActDefaultBearerAcc, ActDefaultBearerRej,
		DeactBearerAccept, ESMInformationRespon,
	}
}

// ESMDownlinkMessages lists the MME->UE ESM messages in stable order.
func ESMDownlinkMessages() []MessageName {
	return []MessageName{
		PDNConnectivityRej, ActDefaultBearerReq, DeactBearerRequest,
		ESMInformationReq,
	}
}

// ESMSignatures builds the signature sets for extracting a UE-side ESM
// FSM — the per-layer extraction of challenge C4: the same execution log
// yields the ESM machine when dissected with these signatures instead of
// the EMM ones.
func ESMSignatures(style SignatureStyle) Signatures {
	sig := Signatures{
		Style:    style,
		Incoming: make(map[string]MessageName),
		Outgoing: make(map[string]MessageName),
	}
	for _, st := range ESMStates() {
		sig.States = append(sig.States, string(st))
	}
	for _, m := range ESMDownlinkMessages() {
		sig.Incoming[style.Recv(m)] = m
	}
	for _, m := range ESMUplinkMessages() {
		sig.Outgoing[style.Send(m)] = m
	}
	return sig
}

// NullAction is the action recorded on an FSM transition when the incoming
// message triggers no response (Algorithm 1, lines 20-21).
const NullAction MessageName = "null_action"

// InternalEvent is the pseudo-condition of transitions triggered by the
// entity itself (timer expiry, upper-layer request) rather than by a
// received message — e.g. the UE deciding to attach. Both the hand-built
// models and the threat composer use it.
const InternalEvent MessageName = "internal_event"

// UplinkMessages lists the UE->MME message names in a stable order.
func UplinkMessages() []MessageName {
	return []MessageName{
		AttachRequest, AttachComplete, AuthResponse, AuthFailure,
		AuthSyncFailure, AuthMACFailure, SecurityModeComplet,
		SecurityModeReject, IdentityResponse, GUTIRealloComplete,
		TAURequest, TAUComplete, DetachRequestUE, DetachAccept,
		ServiceRequest, UplinkNASTransport,
	}
}

// DownlinkMessages lists the MME->UE message names in a stable order.
func DownlinkMessages() []MessageName {
	return []MessageName{
		AttachAccept, AttachReject, AuthRequest, AuthReject,
		SecurityModeCommand, IdentityRequest, GUTIRealloCommand,
		TAUAccept, TAUReject, DetachRequestNW, ServiceAccept,
		ServiceReject, Paging, EMMInformation, DownlinkNASTranspor,
	}
}

// IsUplink reports whether m travels UE -> MME.
func IsUplink(m MessageName) bool {
	for _, u := range UplinkMessages() {
		if u == m {
			return true
		}
	}
	return false
}

// IsDownlink reports whether m travels MME -> UE.
func IsDownlink(m MessageName) bool {
	for _, d := range DownlinkMessages() {
		if d == m {
			return true
		}
	}
	return false
}

// SignatureStyle is a per-implementation function-naming convention for
// message handlers. Section IX of the paper notes srsLTE uses
// send_/parse_ and OAI uses emm_send_/emm_recv_; the closed-source stack
// uses send_/recv_.
type SignatureStyle struct {
	// RecvPrefix is prepended to a message name for the incoming handler.
	RecvPrefix string
	// SendPrefix is prepended to a message name for the outgoing handler.
	SendPrefix string
}

// Signature styles observed across the three evaluated implementations.
var (
	StyleClosed = SignatureStyle{RecvPrefix: "recv_", SendPrefix: "send_"}
	StyleSRS    = SignatureStyle{RecvPrefix: "parse_", SendPrefix: "send_"}
	StyleOAI    = SignatureStyle{RecvPrefix: "emm_recv_", SendPrefix: "emm_send_"}
)

// Recv returns the incoming-handler function signature for message m.
func (s SignatureStyle) Recv(m MessageName) string { return s.RecvPrefix + string(m) }

// Send returns the outgoing-handler function signature for message m.
func (s SignatureStyle) Send(m MessageName) string { return s.SendPrefix + string(m) }

// ParseRecv reports whether fn is an incoming-handler signature in this
// style and, if so, which message it handles.
func (s SignatureStyle) ParseRecv(fn string) (MessageName, bool) {
	return s.parse(fn, s.RecvPrefix, IsDownlink, IsUplink)
}

// ParseSend reports whether fn is an outgoing-handler signature in this
// style and, if so, which message it sends.
func (s SignatureStyle) ParseSend(fn string) (MessageName, bool) {
	return s.parse(fn, s.SendPrefix, IsUplink, IsDownlink)
}

// parse strips prefix from fn and accepts the remainder if it names any
// known NAS message. The primary/secondary direction predicates are both
// consulted because a UE's recv handlers take downlink messages while an
// MME's recv handlers take uplink ones; signature parsing is direction
// agnostic.
func (s SignatureStyle) parse(fn, prefix string, dir1, dir2 func(MessageName) bool) (MessageName, bool) {
	if !strings.HasPrefix(fn, prefix) {
		return "", false
	}
	m := MessageName(strings.TrimPrefix(fn, prefix))
	if dir1(m) || dir2(m) {
		return m, true
	}
	return "", false
}

// Signatures bundles the name sets Algorithm 1 consumes: state signatures,
// incoming-message signatures and outgoing-message signatures.
type Signatures struct {
	Style SignatureStyle
	// States holds every state-name string to match against global
	// variable values in the log.
	States []string
	// Incoming and Outgoing map full function signatures to message names.
	Incoming map[string]MessageName
	Outgoing map[string]MessageName
}

// UESignatures builds the signature sets for extracting a UE-side FSM
// under the given naming style: incoming handlers receive downlink
// messages, outgoing handlers send uplink messages.
func UESignatures(style SignatureStyle) Signatures {
	sig := Signatures{
		Style:    style,
		Incoming: make(map[string]MessageName),
		Outgoing: make(map[string]MessageName),
	}
	for _, st := range UEStates() {
		sig.States = append(sig.States, string(st))
	}
	for _, m := range DownlinkMessages() {
		sig.Incoming[style.Recv(m)] = m
	}
	// detach_accept is bidirectional: the MME sends it downlink to
	// acknowledge a UE-initiated detach.
	sig.Incoming[style.Recv(DetachAccept)] = DetachAccept
	for _, m := range UplinkMessages() {
		sig.Outgoing[style.Send(m)] = m
	}
	return sig
}

// MMESignatures builds the signature sets for extracting a network-side
// FSM: incoming handlers receive uplink messages, outgoing handlers send
// downlink messages.
func MMESignatures(style SignatureStyle) Signatures {
	sig := Signatures{
		Style:    style,
		Incoming: make(map[string]MessageName),
		Outgoing: make(map[string]MessageName),
	}
	for _, st := range MMEStates() {
		sig.States = append(sig.States, string(st))
	}
	for _, m := range UplinkMessages() {
		sig.Incoming[style.Recv(m)] = m
	}
	for _, m := range DownlinkMessages() {
		sig.Outgoing[style.Send(m)] = m
	}
	return sig
}

// PlainOnAir reports whether a message type travels unprotected on the
// air in our protocol model: either it can only occur before security
// activation (attach_request, AKA messages) or the standard's 4.4.4.2
// exception list permits processing it unprotected (the reject messages,
// paging, and network-initiated detach — the surface several prior
// attacks build on).
func PlainOnAir(m MessageName) bool {
	switch m {
	case AttachRequest, AuthRequest, AuthResponse, AuthFailure,
		AuthSyncFailure, AuthMACFailure, AuthReject, AttachReject,
		IdentityRequest, IdentityResponse, TAUReject, ServiceReject,
		Paging, DetachRequestNW:
		return true
	default:
		return false
	}
}

// ConditionVar names a sanity-check local variable that implementations
// compute inside incoming-message handlers. The extractor lifts these into
// FSM transition conditions; the threat instrumentor gives each a
// semantics in the composed model.
type ConditionVar string

// The condition-variable vocabulary shared by the three implementations.
const (
	CondMACValid     ConditionVar = "mac_valid"
	CondSQNInRange   ConditionVar = "sqn_in_range"
	CondSQNFresh     ConditionVar = "sqn_fresh"
	CondCountFresh   ConditionVar = "count_fresh"
	CondPlainHeader  ConditionVar = "plain_header"
	CondCipherOK     ConditionVar = "cipher_ok"
	CondSecCtxActive ConditionVar = "sec_ctx_active"
	CondIntegrityOK  ConditionVar = "integrity_ok"
	CondTypeOK       ConditionVar = "msg_type_ok"
	CondWellFormed   ConditionVar = "well_formed"
)

// ConditionVars lists the recognised condition variables in stable order.
func ConditionVars() []ConditionVar {
	return []ConditionVar{
		CondMACValid, CondSQNInRange, CondSQNFresh, CondCountFresh,
		CondPlainHeader, CondCipherOK, CondSecCtxActive, CondIntegrityOK,
		CondTypeOK, CondWellFormed,
	}
}

// IsConditionVar reports whether name is part of the recognised
// condition-variable vocabulary.
func IsConditionVar(name string) bool {
	for _, c := range ConditionVars() {
		if string(c) == name {
			return true
		}
	}
	return false
}

// NormalizeStateName canonicalises a state-name string found in a log:
// upper-cases it and maps the common UE_ prefixed shorthand used in the
// paper's running example (UE_REGISTERED_INIT) onto TS 24.301 names.
func NormalizeStateName(s string) (string, bool) {
	u := strings.ToUpper(strings.TrimSpace(s))
	aliases := map[string]string{
		"UE_REGISTERED_INIT":  string(EMMRegisteredInitiated),
		"UE_REGISTERED":       string(EMMRegistered),
		"UE_DEREGISTERED":     string(EMMDeregistered),
		"UE_DEREG_INITIATED":  string(EMMDeregInitiated),
		"UE_NULL":             string(EMMNull),
		"UE_TAU_INITIATED":    string(EMMTAUInitiated),
		"UE_SERVICE_REQ_INIT": string(EMMServiceReqInitiated),
	}
	if full, ok := aliases[u]; ok {
		return full, true
	}
	for _, st := range UEStates() {
		if string(st) == u {
			return u, true
		}
	}
	for _, st := range MMEStates() {
		if string(st) == u {
			return u, true
		}
	}
	for _, st := range ESMStates() {
		if string(st) == u {
			return u, true
		}
	}
	return "", false
}

// ProcedureName identifies a NAS procedure for coverage accounting.
type ProcedureName string

// NAS procedures tracked by the conformance coverage report.
const (
	ProcAttach         ProcedureName = "attach"
	ProcAuthentication ProcedureName = "authentication"
	ProcSecurityMode   ProcedureName = "security_mode_control"
	ProcGUTIRealloc    ProcedureName = "guti_reallocation"
	ProcTAU            ProcedureName = "tracking_area_update"
	ProcPaging         ProcedureName = "paging"
	ProcDetach         ProcedureName = "detach"
	ProcServiceReq     ProcedureName = "service_request"
	ProcIdentity       ProcedureName = "identification"
	// ESM procedures.
	ProcPDNConnectivity ProcedureName = "pdn_connectivity"
	ProcBearerMgmt      ProcedureName = "eps_bearer_management"
)

// Procedures lists all tracked NAS procedures in stable order.
func Procedures() []ProcedureName {
	return []ProcedureName{
		ProcAttach, ProcAuthentication, ProcSecurityMode, ProcGUTIRealloc,
		ProcTAU, ProcPaging, ProcDetach, ProcServiceReq, ProcIdentity,
	}
}

// ProcedureOf maps a message to the NAS procedure it belongs to.
func ProcedureOf(m MessageName) (ProcedureName, error) {
	byProc := map[ProcedureName][]MessageName{
		ProcAttach:         {AttachRequest, AttachAccept, AttachComplete, AttachReject},
		ProcAuthentication: {AuthRequest, AuthResponse, AuthFailure, AuthReject, AuthSyncFailure, AuthMACFailure},
		ProcSecurityMode:   {SecurityModeCommand, SecurityModeComplet, SecurityModeReject},
		ProcGUTIRealloc:    {GUTIRealloCommand, GUTIRealloComplete},
		ProcTAU:            {TAURequest, TAUAccept, TAUComplete, TAUReject},
		ProcPaging:         {Paging},
		ProcDetach:         {DetachRequestUE, DetachRequestNW, DetachAccept},
		ProcServiceReq:     {ServiceRequest, ServiceAccept, ServiceReject},
		ProcIdentity:       {IdentityRequest, IdentityResponse},
	}
	for proc, msgs := range byProc {
		for _, mm := range msgs {
			if mm == m {
				return proc, nil
			}
		}
	}
	return "", fmt.Errorf("spec: message %q belongs to no tracked procedure", m)
}

// SortedMessageNames returns the given names sorted lexicographically;
// convenient for deterministic rendering of sets.
func SortedMessageNames(set map[MessageName]bool) []MessageName {
	out := make([]MessageName, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
