package spec

import (
	"strings"
	"testing"
)

func TestMessageDirectionsDisjoint(t *testing.T) {
	for _, m := range UplinkMessages() {
		if IsDownlink(m) {
			t.Errorf("message %q is both uplink and downlink", m)
		}
	}
	for _, m := range DownlinkMessages() {
		if IsUplink(m) {
			t.Errorf("message %q is both downlink and uplink", m)
		}
	}
}

func TestMessageNamesUnique(t *testing.T) {
	seen := make(map[MessageName]bool)
	for _, m := range append(UplinkMessages(), DownlinkMessages()...) {
		if seen[m] {
			t.Errorf("duplicate message name %q", m)
		}
		seen[m] = true
	}
}

func TestSignatureRoundTrip(t *testing.T) {
	styles := map[string]SignatureStyle{
		"closed": StyleClosed,
		"srs":    StyleSRS,
		"oai":    StyleOAI,
	}
	for name, style := range styles {
		t.Run(name, func(t *testing.T) {
			for _, m := range append(UplinkMessages(), DownlinkMessages()...) {
				got, ok := style.ParseRecv(style.Recv(m))
				if !ok || got != m {
					t.Errorf("ParseRecv(Recv(%q)) = %q, %v", m, got, ok)
				}
				got, ok = style.ParseSend(style.Send(m))
				if !ok || got != m {
					t.Errorf("ParseSend(Send(%q)) = %q, %v", m, got, ok)
				}
			}
		})
	}
}

func TestParseRecvRejectsUnknown(t *testing.T) {
	tests := []struct {
		name string
		fn   string
	}{
		{"no prefix", "attach_accept"},
		{"unknown message", "recv_bogus_message"},
		{"wrong prefix", "handle_attach_accept"},
		{"empty", ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if m, ok := StyleClosed.ParseRecv(tt.fn); ok {
				t.Errorf("ParseRecv(%q) unexpectedly succeeded with %q", tt.fn, m)
			}
		})
	}
}

func TestUESignaturesCoverAllMessages(t *testing.T) {
	sig := UESignatures(StyleClosed)
	// +1: detach_accept is bidirectional and appears in the UE's
	// incoming set too.
	if got, want := len(sig.Incoming), len(DownlinkMessages())+1; got != want {
		t.Errorf("incoming signatures = %d, want %d", got, want)
	}
	if got, want := len(sig.Outgoing), len(UplinkMessages()); got != want {
		t.Errorf("outgoing signatures = %d, want %d", got, want)
	}
	if got, want := len(sig.States), len(UEStates()); got != want {
		t.Errorf("state signatures = %d, want %d", got, want)
	}
}

func TestMMESignaturesFlipDirections(t *testing.T) {
	sig := MMESignatures(StyleClosed)
	if _, ok := sig.Incoming["recv_attach_request"]; !ok {
		t.Error("MME incoming signatures missing recv_attach_request")
	}
	if _, ok := sig.Outgoing["send_authentication_request"]; !ok {
		t.Error("MME outgoing signatures missing send_authentication_request")
	}
}

func TestNormalizeStateName(t *testing.T) {
	tests := []struct {
		in     string
		want   string
		wantOK bool
	}{
		{"UE_REGISTERED_INIT", "EMM_REGISTERED_INITIATED", true},
		{"ue_registered", "EMM_REGISTERED", true},
		{" EMM_DEREGISTERED ", "EMM_DEREGISTERED", true},
		{"MME_EMM_REGISTERED", "MME_EMM_REGISTERED", true},
		{"NOT_A_STATE", "", false},
		{"", "", false},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, ok := NormalizeStateName(tt.in)
			if ok != tt.wantOK || got != tt.want {
				t.Errorf("NormalizeStateName(%q) = %q, %v; want %q, %v",
					tt.in, got, ok, tt.want, tt.wantOK)
			}
		})
	}
}

func TestProcedureOfCoversEveryMessage(t *testing.T) {
	skip := map[MessageName]bool{
		UplinkNASTransport:  true,
		DownlinkNASTranspor: true,
		EMMInformation:      true,
	}
	for _, m := range append(UplinkMessages(), DownlinkMessages()...) {
		if skip[m] {
			continue
		}
		if _, err := ProcedureOf(m); err != nil {
			t.Errorf("ProcedureOf(%q) error: %v", m, err)
		}
	}
}

func TestProcedureOfUnknown(t *testing.T) {
	if _, err := ProcedureOf(MessageName("nonexistent")); err == nil {
		t.Error("ProcedureOf(nonexistent) expected error")
	}
	if _, err := ProcedureOf(EMMInformation); err == nil {
		t.Error("ProcedureOf(emm_information) expected error (untracked)")
	}
}

func TestConditionVarVocabulary(t *testing.T) {
	for _, c := range ConditionVars() {
		if !IsConditionVar(string(c)) {
			t.Errorf("IsConditionVar(%q) = false, want true", c)
		}
	}
	if IsConditionVar("random_local") {
		t.Error("IsConditionVar(random_local) = true, want false")
	}
}

func TestStateNamesAreUpperSnake(t *testing.T) {
	for _, st := range UEStates() {
		s := string(st)
		if s != strings.ToUpper(s) || strings.Contains(s, " ") {
			t.Errorf("state %q not upper snake case", s)
		}
	}
}

func TestSortedMessageNames(t *testing.T) {
	set := map[MessageName]bool{AuthRequest: true, AttachAccept: true, Paging: true}
	got := SortedMessageNames(set)
	want := []MessageName{AttachAccept, AuthRequest, Paging}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sorted[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
