// The PC1xx family: flow-sensitive passes built on the static dataflow
// layer. Where PC001–PC008 are per-state structural checks, these run
// the security-context fixpoint, the identity-taint pass and the
// abstract reachability analysis from internal/dataflow over the model
// and report what the flows — not the individual transitions — imply.
package lint

import (
	"fmt"

	"prochecker/internal/core/props"
	"prochecker/internal/dataflow"
	"prochecker/internal/mc"
)

func init() {
	Register(plaintextIdentityPass{})
	Register(preAuthAcceptancePass{})
	Register(staleCountWindowPass{})
	Register(vacuousPropertyPass{})
}

// analysisGraph assembles the dataflow graph for the target: the FSM
// plus the composition's UE-internal transitions.
func analysisGraph(t *Target) *dataflow.Graph {
	return dataflow.NewGraph(t.FSM, internalTransitions(t))
}

// --- PC101: plaintext identity exposure ---

type plaintextIdentityPass struct{}

func (plaintextIdentityPass) Info() Info {
	return Info{
		Code:     "PC101",
		Title:    "plaintext identity exposure after security establishment",
		Severity: SeverityWarn,
		Doc: "The security-context must-analysis proves every path into a " +
			"state has already established a full NAS security context, " +
			"yet a transition out of that state moves identity material " +
			"(the IMSI in an identity_response, a key-derived RES in an " +
			"authentication_response, a GUTI applied from a plaintext " +
			"reallocation) across a plaintext channel slot in reply to a " +
			"trigger that is not authenticated-fresh. An adversary can " +
			"provoke the emission and harvest the identity — the paper's " +
			"information-leak class. The pre-security bootstrap (identity " +
			"and AKA exchanges before any context exists) is not flagged.",
		Fix: "after security activation, the handler should require " +
			"integrity-protected, fresh triggers before emitting identity " +
			"material, or cipher the response",
	}
}

func (p plaintextIdentityPass) Run(t *Target) []Diagnostic {
	base := analyzerBase{p.Info()}
	if t.FSM == nil || t.FSM.Initial == "" {
		return nil
	}
	g := analysisGraph(t)
	exposures := dataflow.Exposures(g, dataflow.Context(g))
	var out []Diagnostic
	for _, e := range exposures {
		out = append(out, base.diag(
			Ref{State: string(e.T.From), Message: string(e.T.Cond.Message), Transition: e.T.Key()},
			fmt.Sprintf("%s crosses plaintext %s at %s although the context is %s",
				e.Material, e.Channel, e.T.From, e.Level),
			e.Why))
	}
	return out
}

// --- PC102: pre-authentication acceptance of protected-only messages ---

type preAuthAcceptancePass struct{}

func (preAuthAcceptancePass) Info() Info {
	return Info{
		Code:     "PC102",
		Title:    "protected-only message accepted where no context can exist",
		Severity: SeverityWarn,
		Doc: "The security-context may-analysis proves no path can equip a " +
			"state with any security context, yet a transition there " +
			"accepts a protected-only message and leaves the deregistered " +
			"family on its strength. The UE cannot have verified the " +
			"message's integrity, so the acceptance trusts an unverifiable " +
			"claim — unlike PC008's per-transition predicate check, this " +
			"is a flow argument: no execution reaches the state with keys " +
			"in hand. Discards, rejects and deregistration teardown are " +
			"not flagged.",
		Fix: "before security activation the handler should discard " +
			"protected-only messages (null_action, no state change)",
	}
}

func (p preAuthAcceptancePass) Run(t *Target) []Diagnostic {
	base := analyzerBase{p.Info()}
	if t.FSM == nil || t.FSM.Initial == "" {
		return nil
	}
	g := analysisGraph(t)
	var out []Diagnostic
	for _, tr := range dataflow.PreAuthAcceptances(g, dataflow.Context(g)) {
		out = append(out, base.diag(
			Ref{State: string(tr.From), Message: string(tr.Cond.Message), Transition: tr.Key()},
			fmt.Sprintf("protected-only %s is accepted at %s, a state no path can secure", tr.Cond.Message, tr.From),
			fmt.Sprintf("the acceptance moves the UE to %s without a verifiable security context", tr.To)))
	}
	return out
}

// --- PC103: stale-count acceptance window ---

type staleCountWindowPass struct{}

func (staleCountWindowPass) Info() Info {
	return Info{
		Code:     "PC103",
		Title:    "stale-count acceptance window",
		Severity: SeverityWarn,
		Doc: "A transition processes a message whose NAS COUNT is stale " +
			"(count_fresh=0) instead of discarding it, and the taint " +
			"analysis computes the window of states whose security context " +
			"may since derive from replayed material. Every transition in " +
			"the window extends the replay surface; the window closes only " +
			"at a fresh count-checked acceptance or deregistration.",
		Fix: "discard messages with stale NAS COUNT; if the acceptance is " +
			"intentional, bound the window by re-running AKA",
	}
}

func (p staleCountWindowPass) Run(t *Target) []Diagnostic {
	base := analyzerBase{p.Info()}
	if t.FSM == nil || t.FSM.Initial == "" {
		return nil
	}
	w := dataflow.Stale(analysisGraph(t))
	var out []Diagnostic
	for _, tr := range w.Acceptances {
		out = append(out, base.diag(
			Ref{State: string(tr.From), Message: string(tr.Cond.Message), Transition: tr.Key()},
			fmt.Sprintf("stale-count %s is accepted in %s, opening a replay-derived context window", tr.Cond.Message, tr.From),
			"window covers "+w.WindowString()))
	}
	return out
}

// --- PC104: vacuous property ---

type vacuousPropertyPass struct{}

func (vacuousPropertyPass) Info() Info {
	return Info{
		Code:     "PC104",
		Title:    "vacuous property: trigger statically unreachable",
		Severity: SeverityInfo,
		Doc: "A catalogue property's trigger matches no rule the abstract " +
			"reachability fixpoint can fire in the threat-composed system, " +
			"so the property holds without exploration. The verdict is " +
			"sound — the abstraction over-approximates fireability — but a " +
			"vacuously-holding property exercises nothing: the model " +
			"checker's vacuity pruning skips it (see -no-vacuity-prune), " +
			"and a property that is vacuous on every profile may be " +
			"mis-stated.",
		Fix: "confirm the trigger's rule-name pattern matches the composed " +
			"system's vocabulary; audit with -no-vacuity-prune",
	}
}

func (p vacuousPropertyPass) Run(t *Target) []Diagnostic {
	base := analyzerBase{p.Info()}
	if t.Composed == nil || t.Composed.System == nil {
		return nil
	}
	sys := t.Composed.System
	reach := mc.StaticReach(sys)
	var out []Diagnostic
	for _, prop := range props.Catalogue() {
		if prop.Kind != props.KindMC {
			continue
		}
		if vac, witness := mc.Vacuous(reach, sys, prop.MC()); vac {
			out = append(out, base.diag(Ref{},
				fmt.Sprintf("property %s holds vacuously on this model", prop.ID),
				witness))
		}
	}
	return out
}
