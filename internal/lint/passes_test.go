package lint

import (
	"strings"
	"testing"

	"prochecker/internal/core/fsmodel"
	"prochecker/internal/core/threat"
	"prochecker/internal/spec"
)

// noInternal pins the UE-internal transition set to empty so the
// structural passes see exactly the hand-built FSM, not the default
// LTE environment.
func noInternal() *threat.Composed {
	return &threat.Composed{Config: threat.Config{UEInternal: []fsmodel.Transition{}}}
}

// codesOf runs one analyzer and returns the codes it produced.
func codesOf(t *testing.T, a Analyzer, target *Target) []string {
	t.Helper()
	return Run(target, a).Codes()
}

func hasCode(codes []string, code string) bool {
	for _, c := range codes {
		if c == code {
			return true
		}
	}
	return false
}

func TestPC001InitialState(t *testing.T) {
	pass := initialStatePass{}
	if codes := codesOf(t, pass, &Target{}); !hasCode(codes, "PC001") {
		t.Error("nil FSM did not report PC001")
	}
	if codes := codesOf(t, pass, &Target{FSM: fsmodel.New("m", "")}); !hasCode(codes, "PC001") {
		t.Error("empty initial did not report PC001")
	}
	ghost := fsmodel.New("m", "")
	ghost.AddState("A")
	ghost.Initial = "GHOST"
	if codes := codesOf(t, pass, &Target{FSM: ghost}); !hasCode(codes, "PC001") {
		t.Error("unknown initial did not report PC001")
	}
	ok := fsmodel.New("m", "A")
	if codes := codesOf(t, pass, &Target{FSM: ok}); len(codes) != 0 {
		t.Errorf("well-formed FSM reported %v", codes)
	}
}

func TestPC002Unreachable(t *testing.T) {
	f := fsmodel.New("m", "A")
	f.AddTransition(fsmodel.Transition{From: "A", To: "B",
		Cond: fsmodel.Condition{Message: spec.AttachAccept}, Actions: []spec.MessageName{spec.AttachComplete}})
	// An island no path from A reaches.
	f.AddTransition(fsmodel.Transition{From: "C", To: "D",
		Cond: fsmodel.Condition{Message: spec.IdentityRequest}, Actions: []spec.MessageName{spec.IdentityResponse}})
	rep := Run(&Target{FSM: f, Composed: noInternal()}, unreachableStatePass{})
	if len(rep.Diagnostics) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (C and D): %+v", len(rep.Diagnostics), rep.Diagnostics)
	}
	if rep.Diagnostics[0].Ref.State != "C" || rep.Diagnostics[1].Ref.State != "D" {
		t.Errorf("unreachable states = %s,%s, want C,D",
			rep.Diagnostics[0].Ref.State, rep.Diagnostics[1].Ref.State)
	}
}

func TestPC002UsesInternalTransitions(t *testing.T) {
	// B is only reachable through a UE-internal transition: the pass
	// must merge them before declaring anything unreachable.
	f := fsmodel.New("m", "A")
	f.AddState("B")
	internal := &threat.Composed{Config: threat.Config{UEInternal: []fsmodel.Transition{
		{From: "A", To: "B", Cond: fsmodel.Condition{Message: spec.InternalEvent}},
	}}}
	rep := Run(&Target{FSM: f, Composed: internal}, unreachableStatePass{})
	if len(rep.Diagnostics) != 0 {
		t.Errorf("internally-reachable state reported unreachable: %+v", rep.Diagnostics)
	}
	rep = Run(&Target{FSM: f, Composed: noInternal()}, unreachableStatePass{})
	if len(rep.Diagnostics) != 1 {
		t.Errorf("without internal transitions, want 1 unreachable, got %+v", rep.Diagnostics)
	}
}

func TestPC003Sink(t *testing.T) {
	f := fsmodel.New("m", "A")
	f.AddTransition(fsmodel.Transition{From: "A", To: "B",
		Cond: fsmodel.Condition{Message: spec.AttachAccept}})
	rep := Run(&Target{FSM: f, Composed: noInternal()}, sinkStatePass{})
	if len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Ref.State != "B" {
		t.Fatalf("want exactly sink B, got %+v", rep.Diagnostics)
	}
	if rep.Diagnostics[0].Severity != SeverityInfo {
		t.Errorf("PC003 severity = %s, want info", rep.Diagnostics[0].Severity)
	}
}

func TestPC004Nondeterminism(t *testing.T) {
	f := fsmodel.New("m", "A")
	cond := fsmodel.Condition{Message: spec.AuthRequest,
		Predicates: []fsmodel.Predicate{{Var: "mac_valid", Value: "1"}}}
	f.AddTransition(fsmodel.Transition{From: "A", To: "A", Cond: cond,
		Actions: []spec.MessageName{spec.AuthResponse}})
	f.AddTransition(fsmodel.Transition{From: "A", To: "A", Cond: cond,
		Actions: []spec.MessageName{spec.AuthFailure}})
	// Same condition from a different state: deterministic there.
	f.AddTransition(fsmodel.Transition{From: "B", To: "A", Cond: cond,
		Actions: []spec.MessageName{spec.AuthResponse}})
	rep := Run(&Target{FSM: f}, nondeterminismPass{})
	if len(rep.Diagnostics) != 1 {
		t.Fatalf("want 1 nondeterminism diagnostic, got %+v", rep.Diagnostics)
	}
	d := rep.Diagnostics[0]
	if d.Ref.State != "A" || !strings.Contains(d.Message, "2 distinct outcomes") {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
	if !strings.Contains(d.Detail, "variants: ") || !strings.Contains(d.Detail, " | ") {
		t.Errorf("detail does not list the variants: %q", d.Detail)
	}
}

func TestPC004DuplicateOutcomesAreDeterministic(t *testing.T) {
	// Different predicates on the same message are different conditions.
	f := fsmodel.New("m", "A")
	f.AddTransition(fsmodel.Transition{From: "A", To: "A",
		Cond: fsmodel.Condition{Message: spec.AuthRequest,
			Predicates: []fsmodel.Predicate{{Var: "mac_valid", Value: "1"}}},
		Actions: []spec.MessageName{spec.AuthResponse}})
	f.AddTransition(fsmodel.Transition{From: "A", To: "A",
		Cond: fsmodel.Condition{Message: spec.AuthRequest,
			Predicates: []fsmodel.Predicate{{Var: "mac_valid", Value: "0"}}},
		Actions: []spec.MessageName{spec.NullAction}})
	rep := Run(&Target{FSM: f}, nondeterminismPass{})
	if len(rep.Diagnostics) != 0 {
		t.Errorf("distinct conditions misreported as nondeterminism: %+v", rep.Diagnostics)
	}
}

func TestPC005ChannelDomain(t *testing.T) {
	f := fsmodel.New("m", "A")
	f.AddTransition(fsmodel.Transition{From: "A", To: "B",
		Cond:    fsmodel.Condition{Message: spec.AttachAccept},
		Actions: []spec.MessageName{spec.AttachComplete}})
	f.AddTransition(fsmodel.Transition{From: "B", To: "B",
		Cond:    fsmodel.Condition{Message: spec.SecurityModeCommand},
		Actions: []spec.MessageName{spec.SecurityModeComplet}})

	// Composed domains miss security_mode_command (downlink) and
	// security_mode_complete (uplink).
	composed := &threat.Composed{
		DLMessages: []spec.MessageName{spec.AttachAccept},
		ULMessages: []spec.MessageName{spec.AttachComplete},
	}
	rep := Run(&Target{FSM: f, Composed: composed}, channelDomainPass{})
	if len(rep.Diagnostics) != 2 {
		t.Fatalf("want 2 domain holes, got %+v", rep.Diagnostics)
	}
	for _, d := range rep.Diagnostics {
		if d.Severity != SeverityError {
			t.Errorf("PC005 severity = %s, want error", d.Severity)
		}
	}

	// Complete domains: clean.
	composed.DLMessages = append(composed.DLMessages, spec.SecurityModeCommand)
	composed.ULMessages = append(composed.ULMessages, spec.SecurityModeComplet)
	if rep := Run(&Target{FSM: f, Composed: composed}, channelDomainPass{}); len(rep.Diagnostics) != 0 {
		t.Errorf("complete domains still reported: %+v", rep.Diagnostics)
	}

	// Nil Composed: the pass has nothing to check.
	if rep := Run(&Target{FSM: f}, channelDomainPass{}); len(rep.Diagnostics) != 0 {
		t.Errorf("nil composed reported: %+v", rep.Diagnostics)
	}
}

func TestPC005IgnoresInternalAndNull(t *testing.T) {
	f := fsmodel.New("m", "A")
	f.AddTransition(fsmodel.Transition{From: "A", To: "B",
		Cond:    fsmodel.Condition{Message: spec.InternalEvent},
		Actions: []spec.MessageName{spec.NullAction}})
	composed := &threat.Composed{}
	if rep := Run(&Target{FSM: f, Composed: composed}, channelDomainPass{}); len(rep.Diagnostics) != 0 {
		t.Errorf("internal_event/null_action should be exempt: %+v", rep.Diagnostics)
	}
}

func TestPC006ForceMerged(t *testing.T) {
	composed := &threat.Composed{
		ForceMergedDL: []spec.MessageName{spec.GUTIRealloCommand},
		ForceMergedUL: []spec.MessageName{spec.GUTIRealloComplete},
	}
	rep := Run(&Target{Composed: composed}, forceMergePass{})
	if len(rep.Diagnostics) != 2 {
		t.Fatalf("want 2 force-merge diagnostics, got %+v", rep.Diagnostics)
	}
	if rep.Diagnostics[0].Ref.Message != string(spec.GUTIRealloCommand) {
		t.Errorf("first diagnostic anchors to %q", rep.Diagnostics[0].Ref.Message)
	}
	if rep := Run(&Target{Composed: &threat.Composed{}}, forceMergePass{}); len(rep.Diagnostics) != 0 {
		t.Errorf("clean composition reported: %+v", rep.Diagnostics)
	}
}

func TestPC007PredicateVocabulary(t *testing.T) {
	f := fsmodel.New("m", "A")
	f.AddTransition(fsmodel.Transition{From: "A", To: "B",
		Cond: fsmodel.Condition{Message: spec.AttachAccept,
			Predicates: []fsmodel.Predicate{{Var: "weird_flag", Value: "1"}}}})
	f.AddTransition(fsmodel.Transition{From: "B", To: "A",
		Cond: fsmodel.Condition{Message: spec.AttachReject,
			Predicates: []fsmodel.Predicate{{Var: "weird_flag", Value: "0"}}}})
	rep := Run(&Target{FSM: f}, predicateVocabularyPass{})
	if len(rep.Diagnostics) != 1 {
		t.Fatalf("want 1 deduplicated vocabulary diagnostic, got %+v", rep.Diagnostics)
	}
	if rep.Diagnostics[0].Severity != SeverityError {
		t.Errorf("PC007 severity = %s, want error", rep.Diagnostics[0].Severity)
	}

	ok := fsmodel.New("m", "A")
	ok.AddTransition(fsmodel.Transition{From: "A", To: "B",
		Cond: fsmodel.Condition{Message: spec.AttachAccept,
			Predicates: []fsmodel.Predicate{{Var: "mac_valid", Value: "1"}, {Var: "emm_cause", Value: "3"}}}})
	if rep := Run(&Target{FSM: ok}, predicateVocabularyPass{}); len(rep.Diagnostics) != 0 {
		t.Errorf("in-vocabulary predicates reported: %+v", rep.Diagnostics)
	}
}

func TestPC008SecurityShape(t *testing.T) {
	f := fsmodel.New("m", "A")
	// Protected-only message accepted with a plaintext header.
	f.AddTransition(fsmodel.Transition{From: "A", To: "B",
		Cond: fsmodel.Condition{Message: spec.SecurityModeCommand,
			Predicates: []fsmodel.Predicate{{Var: "plain_header", Value: "1"}}},
		Actions: []spec.MessageName{spec.SecurityModeComplet}})
	// Replay accepted: state unchanged but a real response emitted.
	f.AddTransition(fsmodel.Transition{From: "B", To: "B",
		Cond: fsmodel.Condition{Message: spec.AttachAccept,
			Predicates: []fsmodel.Predicate{{Var: "count_fresh", Value: "0"}}},
		Actions: []spec.MessageName{spec.AttachComplete}})
	// Correctly discarded replay: no state change, null action.
	f.AddTransition(fsmodel.Transition{From: "B", To: "B",
		Cond: fsmodel.Condition{Message: spec.SecurityModeCommand,
			Predicates: []fsmodel.Predicate{{Var: "count_fresh", Value: "0"}, {Var: "mac_valid", Value: "1"}}},
		Actions: []spec.MessageName{spec.NullAction}})
	// Plain-on-air message with a plaintext header is fine.
	f.AddTransition(fsmodel.Transition{From: "A", To: "A",
		Cond: fsmodel.Condition{Message: spec.IdentityRequest,
			Predicates: []fsmodel.Predicate{{Var: "plain_header", Value: "1"}}},
		Actions: []spec.MessageName{spec.IdentityResponse}})

	rep := Run(&Target{FSM: f}, securityShapePass{})
	if len(rep.Diagnostics) != 2 {
		t.Fatalf("want 2 security-shape diagnostics, got %+v", rep.Diagnostics)
	}
	var sawPlain, sawReplay bool
	for _, d := range rep.Diagnostics {
		if strings.Contains(d.Message, "plaintext header") {
			sawPlain = true
		}
		if strings.Contains(d.Message, "stale NAS COUNT") {
			sawReplay = true
		}
	}
	if !sawPlain || !sawReplay {
		t.Errorf("plain=%v replay=%v, want both: %+v", sawPlain, sawReplay, rep.Diagnostics)
	}
}

func TestPC008HonoursCustomPlainOnAir(t *testing.T) {
	f := fsmodel.New("m", "A")
	f.AddTransition(fsmodel.Transition{From: "A", To: "B",
		Cond: fsmodel.Condition{Message: spec.SecurityModeCommand,
			Predicates: []fsmodel.Predicate{{Var: "plain_header", Value: "1"}}},
		Actions: []spec.MessageName{spec.SecurityModeComplet}})
	allPlain := &threat.Composed{Config: threat.Config{
		PlainOnAir: func(spec.MessageName) bool { return true },
	}}
	if rep := Run(&Target{FSM: f, Composed: allPlain}, securityShapePass{}); len(rep.Diagnostics) != 0 {
		t.Errorf("custom PlainOnAir ignored: %+v", rep.Diagnostics)
	}
}

// TestFullRunOnHandBuiltModel exercises Run end to end with every
// registered pass on a small but well-formed model.
func TestFullRunOnHandBuiltModel(t *testing.T) {
	f := fsmodel.New("UE/hand", "A")
	f.AddTransition(fsmodel.Transition{From: "A", To: "B",
		Cond: fsmodel.Condition{Message: spec.AttachAccept,
			Predicates: []fsmodel.Predicate{{Var: "mac_valid", Value: "1"}}},
		Actions: []spec.MessageName{spec.AttachComplete}})
	f.AddTransition(fsmodel.Transition{From: "B", To: "A",
		Cond:    fsmodel.Condition{Message: spec.DetachRequestNW},
		Actions: []spec.MessageName{spec.DetachAccept}})
	composed := &threat.Composed{
		Config:     threat.Config{UEInternal: []fsmodel.Transition{}},
		DLMessages: []spec.MessageName{spec.AttachAccept, spec.DetachRequestNW},
		ULMessages: []spec.MessageName{spec.AttachComplete, spec.DetachAccept},
	}
	rep := Run(&Target{FSM: f, Composed: composed})
	if rep.Model != "UE/hand" {
		t.Errorf("Model = %q", rep.Model)
	}
	if e, w, i := rep.Counts(); e != 0 || w != 0 || i != 0 {
		t.Errorf("clean model produced %d/%d/%d diagnostics: %+v", e, w, i, rep.Diagnostics)
	}
}
