// Regression coverage for the numeric diagnostic-code ordering and the
// severity-gate interaction across the PC0xx structural family and the
// PC1xx dataflow family.
package lint

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestCodeLessNumericOrdering(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		// The regression: PC020 is lexically greater than PC101's prefix
		// ordering would suggest — numerically it must sort first.
		{"PC020", "PC101", true},
		{"PC101", "PC020", false},
		{"PC008", "PC101", true},
		{"PC9", "PC020", true},    // 9 < 20 despite "PC9" > "PC020" lexically
		{"PC101", "PC101", false}, // irreflexive
		{"PC101", "PC102", true},
		// Equal numbers fall back to lexical order.
		{"PA7", "PB7", true},
		// Numeric codes sort before non-numeric ones.
		{"PC104", "TEST", true},
		{"TEST", "PC104", false},
		// Non-numeric pairs are plain lexical.
		{"ALPHA", "BETA", true},
	}
	for _, c := range cases {
		if got := codeLess(c.a, c.b); got != c.want {
			t.Errorf("codeLess(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCodeNumber(t *testing.T) {
	cases := []struct {
		code string
		n    int
		ok   bool
	}{
		{"PC001", 1, true},
		{"PC020", 20, true},
		{"PC101", 101, true},
		{"X9", 9, true},
		{"42", 42, true},
		{"TEST", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		n, ok := codeNumber(c.code)
		if n != c.n || ok != c.ok {
			t.Errorf("codeNumber(%q) = %d,%v, want %d,%v", c.code, n, ok, c.n, c.ok)
		}
	}
}

// TestReportOrdersFamiliesNumerically: a report holding both families
// sorts PC0xx before PC1xx everywhere codes are ordered — the
// diagnostics list, Codes(), and the rendered report.
func TestReportOrdersFamiliesNumerically(t *testing.T) {
	unsorted := []Diagnostic{
		{Code: "PC101", Severity: SeverityWarn, Message: "dataflow"},
		{Code: "PC020", Severity: SeverityWarn, Message: "hypothetical"},
		{Code: "PC004", Severity: SeverityWarn, Message: "structural"},
		{Code: "PC104", Severity: SeverityInfo, Message: "vacuous"},
	}
	rep := Run(&Target{}, collectAnalyzer{diags: unsorted})
	// collectAnalyzer replays over an empty target; PC001 does not run
	// because only the collector was selected.
	var got []string
	for _, d := range rep.Diagnostics {
		got = append(got, d.Code)
	}
	want := []string{"PC004", "PC020", "PC101", "PC104"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("diagnostic order = %v, want %v", got, want)
	}
	if codes := rep.Codes(); !reflect.DeepEqual(codes, want) {
		t.Fatalf("Codes() = %v, want %v", codes, want)
	}
	rendered := rep.Render()
	if i4, i101 := strings.Index(rendered, "PC020"), strings.Index(rendered, "PC101"); i4 < 0 || i101 < 0 || i4 > i101 {
		t.Fatalf("rendered report orders PC020 after PC101:\n%s", rendered)
	}
}

// TestRegistryInterleavesFamilies: the live registry itself must hold
// PC0xx strictly before PC1xx, in numeric order, with both families
// present.
func TestRegistryInterleavesFamilies(t *testing.T) {
	var codes []string
	for _, a := range Analyzers() {
		codes = append(codes, a.Info().Code)
	}
	if !sort.SliceIsSorted(codes, func(i, j int) bool { return codeLess(codes[i], codes[j]) }) {
		t.Fatalf("registry order violates codeLess: %v", codes)
	}
	var structural, dataflow bool
	for _, c := range codes {
		n, ok := codeNumber(c)
		if !ok {
			t.Fatalf("registered code %q has no numeric suffix", c)
		}
		if n < 100 {
			structural = true
			if dataflow {
				t.Fatalf("PC0xx code %s registered after a PC1xx code: %v", c, codes)
			}
		} else {
			dataflow = true
		}
	}
	if !structural || !dataflow {
		t.Fatalf("registry must hold both families, got %v", codes)
	}
}

// TestGateMatrixAcrossFamilies: the severity gate (Report.AtLeast is
// what -lint-gate keys off) must treat the two families uniformly —
// the gate is about severity, never about code family.
func TestGateMatrixAcrossFamilies(t *testing.T) {
	rep := &Report{Diagnostics: []Diagnostic{
		{Code: "PC001", Severity: SeverityError, Message: "structural error"},
		{Code: "PC008", Severity: SeverityWarn, Message: "structural warn"},
		{Code: "PC101", Severity: SeverityWarn, Message: "dataflow warn"},
		{Code: "PC104", Severity: SeverityInfo, Message: "dataflow info"},
	}}
	matrix := []struct {
		gate      Severity
		wantCodes []string
	}{
		{SeverityError, []string{"PC001"}},
		{SeverityWarn, []string{"PC001", "PC008", "PC101"}},
		{SeverityInfo, []string{"PC001", "PC008", "PC101", "PC104"}},
	}
	for _, m := range matrix {
		var got []string
		for _, d := range rep.AtLeast(m.gate) {
			got = append(got, d.Code)
		}
		sort.Slice(got, func(i, j int) bool { return codeLess(got[i], got[j]) })
		if !reflect.DeepEqual(got, m.wantCodes) {
			t.Errorf("gate %s: AtLeast = %v, want %v", m.gate, got, m.wantCodes)
		}
	}

	// Flip the families' severities: a PC1xx error must trip the error
	// gate even when every PC0xx diagnostic is benign.
	flipped := &Report{Diagnostics: []Diagnostic{
		{Code: "PC003", Severity: SeverityInfo},
		{Code: "PC102", Severity: SeverityError},
	}}
	if got := flipped.AtLeast(SeverityError); len(got) != 1 || got[0].Code != "PC102" {
		t.Errorf("error gate on flipped severities = %+v, want exactly PC102", got)
	}
	if flipped.Count(SeverityError) != 1 {
		t.Errorf("Count(error) = %d, want 1", flipped.Count(SeverityError))
	}
}
