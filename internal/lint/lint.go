// Package lint statically checks the shapes the pipeline otherwise
// trusts: the extracted FSM (Algorithm 1's output) and the
// threat-composed model (IMPᵘ). Each analyzer owns one registered
// diagnostic code (PC001…) and reports structural or security-shape
// defects — unreachable states, nondeterminism, channel-domain holes,
// out-of-vocabulary predicates, protected messages accepted unprotected
// — before the model checker spends any time on a malformed model.
//
// The package is a pre-check phase, not a verifier: a WARN is a model
// property worth a look (and often exactly the paper's I1–I6 deviation
// surface), an ERROR is a model the pipeline should not check at all.
package lint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"prochecker/internal/core/fsmodel"
	"prochecker/internal/core/threat"
)

// Severity ranks a diagnostic. The zero value is SeverityInfo.
type Severity int

// The severity ladder, least to most severe.
const (
	SeverityInfo Severity = iota
	SeverityWarn
	SeverityError
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarn:
		return "warn"
	case SeverityError:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// ParseSeverity inverts String, accepting the common long forms too.
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "info":
		return SeverityInfo, nil
	case "warn", "warning":
		return SeverityWarn, nil
	case "error", "err":
		return SeverityError, nil
	default:
		return SeverityInfo, fmt.Errorf("lint: unknown severity %q (want info | warn | error)", s)
	}
}

// MarshalJSON renders the severity as its string form, so manifests and
// job records stay readable and stable across ladder extensions.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON inverts MarshalJSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	sev, err := ParseSeverity(str)
	if err != nil {
		return err
	}
	*s = sev
	return nil
}

// Ref anchors a diagnostic to the model element it is about. Fields are
// empty when the diagnostic is model-global (e.g. a missing initial
// state).
type Ref struct {
	// State names the FSM state involved.
	State string `json:"state,omitempty"`
	// Message names the protocol message involved.
	Message string `json:"message,omitempty"`
	// Transition is the rendered transition key (fsmodel.Transition.Key).
	Transition string `json:"transition,omitempty"`
}

// String renders the non-empty parts for the report line.
func (r Ref) String() string {
	var parts []string
	if r.State != "" {
		parts = append(parts, "state="+r.State)
	}
	if r.Message != "" {
		parts = append(parts, "message="+r.Message)
	}
	if r.Transition != "" {
		parts = append(parts, "transition="+r.Transition)
	}
	return strings.Join(parts, " ")
}

// Diagnostic is one finding: a registered code, its severity, the model
// element it anchors to, the defect statement and a fix hint.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Ref      Ref      `json:"ref"`
	Message  string   `json:"message"`
	Detail   string   `json:"detail,omitempty"`
	Fix      string   `json:"fix,omitempty"`
}

// String renders the diagnostic as one report line.
func (d Diagnostic) String() string {
	line := fmt.Sprintf("%-5s %s %s", strings.ToUpper(d.Severity.String()), d.Code, d.Message)
	if ref := d.Ref.String(); ref != "" {
		line += " (" + ref + ")"
	}
	return line
}

// Target is what one lint run inspects: the extracted FSM, and — when
// the pipeline got that far — the threat composition built from it.
// Composed may be nil for FSM-only linting.
type Target struct {
	FSM      *fsmodel.FSM
	Composed *threat.Composed
}

// Info describes a registered analyzer for the code catalogue and the
// docs registry.
type Info struct {
	// Code is the registered diagnostic code (PC001…).
	Code string
	// Title is the one-line name of the defect class.
	Title string
	// Severity is the severity every diagnostic of this code carries.
	Severity Severity
	// Doc explains what the pass checks and why it matters.
	Doc string
	// Fix is the generic fix hint attached to each diagnostic.
	Fix string
}

// Analyzer is one lint pass: a registered code plus a Run over a target.
type Analyzer interface {
	Info() Info
	Run(*Target) []Diagnostic
}

// registry holds the built-in analyzers, keyed and ordered by code.
var registry = struct {
	byCode map[string]Analyzer
	order  []string
}{byCode: make(map[string]Analyzer)}

// Register adds an analyzer to the catalogue. Duplicate codes panic:
// codes are a stable public vocabulary, two owners is a bug.
func Register(a Analyzer) {
	code := a.Info().Code
	if code == "" {
		panic("lint: analyzer with empty code")
	}
	if _, dup := registry.byCode[code]; dup {
		panic("lint: duplicate analyzer code " + code)
	}
	registry.byCode[code] = a
	registry.order = append(registry.order, code)
	sort.Slice(registry.order, func(i, j int) bool {
		return codeLess(registry.order[i], registry.order[j])
	})
}

// codeLess orders diagnostic codes numerically: the integer suffix of
// "PCnnn" decides, so PC020 sorts before PC101 even though it is
// lexically greater. Codes without a parseable numeric suffix fall back
// to lexical order after all numeric ones.
func codeLess(a, b string) bool {
	an, aok := codeNumber(a)
	bn, bok := codeNumber(b)
	switch {
	case aok && bok:
		if an != bn {
			return an < bn
		}
		return a < b
	case aok:
		return true
	case bok:
		return false
	default:
		return a < b
	}
}

// codeNumber parses the trailing digit run of a diagnostic code.
func codeNumber(code string) (int, bool) {
	i := len(code)
	for i > 0 && code[i-1] >= '0' && code[i-1] <= '9' {
		i--
	}
	if i == len(code) {
		return 0, false
	}
	n := 0
	for _, c := range code[i:] {
		n = n*10 + int(c-'0')
	}
	return n, true
}

// Analyzers returns the registered passes in code order.
func Analyzers() []Analyzer {
	out := make([]Analyzer, 0, len(registry.order))
	for _, code := range registry.order {
		out = append(out, registry.byCode[code])
	}
	return out
}

// ByCode looks one analyzer up.
func ByCode(code string) (Analyzer, bool) {
	a, ok := registry.byCode[code]
	return a, ok
}

// Report is the outcome of one lint run: the model's name and the
// diagnostics in deterministic order (code, then ref, then message).
type Report struct {
	Model       string       `json:"model,omitempty"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// Run executes the given analyzers (all registered ones when none are
// named) over the target and assembles the deterministic report.
func Run(t *Target, analyzers ...Analyzer) *Report {
	if len(analyzers) == 0 {
		analyzers = Analyzers()
	}
	rep := &Report{}
	if t.FSM != nil {
		rep.Model = t.FSM.Name
	}
	for _, a := range analyzers {
		rep.Diagnostics = append(rep.Diagnostics, a.Run(t)...)
	}
	sort.SliceStable(rep.Diagnostics, func(i, j int) bool {
		a, b := rep.Diagnostics[i], rep.Diagnostics[j]
		if a.Code != b.Code {
			return codeLess(a.Code, b.Code)
		}
		if a.Ref.State != b.Ref.State {
			return a.Ref.State < b.Ref.State
		}
		if a.Ref.Message != b.Ref.Message {
			return a.Ref.Message < b.Ref.Message
		}
		if a.Ref.Transition != b.Ref.Transition {
			return a.Ref.Transition < b.Ref.Transition
		}
		return a.Message < b.Message
	})
	return rep
}

// Count reports how many diagnostics carry exactly the given severity.
// Nil reports count zero.
func (r *Report) Count(s Severity) int {
	if r == nil {
		return 0
	}
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// Counts returns the (errors, warnings, infos) triple.
func (r *Report) Counts() (errs, warns, infos int) {
	return r.Count(SeverityError), r.Count(SeverityWarn), r.Count(SeverityInfo)
}

// AtLeast returns the diagnostics at or above the given severity.
func (r *Report) AtLeast(min Severity) []Diagnostic {
	if r == nil {
		return nil
	}
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity >= min {
			out = append(out, d)
		}
	}
	return out
}

// Codes returns the distinct diagnostic codes present, sorted.
func (r *Report) Codes() []string {
	if r == nil {
		return nil
	}
	set := make(map[string]bool)
	for _, d := range r.Diagnostics {
		set[d.Code] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return codeLess(out[i], out[j]) })
	return out
}

// Summary is the one-line count triple ("2 errors, 1 warning, 0 infos").
func (r *Report) Summary() string {
	e, w, i := r.Counts()
	return fmt.Sprintf("%d error(s), %d warning(s), %d info(s)", e, w, i)
}

// Render formats the full report for terminal output: a header, one
// line per diagnostic with its fix hint indented, and the summary.
func (r *Report) Render() string {
	var b strings.Builder
	name := "model"
	if r != nil && r.Model != "" {
		name = r.Model
	}
	fmt.Fprintf(&b, "model lint: %s\n", name)
	if r == nil || len(r.Diagnostics) == 0 {
		b.WriteString("  no diagnostics\n")
		return b.String()
	}
	for _, d := range r.Diagnostics {
		fmt.Fprintf(&b, "  %s\n", d)
		if d.Detail != "" {
			fmt.Fprintf(&b, "        %s\n", d.Detail)
		}
		if d.Fix != "" {
			fmt.Fprintf(&b, "        fix: %s\n", d.Fix)
		}
	}
	fmt.Fprintf(&b, "\n%s\n", r.Summary())
	return b.String()
}
