package lint

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSeverityStringAndParse(t *testing.T) {
	cases := []struct {
		in   string
		want Severity
	}{
		{"info", SeverityInfo},
		{"warn", SeverityWarn},
		{"warning", SeverityWarn},
		{"error", SeverityError},
		{"err", SeverityError},
		{" Error ", SeverityError},
	}
	for _, tc := range cases {
		got, err := ParseSeverity(tc.in)
		if err != nil {
			t.Errorf("ParseSeverity(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSeverity(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
	if _, err := ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity accepted an unknown severity")
	}
	if SeverityWarn.String() != "warn" || SeverityError.String() != "error" {
		t.Errorf("String(): warn=%q error=%q", SeverityWarn, SeverityError)
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []Severity{SeverityInfo, SeverityWarn, SeverityError} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal %s: %v", s, err)
		}
		var back Severity
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != s {
			t.Errorf("round trip %s -> %s -> %s", s, b, back)
		}
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &s); err == nil {
		t.Error("unmarshal accepted an unknown severity")
	}
}

func TestSeverityOrdering(t *testing.T) {
	if !(SeverityInfo < SeverityWarn && SeverityWarn < SeverityError) {
		t.Fatal("severity ladder is not ordered info < warn < error")
	}
}

func TestRefString(t *testing.T) {
	r := Ref{State: "A", Message: "m", Transition: "A -> B"}
	want := "state=A message=m transition=A -> B"
	if got := r.String(); got != want {
		t.Errorf("Ref.String() = %q, want %q", got, want)
	}
	if got := (Ref{}).String(); got != "" {
		t.Errorf("empty Ref.String() = %q, want empty", got)
	}
}

func TestRegistryCatalogue(t *testing.T) {
	all := Analyzers()
	if len(all) == 0 {
		t.Fatal("no analyzers registered")
	}
	prev := ""
	for _, a := range all {
		info := a.Info()
		if info.Code <= prev {
			t.Errorf("analyzer order not strictly ascending: %q after %q", info.Code, prev)
		}
		prev = info.Code
		if info.Title == "" || info.Doc == "" {
			t.Errorf("%s: missing Title or Doc", info.Code)
		}
		got, ok := ByCode(info.Code)
		if !ok || got.Info().Code != info.Code {
			t.Errorf("ByCode(%s) lookup failed", info.Code)
		}
	}
	if _, ok := ByCode("PC999"); ok {
		t.Error("ByCode returned an analyzer for an unregistered code")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering an existing code did not panic")
		}
	}()
	Register(initialStatePass{})
}

type emptyCodeAnalyzer struct{}

func (emptyCodeAnalyzer) Info() Info               { return Info{} }
func (emptyCodeAnalyzer) Run(*Target) []Diagnostic { return nil }

func TestRegisterEmptyCodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering an empty code did not panic")
		}
	}()
	Register(emptyCodeAnalyzer{})
}

func TestReportCountsAndCodes(t *testing.T) {
	rep := &Report{Diagnostics: []Diagnostic{
		{Code: "PC001", Severity: SeverityError},
		{Code: "PC002", Severity: SeverityWarn},
		{Code: "PC002", Severity: SeverityWarn},
		{Code: "PC003", Severity: SeverityInfo},
	}}
	e, w, i := rep.Counts()
	if e != 1 || w != 2 || i != 1 {
		t.Errorf("Counts() = %d,%d,%d, want 1,2,1", e, w, i)
	}
	if got := rep.Codes(); len(got) != 3 || got[0] != "PC001" || got[2] != "PC003" {
		t.Errorf("Codes() = %v", got)
	}
	if got := len(rep.AtLeast(SeverityWarn)); got != 3 {
		t.Errorf("AtLeast(warn) returned %d diagnostics, want 3", got)
	}
	if got := rep.Summary(); got != "1 error(s), 2 warning(s), 1 info(s)" {
		t.Errorf("Summary() = %q", got)
	}
}

func TestNilReportIsSafe(t *testing.T) {
	var rep *Report
	if rep.Count(SeverityError) != 0 {
		t.Error("nil report Count != 0")
	}
	if rep.AtLeast(SeverityInfo) != nil {
		t.Error("nil report AtLeast != nil")
	}
	if rep.Codes() != nil {
		t.Error("nil report Codes != nil")
	}
	if !strings.Contains(rep.Render(), "no diagnostics") {
		t.Error("nil report Render missing 'no diagnostics'")
	}
}

func TestRunSortsDeterministically(t *testing.T) {
	// Run over a nil FSM triggers PC001 only; ordering is exercised via
	// a hand-assembled report instead.
	rep := Run(&Target{})
	if len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Code != "PC001" {
		t.Fatalf("Run(empty target) = %+v, want exactly PC001", rep.Diagnostics)
	}

	unsorted := []Diagnostic{
		{Code: "PC008", Ref: Ref{State: "B"}},
		{Code: "PC002", Ref: Ref{State: "Z"}},
		{Code: "PC002", Ref: Ref{State: "A"}},
		{Code: "PC008", Ref: Ref{State: "B", Message: "m"}},
	}
	collect := collectAnalyzer{diags: unsorted}
	got := Run(&Target{}, collect)
	want := []string{"PC002/A", "PC002/Z", "PC008/B", "PC008/B"}
	for i, d := range got.Diagnostics {
		key := d.Code + "/" + d.Ref.State
		if key != want[i] {
			t.Errorf("position %d: got %s, want %s", i, key, want[i])
		}
	}
}

// collectAnalyzer replays canned diagnostics for sorting tests.
type collectAnalyzer struct{ diags []Diagnostic }

func (collectAnalyzer) Info() Info                 { return Info{Code: "TEST"} }
func (c collectAnalyzer) Run(*Target) []Diagnostic { return c.diags }

func TestRenderShape(t *testing.T) {
	rep := &Report{
		Model: "UE/test",
		Diagnostics: []Diagnostic{{
			Code:     "PC004",
			Severity: SeverityWarn,
			Ref:      Ref{State: "A"},
			Message:  "something diverged",
			Detail:   "variants: x | y",
			Fix:      "look at the suite",
		}},
	}
	out := rep.Render()
	for _, want := range []string{
		"model lint: UE/test",
		"WARN  PC004 something diverged (state=A)",
		"variants: x | y",
		"fix: look at the suite",
		"0 error(s), 1 warning(s), 0 info(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q in:\n%s", want, out)
		}
	}
}
