// The built-in passes. Each owns one code in the PC0xx catalogue;
// docs/diagnostics.md is the human-readable registry and is kept in
// sync by a test.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"prochecker/internal/core/extract"
	"prochecker/internal/core/fsmodel"
	"prochecker/internal/core/threat"
	"prochecker/internal/spec"
)

func init() {
	Register(initialStatePass{})
	Register(unreachableStatePass{})
	Register(sinkStatePass{})
	Register(nondeterminismPass{})
	Register(channelDomainPass{})
	Register(forceMergePass{})
	Register(predicateVocabularyPass{})
	Register(securityShapePass{})
}

// analyzerBase carries the shared Info plumbing.
type analyzerBase struct{ info Info }

func (a analyzerBase) Info() Info { return a.info }

// diag builds a diagnostic stamped with the analyzer's code, severity
// and fix hint.
func (a analyzerBase) diag(ref Ref, message, detail string) Diagnostic {
	return Diagnostic{
		Code:     a.info.Code,
		Severity: a.info.Severity,
		Ref:      ref,
		Message:  message,
		Detail:   detail,
		Fix:      a.info.Fix,
	}
}

// internalTransitions resolves the UE-initiated transitions the
// composition environment merges into the UE machine: the target's own
// config when it has one (nil meaning the default set, an explicit
// empty slice meaning none — mirroring threat.Compose), the default
// set for FSM-only targets. Reachability and sink analysis must see
// them, because Algorithm 1 keys on incoming messages and never
// extracts the UE-initiated edges (attach, detach, TAU, service
// request) that connect the state space.
func internalTransitions(t *Target) []fsmodel.Transition {
	if t.Composed != nil && t.Composed.Config.UEInternal != nil {
		return t.Composed.Config.UEInternal
	}
	return threat.DefaultUEInternal()
}

// effectiveAdjacency builds the state adjacency of the FSM plus the
// composition's internal transitions.
func effectiveAdjacency(t *Target) map[fsmodel.State][]fsmodel.State {
	adj := make(map[fsmodel.State][]fsmodel.State)
	for _, tr := range t.FSM.Transitions() {
		adj[tr.From] = append(adj[tr.From], tr.To)
	}
	for _, tr := range internalTransitions(t) {
		adj[tr.From] = append(adj[tr.From], tr.To)
	}
	return adj
}

// --- PC001: initial state ---

type initialStatePass struct{}

func (initialStatePass) Info() Info {
	return Info{
		Code:     "PC001",
		Title:    "missing or unknown initial state",
		Severity: SeverityError,
		Doc: "The FSM has no initial state, or its initial state is not in " +
			"the state set. Every downstream phase (reachability, threat " +
			"composition, model checking) anchors on s₀; without it the " +
			"model is meaningless.",
		Fix: "check the conformance log's first state signature, or set " +
			"extract.Options.Initial explicitly",
	}
}

func (p initialStatePass) Run(t *Target) []Diagnostic {
	base := analyzerBase{p.Info()}
	if t.FSM == nil {
		return []Diagnostic{base.diag(Ref{}, "no FSM to lint", "")}
	}
	if t.FSM.Initial == "" {
		return []Diagnostic{base.diag(Ref{}, "FSM has no initial state", "")}
	}
	if !t.FSM.HasState(t.FSM.Initial) {
		return []Diagnostic{base.diag(Ref{State: string(t.FSM.Initial)},
			fmt.Sprintf("initial state %s is not in the state set", t.FSM.Initial), "")}
	}
	return nil
}

// --- PC002: unreachable states ---

type unreachableStatePass struct{}

func (unreachableStatePass) Info() Info {
	return Info{
		Code:     "PC002",
		Title:    "unreachable state",
		Severity: SeverityWarn,
		Doc: "A state is unreachable from the initial state even after " +
			"merging the composition's UE-initiated internal transitions. " +
			"Properties over that state are vacuously verified; on a " +
			"fault-perturbed extraction this usually means the suite cases " +
			"that visit it were dropped.",
		Fix: "re-run the conformance suite on a benign link, or check which " +
			"suite cases cover the state",
	}
}

func (p unreachableStatePass) Run(t *Target) []Diagnostic {
	base := analyzerBase{p.Info()}
	if t.FSM == nil || t.FSM.Initial == "" {
		return nil // PC001's problem
	}
	adj := effectiveAdjacency(t)
	seen := map[fsmodel.State]bool{t.FSM.Initial: true}
	stack := []fsmodel.State{t.FSM.Initial}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range adj[s] {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	var out []Diagnostic
	for _, s := range t.FSM.States() {
		if !seen[s] {
			out = append(out, base.diag(Ref{State: string(s)},
				fmt.Sprintf("state %s is unreachable from %s", s, t.FSM.Initial),
				"reachability includes the composition's UE-internal transitions"))
		}
	}
	return out
}

// --- PC003: sink states ---

type sinkStatePass struct{}

func (sinkStatePass) Info() Info {
	return Info{
		Code:     "PC003",
		Title:    "sink state with no outgoing recovery",
		Severity: SeverityInfo,
		Doc: "A state has no outgoing transition, in the FSM or among the " +
			"composition's internal transitions: once entered, the modelled " +
			"UE is stuck there. Terminal service states are sometimes " +
			"intentional; a sink appearing after a perturbed extraction " +
			"usually lost its recovery edges.",
		Fix: "confirm the state is a deliberate terminal, or extend the " +
			"suite with cases that exercise leaving it",
	}
}

func (p sinkStatePass) Run(t *Target) []Diagnostic {
	base := analyzerBase{p.Info()}
	if t.FSM == nil {
		return nil
	}
	adj := effectiveAdjacency(t)
	var out []Diagnostic
	for _, s := range t.FSM.States() {
		if len(adj[s]) == 0 {
			out = append(out, base.diag(Ref{State: string(s)},
				fmt.Sprintf("state %s has no outgoing transition", s), ""))
		}
	}
	return out
}

// --- PC004: nondeterministic transitions ---

type nondeterminismPass struct{}

func (nondeterminismPass) Info() Info {
	return Info{
		Code:     "PC004",
		Title:    "nondeterministic transitions",
		Severity: SeverityWarn,
		Doc: "Two or more transitions share a source state and an identical " +
			"condition (message plus predicates) but diverge in target " +
			"state or emitted actions. A deterministic implementation " +
			"cannot exhibit both; the extraction observed the handler " +
			"behaving inconsistently across suite cases — itself a " +
			"deviation worth reporting.",
		Fix: "inspect the conformance cases driving this condition; the " +
			"implementation handles the same input differently in " +
			"different runs",
	}
}

func (p nondeterminismPass) Run(t *Target) []Diagnostic {
	base := analyzerBase{p.Info()}
	if t.FSM == nil {
		return nil
	}
	type outcome struct{ to, actions string }
	groups := make(map[string]map[outcome][]fsmodel.Transition)
	for _, tr := range t.FSM.Transitions() {
		key := string(tr.From) + "\x00" + tr.Cond.Key()
		acts := make([]string, 0, len(tr.Actions))
		for _, a := range tr.Actions {
			acts = append(acts, string(a))
		}
		sort.Strings(acts)
		o := outcome{to: string(tr.To), actions: strings.Join(acts, ",")}
		if groups[key] == nil {
			groups[key] = make(map[outcome][]fsmodel.Transition)
		}
		groups[key][o] = append(groups[key][o], tr)
	}
	var out []Diagnostic
	for _, outcomes := range groups {
		if len(outcomes) < 2 {
			continue
		}
		var keys []string
		var sample fsmodel.Transition
		first := true
		for _, trs := range outcomes {
			for _, tr := range trs {
				if first {
					sample, first = tr, false
				}
				keys = append(keys, tr.Key())
			}
		}
		sort.Strings(keys)
		out = append(out, base.diag(
			Ref{State: string(sample.From), Message: string(sample.Cond.Message), Transition: keys[0]},
			fmt.Sprintf("state %s reacts to [%s] with %d distinct outcomes",
				sample.From, sample.Cond.String(), len(outcomes)),
			"variants: "+strings.Join(keys, " | ")))
	}
	return out
}

// --- PC005: channel-domain completeness ---

type channelDomainPass struct{}

func (channelDomainPass) Info() Info {
	return Info{
		Code:     "PC005",
		Title:    "channel-domain completeness",
		Severity: SeverityError,
		Doc: "A message the FSM consumes (conditions → downlink) or emits " +
			"(actions → uplink) is missing from the composed channel " +
			"domains, or a domain message has no slot in the system " +
			"variables. The adversary cannot inject, replay or even " +
			"deliver such a message, so every property over it is " +
			"vacuously verified — the PR 4 defect class.",
		Fix: "recompose the model; if the extraction itself lost the " +
			"message, re-run the suite on a benign link",
	}
}

func (p channelDomainPass) Run(t *Target) []Diagnostic {
	base := analyzerBase{p.Info()}
	if t.FSM == nil || t.Composed == nil {
		return nil
	}
	dl := make(map[spec.MessageName]bool, len(t.Composed.DLMessages))
	for _, m := range t.Composed.DLMessages {
		dl[m] = true
	}
	ul := make(map[spec.MessageName]bool, len(t.Composed.ULMessages))
	for _, m := range t.Composed.ULMessages {
		ul[m] = true
	}

	var out []Diagnostic
	for _, m := range t.FSM.ConditionMessages() {
		if m == spec.InternalEvent {
			continue
		}
		if !dl[m] {
			out = append(out, base.diag(Ref{Message: string(m)},
				fmt.Sprintf("FSM condition message %s is missing from the downlink channel domain", m), ""))
		}
	}
	for _, m := range t.FSM.Actions() {
		if m == spec.NullAction {
			continue
		}
		if !ul[m] {
			out = append(out, base.diag(Ref{Message: string(m)},
				fmt.Sprintf("FSM action message %s is missing from the uplink channel domain", m), ""))
		}
	}

	// The domain lists must also agree with the system variables the
	// rules actually range over: a message listed but without channel
	// slots is equally undeliverable.
	if t.Composed.System != nil {
		domains := make(map[string]map[string]bool)
		for _, v := range t.Composed.System.Vars() {
			set := make(map[string]bool, len(v.Domain))
			for _, d := range v.Domain {
				set[d] = true
			}
			domains[v.Name] = set
		}
		checkVar := func(varName string, msgs []spec.MessageName, channel string) {
			dom, ok := domains[varName]
			if !ok {
				out = append(out, base.diag(Ref{},
					fmt.Sprintf("composed system has no %s channel variable %s", channel, varName), ""))
				return
			}
			for _, m := range msgs {
				if !dom[threat.Slot(m, threat.OriginGenuine)] {
					out = append(out, base.diag(Ref{Message: string(m)},
						fmt.Sprintf("%s message %s has no slot in the %s variable domain", channel, m, varName), ""))
				}
			}
		}
		checkVar(threat.VarDL, t.Composed.DLMessages, "downlink")
		checkVar(threat.VarUL, t.Composed.ULMessages, "uplink")
	}
	return out
}

// --- PC006: force-merged supervised-procedure messages ---

type forceMergePass struct{}

func (forceMergePass) Info() Info {
	return Info{
		Code:     "PC006",
		Title:    "supervised-procedure message force-merged",
		Severity: SeverityWarn,
		Doc: "The extracted models never mentioned a supervised procedure's " +
			"command or completion message, so threat.Compose had to merge " +
			"it into the channel domains itself. The composition still " +
			"works, but the implementation's own handling of the message " +
			"was never observed — typically a fault-perturbed extraction " +
			"dropped it (the PR 4 guti_reallocation_command incident).",
		Fix: "re-extract from a benign conformance run, or accept that the " +
			"supervised procedure is modelled without implementation " +
			"evidence",
	}
}

func (p forceMergePass) Run(t *Target) []Diagnostic {
	base := analyzerBase{p.Info()}
	if t.Composed == nil {
		return nil
	}
	var out []Diagnostic
	for _, m := range t.Composed.ForceMergedDL {
		out = append(out, base.diag(Ref{Message: string(m)},
			fmt.Sprintf("supervised-procedure message %s was force-merged into the downlink domain", m),
			"no extracted model consumes or emits it"))
	}
	for _, m := range t.Composed.ForceMergedUL {
		out = append(out, base.diag(Ref{Message: string(m)},
			fmt.Sprintf("supervised-procedure message %s was force-merged into the uplink domain", m),
			"no extracted model consumes or emits it"))
	}
	return out
}

// --- PC007: predicate vocabulary ---

type predicateVocabularyPass struct{}

func (predicateVocabularyPass) Info() Info {
	return Info{
		Code:     "PC007",
		Title:    "predicate outside the condition-variable vocabulary",
		Severity: SeverityError,
		Doc: "A transition predicate uses a variable outside the shared " +
			"sanity-check vocabulary (spec.IsConditionVar plus the " +
			"well-known auxiliaries the extractor admits). The threat " +
			"instrumentor has no cryptographic semantics for such a " +
			"variable, so the composed rules would silently misclassify " +
			"message origins.",
		Fix: "extend the spec vocabulary (and threat.originsFor) with the " +
			"variable's semantics, or fix the extraction's predicate " +
			"filter",
	}
}

func (p predicateVocabularyPass) Run(t *Target) []Diagnostic {
	base := analyzerBase{p.Info()}
	if t.FSM == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []Diagnostic
	for _, tr := range t.FSM.Transitions() {
		for _, pred := range tr.Cond.Predicates {
			if extract.DefaultPredicateFilter(pred.Var) || seen[pred.Var] {
				continue
			}
			seen[pred.Var] = true
			out = append(out, base.diag(
				Ref{Message: string(tr.Cond.Message), Transition: tr.Key()},
				fmt.Sprintf("predicate variable %q is outside the condition vocabulary", pred.Var), ""))
		}
	}
	return out
}

// --- PC008: security shape ---

type securityShapePass struct{}

func (securityShapePass) Info() Info {
	return Info{
		Code:     "PC008",
		Title:    "protected message accepted without protection",
		Severity: SeverityWarn,
		Doc: "A transition accepts a protected-only message (outside the " +
			"TS 24.301 §4.4.4.2 plain-on-air exception list) while the " +
			"protection predicates say it was not protected: either " +
			"processed with a plaintext header, or with a stale NAS COUNT " +
			"(count_fresh=0), with the handler emitting a real response or " +
			"changing state. This is exactly the shape of the paper's " +
			"I1–I6 implementation issues (broken replay/integrity " +
			"protection).",
		Fix: "the implementation should discard the message (null_action, " +
			"no state change); confirm the deviation and check the I1–I6 " +
			"properties against it",
	}
}

func (p securityShapePass) Run(t *Target) []Diagnostic {
	base := analyzerBase{p.Info()}
	if t.FSM == nil {
		return nil
	}
	plainOnAir := spec.PlainOnAir
	if t.Composed != nil && t.Composed.Config.PlainOnAir != nil {
		plainOnAir = t.Composed.Config.PlainOnAir
	}
	var out []Diagnostic
	for _, tr := range t.FSM.Transitions() {
		m := tr.Cond.Message
		if m == spec.InternalEvent {
			continue
		}
		accepted := tr.To != tr.From
		for _, a := range tr.Actions {
			if a != spec.NullAction {
				accepted = true
			}
		}
		if !accepted {
			continue
		}
		for _, pred := range tr.Cond.Predicates {
			switch {
			case pred.Var == string(spec.CondPlainHeader) && pred.Value == "1" && !plainOnAir(m):
				out = append(out, base.diag(
					Ref{State: string(tr.From), Message: string(m), Transition: tr.Key()},
					fmt.Sprintf("protected-only message %s is accepted with a plaintext header in %s", m, tr.From),
					"plain_header=1 yet the handler responds or changes state"))
			case pred.Var == string(spec.CondCountFresh) && pred.Value == "0":
				out = append(out, base.diag(
					Ref{State: string(tr.From), Message: string(m), Transition: tr.Key()},
					fmt.Sprintf("replayed %s (stale NAS COUNT) is accepted in %s", m, tr.From),
					"count_fresh=0 yet the handler responds or changes state"))
			}
		}
	}
	return out
}
