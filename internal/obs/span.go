package obs

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// Attr is one key=value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// A is shorthand for constructing an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is one timed phase of a run. Spans form a tree (children are
// started from the parent's context, including concurrently from
// worker pools — the child list is mutex-guarded), carry attributes
// and an error status, and survive into the run manifest. All methods
// are nil-safe.
type Span struct {
	obs   *Observer
	name  string
	start time.Time
	scope string // bus-event scope, fixed at creation (see obs.WithScope)

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
	ended    bool
	dur      time.Duration
	errMsg   string
	status   string // "", "ok", "error", "cancelled"
	path     string // cached slash-joined path for events
}

// StartChild begins a named child span inheriting the parent's scope.
// Most callers should use obs.Start, which also threads the child
// through the context (and picks the scope up from it).
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.startChild(name, "", attrs...)
}

// startChild begins a child span with an explicit scope ("" inherits
// the parent's).
func (s *Span) startChild(name, scope string, attrs ...Attr) *Span {
	if scope == "" {
		scope = s.scope
	}
	child := &Span{obs: s.obs, name: name, start: time.Now(), scope: scope, attrs: attrs}
	s.mu.Lock()
	s.children = append(s.children, child)
	if s.path == "" {
		s.path = s.name
	}
	child.path = s.path + "/" + name
	s.mu.Unlock()
	s.obs.emit(Event{Time: child.start, Kind: "begin", Span: child.path})
	s.obs.Bus().Publish(BusEvent{Time: child.start, Type: "span_start", Scope: child.scope, Name: child.path})
	return child
}

// SetAttr annotates the span; a repeated key overwrites the earlier
// value.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span with an "ok" status. Ending twice is harmless:
// the first End wins.
func (s *Span) End() { s.end(nil) }

// EndErr closes the span recording err's message; a nil err is an
// ordinary End, and cancellation/deadline errors are distinguished with
// the "cancelled" status so the manifest separates aborted phases from
// failed ones.
func (s *Span) EndErr(err error) { s.end(err) }

func (s *Span) end(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.status = "ok"
	if err != nil {
		s.errMsg = err.Error()
		s.status = "error"
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.status = "cancelled"
		}
	}
	ev := Event{Time: time.Now(), Kind: "end", Span: s.path, Dur: s.dur, Err: s.errMsg}
	s.mu.Unlock()
	s.obs.emit(ev)
	s.obs.Bus().Publish(BusEvent{Time: ev.Time, Type: "span_end", Scope: s.scope, Name: s.path, DurMS: DurMS(ev.Dur), Err: ev.Err})
}

// Duration reports the span's length: final once ended, live (time
// since start) while still open.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// SpanNode is the JSON shape of one span in the run manifest. Times are
// millisecond offsets from the run start so a manifest diff is stable
// across wall-clock runs.
type SpanNode struct {
	Name     string            `json:"name"`
	StartMS  float64           `json:"start_ms"`
	DurMS    float64           `json:"dur_ms"`
	Status   string            `json:"status,omitempty"`
	Error    string            `json:"error,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanNode       `json:"children,omitempty"`
}

// snapshot freezes the span subtree relative to the run start. Open
// spans (e.g. when the manifest is written from a cancelled run) are
// marked "open" with their live duration.
func (s *Span) snapshot(runStart time.Time) *SpanNode {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	node := &SpanNode{
		Name:    s.name,
		StartMS: DurMS(s.start.Sub(runStart)),
		Status:  s.status,
		Error:   s.errMsg,
	}
	if s.ended {
		node.DurMS = DurMS(s.dur)
	} else {
		node.DurMS = DurMS(time.Since(s.start))
		node.Status = "open"
	}
	if len(s.attrs) > 0 {
		node.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			node.Attrs[a.Key] = a.Value
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()

	for _, c := range children {
		node.Children = append(node.Children, c.snapshot(runStart))
	}
	return node
}

// Walk visits the node and every descendant in depth-first order.
func (n *SpanNode) Walk(visit func(*SpanNode)) {
	if n == nil {
		return
	}
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// Names lists every distinct span name in the subtree, sorted — handy
// for asserting phase coverage.
func (n *SpanNode) Names() []string {
	seen := map[string]bool{}
	n.Walk(func(sn *SpanNode) { seen[sn.Name] = true })
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DurMS renders a duration as fractional milliseconds, the unit every
// manifest and latency metric uses.
func DurMS(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
