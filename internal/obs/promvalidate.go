package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file is the consuming half of the Prometheus text support: a
// validator for exposition-format payloads, strict enough to catch the
// mistakes WritePrometheus could realistically make (family/sample
// drift, duplicate series, non-cumulative or unterminated histogram
// buckets). ci.sh pipes live /metrics scrapes through cmd/promcheck,
// which wraps ValidatePrometheusText; the unit tests round-trip
// WritePrometheus output through the same function.

// promValidKind reports whether a # TYPE kind is one this repo emits.
func promValidKind(k string) bool {
	switch k {
	case "counter", "gauge", "histogram", "summary", "untyped":
		return true
	}
	return false
}

// promValidName reports whether a metric or label name fits the
// Prometheus charset.
func promValidName(s string, label bool) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r == ':' && !label:
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// promSeries is one parsed sample line.
type promSeries struct {
	name   string
	labels string // raw {...} text, "" when absent
	le     string // the le label value, histograms only
	value  float64
	line   int
}

// parsePromLine splits `name{labels} value [timestamp]`.
func parsePromLine(line string, n int) (promSeries, error) {
	s := promSeries{line: n}
	rest := line
	if open := strings.IndexByte(rest, '{'); open >= 0 {
		closeIdx := strings.IndexByte(rest, '}')
		if closeIdx < open {
			return s, fmt.Errorf("line %d: unbalanced label braces", n)
		}
		s.name = rest[:open]
		s.labels = rest[open : closeIdx+1]
		rest = strings.TrimSpace(rest[closeIdx+1:])
		for _, pair := range strings.Split(s.labels[1:len(s.labels)-1], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return s, fmt.Errorf("line %d: label %q is not key=\"value\"", n, pair)
			}
			if !promValidName(k, true) {
				return s, fmt.Errorf("line %d: invalid label name %q", n, k)
			}
			uq, err := strconv.Unquote(v)
			if err != nil {
				return s, fmt.Errorf("line %d: label %s value %s is not a quoted string", n, k, v)
			}
			if k == "le" {
				s.le = uq
			}
		}
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return s, fmt.Errorf("line %d: want `name value`, got %q", n, line)
		}
		s.name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !promValidName(s.name, false) {
		return s, fmt.Errorf("line %d: invalid metric name %q", n, s.name)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return s, fmt.Errorf("line %d: want `value [timestamp]` after the name, got %q", n, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("line %d: value %q is not a float", n, fields[0])
	}
	s.value = v
	return s, nil
}

// histSuffix maps a histogram series name onto its family base ("" when
// the name carries no histogram suffix).
func histSuffix(name string) (base, suffix string) {
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, sfx) {
			return strings.TrimSuffix(name, sfx), sfx
		}
	}
	return "", ""
}

// ValidatePrometheusText checks one exposition payload: TYPE headers
// well-formed and unique, every sample under a declared family (with
// histogram suffix rules), no duplicate series, histogram buckets
// cumulative and +Inf-terminated per label set. It returns the number
// of samples checked, or the first structural error.
func ValidatePrometheusText(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	families := make(map[string]string) // name -> kind
	seen := make(map[string]int)        // name+labels -> line
	type bucketKey struct{ name, labels string }
	// Per labelled histogram instance, buckets in arrival order.
	buckets := make(map[bucketKey][]promSeries)
	samples := 0
	n := 0
	for sc.Scan() {
		n++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				return samples, fmt.Errorf("line %d: comment %q is neither # TYPE nor # HELP", n, line)
			}
			if fields[1] == "HELP" {
				continue
			}
			if len(fields) != 4 {
				return samples, fmt.Errorf("line %d: want `# TYPE name kind`, got %q", n, line)
			}
			name, kind := fields[2], fields[3]
			if !promValidName(name, false) {
				return samples, fmt.Errorf("line %d: invalid family name %q", n, name)
			}
			if !promValidKind(kind) {
				return samples, fmt.Errorf("line %d: unknown family kind %q", n, kind)
			}
			if prev, dup := families[name]; dup {
				return samples, fmt.Errorf("line %d: family %s declared twice (first as %s)", n, name, prev)
			}
			families[name] = kind
			continue
		}
		s, err := parsePromLine(line, n)
		if err != nil {
			return samples, err
		}
		samples++
		key := s.name + s.labels
		if prev, dup := seen[key]; dup {
			return samples, fmt.Errorf("line %d: series %s%s already emitted on line %d", n, s.name, s.labels, prev)
		}
		seen[key] = n
		kind, ok := families[s.name]
		if base, sfx := histSuffix(s.name); !ok && base != "" && families[base] == "histogram" {
			kind, ok = "histogram", true
			if sfx == "_bucket" {
				if s.le == "" {
					return samples, fmt.Errorf("line %d: histogram bucket %s has no le label", n, s.name)
				}
				// Group per instance: the label set minus le.
				inst := strings.ReplaceAll(s.labels, fmt.Sprintf("le=%q", s.le), "")
				bk := bucketKey{name: base, labels: inst}
				buckets[bk] = append(buckets[bk], s)
			}
		}
		if !ok {
			return samples, fmt.Errorf("line %d: sample %s has no # TYPE declaration", n, s.name)
		}
		_ = kind
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples in payload")
	}
	for bk, bs := range buckets {
		var prevBound, prevCum float64
		prevBound = math.Inf(-1)
		for i, b := range bs {
			bound := math.Inf(1)
			if b.le != "+Inf" {
				v, err := strconv.ParseFloat(b.le, 64)
				if err != nil {
					return samples, fmt.Errorf("line %d: bucket bound %q is not a float", b.line, b.le)
				}
				bound = v
			}
			if bound <= prevBound {
				return samples, fmt.Errorf("line %d: histogram %s bucket bounds not ascending (%s)", b.line, bk.name, b.le)
			}
			if b.value < prevCum {
				return samples, fmt.Errorf("line %d: histogram %s buckets not cumulative at le=%s", b.line, bk.name, b.le)
			}
			prevBound, prevCum = bound, b.value
			if i == len(bs)-1 && b.le != "+Inf" {
				return samples, fmt.Errorf("line %d: histogram %s instance %s lacks a +Inf bucket", b.line, bk.name, bk.labels)
			}
		}
	}
	return samples, nil
}
