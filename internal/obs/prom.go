package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// This file renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` header per metric family, then
// one sample line per instrument, with the registry's flat
// `base{key=value}` naming convention (see Labeled / LabeledStr)
// parsed back into real Prometheus labels and dotted names mapped to
// underscores. Histograms expose the standard cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`.

// promSample is one flattened sample: a family name, its parsed
// labels, and a rendered value.
type promSample struct {
	labels string // rendered {k="v",...} or ""
	value  string
}

// promFamily groups every instrument sharing a sanitized base name.
type promFamily struct {
	name    string
	kind    string // counter | gauge | histogram
	samples []promSample
}

// promName maps a dotted registry name onto the Prometheus metric
// name charset [a-zA-Z0-9_:], replacing every other rune with '_'.
func promName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promEscape escapes a label value for the exposition format.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// splitLabels parses a registry name in the Labeled/LabeledStr
// convention — `base{k1=v1,k2=v2}` — into its base and rendered
// Prometheus label pairs. Names without the convention come back with
// no labels.
func splitLabels(name string) (base string, labels []string) {
	open := strings.IndexByte(name, '{')
	if open < 0 || !strings.HasSuffix(name, "}") {
		return name, nil
	}
	base = name[:open]
	for _, pair := range strings.Split(name[open+1:len(name)-1], ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			// Not the convention after all; treat the whole name as flat.
			return name, nil
		}
		labels = append(labels, fmt.Sprintf("%s=%q", promName(strings.TrimSpace(k)), promEscape(strings.TrimSpace(v))))
	}
	return base, labels
}

// renderLabels joins parsed label pairs (plus any extras) into the
// `{...}` sample suffix.
func renderLabels(labels []string, extra ...string) string {
	all := append(append([]string(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	return "{" + strings.Join(all, ",") + "}"
}

// formatFloat renders a float the way Prometheus expects (no exponent
// for ordinary magnitudes, `+Inf` handled by callers).
func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format, prefixing each family with namespace (e.g.
// "prochecker"). Families and samples are emitted in sorted order so
// consecutive scrapes diff cleanly. Nil writes nothing.
func (r *Registry) WritePrometheus(w io.Writer, namespace string) error {
	if r == nil {
		return nil
	}
	prefix := ""
	if namespace != "" {
		prefix = promName(namespace) + "_"
	}

	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		histograms[name] = h
	}
	r.mu.RUnlock()

	families := make(map[string]*promFamily)
	family := func(base, kind string) *promFamily {
		name := prefix + promName(base)
		f := families[name]
		if f == nil {
			f = &promFamily{name: name, kind: kind}
			families[name] = f
		}
		return f
	}
	for name, c := range counters {
		base, labels := splitLabels(name)
		f := family(base, "counter")
		f.samples = append(f.samples, promSample{labels: renderLabels(labels), value: fmt.Sprintf("%d", c.Value())})
	}
	for name, g := range gauges {
		base, labels := splitLabels(name)
		f := family(base, "gauge")
		f.samples = append(f.samples, promSample{labels: renderLabels(labels), value: fmt.Sprintf("%d", g.Value())})
	}
	type histBlock struct {
		key   string // instance label set, for deterministic ordering
		lines []promSample
	}
	histFamilies := make(map[string][]histBlock)
	for name, h := range histograms {
		base, labels := splitLabels(name)
		f := family(base, "histogram")
		bounds, counts, count, sum := h.dump()
		var lines []promSample
		cum := int64(0)
		for i, n := range counts {
			cum += n
			le := "+Inf"
			if i < len(bounds) {
				le = formatFloat(bounds[i])
			}
			lines = append(lines, promSample{
				labels: "_bucket" + renderLabels(labels, fmt.Sprintf("le=%q", le)),
				value:  fmt.Sprintf("%d", cum),
			})
		}
		lines = append(lines,
			promSample{labels: "_sum" + renderLabels(labels), value: formatFloat(sum)},
			promSample{labels: "_count" + renderLabels(labels), value: fmt.Sprintf("%d", count)},
		)
		histFamilies[f.name] = append(histFamilies[f.name], histBlock{key: renderLabels(labels), lines: lines})
	}

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := families[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		if f.kind == "histogram" {
			blocks := histFamilies[f.name]
			sort.Slice(blocks, func(i, j int) bool { return blocks[i].key < blocks[j].key })
			for _, blk := range blocks {
				for _, s := range blk.lines {
					if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, s.value); err != nil {
						return err
					}
				}
			}
			continue
		}
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].labels < f.samples[j].labels })
		for _, s := range f.samples {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, s.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// dump freezes the histogram's raw bucket state for exposition.
func (h *Histogram) dump() (bounds []float64, counts []int64, count int64, sum float64) {
	if h == nil {
		return nil, nil, 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append([]float64(nil), h.bounds...)
	counts = append([]int64(nil), h.counts...)
	return bounds, counts, h.count, h.sum
}

// PrometheusHandler serves the registry as a text-format scrape
// endpoint (mounted at /metrics by both the campaign server and the
// obs debug endpoint).
func (r *Registry) PrometheusHandler(namespace string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w, namespace) //nolint:errcheck // client gone mid-scrape
	})
}
