package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func publishN(b *Bus, n int) {
	for i := 0; i < n; i++ {
		b.Publish(BusEvent{Type: "note", Msg: fmt.Sprintf("ev-%d", i)})
	}
}

func TestBusSequencesMonotonicFromOne(t *testing.T) {
	b := NewBus(8, nil)
	for want := uint64(1); want <= 5; want++ {
		if got := b.Publish(BusEvent{Type: "note"}); got != want {
			t.Fatalf("Publish assigned seq %d, want %d", got, want)
		}
	}
	if got := b.Seq(); got != 5 {
		t.Fatalf("Seq() = %d, want 5", got)
	}
}

func TestBusSubscribeReplaysRetained(t *testing.T) {
	b := NewBus(16, nil)
	publishN(b, 6)
	sub := b.Subscribe(0)
	defer sub.Close()
	for want := uint64(1); want <= 6; want++ {
		ev, ok := sub.TryNext()
		if !ok {
			t.Fatalf("TryNext exhausted at seq %d", want)
		}
		if ev.Seq != want {
			t.Fatalf("replayed seq %d, want %d", ev.Seq, want)
		}
	}
	if _, ok := sub.TryNext(); ok {
		t.Fatal("TryNext returned an event past the published history")
	}
}

func TestBusSubscribeFromFuture(t *testing.T) {
	b := NewBus(16, nil)
	publishN(b, 4)
	sub := b.Subscribe(b.Seq() + 1)
	defer sub.Close()
	if ev, ok := sub.TryNext(); ok {
		t.Fatalf("subscriber from future saw historic event %+v", ev)
	}
	b.Publish(BusEvent{Type: "note", Msg: "live"})
	ev, ok := sub.TryNext()
	if !ok || ev.Seq != 5 || ev.Msg != "live" {
		t.Fatalf("subscriber from future got (%+v, %v), want seq 5 live event", ev, ok)
	}
}

func TestBusDropOldestSynthesizesMarker(t *testing.T) {
	reg := NewRegistry()
	b := NewBus(4, reg)
	sub := b.Subscribe(0)
	defer sub.Close()
	// Overrun the ring: 10 events into a 4-slot ring leaves 7..10
	// retained, with the subscriber's cursor still at 1.
	publishN(b, 10)

	ev, ok := sub.TryNext()
	if !ok {
		t.Fatal("TryNext returned no event after overrun")
	}
	if ev.Type != "dropped" {
		t.Fatalf("first event after overrun has type %q, want dropped", ev.Type)
	}
	if ev.Value != 6 {
		t.Fatalf("dropped marker reports %d lost events, want 6", ev.Value)
	}
	if ev.Seq != 6 {
		t.Fatalf("dropped marker seq %d, want 6 (last lost sequence)", ev.Seq)
	}

	// Delivery resumes at the oldest retained event with no further gap.
	for want := uint64(7); want <= 10; want++ {
		ev, ok := sub.TryNext()
		if !ok || ev.Seq != want || ev.Type == "dropped" {
			t.Fatalf("post-marker delivery got (%+v, %v), want seq %d", ev, ok, want)
		}
	}

	if got := reg.Counter("obs.events_dropped").Value(); got != 6 {
		t.Fatalf("obs.events_dropped = %d, want 6", got)
	}
	if got := reg.Counter("obs.events_published").Value(); got != 10 {
		t.Fatalf("obs.events_published = %d, want 10", got)
	}
}

func TestBusPublishNeverBlocksOnSlowConsumer(t *testing.T) {
	b := NewBus(4, nil)
	sub := b.Subscribe(0) // never reads
	defer sub.Close()
	done := make(chan struct{})
	go func() {
		publishN(b, 10_000)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a subscriber that never reads")
	}
}

func TestBusNextBlocksUntilPublish(t *testing.T) {
	b := NewBus(8, nil)
	sub := b.Subscribe(0)
	defer sub.Close()

	got := make(chan BusEvent, 1)
	go func() {
		ev, err := sub.Next(context.Background())
		if err != nil {
			t.Errorf("Next: %v", err)
			return
		}
		got <- ev
	}()
	time.Sleep(20 * time.Millisecond) // let Next park
	b.Publish(BusEvent{Type: "note", Msg: "wake"})
	select {
	case ev := <-got:
		if ev.Msg != "wake" {
			t.Fatalf("Next woke with %+v, want the published event", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next never woke after a publish")
	}
}

func TestBusNextHonoursContextAndClose(t *testing.T) {
	b := NewBus(8, nil)

	sub := b.Subscribe(0)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := sub.Next(ctx)
		errc <- err
	}()
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("Next after cancel: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next ignored context cancellation")
	}
	sub.Close()

	sub2 := b.Subscribe(0)
	go func() {
		_, err := sub2.Next(context.Background())
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	sub2.Close()
	select {
	case err := <-errc:
		if err != ErrBusClosed {
			t.Fatalf("Next after Close: %v, want ErrBusClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next ignored subscription close")
	}
	sub2.Close() // double close is harmless
}

func TestBusConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus(64, NewRegistry())
	const publishers, perPublisher = 4, 500

	var wg sync.WaitGroup
	consumed := make([]int, 3)
	for c := 0; c < len(consumed); c++ {
		sub := b.Subscribe(0)
		wg.Add(1)
		go func(c int, sub *Subscription) {
			defer wg.Done()
			defer sub.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			var last uint64
			for {
				ev, err := sub.Next(ctx)
				if err != nil {
					t.Errorf("consumer %d: %v", c, err)
					return
				}
				if ev.Type != "dropped" && ev.Seq <= last {
					t.Errorf("consumer %d: seq went backwards (%d after %d)", c, ev.Seq, last)
					return
				}
				if ev.Seq > last {
					last = ev.Seq
				}
				consumed[c]++
				if last == publishers*perPublisher {
					return
				}
			}
		}(c, sub)
	}
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			publishN(b, perPublisher)
		}()
	}
	wg.Wait()
	for c, n := range consumed {
		if n == 0 {
			t.Errorf("consumer %d saw no events", c)
		}
	}
}

func TestBusNilSafety(t *testing.T) {
	var b *Bus
	if got := b.Publish(BusEvent{Type: "note"}); got != 0 {
		t.Fatalf("nil bus Publish = %d, want 0", got)
	}
	if got := b.Seq(); got != 0 {
		t.Fatalf("nil bus Seq = %d, want 0", got)
	}
	sub := b.Subscribe(0)
	if sub != nil {
		t.Fatal("nil bus Subscribe returned non-nil subscription")
	}
	if _, ok := sub.TryNext(); ok {
		t.Fatal("nil subscription TryNext reported an event")
	}
	if _, err := sub.Next(context.Background()); err != ErrBusClosed {
		t.Fatalf("nil subscription Next: %v, want ErrBusClosed", err)
	}
	if got := sub.Cursor(); got != 0 {
		t.Fatalf("nil subscription Cursor = %d, want 0", got)
	}
	sub.Close()
}

func TestBusDefaultCapacity(t *testing.T) {
	b := NewBus(0, nil)
	if got := len(b.ring); got != DefaultBusCapacity {
		t.Fatalf("NewBus(0) ring capacity %d, want %d", got, DefaultBusCapacity)
	}
}
