package obs

import (
	"context"
	"testing"
)

// BenchmarkEventBusPublish is the cost every instrumented call site
// pays: one ring append under the bus mutex, no subscribers.
func BenchmarkEventBusPublish(b *testing.B) {
	bus := NewBus(DefaultBusCapacity, nil)
	ev := BusEvent{Type: "span_end", Scope: "j-0001", Name: "mc.explore", DurMS: 1.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(ev)
	}
}

// BenchmarkEventBusPublishNilBus is the uninstrumented path: code
// publishing unconditionally against a nil bus must cost ~nothing.
func BenchmarkEventBusPublishNilBus(b *testing.B) {
	var bus *Bus
	ev := BusEvent{Type: "span_end", Name: "mc.explore"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(ev)
	}
}

// BenchmarkEventBusPublishWithSubscriber adds one live consumer reading
// at full speed — the SSE-streaming steady state.
func BenchmarkEventBusPublishWithSubscriber(b *testing.B) {
	bus := NewBus(DefaultBusCapacity, nil)
	sub := bus.Subscribe(0)
	defer sub.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := sub.Next(ctx); err != nil {
				return
			}
		}
	}()
	ev := BusEvent{Type: "span_end", Scope: "j-0001", Name: "mc.explore", DurMS: 1.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(ev)
	}
	b.StopTimer()
	cancel()
	<-done
}
