package obs

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// goldenManifest is a hand-built manifest with fixed values, so its
// encoding is fully deterministic.
func goldenManifest() *Manifest {
	return &Manifest{
		Tool:          "prochecker",
		SchemaVersion: ManifestSchemaVersion,
		StartedAt:     time.Date(2021, 7, 7, 12, 0, 0, 0, time.UTC),
		WallMS:        1234.5,
		Config:        map[string]string{"impl": "srsLTE", "check": "all"},
		Spans: &SpanNode{
			Name: "run", DurMS: 1234.5, Status: "ok",
			Children: []*SpanNode{
				{
					Name: "analyze", StartMS: 1, DurMS: 900, Status: "ok",
					Attrs: map[string]string{"impl": "srsLTE"},
					Children: []*SpanNode{
						{Name: "conformance.suite", StartMS: 2, DurMS: 400, Status: "ok"},
						{Name: "extract.model", StartMS: 402, DurMS: 100, Status: "ok"},
						{Name: "threat.compose", StartMS: 502, DurMS: 50, Status: "ok"},
					},
				},
				{Name: "check.catalogue", StartMS: 901, DurMS: 300, Status: "cancelled",
					Error: "context canceled"},
			},
		},
		Metrics: map[string]any{
			"mc.states_explored": float64(280411),
			"mc.check_ms": map[string]any{
				"count": float64(1), "sum": float64(55), "mean": float64(55),
				"min": float64(55), "max": float64(55),
				"buckets": map[string]any{"le_100": float64(1)},
			},
		},
		Verdicts: []ManifestVerdict{
			{ID: "S06", Verdict: "attack", DurMS: 55, Detail: "attack in 2 step(s)"},
			{ID: "S07", Verdict: "verified", DurMS: 20},
		},
		Failure: &ManifestFailure{Class: "cancelled", ExitCode: 2,
			Errors: []string{"catalogue stopped after 2 of 62 properties"}},
	}
}

// TestManifestGolden pins the on-disk JSON shape: a schema change that
// alters the encoding must be deliberate (regenerate with -update).
var update = os.Getenv("UPDATE_GOLDEN") != ""

func TestManifestGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenManifest().Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	golden := filepath.Join("testdata", "manifest.golden.json")
	if update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (set UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("manifest encoding drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestManifestRoundTrip checks emit -> decode -> re-encode is lossless:
// the decoded document re-encodes byte-identically.
func TestManifestRoundTrip(t *testing.T) {
	var first bytes.Buffer
	if err := goldenManifest().Encode(&first); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	decoded, err := DecodeManifest(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	var second bytes.Buffer
	if err := decoded.Encode(&second); err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round trip not lossless.\nfirst:\n%s\nsecond:\n%s", first.Bytes(), second.Bytes())
	}
	if decoded.Verdicts[0].ID != "S06" || decoded.Failure.ExitCode != 2 {
		t.Fatalf("decoded fields lost: %+v", decoded)
	}
}

func TestManifestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	if err := goldenManifest().WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	m, err := ReadManifestFile(path)
	if err != nil {
		t.Fatalf("ReadManifestFile: %v", err)
	}
	if !reflect.DeepEqual(m, goldenManifest()) {
		t.Fatalf("file round trip mismatch: %+v", m)
	}
}

// TestObserverManifest exercises the live path: an observer with real
// spans and metrics freezes into a manifest whose JSON decodes back.
func TestObserverManifest(t *testing.T) {
	o := New()
	ctx := NewContext(context.Background(), o)
	o.Metrics().Counter("mc.states_explored").Add(99)
	o.Metrics().Histogram("mc.check_ms", nil).Observe(12.5)
	c1, s1 := Start(ctx, "analyze")
	_, s2 := Start(c1, "conformance.suite")
	s2.End()
	s1.End()

	m := o.Manifest()
	if m.Tool != "prochecker" || m.SchemaVersion != ManifestSchemaVersion {
		t.Fatalf("header = %+v", m)
	}
	want := []string{"analyze", "conformance.suite", "run"}
	if got := m.Spans.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("span names = %v, want %v", got, want)
	}
	if m.Metrics["mc.states_explored"] != int64(99) {
		t.Fatalf("metrics = %v", m.Metrics)
	}

	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := DecodeManifest(&buf)
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	if got := back.Spans.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded span names = %v, want %v", got, want)
	}
}

// TestManifestUnderCancellation mirrors a deadline-cut run: some spans
// ended with cancellation errors, some never ended at all. The manifest
// must still be a complete, well-formed tree.
func TestManifestUnderCancellation(t *testing.T) {
	o := New()
	root := NewContext(context.Background(), o)
	cctx, cancel := context.WithCancel(root)

	c1, analyze := Start(cctx, "analyze")
	_, suite := Start(c1, "conformance.suite")
	cancel()
	suite.EndErr(fmt.Errorf("suite stopped: %w", cctx.Err()))
	analyze.EndErr(cctx.Err())
	_, orphan := Start(root, "check.catalogue")
	_ = orphan // deliberately never ended — manifest written mid-flight

	m := o.Manifest()
	byName := map[string]*SpanNode{}
	m.Spans.Walk(func(n *SpanNode) { byName[n.Name] = n })
	if byName["analyze"].Status != "cancelled" || byName["conformance.suite"].Status != "cancelled" {
		t.Fatalf("cancelled spans: analyze=%q suite=%q",
			byName["analyze"].Status, byName["conformance.suite"].Status)
	}
	if byName["check.catalogue"].Status != "open" {
		t.Fatalf("unfinished span status = %q, want open", byName["check.catalogue"].Status)
	}
	if byName["run"].Status != "open" {
		t.Fatalf("root status = %q, want open (observer still live)", byName["run"].Status)
	}

	// Still a valid JSON document end to end.
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := DecodeManifest(&buf); err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
}

func TestNilObserverManifest(t *testing.T) {
	var o *Observer
	m := o.Manifest()
	if m.Tool != "prochecker" || m.SchemaVersion != ManifestSchemaVersion {
		t.Fatalf("nil manifest header = %+v", m)
	}
	if m.Spans != nil || m.Metrics != nil {
		t.Fatalf("nil manifest should be minimal, got %+v", m)
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
}
