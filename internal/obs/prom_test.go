package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func promLines(t *testing.T, r *Registry) []string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b, "prochecker"); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := strings.TrimRight(b.String(), "\n")
	if out == "" {
		return nil
	}
	return strings.Split(out, "\n")
}

func TestWritePrometheusFlatInstruments(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs.submitted").Add(7)
	r.Gauge("jobs.queue_depth").Set(3)

	got := strings.Join(promLines(t, r), "\n")
	want := strings.Join([]string{
		"# TYPE prochecker_jobs_queue_depth gauge",
		"prochecker_jobs_queue_depth 3",
		"# TYPE prochecker_jobs_submitted counter",
		"prochecker_jobs_submitted 7",
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePrometheusParsesLabelConvention(t *testing.T) {
	r := NewRegistry()
	r.Counter(Labeled("mc.states", "shard", 0)).Add(10)
	r.Counter(Labeled("mc.states", "shard", 1)).Add(20)
	r.Counter(LabeledStr("jobs.terminal_by_impl", "impl", "srsue")).Inc()

	lines := promLines(t, r)
	wantLines := []string{
		`prochecker_jobs_terminal_by_impl{impl="srsue"} 1`,
		`prochecker_mc_states{shard="0"} 10`,
		`prochecker_mc_states{shard="1"} 20`,
	}
	for _, want := range wantLines {
		found := false
		for _, line := range lines {
			if line == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("exposition missing sample %q in:\n%s", want, strings.Join(lines, "\n"))
		}
	}
	// Both shard instances must sit under ONE family header.
	headers := 0
	for _, line := range lines {
		if strings.HasPrefix(line, "# TYPE prochecker_mc_states ") {
			headers++
		}
	}
	if headers != 1 {
		t.Errorf("family prochecker_mc_states has %d TYPE headers, want 1", headers)
	}
}

func TestWritePrometheusHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rpc.latency_ms", []float64{10, 100})
	h.Observe(5)   // bucket le=10
	h.Observe(50)  // bucket le=100
	h.Observe(500) // +Inf

	got := strings.Join(promLines(t, r), "\n")
	want := strings.Join([]string{
		"# TYPE prochecker_rpc_latency_ms histogram",
		`prochecker_rpc_latency_ms_bucket{le="10"} 1`,
		`prochecker_rpc_latency_ms_bucket{le="100"} 2`,
		`prochecker_rpc_latency_ms_bucket{le="+Inf"} 3`,
		"prochecker_rpc_latency_ms_sum 555",
		"prochecker_rpc_latency_ms_count 3",
	}, "\n")
	if got != want {
		t.Fatalf("histogram exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePrometheusLabelledHistogramKeepsBucketOrder(t *testing.T) {
	r := NewRegistry()
	// Bounds where lexical ordering would scramble: "2" > "10" lexically.
	r.Histogram(Labeled("mc.level_ms", "shard", 1), []float64{2, 10}).Observe(1)
	r.Histogram(Labeled("mc.level_ms", "shard", 0), []float64{2, 10}).Observe(5)

	lines := promLines(t, r)
	var buckets []string
	for _, line := range lines {
		if strings.HasPrefix(line, "prochecker_mc_level_ms_bucket") {
			buckets = append(buckets, line)
		}
	}
	want := []string{
		`prochecker_mc_level_ms_bucket{shard="0",le="2"} 0`,
		`prochecker_mc_level_ms_bucket{shard="0",le="10"} 1`,
		`prochecker_mc_level_ms_bucket{shard="0",le="+Inf"} 1`,
		`prochecker_mc_level_ms_bucket{shard="1",le="2"} 1`,
		`prochecker_mc_level_ms_bucket{shard="1",le="10"} 1`,
		`prochecker_mc_level_ms_bucket{shard="1",le="+Inf"} 1`,
	}
	if len(buckets) != len(want) {
		t.Fatalf("got %d bucket lines, want %d:\n%s", len(buckets), len(want), strings.Join(buckets, "\n"))
	}
	for i := range want {
		if buckets[i] != want[i] {
			t.Fatalf("bucket line %d = %q, want %q (le order must stay ascending within each instance)", i, buckets[i], want[i])
		}
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"jobs.queue_depth": "jobs_queue_depth",
		"a-b.c":            "a_b_c",
		"0abc":             "_abc", // leading digit is not a valid first rune
		"x0abc":            "x0abc",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromEscape(t *testing.T) {
	if got := promEscape("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("promEscape = %q", got)
	}
}

func TestSplitLabelsMalformedStaysFlat(t *testing.T) {
	for _, name := range []string{"plain", "odd{noequals}", "trail{k=v"} {
		base, labels := splitLabels(name)
		if base != name || labels != nil {
			t.Errorf("splitLabels(%q) = (%q, %v), want the name untouched", name, base, labels)
		}
	}
}

func TestPrometheusHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("obs.events_published").Add(2)
	srv := httptest.NewServer(r.PrometheusHandler("prochecker"))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		b.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	if !strings.Contains(b.String(), "prochecker_obs_events_published 2") {
		t.Fatalf("scrape body missing counter sample:\n%s", b.String())
	}
}

// TestWritePrometheusValidates round-trips a fully loaded registry
// through the in-repo exposition validator — the same check ci.sh runs
// against live scrapes via cmd/promcheck.
func TestWritePrometheusValidates(t *testing.T) {
	r := NewRegistry()
	r.Counter("obs.events_published").Add(3)
	r.Counter(Labeled("mc.states", "shard", 2)).Add(9)
	r.Counter(LabeledStr("jobs.terminal_by_impl", "impl", `we"ird`)).Inc()
	r.Gauge("jobs.queue_depth").Set(1)
	h := r.Histogram(Labeled("mc.level_ms", "shard", 0), nil)
	for _, v := range []float64{0.5, 3, 40, 9999, 123456} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b, "prochecker"); err != nil {
		t.Fatal(err)
	}
	samples, err := ValidatePrometheusText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition output fails its own validator: %v\npayload:\n%s", err, b.String())
	}
	if samples == 0 {
		t.Fatal("validator counted no samples")
	}
}

func TestValidatePrometheusTextRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":           "some_metric 1\n",
		"dup family":        "# TYPE a counter\n# TYPE a counter\na 1\n",
		"dup series":        "# TYPE a counter\na 1\na 2\n",
		"bad value":         "# TYPE a counter\na one\n",
		"bad name":          "# TYPE 0a counter\n0a 1\n",
		"bad kind":          "# TYPE a widget\na 1\n",
		"empty":             "\n",
		"no +Inf bucket":    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"not cumulative":    "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"bounds descending": "# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"bucket without le": "# TYPE h histogram\nh_bucket{x=\"1\"} 1\n",
		"unquoted label":    "# TYPE a counter\na{k=v} 1\n",
	}
	for name, payload := range cases {
		if _, err := ValidatePrometheusText(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: validator accepted malformed payload:\n%s", name, payload)
		}
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b, "x"); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry wrote (%q, %v), want nothing", b.String(), err)
	}
}
