package obs

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestNilObserverIsNoOp(t *testing.T) {
	var o *Observer
	if o.Metrics() != nil {
		t.Fatal("nil observer should hand out a nil registry")
	}
	if o.Root() != nil {
		t.Fatal("nil observer should have a nil root span")
	}
	o.Notef(LevelNormal, "ignored %d", 1)

	// The whole instrument chain must be callable through nil.
	var reg *Registry
	reg.Counter("x").Add(3)
	reg.Gauge("y").Set(7)
	reg.Gauge("y").SetMax(9)
	reg.Histogram("z", nil).Observe(1.5)
	if got := reg.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter Value = %d, want 0", got)
	}
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}

	var s *Span
	s.SetAttr("k", "v")
	s.End()
	s.EndErr(errors.New("boom"))
	if s.StartChild("c") != nil {
		t.Fatal("nil span StartChild should return nil")
	}
	if s.Duration() != 0 {
		t.Fatal("nil span Duration should be 0")
	}
}

func TestStartWithoutObserverLeavesContextUntouched(t *testing.T) {
	ctx := context.Background()
	ctx2, span := Start(ctx, "phase")
	if span != nil {
		t.Fatal("Start without observer should return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("Start without observer should return ctx unchanged")
	}
	if FromContext(ctx) != nil || SpanFromContext(ctx) != nil {
		t.Fatal("empty context should carry no observer or span")
	}
	if NewContext(ctx, nil) != ctx {
		t.Fatal("NewContext(nil) should return ctx unchanged")
	}
}

func TestSpanNesting(t *testing.T) {
	o := New()
	ctx := NewContext(context.Background(), o)
	if FromContext(ctx) != o {
		t.Fatal("FromContext should return the installed observer")
	}
	if SpanFromContext(ctx) != o.Root() {
		t.Fatal("fresh context should carry the root span")
	}

	ctx1, outer := Start(ctx, "outer", A("k", "v"))
	_, inner := Start(ctx1, "inner")
	// A sibling started from the outer context, as worker pools do.
	_, sibling := Start(ctx1, "sibling")
	inner.End()
	sibling.End()
	outer.End()

	tree := o.Root().snapshot(o.start)
	if tree.Name != "run" || len(tree.Children) != 1 {
		t.Fatalf("root snapshot = %q with %d children, want run/1", tree.Name, len(tree.Children))
	}
	on := tree.Children[0]
	if on.Name != "outer" || on.Status != "ok" || on.Attrs["k"] != "v" {
		t.Fatalf("outer node = %+v", on)
	}
	var kids []string
	for _, c := range on.Children {
		kids = append(kids, c.Name)
	}
	if !reflect.DeepEqual(kids, []string{"inner", "sibling"}) {
		t.Fatalf("outer children = %v", kids)
	}
	want := []string{"inner", "outer", "run", "sibling"}
	if got := tree.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestSetAttrOverwrites(t *testing.T) {
	o := New()
	s := o.Root().StartChild("phase", A("k", "old"))
	s.SetAttr("k", "new")
	s.SetAttr("other", "x")
	s.End()
	n := s.snapshot(o.start)
	if n.Attrs["k"] != "new" || n.Attrs["other"] != "x" || len(n.Attrs) != 2 {
		t.Fatalf("attrs = %v", n.Attrs)
	}
}

func TestEndErrStatus(t *testing.T) {
	o := New()
	cases := []struct {
		err    error
		status string
	}{
		{nil, "ok"},
		{errors.New("boom"), "error"},
		{fmt.Errorf("wrapped: %w", context.Canceled), "cancelled"},
		{fmt.Errorf("wrapped: %w", context.DeadlineExceeded), "cancelled"},
	}
	for _, tc := range cases {
		s := o.Root().StartChild("phase")
		s.EndErr(tc.err)
		if got := s.snapshot(o.start).Status; got != tc.status {
			t.Errorf("EndErr(%v) status = %q, want %q", tc.err, got, tc.status)
		}
	}
}

func TestDoubleEndKeepsFirst(t *testing.T) {
	o := New()
	s := o.Root().StartChild("phase")
	s.End()
	d := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.EndErr(errors.New("late"))
	if s.Duration() != d {
		t.Fatal("second End should not change the duration")
	}
	if got := s.snapshot(o.start).Status; got != "ok" {
		t.Fatalf("status after double end = %q, want ok", got)
	}
}

func TestOpenSpanSnapshot(t *testing.T) {
	o := New()
	s := o.Root().StartChild("never-ended")
	time.Sleep(2 * time.Millisecond)
	n := s.snapshot(o.start)
	if n.Status != "open" {
		t.Fatalf("open span status = %q, want open", n.Status)
	}
	if n.DurMS <= 0 {
		t.Fatalf("open span should report a live duration, got %v", n.DurMS)
	}
}

func TestEventSinkLevels(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	sink := func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}

	// Normal level: notes at LevelNormal pass, span events do not.
	o := New(WithEventSink(LevelNormal, sink))
	s := o.Root().StartChild("phase")
	s.End()
	o.Notef(LevelNormal, "hello %s", "world")
	o.Notef(LevelVerbose, "too detailed")
	if len(events) != 1 || events[0].Msg != "hello world" {
		t.Fatalf("normal-level events = %+v", events)
	}

	// Verbose level: begin/end stream through.
	events = nil
	ov := New(WithEventSink(LevelVerbose, sink))
	sv := ov.Root().StartChild("phase")
	sv.EndErr(errors.New("boom"))
	if len(events) != 2 {
		t.Fatalf("verbose-level got %d events, want 2", len(events))
	}
	if events[0].Kind != "begin" || events[0].Span != "run/phase" {
		t.Fatalf("begin event = %+v", events[0])
	}
	if events[1].Kind != "end" || events[1].Err != "boom" || events[1].Dur <= 0 {
		t.Fatalf("end event = %+v", events[1])
	}

	// Quiet: even notes at normal level are suppressed.
	events = nil
	oq := New(WithEventSink(LevelQuiet, sink))
	oq.Notef(LevelNormal, "suppressed")
	oq.Root().StartChild("phase").End()
	if len(events) != 0 {
		t.Fatalf("quiet-level events = %+v", events)
	}
}

// TestConcurrentSpans hammers one parent with concurrent children, as
// the catalogue worker pool does, under -race.
func TestConcurrentSpans(t *testing.T) {
	o := New()
	ctx := NewContext(context.Background(), o)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cctx, s := Start(ctx, "worker")
			s.SetAttr("i", fmt.Sprint(i))
			_, gs := Start(cctx, "grandchild")
			gs.End()
			s.End()
		}(i)
	}
	wg.Wait()
	tree := o.Root().snapshot(o.start)
	if len(tree.Children) != 16 {
		t.Fatalf("root has %d children, want 16", len(tree.Children))
	}
	total := 0
	tree.Walk(func(n *SpanNode) { total++ })
	if total != 33 { // run + 16 workers + 16 grandchildren
		t.Fatalf("walked %d nodes, want 33", total)
	}
}
