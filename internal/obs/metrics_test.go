package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if r.Counter("c") != c {
		t.Fatal("Counter should return the same instrument for the same name")
	}
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	g.SetMax(5) // below current: no-op
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.SetMax(100)
	if got := g.Value(); got != 100 {
		t.Fatalf("gauge after SetMax = %d, want 100", got)
	}

	h := r.Histogram("h", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 5, 50} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 4 || snap.Sum != 60.5 || snap.Min != 0.5 || snap.Max != 50 {
		t.Fatalf("histogram snapshot = %+v", snap)
	}
	wantBuckets := map[string]int64{"le_1": 1, "le_10": 2, "+Inf": 1}
	if !reflect.DeepEqual(snap.Buckets, wantBuckets) {
		t.Fatalf("buckets = %v, want %v", snap.Buckets, wantBuckets)
	}

	// Default bounds apply when nil is given, and first creation wins.
	hd := r.Histogram("hd", nil)
	if len(hd.bounds) != len(DefaultBuckets) {
		t.Fatalf("default bounds len = %d, want %d", len(hd.bounds), len(DefaultBuckets))
	}
	if r.Histogram("hd", []float64{99}) != hd {
		t.Fatal("second Histogram call should return the first instrument")
	}
}

func TestRegistrySnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("states").Add(42)
	r.Gauge("width").Set(7)
	r.Histogram("lat", []float64{10}).Observe(3)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	if snap["states"] != int64(42) || snap["width"] != int64(7) {
		t.Fatalf("snapshot = %v", snap)
	}
	// The whole snapshot must be JSON-marshalable (expvar renders it).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
}

// TestRegistryConcurrent hammers every instrument kind from many
// goroutines — including instrument creation races and concurrent
// snapshots — and checks the totals. Run under -race this is the
// registry's thread-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Counter(fmt.Sprintf("own.%d", w%4)).Inc()
				r.Gauge("g").SetMax(int64(i))
				r.Histogram("h", nil).Observe(float64(i % 100))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("shared counter = %d, want %d", got, workers*perWorker)
	}
	var own int64
	for i := 0; i < 4; i++ {
		own += r.Counter(fmt.Sprintf("own.%d", i)).Value()
	}
	if own != workers*perWorker {
		t.Fatalf("own counters sum = %d, want %d", own, workers*perWorker)
	}
	if got := r.Histogram("h", nil).Snapshot().Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != perWorker-1 {
		t.Fatalf("gauge max = %d, want %d", got, perWorker-1)
	}
}

func TestPublishExpvarOnce(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	if !r.PublishExpvar("obs_test_metrics") {
		t.Fatal("first publish should win")
	}
	// A second publish (same or another registry) must not panic and
	// must report losing.
	if r.PublishExpvar("obs_test_metrics") {
		t.Fatal("second publish should report false")
	}
	if NewRegistry().PublishExpvar("obs_test_metrics") {
		t.Fatal("publish from another registry should report false")
	}
	var nilReg *Registry
	if nilReg.PublishExpvar("obs_test_nil") {
		t.Fatal("nil registry publish should report false")
	}
}

// serveTestRegistry is shared by every test that calls Serve: expvar
// registration is process-global and first-wins, so Serve calls with
// distinct registries would make the /debug/vars content depend on
// test order under -shuffle.
var serveTestRegistry = NewRegistry()

func TestServeEndpoint(t *testing.T) {
	r := serveTestRegistry
	r.Counter("mc.states_explored").Add(1234)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	if !strings.Contains(srv.Addr, ":") {
		t.Fatalf("Addr = %q, want host:port", srv.Addr)
	}

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		rec := httptest.NewRecorder()
		if _, err := rec.Body.ReadFrom(resp.Body); err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		return rec.Body.String()
	}

	vars := get("/debug/vars")
	if !strings.Contains(vars, "mc.states_explored") {
		t.Fatalf("/debug/vars missing registry metric:\n%s", vars)
	}
	if got := get("/healthz"); !strings.Contains(got, "ok") {
		t.Fatalf("/healthz = %q", got)
	}
	if got := get("/debug/pprof/"); !strings.Contains(got, "goroutine") {
		t.Fatal("/debug/pprof/ index should list profiles")
	}
	if got := get("/metrics"); !strings.Contains(got, "prochecker_mc_states_explored 1234") {
		t.Fatalf("/metrics missing Prometheus sample:\n%s", got)
	}
}

// TestServeReadinessHook drives the /healthz readiness hook through its
// states: no hook (200), hook erroring (503 with the error as body,
// the draining signal orchestrators act on), hook healthy again (200),
// hook removed (200).
func TestServeReadinessHook(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", serveTestRegistry)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	probe := func() (int, string) {
		resp, err := http.Get("http://" + srv.Addr + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		defer resp.Body.Close()
		rec := httptest.NewRecorder()
		if _, err := rec.Body.ReadFrom(resp.Body); err != nil {
			t.Fatalf("reading /healthz body: %v", err)
		}
		return resp.StatusCode, rec.Body.String()
	}

	if code, _ := probe(); code != http.StatusOK {
		t.Fatalf("hookless /healthz = %d, want 200", code)
	}
	srv.SetReadiness(func() error { return errors.New("draining") })
	code, body := probe()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503", code)
	}
	if !strings.Contains(body, "draining") {
		t.Fatalf("draining /healthz body = %q, want the hook's error text", body)
	}
	srv.SetReadiness(func() error { return nil })
	if code, _ := probe(); code != http.StatusOK {
		t.Fatalf("ready-again /healthz = %d, want 200", code)
	}
	srv.SetReadiness(nil)
	if code, _ := probe(); code != http.StatusOK {
		t.Fatalf("hook-removed /healthz = %d, want 200", code)
	}

	var nilSrv *Server
	nilSrv.SetReadiness(func() error { return nil }) // nil-safe
}
