package obs

import (
	"context"
	"errors"
	"sync"
	"time"
)

// BusEvent is one entry of the live event stream: a span boundary, a
// job or campaign lifecycle transition, a per-level exploration
// progress report, a metric delta, or a synthetic "dropped" marker a
// lagging subscriber receives in place of events the ring has already
// recycled. Which fields are meaningful depends on Type.
type BusEvent struct {
	// Seq is the bus-assigned sequence number, monotonically increasing
	// from 1. SSE endpoints expose it as the event id so reconnecting
	// clients resume without loss while the event is still retained.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Type is one of "span_start", "span_end", "note", "metric", "job",
	// "campaign", "lease", "progress" or "dropped".
	Type string `json:"type"`
	// Scope names the job or campaign the event belongs to ("" for
	// process-wide events); streaming endpoints filter on it.
	Scope string `json:"scope,omitempty"`
	// Name identifies the subject: span path, metric name, or lifecycle
	// state.
	Name  string  `json:"name,omitempty"`
	Value int64   `json:"value,omitempty"`
	DurMS float64 `json:"dur_ms,omitempty"`
	Err   string  `json:"err,omitempty"`
	Msg   string  `json:"msg,omitempty"`
	// Attrs carries small event-specific annotations (attempt numbers,
	// frontier widths, member job IDs).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// DefaultBusCapacity is the ring size used when NewBus is given a
// non-positive capacity: enough to retain a whole mid-sized campaign's
// lifecycle plus per-level progress while a reconnecting client
// catches up.
const DefaultBusCapacity = 4096

// ErrBusClosed is returned by Subscription.Next once the subscription
// has been closed.
var ErrBusClosed = errors.New("obs: subscription closed")

// Bus is a bounded, sequence-numbered fan-out ring of BusEvents. One
// publisher side (observers, the job service, the exploration engine)
// appends; any number of subscribers read at their own pace through
// cursors into the shared ring. Publish never blocks: a subscriber
// that falls more than the ring capacity behind loses the overwritten
// events, counted in obs.events_dropped and surfaced to that
// subscriber as a synthetic "dropped" marker event. All methods are
// nil-safe, so instrumented code publishes unconditionally.
type Bus struct {
	reg *Registry

	mu   sync.Mutex
	ring []BusEvent // index seq-1 mod cap
	seq  uint64     // last assigned sequence (0 = none yet)
	subs map[*Subscription]struct{}
}

// NewBus builds a bus retaining up to capacity events
// (DefaultBusCapacity when capacity <= 0). The registry receives the
// bus's own telemetry (obs.events_published, obs.events_dropped) and
// may be nil.
func NewBus(capacity int, reg *Registry) *Bus {
	if capacity <= 0 {
		capacity = DefaultBusCapacity
	}
	// Pre-register the bus counters so an idle bus already exposes its
	// series (at zero) on a metrics scrape.
	if reg != nil {
		reg.Counter("obs.events_published")
		reg.Counter("obs.events_dropped")
	}
	return &Bus{
		reg:  reg,
		ring: make([]BusEvent, capacity),
		subs: make(map[*Subscription]struct{}),
	}
}

// Publish assigns the event its sequence number (and timestamp, when
// unset), appends it to the ring and wakes subscribers. It never
// blocks on slow consumers and returns the assigned sequence (0 for a
// nil bus).
func (b *Bus) Publish(ev BusEvent) uint64 {
	if b == nil {
		return 0
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	b.ring[(ev.Seq-1)%uint64(len(b.ring))] = ev
	for sub := range b.subs {
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
	b.mu.Unlock()
	b.reg.Counter("obs.events_published").Inc()
	return ev.Seq
}

// Seq reports the last assigned sequence number (0 before any event).
func (b *Bus) Seq() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// oldestLocked is the lowest sequence still retained in the ring
// (seq+1 when the ring is empty, so cursors at it block until the
// next publish).
func (b *Bus) oldestLocked() uint64 {
	if n := uint64(len(b.ring)); b.seq > n {
		return b.seq - n + 1
	}
	return 1
}

// Subscribe attaches a new subscriber whose cursor starts at fromSeq:
// 0 (or any sequence at or below the oldest retained) replays
// everything still in the ring; Seq()+1 skips history and observes
// only future events. Nil bus returns nil; a nil *Subscription's
// methods are no-ops that report closure.
func (b *Bus) Subscribe(fromSeq uint64) *Subscription {
	if b == nil {
		return nil
	}
	sub := &Subscription{
		bus:    b,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	b.mu.Lock()
	sub.cursor = fromSeq
	if sub.cursor == 0 {
		sub.cursor = 1
	}
	b.subs[sub] = struct{}{}
	b.mu.Unlock()
	return sub
}

// Subscription is one reader's cursor into the bus ring. Next/TryNext
// deliver events in sequence order; a cursor the ring has overtaken is
// snapped forward to the oldest retained event after delivering one
// synthetic "dropped" marker accounting for the gap. Not safe for
// concurrent Next calls from multiple goroutines.
type Subscription struct {
	bus    *Bus
	cursor uint64 // next sequence to deliver
	notify chan struct{}
	done   chan struct{}
	once   sync.Once
}

// nextLocked fetches the next deliverable event, if any, advancing the
// cursor. Called with bus.mu held.
func (s *Subscription) nextLocked() (BusEvent, bool) {
	b := s.bus
	if oldest := b.oldestLocked(); s.cursor < oldest {
		gap := oldest - s.cursor
		s.cursor = oldest
		b.reg.Counter("obs.events_dropped").Add(int64(gap))
		return BusEvent{
			Seq:   oldest - 1,
			Time:  time.Now(),
			Type:  "dropped",
			Value: int64(gap),
			Msg:   "events dropped: subscriber fell behind ring retention",
		}, true
	}
	if s.cursor <= b.seq {
		ev := b.ring[(s.cursor-1)%uint64(len(b.ring))]
		s.cursor++
		return ev, true
	}
	return BusEvent{}, false
}

// TryNext returns the next event without blocking; ok is false when
// the subscriber is fully caught up (or the subscription is nil or
// closed).
func (s *Subscription) TryNext() (BusEvent, bool) {
	if s == nil {
		return BusEvent{}, false
	}
	select {
	case <-s.done:
		return BusEvent{}, false
	default:
	}
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	return s.nextLocked()
}

// Next blocks until an event is available, the context is cancelled,
// or the subscription is closed.
func (s *Subscription) Next(ctx context.Context) (BusEvent, error) {
	if s == nil {
		return BusEvent{}, ErrBusClosed
	}
	for {
		s.bus.mu.Lock()
		ev, ok := s.nextLocked()
		s.bus.mu.Unlock()
		if ok {
			return ev, nil
		}
		select {
		case <-s.notify:
		case <-ctx.Done():
			return BusEvent{}, ctx.Err()
		case <-s.done:
			return BusEvent{}, ErrBusClosed
		}
	}
}

// Cursor reports the next sequence the subscription will deliver —
// after a Next, the last delivered sequence + 1.
func (s *Subscription) Cursor() uint64 {
	if s == nil {
		return 0
	}
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	return s.cursor
}

// Close detaches the subscription; a blocked Next returns
// ErrBusClosed. Closing twice is harmless.
func (s *Subscription) Close() {
	if s == nil {
		return
	}
	s.once.Do(func() {
		s.bus.mu.Lock()
		delete(s.bus.subs, s)
		s.bus.mu.Unlock()
		close(s.done)
	})
}
