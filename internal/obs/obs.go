// Package obs is the pipeline's observability layer: a span API that
// records where a run spends its time (phase tree with durations,
// attributes and error status), a concurrency-safe metrics registry
// (counters, gauges, histograms — published via expvar), an HTTP serve
// mode exposing expvar and net/http/pprof for live profiling, and a
// machine-readable run manifest combining all of it with the run's
// configuration and verdicts.
//
// The layer is strictly opt-in and zero-cost when disabled: every
// method is nil-safe, so instrumented code obtains its Observer (and
// its metric instruments) from the context once and calls through nil
// receivers when no observer was installed — no allocation, no
// locking, no branching beyond a nil check. The package depends on the
// standard library only.
package obs

import (
	"context"
	"fmt"
	"time"
)

// Level grades event verbosity: the CLI's -quiet/-v flags map onto it.
type Level int8

// Verbosity levels, in increasing detail.
const (
	// LevelQuiet suppresses everything but the final results.
	LevelQuiet Level = iota - 1
	// LevelNormal is the default: progress summaries only.
	LevelNormal
	// LevelVerbose streams span begin/end events as they happen.
	LevelVerbose
)

// Event is one entry of the observer's live event stream: a span
// beginning or ending, or a free-form note.
type Event struct {
	Time time.Time
	// Kind is "begin", "end" or "note".
	Kind string
	// Span is the originating span's slash-joined path (empty for
	// observer-level notes).
	Span string
	// Dur is the span duration on "end" events.
	Dur time.Duration
	// Err is the span's recorded error on "end" events, if any.
	Err string
	// Msg is the text of "note" events.
	Msg string
}

// Observer owns one run's telemetry: the span tree rooted at the run
// itself, the metrics registry, and the optional live event sink. The
// zero value is not useful — construct with New. A nil *Observer is a
// valid no-op recorder: every method short-circuits.
type Observer struct {
	reg   *Registry
	root  *Span
	start time.Time
	level Level
	sink  func(Event)
	bus   *Bus
}

// ObserverOption tunes New.
type ObserverOption func(*Observer)

// WithEventSink installs a live event callback. The sink is invoked
// synchronously from whatever goroutine begins or ends a span, so it
// must be safe for concurrent use (the CLI's sink serialises through a
// mutex before writing to stderr).
func WithEventSink(level Level, sink func(Event)) ObserverOption {
	return func(o *Observer) {
		o.level = level
		o.sink = sink
	}
}

// WithRegistry makes the observer record into an existing registry
// instead of a fresh one (e.g. the process-wide expvar-published one).
func WithRegistry(r *Registry) ObserverOption {
	return func(o *Observer) { o.reg = r }
}

// WithBus attaches a live event bus: every span begin/end and note is
// published to it regardless of the sink's verbosity level, carrying
// the scope installed on the originating context (see WithScope).
func WithBus(b *Bus) ObserverOption {
	return func(o *Observer) { o.bus = b }
}

// New builds an observer whose root span ("run") starts now.
func New(opts ...ObserverOption) *Observer {
	o := &Observer{start: time.Now()}
	for _, opt := range opts {
		opt(o)
	}
	if o.reg == nil {
		o.reg = NewRegistry()
	}
	o.root = &Span{obs: o, name: "run", start: o.start}
	return o
}

// Metrics returns the observer's registry; nil for a nil observer, and
// every Registry method is in turn nil-safe.
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Root returns the run's root span (nil for a nil observer).
func (o *Observer) Root() *Span {
	if o == nil {
		return nil
	}
	return o.root
}

// Bus returns the attached event bus; nil for a nil observer or when
// none was attached, and every Bus method is in turn nil-safe.
func (o *Observer) Bus() *Bus {
	if o == nil {
		return nil
	}
	return o.bus
}

// Notef emits a free-form event at the given level.
func (o *Observer) Notef(level Level, format string, args ...any) {
	if o == nil {
		return
	}
	msg := ""
	if o.bus != nil || (o.sink != nil && level <= o.level) {
		msg = fmt.Sprintf(format, args...)
	}
	o.bus.Publish(BusEvent{Type: "note", Msg: msg})
	if o.sink == nil || level > o.level {
		return
	}
	o.sink(Event{Time: time.Now(), Kind: "note", Msg: msg})
}

// emit forwards a span event to the sink when verbose enough.
func (o *Observer) emit(ev Event) {
	if o == nil || o.sink == nil || o.level < LevelVerbose {
		return
	}
	o.sink(ev)
}

// ctxKey keys observer and span values in a context.
type ctxKey int

const (
	observerKey ctxKey = iota
	spanKey
	scopeKey
)

// WithScope returns a context whose spans (and the bus events they
// publish) are tagged with the given scope — the job service installs
// each job's ID here so streaming endpoints can demultiplex one
// process-wide bus into per-job event streams.
func WithScope(ctx context.Context, scope string) context.Context {
	return context.WithValue(ctx, scopeKey, scope)
}

// ScopeFromContext returns the scope installed by WithScope ("" when
// absent).
func ScopeFromContext(ctx context.Context) string {
	s, _ := ctx.Value(scopeKey).(string)
	return s
}

// NewContext returns a context carrying the observer (and its root span
// as the current span). A nil observer returns ctx unchanged, keeping
// the disabled path allocation-free.
func NewContext(ctx context.Context, o *Observer) context.Context {
	if o == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, observerKey, o)
	return context.WithValue(ctx, spanKey, o.root)
}

// FromContext extracts the observer installed by NewContext; nil when
// absent. All Observer methods are nil-safe, so the result can be used
// unconditionally.
func FromContext(ctx context.Context) *Observer {
	o, _ := ctx.Value(observerKey).(*Observer)
	return o
}

// SpanFromContext returns the span most recently started on this
// context (the root span right after NewContext); nil when no observer
// is installed.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// Start begins a child span of the context's current span and returns a
// derived context carrying it. With no observer installed it returns
// ctx unchanged and a nil span whose methods all no-op — instrumented
// code calls Start/End unconditionally.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.startChild(name, ScopeFromContext(ctx), attrs...)
	return context.WithValue(ctx, spanKey, child), child
}
