package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// ManifestSchemaVersion identifies the manifest JSON shape; bump it on
// incompatible changes so downstream tooling can dispatch.
const ManifestSchemaVersion = 1

// Manifest is the machine-readable record of one run: configuration,
// the per-phase span tree, a metrics snapshot, per-property verdicts
// and (when the run ended short of clean) the failure-taxonomy
// classification. One JSON document per run.
type Manifest struct {
	Tool          string              `json:"tool"`
	SchemaVersion int                 `json:"schema_version"`
	StartedAt     time.Time           `json:"started_at"`
	WallMS        float64             `json:"wall_ms"`
	Config        map[string]string   `json:"config,omitempty"`
	Spans         *SpanNode           `json:"spans,omitempty"`
	Metrics       map[string]any      `json:"metrics,omitempty"`
	Verdicts      []ManifestVerdict   `json:"verdicts,omitempty"`
	Lint          *ManifestLint       `json:"lint,omitempty"`
	Durability    *ManifestDurability `json:"durability,omitempty"`
	Failure       *ManifestFailure    `json:"failure,omitempty"`
}

// ManifestDurability records a service run's crash-safety story: what
// the WAL replay reconstructed at startup and how the drain checkpoint
// left the log. Plain data so obs stays free of jobs dependencies; the
// CLI converts.
type ManifestDurability struct {
	WALDir          string `json:"wal_dir"`
	RecordsReplayed int    `json:"records_replayed"`
	ResultsAdopted  int    `json:"results_adopted"`
	JobsRequeued    int    `json:"jobs_requeued"`
	TerminalKept    int    `json:"terminal_restored"`
	QueuedCancelled int    `json:"drain_cancelled"`
	Checkpointed    bool   `json:"checkpointed"`
}

// ManifestLint records the model-lint pre-check's outcome: severity
// counts plus every diagnostic. Plain data so obs stays free of lint
// (and every other pipeline) dependencies; the CLI converts.
type ManifestLint struct {
	Errors      int                  `json:"errors"`
	Warnings    int                  `json:"warnings"`
	Infos       int                  `json:"infos"`
	Diagnostics []ManifestDiagnostic `json:"diagnostics,omitempty"`
}

// ManifestDiagnostic is one lint finding in the manifest.
type ManifestDiagnostic struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Ref      string `json:"ref,omitempty"`
	Message  string `json:"message"`
	Fix      string `json:"fix,omitempty"`
}

// ManifestVerdict is one property's outcome in the manifest.
type ManifestVerdict struct {
	ID      string  `json:"id"`
	Verdict string  `json:"verdict"` // "verified" | "attack" | "inconclusive"
	DurMS   float64 `json:"dur_ms"`
	Detail  string  `json:"detail,omitempty"`
}

// ManifestFailure classifies how a degraded run ended, mirroring the
// resilience taxonomy and the CLI exit codes.
type ManifestFailure struct {
	Class    string   `json:"class"`
	ExitCode int      `json:"exit_code"`
	Errors   []string `json:"errors,omitempty"`
}

// Manifest freezes the observer's current state into a manifest: the
// full span tree (open spans marked "open" with live durations, so a
// cancelled run still yields a well-formed document) and the metrics
// snapshot. Config, verdicts and failure are the caller's to fill.
// Nil observer returns a minimal valid manifest.
func (o *Observer) Manifest() *Manifest {
	m := &Manifest{Tool: "prochecker", SchemaVersion: ManifestSchemaVersion}
	if o == nil {
		return m
	}
	m.StartedAt = o.start.UTC()
	m.WallMS = DurMS(time.Since(o.start))
	m.Spans = o.root.snapshot(o.start)
	m.Metrics = o.reg.Snapshot()
	return m
}

// Encode writes the manifest as indented JSON.
func (m *Manifest) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("obs: encoding manifest: %w", err)
	}
	return nil
}

// WriteFile writes the manifest to path (0644, truncating).
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: writing manifest: %w", err)
	}
	if err := m.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: writing manifest: %w", err)
	}
	return nil
}

// DecodeManifest reads one manifest document back.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("obs: decoding manifest: %w", err)
	}
	return &m, nil
}

// ReadManifestFile loads a manifest from disk.
func ReadManifestFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: reading manifest: %w", err)
	}
	defer f.Close()
	return DecodeManifest(f)
}
