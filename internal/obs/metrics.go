package obs

import (
	"expvar"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe metrics registry: counters, gauges and
// histograms keyed by dotted names. Instruments are created on first
// use and returned by pointer so hot paths resolve them once and then
// update lock-free. A nil *Registry is a valid no-op recorder: it hands
// out nil instruments, whose methods all short-circuit.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Labeled renders a per-instance instrument name inside the registry's
// flat namespace: Labeled("mc.frontier_width", "shard", 3) yields
// "mc.frontier_width{shard=3}". The registry has no label dimension —
// this convention keeps a labelled family greppable under one prefix
// while every instance stays an independent lock-free instrument.
func Labeled(base, key string, v int) string {
	return LabeledStr(base, key, strconv.Itoa(v))
}

// LabeledStr is Labeled for string label values:
// LabeledStr("jobs.terminal_by_impl", "impl", "srslte") yields
// "jobs.terminal_by_impl{impl=srslte}". WritePrometheus parses the
// convention back into real Prometheus labels.
func LabeledStr(base, key, val string) string {
	return fmt.Sprintf("%s{%s=%s}", base, key, val)
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; nil-safe.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc adds one; nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value metric.
type Gauge struct{ v atomic.Int64 }

// Set records the current value; nil-safe.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add shifts the gauge; nil-safe.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// SetMax raises the gauge to v when v exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultBuckets are the histogram upper bounds used when none are
// given: a log-ish ladder that fits both millisecond latencies and
// small cardinalities (frontier widths, iteration counts).
var DefaultBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram accumulates observations into fixed buckets plus running
// count/sum/min/max. Observations are mutex-guarded; the pipeline
// observes per level / per property / per case, never per state, so
// the lock is far off any hot path.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending; implicit +Inf last
	counts []int64   // len(bounds)+1
	count  int64
	sum    float64
	min    float64
	max    float64
}

// Observe records one value; nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// HistogramSnapshot is a histogram's frozen state, JSON-shaped for the
// manifest and expvar.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Mean    float64          `json:"mean"`
	Min     float64          `json:"min"`
	Max     float64          `json:"max"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Snapshot freezes the histogram (zero value for nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{Count: h.count, Sum: round3(h.sum), Min: round3(h.min), Max: round3(h.max)}
	if h.count > 0 {
		snap.Mean = round3(h.sum / float64(h.count))
	}
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		if snap.Buckets == nil {
			snap.Buckets = make(map[string]int64)
		}
		label := "+Inf"
		if i < len(h.bounds) {
			label = fmt.Sprintf("le_%g", h.bounds[i])
		}
		snap.Buckets[label] = n
	}
	return snap
}

// round3 trims float noise so snapshots render stably.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// Counter returns (creating if needed) the named counter; nil registry
// returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given upper bounds (DefaultBuckets when nil); nil-safe. The bounds of
// the first creation win.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		if bounds == nil {
			bounds = DefaultBuckets
		}
		h = &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
		r.histograms[name] = h
	}
	return h
}

// Snapshot freezes every instrument into a JSON-marshalable map:
// counters and gauges as integers, histograms as HistogramSnapshot.
// Keys marshal sorted, so snapshots diff cleanly. Nil returns nil.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		out[name] = h.Snapshot()
	}
	return out
}

// expvarMu serialises Publish calls; expvar.Publish panics on duplicate
// names, so PublishExpvar checks under the lock.
var expvarMu sync.Mutex

// PublishExpvar exposes the registry's live snapshot under the given
// expvar name (visible at /debug/vars). Publishing the same name twice
// keeps the first registration — expvar has no unpublish — and reports
// whether this call won.
func (r *Registry) PublishExpvar(name string) bool {
	if r == nil {
		return false
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return true
}
