package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the live observability endpoint: expvar at /debug/vars
// (including the published metrics registry) and the full
// net/http/pprof suite at /debug/pprof/ for profiling long runs in
// flight.
type Server struct {
	// Addr is the bound address, with the real port when the caller
	// asked for :0.
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// Serve starts the observability endpoint on addr (e.g. ":6060" or
// "127.0.0.1:0") and publishes the registry under the "prochecker"
// expvar name. It returns once the listener is bound; serving happens
// in a background goroutine until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	r.PublishExpvar("prochecker")
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns ErrServerClosed after Close.
	return s, nil
}

// Close stops the endpoint and releases the port.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
