package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// Server is the live observability endpoint: expvar at /debug/vars
// (including the published metrics registry), Prometheus text
// exposition at /metrics, the full net/http/pprof suite at
// /debug/pprof/ for profiling long runs in flight, and a /healthz
// probe that consults the readiness hook.
type Server struct {
	// Addr is the bound address, with the real port when the caller
	// asked for :0.
	Addr  string
	ln    net.Listener
	srv   *http.Server
	ready atomic.Pointer[func() error]
}

// Serve starts the observability endpoint on addr (e.g. ":6060" or
// "127.0.0.1:0") and publishes the registry under the "prochecker"
// expvar name. It returns once the listener is bound; serving happens
// in a background goroutine until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	r.PublishExpvar("prochecker")
	s := &Server{}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", r.PrometheusHandler("prochecker"))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if hook := s.ready.Load(); hook != nil {
			if err := (*hook)(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	s.Addr, s.ln = ln.Addr().String(), ln
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns ErrServerClosed after Close.
	return s, nil
}

// SetReadiness installs (or, with nil, removes) the hook /healthz
// consults: a non-nil error flips the probe to 503 with the error
// text as the body, so a draining campaign service stops looking
// healthy to orchestrators while it finishes in-flight jobs. Safe to
// call concurrently with probes.
func (s *Server) SetReadiness(hook func() error) {
	if s == nil {
		return
	}
	if hook == nil {
		s.ready.Store(nil)
		return
	}
	s.ready.Store(&hook)
}

// Close stops the endpoint and releases the port.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
