package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"prochecker"
	"prochecker/internal/jobs"
	"prochecker/internal/resilience"
)

// Client talks to a Server over HTTP — the CLI's -submit/-campaign/
// -wait modes ride on it.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport (http.DefaultClient when nil).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out,
// converting error envelopes into errors that carry the resilience
// taxonomy where the status implies one.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("server: encoding request: %w", err)
		}
		rd = bytes.NewReader(b)
	}
	url := strings.TrimRight(c.Base, "/") + path
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return fmt.Errorf("server: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("server: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return fmt.Errorf("server: %s %s: %s (%s)", method, path, msg, resp.Status)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("server: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// SubmitJob submits one job spec.
func (c *Client) SubmitJob(ctx context.Context, spec jobs.Spec) (jobs.Job, error) {
	var out struct {
		Job jobs.Job `json:"job"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &out)
	return out.Job, err
}

// SubmitCampaign submits a matrix.
func (c *Client) SubmitCampaign(ctx context.Context, spec prochecker.CampaignSpec) (Campaign, error) {
	var out struct {
		Campaign Campaign `json:"campaign"`
	}
	body := struct {
		Campaign prochecker.CampaignSpec `json:"campaign"`
	}{spec}
	err := c.do(ctx, http.MethodPost, "/v1/jobs", body, &out)
	return out.Campaign, err
}

// Job fetches one job.
func (c *Client) Job(ctx context.Context, id string) (jobs.Job, error) {
	var out struct {
		Job jobs.Job `json:"job"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out)
	return out.Job, err
}

// Jobs lists every job.
func (c *Client) Jobs(ctx context.Context) ([]jobs.Job, error) {
	var out struct {
		Jobs []jobs.Job `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out.Jobs, err
}

// Cancel cancels one job.
func (c *Client) Cancel(ctx context.Context, id string) (jobs.Job, error) {
	var out struct {
		Job jobs.Job `json:"job"`
	}
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out)
	return out.Job, err
}

// Campaign fetches one campaign with its member jobs and, when done,
// the differential report.
func (c *Client) Campaign(ctx context.Context, id string) (Campaign, error) {
	var out struct {
		Campaign Campaign `json:"campaign"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id, nil, &out)
	return out.Campaign, err
}

// WaitJob polls until the job reaches a terminal state (or ctx
// expires).
func (c *Client) WaitJob(ctx context.Context, id string, interval time.Duration) (jobs.Job, error) {
	for {
		job, err := c.Job(ctx, id)
		if err != nil {
			return job, err
		}
		if job.Terminal() {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return job, fmt.Errorf("server: waiting for job %s: %w", id, resilience.ErrCancelled)
		case <-time.After(interval):
		}
	}
}

// WaitCampaign polls until every member job is terminal (or ctx
// expires).
func (c *Client) WaitCampaign(ctx context.Context, id string, interval time.Duration) (Campaign, error) {
	for {
		camp, err := c.Campaign(ctx, id)
		if err != nil {
			return camp, err
		}
		if camp.State.Terminal() {
			return camp, nil
		}
		select {
		case <-ctx.Done():
			return camp, fmt.Errorf("server: waiting for campaign %s: %w", id, resilience.ErrCancelled)
		case <-time.After(interval):
		}
	}
}
