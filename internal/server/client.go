package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"prochecker"
	"prochecker/internal/dist"
	"prochecker/internal/jobs"
	"prochecker/internal/resilience"
)

// Client talks to a Server over HTTP — the CLI's -submit/-campaign/
// -wait modes ride on it. Requests that hit transient trouble — a
// network error, a 429 full queue, a 503 draining server — are retried
// with jittered exponential backoff, honoring the server's Retry-After
// hint; every request body is re-creatable so retries are safe, and
// submissions are idempotent anyway (the service coalesces on the
// spec's content address).
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport (http.DefaultClient when nil).
	HTTP *http.Client
	// Retries is the total attempts per request. 0 means
	// DefaultClientRetries; 1 disables retrying.
	Retries int
	// Backoff is the base of the exponential backoff between attempts
	// (default 200ms), jittered and raised to any Retry-After hint.
	Backoff time.Duration
	// Seed drives the jitter PRNG so a retry schedule is reproducible.
	Seed int64
	// Tenant, when set, is sent as the X-ProChecker-Tenant header so the
	// server's admission gate charges this client's quota.
	Tenant string

	rngOnce sync.Once
	rngMu   sync.Mutex
	rng     *rand.Rand
}

// DefaultClientRetries is the attempt bound when Client.Retries is 0.
const DefaultClientRetries = 3

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// jitter scales d by a random factor in [0.5, 1.5).
func (c *Client) jitter(d time.Duration) time.Duration {
	c.rngOnce.Do(func() { c.rng = rand.New(rand.NewSource(c.Seed)) })
	c.rngMu.Lock()
	f := 0.5 + c.rng.Float64()
	c.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// retryableStatus reports whether the HTTP status signals a transient
// server condition worth another attempt.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// retryAfter parses the integer-seconds form of a Retry-After header
// (the only form the server emits); 0 when absent or unparseable.
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// do issues one request — retrying transient failures — and decodes the
// JSON response into out, converting error envelopes into errors that
// carry the resilience taxonomy where the status implies one.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if raw, ok := body.(json.RawMessage); ok {
		// Pre-encoded bytes (canonical result uploads) pass through
		// verbatim — re-marshalling would perturb the canonical form.
		payload = raw
	} else if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("server: encoding request: %w", err)
		}
		payload = b
	}
	url := strings.TrimRight(c.Base, "/") + path
	attempts := c.Retries
	if attempts <= 0 {
		attempts = DefaultClientRetries
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 200 * time.Millisecond
	}

	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			// Exponential, jittered, raised to the server's hint.
			delay := c.jitter(backoff << (attempt - 2))
			if hint := lastRetryAfter(lastErr); hint > delay {
				delay = hint
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("server: %s %s: %w", method, path, resilience.ErrCancelled)
			case <-time.After(delay):
			}
		}

		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return fmt.Errorf("server: building request: %w", err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.Tenant != "" {
			req.Header.Set(TenantHeader, c.Tenant)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			lastErr = fmt.Errorf("server: %s %s: %w", method, path, err)
			if ctx.Err() != nil {
				return lastErr
			}
			continue // transient network trouble: retry
		}
		if resp.StatusCode >= 400 {
			var eb errorBody
			msg := resp.Status
			if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
				msg = eb.Error
			}
			hint := retryAfter(resp)
			resp.Body.Close()
			lastErr = &httpError{
				msg:        fmt.Sprintf("server: %s %s: %s (%s)", method, path, msg, resp.Status),
				status:     resp.StatusCode,
				retryAfter: hint,
			}
			if !retryableStatus(resp.StatusCode) {
				return lastErr
			}
			continue
		}
		if out == nil || resp.StatusCode == http.StatusNoContent {
			resp.Body.Close()
			return nil
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("server: decoding %s %s response: %w", method, path, err)
		}
		return nil
	}
	return lastErr
}

// httpError carries the status and Retry-After hint of a failed
// request through the retry loop.
type httpError struct {
	msg        string
	status     int
	retryAfter time.Duration
}

func (e *httpError) Error() string { return e.msg }

// lastRetryAfter extracts the server's backoff hint from the previous
// attempt's error, if it was an HTTP-level failure carrying one.
func lastRetryAfter(err error) time.Duration {
	var he *httpError
	if errors.As(err, &he) {
		return he.retryAfter
	}
	return 0
}

// SubmitJob submits one job spec.
func (c *Client) SubmitJob(ctx context.Context, spec jobs.Spec) (jobs.Job, error) {
	var out struct {
		Job jobs.Job `json:"job"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &out)
	return out.Job, err
}

// SubmitCampaign submits a matrix.
func (c *Client) SubmitCampaign(ctx context.Context, spec prochecker.CampaignSpec) (Campaign, error) {
	var out struct {
		Campaign Campaign `json:"campaign"`
	}
	body := struct {
		Campaign prochecker.CampaignSpec `json:"campaign"`
	}{spec}
	err := c.do(ctx, http.MethodPost, "/v1/jobs", body, &out)
	return out.Campaign, err
}

// Job fetches one job.
func (c *Client) Job(ctx context.Context, id string) (jobs.Job, error) {
	var out struct {
		Job jobs.Job `json:"job"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out)
	return out.Job, err
}

// Jobs lists every job.
func (c *Client) Jobs(ctx context.Context) ([]jobs.Job, error) {
	var out struct {
		Jobs []jobs.Job `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out.Jobs, err
}

// Cancel cancels one job.
func (c *Client) Cancel(ctx context.Context, id string) (jobs.Job, error) {
	var out struct {
		Job jobs.Job `json:"job"`
	}
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out)
	return out.Job, err
}

// Campaign fetches one campaign with its member jobs and, when done,
// the differential report.
func (c *Client) Campaign(ctx context.Context, id string) (Campaign, error) {
	var out struct {
		Campaign Campaign `json:"campaign"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id, nil, &out)
	return out.Campaign, err
}

// Client implements the fleet worker's coordinator interface over the
// /v1/leases API.
var _ dist.Coordinator = (*Client)(nil)

// AcquireLease requests one queued job under a lease for the named
// worker; (nil, nil) means the queue is empty.
func (c *Client) AcquireLease(ctx context.Context, worker string) (*dist.Grant, error) {
	var g dist.Grant
	body := struct {
		Worker string `json:"worker"`
	}{worker}
	if err := c.do(ctx, http.MethodPost, "/v1/leases", body, &g); err != nil {
		return nil, err
	}
	if g.Lease.ID == "" { // 204: nothing queued
		return nil, nil
	}
	return &g, nil
}

// RenewLease heartbeats a held lease.
func (c *Client) RenewLease(ctx context.Context, leaseID string) error {
	return c.do(ctx, http.MethodPost, "/v1/leases/"+leaseID+"/heartbeat", nil, nil)
}

// CompleteLease uploads the leased job's canonical result bytes.
func (c *Client) CompleteLease(ctx context.Context, leaseID string, canonical []byte) error {
	return c.do(ctx, http.MethodPost, "/v1/leases/"+leaseID+"/result", json.RawMessage(canonical), nil)
}

// FailLease reports the leased job's classified failure.
func (c *Client) FailLease(ctx context.Context, leaseID, class, msg string) error {
	body := struct {
		Class string `json:"class"`
		Error string `json:"error"`
	}{class, msg}
	return c.do(ctx, http.MethodPost, "/v1/leases/"+leaseID+"/fail", body, nil)
}

// Leases lists the coordinator's active leases.
func (c *Client) Leases(ctx context.Context) ([]jobs.Lease, error) {
	var out struct {
		Leases []jobs.Lease `json:"leases"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/leases", nil, &out)
	return out.Leases, err
}

// WaitJob polls until the job reaches a terminal state (or ctx
// expires).
func (c *Client) WaitJob(ctx context.Context, id string, interval time.Duration) (jobs.Job, error) {
	for {
		job, err := c.Job(ctx, id)
		if err != nil {
			return job, err
		}
		if job.Terminal() {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return job, fmt.Errorf("server: waiting for job %s: %w", id, resilience.ErrCancelled)
		case <-time.After(interval):
		}
	}
}

// WaitCampaign polls until every member job is terminal (or ctx
// expires).
func (c *Client) WaitCampaign(ctx context.Context, id string, interval time.Duration) (Campaign, error) {
	for {
		camp, err := c.Campaign(ctx, id)
		if err != nil {
			return camp, err
		}
		if camp.State.Terminal() {
			return camp, nil
		}
		select {
		case <-ctx.Done():
			return camp, fmt.Errorf("server: waiting for campaign %s: %w", id, resilience.ErrCancelled)
		case <-time.After(interval):
		}
	}
}
