package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"prochecker/internal/jobs"
	"prochecker/internal/obs"
)

// This file serves the live event streams: Server-Sent Events over the
// process-wide obs.Bus, demultiplexed per job or per campaign. Every
// bus-originated frame carries `id:` = the bus sequence number, so a
// reconnecting client sends it back as Last-Event-ID and resumes
// exactly where it left off while the events are still retained;
// synthetic frames (the opening snapshot, the campaign terminal
// summary) carry no id and leave the client's resume point untouched.

// sseHeartbeat is the idle keep-alive interval: a comment line that
// keeps proxies from timing the stream out without growing the event
// sequence.
const sseHeartbeat = 15 * time.Second

// errNoBus answers /events endpoints on a server built without a bus.
var errNoBus = errors.New("event streaming disabled: server has no event bus")

// resumeSeq extracts the client's resume position: the sequence after
// the standard Last-Event-ID header (or the from query parameter,
// for curl-friendliness), or 0 — replay everything retained — when
// absent or malformed.
func resumeSeq(r *http.Request) uint64 {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("from")
	}
	if raw == "" {
		return 0
	}
	last, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0
	}
	return last + 1
}

// writeSSE renders one event as an SSE frame. Bus events carry their
// sequence as the frame id; synthetic events (Seq 0) are id-less.
func writeSSE(w http.ResponseWriter, ev obs.BusEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if ev.Seq > 0 {
		if _, err := fmt.Fprintf(w, "id: %d\n", ev.Seq); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	return err
}

// sseStream is one handler invocation's streaming state.
type sseStream struct {
	w       http.ResponseWriter
	flusher http.Flusher
	sub     *obs.Subscription
	// match selects the events this stream forwards ("dropped" markers
	// always pass: they flag a resume gap the client must know about).
	match func(obs.BusEvent) bool
	// onEvent, when set, runs after each forwarded event and reports
	// whether the stream is finished (campaign streams detect the
	// aggregate going terminal here).
	onEvent func(obs.BusEvent) bool
}

// openSSE prepares the response and subscription. A nil return means
// the error was already answered.
func (s *Server) openSSE(w http.ResponseWriter, r *http.Request) *sseStream {
	if s.bus == nil {
		writeError(w, http.StatusNotImplemented, errNoBus)
		return nil
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("response writer cannot stream"))
		return nil
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	return &sseStream{w: w, flusher: flusher, sub: s.bus.Subscribe(resumeSeq(r))}
}

// send writes one frame and flushes it down the wire.
func (st *sseStream) send(ev obs.BusEvent) error {
	if err := writeSSE(st.w, ev); err != nil {
		return err
	}
	st.flusher.Flush()
	return nil
}

// drain forwards every retained matching event without blocking —
// the replay path for a stream whose target is already terminal.
func (st *sseStream) drain() error {
	for {
		ev, ok := st.sub.TryNext()
		if !ok {
			return nil
		}
		if !st.match(ev) && ev.Type != "dropped" {
			continue
		}
		if err := st.send(ev); err != nil {
			return err
		}
		if st.onEvent != nil && st.onEvent(ev) {
			return nil
		}
	}
}

// run pumps bus events to the client until the stream finishes, the
// client disconnects, or the target's terminal event has been
// forwarded. Heartbeat comments keep the connection alive through
// quiet stretches.
func (st *sseStream) run(ctx context.Context) {
	defer st.sub.Close()
	events := make(chan obs.BusEvent)
	pumpCtx, stopPump := context.WithCancel(ctx)
	defer stopPump()
	go func() {
		defer close(events)
		for {
			ev, err := st.sub.Next(pumpCtx)
			if err != nil {
				return
			}
			select {
			case events <- ev:
			case <-pumpCtx.Done():
				return
			}
		}
	}()

	ticker := time.NewTicker(sseHeartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if _, err := fmt.Fprint(st.w, ": hb\n\n"); err != nil {
				return
			}
			st.flusher.Flush()
		case ev, ok := <-events:
			if !ok {
				return
			}
			if !st.match(ev) && ev.Type != "dropped" {
				continue
			}
			if err := st.send(ev); err != nil {
				return
			}
			if st.onEvent != nil && st.onEvent(ev) {
				return
			}
		}
	}
}

// handleJobEvents streams one job's events: lifecycle transitions,
// runner spans, per-level exploration progress. The stream opens with
// a synthetic snapshot of the job's current state and closes once the
// terminal lifecycle event has been forwarded.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.svc.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, jobs.ErrUnknownJob)
		return
	}
	st := s.openSSE(w, r)
	if st == nil {
		return
	}
	defer st.sub.Close()
	st.match = func(ev obs.BusEvent) bool { return ev.Scope == id }
	st.onEvent = func(ev obs.BusEvent) bool {
		return ev.Type == "job" && jobs.State(ev.Name).Terminal()
	}
	if err := st.send(snapshotEvent(id, string(job.State))); err != nil {
		return
	}
	if job.Terminal() {
		// Nothing further will be published for this job: replay what
		// the ring still holds, then end the stream.
		st.drain() //nolint:errcheck // client gone mid-replay
		return
	}
	st.run(r.Context())
}

// handleCampaignEvents streams the union of a campaign's member-job
// events plus the campaign's own lifecycle. The campaign has no
// asynchronous terminal transition of its own, so the handler derives
// it: whenever a member goes terminal it re-aggregates, and when the
// whole campaign is settled it emits a synthetic campaign summary
// event and closes.
func (s *Server) handleCampaignEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	rec, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown campaign"))
		return
	}
	st := s.openSSE(w, r)
	if st == nil {
		return
	}
	defer st.sub.Close()
	members := make(map[string]bool, len(rec.jobIDs))
	for _, jid := range rec.jobIDs {
		members[jid] = true
	}
	st.match = func(ev obs.BusEvent) bool { return ev.Scope == id || members[ev.Scope] }
	st.onEvent = func(ev obs.BusEvent) bool {
		if ev.Type != "job" || !jobs.State(ev.Name).Terminal() {
			return false
		}
		c := s.campaignView(rec, false)
		if !c.State.Terminal() {
			return false
		}
		st.send(campaignEvent(c)) //nolint:errcheck // stream ends either way
		return true
	}
	if err := st.send(snapshotEvent(id, string(s.campaignView(rec, false).State))); err != nil {
		return
	}
	if c := s.campaignView(rec, false); c.State.Terminal() {
		st.onEvent = nil          // summary sent below, not per replayed terminal
		st.drain()                //nolint:errcheck // client gone mid-replay
		st.send(campaignEvent(c)) //nolint:errcheck // stream ends either way
		return
	}
	st.run(r.Context())
}

// snapshotEvent is the synthetic opening frame: the target's state at
// subscribe time, so a client need not race the first live event.
func snapshotEvent(scope, state string) obs.BusEvent {
	return obs.BusEvent{Time: time.Now(), Type: "snapshot", Scope: scope, Name: state}
}

// campaignEvent is the synthetic terminal summary of a settled
// campaign.
func campaignEvent(c Campaign) obs.BusEvent {
	return obs.BusEvent{
		Time:  time.Now(),
		Type:  "campaign",
		Scope: c.ID,
		Name:  string(c.State),
		Value: int64(len(c.JobIDs)),
		Attrs: map[string]string{"exit_code": strconv.Itoa(c.ExitCode)},
	}
}
