// Package server exposes the batch-analysis job service over a
// stdlib-only HTTP JSON API:
//
//	POST   /v1/jobs                  submit one job, or a campaign matrix
//	GET    /v1/jobs                  list all jobs
//	GET    /v1/jobs/{id}             one job's status/result
//	GET    /v1/jobs/{id}/events      live SSE stream of the job's events
//	DELETE /v1/jobs/{id}             cancel a job
//	GET    /v1/campaigns             list campaigns
//	GET    /v1/campaigns/{id}        campaign status + differential report
//	GET    /v1/campaigns/{id}/events live SSE stream across the campaign's jobs
//	POST   /v1/leases                acquire a job lease (fleet workers; see dist.go)
//	GET    /v1/leases                list active leases
//	POST   /v1/leases/{id}/heartbeat renew a lease
//	POST   /v1/leases/{id}/result    upload a leased job's canonical result
//	POST   /v1/leases/{id}/fail      report a leased job's classified failure
//	GET    /healthz                  readiness (503 while draining)
//	GET    /debug/vars               expvar (queue/cache/pipeline metrics)
//	GET    /metrics                  Prometheus text exposition
//
// The SSE streams are fed from the process-wide obs.Bus: `id:` carries
// the bus sequence number, so a client reconnecting with Last-Event-ID
// resumes gap-free while the events are still inside the ring's
// retention window (a "dropped" marker event flags the gap otherwise).
//
// A draining server (graceful SIGTERM shutdown) answers every
// submission with 503 while running jobs finish; a full queue answers
// 429. Both carry a Retry-After header so well-behaved clients back off
// without guessing.
//
// When the underlying jobs.Service runs with a WAL, campaigns are
// durable too: each accepted matrix is journalled as an opaque meta
// record, and a restarted server rebuilds its campaign table — same
// IDs, same membership — from the replayed log.
package server

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prochecker"
	"prochecker/internal/dist"
	"prochecker/internal/jobs"
	"prochecker/internal/obs"
	"prochecker/internal/report"
)

// Campaign is the API shape of one submitted matrix: member jobs, the
// aggregate state, and — once every member is terminal — the
// cross-implementation differential report.
type Campaign struct {
	ID     string                  `json:"id"`
	Spec   prochecker.CampaignSpec `json:"spec"`
	JobIDs []string                `json:"job_ids"`
	State  jobs.State              `json:"state"`
	// ExitCode folds the member jobs' terminal classes onto the
	// resilience taxonomy's worst exit code (meaningful once terminal).
	ExitCode int        `json:"exit_code"`
	Jobs     []jobs.Job `json:"jobs,omitempty"`
	// Diverging lists properties whose verdicts differ between columns
	// (set when the campaign is done).
	Diverging []string `json:"diverging,omitempty"`
	// Report is the rendered differential matrix (set when done).
	Report string `json:"report,omitempty"`
}

// Server routes the API onto a jobs.Service.
type Server struct {
	svc      *jobs.Service
	mux      *http.ServeMux
	bus      *obs.Bus
	gate     *dist.Gate
	draining atomic.Bool

	mu        sync.Mutex
	seq       int
	campaigns map[string]*campaignRecord
	order     []string
}

// campaignRecord is the server's durable view of one matrix submission.
type campaignRecord struct {
	id     string
	spec   prochecker.CampaignSpec
	jobIDs []string
}

// campaignMeta is the JSON payload journalled per campaign in the
// service's WAL, restoring the server's campaign table across restarts.
type campaignMeta struct {
	Spec   prochecker.CampaignSpec `json:"spec"`
	JobIDs []string                `json:"job_ids"`
}

// Option tunes New.
type Option func(*Server)

// WithBus attaches the event bus the SSE endpoints stream from. The
// bus should be the same one the jobs.Service (and the pipeline
// observer) publish to; without it the /events endpoints answer 501.
func WithBus(b *obs.Bus) Option {
	return func(s *Server) { s.bus = b }
}

// New builds a Server on the given service and publishes the metrics
// registry (the service's and the pipeline's shared one) on
// /debug/vars under the "prochecker" expvar name and on /metrics in
// Prometheus text format. Campaigns journalled to a WAL by a previous
// incarnation are restored with their original IDs and membership.
func New(svc *jobs.Service, reg *obs.Registry, opts ...Option) *Server {
	reg.PublishExpvar("prochecker")
	s := &Server{svc: svc, campaigns: make(map[string]*campaignRecord)}
	for _, opt := range opts {
		opt(s)
	}
	for _, m := range svc.Metas() {
		if name, ok := strings.CutPrefix(m.ID, "tenant:"); ok {
			// Journalled tenant quota balance, not a campaign.
			var tm tenantMeta
			if s.gate != nil && json.Unmarshal(m.Meta, &tm) == nil {
				s.gate.Restore(name, tm.Tokens, tm.At)
			}
			continue
		}
		var meta campaignMeta
		if json.Unmarshal(m.Meta, &meta) != nil || m.ID == "" {
			continue
		}
		if _, dup := s.campaigns[m.ID]; dup {
			continue
		}
		rec := &campaignRecord{id: m.ID, spec: meta.Spec, jobIDs: meta.JobIDs}
		s.campaigns[rec.id] = rec
		s.order = append(s.order, rec.id)
		if n := campaignSeq(m.ID); n > s.seq {
			s.seq = n
		}
	}
	if s.gate != nil {
		// Journal every admission so balances survive a restart; the
		// replace-by-ID meta keeps one live record per tenant.
		s.gate.SetJournal(func(tenant string, tokens float64, at time.Time) {
			if meta, err := json.Marshal(tenantMeta{Tokens: tokens, At: at}); err == nil {
				svc.LogMetaReplace("tenant:"+tenant, meta) //nolint:errcheck // balance still live in memory
			}
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/campaigns", s.handleListCampaigns)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleGetCampaign)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleCampaignEvents)
	mux.HandleFunc("POST /v1/leases", s.handleAcquireLease)
	mux.HandleFunc("GET /v1/leases", s.handleListLeases)
	mux.HandleFunc("POST /v1/leases/{id}/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /v1/leases/{id}/result", s.handleLeaseResult)
	mux.HandleFunc("POST /v1/leases/{id}/fail", s.handleLeaseFail)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.Handle("GET /metrics", reg.PrometheusHandler("prochecker"))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// StartDrain flips the server into shutdown mode: every subsequent
// submission is answered 503 while the already-accepted work finishes.
func (s *Server) StartDrain() { s.draining.Store(true) }

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is not our failure
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// Retry-After values (seconds) for backpressure responses: a full queue
// clears as soon as a worker frees a slot, a draining server needs its
// replacement to come up.
const (
	retryAfterQueueFull = 1
	retryAfterDraining  = 5
)

// submitStatus maps a submission failure onto its HTTP status.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, jobs.ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, jobs.ErrQueueFull):
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}

// writeSubmitError answers a failed submission, attaching the
// Retry-After hint on the two retryable statuses.
func writeSubmitError(w http.ResponseWriter, err error) {
	status := submitStatus(err)
	switch status {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterQueueFull))
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterDraining))
	}
	writeError(w, status, err)
}

// campaignSeq parses the numeric suffix of a "c-0042" style ID.
func campaignSeq(id string) int {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(id[i+1:])
	if err != nil {
		return 0
	}
	return n
}

// submitRequest is the POST /v1/jobs body: either a single inline job
// spec, or a campaign matrix.
type submitRequest struct {
	jobs.Spec
	Campaign *prochecker.CampaignSpec `json:"campaign,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeSubmitError(w, jobs.ErrDraining)
		return
	}
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Campaign != nil {
		s.submitCampaign(w, r, *req.Campaign)
		return
	}
	if !s.admit(w, r, 1) {
		return
	}
	job, err := s.svc.Submit(req.Spec)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, struct {
		Job jobs.Job `json:"job"`
	}{job})
}

// submitCampaign expands the matrix and submits every cell. Submission
// is all-or-nothing: if a cell is rejected (queue full, draining), the
// cells already enqueued for this campaign are cancelled and the whole
// request fails with that cell's status.
func (s *Server) submitCampaign(w http.ResponseWriter, r *http.Request, spec prochecker.CampaignSpec) {
	specs, err := spec.Jobs()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// A campaign is admitted as a unit, charged by cell count.
	if !s.admit(w, r, float64(len(specs))) {
		return
	}
	var ids []string
	for _, js := range specs {
		job, err := s.svc.Submit(js)
		if err != nil {
			for _, id := range ids {
				s.svc.Cancel(id) //nolint:errcheck // best-effort rollback
			}
			writeSubmitError(w, fmt.Errorf("campaign cell %s: %w", prochecker.JobLabel(js), err))
			return
		}
		ids = append(ids, job.ID)
	}
	s.mu.Lock()
	s.seq++
	rec := &campaignRecord{id: fmt.Sprintf("c-%04d", s.seq), spec: spec, jobIDs: ids}
	s.campaigns[rec.id] = rec
	s.order = append(s.order, rec.id)
	s.mu.Unlock()
	s.bus.Publish(obs.BusEvent{
		Type: "campaign", Scope: rec.id, Name: "submitted",
		Value: int64(len(ids)),
		Attrs: map[string]string{"jobs": strings.Join(ids, ",")},
	})
	// Journal the campaign so a restarted server still answers for its
	// ID; membership is what matters, job state lives in the job WAL.
	if meta, err := json.Marshal(campaignMeta{Spec: spec, JobIDs: ids}); err == nil {
		s.svc.LogMeta(rec.id, meta) //nolint:errcheck // campaign still served from memory
	}
	writeJSON(w, http.StatusAccepted, struct {
		Campaign Campaign `json:"campaign"`
	}{s.campaignView(rec, false)})
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobs.Job `json:"jobs"`
	}{s.svc.List()})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.svc.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, jobs.ErrUnknownJob)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Job jobs.Job `json:"job"`
	}{job})
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.svc.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Job jobs.Job `json:"job"`
	}{job})
}

func (s *Server) handleListCampaigns(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	recs := make([]*campaignRecord, 0, len(s.order))
	for _, id := range s.order {
		recs = append(recs, s.campaigns[id])
	}
	s.mu.Unlock()
	out := make([]Campaign, 0, len(recs))
	for _, rec := range recs {
		out = append(out, s.campaignView(rec, false))
	}
	writeJSON(w, http.StatusOK, struct {
		Campaigns []Campaign `json:"campaigns"`
	}{out})
}

func (s *Server) handleGetCampaign(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rec, ok := s.campaigns[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown campaign"))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Campaign Campaign `json:"campaign"`
	}{s.campaignView(rec, true)})
}

// campaignView assembles the API shape from live job snapshots; with
// detail it embeds the member jobs and, once the campaign is done, the
// differential report.
func (s *Server) campaignView(rec *campaignRecord, detail bool) Campaign {
	members := make([]jobs.Job, 0, len(rec.jobIDs))
	for _, id := range rec.jobIDs {
		if j, ok := s.svc.Get(id); ok {
			members = append(members, j)
		}
	}
	c := Campaign{
		ID:       rec.id,
		Spec:     rec.spec,
		JobIDs:   rec.jobIDs,
		State:    aggregateState(members),
		ExitCode: jobs.WorstExitCode(members),
	}
	if detail {
		c.Jobs = members
	}
	if c.State == jobs.StateDone {
		var cols []report.DiffColumn
		for _, j := range members {
			if j.Result != nil {
				cols = append(cols, report.DiffColumn{
					Label:    prochecker.JobLabel(j.Spec),
					Verdicts: j.Result.Verdicts,
				})
			}
		}
		rows := report.Differential(cols)
		c.Diverging = report.Diverging(rows)
		if detail {
			c.Report = report.RenderDifferential(cols, rows)
		}
	}
	return c
}

// aggregateState folds member states: queued until anything starts,
// running while anything is still moving, then failed > cancelled >
// done by severity.
func aggregateState(members []jobs.Job) jobs.State {
	if len(members) == 0 {
		return jobs.StateDone
	}
	allQueued, anyOpen := true, false
	for _, j := range members {
		if j.State != jobs.StateQueued {
			allQueued = false
		}
		if !j.Terminal() {
			anyOpen = true
		}
	}
	if allQueued {
		return jobs.StateQueued
	}
	if anyOpen {
		return jobs.StateRunning
	}
	worst := jobs.StateDone
	for _, j := range members {
		switch j.State {
		case jobs.StateFailed:
			return jobs.StateFailed
		case jobs.StateCancelled:
			worst = jobs.StateCancelled
		}
	}
	return worst
}
