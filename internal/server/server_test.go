package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"prochecker"
	"prochecker/internal/jobs"
	"prochecker/internal/obs"
)

// newRealServer wires a Server onto the production runner with a real
// store, returning the test HTTP frontend, the client and the metrics
// registry.
func newRealServer(t *testing.T) (*Client, *obs.Registry) {
	t.Helper()
	store, err := jobs.OpenStore(t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	svc, err := jobs.New(jobs.Config{
		Runner:    prochecker.JobRunner(2),
		Normalize: prochecker.NormalizeJobSpec,
		Store:     store,
		Workers:   2,
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(New(svc, reg))
	t.Cleanup(ts.Close)
	return &Client{Base: ts.URL, HTTP: ts.Client()}, reg
}

// TestCampaignMatchesDirectAnalysis is the acceptance criterion: a
// 3-profile × 2-fault-spec campaign submitted over HTTP completes with
// verdicts identical to direct AnalyzeContext calls, and a resubmission
// is served entirely from the store.
func TestCampaignMatchesDirectAnalysis(t *testing.T) {
	cl, reg := newRealServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	spec := prochecker.CampaignSpec{
		Impls:      []string{"conformant", "srslte", "OAI"},
		Faults:     []string{"", "drop=0.15"},
		Seed:       42,
		Properties: []string{"S06"},
	}
	camp, err := cl.SubmitCampaign(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.JobIDs) != 6 {
		t.Fatalf("campaign has %d jobs, want 6", len(camp.JobIDs))
	}
	camp, err = cl.WaitCampaign(ctx, camp.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if camp.State != jobs.StateDone {
		t.Fatalf("campaign state = %s, want done", camp.State)
	}
	if camp.ExitCode != 0 {
		t.Fatalf("campaign exit code = %d, want 0", camp.ExitCode)
	}
	if camp.Report == "" {
		t.Fatal("done campaign detail has no differential report")
	}
	for _, label := range []string{"conformant", "srsLTE+drop=0.15", "OAI"} {
		if !strings.Contains(camp.Report, label) {
			t.Fatalf("report missing column %q:\n%s", label, camp.Report)
		}
	}

	// Every member's verdicts must match a direct (service-free) run of
	// the same spec.
	for _, j := range camp.Jobs {
		if j.State != jobs.StateDone || j.Result == nil {
			t.Fatalf("job %s state=%s, want done with result", j.ID, j.State)
		}
		direct, err := prochecker.RunJob(ctx, j.Spec)
		if err != nil {
			t.Fatalf("direct run of %s: %v", prochecker.JobLabel(j.Spec), err)
		}
		if !reflect.DeepEqual(direct.Verdicts, j.Result.Verdicts) {
			t.Fatalf("job %s verdicts diverge from direct analysis:\nhttp:   %+v\ndirect: %+v",
				prochecker.JobLabel(j.Spec), j.Result.Verdicts, direct.Verdicts)
		}
	}

	// Resubmission: every cell is already in the store, so the campaign
	// completes instantly and the cache-hit counter moves.
	hitsBefore := reg.Counter("jobs.cache_hits").Value()
	again, err := cl.SubmitCampaign(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err = cl.WaitCampaign(ctx, again.ID, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if again.State != jobs.StateDone {
		t.Fatalf("resubmitted campaign state = %s, want done", again.State)
	}
	if got := reg.Counter("jobs.cache_hits").Value(); got != hitsBefore+6 {
		t.Fatalf("jobs.cache_hits = %d, want %d (all six cells served from store)", got, hitsBefore+6)
	}
	for _, j := range again.Jobs {
		if !j.CacheHit {
			t.Fatalf("resubmitted job %s not a cache hit", j.ID)
		}
	}
}

func TestSingleJobOverHTTP(t *testing.T) {
	cl, _ := newRealServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	job, err := cl.SubmitJob(ctx, jobs.Spec{Impl: "srslte", Seed: 7, Properties: []string{"S06"}})
	if err != nil {
		t.Fatal(err)
	}
	if job.Key == "" {
		t.Fatal("submitted job has no content key")
	}
	job, err = cl.WaitJob(ctx, job.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != jobs.StateDone || job.Result == nil {
		t.Fatalf("job state=%s result=%v, want done with result", job.State, job.Result)
	}
	if job.Spec.Impl != "srsLTE" {
		t.Fatalf("spec impl = %q, want normalized srsLTE", job.Spec.Impl)
	}

	list, err := cl.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != job.ID {
		t.Fatalf("job list = %+v, want exactly the submitted job", list)
	}
}

func TestBadRequestsAndNotFound(t *testing.T) {
	cl, _ := newRealServer(t)
	ctx := context.Background()

	_, err := cl.SubmitJob(ctx, jobs.Spec{Impl: "amarisoft"})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("unknown impl error = %v, want 400", err)
	}
	// The parse error must list the valid implementations.
	if !strings.Contains(err.Error(), "srsLTE") {
		t.Fatalf("error %q does not list valid implementations", err)
	}

	if _, err := cl.Job(ctx, "j-9999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown job error = %v, want 404", err)
	}
	if _, err := cl.Campaign(ctx, "c-9999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown campaign error = %v, want 404", err)
	}
	if _, err := cl.Cancel(ctx, "j-9999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("cancel unknown job error = %v, want 404", err)
	}

	resp, err := cl.http().Post(cl.Base+"/v1/jobs", "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d, want 400", resp.StatusCode)
	}
}

// gatedService builds a service over a runner that blocks until
// released, for queue/cancel/drain behaviour the real runner finishes
// too quickly to observe.
func gatedService(t *testing.T, workers, queue int) (*Client, *Server, func()) {
	t.Helper()
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release)
	runner := func(ctx context.Context, spec jobs.Spec) (*jobs.Result, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &jobs.Result{SchemaVersion: jobs.ResultSchemaVersion, Key: spec.Key(), Spec: spec}, nil
	}
	svc, err := jobs.New(jobs.Config{Runner: runner, Workers: workers, Queue: queue})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	srv := New(svc, nil)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &Client{Base: ts.URL, HTTP: ts.Client()}, srv, release
}

func TestCancelOverHTTP(t *testing.T) {
	cl, _, _ := gatedService(t, 1, 8)
	ctx := context.Background()

	// Two jobs: the first occupies the single worker, the second queues.
	if _, err := cl.SubmitJob(ctx, jobs.Spec{Impl: "a", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	queued, err := cl.SubmitJob(ctx, jobs.Spec{Impl: "b", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != jobs.StateCancelled {
		t.Fatalf("cancelled job state = %s, want cancelled", got.State)
	}
}

func TestDrainRejectsSubmissions(t *testing.T) {
	cl, srv, release := gatedService(t, 1, 8)
	cl.Retries = 1 // observe the raw 503, not the retry loop
	ctx := context.Background()

	running, err := cl.SubmitJob(ctx, jobs.Spec{Impl: "a", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.StartDrain()
	_, err = cl.SubmitJob(ctx, jobs.Spec{Impl: "b", Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("submit while draining = %v, want 503", err)
	}
	_, err = cl.SubmitCampaign(ctx, prochecker.CampaignSpec{Impls: []string{"OAI"}, Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("campaign while draining = %v, want 503", err)
	}
	// Already-accepted work still completes.
	release()
	job, err := cl.WaitJob(ctx, running.ID, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != jobs.StateDone {
		t.Fatalf("running job state after drain = %s, want done", job.State)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	cl, _, _ := gatedService(t, 1, 1)
	cl.Retries = 1 // observe the raw 429, not the retry loop
	ctx := context.Background()

	got429 := false
	for i := 0; i < 4; i++ {
		_, err := cl.SubmitJob(ctx, jobs.Spec{Impl: string(rune('a' + i)), Seed: 1})
		if err != nil && strings.Contains(err.Error(), "429") {
			got429 = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !got429 {
		t.Fatal("queue of capacity 1 accepted 4 jobs without a 429")
	}
}

func TestCampaignListingAndAggregateState(t *testing.T) {
	cl, _, release := gatedService(t, 1, 16)
	ctx := context.Background()

	// The matrix expander normalizes names even though the gated service
	// has no Normalize hook, so the cells need real implementations.
	camp, err := cl.SubmitCampaign(ctx, prochecker.CampaignSpec{Impls: []string{"conformant", "OAI"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if camp.State != jobs.StateQueued && camp.State != jobs.StateRunning {
		t.Fatalf("fresh campaign state = %s, want queued or running", camp.State)
	}
	var listed struct {
		Campaigns []Campaign `json:"campaigns"`
	}
	if err := cl.do(ctx, http.MethodGet, "/v1/campaigns", nil, &listed); err != nil {
		t.Fatal(err)
	}
	if len(listed.Campaigns) != 1 || listed.Campaigns[0].ID != camp.ID {
		t.Fatalf("campaign list = %+v, want the one submitted", listed.Campaigns)
	}
	release()
	final, err := cl.WaitCampaign(ctx, camp.ID, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.StateDone {
		t.Fatalf("campaign state = %s, want done", final.State)
	}
}

func TestCampaignBadSpecRejected(t *testing.T) {
	cl, _ := newRealServer(t)
	_, err := cl.SubmitCampaign(context.Background(), prochecker.CampaignSpec{Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("empty campaign = %v, want 400", err)
	}
}
