package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"prochecker/internal/jobs"
	"prochecker/internal/obs"
	"prochecker/internal/resilience"
)

// EventStream is one open SSE subscription: a typed reader over a
// /events response body. Next decodes frames one at a time; the
// last-seen frame id is tracked so a dropped connection can be resumed
// with Last-Event-ID (Follow* do this automatically).
type EventStream struct {
	body   io.ReadCloser
	rd     *bufio.Reader
	lastID string
}

// StreamJobEvents opens the SSE stream for one job. lastEventID, when
// non-empty, resumes from just after that bus sequence; "" replays
// whatever the server ring still retains.
func (c *Client) StreamJobEvents(ctx context.Context, id, lastEventID string) (*EventStream, error) {
	return c.stream(ctx, "/v1/jobs/"+id+"/events", lastEventID)
}

// StreamCampaignEvents opens the SSE stream across one campaign's
// member jobs.
func (c *Client) StreamCampaignEvents(ctx context.Context, id, lastEventID string) (*EventStream, error) {
	return c.stream(ctx, "/v1/campaigns/"+id+"/events", lastEventID)
}

// stream issues the streaming GET. Unlike do, it neither retries nor
// buffers — reconnection policy belongs to the Follow* loops, which
// know the resume position.
func (c *Client) stream(ctx context.Context, path, lastEventID string) (*EventStream, error) {
	url := strings.TrimRight(c.Base, "/") + path
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("server: building request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("server: GET %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		resp.Body.Close()
		return nil, &httpError{
			msg:    fmt.Sprintf("server: GET %s: %s (%s)", path, msg, resp.Status),
			status: resp.StatusCode,
		}
	}
	es := &EventStream{body: resp.Body, rd: bufio.NewReader(resp.Body), lastID: lastEventID}
	return es, nil
}

// Next blocks until the next complete frame arrives and decodes it.
// io.EOF means the server ended the stream (for job/campaign streams:
// after the terminal event).
func (s *EventStream) Next() (obs.BusEvent, error) {
	var id, data string
	for {
		line, err := s.rd.ReadString('\n')
		if err != nil {
			return obs.BusEvent{}, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if data == "" {
				continue // heartbeat or padding: keep reading
			}
			if id != "" {
				s.lastID = id
			}
			var ev obs.BusEvent
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				return obs.BusEvent{}, fmt.Errorf("server: decoding event: %w", err)
			}
			return ev, nil
		case strings.HasPrefix(line, ":"):
			// Comment (heartbeat).
		case strings.HasPrefix(line, "id:"):
			id = strings.TrimPrefix(strings.TrimPrefix(line, "id:"), " ")
		case strings.HasPrefix(line, "data:"):
			chunk := strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")
			if data != "" {
				data += "\n"
			}
			data += chunk
		}
		// The event: field is implied by the decoded payload's Type.
	}
}

// LastEventID reports the id of the last identified frame — the resume
// position for a reconnect ("" when no identified frame arrived yet).
func (s *EventStream) LastEventID() string { return s.lastID }

// Close releases the underlying connection.
func (s *EventStream) Close() error { return s.body.Close() }

// follow tails one stream to completion: events go to fn, transport
// drops reconnect from the last identified frame, and isDone decides
// which event ends the tail. Consecutive connection failures are
// bounded by the client's retry budget (a delivered event resets it).
func (c *Client) follow(ctx context.Context, open func(lastID string) (*EventStream, error),
	fn func(obs.BusEvent), isDone func(obs.BusEvent) bool) error {
	attempts := c.Retries
	if attempts <= 0 {
		attempts = DefaultClientRetries
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 200 * time.Millisecond
	}
	lastID := ""
	failures := 0
	for {
		if failures > 0 {
			if failures >= attempts {
				return fmt.Errorf("server: following events: stream kept failing after %d attempts", failures)
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("server: following events: %w", resilience.ErrCancelled)
			case <-time.After(c.jitter(backoff << (failures - 1))):
			}
		}
		es, err := open(lastID)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("server: following events: %w", resilience.ErrCancelled)
			}
			var he *httpError
			if errors.As(err, &he) && !retryableStatus(he.status) {
				return err
			}
			failures++
			continue
		}
		for {
			ev, rerr := es.Next()
			if rerr != nil {
				es.Close()
				if ctx.Err() != nil {
					return fmt.Errorf("server: following events: %w", resilience.ErrCancelled)
				}
				// EOF before the terminal event (server restarted,
				// connection cut): resume from the last identified frame.
				lastID = es.LastEventID()
				failures++
				break
			}
			failures = 0
			lastID = es.LastEventID()
			fn(ev)
			if isDone(ev) {
				es.Close()
				return nil
			}
		}
	}
}

// FollowJob tails a job live: every event (lifecycle, spans, per-level
// exploration progress) is handed to fn until the job goes terminal,
// reconnecting with Last-Event-ID across connection drops. It returns
// the final job snapshot.
func (c *Client) FollowJob(ctx context.Context, id string, fn func(obs.BusEvent)) (jobs.Job, error) {
	err := c.follow(ctx,
		func(lastID string) (*EventStream, error) { return c.StreamJobEvents(ctx, id, lastID) },
		fn,
		func(ev obs.BusEvent) bool {
			return ev.Type == "job" && ev.Scope == id && jobs.State(ev.Name).Terminal()
		})
	if err != nil {
		return jobs.Job{}, err
	}
	return c.Job(ctx, id)
}

// FollowCampaign tails a campaign live until the synthetic campaign
// summary event reports every member terminal, then returns the final
// campaign (with the differential report).
func (c *Client) FollowCampaign(ctx context.Context, id string, fn func(obs.BusEvent)) (Campaign, error) {
	err := c.follow(ctx,
		func(lastID string) (*EventStream, error) { return c.StreamCampaignEvents(ctx, id, lastID) },
		fn,
		func(ev obs.BusEvent) bool {
			return ev.Type == "campaign" && ev.Scope == id && jobs.State(ev.Name).Terminal()
		})
	if err != nil {
		return Campaign{}, err
	}
	return c.Campaign(ctx, id)
}
