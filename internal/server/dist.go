package server

// Fleet coordination over HTTP: the lease-based pull API remote workers
// drive (internal/dist.Worker through Client), plus the per-tenant
// token-bucket admission gate in front of submission.
//
//	POST /v1/leases               acquire: one queued job under a TTL'd lease (204 when idle)
//	GET  /v1/leases               list active leases
//	POST /v1/leases/{id}/heartbeat renew (410 once the lease is gone)
//	POST /v1/leases/{id}/result   upload canonical result bytes (409 stale, 400 key mismatch)
//	POST /v1/leases/{id}/fail     report a classified failure (409 stale)

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"prochecker/internal/dist"
	"prochecker/internal/jobs"
)

// TenantHeader names the submitting tenant for admission control.
const TenantHeader = "X-ProChecker-Tenant"

// maxResultBytes bounds one uploaded canonical result (a full
// 62-property verdict set with traces stays far below this).
const maxResultBytes = 16 << 20

// WithTenantGate installs per-tenant token-bucket admission control in
// front of job and campaign submission. Requests are charged by job
// count (a campaign costs its cell count) against the bucket of their
// X-ProChecker-Tenant header; an exhausted bucket answers 429 with a
// tenant-scoped Retry-After. When the underlying service has a WAL,
// balances are journalled through it and survive a coordinator restart.
func WithTenantGate(g *dist.Gate) Option {
	return func(s *Server) { s.gate = g }
}

// tenantMeta is the JSON payload journalled per tenant (under meta ID
// "tenant:<name>") carrying the bucket balance across restarts.
type tenantMeta struct {
	Tokens float64   `json:"tokens"`
	At     time.Time `json:"at"`
}

// admit charges the request's tenant for cost jobs, answering the 429
// itself (with the tenant-scoped Retry-After) when the quota is
// exhausted. Reports whether the request may proceed.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, cost float64) bool {
	if s.gate == nil {
		return true
	}
	wait, err := s.gate.Admit(r.Header.Get(TenantHeader), cost)
	if err == nil {
		return true
	}
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, err)
	return false
}

// acquireRequest is the POST /v1/leases body.
type acquireRequest struct {
	Worker string `json:"worker"`
}

// failRequest is the POST /v1/leases/{id}/fail body.
type failRequest struct {
	Class string `json:"class"`
	Error string `json:"error"`
}

func (s *Server) handleAcquireLease(w http.ResponseWriter, r *http.Request) {
	var req acquireRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	lease, job, ok, err := s.svc.AcquireLease(req.Worker)
	if err != nil {
		writeSubmitError(w, err) // draining: 503 + Retry-After
		return
	}
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, dist.Grant{
		Lease: lease, Job: job, TTLMS: s.svc.LeaseTTL().Milliseconds(),
	})
}

func (s *Server) handleListLeases(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Leases []jobs.Lease `json:"leases"`
	}{s.svc.Leases()})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	lease, err := s.svc.RenewLease(r.PathValue("id"))
	if err != nil {
		// Gone is terminal for this lease: the client must not retry.
		writeError(w, http.StatusGone, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Lease jobs.Lease `json:"lease"`
	}{lease})
}

func (s *Server) handleLeaseResult(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxResultBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading result: %w", err))
		return
	}
	if len(body) > maxResultBytes {
		writeError(w, http.StatusRequestEntityTooLarge, errors.New("result exceeds size bound"))
		return
	}
	var res jobs.Result
	if err := json.Unmarshal(body, &res); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding result: %w", err))
		return
	}
	job, err := s.svc.CompleteLease(r.PathValue("id"), &res)
	if err != nil {
		writeError(w, leaseSettleStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Job jobs.Job `json:"job"`
	}{job})
}

func (s *Server) handleLeaseFail(w http.ResponseWriter, r *http.Request) {
	var req failRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	job, err := s.svc.FailLease(r.PathValue("id"), req.Class, req.Error)
	if err != nil {
		writeError(w, leaseSettleStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Job jobs.Job `json:"job"`
	}{job})
}

// leaseSettleStatus maps a refused lease settlement onto its HTTP
// status: stale uploads conflict (the job already moved on), mismatched
// results are the client's fault.
func leaseSettleStatus(err error) int {
	switch {
	case errors.Is(err, jobs.ErrStaleResult):
		return http.StatusConflict
	case errors.Is(err, jobs.ErrResultMismatch):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}
