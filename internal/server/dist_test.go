package server

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"prochecker"
	"prochecker/internal/dist"
	"prochecker/internal/jobs"
	"prochecker/internal/obs"
)

// syntheticRunner returns a deterministic result instantly — fleet
// tests exercise the lease plumbing, not the analyzer.
func syntheticRunner(_ context.Context, spec jobs.Spec) (*jobs.Result, error) {
	return &jobs.Result{
		SchemaVersion: jobs.ResultSchemaVersion, Key: spec.Key(), Spec: spec,
		Verdicts: []jobs.Verdict{{ID: "S06", Class: "authentication", Verified: true}},
	}, nil
}

// newCoordServer builds a pure-coordinator server (no local worker
// pool): every submitted job sits queued until a fleet worker leases it
// through the HTTP API.
func newCoordServer(t *testing.T, mut func(*jobs.Config), opts ...Option) (*Client, *jobs.Service, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := jobs.Config{
		Runner:         syntheticRunner,
		Normalize:      prochecker.NormalizeJobSpec,
		NoLocalWorkers: true,
		LeaseTTL:       time.Minute,
		Metrics:        reg,
	}
	if mut != nil {
		mut(&cfg)
	}
	svc, err := jobs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(New(svc, reg, opts...))
	t.Cleanup(ts.Close)
	return &Client{Base: ts.URL, HTTP: ts.Client(), Retries: 1}, svc, reg
}

// TestFleetWorkerDrainsCoordinator is the HTTP round-trip: jobs
// submitted to a workerless coordinator complete through a dist.Worker
// pulling over the lease API, carrying the worker identity back into
// the job records.
func TestFleetWorkerDrainsCoordinator(t *testing.T) {
	cl, _, reg := newCoordServer(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	var ids []string
	for _, impl := range []string{"conformant", "srslte", "oai"} {
		j, err := cl.SubmitJob(ctx, jobs.Spec{Impl: impl, Seed: 42, Properties: []string{"S06"}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}

	wreg := obs.NewRegistry()
	w := &dist.Worker{
		Coordinator: cl, Runner: syntheticRunner,
		ID: "fleet-1", Concurrency: 2, Poll: 2 * time.Millisecond, Metrics: wreg,
	}
	wctx, wcancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- w.Run(wctx) }()

	for _, id := range ids {
		j, err := cl.WaitJob(ctx, id, 2*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if j.State != jobs.StateDone || j.Result == nil {
			t.Fatalf("job %s = state %s, want done with result", id, j.State)
		}
		if j.Worker != "fleet-1" {
			t.Fatalf("job %s worker = %q, want fleet-1", id, j.Worker)
		}
	}
	wcancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("worker Run = %v, want context.Canceled", err)
	}

	if got := wreg.Counter("dist.worker_jobs_completed").Value(); got != 3 {
		t.Fatalf("dist.worker_jobs_completed = %d, want 3", got)
	}
	if got := reg.Counter("dist.leases_granted").Value(); got != 3 {
		t.Fatalf("dist.leases_granted = %d, want 3", got)
	}
	if got := reg.Gauge(obs.LabeledStr("jobs.leases_active", "worker", "fleet-1")).Value(); got != 0 {
		t.Fatalf("jobs.leases_active{worker=fleet-1} = %d, want 0 after drain", got)
	}
	leases, err := cl.Leases(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 0 {
		t.Fatalf("active leases = %+v, want none", leases)
	}
}

func TestLeaseHTTPStatusMapping(t *testing.T) {
	cl, _, reg := newCoordServer(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Empty queue: 204 surfaces as a nil grant, not an error.
	if g, err := cl.AcquireLease(ctx, "w1"); g != nil || err != nil {
		t.Fatalf("acquire on empty queue = %+v, %v; want nil, nil", g, err)
	}
	// Heartbeat on an unknown lease: 410 Gone, not retried.
	err := cl.RenewLease(ctx, "l-9999")
	var he *httpError
	if !errors.As(err, &he) || he.status != 410 {
		t.Fatalf("renew of unknown lease = %v, want 410", err)
	}

	if _, err := cl.SubmitJob(ctx, jobs.Spec{Impl: "conformant", Seed: 1, Properties: []string{"S06"}}); err != nil {
		t.Fatal(err)
	}
	g, err := cl.AcquireLease(ctx, "w1")
	if err != nil || g == nil {
		t.Fatalf("acquire = %+v, %v", g, err)
	}

	// A result for the wrong spec: 400, and the lease survives.
	wrong, _ := syntheticRunner(ctx, jobs.Spec{Impl: "oai", Seed: 9})
	wrongBytes, _ := wrong.MarshalCanonical()
	err = cl.CompleteLease(ctx, g.Lease.ID, wrongBytes)
	if !errors.As(err, &he) || he.status != 400 {
		t.Fatalf("mismatched upload = %v, want 400", err)
	}

	res, _ := syntheticRunner(ctx, g.Job.Spec)
	res.Key = g.Job.Key
	canonical, merr := res.MarshalCanonical()
	if merr != nil {
		t.Fatal(merr)
	}
	if err := cl.CompleteLease(ctx, g.Lease.ID, canonical); err != nil {
		t.Fatal(err)
	}
	// Second upload for the settled lease: 409, counted as stale.
	err = cl.CompleteLease(ctx, g.Lease.ID, canonical)
	if !errors.As(err, &he) || he.status != 409 {
		t.Fatalf("stale upload = %v, want 409", err)
	}
	if err := cl.FailLease(ctx, g.Lease.ID, "internal", "late report"); !errors.As(err, &he) || he.status != 409 {
		t.Fatalf("stale failure report = %v, want 409", err)
	}
	if got := reg.Counter("dist.stale_results").Value(); got != 2 {
		t.Fatalf("dist.stale_results = %d, want 2", got)
	}
}

// TestTenantQuotaExhaustion pins the admission gate: a tenant over its
// quota gets 429 with a tenant-scoped Retry-After while other tenants
// keep submitting.
func TestTenantQuotaExhaustion(t *testing.T) {
	quotas, err := dist.ParseQuotaSpec("alice=2@1,bob=5@1,carol=5@1")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cl, _, _ := newCoordServer(t, func(c *jobs.Config) { c.Metrics = reg },
		WithTenantGate(dist.NewGate(quotas, reg)))
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	alice := &Client{Base: cl.Base, HTTP: cl.HTTP, Tenant: "alice", Retries: 1}
	bob := &Client{Base: cl.Base, HTTP: cl.HTTP, Tenant: "bob", Retries: 1}
	carol := &Client{Base: cl.Base, HTTP: cl.HTTP, Tenant: "carol", Retries: 1}

	for i := 0; i < 2; i++ {
		if _, err := alice.SubmitJob(ctx, jobs.Spec{Impl: "conformant", Seed: int64(i), Properties: []string{"S06"}}); err != nil {
			t.Fatalf("alice submit %d = %v, want admitted", i, err)
		}
	}
	_, err = alice.SubmitJob(ctx, jobs.Spec{Impl: "conformant", Seed: 99, Properties: []string{"S06"}})
	var he *httpError
	if !errors.As(err, &he) || he.status != 429 {
		t.Fatalf("alice over quota = %v, want 429", err)
	}
	if he.retryAfter < time.Second {
		t.Fatalf("Retry-After = %v, want >= 1s", he.retryAfter)
	}

	// Alice's exhaustion leaves bob's bucket untouched.
	for i := 0; i < 5; i++ {
		if _, err := bob.SubmitJob(ctx, jobs.Spec{Impl: "srslte", Seed: int64(i), Properties: []string{"S06"}}); err != nil {
			t.Fatalf("bob submit %d = %v, want admitted", i, err)
		}
	}

	// A campaign is charged by cell count: 6 cells against a burst of 5
	// is refused atomically — no partial admission.
	_, err = carol.SubmitCampaign(ctx, prochecker.CampaignSpec{
		Impls:  []string{"conformant", "srslte", "oai"},
		Faults: []string{"", "drop=0.15"},
		Seed:   42, Properties: []string{"S06"},
	})
	if !errors.As(err, &he) || he.status != 429 {
		t.Fatalf("carol 6-cell campaign against burst 5 = %v, want 429", err)
	}
	if got := reg.Counter(obs.LabeledStr("dist.tenant_rejected", "tenant", "carol")).Value(); got != 1 {
		t.Fatalf("dist.tenant_rejected{tenant=carol} = %d, want 1", got)
	}
}

// TestTenantQuotaSurvivesRestart: journalled bucket balances replay
// through the WAL, so bouncing the coordinator does not refill an
// exhausted tenant.
func TestTenantQuotaSurvivesRestart(t *testing.T) {
	walDir := t.TempDir()
	// Near-zero refill rate keeps the balance flat across the restart.
	quotas, err := dist.ParseQuotaSpec("alice=3@0.001")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	reg := obs.NewRegistry()
	svc, err := jobs.New(jobs.Config{
		Runner: syntheticRunner, Normalize: prochecker.NormalizeJobSpec,
		NoLocalWorkers: true, LeaseTTL: time.Minute, WALDir: walDir, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(svc, reg, WithTenantGate(dist.NewGate(quotas, reg))))
	alice := &Client{Base: ts.URL, HTTP: ts.Client(), Tenant: "alice", Retries: 1}
	for i := 0; i < 3; i++ {
		if _, err := alice.SubmitJob(ctx, jobs.Spec{Impl: "conformant", Seed: int64(i), Properties: []string{"S06"}}); err != nil {
			t.Fatalf("alice submit %d = %v, want admitted", i, err)
		}
	}
	ts.Close()
	svc.Close() // checkpoints the WAL; tenant metas must survive compaction

	svc2, err := jobs.New(jobs.Config{
		Runner: syntheticRunner, Normalize: prochecker.NormalizeJobSpec,
		NoLocalWorkers: true, LeaseTTL: time.Minute, WALDir: walDir, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc2.Close)
	ts2 := httptest.NewServer(New(svc2, obs.NewRegistry(), WithTenantGate(dist.NewGate(quotas, obs.NewRegistry()))))
	t.Cleanup(ts2.Close)

	alice2 := &Client{Base: ts2.URL, HTTP: ts2.Client(), Tenant: "alice", Retries: 1}
	_, err = alice2.SubmitJob(ctx, jobs.Spec{Impl: "conformant", Seed: 99, Properties: []string{"S06"}})
	var he *httpError
	if !errors.As(err, &he) || he.status != 429 {
		t.Fatalf("alice after restart = %v, want 429 (balance restored from WAL)", err)
	}

	// A tenant outside the quota map is ungoverned before and after the
	// restart.
	fresh := &Client{Base: ts2.URL, HTTP: ts2.Client(), Tenant: "bob", Retries: 1}
	if _, err := fresh.SubmitJob(ctx, jobs.Spec{Impl: "srslte", Seed: 1, Properties: []string{"S06"}}); err != nil {
		t.Fatalf("ungoverned tenant after restart = %v, want admitted", err)
	}
}
