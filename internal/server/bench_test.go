package server

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"prochecker"
	"prochecker/internal/jobs"
)

// benchClient builds a real-runner server for benchmarking.
func benchClient(b *testing.B) *Client {
	b.Helper()
	return benchClientWAL(b, "")
}

// benchClientWAL is benchClient with an optional write-ahead log, for
// measuring what durability costs over the in-memory queue.
func benchClientWAL(b *testing.B, walDir string) *Client {
	b.Helper()
	store, err := jobs.OpenStore(b.TempDir(), 4096)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := jobs.New(jobs.Config{
		Runner:    prochecker.JobRunner(2),
		Normalize: prochecker.NormalizeJobSpec,
		Store:     store,
		WALDir:    walDir,
		Workers:   2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	ts := httptest.NewServer(New(svc, nil))
	b.Cleanup(ts.Close)
	return &Client{Base: ts.URL, HTTP: ts.Client()}
}

func runCampaign(b *testing.B, cl *Client, seed int64) {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	camp, err := cl.SubmitCampaign(ctx, prochecker.CampaignSpec{
		Impls:      []string{"conformant", "srsLTE", "OAI"},
		Faults:     []string{"", "drop=0.15"},
		Seed:       seed,
		Properties: []string{"S06"},
	})
	if err != nil {
		b.Fatal(err)
	}
	camp, err = cl.WaitCampaign(ctx, camp.ID, time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	if camp.State != jobs.StateDone {
		b.Fatalf("campaign state = %s, want done", camp.State)
	}
}

// BenchmarkServeCampaign measures the full HTTP round trip of a
// 3-implementation × 2-fault-spec campaign (6 cells, one property).
// The cold variant changes the seed every iteration so every cell is
// computed; the cached variant reuses one seed so after the first
// iteration every cell is served from the content-addressed store.
func BenchmarkServeCampaign(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		cl := benchClient(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runCampaign(b, cl, int64(1000+i))
		}
	})
	b.Run("cached", func(b *testing.B) {
		cl := benchClient(b)
		runCampaign(b, cl, 42) // warm the store
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runCampaign(b, cl, 42)
		}
	})
}

// BenchmarkServeCampaignDurable is BenchmarkServeCampaign/cold with
// the write-ahead log enabled: every submission, start and terminal
// transition is journalled (group-commit fsync). The acceptance bar is
// throughput within 5% of the in-memory queue.
func BenchmarkServeCampaignDurable(b *testing.B) {
	cl := benchClientWAL(b, b.TempDir())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCampaign(b, cl, int64(1000+i))
	}
}
