package server

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"prochecker"
	"prochecker/internal/dist"
	"prochecker/internal/jobs"
)

// benchClient builds a real-runner server for benchmarking.
func benchClient(b *testing.B) *Client {
	b.Helper()
	return benchClientWAL(b, "")
}

// benchClientWAL is benchClient with an optional write-ahead log, for
// measuring what durability costs over the in-memory queue.
func benchClientWAL(b *testing.B, walDir string) *Client {
	b.Helper()
	store, err := jobs.OpenStore(b.TempDir(), 4096)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := jobs.New(jobs.Config{
		Runner:    prochecker.JobRunner(2),
		Normalize: prochecker.NormalizeJobSpec,
		Store:     store,
		WALDir:    walDir,
		Workers:   2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	ts := httptest.NewServer(New(svc, nil))
	b.Cleanup(ts.Close)
	return &Client{Base: ts.URL, HTTP: ts.Client()}
}

func runCampaign(b *testing.B, cl *Client, seed int64) {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	camp, err := cl.SubmitCampaign(ctx, prochecker.CampaignSpec{
		Impls:      []string{"conformant", "srsLTE", "OAI"},
		Faults:     []string{"", "drop=0.15"},
		Seed:       seed,
		Properties: []string{"S06"},
	})
	if err != nil {
		b.Fatal(err)
	}
	camp, err = cl.WaitCampaign(ctx, camp.ID, time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	if camp.State != jobs.StateDone {
		b.Fatalf("campaign state = %s, want done", camp.State)
	}
}

// BenchmarkServeCampaign measures the full HTTP round trip of a
// 3-implementation × 2-fault-spec campaign (6 cells, one property).
// The cold variant changes the seed every iteration so every cell is
// computed; the cached variant reuses one seed so after the first
// iteration every cell is served from the content-addressed store.
func BenchmarkServeCampaign(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		cl := benchClient(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runCampaign(b, cl, int64(1000+i))
		}
	})
	b.Run("cached", func(b *testing.B) {
		cl := benchClient(b)
		runCampaign(b, cl, 42) // warm the store
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runCampaign(b, cl, 42)
		}
	})
}

// BenchmarkServeCampaignDurable is BenchmarkServeCampaign/cold with
// the write-ahead log enabled: every submission, start and terminal
// transition is journalled (group-commit fsync). The acceptance bar is
// throughput within 5% of the in-memory queue.
func BenchmarkServeCampaignDurable(b *testing.B) {
	cl := benchClientWAL(b, b.TempDir())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCampaign(b, cl, int64(1000+i))
	}
}

// fleetBenchClient builds a workerless coordinator whose jobs are
// executed by in-process fleet workers pulling over the HTTP lease API.
// The runner sleeps a fixed service time instead of running the real
// analyzer: it stands in for remote compute happening off-box, so the
// measured quantity is lease-dispatch concurrency — how much campaign
// wall-clock the coordinator can overlap across workers — rather than
// local CPU contention (the benchmark host may have a single core).
func fleetBenchClient(b *testing.B) *Client {
	b.Helper()
	store, err := jobs.OpenStore(b.TempDir(), 4096)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := jobs.New(jobs.Config{
		Runner: func(ctx context.Context, spec jobs.Spec) (*jobs.Result, error) {
			return nil, errors.New("coordinator must not run jobs locally")
		},
		Normalize:      prochecker.NormalizeJobSpec,
		Store:          store,
		NoLocalWorkers: true,
		LeaseTTL:       time.Minute,
		Queue:          256,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	ts := httptest.NewServer(New(svc, nil))
	b.Cleanup(ts.Close)
	return &Client{Base: ts.URL, HTTP: ts.Client()}
}

// fleetRunner models one remote job: a fixed service time, then a
// deterministic verdict set.
func fleetRunner(serviceTime time.Duration) jobs.Runner {
	return func(ctx context.Context, spec jobs.Spec) (*jobs.Result, error) {
		t := time.NewTimer(serviceTime)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
		return &jobs.Result{
			SchemaVersion: jobs.ResultSchemaVersion, Key: spec.Key(), Spec: spec,
			Verdicts: []jobs.Verdict{{ID: "S06", Class: "authentication", Verified: true}},
		}, nil
	}
}

// BenchmarkFleetCampaign measures a 3-implementation × 3-fault-spec
// campaign (9 cells, 40ms fixed service time each) end to end through
// the lease protocol with a 1-worker and a 2-worker fleet. The
// acceptance bar (ci.sh) is >= 1.5x campaign throughput with 2 workers.
func BenchmarkFleetCampaign(b *testing.B) {
	const serviceTime = 40 * time.Millisecond
	for _, nworkers := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers=%d", nworkers), func(b *testing.B) {
			cl := fleetBenchClient(b)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan struct{}, nworkers)
			for i := 0; i < nworkers; i++ {
				w := &dist.Worker{
					Coordinator: cl, Runner: fleetRunner(serviceTime),
					ID: fmt.Sprintf("bench-w%d", i), Poll: time.Millisecond, Seed: int64(i),
				}
				go func() { defer func() { done <- struct{}{} }(); w.Run(ctx) }() //nolint:errcheck
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchCtx, benchCancel := context.WithTimeout(context.Background(), 2*time.Minute)
				camp, err := cl.SubmitCampaign(benchCtx, prochecker.CampaignSpec{
					Impls:      []string{"conformant", "srsLTE", "OAI"},
					Faults:     []string{"", "drop=0.15", "drop=0.3"},
					Seed:       int64(2000 + i),
					Properties: []string{"S06"},
				})
				if err != nil {
					benchCancel()
					b.Fatal(err)
				}
				camp, err = cl.WaitCampaign(benchCtx, camp.ID, time.Millisecond)
				benchCancel()
				if err != nil {
					b.Fatal(err)
				}
				if camp.State != jobs.StateDone {
					b.Fatalf("campaign state = %s, want done", camp.State)
				}
			}
			b.StopTimer()
			cancel()
			for i := 0; i < nworkers; i++ {
				<-done
			}
		})
	}
}
