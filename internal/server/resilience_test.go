package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"prochecker"
	"prochecker/internal/jobs"
)

// fastClient returns a client with millisecond backoff so retry tests
// stay quick.
func fastClient(base string, hc *http.Client) *Client {
	return &Client{Base: base, HTTP: hc, Backoff: time.Millisecond, Seed: 7}
}

func TestBackpressureResponsesCarryRetryAfter(t *testing.T) {
	cl, srv, _ := gatedService(t, 1, 1)
	ctx := context.Background()

	// Fill the worker and the queue, then probe the raw responses.
	for i := 0; i < 2; i++ {
		if _, err := cl.SubmitJob(ctx, jobs.Spec{Impl: fmt.Sprintf("impl-%d", i), Seed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	probe := func(wantStatus int, wantRetryAfter string) {
		t.Helper()
		body, _ := json.Marshal(jobs.Spec{Impl: "overflow", Seed: 1})
		resp, err := cl.http().Post(cl.Base+"/v1/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
		}
		if got := resp.Header.Get("Retry-After"); got != wantRetryAfter {
			t.Fatalf("Retry-After = %q, want %q", got, wantRetryAfter)
		}
	}
	probe(http.StatusTooManyRequests, "1")
	srv.StartDrain()
	probe(http.StatusServiceUnavailable, "5")
}

func TestClientRetriesTransientStatusThenSucceeds(t *testing.T) {
	var hits atomic.Int64
	job := jobs.Job{ID: "j-0001", State: jobs.StateDone}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// First two attempts: full queue with a zero-second hint so the
		// test doesn't sleep a real Retry-After out.
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			writeError(w, http.StatusTooManyRequests, jobs.ErrQueueFull)
			return
		}
		writeJSON(w, http.StatusAccepted, struct {
			Job jobs.Job `json:"job"`
		}{job})
	}))
	defer ts.Close()

	cl := fastClient(ts.URL, ts.Client())
	got, err := cl.SubmitJob(context.Background(), jobs.Spec{Impl: "a", Seed: 1})
	if err != nil {
		t.Fatalf("submit through transient 429s: %v", err)
	}
	if got.ID != job.ID {
		t.Fatalf("job = %+v, want %+v", got, job)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want 3", n)
	}
}

func TestClientRetryExhaustionSurfacesLastStatus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "0")
		writeError(w, http.StatusServiceUnavailable, jobs.ErrDraining)
	}))
	defer ts.Close()

	cl := fastClient(ts.URL, ts.Client())
	_, err := cl.SubmitJob(context.Background(), jobs.Spec{Impl: "a", Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("err = %v, want the final 503", err)
	}
}

func TestClientDoesNotRetryDeterministicStatus(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("no such impl"))
	}))
	defer ts.Close()

	cl := fastClient(ts.URL, ts.Client())
	_, err := cl.SubmitJob(context.Background(), jobs.Spec{Impl: "bogus", Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("err = %v, want a 400", err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server saw %d attempts for a 400, want 1 (fail fast)", n)
	}
}

func TestClientRetriesNetworkErrors(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			// Kill the connection mid-response: the client sees a
			// transport error, not a status.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("recorder not hijackable")
				return
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Jobs []jobs.Job `json:"jobs"`
		}{})
	}))
	defer ts.Close()

	cl := fastClient(ts.URL, ts.Client())
	if _, err := cl.Jobs(context.Background()); err != nil {
		t.Fatalf("list through a dropped connection: %v", err)
	}
	if n := hits.Load(); n != 2 {
		t.Fatalf("server saw %d attempts, want 2", n)
	}
}

func TestCampaignsSurviveServerRestart(t *testing.T) {
	walDir := t.TempDir()
	storeDir := t.TempDir()
	gate := make(chan struct{})
	close(gate) // ungated: jobs finish immediately

	open := func() (*Client, *jobs.Service, func()) {
		store, err := jobs.OpenStore(storeDir, 64)
		if err != nil {
			t.Fatal(err)
		}
		svc, err := jobs.New(jobs.Config{
			Runner: func(ctx context.Context, spec jobs.Spec) (*jobs.Result, error) {
				<-gate
				return &jobs.Result{SchemaVersion: jobs.ResultSchemaVersion, Key: spec.Key(), Spec: spec,
					Verdicts: []jobs.Verdict{{ID: "S06", Class: "authentication", Verified: true}}}, nil
			},
			Store:   store,
			WALDir:  walDir,
			Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(New(svc, nil))
		return &Client{Base: ts.URL, HTTP: ts.Client()}, svc, ts.Close
	}

	cl1, svc1, close1 := open()
	ctx := context.Background()
	camp, err := cl1.SubmitCampaign(ctx, prochecker.CampaignSpec{Impls: []string{"conformant", "srsLTE"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl1.WaitCampaign(ctx, camp.ID, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := svc1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	close1()

	cl2, svc2, close2 := open()
	defer close2()
	defer svc2.Close()
	got, err := cl2.Campaign(ctx, camp.ID)
	if err != nil {
		t.Fatalf("campaign %s lost across restart: %v", camp.ID, err)
	}
	if got.State != jobs.StateDone {
		t.Fatalf("restored campaign state = %s, want done", got.State)
	}
	if len(got.JobIDs) != 2 || got.JobIDs[0] != camp.JobIDs[0] || got.JobIDs[1] != camp.JobIDs[1] {
		t.Fatalf("restored membership %v, want %v", got.JobIDs, camp.JobIDs)
	}
	if got.Report == "" {
		t.Fatal("restored campaign renders no differential report")
	}
	// New campaigns continue the ID sequence.
	camp2, err := cl2.SubmitCampaign(ctx, prochecker.CampaignSpec{Impls: []string{"OAI"}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if camp2.ID == camp.ID {
		t.Fatalf("restarted server reissued campaign ID %s", camp2.ID)
	}
}
