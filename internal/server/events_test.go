package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"prochecker"
	"prochecker/internal/jobs"
	"prochecker/internal/obs"
)

// gatedBusService is gatedService plus a live event bus of the given
// capacity wired through both the job service and the server.
func gatedBusService(t *testing.T, workers, queue, busCap int) (*Client, *Server, *obs.Bus, *obs.Registry, func()) {
	t.Helper()
	reg := obs.NewRegistry()
	bus := obs.NewBus(busCap, reg)
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release)
	runner := func(ctx context.Context, spec jobs.Spec) (*jobs.Result, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &jobs.Result{SchemaVersion: jobs.ResultSchemaVersion, Key: spec.Key(), Spec: spec}, nil
	}
	svc, err := jobs.New(jobs.Config{Runner: runner, Workers: workers, Queue: queue, Metrics: reg, Events: bus})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	srv := New(svc, reg, WithBus(bus))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &Client{Base: ts.URL, HTTP: ts.Client()}, srv, bus, reg, release
}

func TestJobEventsStreamLifecycle(t *testing.T) {
	cl, _, _, _, release := gatedBusService(t, 1, 8, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := cl.SubmitJob(ctx, jobs.Spec{Impl: "a", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	es, err := cl.StreamJobEvents(ctx, job.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()

	// First frame is always the synthetic snapshot.
	first, err := es.Next()
	if err != nil {
		t.Fatalf("reading snapshot: %v", err)
	}
	if first.Type != "snapshot" || first.Scope != job.ID || first.Seq != 0 {
		t.Fatalf("first frame = %+v, want id-less snapshot for %s", first, job.ID)
	}

	release()
	var states []string
	for {
		ev, err := es.Next()
		if err != nil {
			t.Fatalf("mid-stream: %v (states so far %v)", err, states)
		}
		if ev.Scope != job.ID && ev.Type != "dropped" {
			t.Fatalf("stream leaked foreign event %+v", ev)
		}
		if ev.Type == "job" {
			states = append(states, ev.Name)
			if jobs.State(ev.Name).Terminal() {
				break
			}
		}
	}
	last := states[len(states)-1]
	if last != string(jobs.StateDone) {
		t.Fatalf("terminal lifecycle event = %q, want done (all: %v)", last, states)
	}
	// After the terminal event the server ends the stream.
	if ev, err := es.Next(); err == nil {
		t.Fatalf("stream stayed open past terminal event, got %+v", ev)
	}
}

// TestCampaignEventsResumeGapFree is the acceptance test for
// Last-Event-ID resume: a client that disconnects mid-campaign and
// reconnects with its last seen id gets every subsequent event exactly
// once — no gap, no duplicate.
func TestCampaignEventsResumeGapFree(t *testing.T) {
	cl, _, _, _, release := gatedBusService(t, 1, 16, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	camp, err := cl.SubmitCampaign(ctx, prochecker.CampaignSpec{
		Impls: []string{"conformant", "srsLTE", "OAI"}, Faults: []string{""}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	members := make(map[string]bool, len(camp.JobIDs))
	for _, id := range camp.JobIDs {
		members[id] = true
	}

	// First connection: read until the first running event, then drop it.
	es, err := cl.StreamCampaignEvents(ctx, camp.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	var got []obs.BusEvent
	for {
		ev, err := es.Next()
		if err != nil {
			t.Fatalf("first connection: %v", err)
		}
		if ev.Seq > 0 {
			got = append(got, ev)
		}
		if ev.Type == "job" && ev.Name == string(jobs.StateRunning) {
			break
		}
	}
	lastID := es.LastEventID()
	es.Close()
	if lastID == "" {
		t.Fatal("no identified frame arrived before the disconnect")
	}

	// While disconnected, the campaign runs to completion.
	release()
	if _, err := cl.WaitCampaign(ctx, camp.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Second connection resumes from the recorded position.
	es2, err := cl.StreamCampaignEvents(ctx, camp.ID, lastID)
	if err != nil {
		t.Fatal(err)
	}
	defer es2.Close()
	var summary *obs.BusEvent
	for {
		ev, err := es2.Next()
		if err != nil {
			t.Fatalf("resumed connection: %v", err)
		}
		if ev.Seq > 0 {
			got = append(got, ev)
		}
		if ev.Type == "campaign" && ev.Scope == camp.ID && jobs.State(ev.Name).Terminal() {
			summary = &ev
			break
		}
	}

	// No duplicate, no regression across the reconnect boundary.
	seen := make(map[uint64]bool)
	var prev uint64
	for i, ev := range got {
		if ev.Type == "dropped" {
			t.Fatalf("resume fell off ring retention (event %d: %+v)", i, ev)
		}
		if seen[ev.Seq] {
			t.Fatalf("sequence %d delivered twice (event %d)", ev.Seq, i)
		}
		seen[ev.Seq] = true
		if ev.Seq <= prev {
			t.Fatalf("sequence went backwards: %d after %d (event %d)", ev.Seq, prev, i)
		}
		prev = ev.Seq
	}
	// No gap: every member job's full lifecycle arrived exactly once.
	lifecycle := make(map[string]int)
	for _, ev := range got {
		if ev.Type == "job" && members[ev.Scope] {
			lifecycle[ev.Scope+"/"+ev.Name]++
		}
	}
	for id := range members {
		for _, state := range []string{string(jobs.StateQueued), string(jobs.StateRunning), string(jobs.StateDone)} {
			if n := lifecycle[id+"/"+state]; n != 1 {
				t.Errorf("lifecycle event %s/%s delivered %d times, want exactly 1", id, state, n)
			}
		}
	}
	if summary == nil || summary.Value != int64(len(camp.JobIDs)) {
		t.Fatalf("campaign summary = %+v, want member count %d", summary, len(camp.JobIDs))
	}
}

// TestEventsResumePastRetention verifies the slow-consumer surface: a
// client resuming from a position the ring has already recycled gets an
// explicit "dropped" marker (and the drop is counted) instead of a
// silent gap.
func TestEventsResumePastRetention(t *testing.T) {
	cl, _, bus, reg, release := gatedBusService(t, 1, 8, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := cl.SubmitJob(ctx, jobs.Spec{Impl: "a", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Overrun the 4-slot ring while the job is still live.
	for i := 0; i < 32; i++ {
		bus.Publish(obs.BusEvent{Type: "note", Scope: job.ID, Msg: "filler " + strconv.Itoa(i)})
	}

	es, err := cl.StreamJobEvents(ctx, job.ID, "1")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	var sawDropped bool
	for i := 0; i < 8; i++ {
		ev, err := es.Next()
		if err != nil {
			t.Fatalf("reading resumed stream: %v", err)
		}
		if ev.Type == "dropped" {
			if ev.Value <= 0 {
				t.Fatalf("dropped marker reports no gap: %+v", ev)
			}
			sawDropped = true
			break
		}
	}
	if !sawDropped {
		t.Fatal("resume past ring retention produced no dropped marker")
	}
	if got := reg.Counter("obs.events_dropped").Value(); got <= 0 {
		t.Fatalf("obs.events_dropped = %d, want > 0", got)
	}
	release()
}

// TestEventsStalledSubscriberNeverBlocksService: a subscriber that
// never reads must not stall publishers — jobs keep completing at full
// speed while the SSE connection sits idle.
func TestEventsStalledSubscriberNeverBlocksService(t *testing.T) {
	cl, _, _, _, release := gatedBusService(t, 2, 64, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	release()

	first, err := cl.SubmitJob(ctx, jobs.Spec{Impl: "stall", Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Open the stream and never read from it.
	es, err := cl.StreamJobEvents(ctx, first.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()

	for i := 1; i <= 40; i++ {
		job, err := cl.SubmitJob(ctx, jobs.Spec{Impl: "stall", Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.WaitJob(ctx, job.ID, 2*time.Millisecond); err != nil {
			t.Fatalf("job %d never finished while a subscriber was stalled: %v", i, err)
		}
	}
}

func TestJobEventsAlreadyTerminalReplays(t *testing.T) {
	cl, _, _, _, release := gatedBusService(t, 1, 8, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	release()

	job, err := cl.SubmitJob(ctx, jobs.Spec{Impl: "a", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WaitJob(ctx, job.ID, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	es, err := cl.StreamJobEvents(ctx, job.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	snap, err := es.Next()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Type != "snapshot" || !jobs.State(snap.Name).Terminal() {
		t.Fatalf("snapshot of finished job = %+v, want terminal state", snap)
	}
	var sawTerminal bool
	for {
		ev, err := es.Next()
		if err != nil {
			break // EOF: replay done, stream closed
		}
		if ev.Type == "job" && ev.Scope == job.ID && jobs.State(ev.Name).Terminal() {
			sawTerminal = true
		}
	}
	if !sawTerminal {
		t.Fatal("replay of a finished job's stream omitted the terminal event")
	}
}

func TestFollowJobTailsToCompletion(t *testing.T) {
	cl, _, _, _, release := gatedBusService(t, 1, 8, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := cl.SubmitJob(ctx, jobs.Spec{Impl: "a", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		release()
	}()
	var mu sync.Mutex
	var types []string
	final, err := cl.FollowJob(ctx, job.ID, func(ev obs.BusEvent) {
		mu.Lock()
		types = append(types, ev.Type)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("FollowJob: %v", err)
	}
	if final.State != jobs.StateDone {
		t.Fatalf("final job state = %s, want done", final.State)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(types) == 0 {
		t.Fatal("FollowJob delivered no events")
	}
}

func TestJobEventsUnknownJob404(t *testing.T) {
	cl, _, _, _, _ := gatedBusService(t, 1, 8, 0)
	_, err := cl.StreamJobEvents(context.Background(), "j-9999", "")
	if err == nil {
		t.Fatal("streaming an unknown job succeeded")
	}
	var he *httpError
	if !errors.As(err, &he) || he.status != http.StatusNotFound {
		t.Fatalf("unknown job error = %v, want 404", err)
	}
}

func TestEventsWithoutBus501(t *testing.T) {
	cl, _, release := gatedService(t, 1, 8) // no bus
	defer release()
	job, err := cl.SubmitJob(context.Background(), jobs.Spec{Impl: "a", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.StreamJobEvents(context.Background(), job.ID, "")
	if err == nil {
		t.Fatal("streaming on a bus-less server succeeded")
	}
	var he *httpError
	if !errors.As(err, &he) || he.status != http.StatusNotImplemented {
		t.Fatalf("bus-less stream error = %v, want 501", err)
	}
}

// TestHealthzDraining: the campaign server's own /healthz flips to 503
// once draining begins, so load balancers stop routing while in-flight
// jobs finish.
func TestHealthzDraining(t *testing.T) {
	cl, srv, _, _, release := gatedBusService(t, 1, 8, 0)
	defer release()

	get := func() (int, string) {
		resp, err := cl.http().Get(cl.Base + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 64)
		n, _ := resp.Body.Read(buf)
		return resp.StatusCode, strings.TrimSpace(string(buf[:n]))
	}
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("/healthz before drain = %d, want 200", code)
	}
	srv.StartDrain()
	code, body := get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while draining = %d, want 503", code)
	}
	if body != "draining" {
		t.Fatalf("/healthz draining body = %q, want \"draining\"", body)
	}
}

// TestMetricsEndpoint: the campaign server exposes its registry in
// Prometheus text format, valid per the in-repo validator.
func TestMetricsEndpoint(t *testing.T) {
	cl, _, _, _, release := gatedBusService(t, 1, 8, 0)
	ctx := context.Background()
	release()

	job, err := cl.SubmitJob(ctx, jobs.Spec{Impl: "a", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WaitJob(ctx, job.ID, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	resp, err := cl.http().Get(cl.Base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	samples, err := obs.ValidatePrometheusText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics payload invalid: %v", err)
	}
	if samples == 0 {
		t.Fatal("/metrics exposed no samples")
	}
}

func TestCampaignEventsUnknown404(t *testing.T) {
	cl, _, _, _, _ := gatedBusService(t, 1, 8, 0)
	_, err := cl.StreamCampaignEvents(context.Background(), "c-9999", "")
	var he *httpError
	if !errors.As(err, &he) || he.status != http.StatusNotFound {
		t.Fatalf("unknown campaign error = %v, want 404", err)
	}
}
