package instrument

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleSrc = `package toyue

var emm_state = "EMM_DEREGISTERED"

func recv_attach_accept(mac []byte) bool {
	mac_valid := checkMAC(mac)
	if !mac_valid {
		return false
	}
	emm_state = "EMM_REGISTERED"
	send_attach_complete()
	return true
}

func send_attach_complete() {}

func checkMAC(mac []byte) bool { return len(mac) > 0 }
`

func TestFileInsertsFuncAndGlobalPrints(t *testing.T) {
	out, rep, err := File(sampleSrc, Options{})
	if err != nil {
		t.Fatalf("File: %v", err)
	}
	for _, want := range []string{
		`"[FUNC] recv_attach_accept\n"`,
		`"[FUNC] send_attach_complete\n"`,
		`"[GLOBAL] emm_state = %v\n"`,
		`"[LOCAL] mac_valid = %v\n"`,
		`"fmt"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("instrumented source misses %s:\n%s", want, out)
		}
	}
	if rep.Functions != 3 {
		t.Errorf("Functions = %d, want 3", rep.Functions)
	}
	if len(rep.Globals) != 1 || rep.Globals[0] != "emm_state" {
		t.Errorf("Globals = %v, want [emm_state]", rep.Globals)
	}
}

func TestInstrumentedOutputStillParses(t *testing.T) {
	out, _, err := File(sampleSrc, Options{})
	if err != nil {
		t.Fatalf("File: %v", err)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "out.go", out, 0); err != nil {
		t.Fatalf("instrumented output does not parse: %v\n%s", err, out)
	}
}

func TestDumpBeforeEveryReturn(t *testing.T) {
	out, _, err := File(sampleSrc, Options{})
	if err != nil {
		t.Fatalf("File: %v", err)
	}
	// recv_attach_accept has two returns plus entry dump: the global must
	// be printed at least 3 times within it (entry + 2 exits); other
	// functions add more. Count occurrences overall: entry(3 funcs) +
	// exits (2 returns + 2 implicit ends) = 7.
	if got := strings.Count(out, `"[GLOBAL] emm_state = %v\n"`); got < 7 {
		t.Errorf("global dumped %d times, want >= 7", got)
	}
}

func TestLocalsOnlyFromFirstBasicBlock(t *testing.T) {
	src := `package p

func f() int {
	a := 1
	if a > 0 {
		b := 2
		return b
	}
	c := 3
	return c
}
`
	out, rep, err := File(src, Options{})
	if err != nil {
		t.Fatalf("File: %v", err)
	}
	if strings.Contains(out, `"[LOCAL] b = %v\n"`) {
		t.Error("local b from a nested block was dumped")
	}
	if strings.Contains(out, `"[LOCAL] c = %v\n"`) {
		t.Error("local c declared after control flow was dumped")
	}
	if !strings.Contains(out, `"[LOCAL] a = %v\n"`) {
		t.Error("first-block local a not dumped")
	}
	if rep.LocalsDumps != 1 {
		t.Errorf("LocalsDumps = %d, want 1", rep.LocalsDumps)
	}
}

func TestSkipFunc(t *testing.T) {
	out, rep, err := File(sampleSrc, Options{SkipFunc: func(n string) bool { return n == "checkMAC" }})
	if err != nil {
		t.Fatalf("File: %v", err)
	}
	if strings.Contains(out, `"[FUNC] checkMAC\n"`) {
		t.Error("skipped function was instrumented")
	}
	if rep.Functions != 2 {
		t.Errorf("Functions = %d, want 2", rep.Functions)
	}
}

func TestMaxLocals(t *testing.T) {
	src := `package p

func f() {
	a := 1
	b := 2
	c := 3
	_ = a + b + c
}
`
	out, _, err := File(src, Options{MaxLocals: 2})
	if err != nil {
		t.Fatalf("File: %v", err)
	}
	if strings.Contains(out, `"[LOCAL] c = %v\n"`) {
		t.Error("MaxLocals did not cap the dump")
	}
}

func TestReturnsInsideSwitchInstrumented(t *testing.T) {
	src := `package p

var g = 0

func f(x int) int {
	switch x {
	case 1:
		return 10
	default:
		return 20
	}
}
`
	out, _, err := File(src, Options{})
	if err != nil {
		t.Fatalf("File: %v", err)
	}
	// Entry dump + one per return + one conservative fall-through dump
	// (the instrumentor has no control-flow knowledge, so it cannot tell
	// the switch is exhaustive) = 4 global dumps.
	if got := strings.Count(out, `"[GLOBAL] g = %v\n"`); got != 4 {
		t.Errorf("global dumped %d times, want 4:\n%s", got, out)
	}
}

func TestFileParseError(t *testing.T) {
	if _, _, err := File("not go code", Options{}); err == nil {
		t.Error("invalid source accepted")
	}
}

func TestDirInstrumentsPackage(t *testing.T) {
	in := t.TempDir()
	outd := t.TempDir()
	if err := os.WriteFile(filepath.Join(in, "a.go"), []byte("package p\n\nvar g1 = 1\n\nfunc fa() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(in, "b.go"), []byte("package p\n\nvar g2 = 2\n\nfunc fb() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(in, "skip_test.go"), []byte("package p\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Dir(in, outd, Options{})
	if err != nil {
		t.Fatalf("Dir: %v", err)
	}
	if rep.Files != 2 || rep.Functions != 2 {
		t.Errorf("report = %+v, want 2 files / 2 functions", rep)
	}
	// Globals are package-wide: fa in a.go must dump g2 from b.go too.
	outA, err := os.ReadFile(filepath.Join(outd, "a.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(outA), `"[GLOBAL] g2 = %v\n"`) {
		t.Error("cross-file global g2 not dumped in a.go")
	}
	if _, err := os.Stat(filepath.Join(outd, "skip_test.go")); !os.IsNotExist(err) {
		t.Error("test file was instrumented")
	}
}

func TestDirErrors(t *testing.T) {
	if _, err := Dir("/nonexistent-dir-xyz", t.TempDir(), Options{}); err == nil {
		t.Error("missing input dir accepted")
	}
	empty := t.TempDir()
	if _, err := Dir(empty, t.TempDir(), Options{}); err == nil {
		t.Error("empty package dir accepted")
	}
}

func TestExistingFmtImportNotDuplicated(t *testing.T) {
	src := "package p\n\nimport \"fmt\"\n\nfunc f() { fmt.Println(1) }\n"
	out, _, err := File(src, Options{})
	if err != nil {
		t.Fatalf("File: %v", err)
	}
	if got := strings.Count(out, `"fmt"`); got != 1 {
		t.Errorf("fmt imported %d times, want 1:\n%s", got, out)
	}
}

func TestMethodsInstrumentedToo(t *testing.T) {
	src := `package p

var state = 0

type ue struct{ n int }

func (u *ue) recv_msg(ok bool) bool {
	valid := ok && u.n > 0
	if !valid {
		return false
	}
	state = 1
	return true
}
`
	out, rep, err := File(src, Options{})
	if err != nil {
		t.Fatalf("File: %v", err)
	}
	if !strings.Contains(out, `"[FUNC] recv_msg\n"`) {
		t.Error("method entry not instrumented")
	}
	if !strings.Contains(out, `"[LOCAL] valid = %v\n"`) {
		t.Error("method first-block local not dumped")
	}
	if rep.Functions != 1 {
		t.Errorf("Functions = %d, want 1", rep.Functions)
	}
}
