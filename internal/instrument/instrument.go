// Package instrument implements ProChecker's source-code instrumentor for
// Go sources, the analogue of the paper's C/C++ print-statement injector
// (Section IV-A): with no knowledge of control flow, program dependencies
// or call graphs, it rewrites every function in a package to print
//
//   - a [FUNC] line on entry,
//   - [GLOBAL] lines with the values of the package-level variables on
//     entry and right before every exit, and
//   - [LOCAL] lines with the values of the local variables declared in
//     the function's first basic block, right before every exit,
//
// producing exactly the information-rich log format internal/trace
// parses and the model extractor consumes.
package instrument

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Options tune the instrumentation.
type Options struct {
	// SkipFunc skips functions by name (e.g. main); nil instruments all.
	SkipFunc func(name string) bool
	// MaxLocals caps how many first-block locals are dumped per function
	// (0 means unlimited).
	MaxLocals int
}

// Report summarises what was instrumented.
type Report struct {
	Files       int
	Functions   int
	Globals     []string
	LocalsDumps int
}

// File instruments a single Go source file given as text. Package-level
// variables of the same file are treated as the globals.
func File(src string, opts Options) (string, Report, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		return "", Report{}, fmt.Errorf("instrument: parsing source: %w", err)
	}
	globals := globalVarNames([]*ast.File{f})
	rep := Report{Files: 1, Globals: globals}
	instrumentFile(f, globals, opts, &rep)
	ensureFmtImport(f)
	var buf bytes.Buffer
	if err := format.Node(&buf, fset, f); err != nil {
		return "", Report{}, fmt.Errorf("instrument: printing source: %w", err)
	}
	return buf.String(), rep, nil
}

// Dir instruments every .go file (tests excluded) of the package in
// inDir, writing results under outDir with the same file names. This is
// the operation the paper applies to "the code directory of the specific
// protocol layer".
func Dir(inDir, outDir string, opts Options) (Report, error) {
	entries, err := os.ReadDir(inDir)
	if err != nil {
		return Report{}, fmt.Errorf("instrument: reading %s: %w", inDir, err)
	}
	fset := token.NewFileSet()
	type parsed struct {
		name string
		file *ast.File
	}
	var files []parsed
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(inDir, name))
		if err != nil {
			return Report{}, fmt.Errorf("instrument: reading %s: %w", name, err)
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			return Report{}, fmt.Errorf("instrument: parsing %s: %w", name, err)
		}
		files = append(files, parsed{name: name, file: f})
	}
	if len(files) == 0 {
		return Report{}, fmt.Errorf("instrument: no Go files in %s", inDir)
	}

	// Globals are package-wide: collect across all files, as the paper's
	// "global variables defined in separate header files" insight implies.
	var asts []*ast.File
	for _, p := range files {
		asts = append(asts, p.file)
	}
	globals := globalVarNames(asts)

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return Report{}, fmt.Errorf("instrument: creating %s: %w", outDir, err)
	}
	rep := Report{Globals: globals}
	for _, p := range files {
		rep.Files++
		instrumentFile(p.file, globals, opts, &rep)
		ensureFmtImport(p.file)
		var buf bytes.Buffer
		if err := format.Node(&buf, fset, p.file); err != nil {
			return Report{}, fmt.Errorf("instrument: printing %s: %w", p.name, err)
		}
		if err := os.WriteFile(filepath.Join(outDir, p.name), buf.Bytes(), 0o644); err != nil {
			return Report{}, fmt.Errorf("instrument: writing %s: %w", p.name, err)
		}
	}
	return rep, nil
}

// globalVarNames collects package-level var names across files, sorted.
func globalVarNames(files []*ast.File) []string {
	var names []string
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, s := range gd.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, n := range vs.Names {
					if n.Name != "_" {
						names = append(names, n.Name)
					}
				}
			}
		}
	}
	sort.Strings(names)
	return names
}

func instrumentFile(f *ast.File, globals []string, opts Options, rep *Report) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		if opts.SkipFunc != nil && opts.SkipFunc(fn.Name.Name) {
			continue
		}
		rep.Functions++
		locals := firstBlockLocals(fn.Body, opts.MaxLocals)
		rep.LocalsDumps += len(locals)

		// Exit dumps before every return, and at the end of the body for
		// fall-through exits.
		fn.Body.List = withExitDumps(fn.Body.List, globals, locals)
		if !endsInReturn(fn.Body.List) {
			fn.Body.List = append(fn.Body.List, exitDump(globals, locals)...)
		}

		// Entry dumps go in last so they end up first.
		entry := []ast.Stmt{printfStmt("[FUNC] " + fn.Name.Name)}
		entry = append(entry, globalDumps(globals)...)
		fn.Body.List = append(entry, fn.Body.List...)
	}
}

// firstBlockLocals finds the variables declared in the leading
// straight-line prefix of the body — the paper's "local variables defined
// in the first basic block in each function".
func firstBlockLocals(body *ast.BlockStmt, max int) []string {
	var names []string
	add := func(n string) {
		if n == "_" {
			return
		}
		if max > 0 && len(names) >= max {
			return
		}
		names = append(names, n)
	}
scan:
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, n := range vs.Names {
						add(n.Name)
					}
				}
			}
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE {
				continue
			}
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					add(id.Name)
				}
			}
		case *ast.ExprStmt:
			// Plain calls keep the basic block going.
		default:
			// Control flow ends the first basic block.
			break scan
		}
	}
	return names
}

// withExitDumps recursively inserts global/local dumps before every
// return statement.
func withExitDumps(stmts []ast.Stmt, globals, locals []string) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(stmts))
	for _, stmt := range stmts {
		if _, isRet := stmt.(*ast.ReturnStmt); isRet {
			out = append(out, exitDump(globals, locals)...)
			out = append(out, stmt)
			continue
		}
		rewriteNested(stmt, globals, locals)
		out = append(out, stmt)
	}
	return out
}

// rewriteNested descends into compound statements.
func rewriteNested(stmt ast.Stmt, globals, locals []string) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		s.List = withExitDumps(s.List, globals, locals)
	case *ast.IfStmt:
		rewriteNested(s.Body, globals, locals)
		if s.Else != nil {
			rewriteNested(s.Else, globals, locals)
		}
	case *ast.ForStmt:
		rewriteNested(s.Body, globals, locals)
	case *ast.RangeStmt:
		rewriteNested(s.Body, globals, locals)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				cc.Body = withExitDumps(cc.Body, globals, locals)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				cc.Body = withExitDumps(cc.Body, globals, locals)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				cc.Body = withExitDumps(cc.Body, globals, locals)
			}
		}
	case *ast.LabeledStmt:
		rewriteNested(s.Stmt, globals, locals)
	}
}

func endsInReturn(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	_, ok := stmts[len(stmts)-1].(*ast.ReturnStmt)
	return ok
}

// exitDump builds the [GLOBAL]/[LOCAL] dump sequence used at exits.
func exitDump(globals, locals []string) []ast.Stmt {
	out := globalDumps(globals)
	for _, l := range locals {
		out = append(out, printfVarStmt("[LOCAL] "+l+" = %v\n", l))
	}
	return out
}

func globalDumps(globals []string) []ast.Stmt {
	var out []ast.Stmt
	for _, g := range globals {
		out = append(out, printfVarStmt("[GLOBAL] "+g+" = %v\n", g))
	}
	return out
}

// printfStmt builds fmt.Printf("<msg>\n").
func printfStmt(msg string) ast.Stmt {
	return &ast.ExprStmt{X: &ast.CallExpr{
		Fun: &ast.SelectorExpr{X: ast.NewIdent("fmt"), Sel: ast.NewIdent("Printf")},
		Args: []ast.Expr{
			&ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(msg + "\n")},
		},
	}}
}

// printfVarStmt builds fmt.Printf(format, varName).
func printfVarStmt(format, varName string) ast.Stmt {
	return &ast.ExprStmt{X: &ast.CallExpr{
		Fun: &ast.SelectorExpr{X: ast.NewIdent("fmt"), Sel: ast.NewIdent("Printf")},
		Args: []ast.Expr{
			&ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(format)},
			ast.NewIdent(varName),
		},
	}}
}

// ensureFmtImport adds `import "fmt"` when absent.
func ensureFmtImport(f *ast.File) {
	for _, imp := range f.Imports {
		if imp.Path.Value == `"fmt"` {
			return
		}
	}
	spec := &ast.ImportSpec{Path: &ast.BasicLit{Kind: token.STRING, Value: `"fmt"`}}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if ok && gd.Tok == token.IMPORT {
			gd.Specs = append(gd.Specs, spec)
			f.Imports = append(f.Imports, spec)
			return
		}
	}
	gd := &ast.GenDecl{Tok: token.IMPORT, Specs: []ast.Spec{spec}}
	f.Decls = append([]ast.Decl{gd}, f.Decls...)
	f.Imports = append(f.Imports, spec)
}
