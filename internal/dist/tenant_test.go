package dist

import (
	"errors"
	"testing"
	"time"

	"prochecker/internal/obs"
)

func TestParseQuotaSpec(t *testing.T) {
	quotas, err := ParseQuotaSpec("alice=10@2, bob=50@10 ,*=100@50")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Quota{
		"alice": {Burst: 10, Rate: 2},
		"bob":   {Burst: 50, Rate: 10},
		"*":     {Burst: 100, Rate: 50},
	}
	if len(quotas) != len(want) {
		t.Fatalf("quotas = %+v, want %+v", quotas, want)
	}
	for name, q := range want {
		if quotas[name] != q {
			t.Fatalf("quota[%s] = %+v, want %+v", name, quotas[name], q)
		}
	}

	for _, bad := range []string{"", " , ", "alice", "alice=10", "alice=x@2", "alice=10@y", "alice=0@2", "alice=10@-1", "=10@2"} {
		if _, err := ParseQuotaSpec(bad); err == nil {
			t.Errorf("ParseQuotaSpec(%q) accepted, want error", bad)
		}
	}
}

// fakeClock drives the gate deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestGate(t *testing.T, spec string) (*Gate, *fakeClock, *obs.Registry) {
	t.Helper()
	quotas, err := ParseQuotaSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	g := NewGate(quotas, reg)
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	g.now = clk.now
	return g, clk, reg
}

func TestGateAdmitExhaustRefill(t *testing.T) {
	g, clk, reg := newTestGate(t, "alice=3@1")

	// A fresh bucket starts full: three single-job submissions pass.
	for i := 0; i < 3; i++ {
		if _, err := g.Admit("alice", 1); err != nil {
			t.Fatalf("admit %d = %v, want success", i, err)
		}
	}
	wait, err := g.Admit("alice", 1)
	if !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("admit on empty bucket = %v, want ErrQuotaExhausted", err)
	}
	// Deficit 1 token at 1 token/s: retry in 1s.
	if wait != time.Second {
		t.Fatalf("retry hint = %v, want 1s", wait)
	}
	if got := reg.Counter(obs.LabeledStr("dist.tenant_admitted", "tenant", "alice")).Value(); got != 3 {
		t.Fatalf("dist.tenant_admitted{tenant=alice} = %d, want 3", got)
	}
	if got := reg.Counter(obs.LabeledStr("dist.tenant_rejected", "tenant", "alice")).Value(); got != 1 {
		t.Fatalf("dist.tenant_rejected{tenant=alice} = %d, want 1", got)
	}

	// Refill at 1 token/s; after 2s two more jobs fit, a third does not.
	clk.advance(2 * time.Second)
	if _, err := g.Admit("alice", 2); err != nil {
		t.Fatalf("admit after refill = %v, want success", err)
	}
	if _, err := g.Admit("alice", 1); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("admit past refill = %v, want ErrQuotaExhausted", err)
	}

	// Refill caps at the burst: a long idle stretch does not bank tokens.
	clk.advance(time.Hour)
	if _, err := g.Admit("alice", 3); err != nil {
		t.Fatalf("admit full burst = %v, want success", err)
	}
	if _, err := g.Admit("alice", 1); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("admit past burst = %v, want ErrQuotaExhausted", err)
	}
}

func TestGateRetryHintScalesWithDeficit(t *testing.T) {
	g, _, _ := newTestGate(t, "alice=10@2")
	if _, err := g.Admit("alice", 10); err != nil {
		t.Fatal(err)
	}
	// A 6-token campaign against an empty bucket at 2 tokens/s: 3s.
	wait, err := g.Admit("alice", 6)
	if !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("admit = %v, want ErrQuotaExhausted", err)
	}
	if wait != 3*time.Second {
		t.Fatalf("retry hint = %v, want 3s", wait)
	}
	// A cost above the burst can never fit whole; the hint is clamped to
	// a full-bucket refill instead of promising the impossible.
	wait, err = g.Admit("alice", 100)
	if !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("oversized admit = %v, want ErrQuotaExhausted", err)
	}
	if wait != 5*time.Second {
		t.Fatalf("oversized retry hint = %v, want 5s (burst/rate)", wait)
	}
}

func TestGateTenantsAreIndependent(t *testing.T) {
	g, _, _ := newTestGate(t, "alice=1@1,bob=5@1")
	if _, err := g.Admit("alice", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Admit("alice", 1); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("alice second admit = %v, want ErrQuotaExhausted", err)
	}
	// Alice's exhaustion must not touch bob's bucket.
	for i := 0; i < 5; i++ {
		if _, err := g.Admit("bob", 1); err != nil {
			t.Fatalf("bob admit %d = %v, want success", i, err)
		}
	}
}

func TestGateDefaultAndUngoverned(t *testing.T) {
	// No "*" default: unlisted tenants are not governed at all.
	g, _, reg := newTestGate(t, "alice=1@1")
	for i := 0; i < 100; i++ {
		if _, err := g.Admit("mallory", 1); err != nil {
			t.Fatalf("ungoverned admit = %v, want success", err)
		}
	}
	if got := reg.Counter(obs.LabeledStr("dist.tenant_admitted", "tenant", "mallory")).Value(); got != 0 {
		t.Fatalf("ungoverned tenant counted %d admissions, want 0", got)
	}

	// With a default, unlisted tenants share its shape (one bucket each).
	g2, _, _ := newTestGate(t, "*=2@1")
	if _, err := g2.Admit("mallory", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Admit("mallory", 1); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("defaulted tenant over budget = %v, want ErrQuotaExhausted", err)
	}
	if _, err := g2.Admit("trent", 2); err != nil {
		t.Fatalf("second defaulted tenant = %v, want its own full bucket", err)
	}

	// The empty tenant maps to the anonymous bucket.
	g3, _, _ := newTestGate(t, "anonymous=1@1")
	if _, err := g3.Admit("", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g3.Admit("", 1); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("anonymous over budget = %v, want ErrQuotaExhausted", err)
	}

	// A nil gate admits everything.
	var nilGate *Gate
	if _, err := nilGate.Admit("anyone", 1e9); err != nil {
		t.Fatalf("nil gate = %v, want admit", err)
	}
}

func TestGateJournalAndRestore(t *testing.T) {
	g, clk, _ := newTestGate(t, "alice=10@2")
	type entry struct {
		tenant string
		tokens float64
	}
	var journal []entry
	g.SetJournal(func(tenant string, tokens float64, _ time.Time) {
		journal = append(journal, entry{tenant, tokens})
	})
	if _, err := g.Admit("alice", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Admit("alice", 1); err != nil {
		t.Fatal(err)
	}
	if len(journal) != 2 || journal[0] != (entry{"alice", 6}) || journal[1] != (entry{"alice", 5}) {
		t.Fatalf("journal = %+v, want balances 6 then 5", journal)
	}

	// A restarted gate restored from the journalled balance refills from
	// the journalled timestamp, not from a full bucket.
	g2, clk2, _ := newTestGate(t, "alice=10@2")
	g2.Restore("alice", 5, clk.now())
	clk2.t = clk.now().Add(time.Second) // 1s later: 5 + 2 = 7 tokens
	if _, err := g2.Admit("alice", 7); err != nil {
		t.Fatalf("admit restored balance = %v, want success", err)
	}
	if _, err := g2.Admit("alice", 1); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("admit past restored balance = %v, want ErrQuotaExhausted", err)
	}
}
