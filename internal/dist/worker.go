package dist

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"prochecker/internal/jobs"
	"prochecker/internal/obs"
	"prochecker/internal/resilience"
)

// Worker pull-loop tuning defaults.
const (
	// DefaultPoll is the idle delay between acquire attempts against an
	// empty queue.
	DefaultPoll = 250 * time.Millisecond
	// DefaultWorkerBackoff is the base backoff after a coordinator
	// error, doubling (jittered) up to maxBackoffShift doublings.
	DefaultWorkerBackoff = 500 * time.Millisecond
	maxBackoffShift      = 5
	// settleTimeout bounds the detached result/failure upload after a
	// run whose own context may already be cancelled.
	settleTimeout = 15 * time.Second
)

// Worker is the fleet agent: Concurrency pull loops that each acquire a
// lease, heartbeat it at TTL/3 while the Runner executes the job, and
// settle it with the canonical result or a classified failure. Acquire
// errors back off with jittered exponential delay; an empty queue polls
// at Poll. When the run context is cancelled the worker stops
// acquiring, fails its in-flight leases with the cancelled class (which
// the coordinator treats as an abandonment — the jobs requeue
// uncharged), and returns.
type Worker struct {
	// Coordinator hands out and settles leases; required.
	Coordinator Coordinator
	// Runner executes one spec; required. Fleet deployments use the
	// production runner (prochecker.JobRunnerWith) so per-job snapshot
	// directories and memory budgets behave exactly as on a local pool.
	Runner jobs.Runner
	// ID names this worker in lease records, metrics and bus events.
	ID string
	// Concurrency is the number of parallel pull loops (default 1).
	Concurrency int
	// Poll is the idle delay against an empty queue (DefaultPoll when
	// zero).
	Poll time.Duration
	// Backoff is the error-backoff base (DefaultWorkerBackoff when
	// zero).
	Backoff time.Duration
	// Seed drives the jitter PRNG (per-slot offset keeps loops
	// desynchronised).
	Seed int64
	// Metrics receives the worker-side counters; optional (nil-safe).
	Metrics *obs.Registry
}

// Run pulls and executes jobs until ctx is cancelled, then returns
// ctx's error once every in-flight lease has been settled.
func (w *Worker) Run(ctx context.Context) error {
	if w.Coordinator == nil || w.Runner == nil {
		return errors.New("dist: Worker needs a Coordinator and a Runner")
	}
	n := w.Concurrency
	if n < 1 {
		n = 1
	}
	var wg sync.WaitGroup
	for slot := 0; slot < n; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w.loop(ctx, slot)
		}(slot)
	}
	wg.Wait()
	return ctx.Err()
}

// loop is one pull slot: acquire, run, settle, repeat.
func (w *Worker) loop(ctx context.Context, slot int) {
	rng := rand.New(rand.NewSource(w.Seed + int64(slot)))
	poll := w.Poll
	if poll <= 0 {
		poll = DefaultPoll
	}
	backoff := w.Backoff
	if backoff <= 0 {
		backoff = DefaultWorkerBackoff
	}
	fails := 0
	for ctx.Err() == nil {
		grant, err := w.Coordinator.AcquireLease(ctx, w.ID)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return
			}
			w.Metrics.Counter("dist.worker_acquire_errors").Inc()
			shift := fails
			if shift > maxBackoffShift {
				shift = maxBackoffShift
			}
			fails++
			sleep(ctx, jitter(rng, backoff<<shift))
		case grant == nil:
			fails = 0
			sleep(ctx, jitter(rng, poll))
		default:
			fails = 0
			w.runOne(ctx, grant)
		}
	}
}

// runOne executes one granted job under its lease heartbeat and settles
// the lease.
func (w *Worker) runOne(ctx context.Context, g *Grant) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	hb := g.TTL() / 3
	if hb <= 0 {
		hb = time.Second
	}
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		tk := time.NewTicker(hb)
		defer tk.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-tk.C:
				if err := w.Coordinator.RenewLease(runCtx, g.Lease.ID); err != nil {
					if runCtx.Err() == nil {
						// The lease is gone — expired under us, or the job
						// was cancelled at the coordinator. Abandon the run;
						// whatever we would upload is stale anyway.
						w.Metrics.Counter("dist.worker_lease_lost").Inc()
						cancel()
					}
					return
				}
			}
		}
	}()

	res, err := w.Runner(runCtx, g.Job.Spec)
	cancel()
	hbWG.Wait()

	// Settling must survive the (possibly cancelled) run context: a
	// shutting-down worker still tells the coordinator it is abandoning,
	// so the job requeues immediately instead of waiting out the TTL.
	settle, stop := context.WithTimeout(context.Background(), settleTimeout)
	defer stop()
	if err != nil {
		kind := resilience.Classify(err)
		w.Metrics.Counter("dist.worker_jobs_failed").Inc()
		if ferr := w.Coordinator.FailLease(settle, g.Lease.ID, kind.String(), err.Error()); ferr != nil {
			w.Metrics.Counter("dist.worker_uploads_refused").Inc()
		}
		return
	}
	res.Key = g.Job.Key
	canonical, merr := res.MarshalCanonical()
	if merr != nil {
		w.Metrics.Counter("dist.worker_jobs_failed").Inc()
		w.Coordinator.FailLease(settle, g.Lease.ID, //nolint:errcheck // lease expires on its own
			resilience.KindInternal.String(), "encoding canonical result: "+merr.Error())
		return
	}
	if cerr := w.Coordinator.CompleteLease(settle, g.Lease.ID, canonical); cerr != nil {
		w.Metrics.Counter("dist.worker_uploads_refused").Inc()
		return
	}
	w.Metrics.Counter("dist.worker_jobs_completed").Inc()
}

// jitter scales d by a random factor in [0.5, 1.5).
func jitter(rng *rand.Rand, d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.5 + rng.Float64()))
}

// sleep waits out d or the context, whichever ends first.
func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
