// Package dist turns the job service into the coordinator of a
// distributed worker fleet. The protocol is lease-based pull: a worker
// asks the coordinator for work and receives a queued job under a TTL'd
// lease, heartbeats to keep the lease alive while it runs the job, and
// settles the lease with either the canonical result bytes (which land
// in the coordinator's content-addressed store) or a failure in the
// resilience class vocabulary. A worker that crashes or partitions away
// simply stops heartbeating: the lease expires, the coordinator
// requeues the job through the taxonomy-driven retry path, and another
// worker picks it up. First result wins — uploads against an expired or
// released lease are discarded as stale, so the terminal transition is
// idempotent no matter how late a zombie worker reports back.
//
// The package is deliberately transport-agnostic: Worker runs against
// the Coordinator interface, which the HTTP client in internal/server
// implements over the /v1/leases API (and which a jobs.Service itself
// satisfies in-process via a thin adapter, the shape the fleet
// benchmark uses). Alongside the pull protocol, Gate provides the
// per-tenant token-bucket admission control the coordinator places in
// front of job submission.
package dist

import (
	"context"
	"time"

	"prochecker/internal/jobs"
)

// Grant is one leased work assignment: the lease to heartbeat, the job
// to run (its Spec is the work, its Key the expected result address),
// and the lease TTL so the worker can derive its heartbeat cadence
// (TTL/3) without sharing a clock with the coordinator.
type Grant struct {
	Lease jobs.Lease `json:"lease"`
	Job   jobs.Job   `json:"job"`
	TTLMS int64      `json:"ttl_ms"`
}

// TTL converts the wire-shaped lease TTL back to a duration.
func (g Grant) TTL() time.Duration { return time.Duration(g.TTLMS) * time.Millisecond }

// Coordinator is the worker's view of the lease protocol.
type Coordinator interface {
	// AcquireLease requests one queued job under a fresh lease for the
	// named worker. A (nil, nil) return means the queue is empty — poll
	// again later.
	AcquireLease(ctx context.Context, worker string) (*Grant, error)
	// RenewLease heartbeats a held lease, extending it by the TTL. An
	// error means the lease is gone (expired, job cancelled, coordinator
	// restarted past it): the worker should abandon the run.
	RenewLease(ctx context.Context, leaseID string) error
	// CompleteLease settles the lease with the result's canonical bytes
	// (jobs.Result.MarshalCanonical). An error means the upload was
	// refused — stale lease or mismatched result key.
	CompleteLease(ctx context.Context, leaseID string, canonical []byte) error
	// FailLease settles the lease with a failure in the resilience class
	// vocabulary (resilience.Kind.String()). The cancelled class from a
	// shutting-down worker abandons the attempt (requeued uncharged);
	// every other class goes through the coordinator's retry policy.
	FailLease(ctx context.Context, leaseID, class, msg string) error
}
