package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"prochecker/internal/jobs"
	"prochecker/internal/obs"
	"prochecker/internal/resilience"
)

// fakeCoord is an in-memory Coordinator: a fixed queue of grants plus a
// journal of every settle call the worker makes.
type fakeCoord struct {
	mu     sync.Mutex
	grants []*Grant // handed out in order, then nil (empty queue)

	acquireErrs int   // errors to return before the first grant
	renewErr    error // returned by every RenewLease when set

	renews    int
	completes []completeCall
	fails     []failCall
	settled   chan struct{} // closed once every grant has settled
}

type completeCall struct {
	leaseID string
	result  jobs.Result
}

type failCall struct {
	leaseID string
	class   string
	msg     string
}

func newFakeCoord(grants ...*Grant) *fakeCoord {
	return &fakeCoord{grants: grants, settled: make(chan struct{})}
}

func (c *fakeCoord) AcquireLease(ctx context.Context, worker string) (*Grant, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.acquireErrs > 0 {
		c.acquireErrs--
		return nil, errors.New("coordinator unreachable")
	}
	if len(c.grants) == 0 {
		return nil, nil
	}
	g := c.grants[0]
	c.grants = c.grants[1:]
	return g, nil
}

func (c *fakeCoord) RenewLease(ctx context.Context, leaseID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.renews++
	return c.renewErr
}

func (c *fakeCoord) CompleteLease(ctx context.Context, leaseID string, canonical []byte) error {
	var res jobs.Result
	if err := json.Unmarshal(canonical, &res); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.completes = append(c.completes, completeCall{leaseID, res})
	c.settleLocked()
	return nil
}

func (c *fakeCoord) FailLease(ctx context.Context, leaseID, class, msg string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fails = append(c.fails, failCall{leaseID, class, msg})
	c.settleLocked()
	return nil
}

func (c *fakeCoord) settleLocked() {
	if len(c.grants) == 0 {
		select {
		case <-c.settled:
		default:
			close(c.settled)
		}
	}
}

func grantFor(leaseID, impl string, ttl time.Duration) *Grant {
	spec := jobs.Spec{Impl: impl, Seed: 1}
	return &Grant{
		Lease: jobs.Lease{ID: leaseID, JobID: "j-0001", Worker: "w1", Attempt: 1,
			Expiry: time.Now().Add(ttl)},
		Job:   jobs.Job{ID: "j-0001", Key: spec.Key(), Spec: spec, State: jobs.StateRunning},
		TTLMS: ttl.Milliseconds(),
	}
}

// runWorker drives w.Run until the coordinator reports every grant
// settled, then cancels.
func runWorker(t *testing.T, w *Worker, c *fakeCoord) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	select {
	case <-c.settled:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never settled its grants")
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
}

func TestWorkerCompletesJob(t *testing.T) {
	c := newFakeCoord(grantFor("l-0001", "impl-a", time.Minute))
	reg := obs.NewRegistry()
	w := &Worker{
		Coordinator: c,
		Runner: func(ctx context.Context, spec jobs.Spec) (*jobs.Result, error) {
			return &jobs.Result{
				SchemaVersion: jobs.ResultSchemaVersion, Key: spec.Key(), Spec: spec,
				Verdicts: []jobs.Verdict{{ID: "S06", Class: "authentication", Verified: true}},
			}, nil
		},
		ID: "w1", Poll: time.Millisecond, Metrics: reg,
	}
	runWorker(t, w, c)

	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.completes) != 1 || len(c.fails) != 0 {
		t.Fatalf("settles = %d completes / %d fails, want 1/0", len(c.completes), len(c.fails))
	}
	up := c.completes[0]
	if up.leaseID != "l-0001" {
		t.Fatalf("completed lease = %s, want l-0001", up.leaseID)
	}
	if up.result.Key != (jobs.Spec{Impl: "impl-a", Seed: 1}).Key() {
		t.Fatalf("uploaded key = %s, want the granted job's key", up.result.Key)
	}
	if len(up.result.Verdicts) != 1 {
		t.Fatalf("uploaded verdicts = %+v, want one", up.result.Verdicts)
	}
	if got := reg.Counter("dist.worker_jobs_completed").Value(); got != 1 {
		t.Fatalf("dist.worker_jobs_completed = %d, want 1", got)
	}
}

func TestWorkerFailureIsClassified(t *testing.T) {
	c := newFakeCoord(grantFor("l-0001", "impl-a", time.Minute))
	reg := obs.NewRegistry()
	w := &Worker{
		Coordinator: c,
		Runner: func(ctx context.Context, spec jobs.Spec) (*jobs.Result, error) {
			return nil, fmt.Errorf("checker blew up: %w", resilience.ErrCasePanic)
		},
		ID: "w1", Poll: time.Millisecond, Metrics: reg,
	}
	runWorker(t, w, c)

	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.fails) != 1 || len(c.completes) != 0 {
		t.Fatalf("settles = %d fails / %d completes, want 1/0", len(c.fails), len(c.completes))
	}
	if c.fails[0].class != resilience.KindCasePanic.String() {
		t.Fatalf("reported class = %q, want %s", c.fails[0].class, resilience.KindCasePanic)
	}
	if got := reg.Counter("dist.worker_jobs_failed").Value(); got != 1 {
		t.Fatalf("dist.worker_jobs_failed = %d, want 1", got)
	}
}

// TestWorkerAbandonsOnShutdown: cancelling the run context mid-job
// makes the worker hand the lease back with the cancelled class, which
// the coordinator treats as an uncharged abandonment.
func TestWorkerAbandonsOnShutdown(t *testing.T) {
	c := newFakeCoord(grantFor("l-0001", "impl-a", time.Minute))
	started := make(chan struct{})
	w := &Worker{
		Coordinator: c,
		Runner: func(ctx context.Context, spec jobs.Spec) (*jobs.Result, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		},
		ID: "w1", Poll: time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.fails) != 1 {
		t.Fatalf("fails = %+v, want one abandonment", c.fails)
	}
	if c.fails[0].class != resilience.KindCancelled.String() {
		t.Fatalf("shutdown class = %q, want %s", c.fails[0].class, resilience.KindCancelled)
	}
}

// TestWorkerLeaseLostCancelsRun: a failing heartbeat means the lease is
// gone — the worker aborts the now-pointless run instead of burning the
// rest of the job.
func TestWorkerLeaseLostCancelsRun(t *testing.T) {
	g := grantFor("l-0001", "impl-a", 30*time.Millisecond) // heartbeat every 10ms
	c := newFakeCoord(g)
	c.renewErr = errors.New("410 gone: unknown lease")
	reg := obs.NewRegistry()
	w := &Worker{
		Coordinator: c,
		Runner: func(ctx context.Context, spec jobs.Spec) (*jobs.Result, error) {
			<-ctx.Done() // only the lost lease can end this job
			return nil, ctx.Err()
		},
		ID: "w1", Poll: time.Millisecond, Metrics: reg,
	}
	runWorker(t, w, c)

	if got := reg.Counter("dist.worker_lease_lost").Value(); got != 1 {
		t.Fatalf("dist.worker_lease_lost = %d, want 1", got)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.fails) != 1 || c.fails[0].class != resilience.KindCancelled.String() {
		t.Fatalf("fails = %+v, want one cancelled-class settle", c.fails)
	}
}

// TestWorkerBacksOffOnAcquireErrors: coordinator errors are retried
// with backoff (counted), and the queue drains once it recovers.
func TestWorkerBacksOffOnAcquireErrors(t *testing.T) {
	c := newFakeCoord(grantFor("l-0001", "impl-a", time.Minute))
	c.acquireErrs = 3
	reg := obs.NewRegistry()
	w := &Worker{
		Coordinator: c,
		Runner: func(ctx context.Context, spec jobs.Spec) (*jobs.Result, error) {
			return &jobs.Result{SchemaVersion: jobs.ResultSchemaVersion, Key: spec.Key(), Spec: spec}, nil
		},
		ID: "w1", Poll: time.Millisecond, Backoff: time.Millisecond, Metrics: reg,
	}
	runWorker(t, w, c)

	if got := reg.Counter("dist.worker_acquire_errors").Value(); got != 3 {
		t.Fatalf("dist.worker_acquire_errors = %d, want 3", got)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.completes) != 1 {
		t.Fatalf("completes = %d, want 1 after recovery", len(c.completes))
	}
}

// TestWorkerConcurrencyDrainsInParallel: N slots pull N grants without
// serialising on one another.
func TestWorkerConcurrencyDrainsInParallel(t *testing.T) {
	var grants []*Grant
	for i := 0; i < 4; i++ {
		grants = append(grants, grantFor(fmt.Sprintf("l-%04d", i+1), fmt.Sprintf("impl-%d", i), time.Minute))
	}
	c := newFakeCoord(grants...)
	var mu sync.Mutex
	inflight, peak := 0, 0
	gate := make(chan struct{})
	w := &Worker{
		Coordinator: c,
		Runner: func(ctx context.Context, spec jobs.Spec) (*jobs.Result, error) {
			mu.Lock()
			inflight++
			if inflight > peak {
				peak = inflight
			}
			if inflight == 2 { // both slots busy at once: release everyone
				close(gate)
			}
			mu.Unlock()
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			mu.Lock()
			inflight--
			mu.Unlock()
			return &jobs.Result{SchemaVersion: jobs.ResultSchemaVersion, Key: spec.Key(), Spec: spec}, nil
		},
		ID: "w1", Concurrency: 2, Poll: time.Millisecond,
	}
	runWorker(t, w, c)

	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.completes) != 4 {
		t.Fatalf("completes = %d, want 4", len(c.completes))
	}
	if peak < 2 {
		t.Fatalf("peak in-flight = %d, want 2 (slots run in parallel)", peak)
	}
}
