package dist

// Per-tenant admission control: a token-bucket gate the coordinator
// places in front of job submission. Each tenant (the
// X-ProChecker-Tenant header at the HTTP layer) owns a bucket of Burst
// tokens refilling at Rate tokens/second; a submission costs one token
// per job (a campaign costs its cell count). An empty bucket rejects
// with ErrQuotaExhausted and a tenant-scoped retry hint — how long
// until that tenant's bucket has refilled enough — so one tenant
// saturating its quota never inflates another tenant's backoff.

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"prochecker/internal/obs"
)

// ErrQuotaExhausted rejects a submission whose tenant bucket cannot
// cover the cost; the HTTP layer maps it to 429 with a tenant-scoped
// Retry-After.
var ErrQuotaExhausted = errors.New("dist: tenant quota exhausted")

// DefaultTenant is the bucket key for requests carrying no tenant
// header.
const DefaultTenant = "anonymous"

// Quota shapes one tenant's token bucket.
type Quota struct {
	// Burst is the bucket capacity — the largest cost admitted at once.
	Burst float64 `json:"burst"`
	// Rate refills the bucket, in tokens (jobs) per second.
	Rate float64 `json:"rate"`
}

// ParseQuotaSpec parses the CLI quota grammar: comma-separated
// "tenant=burst@rate" entries, with "*" naming the default quota
// applied to tenants not listed explicitly. Example:
//
//	alice=10@2,bob=50@10,*=100@50
//
// Burst and rate must both be positive.
func ParseQuotaSpec(spec string) (map[string]Quota, error) {
	out := make(map[string]Quota)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("dist: quota entry %q: want tenant=burst@rate", entry)
		}
		burstStr, rateStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("dist: quota entry %q: want tenant=burst@rate", entry)
		}
		burst, err := strconv.ParseFloat(burstStr, 64)
		if err != nil {
			return nil, fmt.Errorf("dist: quota entry %q: bad burst: %w", entry, err)
		}
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil {
			return nil, fmt.Errorf("dist: quota entry %q: bad rate: %w", entry, err)
		}
		if burst <= 0 || rate <= 0 {
			return nil, fmt.Errorf("dist: quota entry %q: burst and rate must be positive", entry)
		}
		out[strings.TrimSpace(name)] = Quota{Burst: burst, Rate: rate}
	}
	if len(out) == 0 {
		return nil, errors.New("dist: empty quota spec")
	}
	return out, nil
}

// Gate is the token-bucket admission controller. Tenants with no
// explicit quota fall back to the "*" default; with no default either,
// they are admitted freely (the gate is opt-in per tenant).
type Gate struct {
	quotas  map[string]Quota
	metrics *obs.Registry

	mu      sync.Mutex
	buckets map[string]*bucket
	journal func(tenant string, tokens float64, at time.Time)
	now     func() time.Time
}

// bucket is one tenant's live balance: tokens remaining as of last.
type bucket struct {
	tokens float64
	last   time.Time
}

// NewGate builds a gate over the given quotas (see ParseQuotaSpec for
// the CLI grammar). The registry receives per-tenant admission counters
// and may be nil.
func NewGate(quotas map[string]Quota, reg *obs.Registry) *Gate {
	return &Gate{
		quotas:  quotas,
		metrics: reg,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// SetJournal installs the persistence hook called (under the gate lock)
// after every admission with the tenant's new balance — the coordinator
// wires it to the WAL so quotas survive a restart.
func (g *Gate) SetJournal(fn func(tenant string, tokens float64, at time.Time)) {
	g.mu.Lock()
	g.journal = fn
	g.mu.Unlock()
}

// Restore seeds a tenant's bucket from a journalled balance. Refill
// since the journalled timestamp happens naturally on the next Admit.
func (g *Gate) Restore(tenant string, tokens float64, at time.Time) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	g.mu.Lock()
	g.buckets[tenant] = &bucket{tokens: tokens, last: at}
	g.mu.Unlock()
}

// quotaFor resolves the tenant's quota; ok is false for tenants the
// gate does not govern.
func (g *Gate) quotaFor(tenant string) (Quota, bool) {
	if q, ok := g.quotas[tenant]; ok {
		return q, true
	}
	q, ok := g.quotas["*"]
	return q, ok
}

// Admit charges cost tokens against the tenant's bucket. On success the
// returned delay is zero; on exhaustion it returns ErrQuotaExhausted
// plus how long until the bucket has refilled enough to cover the cost
// — the tenant-scoped Retry-After. A nil gate admits everything.
func (g *Gate) Admit(tenant string, cost float64) (time.Duration, error) {
	if g == nil {
		return 0, nil
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	quota, governed := g.quotaFor(tenant)
	if !governed {
		return 0, nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.now()
	b, ok := g.buckets[tenant]
	if !ok {
		b = &bucket{tokens: quota.Burst, last: now}
		g.buckets[tenant] = b
	}
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens = math.Min(quota.Burst, b.tokens+elapsed*quota.Rate)
	}
	b.last = now
	if b.tokens < cost {
		deficit := math.Min(cost, quota.Burst) - b.tokens
		wait := time.Duration(math.Ceil(deficit/quota.Rate)) * time.Second
		if wait < time.Second {
			wait = time.Second
		}
		g.metrics.Counter(obs.LabeledStr("dist.tenant_rejected", "tenant", tenant)).Inc()
		return wait, fmt.Errorf("%w: tenant %q needs %.0f token(s), has %.1f", ErrQuotaExhausted, tenant, cost, b.tokens)
	}
	b.tokens -= cost
	g.metrics.Counter(obs.LabeledStr("dist.tenant_admitted", "tenant", tenant)).Inc()
	if g.journal != nil {
		g.journal(tenant, b.tokens, now)
	}
	return 0, nil
}
