// Package mme implements the network-side NAS (EMM) entity: subscriber
// database, authentication-vector generation over the Annex C SQN scheme,
// the attach / security-mode / GUTI-reallocation / TAU / paging / detach
// procedures, and the T3450/T3460-style retransmission supervision whose
// bounded retries make the P3 selective-denial attack possible.
//
// Like the UE package, the MME is instrumented: its handlers emit
// information-rich log records so its FSM can be extracted the same way
// (the paper uses a community-built MME model because it lacked core
// source access; we have our own implementation and can extract both).
package mme

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"prochecker/internal/nas"
	"prochecker/internal/security"
	"prochecker/internal/spec"
	"prochecker/internal/sqn"
	"prochecker/internal/trace"
)

// MaxProcedureRetries is how many times a supervised procedure message is
// retransmitted before the procedure is aborted: per TS 24.301, the
// retransmission "is repeated four times, i.e. on the fifth expiry of
// timer T3450, the network shall abort the procedure".
const MaxProcedureRetries = 4

// Config parameterises an MME instance.
type Config struct {
	// Subscribers maps IMSI -> permanent key K (the HSS database).
	Subscribers map[string]security.Key
	// SQN configures the per-subscriber vector generators; the zero
	// value selects sqn.DefaultConfig().
	SQN sqn.Config
	// Recorder receives the instrumentation log; optional.
	Recorder *trace.Recorder
	// TAC is the tracking area code the MME serves.
	TAC uint16
}

// pendingProc tracks a running supervised common procedure.
type pendingProc struct {
	name    spec.MessageName
	packet  nas.Packet
	retries int
}

// MME is an instrumented network-side EMM entity serving a single UE
// session, which matches the paper's one-UE-one-MME protocol model.
type MME struct {
	subscribers map[string]security.Key
	gens        map[string]*sqn.Generator
	sqnCfg      sqn.Config
	rec         *trace.Recorder
	style       spec.SignatureStyle
	tac         uint16

	state spec.MMEState
	imsi  string
	guti  uint32
	ctx   nas.Context
	// vector is the outstanding authentication vector.
	vector     *security.Vector
	vectorRAND [security.RANDSize]byte
	// pendingKeys holds the hierarchy derived for the outstanding vector.
	pendingKeys *security.Hierarchy
	// attachInProgress distinguishes initial attach from re-auth.
	attachInProgress bool
	// pending is the supervised procedure awaiting completion.
	pending *pendingProc
	// aborted records procedures abandoned after exhausting retries.
	aborted []spec.MessageName
	// replayedCaps echoes the UE capability bitmap in
	// security_mode_command for bidding-down protection.
	replayedCaps uint8
	// ESM bearer bookkeeping.
	bearerActive  bool
	bearerID      uint8
	pendingBearer uint8
	bearerSeq     uint8
	// gutiSeq feeds fresh GUTI values.
	gutiSeq uint32
	// randSeq feeds deterministic RAND values.
	randSeq uint64
}

// New builds an MME.
func New(cfg Config) (*MME, error) {
	if len(cfg.Subscribers) == 0 {
		return nil, errors.New("mme: Config.Subscribers is required")
	}
	if cfg.SQN == (sqn.Config{}) {
		cfg.SQN = sqn.DefaultConfig()
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = &trace.Recorder{}
	}
	subs := make(map[string]security.Key, len(cfg.Subscribers))
	gens := make(map[string]*sqn.Generator, len(cfg.Subscribers))
	for imsi, k := range cfg.Subscribers {
		subs[imsi] = k
		g, err := sqn.NewGenerator(cfg.SQN)
		if err != nil {
			return nil, fmt.Errorf("mme: building SQN generator for %s: %w", imsi, err)
		}
		gens[imsi] = g
	}
	return &MME{
		subscribers: subs,
		gens:        gens,
		sqnCfg:      cfg.SQN,
		rec:         rec,
		style:       spec.StyleClosed,
		tac:         cfg.TAC,
		state:       spec.MMEDeregistered,
		gutiSeq:     0x1000,
	}, nil
}

// State returns the current network-side EMM state.
func (m *MME) State() spec.MMEState { return m.state }

// GUTI returns the GUTI currently assigned to the session (0 if none).
func (m *MME) GUTI() uint32 { return m.guti }

// SecurityContextActive reports whether the NAS security context is
// established on the network side.
func (m *MME) SecurityContextActive() bool { return m.ctx.Active }

// Keys returns the network-side NAS key hierarchy.
func (m *MME) Keys() security.Hierarchy { return m.ctx.Keys }

// Recorder returns the instrumentation recorder.
func (m *MME) Recorder() *trace.Recorder { return m.rec }

// AbortedProcedures lists supervised procedures abandoned after
// exhausting their retransmissions — P3's observable effect.
func (m *MME) AbortedProcedures() []spec.MessageName {
	out := make([]spec.MessageName, len(m.aborted))
	copy(out, m.aborted)
	return out
}

func (m *MME) logGlobals() {
	m.rec.Global("emm_state", string(m.state))
	m.rec.Global("guti", fmt.Sprintf("%#x", m.guti))
	m.rec.GlobalBool("sec_ctx_active", m.ctx.Active)
}

func (m *MME) setState(s spec.MMEState) {
	m.state = s
	m.rec.Global("emm_state", string(s))
}

func (m *MME) seal(msg nas.Message, header nas.SecurityHeader) (nas.Packet, error) {
	sig := m.style.Send(msg.Name())
	m.rec.EnterFunc(sig)
	defer m.rec.ExitFunc(sig)
	p, err := m.ctx.Seal(msg, header, nas.DirDownlink)
	if err != nil {
		return nas.Packet{}, fmt.Errorf("mme: %w", err)
	}
	return p, nil
}

func (m *MME) respond(replies []nas.Packet, msg nas.Message, header nas.SecurityHeader) []nas.Packet {
	p, err := m.seal(msg, header)
	if err != nil {
		m.rec.Note("seal failure: " + err.Error())
		return replies
	}
	return append(replies, p)
}

func (m *MME) protectedHeader() nas.SecurityHeader {
	if m.ctx.Active {
		return nas.HeaderIntegrityCiphered
	}
	return nas.HeaderPlain
}

// nextRAND derives a deterministic, non-repeating RAND so runs are
// reproducible without global randomness.
func (m *MME) nextRAND(imsi string) [security.RANDSize]byte {
	m.randSeq++
	h := sha256.New()
	h.Write([]byte(imsi))
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], m.randSeq)
	h.Write(seq[:])
	var out [security.RANDSize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// buildAuthRequest generates a fresh vector for the subscriber and the
// corresponding authentication_request packet.
func (m *MME) buildAuthRequest(imsi string) (nas.Packet, error) {
	k, ok := m.subscribers[imsi]
	if !ok {
		return nas.Packet{}, fmt.Errorf("mme: unknown subscriber %q", imsi)
	}
	rand := m.nextRAND(imsi)
	seq := m.gens[imsi].Next()
	v := security.GenerateVector(k, rand, seq)
	m.vector = &v
	m.vectorRAND = rand
	keys := security.DeriveHierarchy(k, rand[:])
	m.pendingKeys = &keys
	return m.seal(&nas.AuthRequest{RAND: v.RAND, AUTN: v.AUTN}, nas.HeaderPlain)
}

// HandleUplink is the MME's incoming-message dispatcher; it returns the
// downlink packets sent in response.
func (m *MME) HandleUplink(p nas.Packet) []nas.Packet {
	m.rec.EnterFunc("mme_msg_handler")
	defer m.rec.ExitFunc("mme_msg_handler")
	msg, insp, err := m.open(p)
	if err != nil {
		m.rec.Note("undecodable packet discarded: " + err.Error())
		return nil
	}
	switch t := msg.(type) {
	case *nas.AttachRequest:
		return m.recvAttachRequest(t, insp)
	case *nas.AuthResponse:
		return m.recvAuthResponse(t, insp)
	case *nas.AuthMACFailure:
		return m.recvAuthMACFailure(t, insp)
	case *nas.AuthSyncFailure:
		return m.recvAuthSyncFailure(t, insp)
	case *nas.SecurityModeComplete:
		return m.recvSecurityModeComplete(t, insp)
	case *nas.SecurityModeReject:
		return m.recvSecurityModeReject(t, insp)
	case *nas.AttachComplete:
		return m.recvAttachComplete(t, insp)
	case *nas.IdentityResponse:
		return m.recvIdentityResponse(t, insp)
	case *nas.GUTIReallocationComplete:
		return m.recvGUTIRealloComplete(t, insp)
	case *nas.TAURequest:
		return m.recvTAURequest(t, insp)
	case *nas.TAUComplete:
		return m.recvTAUComplete(t, insp)
	case *nas.DetachRequestUE:
		return m.recvDetachRequest(t, insp)
	case *nas.DetachAccept:
		return m.recvDetachAccept(t, insp)
	case *nas.ServiceRequest:
		return m.recvServiceRequest(t, insp)
	case *nas.PDNConnectivityRequest:
		return m.recvPDNConnectivityRequest(t, insp)
	case *nas.ActivateDefaultBearerAccept:
		return m.recvActivateBearerAccept(t, insp)
	case *nas.ActivateDefaultBearerReject:
		return m.recvActivateBearerReject(t, insp)
	case *nas.DeactivateBearerAccept:
		return m.recvDeactivateBearerAccept(t, insp)
	case *nas.ESMInformationResponse:
		return m.recvESMInformationResponse(t, insp)
	default:
		m.rec.Note("unhandled uplink message " + string(msg.Name()))
		return nil
	}
}

func (m *MME) open(p nas.Packet) (nas.Message, nas.Inspection, error) {
	if p.Header == nas.HeaderPlain {
		return (&nas.Context{}).Open(p, nas.DirUplink)
	}
	if m.ctx.Active {
		return m.ctx.Open(p, nas.DirUplink)
	}
	if m.pendingKeys != nil {
		tmp := nas.Context{Keys: *m.pendingKeys, Active: true, ULCount: m.ctx.ULCount}
		return tmp.Open(p, nas.DirUplink)
	}
	return nil, nas.Inspection{}, errors.New("mme: protected packet without security context")
}

func (m *MME) enter(name spec.MessageName) string {
	sig := m.style.Recv(name)
	m.rec.EnterFunc(sig)
	m.logGlobals()
	return sig
}

// admit enforces the MME's acceptance policy: the network side is modelled
// as conformant (replay and integrity checks always on).
func (m *MME) admit(insp nas.Inspection) bool {
	m.rec.LocalBool(string(spec.CondPlainHeader), insp.PlainHeader)
	if insp.PlainHeader {
		return !m.ctx.Active
	}
	m.rec.LocalBool(string(spec.CondMACValid), insp.MACValid)
	m.rec.LocalBool(string(spec.CondCountFresh), insp.CountFresh)
	if !insp.MACValid || !insp.CountFresh {
		return false
	}
	m.ctx.Accept(insp, nas.DirUplink)
	return true
}

func (m *MME) recvAttachRequest(t *nas.AttachRequest, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.AttachRequest)
	defer m.rec.ExitFunc(sig)
	if !insp.PlainHeader && !m.admit(insp) {
		return nil
	}
	imsi := t.IMSI
	if imsi == "" {
		m.rec.Note("attach_request without IMSI; requesting identity")
		m.setState(spec.MMECommonProcInit)
		return m.respond(nil, &nas.IdentityRequest{IDType: nas.IDTypeIMSI}, nas.HeaderPlain)
	}
	if _, ok := m.subscribers[imsi]; !ok {
		return m.respond(nil, &nas.AttachReject{Cause: nas.CauseIMSIUnknown}, nas.HeaderPlain)
	}
	m.imsi = imsi
	m.replayedCaps = t.UECaps
	m.attachInProgress = true
	m.ctx = nas.Context{} // new attach: fresh security context
	// A fresh attach invalidates any bearer from an earlier session.
	m.bearerActive = false
	m.bearerID = 0
	m.setState(spec.MMECommonProcInit)
	p, err := m.buildAuthRequest(imsi)
	if err != nil {
		m.rec.Note("vector generation failed: " + err.Error())
		return nil
	}
	return []nas.Packet{p}
}

func (m *MME) recvAuthResponse(t *nas.AuthResponse, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.AuthResponse)
	defer m.rec.ExitFunc(sig)
	if m.vector == nil {
		m.rec.Note("unexpected authentication_response")
		return nil
	}
	resOK := t.RES == m.vector.XRES
	m.rec.LocalBool("res_match", resOK)
	if !resOK {
		m.setState(spec.MMEDeregistered)
		return m.respond(nil, &nas.AuthReject{}, nas.HeaderPlain)
	}
	// AKA succeeded: run the security-mode procedure with the new keys.
	m.ctx = nas.Context{Keys: *m.pendingKeys, Active: true}
	m.pendingKeys = nil
	m.vector = nil
	smc := &nas.SecurityModeCommand{IntAlg: 2, EncAlg: 2, ReplayedCaps: 0}
	// ReplayedCaps must echo what the UE sent in attach_request; the
	// conformance environment sets it via SetReplayedCaps when needed.
	smc.ReplayedCaps = m.replayedCaps
	return m.respond(nil, smc, nas.HeaderIntegrity)
}

// SetReplayedCaps records the UE capability bitmap to echo in
// security_mode_command.
func (m *MME) SetReplayedCaps(caps uint8) { m.replayedCaps = caps }

func (m *MME) recvAuthMACFailure(_ *nas.AuthMACFailure, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.AuthMACFailure)
	defer m.rec.ExitFunc(sig)
	m.vector = nil
	m.pendingKeys = nil
	m.setState(spec.MMEDeregistered)
	return nil
}

func (m *MME) recvAuthSyncFailure(t *nas.AuthSyncFailure, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.AuthSyncFailure)
	defer m.rec.ExitFunc(sig)
	if m.imsi == "" {
		return nil
	}
	// AUTS is verified against the RAND of the most recent challenge;
	// m.vector may already be consumed when the failing challenge was a
	// replay of it.
	k := m.subscribers[m.imsi]
	sqnMS, err := security.OpenAUTS(k, m.vectorRAND, t.AUTS)
	m.rec.LocalBool("auts_valid", err == nil)
	if err != nil {
		return nil
	}
	// Resynchronise and retry authentication with a fresh vector.
	m.gens[m.imsi].Resync(sqnMS)
	p, err := m.buildAuthRequest(m.imsi)
	if err != nil {
		m.rec.Note("resync vector generation failed: " + err.Error())
		return nil
	}
	return []nas.Packet{p}
}

func (m *MME) recvSecurityModeComplete(_ *nas.SecurityModeComplete, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.SecurityModeComplet)
	defer m.rec.ExitFunc(sig)
	if !m.admit(insp) {
		return nil
	}
	m.clearPending(spec.SecurityModeCommand)
	if !m.attachInProgress {
		m.setState(spec.MMERegistered)
		return nil
	}
	// Initial attach: assign a GUTI and send attach_accept.
	m.gutiSeq++
	m.guti = m.gutiSeq
	m.setState(spec.MMEWaitAttachCompl)
	return m.respond(nil, &nas.AttachAccept{GUTI: m.guti, TAC: m.tac, T3412: 6}, nas.HeaderIntegrityCiphered)
}

func (m *MME) recvSecurityModeReject(t *nas.SecurityModeReject, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.SecurityModeReject)
	defer m.rec.ExitFunc(sig)
	m.rec.LocalInt("emm_cause", int(t.Cause))
	m.clearPending(spec.SecurityModeCommand)
	m.ctx = nas.Context{}
	m.attachInProgress = false
	m.setState(spec.MMEDeregistered)
	return nil
}

func (m *MME) recvAttachComplete(_ *nas.AttachComplete, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.AttachComplete)
	defer m.rec.ExitFunc(sig)
	if !m.admit(insp) {
		return nil
	}
	m.attachInProgress = false
	m.setState(spec.MMERegistered)
	return nil
}

func (m *MME) recvIdentityResponse(t *nas.IdentityResponse, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.IdentityResponse)
	defer m.rec.ExitFunc(sig)
	if m.ctx.Active && !m.admit(insp) {
		return nil
	}
	if t.IDType != nas.IDTypeIMSI || t.IMSI == "" {
		return nil
	}
	if _, ok := m.subscribers[t.IMSI]; !ok {
		return m.respond(nil, &nas.AttachReject{Cause: nas.CauseIMSIUnknown}, nas.HeaderPlain)
	}
	m.imsi = t.IMSI
	m.attachInProgress = true
	p, err := m.buildAuthRequest(t.IMSI)
	if err != nil {
		return nil
	}
	return []nas.Packet{p}
}

func (m *MME) recvGUTIRealloComplete(_ *nas.GUTIReallocationComplete, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.GUTIRealloComplete)
	defer m.rec.ExitFunc(sig)
	if !m.admit(insp) {
		return nil
	}
	m.clearPending(spec.GUTIRealloCommand)
	return nil
}

func (m *MME) recvTAURequest(t *nas.TAURequest, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.TAURequest)
	defer m.rec.ExitFunc(sig)
	if m.ctx.Active {
		if !m.admit(insp) {
			return nil
		}
	} else if t.GUTI == 0 || t.GUTI != m.guti {
		return m.respond(nil, &nas.TAUReject{Cause: nas.CauseIMSIUnknown}, nas.HeaderPlain)
	}
	m.gutiSeq++
	m.guti = m.gutiSeq
	return m.respond(nil, &nas.TAUAccept{GUTI: m.guti, TAC: m.tac}, m.protectedHeader())
}

func (m *MME) recvTAUComplete(_ *nas.TAUComplete, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.TAUComplete)
	defer m.rec.ExitFunc(sig)
	m.admit(insp)
	return nil
}

func (m *MME) recvDetachRequest(t *nas.DetachRequestUE, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.DetachRequestUE)
	defer m.rec.ExitFunc(sig)
	if m.ctx.Active && !m.admit(insp) {
		return nil
	}
	var replies []nas.Packet
	if !t.SwitchOff {
		replies = m.respond(replies, &nas.DetachAccept{}, m.protectedHeader())
	}
	m.ctx = nas.Context{}
	m.pendingKeys = nil
	m.guti = 0
	m.attachInProgress = false
	m.bearerActive = false
	m.bearerID = 0
	m.setState(spec.MMEDeregistered)
	return replies
}

func (m *MME) recvDetachAccept(_ *nas.DetachAccept, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.DetachAccept)
	defer m.rec.ExitFunc(sig)
	if m.state != spec.MMEDeregInitiated {
		return nil
	}
	m.ctx = nas.Context{}
	m.guti = 0
	m.setState(spec.MMEDeregistered)
	return nil
}

func (m *MME) recvServiceRequest(t *nas.ServiceRequest, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.ServiceRequest)
	defer m.rec.ExitFunc(sig)
	if m.ctx.Active && !m.admit(insp) {
		return nil
	}
	if m.state != spec.MMERegistered || t.GUTI != m.guti {
		return m.respond(nil, &nas.ServiceReject{Cause: nas.CauseIMSIUnknown}, m.protectedHeader())
	}
	return m.respond(nil, &nas.ServiceAccept{}, m.protectedHeader())
}

// --- Network-initiated procedures ---

// StartGUTIReallocation begins a supervised GUTI reallocation; the
// returned packet is the first transmission of guti_reallocation_command.
func (m *MME) StartGUTIReallocation() (nas.Packet, error) {
	if !m.ctx.Active || m.state != spec.MMERegistered {
		return nas.Packet{}, errors.New("mme: GUTI reallocation requires a registered, secured session")
	}
	m.gutiSeq++
	newGUTI := m.gutiSeq
	p, err := m.seal(&nas.GUTIReallocationCommand{GUTI: newGUTI}, nas.HeaderIntegrityCiphered)
	if err != nil {
		return nas.Packet{}, err
	}
	m.guti = newGUTI
	m.pending = &pendingProc{name: spec.GUTIRealloCommand, packet: p}
	return p, nil
}

// StartSecurityModeControl re-runs the security-mode procedure (rekeying)
// under supervision, as after a re-authentication.
func (m *MME) StartSecurityModeControl() (nas.Packet, error) {
	if m.pendingKeys == nil && !m.ctx.Active {
		return nas.Packet{}, errors.New("mme: no keys available for security mode control")
	}
	if m.pendingKeys != nil {
		m.ctx = nas.Context{Keys: *m.pendingKeys, Active: true}
	}
	p, err := m.seal(&nas.SecurityModeCommand{IntAlg: 2, EncAlg: 2, ReplayedCaps: m.replayedCaps}, nas.HeaderIntegrity)
	if err != nil {
		return nas.Packet{}, err
	}
	m.pending = &pendingProc{name: spec.SecurityModeCommand, packet: p}
	return p, nil
}

// StartReauthentication sends a fresh authentication_request to an
// already-registered UE.
func (m *MME) StartReauthentication() (nas.Packet, error) {
	if m.imsi == "" {
		return nas.Packet{}, errors.New("mme: no active subscriber to re-authenticate")
	}
	// attachInProgress is left untouched: when used as an
	// authentication retry during attach, completion must still end in
	// attach_accept.
	return m.buildAuthRequest(m.imsi)
}

// StartDetach begins a network-originated detach.
func (m *MME) StartDetach(detachType uint8) (nas.Packet, error) {
	p, err := m.seal(&nas.DetachRequestNW{Type: detachType}, m.protectedHeader())
	if err != nil {
		return nas.Packet{}, err
	}
	m.setState(spec.MMEDeregInitiated)
	return p, nil
}

// Page emits a paging_request for the session's UE, by GUTI normally or
// by IMSI when byIMSI is set.
func (m *MME) Page(byIMSI bool) (nas.Packet, error) {
	req := &nas.PagingRequest{IDType: nas.IDTypeGUTI, GUTI: m.guti}
	if byIMSI {
		req = &nas.PagingRequest{IDType: nas.IDTypeIMSI, IMSI: m.imsi}
	}
	return m.seal(req, nas.HeaderPlain)
}

// SendIdentityRequest asks the UE for an identity outside of attach.
func (m *MME) SendIdentityRequest(idType uint8) (nas.Packet, error) {
	return m.seal(&nas.IdentityRequest{IDType: idType}, m.protectedHeader())
}

// SendEMMInformation sends a protected informational message.
func (m *MME) SendEMMInformation() (nas.Packet, error) {
	return m.seal(&nas.EMMInformation{}, m.protectedHeader())
}

// TickTimer models one expiry of the supervision timer (T3450 for GUTI
// reallocation, T3460 for security mode control). While retransmissions
// remain it returns the retransmitted packet and true; on the fifth
// expiry it aborts the procedure (recording it in AbortedProcedures) and
// returns false.
func (m *MME) TickTimer() (nas.Packet, bool) {
	if m.pending == nil {
		return nas.Packet{}, false
	}
	if m.pending.retries < MaxProcedureRetries {
		m.pending.retries++
		m.rec.Note(fmt.Sprintf("timer expiry %d: retransmitting %s", m.pending.retries, m.pending.name))
		return m.pending.packet, true
	}
	m.rec.Note(fmt.Sprintf("timer expiry %d: aborting %s", m.pending.retries+1, m.pending.name))
	m.aborted = append(m.aborted, m.pending.name)
	m.pending = nil
	return nas.Packet{}, false
}

// PendingProcedure reports the supervised procedure currently awaiting
// completion ("" when none).
func (m *MME) PendingProcedure() spec.MessageName {
	if m.pending == nil {
		return ""
	}
	return m.pending.name
}

func (m *MME) clearPending(name spec.MessageName) {
	if m.pending != nil && m.pending.name == name {
		m.pending = nil
	}
}
