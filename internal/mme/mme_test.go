package mme_test

import (
	"testing"

	"prochecker/internal/conformance"
	"prochecker/internal/mme"
	"prochecker/internal/nas"
	"prochecker/internal/security"
	"prochecker/internal/spec"
	"prochecker/internal/ue"
)

func newEnv(t *testing.T) *conformance.Env {
	t.Helper()
	env, err := conformance.NewEnv(ue.ProfileConformant, nil)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return env
}

func attach(t *testing.T, env *conformance.Env) {
	t.Helper()
	if err := env.Attach(); err != nil {
		t.Fatalf("Attach: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := mme.New(mme.Config{}); err == nil {
		t.Error("empty subscriber DB accepted")
	}
}

func TestAttachAssignsFreshGUTI(t *testing.T) {
	env := newEnv(t)
	attach(t, env)
	first := env.MME.GUTI()
	if first == 0 {
		t.Fatal("no GUTI assigned")
	}
	// Detach and re-attach: the GUTI must change.
	req, err := env.UE.StartDetach(false)
	if err != nil {
		t.Fatalf("StartDetach: %v", err)
	}
	env.SendUplink(req)
	attach(t, env)
	if env.MME.GUTI() == first {
		t.Error("GUTI reused across attaches")
	}
}

func TestUnknownIMSIRejected(t *testing.T) {
	env := newEnv(t)
	req, err := (&nas.Context{}).Seal(&nas.AttachRequest{IMSI: "404"}, nas.HeaderPlain, nas.DirUplink)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	replies := env.MME.HandleUplink(req)
	if len(replies) != 1 {
		t.Fatalf("replies = %d, want 1 attach_reject", len(replies))
	}
	m, err := nas.Unmarshal(replies[0].Payload)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if m.Name() != spec.AttachReject {
		t.Errorf("reply = %s, want attach_reject", m.Name())
	}
}

func TestWrongRESGetsAuthReject(t *testing.T) {
	env := newEnv(t)
	req, err := env.UE.StartAttach()
	if err != nil {
		t.Fatalf("StartAttach: %v", err)
	}
	// Deliver attach_request by hand; intercept the challenge and answer
	// with a wrong RES.
	challenges := env.MME.HandleUplink(req)
	if len(challenges) != 1 {
		t.Fatalf("challenges = %d, want 1", len(challenges))
	}
	bad, err := (&nas.Context{}).Seal(&nas.AuthResponse{RES: [8]byte{0xde, 0xad}}, nas.HeaderPlain, nas.DirUplink)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	replies := env.MME.HandleUplink(bad)
	if len(replies) != 1 {
		t.Fatalf("replies = %d, want 1", len(replies))
	}
	m, err := nas.Unmarshal(replies[0].Payload)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if m.Name() != spec.AuthReject {
		t.Errorf("reply = %s, want authentication_reject", m.Name())
	}
	if env.MME.State() != spec.MMEDeregistered {
		t.Errorf("MME state = %s, want deregistered", env.MME.State())
	}
}

func TestSyncFailureTriggersResync(t *testing.T) {
	env := newEnv(t)
	attach(t, env)
	// Re-authenticate: the first challenge is consumed by the USIM;
	// replaying it yields auth_sync_failure, and the MME must answer with
	// a *fresh* challenge.
	p, err := env.MME.StartReauthentication()
	if err != nil {
		t.Fatalf("StartReauthentication: %v", err)
	}
	replies := env.UE.HandleDownlink(p) // auth_response
	if len(replies) != 1 {
		t.Fatalf("expected auth_response, got %d replies", len(replies))
	}
	env.MME.HandleUplink(replies[0]) // MME sends SMC, ignore it here
	// Replay the consumed challenge to the UE: now it answers sync
	// failure.
	sync := env.UE.HandleDownlink(p)
	if len(sync) != 1 {
		t.Fatalf("expected auth_sync_failure, got %d replies", len(sync))
	}
	m, err := nas.Unmarshal(sync[0].Payload)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if m.Name() != spec.AuthSyncFailure {
		t.Fatalf("UE reply = %s, want auth_sync_failure", m.Name())
	}
	fresh := env.MME.HandleUplink(sync[0])
	if len(fresh) != 1 {
		t.Fatalf("MME did not answer sync failure with a new challenge")
	}
	fm, err := nas.Unmarshal(fresh[0].Payload)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if fm.Name() != spec.AuthRequest {
		t.Errorf("MME reply = %s, want authentication_request", fm.Name())
	}
}

func TestTimerRetransmitsThenAborts(t *testing.T) {
	env := newEnv(t)
	attach(t, env)
	if _, err := env.MME.StartGUTIReallocation(); err != nil {
		t.Fatalf("StartGUTIReallocation: %v", err)
	}
	for i := 0; i < mme.MaxProcedureRetries; i++ {
		if _, ok := env.MME.TickTimer(); !ok {
			t.Fatalf("expiry %d did not retransmit", i+1)
		}
	}
	if _, ok := env.MME.TickTimer(); ok {
		t.Fatal("fifth expiry retransmitted instead of aborting")
	}
	aborted := env.MME.AbortedProcedures()
	if len(aborted) != 1 || aborted[0] != spec.GUTIRealloCommand {
		t.Errorf("aborted = %v, want [guti_reallocation_command]", aborted)
	}
	if env.MME.PendingProcedure() != "" {
		t.Error("procedure still pending after abort")
	}
}

func TestTickTimerIdleIsNoop(t *testing.T) {
	env := newEnv(t)
	if _, ok := env.MME.TickTimer(); ok {
		t.Error("idle TickTimer retransmitted")
	}
}

func TestGUTIReallocationRequiresRegistered(t *testing.T) {
	env := newEnv(t)
	if _, err := env.MME.StartGUTIReallocation(); err == nil {
		t.Error("GUTI reallocation allowed before attach")
	}
}

func TestReplayedUplinkDiscarded(t *testing.T) {
	// The MME is conformant: a replayed protected uplink packet must not
	// be processed twice.
	env := newEnv(t)
	attach(t, env)
	req, err := env.UE.StartTAU(7)
	if err != nil {
		t.Fatalf("StartTAU: %v", err)
	}
	first := env.MME.HandleUplink(req)
	if len(first) == 0 {
		t.Fatal("TAU request not answered")
	}
	replay := env.MME.HandleUplink(req)
	if len(replay) != 0 {
		t.Errorf("replayed tau_request answered with %d packets", len(replay))
	}
}

func TestPageByIMSIAndGUTI(t *testing.T) {
	env := newEnv(t)
	attach(t, env)
	byGUTI, err := env.MME.Page(false)
	if err != nil {
		t.Fatalf("Page(false): %v", err)
	}
	m, err := nas.Unmarshal(byGUTI.Payload)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if pr := m.(*nas.PagingRequest); pr.IDType != nas.IDTypeGUTI || pr.GUTI != env.MME.GUTI() {
		t.Errorf("page by GUTI = %+v", pr)
	}
	byIMSI, err := env.MME.Page(true)
	if err != nil {
		t.Fatalf("Page(true): %v", err)
	}
	m, err = nas.Unmarshal(byIMSI.Payload)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if pr := m.(*nas.PagingRequest); pr.IDType != nas.IDTypeIMSI || pr.IMSI != conformance.DefaultIMSI {
		t.Errorf("page by IMSI = %+v", pr)
	}
}

func TestKeysMatchUEAfterAttach(t *testing.T) {
	env := newEnv(t)
	attach(t, env)
	var zero security.Hierarchy
	if env.MME.Keys() == zero {
		t.Fatal("MME has zero keys after attach")
	}
	if env.MME.Keys() != env.UE.Keys() {
		t.Error("UE and MME keys differ after attach")
	}
}
