package mme

import (
	"errors"
	"fmt"

	"prochecker/internal/nas"
	"prochecker/internal/spec"
)

// ESM (session management) handling on the network side: PDN
// connectivity admission, default-bearer activation and deactivation.

// blockedAPN is rejected with ESM cause 27 (unknown APN), giving the
// conformance suite a reject path to exercise.
const blockedAPN = "blocked.example"

// BearerActive reports whether the session's default bearer is up.
func (m *MME) BearerActive() bool { return m.bearerActive }

func (m *MME) recvPDNConnectivityRequest(t *nas.PDNConnectivityRequest, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.PDNConnectivityReq)
	defer m.rec.ExitFunc(sig)
	if !m.admit(insp) {
		return nil
	}
	if m.state != spec.MMERegistered {
		return m.respond(nil, &nas.PDNConnectivityReject{PTI: t.PTI, Cause: nas.ESMCauseActivationRejected}, m.protectedHeader())
	}
	if t.APN == blockedAPN {
		m.rec.LocalBool("apn_allowed", false)
		return m.respond(nil, &nas.PDNConnectivityReject{PTI: t.PTI, Cause: nas.ESMCauseUnknownAPN}, m.protectedHeader())
	}
	m.rec.LocalBool("apn_allowed", true)
	m.bearerSeq++
	m.pendingBearer = m.bearerSeq
	return m.respond(nil, &nas.ActivateDefaultBearerRequest{PTI: t.PTI, BearerID: m.pendingBearer, APN: t.APN}, m.protectedHeader())
}

func (m *MME) recvActivateBearerAccept(t *nas.ActivateDefaultBearerAccept, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.ActDefaultBearerAcc)
	defer m.rec.ExitFunc(sig)
	if !m.admit(insp) {
		return nil
	}
	if t.BearerID != m.pendingBearer {
		return nil
	}
	m.bearerActive = true
	m.bearerID = t.BearerID
	m.pendingBearer = 0
	return nil
}

func (m *MME) recvActivateBearerReject(t *nas.ActivateDefaultBearerReject, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.ActDefaultBearerRej)
	defer m.rec.ExitFunc(sig)
	if !m.admit(insp) {
		return nil
	}
	m.rec.LocalInt("esm_cause", int(t.Cause))
	m.pendingBearer = 0
	return nil
}

func (m *MME) recvDeactivateBearerAccept(t *nas.DeactivateBearerAccept, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.DeactBearerAccept)
	defer m.rec.ExitFunc(sig)
	if !m.admit(insp) {
		return nil
	}
	if t.BearerID != m.bearerID {
		return nil
	}
	m.bearerActive = false
	m.bearerID = 0
	return nil
}

func (m *MME) recvESMInformationResponse(t *nas.ESMInformationResponse, insp nas.Inspection) []nas.Packet {
	sig := m.enter(spec.ESMInformationRespon)
	defer m.rec.ExitFunc(sig)
	m.admit(insp)
	return nil
}

// StartBearerDeactivation tears down the active default bearer.
func (m *MME) StartBearerDeactivation() (nas.Packet, error) {
	if !m.bearerActive {
		return nas.Packet{}, errors.New("mme: no active bearer to deactivate")
	}
	return m.seal(&nas.DeactivateBearerRequest{BearerID: m.bearerID, Cause: nas.ESMCauseInsufficientResources}, m.protectedHeader())
}

// SendESMInformationRequest asks the UE for deferred protocol options.
func (m *MME) SendESMInformationRequest(pti uint8) (nas.Packet, error) {
	if !m.ctx.Active {
		return nas.Packet{}, fmt.Errorf("mme: ESM information request requires a security context")
	}
	return m.seal(&nas.ESMInformationRequest{PTI: pti}, m.protectedHeader())
}
