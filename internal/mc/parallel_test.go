// Differential tests for the shared-frontier engine: for every property
// class the parallel engine must return the same verdicts and
// byte-identical counterexample traces as the sequential reference
// checker. Lives in package mc_test so it can drive the engine with the
// real 62-property catalogue (props imports mc).
package mc_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"prochecker/internal/core/props"
	"prochecker/internal/core/threat"
	"prochecker/internal/ltemodels"
	"prochecker/internal/mc"
	"prochecker/internal/resilience"
	"prochecker/internal/ts"
)

// composedSystem builds the threat-instrumented LTEInspector model the
// catalogue properties are written against.
func composedSystem(t *testing.T) *ts.System {
	t.Helper()
	c, err := threat.Compose(threat.Config{
		Name: "parallel-test",
		UE:   ltemodels.LTEInspectorUE(),
		MME:  ltemodels.MME(),
	})
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	return c.System
}

// catalogueMC lists the model-checked subset of the property catalogue.
func catalogueMC(t *testing.T) []mc.Property {
	t.Helper()
	var out []mc.Property
	for _, p := range props.Catalogue() {
		if p.Kind == props.KindMC {
			out = append(out, p.MC())
		}
	}
	if len(out) == 0 {
		t.Fatal("no model-checked properties in the catalogue")
	}
	return out
}

// assertSameResult compares an engine result against the sequential
// reference, including the counterexample rule path byte for byte.
func assertSameResult(t *testing.T, name string, got, want mc.Result) {
	t.Helper()
	if got.Verified != want.Verified || got.Truncated != want.Truncated || got.Kind != want.Kind {
		t.Fatalf("%s: verdict mismatch: engine %+v, sequential %+v", name, got, want)
	}
	if got.StatesExplored != want.StatesExplored {
		t.Errorf("%s: states explored: engine %d, sequential %d", name, got.StatesExplored, want.StatesExplored)
	}
	gc, wc := got.Counterexample, want.Counterexample
	if (gc == nil) != (wc == nil) {
		t.Fatalf("%s: counterexample presence: engine %v, sequential %v", name, gc != nil, wc != nil)
	}
	if gc == nil {
		return
	}
	if !reflect.DeepEqual(gc.RuleNames(), wc.RuleNames()) {
		t.Errorf("%s: rule path:\n  engine     %v\n  sequential %v", name, gc.RuleNames(), wc.RuleNames())
	}
	if gc.LoopStart != wc.LoopStart {
		t.Errorf("%s: loop start: engine %d, sequential %d", name, gc.LoopStart, wc.LoopStart)
	}
	if !reflect.DeepEqual(gc.Initial, wc.Initial) {
		t.Errorf("%s: initial assignment differs", name)
	}
	if !reflect.DeepEqual(gc.Steps, wc.Steps) {
		t.Errorf("%s: trace steps differ (tags or state snapshots)", name)
	}
}

// TestEngineMatchesSequentialOnCatalogue is the headline differential:
// every model-checked catalogue property, on the full threat-composed
// LTEInspector model, under a parallel engine.
func TestEngineMatchesSequentialOnCatalogue(t *testing.T) {
	sys := composedSystem(t)
	opts := mc.Options{Workers: 4}
	engine := mc.NewEngine()
	for _, p := range catalogueMC(t) {
		got, err := engine.CheckContext(context.Background(), sys, p, opts)
		if err != nil {
			t.Fatalf("%s: engine error: %v", p.Name(), err)
		}
		want := mc.CheckSequential(sys, p, opts)
		assertSameResult(t, p.Name(), got, want)
	}
}

// chain builds a line a0 -> a1 -> ... -> an with an optional loop back.
func chain(t *testing.T, n int, loop bool) *ts.System {
	t.Helper()
	sys := ts.NewSystem("chain")
	domain := make([]string, n+1)
	for i := range domain {
		domain[i] = string(rune('a' + i))
	}
	if err := sys.AddVar("x", domain...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := sys.AddRule(ts.Rule{
			Name:    "step-" + domain[i],
			Guard:   ts.Eq{Var: "x", Value: domain[i]},
			Assigns: []ts.Assign{{Var: "x", Value: domain[i+1]}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if loop {
		if err := sys.AddRule(ts.Rule{
			Name:    "wrap",
			Guard:   ts.Eq{Var: "x", Value: domain[n]},
			Assigns: []ts.Assign{{Var: "x", Value: domain[0]}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

// TestEngineMatchesSequentialPerClass pins the per-class edge cases:
// initial violation, mid-exploration violation, event firing, response
// lasso (cycle) and response deadlock.
func TestEngineMatchesSequentialPerClass(t *testing.T) {
	cases := []struct {
		name string
		sys  *ts.System
		prop mc.Property
	}{
		{"invariant-holds", chain(t, 4, true), mc.Invariant{PropName: "p", Holds: ts.Neq{Var: "x", Value: "zz"}}},
		{"invariant-violated", chain(t, 4, true), mc.Invariant{PropName: "p", Holds: ts.Neq{Var: "x", Value: "d"}}},
		{"invariant-violated-initially", chain(t, 3, false), mc.Invariant{PropName: "p", Holds: ts.Neq{Var: "x", Value: "a"}}},
		{"never-fires-holds", chain(t, 4, true), mc.NeverFires{PropName: "p", Match: func(n string) bool { return n == "absent" }}},
		{"never-fires-violated", chain(t, 4, true), mc.NeverFires{PropName: "p", Match: func(n string) bool { return n == "step-c" }}},
		{"response-verified", chain(t, 3, false), mc.Response{
			PropName: "p",
			Trigger:  func(n string) bool { return n == "step-a" },
			Goal:     func(n string) bool { return n == "step-c" },
		}},
		{"response-cycle", chain(t, 3, true), mc.Response{
			PropName: "p",
			Trigger:  func(n string) bool { return n == "step-a" },
			Goal:     func(n string) bool { return n == "absent" },
		}},
		{"response-deadlock", chain(t, 3, false), mc.Response{
			PropName: "p",
			Trigger:  func(n string) bool { return n == "step-a" },
			Goal:     func(n string) bool { return n == "absent" },
		}},
		{"response-goal-state", chain(t, 3, true), mc.Response{
			PropName:  "p",
			Trigger:   func(n string) bool { return n == "step-a" },
			GoalState: ts.Eq{Var: "x", Value: "d"},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				engine := mc.NewEngine()
				opts := mc.Options{Workers: workers}
				got, err := engine.CheckContext(context.Background(), tc.sys, tc.prop, opts)
				if err != nil {
					t.Fatalf("engine error: %v", err)
				}
				assertSameResult(t, tc.name, got, mc.CheckSequential(tc.sys, tc.prop, opts))
			}
		})
	}
}

// TestCheckAllDeterministic runs the catalogue batch twice on a parallel
// engine and against the sequential baseline: identical slices all round.
func TestCheckAllDeterministic(t *testing.T) {
	sys := composedSystem(t)
	list := catalogueMC(t)
	// NoVacuityPrune keeps this a pure engine-vs-sequential comparison;
	// the pruner has its own differential in vacuity_test.go.
	opts := mc.Options{Workers: 8, NoVacuityPrune: true}
	first, err := mc.NewEngine().CheckAllContext(context.Background(), sys, list, opts)
	if err != nil {
		t.Fatalf("CheckAllContext: %v", err)
	}
	second, err := mc.NewEngine().CheckAllContext(context.Background(), sys, list, opts)
	if err != nil {
		t.Fatalf("CheckAllContext (second run): %v", err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("two parallel runs disagree")
	}
	sequential := mc.CheckAllSequential(sys, list, opts)
	if len(first) != len(sequential) {
		t.Fatalf("result count: parallel %d, sequential %d", len(first), len(sequential))
	}
	for i := range first {
		assertSameResult(t, list[i].Name(), first[i], sequential[i])
	}
}

// TestCheckAllContextCancelled: a dead context stops the batch with the
// typed cancellation error and no phantom verdicts.
func TestCheckAllContextCancelled(t *testing.T) {
	sys := chain(t, 4, true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	list := []mc.Property{
		mc.Invariant{PropName: "a", Holds: ts.Neq{Var: "x", Value: "zz"}},
		mc.Invariant{PropName: "b", Holds: ts.Neq{Var: "x", Value: "zz"}},
	}
	_, err := mc.NewEngine().CheckAllContext(ctx, sys, list, mc.Options{Workers: 2})
	if !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
}

// TestBudgetExhaustedTyped: hitting MaxStates is a typed error now, not
// a silent incomplete verdict.
func TestBudgetExhaustedTyped(t *testing.T) {
	sys := chain(t, 20, false)
	prop := mc.Invariant{PropName: "p", Holds: ts.Neq{Var: "x", Value: "zz"}}
	res, err := mc.CheckContext(context.Background(), sys, prop, mc.Options{MaxStates: 5})
	if !errors.Is(err, resilience.ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	if !mc.IsBudgetExhausted(err) {
		t.Error("IsBudgetExhausted returned false for a budget error")
	}
	if !res.Truncated || res.Verified {
		t.Errorf("truncated result not marked: %+v", res)
	}
}

// TestEngineCacheReuseAndInvalidation: repeated checks share one build;
// a structural edit (RemoveRule bumps Generation) forces a re-explore.
func TestEngineCacheReuseAndInvalidation(t *testing.T) {
	sys := chain(t, 4, true)
	engine := mc.NewEngine()
	opts := mc.Options{}
	inv := mc.Invariant{PropName: "p", Holds: ts.Neq{Var: "x", Value: "zz"}}
	nf := mc.NeverFires{PropName: "q", Match: func(string) bool { return false }}
	for _, p := range []mc.Property{inv, nf} {
		if _, err := engine.CheckContext(context.Background(), sys, p, opts); err != nil {
			t.Fatalf("CheckContext: %v", err)
		}
	}
	if hits, builds := engine.CacheStats(); builds != 1 || hits != 1 {
		t.Fatalf("after two checks: hits=%d builds=%d, want 1/1", hits, builds)
	}
	if !sys.RemoveRule("wrap") {
		t.Fatal("RemoveRule failed")
	}
	if _, err := engine.CheckContext(context.Background(), sys, inv, opts); err != nil {
		t.Fatalf("CheckContext after edit: %v", err)
	}
	if _, builds := engine.CacheStats(); builds != 2 {
		t.Fatalf("stale graph served after RemoveRule: builds=%d, want 2", builds)
	}
}
