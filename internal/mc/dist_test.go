// Differential tests for the sharded, disk-spillable storage layer:
// whatever the shard count, memory budget or snapshot/resume history,
// the engine must return byte-identical verdicts, StatesExplored counts
// and counterexample traces to the sequential reference. Run under
// -race in CI, these also exercise the frozen-index reads of the
// parallel expansion phase.
package mc_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"prochecker/internal/mc"
	"prochecker/internal/obs"
)

// TestShardedMatchesSequentialOnCatalogue sweeps shard counts over the
// full threat-composed model and catalogue: ids, verdicts and traces
// must not depend on the sharding layout.
func TestShardedMatchesSequentialOnCatalogue(t *testing.T) {
	sys := composedSystem(t)
	list := catalogueMC(t)
	for _, shards := range []int{1, 2, 8} {
		engine := mc.NewEngine()
		opts := mc.Options{Workers: 4, Shards: shards}
		for _, p := range list {
			got, err := engine.CheckContext(context.Background(), sys, p, opts)
			if err != nil {
				t.Fatalf("shards=%d %s: engine error: %v", shards, p.Name(), err)
			}
			want := mc.CheckSequential(sys, p, mc.Options{})
			assertSameResult(t, p.Name(), got, want)
		}
	}
}

// TestSpillMatchesSequential forces cold arena segments to disk with a
// deliberately tiny memory budget and checks the catalogue is still
// byte-identical — and that spilling actually happened, so the test
// cannot silently pass on the resident path.
func TestSpillMatchesSequential(t *testing.T) {
	sys := composedSystem(t)
	list := catalogueMC(t)
	o := obs.New()
	ctx := obs.NewContext(context.Background(), o)
	engine := mc.NewEngine()
	opts := mc.Options{
		Workers:           4,
		Shards:            4,
		MemBudget:         1 << 12, // far below the composed model's state bytes
		SpillDir:          t.TempDir(),
		SpillSegmentBytes: 1 << 10, // many small segments, so most of them seal and spill
	}
	for _, p := range list {
		got, err := engine.CheckContext(ctx, sys, p, opts)
		if err != nil {
			t.Fatalf("%s: engine error: %v", p.Name(), err)
		}
		want := mc.CheckSequential(sys, p, mc.Options{})
		assertSameResult(t, p.Name(), got, want)
	}
	if n := o.Metrics().Counter("mc.spill_bytes").Value(); n == 0 {
		t.Fatal("memory budget never spilled a segment; the test exercised nothing")
	}
}

// TestSnapshotResumeMatchesSequential interrupts an exploration via the
// state budget, then re-runs with the full budget against the same
// snapshot directory: the resumed run must pick up at the last
// completed level (mc.resume_level) and still match the sequential
// reference byte for byte.
func TestSnapshotResumeMatchesSequential(t *testing.T) {
	sys := composedSystem(t)
	list := catalogueMC(t)
	dir := t.TempDir()

	// Phase 1: a budget small enough to truncate, leaving snapshots of
	// every completed level behind.
	small := mc.Options{Workers: 4, Shards: 2, MaxStates: 500, SnapshotDir: dir}
	if _, err := mc.NewEngine().CheckContext(context.Background(), sys, list[0], small); err == nil {
		t.Fatal("small budget did not truncate; raise the model size or lower MaxStates")
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshot written by the truncated run (err=%v)", err)
	}

	// Phase 2: full budget, same directory — must resume, not restart.
	o := obs.New()
	ctx := obs.NewContext(context.Background(), o)
	full := mc.Options{Workers: 4, Shards: 2, SnapshotDir: dir}
	engine := mc.NewEngine()
	for _, p := range list {
		got, err := engine.CheckContext(ctx, sys, p, full)
		if err != nil {
			t.Fatalf("%s: resumed engine error: %v", p.Name(), err)
		}
		assertSameResult(t, p.Name(), got, mc.CheckSequential(sys, p, mc.Options{}))
	}
	if lvl := o.Metrics().Gauge("mc.resume_level").Value(); lvl == 0 {
		t.Fatal("exploration did not resume from a snapshot")
	}
}

// TestCorruptSnapshotFallsBackToFreshBuild flips bytes in every
// checkpoint on disk; the loader must reject them (CRC) and explore
// from scratch with correct results, never an error or a wrong graph.
func TestCorruptSnapshotFallsBackToFreshBuild(t *testing.T) {
	sys := composedSystem(t)
	p := catalogueMC(t)[0]
	dir := t.TempDir()
	opts := mc.Options{Workers: 4, SnapshotDir: dir}
	if _, err := mc.NewEngine().CheckContext(context.Background(), sys, p, opts); err != nil {
		t.Fatalf("seed run: %v", err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if len(snaps) == 0 {
		t.Fatal("seed run left no snapshot")
	}
	for _, path := range snaps {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := mc.NewEngine().CheckContext(context.Background(), sys, p, opts)
	if err != nil {
		t.Fatalf("post-corruption run: %v", err)
	}
	assertSameResult(t, p.Name(), got, mc.CheckSequential(sys, p, mc.Options{}))
}

// TestCompletedSnapshotResumesForFree: a finished exploration writes an
// empty-frontier snapshot; a fresh engine on the same directory should
// restore the whole graph (resume level set, same results).
func TestCompletedSnapshotResumesForFree(t *testing.T) {
	sys := composedSystem(t)
	list := catalogueMC(t)
	dir := t.TempDir()
	opts := mc.Options{Workers: 4, SnapshotDir: dir}
	if _, err := mc.NewEngine().CheckContext(context.Background(), sys, list[0], opts); err != nil {
		t.Fatalf("first run: %v", err)
	}
	o := obs.New()
	ctx := obs.NewContext(context.Background(), o)
	engine := mc.NewEngine()
	for _, p := range list {
		got, err := engine.CheckContext(ctx, sys, p, opts)
		if err != nil {
			t.Fatalf("%s: restored engine error: %v", p.Name(), err)
		}
		assertSameResult(t, p.Name(), got, mc.CheckSequential(sys, p, mc.Options{}))
	}
	if lvl := o.Metrics().Gauge("mc.resume_level").Value(); lvl == 0 {
		t.Fatal("completed snapshot was not restored")
	}
}
