package mc

import (
	"strings"
	"testing"

	"prochecker/internal/ts"
)

// counter builds a system counting 0..max with an optional reset rule.
func counter(t *testing.T, max int, withReset bool) *ts.System {
	t.Helper()
	sys := ts.NewSystem("counter")
	domain := make([]string, max+1)
	for i := range domain {
		domain[i] = strings.Repeat("i", i) + "v" // v, iv, iiv...
	}
	if err := sys.AddVar("n", domain...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < max; i++ {
		if err := sys.AddRule(ts.Rule{
			Name:    "inc" + domain[i],
			Guard:   ts.Eq{Var: "n", Value: domain[i]},
			Assigns: []ts.Assign{{Var: "n", Value: domain[i+1]}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if withReset {
		if err := sys.AddRule(ts.Rule{
			Name:    "reset",
			Guard:   ts.Eq{Var: "n", Value: domain[max]},
			Assigns: []ts.Assign{{Var: "n", Value: domain[0]}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func TestInvariantHolds(t *testing.T) {
	sys := counter(t, 3, true)
	res := Check(sys, Invariant{PropName: "never-unreachable", Holds: ts.Neq{Var: "n", Value: "unused"}}, Options{})
	// Domain has no "unused" value, so Neq is trivially true everywhere.
	if !res.Verified {
		t.Errorf("invariant not verified: %+v", res)
	}
	if res.StatesExplored != 4 {
		t.Errorf("states = %d, want 4", res.StatesExplored)
	}
}

func TestInvariantViolationWithTrace(t *testing.T) {
	sys := counter(t, 3, false)
	res := Check(sys, Invariant{PropName: "below-3", Holds: ts.Neq{Var: "n", Value: "iiiv"}}, Options{})
	if res.Verified {
		t.Fatal("violated invariant reported verified")
	}
	if res.Counterexample == nil {
		t.Fatal("no counterexample")
	}
	if got := len(res.Counterexample.Steps); got != 3 {
		t.Errorf("counterexample length = %d, want 3 (shortest path)", got)
	}
	if res.Counterexample.LoopStart != -1 {
		t.Error("safety counterexample should not be a lasso")
	}
}

func TestInvariantViolatedInitially(t *testing.T) {
	sys := counter(t, 2, false)
	res := Check(sys, Invariant{PropName: "never-start", Holds: ts.Neq{Var: "n", Value: "v"}}, Options{})
	if res.Verified {
		t.Fatal("initially-violated invariant reported verified")
	}
	if len(res.Counterexample.Steps) != 0 {
		t.Error("counterexample for initial violation should be empty path")
	}
}

func TestNeverFires(t *testing.T) {
	sys := counter(t, 3, true)
	res := Check(sys, NeverFires{PropName: "no-reset", Match: func(r string) bool { return r == "reset" }}, Options{})
	if res.Verified {
		t.Fatal("reset fires but property verified")
	}
	names := res.Counterexample.RuleNames()
	if names[len(names)-1] != "reset" {
		t.Errorf("counterexample should end with reset: %v", names)
	}
	res2 := Check(sys, NeverFires{PropName: "no-bogus", Match: func(r string) bool { return r == "bogus" }}, Options{})
	if !res2.Verified {
		t.Error("never-firing rule reported as firing")
	}
}

func TestResponseHolds(t *testing.T) {
	// inc0 always eventually leads to reset (the loop is forced).
	sys := counter(t, 2, true)
	res := Check(sys, Response{
		PropName: "inc-leads-to-reset",
		Trigger:  func(r string) bool { return r == "incv" },
		Goal:     func(r string) bool { return r == "reset" },
	}, Options{})
	if !res.Verified {
		t.Errorf("response property not verified: %+v", res)
	}
}

func TestResponseViolatedByDeadlock(t *testing.T) {
	// Without reset the counter deadlocks at max; the goal never fires.
	sys := counter(t, 2, false)
	res := Check(sys, Response{
		PropName: "inc-leads-to-reset",
		Trigger:  func(r string) bool { return r == "incv" },
		Goal:     func(r string) bool { return r == "reset" },
	}, Options{})
	if res.Verified {
		t.Fatal("deadlocking response property verified")
	}
	if res.Counterexample == nil {
		t.Fatal("no counterexample")
	}
	if res.Counterexample.LoopStart != len(res.Counterexample.Steps) {
		t.Errorf("expected deadlock lasso, got LoopStart=%d of %d steps",
			res.Counterexample.LoopStart, len(res.Counterexample.Steps))
	}
}

func TestResponseViolatedByCycle(t *testing.T) {
	// A two-state ping-pong that never reaches the goal state.
	sys := ts.NewSystem("pingpong")
	if err := sys.AddVar("x", "a", "b", "goal"); err != nil {
		t.Fatal(err)
	}
	mustRule := func(r ts.Rule) {
		t.Helper()
		if err := sys.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	mustRule(ts.Rule{Name: "ab", Guard: ts.Eq{Var: "x", Value: "a"}, Assigns: []ts.Assign{{Var: "x", Value: "b"}}})
	mustRule(ts.Rule{Name: "ba", Guard: ts.Eq{Var: "x", Value: "b"}, Assigns: []ts.Assign{{Var: "x", Value: "a"}}})
	// The goal rule exists but the adversary may loop forever without it.
	mustRule(ts.Rule{Name: "win", Guard: ts.Eq{Var: "x", Value: "b"}, Assigns: []ts.Assign{{Var: "x", Value: "goal"}}})
	res := Check(sys, Response{
		PropName: "ab-leads-to-goal",
		Trigger:  func(r string) bool { return r == "ab" },
		Goal:     func(r string) bool { return r == "win" },
	}, Options{})
	if res.Verified {
		t.Fatal("cycle violation missed")
	}
	if res.Counterexample.LoopStart < 0 {
		t.Error("cycle counterexample should be a lasso")
	}
}

func TestResponseGoalState(t *testing.T) {
	sys := counter(t, 2, true)
	res := Check(sys, Response{
		PropName:  "inc-leads-to-max-state",
		Trigger:   func(r string) bool { return r == "incv" },
		Goal:      func(r string) bool { return false },
		GoalState: ts.Eq{Var: "n", Value: "iiv"},
	}, Options{})
	if !res.Verified {
		t.Errorf("goal-state response not verified: %+v", res)
	}
}

func TestTruncation(t *testing.T) {
	sys := counter(t, 50, false)
	res := Check(sys, Invariant{PropName: "cap", Holds: ts.True{}}, Options{MaxStates: 10})
	if !res.Truncated {
		t.Error("truncation not reported")
	}
	if res.Verified {
		t.Error("truncated run reported verified")
	}
}

func TestCheckAllOrder(t *testing.T) {
	sys := counter(t, 2, true)
	props := []Property{
		Invariant{PropName: "p1", Holds: ts.True{}},
		NeverFires{PropName: "p2", Match: func(string) bool { return false }},
	}
	results := CheckAll(sys, props, Options{})
	if len(results) != 2 || results[0].Property != "p1" || results[1].Property != "p2" {
		t.Errorf("CheckAll = %+v", results)
	}
}

func TestTraceStringMarksLoop(t *testing.T) {
	tr := &Trace{Steps: []Step{{Rule: "a"}, {Rule: "b"}}, LoopStart: 1}
	s := tr.String()
	if !strings.Contains(s, "loop starts here") {
		t.Errorf("trace string = %q", s)
	}
	dead := &Trace{Steps: []Step{{Rule: "a"}}, LoopStart: 1}
	if !strings.Contains(dead.String(), "deadlock") {
		t.Error("deadlock marker missing")
	}
}

func TestCounterexampleStatesConsistent(t *testing.T) {
	sys := counter(t, 3, false)
	res := Check(sys, Invariant{PropName: "below-3", Holds: ts.Neq{Var: "n", Value: "iiiv"}}, Options{})
	last := res.Counterexample.Steps[len(res.Counterexample.Steps)-1]
	if last.After["n"] != "iiiv" {
		t.Errorf("final state = %v, want n=iiiv", last.After)
	}
	if res.Counterexample.Initial["n"] != "v" {
		t.Errorf("initial = %v, want n=v", res.Counterexample.Initial)
	}
}
