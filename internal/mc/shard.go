// The sharded level-synchronised explorer. Each BFS level runs in four
// phases: (1) workers expand frontier chunks in parallel against the
// frozen shard indexes; (2) a serial handoff pass routes every successor
// to its hash-owned shard in canonical (frontier position, edge) order;
// (3) shards dedup their routed candidates in parallel, interning fresh
// states as pending index entries; (4) a serial merge walks candidates
// in canonical order assigning global ids — exactly the sequential
// explorer's intern order, so state ids, the parent tree and
// counterexample traces stay byte-identical to CheckSequential for every
// shard count and memory budget. Level boundaries are also where arena
// segments spill under the memory budget and snapshots are checkpointed.
package mc

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"prochecker/internal/obs"
	"prochecker/internal/resilience"
	"prochecker/internal/ts"
)

// candidate is one enabled transition discovered by a worker: the rule
// index and the successor — resolved to an id when the frozen indexes
// already contain it, carried as packed state plus hash otherwise.
type candidate struct {
	rule int32
	id   int32 // >= 0 once resolved
	pend int32 // owner-shard pending index while id < 0 (set by dedup)
	hash uint64
	next ts.State // retained only while unresolved
}

// candRef addresses one unresolved candidate inside a level's
// position-indexed candidate matrix.
type candRef struct{ pos, ci int32 }

// pendingEntry is a state first reached this level: its canonically
// first occurrence, the index slot holding its pending marker, and the
// global id the merge assigns.
type pendingEntry struct {
	ref  candRef
	slot int32
	id   int32
}

// levelExplorer carries one buildGraph invocation's exploration state.
type levelExplorer struct {
	g     *StateGraph
	opts  Options
	rules []ts.CompiledRule

	shards []*stateIndex
	mask   uint64 // shard selector over the low hash bits

	frontier []int32
	fOwners  []uint8 // owner shard per frontier position
	level    int     // completed levels

	reg        *obs.Registry
	bus        *obs.Bus
	scope      string // job scope for progress events (see obs.WithScope)
	width      []*obs.Histogram
	occupancy  []*obs.Gauge
	handoff    []*obs.Counter
	spillBytes *obs.Counter
	peakBytes  *obs.Gauge
}

// buildGraph explores the system with the sharded level-synchronised
// worker pool and returns the interned reachability graph.
//
// Observability: each build is one "mc.explore" span; the registry's
// mc.* instruments are resolved once up front (all nil-safe no-ops when
// no observer rides the context). Frontier width and visited-set size
// are per-shard labelled instruments; spill and peak-residency numbers
// are global.
func buildGraph(ctx context.Context, sys *ts.System, opts Options) (graph *StateGraph, err error) {
	reg := obs.FromContext(ctx).Metrics()
	_, span := obs.Start(ctx, "mc.explore", obs.A("system", sys.Name))
	buildStart := time.Now()
	defer func() {
		if graph != nil {
			n := graph.NumStates()
			reg.Counter("mc.states_explored").Add(int64(n))
			reg.Counter("mc.explorations").Inc()
			if elapsed := time.Since(buildStart); elapsed > 0 {
				reg.Gauge("mc.states_per_sec").Set(int64(float64(n) / elapsed.Seconds()))
			}
			span.SetAttr("states", strconv.Itoa(n))
			span.SetAttr("truncated", strconv.FormatBool(graph.Truncated))
		}
		span.EndErr(err)
	}()

	rules, err := sys.CompileRules()
	if err != nil {
		return nil, err
	}
	init := sys.InitialState()
	nShards := opts.shardCount()
	span.SetAttr("shards", strconv.Itoa(nShards))
	e := &levelExplorer{
		g: &StateGraph{
			Sys: sys, Rules: rules, MaxStates: opts.maxStates(),
			arena:      newStateArena(len(init), opts.SpillSegmentBytes),
			spillReads: reg.Counter("mc.spill_reads"),
		},
		opts:   opts,
		rules:  rules,
		shards: make([]*stateIndex, nShards),
		mask:   uint64(nShards - 1),
		reg:    reg,
		bus:    obs.FromContext(ctx).Bus(),
		scope:  obs.ScopeFromContext(ctx),
	}
	for k := range e.shards {
		e.shards[k] = newStateIndex()
	}
	e.width = make([]*obs.Histogram, nShards)
	e.occupancy = make([]*obs.Gauge, nShards)
	e.handoff = make([]*obs.Counter, nShards)
	for k := 0; k < nShards; k++ {
		e.width[k] = reg.Histogram(obs.Labeled("mc.frontier_width", "shard", k), nil)
		e.occupancy[k] = reg.Gauge(obs.Labeled("mc.visited_states", "shard", k))
		e.handoff[k] = reg.Counter(obs.Labeled("mc.handoff_states", "shard", k))
	}
	e.spillBytes = reg.Counter("mc.spill_bytes")
	e.peakBytes = reg.Gauge("mc.peak_resident_state_bytes")

	resumed := false
	if opts.SnapshotDir != "" {
		lvl, ok, rerr := e.tryResume()
		if rerr != nil {
			return nil, rerr
		}
		if ok {
			resumed = true
			reg.Gauge("mc.resume_level").Set(int64(lvl))
			span.SetAttr("resume_level", strconv.Itoa(lvl))
		}
	}
	if !resumed {
		if err := e.internInitial(init); err != nil {
			return nil, err
		}
	}
	if err := e.run(ctx); err != nil {
		e.g.Release()
		return nil, err
	}
	return e.g, nil
}

// internInitial seeds the arena, index and frontier with state 0. The
// fresh 64-slot owner table trivially fits one entry.
func (e *levelExplorer) internInitial(init ts.State) error {
	h := hashState(init)
	id, err := e.g.arena.append(init, h)
	if err != nil {
		return err
	}
	e.g.adj = append(e.g.adj, nil)
	e.g.parentState = append(e.g.parentState, -1)
	e.g.parentRule = append(e.g.parentRule, -1)
	k := int(h & e.mask)
	x := e.shards[k]
	_, pos, _ := x.probe(h, func(int32) (bool, error) { return false, nil })
	x.set(pos, id+1)
	e.frontier = []int32{id}
	e.fOwners = []uint8{uint8(k)}
	return nil
}

// ensureShard grows shard k's index until extra more inserts stay under
// 3/4 load, so a dedup phase never rehashes mid-flight (recorded
// pending slot positions must stay stable). The index stores no hashes,
// so growth re-derives every position by re-hashing the states
// themselves in one sequential arena pass — safe to run per-shard in
// parallel (spilled reads go through ReadAt) because between levels
// every slot is a committed id, and exactly the arena states hashing to
// shard k are in its table.
func (e *levelExplorer) ensureShard(k, extra int) error {
	x := e.shards[k]
	if (x.used+extra)*4 < len(x.slots)*3 {
		return nil
	}
	size := len(x.slots)
	for (x.used+extra)*4 >= size*3 {
		size <<= 1
	}
	slots := make([]int32, size)
	mask := size - 1
	err := e.g.arena.forEach(0, func(id int32, s []byte) bool {
		h := hashState(ts.State(s))
		if h&e.mask != uint64(k) {
			return true
		}
		pos := int(h>>indexShardBits) & mask
		for slots[pos] != 0 {
			pos = (pos + 1) & mask
		}
		slots[pos] = id + 1
		return true
	})
	if err != nil {
		return err
	}
	x.slots = slots
	return nil
}

// run drives the level loop until the frontier drains, the budget
// truncates or the context is cancelled.
func (e *levelExplorer) run(ctx context.Context) error {
	g := e.g
	workers := e.opts.workers()
	for len(e.frontier) > 0 {
		if ctx.Err() != nil {
			return fmt.Errorf("mc: exploration of %s after %d states: %w",
				g.Sys.Name, g.NumStates(), resilience.ErrCancelled)
		}
		if g.NumStates() > g.MaxStates {
			g.Truncated = true
			return nil
		}
		e.observeWidths()

		cands, err := e.expandFrontier(workers)
		if err != nil {
			return err
		}
		refs := e.routeCandidates(cands)
		pend, err := e.dedupShards(cands, refs)
		if err != nil {
			return err
		}
		if err := e.mergeLevel(cands, pend); err != nil {
			return err
		}
		if err := e.endOfLevel(); err != nil {
			return err
		}
	}
	return nil
}

// observeWidths records this level's frontier width per owner shard.
func (e *levelExplorer) observeWidths() {
	if len(e.shards) == 1 {
		e.width[0].Observe(float64(len(e.frontier)))
		return
	}
	counts := make([]int, len(e.shards))
	for _, k := range e.fOwners {
		counts[k]++
	}
	for k, n := range counts {
		e.width[k].Observe(float64(n))
	}
}

// lookupFrozen resolves a successor against the (frozen) owner-shard
// index during the parallel phase: committed entries only, read-only.
func (e *levelExplorer) lookupFrozen(h uint64, s ts.State) (int32, error) {
	x := e.shards[h&e.mask]
	v, _, err := x.probe(h, func(v int32) (bool, error) {
		if v <= 0 {
			return false, nil // pending markers never survive a level
		}
		return e.g.arena.confirm(v-1, s, h, e.g.spillReads)
	})
	if err != nil || v <= 0 {
		return -1, err
	}
	return v - 1, nil
}

// expandFrontier is phase 1: workers expand contiguous frontier chunks
// into a position-indexed candidate matrix — no locks, no ordering
// races, every shard index frozen.
func (e *levelExplorer) expandFrontier(workers int) ([][]candidate, error) {
	g := e.g
	frontier := e.frontier
	cands := make([][]candidate, len(frontier))
	expand := func(id int32) ([]candidate, error) {
		cur, err := g.StateAt(id)
		if err != nil {
			return nil, err
		}
		var out []candidate
		for ri := range e.rules {
			r := &e.rules[ri]
			if !r.Enabled(cur) {
				continue
			}
			next := r.Apply(cur)
			h := hashState(next)
			known, err := e.lookupFrozen(h, next)
			if err != nil {
				return nil, err
			}
			c := candidate{rule: int32(ri), id: known, hash: h}
			if known < 0 {
				c.next = next
			}
			out = append(out, c)
		}
		return out, nil
	}

	if workers <= 1 || len(frontier) < 2*workers {
		for fi, id := range frontier {
			out, err := expand(id)
			if err != nil {
				return nil, err
			}
			cands[fi] = out
		}
		return cands, nil
	}
	chunk := (len(frontier) + workers - 1) / workers
	nChunks := (len(frontier) + chunk - 1) / chunk
	errs := make([]error, nChunks)
	var wg sync.WaitGroup
	for c := 0; c < nChunks; c++ {
		lo, hi := c*chunk, min((c+1)*chunk, len(frontier))
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			for fi := lo; fi < hi; fi++ {
				out, err := expand(frontier[fi])
				if err != nil {
					errs[c] = err
					return
				}
				cands[fi] = out
			}
		}(c, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return cands, nil
}

// routeCandidates is phase 2, the cross-shard successor handoff: a
// serial pass routes every unresolved candidate to its owner shard's
// dedup list in canonical (position, edge) order, and counts candidates
// whose owner differs from the parent's shard — the volume that would
// cross the wire in a multi-node run.
func (e *levelExplorer) routeCandidates(cands [][]candidate) [][]candRef {
	refs := make([][]candRef, len(e.shards))
	handoff := make([]int64, len(e.shards))
	for pos, list := range cands {
		from := e.fOwners[pos]
		for ci := range list {
			c := &list[ci]
			k := int(c.hash & e.mask)
			if uint8(k) != from {
				handoff[k]++
			}
			if c.id < 0 {
				refs[k] = append(refs[k], candRef{pos: int32(pos), ci: int32(ci)})
			}
		}
	}
	for k, n := range handoff {
		if n > 0 {
			e.handoff[k].Add(n)
		}
	}
	return refs
}

// dedupShards is phase 3: every shard interns its routed candidates in
// parallel. Refs arrive in canonical order, so the candidate that
// creates a pending entry is the canonically-first occurrence of that
// state; capacity is reserved up front so recorded slot positions stay
// valid for the whole level.
func (e *levelExplorer) dedupShards(cands [][]candidate, refs [][]candRef) ([][]pendingEntry, error) {
	pend := make([][]pendingEntry, len(e.shards))
	errs := make([]error, len(e.shards))
	run := func(k int) {
		x := e.shards[k]
		if err := e.ensureShard(k, len(refs[k])); err != nil {
			errs[k] = err
			return
		}
		for _, rf := range refs[k] {
			c := &cands[rf.pos][rf.ci]
			v, slot, err := x.probe(c.hash, func(v int32) (bool, error) {
				if v > 0 {
					return e.g.arena.confirm(v-1, c.next, c.hash, e.g.spillReads)
				}
				other := pend[k][-v-1].ref
				return bytesEqual(cands[other.pos][other.ci].next, c.next), nil
			})
			if err != nil {
				errs[k] = err
				return
			}
			switch {
			case v > 0:
				c.id = v - 1
			case v < 0:
				c.pend = -v - 1
			default:
				c.pend = int32(len(pend[k]))
				pend[k] = append(pend[k], pendingEntry{ref: rf, slot: int32(slot), id: -1})
				x.set(slot, -(c.pend + 1))
			}
		}
	}
	if len(e.shards) == 1 {
		run(0)
	} else {
		var wg sync.WaitGroup
		for k := range e.shards {
			if len(refs[k]) == 0 {
				continue
			}
			wg.Add(1)
			go func(k int) { defer wg.Done(); run(k) }(k)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pend, nil
}

// mergeLevel is phase 4, the serial merge in canonical frontier order:
// fresh states get global ids exactly as the sequential explorer would
// assign them, the parent tree and adjacency rows extend in rule order,
// and this level's pending index slots are promoted to committed ids.
func (e *levelExplorer) mergeLevel(cands [][]candidate, pend [][]pendingEntry) error {
	g := e.g
	var next []int32
	var nextOwners []uint8
	for pos, list := range cands {
		from := e.frontier[pos]
		edges := make([]graphEdge, 0, len(list))
		for ci := range list {
			c := &list[ci]
			to := c.id
			if to < 0 {
				k := int(c.hash & e.mask)
				pe := &pend[k][c.pend]
				if pe.id < 0 {
					id, err := g.arena.append(c.next, c.hash)
					if err != nil {
						return err
					}
					g.adj = append(g.adj, nil)
					g.parentState = append(g.parentState, from)
					g.parentRule = append(g.parentRule, c.rule)
					pe.id = id
					e.shards[k].slots[pe.slot] = id + 1
					next = append(next, id)
					nextOwners = append(nextOwners, uint8(k))
				}
				to = pe.id
			}
			edges = append(edges, graphEdge{rule: c.rule, to: to})
		}
		g.adj[from] = edges
	}
	e.frontier = next
	e.fOwners = nextOwners
	e.level++
	return nil
}

// endOfLevel runs the level-boundary bookkeeping: spill enforcement
// under the memory budget, residency and occupancy instruments, and the
// snapshot checkpoint (every snapshotEvery levels, plus always when the
// frontier drains so completed explorations resume for free).
func (e *levelExplorer) endOfLevel() error {
	g := e.g
	moved, err := g.arena.enforceBudget(e.opts.MemBudget, e.opts.SpillDir)
	if err != nil {
		return err
	}
	if moved > 0 {
		e.spillBytes.Add(moved)
	}
	resident := g.arena.memBytes()
	for k, x := range e.shards {
		resident += x.memBytes()
		e.occupancy[k].Set(int64(x.used))
	}
	e.peakBytes.SetMax(resident)
	if e.opts.SnapshotDir != "" &&
		(len(e.frontier) == 0 || e.level%e.opts.snapshotEvery() == 0) {
		if err := e.writeSnapshot(); err != nil {
			return err
		}
	}
	// One progress event per completed level: how deep the exploration
	// is, how many states it holds, and how wide the next frontier is —
	// the live feedback streaming clients steer budgets by. Publishing
	// never blocks, so the level loop pays only the ring append.
	if e.bus == nil {
		return nil
	}
	e.bus.Publish(obs.BusEvent{
		Type:  "progress",
		Scope: e.scope,
		Name:  "mc.level",
		Value: int64(e.level),
		Attrs: map[string]string{
			"system":   g.Sys.Name,
			"states":   strconv.Itoa(g.NumStates()),
			"frontier": strconv.Itoa(len(e.frontier)),
		},
	})
	return nil
}
