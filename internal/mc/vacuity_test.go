// Differential tests for vacuity pre-pruning: a pruned catalogue run
// must be byte-identical to the unpruned run modulo the skipped
// properties, and every skipped property must be one the full
// exploration verifies (soundness of the abstraction).
package mc_test

import (
	"context"
	"reflect"
	"testing"

	"prochecker/internal/mc"
	"prochecker/internal/ts"
)

func TestVacuityPruneDifferential(t *testing.T) {
	sys := composedSystem(t)
	list := catalogueMC(t)

	pruned, err := mc.NewEngine().CheckAllContext(context.Background(), sys, list, mc.Options{Workers: 4})
	if err != nil {
		t.Fatalf("pruned run: %v", err)
	}
	full, err := mc.NewEngine().CheckAllContext(context.Background(), sys, list, mc.Options{Workers: 4, NoVacuityPrune: true})
	if err != nil {
		t.Fatalf("unpruned run: %v", err)
	}
	if len(pruned) != len(full) {
		t.Fatalf("result count: pruned %d, unpruned %d", len(pruned), len(full))
	}

	nVacuous := 0
	for i := range list {
		if pruned[i].Vacuous {
			nVacuous++
			if !pruned[i].Verified {
				t.Errorf("%s: vacuous result not marked verified", list[i].Name())
			}
			if pruned[i].VacuityWitness == "" {
				t.Errorf("%s: vacuous result lacks a static witness", list[i].Name())
			}
			if pruned[i].Counterexample != nil || pruned[i].StatesExplored != 0 {
				t.Errorf("%s: vacuous result carries exploration artifacts: %+v", list[i].Name(), pruned[i])
			}
			// Soundness: the full exploration must agree the property holds.
			if !full[i].Verified {
				t.Errorf("%s: pruned as vacuous but the full run did not verify it (cex=%v)",
					list[i].Name(), full[i].Counterexample != nil)
			}
			continue
		}
		// Non-vacuous properties: byte-identical to the unpruned run.
		if !reflect.DeepEqual(pruned[i], full[i]) {
			t.Errorf("%s: non-vacuous result differs:\n  pruned   %+v\n  unpruned %+v",
				list[i].Name(), pruned[i], full[i])
		}
	}
	if nVacuous == 0 {
		t.Fatal("catalogue has no statically-vacuous property on the base model; the pruner discharged nothing")
	}
	t.Logf("vacuity pruning discharged %d of %d catalogue properties", nVacuous, len(list))
}

// TestVacuityPruneDeterministic: two pruned runs agree exactly.
func TestVacuityPruneDeterministic(t *testing.T) {
	sys := composedSystem(t)
	list := catalogueMC(t)
	first, err := mc.NewEngine().CheckAllContext(context.Background(), sys, list, mc.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	second, err := mc.NewEngine().CheckAllContext(context.Background(), sys, list, mc.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("two pruned runs disagree")
	}
}

// TestVacuousOnUnits exercises the Vacuous oracle's edges on a tiny
// system: unfireable triggers prune, fireable ones do not, invariants
// never do.
func TestVacuousOnUnits(t *testing.T) {
	sys := ts.NewSystem("unit")
	if err := sys.AddVar("x", "a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddRule(ts.Rule{Name: "step", Guard: ts.Eq{Var: "x", Value: "a"}, Assigns: []ts.Assign{{Var: "x", Value: "b"}}}); err != nil {
		t.Fatal(err)
	}
	// x=c is never assigned: dead's guard is statically unsatisfiable.
	if err := sys.AddRule(ts.Rule{Name: "dead", Guard: ts.Eq{Var: "x", Value: "c"}}); err != nil {
		t.Fatal(err)
	}
	reach := mc.StaticReach(sys)

	if v, w := mc.Vacuous(reach, sys, mc.NeverFires{PropName: "p", Match: func(n string) bool { return n == "dead" }}); !v || w == "" {
		t.Errorf("never-fires over a dead rule: vacuous=%v witness=%q", v, w)
	}
	if v, _ := mc.Vacuous(reach, sys, mc.NeverFires{PropName: "p", Match: func(n string) bool { return n == "step" }}); v {
		t.Error("never-fires over a live rule must not be vacuous")
	}
	if v, _ := mc.Vacuous(reach, sys, mc.NeverFires{PropName: "p", Match: func(n string) bool { return n == "absent" }}); !v {
		t.Error("never-fires matching no rule at all is vacuous")
	}
	if v, w := mc.Vacuous(reach, sys, mc.Response{
		PropName: "r",
		Trigger:  func(n string) bool { return n == "dead" },
		Goal:     func(n string) bool { return n == "step" },
	}); !v || w == "" {
		t.Errorf("response with a dead trigger: vacuous=%v witness=%q", v, w)
	}
	if v, _ := mc.Vacuous(reach, sys, mc.Invariant{PropName: "i", Holds: ts.True{}}); v {
		t.Error("invariants must never be vacuous")
	}
	if v, _ := mc.Vacuous(reach, sys, mc.NeverFires{PropName: "nil-match"}); v {
		t.Error("a nil matcher must not be treated as vacuous")
	}

	// End to end: CheckAll returns the vacuous verdict for the dead rule
	// and the real counterexample for the live one.
	res := mc.CheckAll(sys, []mc.Property{
		mc.NeverFires{PropName: "dead-prop", Match: func(n string) bool { return n == "dead" }},
		mc.NeverFires{PropName: "live-prop", Match: func(n string) bool { return n == "step" }},
	}, mc.Options{})
	if !res[0].Vacuous || !res[0].Verified {
		t.Errorf("dead-prop = %+v, want vacuous verified", res[0])
	}
	if res[1].Vacuous || res[1].Verified || res[1].Counterexample == nil {
		t.Errorf("live-prop = %+v, want real counterexample", res[1])
	}
	// The escape hatch explores everything: no vacuous verdicts.
	res = mc.CheckAll(sys, []mc.Property{
		mc.NeverFires{PropName: "dead-prop", Match: func(n string) bool { return n == "dead" }},
	}, mc.Options{NoVacuityPrune: true})
	if res[0].Vacuous {
		t.Errorf("NoVacuityPrune run still pruned: %+v", res[0])
	}
	if !res[0].Verified {
		t.Errorf("full run of a vacuous property must verify: %+v", res[0])
	}
}
