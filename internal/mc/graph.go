// Shared-frontier exploration: the reachability graph of a ts.System is
// computed once by a level-synchronised worker-pool BFS and reused by
// every property check. Determinism is load-bearing — state ids, the
// first-reach parent tree and per-state edge order must be identical to
// the sequential explorer's so that counterexample traces come out
// byte-identical. States live in the compact arena/index storage layer
// (arena.go); the sharded level-synchronised explorer that fills the
// graph is in shard.go, and snapshot/resume in snapshot.go.
package mc

import (
	"sort"

	"prochecker/internal/obs"
	"prochecker/internal/ts"
)

// graphEdge is one outgoing transition of the reachability graph.
type graphEdge struct {
	rule int32 // index into StateGraph.Rules
	to   int32 // successor state id
}

// StateGraph is the interned reachability graph of one system: states in
// BFS order inside the compact arena, all enabled transitions per state
// in rule order, and the first-reach parent tree for shortest-path
// counterexamples.
type StateGraph struct {
	Sys   *ts.System
	Rules []ts.CompiledRule

	arena *stateArena
	adj   [][]graphEdge
	// parentState/parentRule form the BFS tree: the (state, rule) that
	// first reached each state; -1 for the initial state.
	parentState []int32
	parentRule  []int32

	// Truncated marks a build that hit the state budget; adjacency of
	// unexpanded frontier states is missing then.
	Truncated bool
	// MaxStates is the budget the graph was built under.
	MaxStates int

	// spillReads counts membership confirms that had to read the spill
	// file; resolved once per build, nil-safe.
	spillReads *obs.Counter
}

// NumStates reports how many states were interned.
func (g *StateGraph) NumStates() int { return g.arena.len() }

// StateAt returns state id's packed assignment. Resident states are a
// zero-copy view (do not mutate); spilled states are read into a fresh
// buffer.
func (g *StateGraph) StateAt(id int32) (ts.State, error) {
	b, err := g.arena.at(id)
	return ts.State(b), err
}

// forEachState streams states [from, NumStates) in id order, one
// spilled-segment read at a time. The state view is only valid inside
// the callback; return false to stop early.
func (g *StateGraph) forEachState(from int32, f func(id int32, s ts.State) bool) error {
	return g.arena.forEach(from, func(id int32, b []byte) bool { return f(id, ts.State(b)) })
}

// Release closes the graph's spill file, if any. The GC finalizer on
// the arena is the backstop for graphs dropped from the engine cache;
// tests and benchmarks that build many spilling graphs call Release
// eagerly.
func (g *StateGraph) Release() { g.arena.release() }

// pathTo reconstructs the rule-name path from the initial state to id.
func (g *StateGraph) pathTo(id int32) []string {
	var rev []string
	for cur := id; g.parentState[cur] >= 0; cur = g.parentState[cur] {
		rev = append(rev, g.Rules[g.parentRule[cur]].Name)
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// statesWhenProcessing reconstructs how many states the sequential
// explorer had interned at the moment it processed rule ri of state id:
// the initial state plus every state whose first-reach (parent, rule)
// pair precedes (id, ri) in exploration order. Parent pairs are
// non-decreasing in state id, so the boundary binary-searches — the
// former forward scan made counterexample reconstruction quadratic on
// large graphs.
func (g *StateGraph) statesWhenProcessing(id, ri int32) int {
	n := g.NumStates()
	return 1 + sort.Search(n-1, func(i int) bool {
		s := i + 1
		ps, pr := g.parentState[s], g.parentRule[s]
		return ps > id || (ps == id && pr >= ri)
	})
}

// hashState is FNV-1a over the packed state bytes: computed once per
// candidate in the worker and reused for shard selection, index probing
// and bloom membership, instead of re-serialising the full assignment
// per intern.
func hashState(s ts.State) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range s {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}
