// Shared-frontier exploration: the reachability graph of a ts.System is
// computed once by a level-synchronised worker-pool BFS and reused by
// every property check. Determinism is load-bearing — state ids, the
// first-reach parent tree and per-state edge order must be identical to
// the sequential explorer's so that counterexample traces come out
// byte-identical. The parallel phase (guard evaluation, successor
// construction, membership pre-filtering against a striped visited set)
// is embarrassingly parallel per frontier chunk; the cheap intern/merge
// step runs serially in frontier order to pin the ordering.
package mc

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"prochecker/internal/obs"
	"prochecker/internal/resilience"
	"prochecker/internal/ts"
)

// graphEdge is one outgoing transition of the reachability graph.
type graphEdge struct {
	rule int32 // index into StateGraph.Rules
	to   int32 // successor state id
}

// StateGraph is the interned reachability graph of one system: states in
// BFS order, all enabled transitions per state in rule order, and the
// first-reach parent tree for shortest-path counterexamples.
type StateGraph struct {
	Sys   *ts.System
	Rules []ts.CompiledRule

	States []ts.State
	adj    [][]graphEdge
	// parentState/parentRule form the BFS tree: the (state, rule) that
	// first reached each state; -1 for the initial state.
	parentState []int32
	parentRule  []int32

	// Truncated marks a build that hit the state budget; adjacency of
	// unexpanded frontier states is missing then.
	Truncated bool
	// MaxStates is the budget the graph was built under.
	MaxStates int
}

// pathTo reconstructs the rule-name path from the initial state to id.
func (g *StateGraph) pathTo(id int32) []string {
	var rev []string
	for cur := id; g.parentState[cur] >= 0; cur = g.parentState[cur] {
		rev = append(rev, g.Rules[g.parentRule[cur]].Name)
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// statesWhenProcessing reconstructs how many states the sequential
// explorer had interned at the moment it processed rule ri of state id:
// the initial state plus every state whose first-reach (parent, rule)
// pair precedes (id, ri) in exploration order. Parent pairs are
// non-decreasing in state id, so a forward scan suffices.
func (g *StateGraph) statesWhenProcessing(id, ri int32) int {
	n := 1
	for s := int32(1); s < int32(len(g.States)); s++ {
		ps, pr := g.parentState[s], g.parentRule[s]
		if ps < id || (ps == id && pr < ri) {
			n = int(s) + 1
			continue
		}
		break
	}
	return n
}

// visitedStripes shards the visited set; a power of two so the stripe
// index is a mask of the state-key hash.
const visitedStripes = 64

// visitedSet is the striped state-intern index. During the parallel
// phase of a level the set is frozen (read-only from every worker, no
// locks needed); the serial merge step is the only writer.
type visitedSet struct {
	stripes [visitedStripes]map[string]int32
}

func newVisitedSet() *visitedSet {
	v := &visitedSet{}
	for i := range v.stripes {
		v.stripes[i] = make(map[string]int32)
	}
	return v
}

// hashState is FNV-1a over the packed state bytes: computed once per
// candidate in the worker and reused for stripe selection at merge time,
// instead of re-serialising the full assignment per intern.
func hashState(s ts.State) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range s {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// lookup finds a state's id without allocating (string(s) in a map index
// compiles to an allocation-free lookup).
func (v *visitedSet) lookup(h uint64, s ts.State) (int32, bool) {
	id, ok := v.stripes[h&(visitedStripes-1)][string(s)]
	return id, ok
}

// insert records a freshly interned state. Only the merge step calls it.
func (v *visitedSet) insert(h uint64, s ts.State, id int32) {
	v.stripes[h&(visitedStripes-1)][s.Key()] = id
}

// candidate is one enabled transition discovered by a worker: the rule
// index, the successor (resolved to an id when the frozen visited set
// already contains it, carried as a state plus hash otherwise).
type candidate struct {
	rule int32
	id   int32 // >= 0 when resolved against the frozen visited set
	hash uint64
	next ts.State
}

// buildGraph explores the system with a level-synchronised worker pool.
// The successor computation of each frontier chunk runs concurrently;
// interning runs serially in frontier order, which reproduces the
// sequential explorer's state numbering exactly.
//
// Observability: each build is one "mc.explore" span; the registry's
// mc.* instruments are resolved once up front (all nil-safe no-ops when
// no observer rides the context) so the per-state loop stays untouched
// and the per-level accounting is one histogram observation.
func buildGraph(ctx context.Context, sys *ts.System, opts Options) (graph *StateGraph, err error) {
	reg := obs.FromContext(ctx).Metrics()
	_, span := obs.Start(ctx, "mc.explore", obs.A("system", sys.Name))
	buildStart := time.Now()
	defer func() {
		if graph != nil {
			reg.Counter("mc.states_explored").Add(int64(len(graph.States)))
			reg.Counter("mc.explorations").Inc()
			if elapsed := time.Since(buildStart); elapsed > 0 {
				reg.Gauge("mc.states_per_sec").Set(int64(float64(len(graph.States)) / elapsed.Seconds()))
			}
			span.SetAttr("states", strconv.Itoa(len(graph.States)))
			span.SetAttr("truncated", strconv.FormatBool(graph.Truncated))
		}
		span.EndErr(err)
	}()
	frontierWidth := reg.Histogram("mc.frontier_width", nil)

	rules, err := sys.CompileRules()
	if err != nil {
		return nil, err
	}
	g := &StateGraph{Sys: sys, Rules: rules, MaxStates: opts.maxStates()}
	visited := newVisitedSet()

	intern := func(h uint64, s ts.State, from, rule int32) (int32, bool) {
		if id, ok := visited.lookup(h, s); ok {
			return id, false
		}
		id := int32(len(g.States))
		visited.insert(h, s, id)
		g.States = append(g.States, s)
		g.adj = append(g.adj, nil)
		g.parentState = append(g.parentState, from)
		g.parentRule = append(g.parentRule, rule)
		return id, true
	}

	init := sys.InitialState()
	intern(hashState(init), init, -1, -1)
	frontier := []int32{0}
	workers := opts.workers()

	// expand computes the ordered candidate list of one frontier state.
	expand := func(id int32) []candidate {
		cur := g.States[id]
		var out []candidate
		for ri := range rules {
			r := &rules[ri]
			if !r.Enabled(cur) {
				continue
			}
			next := r.Apply(cur)
			h := hashState(next)
			if known, ok := visited.lookup(h, next); ok {
				out = append(out, candidate{rule: int32(ri), id: known})
				continue
			}
			out = append(out, candidate{rule: int32(ri), id: -1, hash: h, next: next})
		}
		return out
	}

	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("mc: exploration of %s after %d states: %w",
				sys.Name, len(g.States), resilience.ErrCancelled)
		}
		if len(g.States) > g.MaxStates {
			g.Truncated = true
			return g, nil
		}
		frontierWidth.Observe(float64(len(frontier)))

		// Parallel phase: the visited set is frozen, workers expand
		// contiguous frontier chunks into a position-indexed result
		// slice — no locks, no ordering races.
		cands := make([][]candidate, len(frontier))
		if workers <= 1 || len(frontier) < 2*workers {
			for fi, id := range frontier {
				cands[fi] = expand(id)
			}
		} else {
			chunk := (len(frontier) + workers - 1) / workers
			done := make(chan struct{}, workers)
			n := 0
			for lo := 0; lo < len(frontier); lo += chunk {
				hi := min(lo+chunk, len(frontier))
				n++
				go func(lo, hi int) {
					for fi := lo; fi < hi; fi++ {
						cands[fi] = expand(frontier[fi])
					}
					done <- struct{}{}
				}(lo, hi)
			}
			for ; n > 0; n-- {
				<-done
			}
		}

		// Serial merge in frontier order: intern fresh states, append
		// adjacency in rule order. Identical to the sequential
		// explorer's intern order.
		var next []int32
		for fi, id := range frontier {
			edges := make([]graphEdge, 0, len(cands[fi]))
			for _, c := range cands[fi] {
				to := c.id
				if to < 0 {
					nid, fresh := intern(c.hash, c.next, id, c.rule)
					if fresh {
						next = append(next, nid)
					}
					to = nid
				}
				edges = append(edges, graphEdge{rule: c.rule, to: to})
			}
			g.adj[id] = edges
		}
		frontier = next
	}
	return g, nil
}
