// Exploration snapshots: at level boundaries the explorer checkpoints
// the arena, parent tree, adjacency and frontier into a single
// CRC-checksummed binary file, written with the same temp-write + fsync
// + rename idiom as the job WAL, so a killed exploration resumes from
// its last completed level instead of recomputing. Files are named
// snap-<fingerprint>-<level>.ckpt — the fingerprint is a SHA-256 of the
// system's SMV rendering, so one snapshot directory safely serves many
// systems (every CEGAR refinement is its own fingerprint) and a
// snapshot never resumes the wrong model. A snapshot with an empty
// frontier marks a completed exploration, which resumes for free.
//
// Layout (all integers little-endian, CRC32/IEEE over everything before
// the trailer):
//
//	magic "PCSN" | version u32 | fingerprint [32]byte
//	level u32 | numStates u32 | stride u32 | numRules u32
//	states  numStates × stride bytes, id order
//	parents numStates × (parentState i32, parentRule i32)
//	adj     numStates × (count u32, count × (rule u32, to u32))
//	frontier count u32, count × id u32, canonical order
//	crc u32
package mc

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"prochecker/internal/ts"
)

const (
	snapshotMagic   = "PCSN"
	snapshotVersion = 1
)

// systemFingerprint hashes the system's structure (variables, domains,
// rules — its SMV rendering), deliberately excluding tuning like
// MaxStates so a truncated run's snapshots resume under a bigger
// budget.
func systemFingerprint(sys *ts.System) [32]byte {
	return sha256.Sum256([]byte(sys.SMV()))
}

// snapshotPrefix names the per-system snapshot family inside a shared
// directory.
func snapshotPrefix(fp [32]byte) string {
	return "snap-" + hex.EncodeToString(fp[:6]) + "-"
}

// snapWriter streams the payload while folding it into the CRC.
type snapWriter struct {
	w       io.Writer
	crc     uint32
	scratch [8]byte
	err     error
}

func (s *snapWriter) write(b []byte) {
	if s.err != nil {
		return
	}
	s.crc = crc32.Update(s.crc, crc32.IEEETable, b)
	_, s.err = s.w.Write(b)
}

func (s *snapWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(s.scratch[:4], v)
	s.write(s.scratch[:4])
}

func (s *snapWriter) i32(v int32) { s.u32(uint32(v)) }

// writeSnapshot checkpoints the exploration as of e.level completed
// levels. The temp file is created in the target directory, fsynced and
// atomically renamed, and older snapshots of the same system are
// removed only afterwards — a crash at any point leaves the newest
// complete snapshot intact.
func (e *levelExplorer) writeSnapshot() (err error) {
	g := e.g
	dir := e.opts.SnapshotDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("mc: creating snapshot dir: %w", err)
	}
	fp := systemFingerprint(g.Sys)
	final := filepath.Join(dir, fmt.Sprintf("%s%08d.ckpt", snapshotPrefix(fp), e.level))

	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("mc: creating snapshot temp: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	bw := bufio.NewWriterSize(tmp, 1<<16)
	sw := &snapWriter{w: bw}
	sw.write([]byte(snapshotMagic))
	sw.u32(snapshotVersion)
	sw.write(fp[:])
	n := g.NumStates()
	sw.u32(uint32(e.level))
	sw.u32(uint32(n))
	sw.u32(uint32(g.arena.stride))
	sw.u32(uint32(len(g.Rules)))
	ferr := g.arena.forEach(0, func(_ int32, s []byte) bool {
		sw.write(s)
		return sw.err == nil
	})
	if ferr != nil {
		return ferr
	}
	for id := 0; id < n; id++ {
		sw.i32(g.parentState[id])
		sw.i32(g.parentRule[id])
	}
	for id := 0; id < n; id++ {
		edges := g.adj[id]
		sw.u32(uint32(len(edges)))
		for _, ed := range edges {
			sw.u32(uint32(ed.rule))
			sw.u32(uint32(ed.to))
		}
	}
	sw.u32(uint32(len(e.frontier)))
	for _, id := range e.frontier {
		sw.u32(uint32(id))
	}
	if sw.err != nil {
		return fmt.Errorf("mc: writing snapshot: %w", sw.err)
	}
	binary.LittleEndian.PutUint32(sw.scratch[:4], sw.crc)
	if _, err := bw.Write(sw.scratch[:4]); err != nil {
		return fmt.Errorf("mc: writing snapshot checksum: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("mc: flushing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("mc: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("mc: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("mc: publishing snapshot: %w", err)
	}
	removeOlderSnapshots(dir, snapshotPrefix(fp), final)
	return nil
}

// removeOlderSnapshots prunes superseded checkpoints of one system;
// best-effort, the newest file is already durable.
func removeOlderSnapshots(dir, prefix, keep string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		if full := filepath.Join(dir, name); full != keep {
			os.Remove(full)
		}
	}
}

// snapReader parses a fully-read snapshot payload.
type snapReader struct {
	b   []byte
	off int
	err error
}

func (s *snapReader) bytes(n int) []byte {
	if s.err != nil {
		return nil
	}
	if s.off+n > len(s.b) {
		s.err = fmt.Errorf("mc: snapshot truncated at offset %d", s.off)
		return nil
	}
	out := s.b[s.off : s.off+n]
	s.off += n
	return out
}

func (s *snapReader) u32() uint32 {
	b := s.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (s *snapReader) i32() int32 { return int32(s.u32()) }

// tryResume loads the newest valid snapshot of this system from
// opts.SnapshotDir into the explorer, rebuilding the shard indexes and
// per-segment blooms by re-hashing the restored arena. A missing,
// corrupt or mismatched snapshot is not an error — exploration simply
// starts fresh; only I/O failure of the directory itself propagates.
func (e *levelExplorer) tryResume() (int, bool, error) {
	dir := e.opts.SnapshotDir
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("mc: reading snapshot dir: %w", err)
	}
	fp := systemFingerprint(e.g.Sys)
	prefix := snapshotPrefix(fp)
	var names []string
	for _, ent := range entries {
		if n := ent.Name(); strings.HasPrefix(n, prefix) && strings.HasSuffix(n, ".ckpt") {
			names = append(names, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names))) // zero-padded level: newest first
	for _, name := range names {
		lvl, ok := e.loadSnapshot(filepath.Join(dir, name), fp)
		if ok {
			return lvl, true, nil
		}
	}
	return 0, false, nil
}

// loadSnapshot restores one checkpoint file; any validation failure
// (checksum, version, fingerprint, structural bounds) rejects the file.
func (e *levelExplorer) loadSnapshot(path string, fp [32]byte) (int, bool) {
	raw, err := os.ReadFile(path)
	if err != nil || len(raw) < 4 {
		return 0, false
	}
	payload, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(trailer) {
		return 0, false
	}
	r := &snapReader{b: payload}
	if string(r.bytes(4)) != snapshotMagic || r.u32() != snapshotVersion {
		return 0, false
	}
	if !bytesEqual(r.bytes(32), fp[:]) {
		return 0, false
	}
	g := e.g
	level := int(r.u32())
	n := int(r.u32())
	stride := int(r.u32())
	nRules := int(r.u32())
	if r.err != nil || stride != g.arena.stride || nRules != len(g.Rules) ||
		n < 1 || n > maxArenaStates {
		return 0, false
	}
	states := r.bytes(n * stride)
	if r.err != nil {
		return 0, false
	}

	parentState := make([]int32, n)
	parentRule := make([]int32, n)
	for id := 0; id < n; id++ {
		parentState[id] = r.i32()
		parentRule[id] = r.i32()
	}
	adj := make([][]graphEdge, n)
	for id := 0; id < n && r.err == nil; id++ {
		count := int(r.u32())
		if count == 0 {
			continue
		}
		if count > len(g.Rules) {
			return 0, false
		}
		edges := make([]graphEdge, count)
		for i := range edges {
			rule, to := r.i32(), r.i32()
			if rule < 0 || int(rule) >= nRules || to < 0 || int(to) >= n {
				return 0, false
			}
			edges[i] = graphEdge{rule: rule, to: to}
		}
		adj[id] = edges
	}
	frontier := make([]int32, int(r.u32()))
	fOwners := make([]uint8, len(frontier))
	for i := range frontier {
		id := r.i32()
		if id < 0 || int(id) >= n {
			return 0, false
		}
		frontier[i] = id
	}
	if r.err != nil || r.off != len(r.b) {
		return 0, false
	}

	// Rebuild the arena, per-segment blooms and shard indexes by
	// re-hashing the restored states; frontier owners fall out of the
	// same hashes. A first pass counts per-shard ownership so each
	// (still empty) index is sized once up front — the slot-only tables
	// cannot rehash in place. The arena is empty here (resume runs
	// before any interning), so ids come out dense and in order by
	// construction.
	if g.arena.len() != 0 {
		return 0, false
	}
	owners := make([]uint8, n)
	hashes := make([]uint64, n)
	counts := make([]int, len(e.shards))
	for id := 0; id < n; id++ {
		h := hashState(ts.State(states[id*stride : (id+1)*stride]))
		hashes[id] = h
		owners[id] = uint8(h & e.mask)
		counts[h&e.mask]++
	}
	for k, x := range e.shards {
		x.reserve(counts[k])
	}
	for id := 0; id < n; id++ {
		s := states[id*stride : (id+1)*stride]
		aid, err := g.arena.append(s, hashes[id])
		if err != nil || int(aid) != id {
			return 0, false
		}
		x := e.shards[owners[id]]
		_, pos, _ := x.probe(hashes[id], func(int32) (bool, error) { return false, nil })
		x.set(pos, int32(id)+1)
	}
	for i, id := range frontier {
		fOwners[i] = owners[id]
	}
	g.parentState = parentState
	g.parentRule = parentRule
	g.adj = adj
	e.frontier = frontier
	e.fOwners = fOwners
	e.level = level
	return level, true
}
