// Vacuity pre-pruning: the static dataflow layer's abstract
// reachability fixpoint decides, before any exploration, whether a
// property's trigger can fire at all. A NeverFires property whose match
// pattern covers no statically-fireable rule can never be violated; a
// Response property whose trigger covers none can never incur an
// obligation. Both hold vacuously — CheckAll skips exploring them and
// returns the static witness instead, unless Options.NoVacuityPrune
// asks for the full run. The abstraction over-approximates fireability,
// so pruning is sound: a skipped property is one the explorer would
// have verified.
package mc

import (
	"fmt"

	"prochecker/internal/dataflow"
	"prochecker/internal/ts"
)

// StaticReach runs the dataflow layer's abstract reachability fixpoint
// over the system: the set of rules that can statically fire. The
// result is valid for the system's current generation.
func StaticReach(sys *ts.System) *dataflow.RuleReach {
	return dataflow.FireableRules(sys)
}

// Vacuous reports whether prop holds vacuously over the abstract
// reachability result — its trigger matches no statically-fireable rule
// — along with the static witness to record in place of a trace.
// Invariants are never vacuous: their obligation is a state predicate,
// not an event.
func Vacuous(reach *dataflow.RuleReach, sys *ts.System, prop Property) (bool, string) {
	matchesFireable := func(match func(string) bool) bool {
		for _, r := range sys.Rules() {
			if match(r.Name) && reach.Fireable[r.Name] {
				return true
			}
		}
		return false
	}
	switch p := prop.(type) {
	case NeverFires:
		if p.Match == nil || matchesFireable(p.Match) {
			return false, ""
		}
		return true, fmt.Sprintf("no rule matching the never-fires pattern is statically fireable (%s)", reach.Witness())
	case Response:
		if p.Trigger == nil || matchesFireable(p.Trigger) {
			return false, ""
		}
		return true, fmt.Sprintf("no rule matching the response trigger is statically fireable (%s)", reach.Witness())
	}
	return false, ""
}

// vacuousResult builds the pruned stand-in verdict for a statically
// vacuous property.
func vacuousResult(prop Property, witness string) Result {
	return Result{
		Property:       prop.Name(),
		Kind:           prop.kind(),
		Verified:       true,
		Vacuous:        true,
		VacuityWitness: witness,
	}
}
