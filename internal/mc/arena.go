// The exploration storage layer: interned states live in an append-only
// compact binary arena (one canonical encoding per state, ids are dense
// arena positions) indexed by an open-addressing hash table, replacing
// the previous string-keyed stripe maps plus []ts.State slice. Every
// state costs its packed bytes plus one 4-byte index slot (at under 3/4
// load) and a bloom bit-budget of one byte, against well over 80 bytes
// per state for the map-based design (string headers, bucket overhead,
// per-state slice allocations, a second copy of every state as its own
// map key) — and the arena is
// segmented, so cold segments can spill to disk under a memory budget
// while membership stays answerable from RAM.
package mc

import (
	"fmt"
	"os"
	"runtime"

	"prochecker/internal/obs"
)

// maxArenaStates bounds interned states so ids always fit the id+1 /
// -(pending+1) packing of index slots. Far above any Options.MaxStates
// in use.
const maxArenaStates = 1<<30 - 2

// arenaSegmentTargetBytes sizes segments: small enough that spilling is
// incremental, large enough that a spilled-segment scan is one read.
const arenaSegmentTargetBytes = 256 << 10

// arenaSegment is one contiguous run of packed states. Sealed segments
// carry a bloom filter and a hash fence, both always resident, so a
// membership confirm against a spilled segment can often be refuted
// without touching disk.
type arenaSegment struct {
	data    []byte // nil once spilled
	off     int64  // offset in the spill file when spilled
	size    int64  // bytes of state data
	bloom   bloomFilter
	minHash uint64
	maxHash uint64
	spilled bool
}

// stateArena stores packed states append-only. It is written only by
// the serial phases of the explorer; the parallel phases read it
// concurrently (resident reads are lock-free slices, spilled reads go
// through File.ReadAt, which is safe for concurrent use).
type stateArena struct {
	stride  int // bytes per state (number of system variables)
	perSeg  int // states per segment, power of two
	segMask int
	segBits uint
	n       int

	segs []*arenaSegment

	// spillf is the anonymous spill file (created lazily, unlinked
	// immediately, closed by Release or the GC finalizer backstop).
	spillf     *os.File
	spillNext  int64
	spillBytes int64

	residentBytes int64 // resident state-data bytes
}

// newStateArena sizes segments for the given stride; segBytes overrides
// the default segment payload size (tests and tight budgets use small
// segments so spilling stays incremental).
func newStateArena(stride, segBytes int) *stateArena {
	if segBytes <= 0 {
		segBytes = arenaSegmentTargetBytes
	}
	s := max(stride, 1)
	per := 1
	for per*s < segBytes && per < 1<<18 {
		per <<= 1
	}
	per = max(per, 16)
	bits := uint(0)
	for 1<<bits != per {
		bits++
	}
	return &stateArena{stride: stride, perSeg: per, segMask: per - 1, segBits: bits}
}

// len reports the number of interned states.
func (a *stateArena) len() int { return a.n }

// append copies one packed state in and returns its id. The previous
// segment is sealed (bloom finalised) when a new one starts.
func (a *stateArena) append(s []byte, h uint64) (int32, error) {
	if a.n >= maxArenaStates {
		return 0, fmt.Errorf("mc: state arena full at %d states", a.n)
	}
	si := a.n >> a.segBits
	if si == len(a.segs) {
		seg := &arenaSegment{
			data:  make([]byte, 0, a.perSeg*a.stride),
			bloom: newBloomFilter(a.perSeg),
		}
		a.segs = append(a.segs, seg)
		a.residentBytes += int64(cap(seg.data))
	}
	seg := a.segs[si]
	seg.data = append(seg.data, s...)
	seg.size += int64(a.stride)
	seg.bloom.add(h)
	if seg.size == int64(a.stride) || h < seg.minHash {
		seg.minHash = h
	}
	if h > seg.maxHash {
		seg.maxHash = h
	}
	id := int32(a.n)
	a.n++
	return id, nil
}

// at returns the packed bytes of state id. Resident segments hand out a
// zero-copy view (callers must not mutate); spilled segments are read
// into a fresh buffer.
func (a *stateArena) at(id int32) ([]byte, error) {
	seg := a.segs[int(id)>>a.segBits]
	lo := (int(id) & a.segMask) * a.stride
	if !seg.spilled {
		return seg.data[lo : lo+a.stride : lo+a.stride], nil
	}
	buf := make([]byte, a.stride)
	if _, err := a.spillf.ReadAt(buf, seg.off+int64(lo)); err != nil {
		return nil, fmt.Errorf("mc: reading spilled state %d: %w", id, err)
	}
	return buf, nil
}

// confirm reports whether state id equals want (whose hash is h).
// Resident segments compare in place; spilled segments are pre-checked
// against the segment's hash fence and bloom filter so a refutable
// probe never touches disk, and only a surviving probe pays a ReadAt.
func (a *stateArena) confirm(id int32, want []byte, h uint64, spillReads *obs.Counter) (bool, error) {
	seg := a.segs[int(id)>>a.segBits]
	lo := (int(id) & a.segMask) * a.stride
	if !seg.spilled {
		return bytesEqual(seg.data[lo:lo+a.stride], want), nil
	}
	if h < seg.minHash || h > seg.maxHash || !seg.bloom.mayContain(h) {
		return false, nil
	}
	buf := make([]byte, a.stride)
	if _, err := a.spillf.ReadAt(buf, seg.off+int64(lo)); err != nil {
		return false, fmt.Errorf("mc: confirming spilled state %d: %w", id, err)
	}
	spillReads.Inc()
	return bytesEqual(buf, want), nil
}

// forEach streams states [from, n) in id order, loading each spilled
// segment with a single read. The callback's state view is only valid
// for that call. Iteration stops early when f returns false.
func (a *stateArena) forEach(from int32, f func(id int32, s []byte) bool) error {
	var scratch []byte
	for id := int(from); id < a.n; {
		si := id >> a.segBits
		seg := a.segs[si]
		data := seg.data
		if seg.spilled {
			if cap(scratch) < int(seg.size) {
				scratch = make([]byte, seg.size)
			}
			data = scratch[:seg.size]
			if _, err := a.spillf.ReadAt(data, seg.off); err != nil {
				return fmt.Errorf("mc: loading spilled segment %d: %w", si, err)
			}
		}
		end := min((si+1)<<a.segBits, a.n)
		for ; id < end; id++ {
			lo := (id & a.segMask) * a.stride
			if !f(int32(id), data[lo:lo+a.stride]) {
				return nil
			}
		}
	}
	return nil
}

// enforceBudget spills sealed segments, oldest first, until resident
// state bytes fit the budget. The open (newest) segment never spills —
// the frontier lives there. Returns the bytes moved to disk.
func (a *stateArena) enforceBudget(budget int64, dir string) (int64, error) {
	if budget <= 0 {
		return 0, nil
	}
	var moved int64
	for si := 0; si < len(a.segs)-1 && a.residentBytes > budget; si++ {
		seg := a.segs[si]
		if seg.spilled {
			continue
		}
		if a.spillf == nil {
			f, err := openSpillFile(dir)
			if err != nil {
				return moved, err
			}
			a.spillf = f
			// Backstop for graphs dropped from the engine cache without an
			// explicit Release: close the descriptor when the arena is
			// collected (the file itself is already unlinked).
			runtime.SetFinalizer(a, func(a *stateArena) { a.spillf.Close() })
		}
		if _, err := a.spillf.WriteAt(seg.data[:seg.size], a.spillNext); err != nil {
			return moved, fmt.Errorf("mc: spilling segment %d: %w", si, err)
		}
		seg.off = a.spillNext
		a.spillNext += seg.size
		a.residentBytes -= int64(cap(seg.data))
		moved += seg.size
		a.spillBytes += seg.size
		seg.data = nil
		seg.spilled = true
	}
	return moved, nil
}

// openSpillFile creates the anonymous spill file in dir (or the OS temp
// directory) and unlinks it immediately so the disk space is reclaimed
// when the descriptor closes, however the process exits.
func openSpillFile(dir string) (*os.File, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("mc: creating spill dir: %w", err)
	}
	f, err := os.CreateTemp(dir, "mc-arena-*.spill")
	if err != nil {
		return nil, fmt.Errorf("mc: creating spill file: %w", err)
	}
	if err := os.Remove(f.Name()); err != nil {
		f.Close()
		return nil, fmt.Errorf("mc: unlinking spill file: %w", err)
	}
	return f, nil
}

// release closes the spill file (idempotent).
func (a *stateArena) release() {
	if a.spillf != nil {
		runtime.SetFinalizer(a, nil)
		a.spillf.Close()
		a.spillf = nil
	}
}

// memBytes reports the arena's resident footprint: state data plus the
// always-resident per-segment bloom filters.
func (a *stateArena) memBytes() int64 {
	b := a.residentBytes
	for _, seg := range a.segs {
		b += int64(len(seg.bloom))
	}
	return b
}

// bytesEqual is bytes.Equal without the import (stride-sized inputs).
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bloomFilter is a fixed-size split bloom over 64-bit state hashes:
// 8 bits and 4 probes per expected entry (~2% false positives), derived
// from the two hash halves so no extra hashing is needed.
type bloomFilter []byte

// newBloomFilter sizes a filter for n expected entries.
func newBloomFilter(n int) bloomFilter {
	return make(bloomFilter, max(n, 8))
}

func (b bloomFilter) add(h uint64) {
	m := uint64(len(b)) * 8
	h1, h2 := h, h>>33|h<<31
	for i := uint64(0); i < 4; i++ {
		bit := (h1 + i*h2) % m
		b[bit>>3] |= 1 << (bit & 7)
	}
}

func (b bloomFilter) mayContain(h uint64) bool {
	m := uint64(len(b)) * 8
	h1, h2 := h, h>>33|h<<31
	for i := uint64(0); i < 4; i++ {
		bit := (h1 + i*h2) % m
		if b[bit>>3]&(1<<(bit&7)) == 0 {
			return false
		}
	}
	return true
}

// stateIndex is an open-addressing hash index over interned states:
// packed 4-byte slot values only (0 empty, id+1 committed, -(pending+1)
// for states interned mid-level whose global id is not assigned yet).
// No hashes are stored — identity is confirmed against the arena (or a
// pending entry's retained bytes) via the probe callback, and growth
// re-derives slot positions by re-hashing the states themselves in one
// sequential arena pass (levelExplorer.ensureShard). With small state
// strides the index is the residency floor under a memory budget, so
// 4 bytes per slot is what keeps the arena layout several times
// smaller than the map-based design it replaced.
type stateIndex struct {
	slots []int32
	used  int
}

// indexShardBits are the low hash bits reserved for shard selection;
// probe positions start above them so a shard's table is not clustered.
const indexShardBits = 6

func newStateIndex() *stateIndex {
	return &stateIndex{slots: make([]int32, 64)}
}

// reserve sizes the table for n total entries at under 3/4 load. Only
// valid while the table is empty — growth with live entries goes
// through levelExplorer.ensureShard, which re-hashes from the arena.
func (x *stateIndex) reserve(n int) {
	size := len(x.slots)
	for n*4 >= size*3 {
		size <<= 1
	}
	if size != len(x.slots) {
		x.slots = make([]int32, size)
	}
}

// probe walks the chain for h, calling eq on every occupied slot, and
// returns the matching slot value, or 0 with the insertion position.
func (x *stateIndex) probe(h uint64, eq func(v int32) (bool, error)) (int32, int, error) {
	mask := len(x.slots) - 1
	pos := int(h>>indexShardBits) & mask
	for {
		v := x.slots[pos]
		if v == 0 {
			return 0, pos, nil
		}
		ok, err := eq(v)
		if err != nil {
			return 0, pos, err
		}
		if ok {
			return v, pos, nil
		}
		pos = (pos + 1) & mask
	}
}

// set fills a slot previously returned by probe. Callers must have
// reserved capacity (reserve or levelExplorer.ensureShard) first.
func (x *stateIndex) set(pos int, v int32) {
	x.slots[pos] = v
	x.used++
}

// memBytes reports the table's resident footprint.
func (x *stateIndex) memBytes() int64 { return int64(len(x.slots)) * 4 }
