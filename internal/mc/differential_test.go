package mc

import (
	"fmt"
	"math/rand"
	"testing"

	"prochecker/internal/ts"
)

// Differential testing of the model checker: random small systems are
// checked both by mc and by an independent naive reference, and every
// counterexample is replayed step by step to confirm it is a real run of
// the system.

// randomSystem builds a deterministic pseudo-random guarded-command
// system from a seed.
func randomSystem(t *testing.T, seed int64) *ts.System {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sys := ts.NewSystem(fmt.Sprintf("rand-%d", seed))

	nVars := 2 + rng.Intn(2)
	domains := make([][]string, nVars)
	for v := 0; v < nVars; v++ {
		n := 2 + rng.Intn(3)
		dom := make([]string, n)
		for i := range dom {
			dom[i] = fmt.Sprintf("v%d_%d", v, i)
		}
		domains[v] = dom
		if err := sys.AddVar(fmt.Sprintf("x%d", v), dom...); err != nil {
			t.Fatal(err)
		}
	}
	nRules := 3 + rng.Intn(6)
	for r := 0; r < nRules; r++ {
		// Guard: conjunction over a random subset of variables.
		var guard ts.And
		for v := 0; v < nVars; v++ {
			if rng.Intn(2) == 0 {
				guard = append(guard, ts.Eq{
					Var:   fmt.Sprintf("x%d", v),
					Value: domains[v][rng.Intn(len(domains[v]))],
				})
			}
		}
		// Assigns: random subset.
		var assigns []ts.Assign
		for v := 0; v < nVars; v++ {
			if rng.Intn(2) == 0 {
				assigns = append(assigns, ts.Assign{
					Var:   fmt.Sprintf("x%d", v),
					Value: domains[v][rng.Intn(len(domains[v]))],
				})
			}
		}
		if err := sys.AddRule(ts.Rule{Name: fmt.Sprintf("r%d", r), Guard: guard, Assigns: assigns}); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

// naiveReachable computes the reachable state set with the slow
// interpreted API — an independent implementation path from the
// compiled-rule exploration inside Check.
func naiveReachable(sys *ts.System) map[string]ts.State {
	seen := map[string]ts.State{}
	init := sys.InitialState()
	seen[init.Key()] = init
	work := []ts.State{init}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for _, succ := range sys.Successors(cur) {
			if _, ok := seen[succ.State.Key()]; !ok {
				seen[succ.State.Key()] = succ.State
				work = append(work, succ.State)
			}
		}
	}
	return seen
}

// replayTrace re-executes a counterexample, asserting every step fires an
// enabled rule, and returns the final state.
func replayTrace(t *testing.T, sys *ts.System, tr *Trace) ts.State {
	t.Helper()
	cur := sys.InitialState()
	for i, step := range tr.Steps {
		rule, ok := sys.RuleByName(step.Rule)
		if !ok {
			t.Fatalf("step %d fires unknown rule %s", i, step.Rule)
		}
		if !sys.Enabled(rule, cur) {
			t.Fatalf("step %d: rule %s not enabled in %v", i, step.Rule, sys.Assignments(cur))
		}
		cur = sys.Apply(rule, cur)
	}
	return cur
}

func TestDifferentialInvariants(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		sys := randomSystem(t, seed)
		reach := naiveReachable(sys)

		// Invariant: a random (var, value) is never reached.
		rng := rand.New(rand.NewSource(seed + 1000))
		vars := sys.Vars()
		v := vars[rng.Intn(len(vars))]
		val := v.Domain[rng.Intn(len(v.Domain))]
		prop := Invariant{PropName: "diff", Holds: ts.Neq{Var: v.Name, Value: val}}

		// Reference verdict: does any reachable state violate?
		violated := false
		for _, s := range reach {
			if sys.Get(s, v.Name) == val {
				violated = true
				break
			}
		}

		res := Check(sys, prop, Options{})
		if res.Verified == violated {
			t.Fatalf("seed %d: mc says verified=%v, reference says violated=%v", seed, res.Verified, violated)
		}
		if violated {
			final := replayTrace(t, sys, res.Counterexample)
			if sys.Get(final, v.Name) != val {
				t.Fatalf("seed %d: counterexample does not end in a violating state", seed)
			}
		} else if res.StatesExplored != len(reach) {
			t.Fatalf("seed %d: mc explored %d states, reference %d", seed, res.StatesExplored, len(reach))
		}
	}
}

func TestDifferentialNeverFires(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		sys := randomSystem(t, seed)
		reach := naiveReachable(sys)
		target := "r1"

		// Reference: does r1 fire from any reachable state?
		fires := false
		rule, ok := sys.RuleByName(target)
		if ok {
			for _, s := range reach {
				if sys.Enabled(rule, s) {
					fires = true
					break
				}
			}
		}
		res := Check(sys, NeverFires{PropName: "diff", Match: func(n string) bool { return n == target }}, Options{})
		if res.Verified == fires {
			t.Fatalf("seed %d: mc verified=%v, reference fires=%v", seed, res.Verified, fires)
		}
		if fires {
			names := res.Counterexample.RuleNames()
			if names[len(names)-1] != target {
				t.Fatalf("seed %d: counterexample does not end with %s: %v", seed, target, names)
			}
			replayTrace(t, sys, res.Counterexample)
		}
	}
}

func TestDifferentialResponseCounterexamplesReplay(t *testing.T) {
	// Response semantics are harder to reference-check; at minimum every
	// reported lasso must be a genuine run.
	for seed := int64(200); seed < 240; seed++ {
		sys := randomSystem(t, seed)
		res := Check(sys, Response{
			PropName: "diff",
			Trigger:  func(n string) bool { return n == "r0" },
			Goal:     func(n string) bool { return n == "r2" },
		}, Options{})
		if res.Verified || res.Counterexample == nil {
			continue
		}
		replayTrace(t, sys, res.Counterexample)
		// The violation's trigger must actually appear in the trace.
		seenTrigger := false
		for _, s := range res.Counterexample.Steps {
			if s.Rule == "r0" {
				seenTrigger = true
			}
		}
		if !seenTrigger {
			t.Fatalf("seed %d: response counterexample lacks the trigger", seed)
		}
	}
}
