// The shared-frontier engine: property checks discharged on a cached
// StateGraph. Invariant and NeverFires become single ordered passes over
// the interned graph; Response reuses the interned states and edges for
// its pending-product lasso search. The cache is keyed by system
// identity plus ts.System.Generation(), so a CEGAR refinement (which
// mutates the system) invalidates exactly the graphs it must.
package mc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"prochecker/internal/obs"
	"prochecker/internal/resilience"
	"prochecker/internal/ts"
)

// DefaultEngine backs the package-level Check/CheckAll entry points. A
// process-wide cache is safe: entries are keyed by system pointer and
// generation, bounded by engineCacheEntries, and concurrent builds of
// the same graph are collapsed into one.
var DefaultEngine = NewEngine()

// engineCacheEntries bounds the graph cache; the oldest entry is evicted
// beyond it. A CEGAR catalogue run keeps one graph per live refinement
// clone, which stays far below this.
const engineCacheEntries = 32

// graphEntry is one cache slot; ready is closed when the build finishes.
type graphEntry struct {
	gen       uint64
	maxStates int
	ready     chan struct{}
	graph     *StateGraph
	err       error
}

// Engine checks properties against cached shared-exploration graphs.
type Engine struct {
	mu        sync.Mutex
	cache     map[*ts.System]*graphEntry
	order     []*ts.System // insertion order for eviction
	hits      int
	builds    int
	evictions int
}

// NewEngine returns an engine with an empty graph cache. Most callers
// should use the package-level functions (and thus DefaultEngine);
// benchmarks build fresh engines to time cold explorations.
func NewEngine() *Engine {
	return &Engine{cache: make(map[*ts.System]*graphEntry)}
}

// CacheStats reports cache hits (a check served by an already-built or
// in-flight graph) and builds (explorations actually run).
func (e *Engine) CacheStats() (hits, builds int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits, e.builds
}

// CacheCounters reports the full cache-effectiveness triple: hits,
// misses (= graph builds) and evictions of the bounded LRU order — the
// numbers the BENCH_mc series and the obs registry record.
func (e *Engine) CacheCounters() (hits, misses, evictions int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits, e.builds, e.evictions
}

// graphFor returns the cached graph for the system's current generation,
// building it (once, even under concurrent callers) when missing.
func (e *Engine) graphFor(ctx context.Context, sys *ts.System, opts Options) (*StateGraph, error) {
	gen := sys.Generation()
	maxStates := opts.maxStates()
	reg := obs.FromContext(ctx).Metrics()

	e.mu.Lock()
	ent := e.cache[sys]
	if ent != nil && ent.gen == gen && ent.maxStates == maxStates {
		e.hits++
		e.mu.Unlock()
		reg.Counter("mc.graph_cache_hits").Inc()
		select {
		case <-ent.ready:
		case <-ctx.Done():
			return nil, fmt.Errorf("mc: waiting for shared exploration: %w", resilience.ErrCancelled)
		}
		return ent.graph, ent.err
	}
	ent = &graphEntry{gen: gen, maxStates: maxStates, ready: make(chan struct{})}
	if _, replacing := e.cache[sys]; !replacing {
		e.order = append(e.order, sys)
		if len(e.order) > engineCacheEntries {
			delete(e.cache, e.order[0])
			e.order = e.order[1:]
			e.evictions++
			reg.Counter("mc.graph_cache_evictions").Inc()
		}
	}
	e.cache[sys] = ent
	e.builds++
	e.mu.Unlock()
	reg.Counter("mc.graph_cache_misses").Inc()

	ent.graph, ent.err = buildGraph(ctx, sys, opts)
	if ent.err != nil {
		// Do not poison the cache: a cancelled or failed build must not
		// answer later calls that arrive with a live context.
		e.mu.Lock()
		if e.cache[sys] == ent {
			delete(e.cache, sys)
			for i, s := range e.order {
				if s == sys {
					e.order = append(e.order[:i], e.order[i+1:]...)
					break
				}
			}
		}
		e.mu.Unlock()
	}
	close(ent.ready)
	return ent.graph, ent.err
}

// CheckContext verifies one property on the shared graph. Exploration
// that hits Options.MaxStates returns the truncated Result alongside an
// error wrapping resilience.ErrBudgetExhausted; cancellation returns an
// error wrapping resilience.ErrCancelled.
func (e *Engine) CheckContext(ctx context.Context, sys *ts.System, prop Property, opts Options) (Result, error) {
	res := Result{Property: prop.Name(), Kind: prop.kind()}
	if reg := obs.FromContext(ctx).Metrics(); reg != nil {
		start := time.Now()
		defer func() {
			reg.Histogram("mc.check_ms", nil).Observe(obs.DurMS(time.Since(start)))
			reg.Counter("mc.checks").Inc()
		}()
	}
	g, err := e.graphFor(ctx, sys, opts)
	if err != nil {
		if resilience.Cancelled(err) {
			return res, err
		}
		// Rule compilation failed: same unverified result the sequential
		// checker reports, with the cause attached instead of swallowed.
		return res, fmt.Errorf("mc: checking %s: %w", prop.Name(), err)
	}
	switch p := prop.(type) {
	case Invariant:
		res, err = g.checkInvariant(p)
	case NeverFires:
		res = g.checkNeverFires(p)
	case Response:
		res, err = g.checkResponse(p, opts)
	default:
		return res, nil
	}
	if err != nil {
		// A spilled-segment read failed mid-check; surface the I/O error
		// rather than an unfounded verdict.
		return res, fmt.Errorf("mc: checking %s: %w", prop.Name(), err)
	}
	if res.Truncated {
		return res, fmt.Errorf("mc: checking %s: exploration truncated at %d states (budget %d): %w",
			prop.Name(), res.StatesExplored, opts.maxStates(), resilience.ErrBudgetExhausted)
	}
	return res, nil
}

// CheckAll verifies the properties concurrently, results in order.
func (e *Engine) CheckAll(sys *ts.System, props []Property, opts Options) []Result {
	out, _ := e.CheckAllContext(context.Background(), sys, props, opts)
	return out
}

// CheckAllContext fans the property list out over a bounded worker pool
// sharing one exploration. The result slice is indexed 1:1 with props —
// ordering is deterministic regardless of worker interleaving — and the
// aggregated error collects per-property budget exhaustion plus a single
// cancellation entry when the walk was cut short.
func (e *Engine) CheckAllContext(ctx context.Context, sys *ts.System, props []Property, opts Options) ([]Result, error) {
	out := make([]Result, len(props))
	perErr := make([]error, len(props))

	// Static vacuity pre-pass: properties whose trigger matches no
	// statically-fireable rule are discharged without exploration. The
	// fixpoint is linear in rules × rounds, negligible next to any
	// single exploration.
	pruned := make([]bool, len(props))
	if !opts.NoVacuityPrune && len(props) > 0 && ctx.Err() == nil {
		reach := StaticReach(sys)
		reg := obs.FromContext(ctx).Metrics()
		for i, p := range props {
			if v, witness := Vacuous(reach, sys, p); v {
				out[i] = vacuousResult(p, witness)
				pruned[i] = true
				reg.Counter("mc.vacuity_pruned").Inc()
			}
		}
	}

	workers := opts.workers()
	if workers > len(props) {
		workers = len(props)
	}

	if workers <= 1 {
		for i, p := range props {
			if pruned[i] {
				continue
			}
			if ctx.Err() != nil {
				break
			}
			out[i], perErr[i] = e.CheckContext(ctx, sys, p, opts)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					out[i], perErr[i] = e.CheckContext(ctx, sys, props[i], opts)
				}
			}()
		}
		for i := range props {
			if pruned[i] {
				continue
			}
			if ctx.Err() != nil {
				break
			}
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	var errs resilience.Collector
	completed := 0
	for i := range props {
		switch {
		case perErr[i] == nil && out[i].Property != "":
			completed++
		case perErr[i] != nil && !resilience.Cancelled(perErr[i]):
			completed++ // truncated results still carry a (partial) verdict
			errs.Add(perErr[i])
		}
	}
	if ctx.Err() != nil {
		errs.Add(fmt.Errorf("mc: catalogue stopped after %d of %d properties: %w",
			completed, len(props), resilience.ErrCancelled))
	}
	return out, errs.Err()
}

// checkInvariant discharges AG p in one ordered pass over the graph: the
// first state (in BFS intern order) violating the predicate is exactly
// the state the sequential explorer would have flagged, so the parent
// tree yields a byte-identical shortest counterexample. The pass streams
// the arena, so spilled segments are loaded once each, in order.
func (g *StateGraph) checkInvariant(p Invariant) (Result, error) {
	res := Result{Property: p.PropName, Kind: "invariant"}
	holds, err := g.Sys.CompileCond(p.Holds)
	if err != nil {
		return res, nil
	}
	violation := int32(-1)
	if err := g.forEachState(0, func(id int32, s ts.State) bool {
		if !holds(s) {
			violation = id
			return false
		}
		return true
	}); err != nil {
		return res, err
	}
	switch {
	case violation == 0:
		res.Counterexample = buildTrace(g.Sys, nil, -1)
		return res, nil
	case violation > 0:
		res.StatesExplored = int(violation) + 1
		res.Counterexample = buildTrace(g.Sys, g.pathTo(violation), -1)
		return res, nil
	}
	res.StatesExplored = g.NumStates()
	if g.Truncated {
		res.Truncated = true
		return res, nil
	}
	res.Verified = true
	return res, nil
}

// checkNeverFires scans states in BFS order and their edges in rule
// order — the sequential dequeue order — so the first matching firing
// and its counterexample are identical to the per-property exploration.
func (g *StateGraph) checkNeverFires(p NeverFires) Result {
	res := Result{Property: p.PropName, Kind: "never-fires"}
	// Precompile the match verdict per rule once; the pattern is a pure
	// function of the rule name, so no name is re-matched per state.
	matched := make([]bool, len(g.Rules))
	any := false
	for i := range g.Rules {
		matched[i] = p.Match(g.Rules[i].Name)
		any = any || matched[i]
	}
	if any {
		for id := range g.adj {
			for _, ed := range g.adj[id] {
				if !matched[ed.rule] {
					continue
				}
				res.StatesExplored = g.statesWhenProcessing(int32(id), ed.rule)
				path := append(g.pathTo(int32(id)), g.Rules[ed.rule].Name)
				res.Counterexample = buildTrace(g.Sys, path, -1)
				return res
			}
		}
	}
	res.StatesExplored = g.NumStates()
	if g.Truncated {
		res.Truncated = true
		return res
	}
	res.Verified = true
	return res
}

// checkResponse runs the pending-product lasso search over the interned
// graph: product nodes are (state id, pending) pairs resolved through a
// dense index instead of re-interning states, and edges come from the
// precomputed adjacency, so no guard is re-evaluated and no state is
// re-hashed. The product BFS and the pending-region DFS mirror the
// sequential implementation exactly.
func (g *StateGraph) checkResponse(p Response, opts Options) (Result, error) {
	res := Result{Property: p.PropName, Kind: "response"}
	if g.Truncated {
		// Missing adjacency beyond the frontier would masquerade as
		// deadlocks; a truncated graph cannot support the liveness search.
		res.Truncated = true
		res.StatesExplored = g.NumStates()
		return res, nil
	}
	trigger := make([]bool, len(g.Rules))
	goal := make([]bool, len(g.Rules))
	for i := range g.Rules {
		trigger[i] = p.Trigger(g.Rules[i].Name)
		if p.Goal != nil {
			goal[i] = p.Goal(g.Rules[i].Name)
		}
	}
	var goalSat []bool
	if p.GoalState != nil {
		f, err := g.Sys.CompileCond(p.GoalState)
		if err != nil {
			return res, nil
		}
		goalSat = make([]bool, g.NumStates())
		if err := g.forEachState(0, func(id int32, s ts.State) bool {
			goalSat[id] = f(s)
			return true
		}); err != nil {
			return res, err
		}
	}

	// Product interning: node id per (state id, pending bit), dense.
	nodeID := make([]int32, 2*g.NumStates())
	for i := range nodeID {
		nodeID[i] = -1
	}
	type pnode struct {
		sid     int32
		pending bool
	}
	type pedge struct {
		to   int32
		rule int32
	}
	var nodes []pnode
	var padj [][]pedge
	parent := []int32{-1}
	parentRule := []int32{-1}

	internNode := func(n pnode, from, rule int32) (int32, bool) {
		slot := 2 * n.sid
		if n.pending {
			slot++
		}
		if id := nodeID[slot]; id >= 0 {
			return id, false
		}
		id := int32(len(nodes))
		nodeID[slot] = id
		nodes = append(nodes, n)
		padj = append(padj, nil)
		if id > 0 {
			parent = append(parent, from)
			parentRule = append(parentRule, rule)
		}
		return id, true
	}

	startID, _ := internNode(pnode{sid: 0, pending: false}, -1, -1)
	queue := []int32{startID}
	maxStates := opts.maxStates()
	for len(queue) > 0 {
		if len(nodes) > maxStates {
			res.Truncated = true
			res.StatesExplored = len(nodes)
			return res, nil
		}
		id := queue[0]
		queue = queue[1:]
		n := nodes[id]
		for _, ed := range g.adj[n.sid] {
			pending := n.pending
			if trigger[ed.rule] {
				pending = true
			}
			if goal[ed.rule] {
				pending = false
			}
			if pending && goalSat != nil && goalSat[ed.to] {
				pending = false
			}
			nid, fresh := internNode(pnode{sid: ed.to, pending: pending}, id, ed.rule)
			padj[id] = append(padj[id], pedge{to: nid, rule: ed.rule})
			if fresh {
				queue = append(queue, nid)
			}
		}
	}
	res.StatesExplored = len(nodes)

	// nodePath reconstructs the rule path from the product start to id.
	nodePath := func(id int32) []string {
		var rev []string
		for cur := id; cur > 0 && parent[cur] >= 0; cur = parent[cur] {
			rev = append(rev, g.Rules[parentRule[cur]].Name)
		}
		out := make([]string, len(rev))
		for i := range rev {
			out[i] = rev[len(rev)-1-i]
		}
		return out
	}

	// Search the pending subgraph for a cycle or deadlock.
	// colour: 0 unvisited, 1 on stack, 2 done.
	colour := make([]uint8, len(nodes))
	type frame struct {
		id   int32
		next int
	}
	for rootID := range nodes {
		if !nodes[rootID].pending || colour[rootID] != 0 {
			continue
		}
		stack := []frame{{id: int32(rootID)}}
		colour[rootID] = 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if len(padj[f.id]) == 0 {
				path := nodePath(f.id)
				res.Counterexample = buildTrace(g.Sys, path, len(path))
				return res, nil
			}
			advanced := false
			for f.next < len(padj[f.id]) {
				ed := padj[f.id][f.next]
				f.next++
				if !nodes[ed.to].pending {
					continue // leaving the pending region discharges along this edge
				}
				switch colour[ed.to] {
				case 1:
					path := nodePath(f.id)
					loopEntry := len(nodePath(ed.to))
					if loopEntry > len(path) {
						loopEntry = len(path)
					}
					full := append(path, g.Rules[ed.rule].Name)
					res.Counterexample = buildTrace(g.Sys, full, loopEntry)
					return res, nil
				case 0:
					colour[ed.to] = 1
					stack = append(stack, frame{id: ed.to})
					advanced = true
				}
				if advanced {
					break
				}
			}
			if !advanced {
				colour[f.id] = 2
				stack = stack[:len(stack)-1]
			}
		}
	}
	res.Verified = true
	return res, nil
}

// ErrBudgetExhausted re-exports the resilience sentinel that CheckContext
// attaches to truncated explorations, so callers can errors.Is against
// the mc package alone.
var ErrBudgetExhausted = resilience.ErrBudgetExhausted

// IsBudgetExhausted reports whether err marks a truncated exploration.
func IsBudgetExhausted(err error) bool { return errors.Is(err, resilience.ErrBudgetExhausted) }
