// Package mc is the in-process symbolic model checker standing in for
// nuXmv: explicit-state reachability over the ts.System guarded-command
// IR. It supports three property classes, which together cover the
// paper's 62 properties:
//
//   - Invariant (AG p): a state predicate holds on every reachable state;
//   - NeverFires: safety over events — no reachable transition fires a
//     rule matching a pattern (used for "the UE never accepts a replayed
//     / plaintext / stale message" properties);
//   - Response (AG (trigger -> AF goal)): liveness — after a trigger
//     event, a goal event eventually happens on every path (used for
//     "the procedure completes" properties). Violations are reported as
//     lasso counterexamples (a path to a goal-free cycle or deadlock).
//
// Counterexamples carry the fired rules and their analysis tags so the
// CEGAR loop can hand adversary steps to the cryptographic protocol
// verifier.
package mc

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"prochecker/internal/ts"
)

// DefaultMaxStates bounds exploration; the threat-composed NAS models
// stay far below this.
const DefaultMaxStates = 2_000_000

// Property is anything the checker can verify.
type Property interface {
	Name() string
	kind() string
}

// Invariant asserts AG Holds.
type Invariant struct {
	PropName string
	Holds    ts.Cond
}

// Name implements Property.
func (p Invariant) Name() string { return p.PropName }
func (p Invariant) kind() string { return "invariant" }

// NeverFires asserts that no reachable transition fires a rule whose
// name matches.
type NeverFires struct {
	PropName string
	Match    func(ruleName string) bool
}

// Name implements Property.
func (p NeverFires) Name() string { return p.PropName }
func (p NeverFires) kind() string { return "never-fires" }

// Response asserts AG (trigger -> AF goal) over events: once a rule
// matching Trigger fires, some rule matching Goal must eventually fire on
// every continuation. A state condition may serve as goal instead.
type Response struct {
	PropName string
	Trigger  func(ruleName string) bool
	Goal     func(ruleName string) bool
	// GoalState, when non-nil, also discharges the obligation as soon as
	// a state satisfying it is reached.
	GoalState ts.Cond
}

// Name implements Property.
func (p Response) Name() string { return p.PropName }
func (p Response) kind() string { return "response" }

// Step is one transition of a counterexample.
type Step struct {
	Rule string
	// Tags is the fired rule's analysis metadata.
	Tags map[string]string
	// After is the state assignment after firing.
	After map[string]string
}

// Trace is a counterexample: a finite path, optionally closing into a
// lasso (LoopStart >= 0 indexes the step the suffix loops back to; -1
// for plain safety violations; LoopStart == len(Steps) marks a deadlock
// lasso, i.e. the trace ends in a state with no successors).
type Trace struct {
	Initial   map[string]string
	Steps     []Step
	LoopStart int
}

// String renders the trace compactly.
func (t *Trace) String() string {
	var b strings.Builder
	for i, s := range t.Steps {
		if t.LoopStart == i {
			b.WriteString("-- loop starts here --\n")
		}
		fmt.Fprintf(&b, "%2d. %s\n", i+1, s.Rule)
	}
	if t.LoopStart == len(t.Steps) && len(t.Steps) > 0 {
		b.WriteString("-- deadlock --\n")
	}
	return b.String()
}

// RuleNames lists the fired rules in order.
func (t *Trace) RuleNames() []string {
	out := make([]string, len(t.Steps))
	for i, s := range t.Steps {
		out[i] = s.Rule
	}
	return out
}

// Result is a verification outcome.
type Result struct {
	Property       string
	Kind           string
	Verified       bool
	Counterexample *Trace
	StatesExplored int
	// Truncated marks exploration that hit Options.MaxStates; Verified
	// is false then even without a counterexample (unknown).
	Truncated bool
	// Vacuous marks a property CheckAll discharged statically: its
	// trigger matches no statically-fireable rule, so it holds without
	// exploration (Verified is true, StatesExplored stays zero).
	Vacuous bool
	// VacuityWitness is the static argument recorded in place of a
	// trace when Vacuous is set.
	VacuityWitness string
}

// Options tunes the checker.
type Options struct {
	MaxStates int
	// Workers bounds the exploration worker pool and the property-level
	// parallelism of CheckAll; 0 means runtime.GOMAXPROCS(0).
	Workers int

	// Shards partitions the visited set and frontier across hash-owned
	// index shards. Rounded down to a power of two, capped at 64; 0 or 1
	// keeps a single shard. Sharding never changes results — state ids,
	// the parent tree and traces stay byte-identical to CheckSequential.
	Shards int
	// MemBudget bounds resident exploration state bytes; beyond it, cold
	// arena segments spill to disk (an unlinked temp file under
	// SpillDir). <= 0 disables spilling.
	MemBudget int64
	// SpillDir hosts the anonymous spill file (os.TempDir() when empty).
	SpillDir string
	// SpillSegmentBytes overrides the arena segment payload size (default
	// 256 KiB); smaller segments make spilling finer-grained under tight
	// budgets.
	SpillSegmentBytes int
	// SnapshotDir, when non-empty, checkpoints exploration at level
	// boundaries into CRC-checksummed snapshot files there and resumes
	// from the newest valid snapshot of the same system on the next
	// build.
	SnapshotDir string
	// SnapshotEvery checkpoints every Nth completed level (default 1);
	// the final level is always checkpointed.
	SnapshotEvery int
	// NoVacuityPrune disables the static vacuity pre-pass in CheckAll:
	// every property is explored even when its trigger is statically
	// unreachable. The escape hatch for auditing the pruner.
	NoVacuityPrune bool
}

func (o Options) maxStates() int {
	if o.MaxStates > 0 {
		return o.MaxStates
	}
	return DefaultMaxStates
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// maxShards caps sharding so shard selection fits the low hash bits
// reserved by the state index (indexShardBits).
const maxShards = 64

func (o Options) shardCount() int {
	if o.Shards <= 1 {
		return 1
	}
	n := 1
	for n*2 <= min(o.Shards, maxShards) {
		n *= 2
	}
	return n
}

func (o Options) snapshotEvery() int {
	if o.SnapshotEvery > 0 {
		return o.SnapshotEvery
	}
	return 1
}

// Check verifies one property on the system using the shared-frontier
// engine: the reachability graph is explored once per system generation
// and cached, so repeated checks (the CEGAR loop, a catalogue run)
// discharge on the cached graph instead of re-exploring. Results are
// byte-identical to CheckSequential's, including counterexample traces.
func Check(sys *ts.System, prop Property, opts Options) Result {
	res, _ := DefaultEngine.CheckContext(context.Background(), sys, prop, opts)
	return res
}

// CheckContext is Check with cancellation and a typed budget error: an
// exploration that hits Options.MaxStates returns the truncated Result
// together with an error wrapping resilience.ErrBudgetExhausted instead
// of a silent incomplete verdict.
func CheckContext(ctx context.Context, sys *ts.System, prop Property, opts Options) (Result, error) {
	return DefaultEngine.CheckContext(ctx, sys, prop, opts)
}

// CheckSequential verifies one property with the original per-property
// exploration: a fresh explicit-state BFS per call, no sharing, no
// cache. It is the reference implementation the shared-frontier engine
// is differentially tested against, and the baseline the BENCH_mc
// series compares with.
func CheckSequential(sys *ts.System, prop Property, opts Options) Result {
	switch p := prop.(type) {
	case Invariant:
		return checkInvariant(sys, p, opts)
	case NeverFires:
		return checkNeverFires(sys, p, opts)
	case Response:
		return checkResponse(sys, p, opts)
	default:
		return Result{Property: prop.Name(), Kind: prop.kind(), Verified: false}
	}
}

// exploration bookkeeping for trace reconstruction.
type explorer struct {
	sys    *ts.System
	ids    map[string]int
	states []ts.State
	// parent[i] = (state id, rule index in sys.Rules()) that first
	// reached state i; -1 for the initial state.
	parentState []int
	parentRule  []string
}

func newExplorer(sys *ts.System) *explorer {
	return &explorer{sys: sys, ids: make(map[string]int)}
}

func (e *explorer) intern(s ts.State, fromID int, rule string) (int, bool) {
	key := s.Key()
	if id, ok := e.ids[key]; ok {
		return id, false
	}
	id := len(e.states)
	e.ids[key] = id
	e.states = append(e.states, s)
	e.parentState = append(e.parentState, fromID)
	e.parentRule = append(e.parentRule, rule)
	return id, true
}

// pathTo reconstructs the rule path from the initial state to id.
func (e *explorer) pathTo(id int) []string {
	var rev []string
	for cur := id; e.parentState[cur] >= 0 || e.parentRule[cur] != ""; cur = e.parentState[cur] {
		rev = append(rev, e.parentRule[cur])
		if e.parentState[cur] < 0 {
			break
		}
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// buildTrace converts a rule path into a Trace with state snapshots.
func buildTrace(sys *ts.System, rulePath []string, loopStart int) *Trace {
	cur := sys.InitialState()
	tr := &Trace{Initial: sys.Assignments(cur), LoopStart: loopStart}
	for _, name := range rulePath {
		r, ok := sys.RuleByName(name)
		if !ok {
			continue
		}
		cur = sys.Apply(r, cur)
		tr.Steps = append(tr.Steps, Step{Rule: name, Tags: r.Tags, After: sys.Assignments(cur)})
	}
	return tr
}

func checkInvariant(sys *ts.System, p Invariant, opts Options) Result {
	res := Result{Property: p.PropName, Kind: "invariant"}
	rules, err := sys.CompileRules()
	if err != nil {
		return res
	}
	holds, err := sys.CompileCond(p.Holds)
	if err != nil {
		return res
	}
	e := newExplorer(sys)
	init := sys.InitialState()
	initID, _ := e.intern(init, -1, "")
	if !holds(init) {
		res.Counterexample = buildTrace(sys, nil, -1)
		return res
	}
	queue := []int{initID}
	for len(queue) > 0 {
		if len(e.states) > opts.maxStates() {
			res.Truncated = true
			res.StatesExplored = len(e.states)
			return res
		}
		id := queue[0]
		queue = queue[1:]
		cur := e.states[id]
		for ri := range rules {
			r := &rules[ri]
			if !r.Enabled(cur) {
				continue
			}
			next := r.Apply(cur)
			nid, fresh := e.intern(next, id, r.Name)
			if !fresh {
				continue
			}
			if !holds(next) {
				res.StatesExplored = len(e.states)
				res.Counterexample = buildTrace(sys, e.pathTo(nid), -1)
				return res
			}
			queue = append(queue, nid)
		}
	}
	res.StatesExplored = len(e.states)
	res.Verified = true
	return res
}

func checkNeverFires(sys *ts.System, p NeverFires, opts Options) Result {
	res := Result{Property: p.PropName, Kind: "never-fires"}
	rules, err := sys.CompileRules()
	if err != nil {
		return res
	}
	// Precompute the match verdict per rule: the pattern is a pure
	// function of the rule name.
	matched := make([]bool, len(rules))
	for i := range rules {
		matched[i] = p.Match(rules[i].Name)
	}
	e := newExplorer(sys)
	init := sys.InitialState()
	initID, _ := e.intern(init, -1, "")
	queue := []int{initID}
	for len(queue) > 0 {
		if len(e.states) > opts.maxStates() {
			res.Truncated = true
			res.StatesExplored = len(e.states)
			return res
		}
		id := queue[0]
		queue = queue[1:]
		cur := e.states[id]
		for ri := range rules {
			r := &rules[ri]
			if !r.Enabled(cur) {
				continue
			}
			if matched[ri] {
				res.StatesExplored = len(e.states)
				path := append(e.pathTo(id), r.Name)
				res.Counterexample = buildTrace(sys, path, -1)
				return res
			}
			nid, fresh := e.intern(r.Apply(cur), id, r.Name)
			if fresh {
				queue = append(queue, nid)
			}
		}
	}
	res.StatesExplored = len(e.states)
	res.Verified = true
	return res
}

// checkResponse explores the product of the state space with a pending
// bit (obligation outstanding). A violation is a reachable pending node
// that can reach a pending cycle or a pending deadlock — a run where the
// goal never happens.
func checkResponse(sys *ts.System, p Response, opts Options) Result {
	res := Result{Property: p.PropName, Kind: "response"}

	rules, err := sys.CompileRules()
	if err != nil {
		return res
	}
	trigger := make([]bool, len(rules))
	goal := make([]bool, len(rules))
	for i := range rules {
		trigger[i] = p.Trigger(rules[i].Name)
		if p.Goal != nil {
			goal[i] = p.Goal(rules[i].Name)
		}
	}
	var goalStateFn func(ts.State) bool
	if p.GoalState != nil {
		f, err := sys.CompileCond(p.GoalState)
		if err != nil {
			return res
		}
		goalStateFn = f
	}

	type node struct {
		sid     int
		pending bool
	}
	e := newExplorer(sys)
	init := sys.InitialState()
	initSID, _ := e.intern(init, -1, "")

	// Product exploration.
	type edge struct {
		to   int
		rule string
	}
	nodeIDs := map[node]int{}
	var nodes []node
	var adj [][]edge
	parent := []int{-1}
	parentRule := []string{""}

	internNode := func(n node, from int, rule string) (int, bool) {
		if id, ok := nodeIDs[n]; ok {
			return id, false
		}
		id := len(nodes)
		nodeIDs[n] = id
		nodes = append(nodes, n)
		adj = append(adj, nil)
		if id > 0 {
			parent = append(parent, from)
			parentRule = append(parentRule, rule)
		}
		return id, true
	}

	goalState := func(s ts.State) bool {
		return goalStateFn != nil && goalStateFn(s)
	}

	start := node{sid: initSID, pending: false}
	startID, _ := internNode(start, -1, "")
	queue := []int{startID}
	for len(queue) > 0 {
		if len(nodes) > opts.maxStates() {
			res.Truncated = true
			res.StatesExplored = len(nodes)
			return res
		}
		id := queue[0]
		queue = queue[1:]
		n := nodes[id]
		st := e.states[n.sid]
		for ri := range rules {
			r := &rules[ri]
			if !r.Enabled(st) {
				continue
			}
			next := r.Apply(st)
			pending := n.pending
			if trigger[ri] {
				pending = true
			}
			if goal[ri] {
				pending = false
			}
			if pending && goalState(next) {
				pending = false
			}
			sid, _ := e.intern(next, n.sid, r.Name)
			nid, fresh := internNode(node{sid: sid, pending: pending}, id, r.Name)
			adj[id] = append(adj[id], edge{to: nid, rule: r.Name})
			if fresh {
				queue = append(queue, nid)
			}
		}
	}
	res.StatesExplored = len(nodes)

	// Search the pending subgraph for a cycle or deadlock.
	// colour: 0 unvisited, 1 on stack, 2 done.
	colour := make([]uint8, len(nodes))
	type frame struct {
		id   int
		next int
	}
	for rootID, root := range nodes {
		if !root.pending || colour[rootID] != 0 {
			continue
		}
		stack := []frame{{id: rootID}}
		colour[rootID] = 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			// Deadlock: pending node with no successors at all.
			if len(adj[f.id]) == 0 {
				path := nodePath(parent, parentRule, f.id)
				res.Counterexample = buildTrace(sys, path, len(path))
				return res
			}
			advanced := false
			for f.next < len(adj[f.id]) {
				ed := adj[f.id][f.next]
				f.next++
				if !nodes[ed.to].pending {
					continue // leaving the pending region discharges along this edge
				}
				switch colour[ed.to] {
				case 1:
					// Pending cycle found: build lasso.
					path := nodePath(parent, parentRule, f.id)
					loopEntry := indexOfNode(parent, parentRule, ed.to, path)
					full := append(path, ed.rule)
					res.Counterexample = buildTrace(sys, full, loopEntry)
					return res
				case 0:
					colour[ed.to] = 1
					stack = append(stack, frame{id: ed.to})
					advanced = true
				}
				if advanced {
					break
				}
			}
			if !advanced {
				colour[f.id] = 2
				stack = stack[:len(stack)-1]
			}
		}
	}
	res.Verified = true
	return res
}

// nodePath reconstructs the rule path from the product start node to id.
func nodePath(parent []int, parentRule []string, id int) []string {
	var rev []string
	for cur := id; cur > 0 && parent[cur] >= 0; cur = parent[cur] {
		rev = append(rev, parentRule[cur])
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// indexOfNode finds where the loop-target node's path length sits within
// the counterexample path, approximating the lasso entry point.
func indexOfNode(parent []int, parentRule []string, id int, path []string) int {
	depth := len(nodePath(parent, parentRule, id))
	if depth > len(path) {
		return len(path)
	}
	return depth
}

// CheckAll verifies a list of properties concurrently on the shared
// reachability graph, returning results in property order.
func CheckAll(sys *ts.System, props []Property, opts Options) []Result {
	out, _ := DefaultEngine.CheckAllContext(context.Background(), sys, props, opts)
	return out
}

// CheckAllContext is CheckAll with cancellation and aggregated typed
// errors (budget exhaustion per property, a single cancellation entry
// when the catalogue walk is cut short).
func CheckAllContext(ctx context.Context, sys *ts.System, props []Property, opts Options) ([]Result, error) {
	return DefaultEngine.CheckAllContext(ctx, sys, props, opts)
}

// CheckAllSequential is the pre-shared-frontier batch path: one fresh
// exploration per property, strictly in order. Kept as the differential
// and benchmark baseline.
func CheckAllSequential(sys *ts.System, props []Property, opts Options) []Result {
	out := make([]Result, 0, len(props))
	for _, p := range props {
		out = append(out, CheckSequential(sys, p, opts))
	}
	return out
}
