// Package trace defines ProChecker's information-rich execution log: the
// record kinds the instrumentation emits (function entry/exit, global
// variable values, local variable values, test-case boundaries), a
// concurrency-safe Recorder the instrumented implementations write to, and
// a line-oriented text serialisation with a parser.
//
// The text format matches the paper's running example (Figure 3(d)):
//
//	[TEST] tc_attach_accept_valid_mac
//	[FUNC] recv_attach_accept
//	[GLOBAL] emm_state = EMM_REGISTERED_INITIATED
//	[LOCAL] mac_valid = 1
//	[GLOBAL] emm_state = EMM_REGISTERED
//	[FUNC] send_attach_complete
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Kind classifies a log record.
type Kind uint8

// Record kinds. FuncEntry lines carry handler signatures the extractor
// matches against incoming/outgoing message signatures; Global lines carry
// protocol state; Local lines carry sanity-check condition variables.
const (
	KindFuncEntry Kind = iota + 1
	KindFuncExit
	KindGlobal
	KindLocal
	KindTestCase
	KindNote
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindFuncEntry:
		return "FUNC"
	case KindFuncExit:
		return "EXIT"
	case KindGlobal:
		return "GLOBAL"
	case KindLocal:
		return "LOCAL"
	case KindTestCase:
		return "TEST"
	case KindNote:
		return "NOTE"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// kindFromTag parses a serialized tag back into a Kind.
func kindFromTag(tag string) (Kind, bool) {
	switch tag {
	case "FUNC":
		return KindFuncEntry, true
	case "EXIT":
		return KindFuncExit, true
	case "GLOBAL":
		return KindGlobal, true
	case "LOCAL":
		return KindLocal, true
	case "TEST":
		return KindTestCase, true
	case "NOTE":
		return KindNote, true
	default:
		return 0, false
	}
}

// Record is one line of the information-rich log.
type Record struct {
	Kind Kind
	// Name is the function signature (FuncEntry/FuncExit), the variable
	// name (Global/Local), the test-case name (TestCase) or free text
	// (Note).
	Name string
	// Value is the variable value for Global/Local records, empty
	// otherwise.
	Value string
}

// String renders the record in the on-disk line format.
func (r Record) String() string {
	switch r.Kind {
	case KindGlobal, KindLocal:
		return fmt.Sprintf("[%s] %s = %s", r.Kind, r.Name, r.Value)
	default:
		return fmt.Sprintf("[%s] %s", r.Kind, r.Name)
	}
}

// Log is an ordered sequence of records — the unit the model extractor
// consumes.
type Log []Record

// Render serialises the log in the line format.
func (l Log) Render() string {
	var b strings.Builder
	for _, r := range l {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Parse reads a serialised log. Unrecognised or blank lines are skipped,
// mirroring how the paper's extractor tolerates interleaved output from
// un-instrumented code.
func Parse(r io.Reader) (Log, error) {
	var log Log
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		rec, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		log = append(log, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scanning log: %w", err)
	}
	return log, nil
}

// ParseString is Parse over an in-memory string.
func ParseString(s string) (Log, error) {
	return Parse(strings.NewReader(s))
}

func parseLine(line string) (Record, bool) {
	line = strings.TrimSpace(line)
	if len(line) < 3 || line[0] != '[' {
		return Record{}, false
	}
	close := strings.IndexByte(line, ']')
	if close < 0 {
		return Record{}, false
	}
	kind, ok := kindFromTag(line[1:close])
	if !ok {
		return Record{}, false
	}
	rest := strings.TrimSpace(line[close+1:])
	rec := Record{Kind: kind}
	switch kind {
	case KindGlobal, KindLocal:
		name, value, found := strings.Cut(rest, "=")
		if !found {
			return Record{}, false
		}
		rec.Name = strings.TrimSpace(name)
		rec.Value = strings.TrimSpace(value)
	default:
		rec.Name = rest
	}
	if rec.Name == "" {
		return Record{}, false
	}
	return rec, true
}

// Recorder accumulates records from an instrumented implementation. The
// zero value is ready to use. It is safe for concurrent use, since NAS
// handlers and timers may fire from different goroutines.
type Recorder struct {
	mu      sync.Mutex
	records Log
}

// EnterFunc records entry into a handler with the given signature.
func (r *Recorder) EnterFunc(signature string) {
	r.append(Record{Kind: KindFuncEntry, Name: signature})
}

// ExitFunc records exit from a handler.
func (r *Recorder) ExitFunc(signature string) {
	r.append(Record{Kind: KindFuncExit, Name: signature})
}

// Global records the value of a global (state) variable.
func (r *Recorder) Global(name, value string) {
	r.append(Record{Kind: KindGlobal, Name: name, Value: value})
}

// GlobalBool records a boolean global as 0/1.
func (r *Recorder) GlobalBool(name string, v bool) {
	r.Global(name, boolVal(v))
}

// Local records the value of a local (condition) variable.
func (r *Recorder) Local(name, value string) {
	r.append(Record{Kind: KindLocal, Name: name, Value: value})
}

// LocalBool records a boolean local as 0/1, the convention the paper's
// logs use for sanity-check variables (mac_valid = 1).
func (r *Recorder) LocalBool(name string, v bool) {
	r.Local(name, boolVal(v))
}

// LocalInt records an integer local.
func (r *Recorder) LocalInt(name string, v int) {
	r.Local(name, fmt.Sprintf("%d", v))
}

// TestCase records a test-case boundary.
func (r *Recorder) TestCase(name string) {
	r.append(Record{Kind: KindTestCase, Name: name})
}

// Note records free-text diagnostics ignored by the extractor.
func (r *Recorder) Note(text string) {
	r.append(Record{Kind: KindNote, Name: text})
}

func (r *Recorder) append(rec Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.records = append(r.records, rec)
}

// Snapshot returns a copy of the accumulated log.
func (r *Recorder) Snapshot() Log {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(Log, len(r.records))
	copy(out, r.records)
	return out
}

// Len returns the number of accumulated records.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.records)
}

// Reset discards all accumulated records.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.records = nil
}

func boolVal(v bool) string {
	if v {
		return "1"
	}
	return "0"
}
