package trace

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestRecordString(t *testing.T) {
	tests := []struct {
		rec  Record
		want string
	}{
		{Record{Kind: KindFuncEntry, Name: "recv_attach_accept"}, "[FUNC] recv_attach_accept"},
		{Record{Kind: KindFuncExit, Name: "recv_attach_accept"}, "[EXIT] recv_attach_accept"},
		{Record{Kind: KindGlobal, Name: "emm_state", Value: "EMM_REGISTERED"}, "[GLOBAL] emm_state = EMM_REGISTERED"},
		{Record{Kind: KindLocal, Name: "mac_valid", Value: "1"}, "[LOCAL] mac_valid = 1"},
		{Record{Kind: KindTestCase, Name: "tc_1"}, "[TEST] tc_1"},
		{Record{Kind: KindNote, Name: "hello"}, "[NOTE] hello"},
	}
	for _, tt := range tests {
		if got := tt.rec.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	log := Log{
		{Kind: KindTestCase, Name: "tc_attach"},
		{Kind: KindFuncEntry, Name: "recv_attach_accept"},
		{Kind: KindGlobal, Name: "emm_state", Value: "EMM_REGISTERED_INITIATED"},
		{Kind: KindLocal, Name: "mac_valid", Value: "1"},
		{Kind: KindGlobal, Name: "emm_state", Value: "EMM_REGISTERED"},
		{Kind: KindFuncEntry, Name: "send_attach_complete"},
		{Kind: KindFuncExit, Name: "recv_attach_accept"},
	}
	got, err := ParseString(log.Render())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(got) != len(log) {
		t.Fatalf("parsed %d records, want %d", len(got), len(log))
	}
	for i := range log {
		if got[i] != log[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], log[i])
		}
	}
}

func TestParseSkipsGarbage(t *testing.T) {
	in := strings.Join([]string{
		"random uninstrumented output",
		"",
		"[FUNC] recv_attach_accept",
		"[BOGUS] nope",
		"[GLOBAL] missing_equals_sign",
		"[GLOBAL] ok = 1",
		"[FUNC]",   // empty name
		"[FUNC] x", // fine
		"not [FUNC] at start",
	}, "\n")
	got, err := ParseString(in)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d records, want 3: %+v", len(got), got)
	}
	if got[0].Name != "recv_attach_accept" || got[1].Name != "ok" || got[2].Name != "x" {
		t.Errorf("unexpected records: %+v", got)
	}
}

func TestParseValueWithEquals(t *testing.T) {
	got, err := ParseString("[LOCAL] expr = a=b\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(got) != 1 || got[0].Name != "expr" || got[0].Value != "a=b" {
		t.Errorf("got %+v, want expr = a=b", got)
	}
}

func TestRecorderAccumulates(t *testing.T) {
	var r Recorder
	r.TestCase("tc")
	r.EnterFunc("recv_x")
	r.Global("emm_state", "EMM_NULL")
	r.GlobalBool("attached", false)
	r.LocalBool("mac_valid", true)
	r.LocalInt("retries", 3)
	r.Note("note")
	r.ExitFunc("recv_x")

	log := r.Snapshot()
	if len(log) != 8 {
		t.Fatalf("len = %d, want 8", len(log))
	}
	if log[3].Value != "0" || log[4].Value != "1" || log[5].Value != "3" {
		t.Errorf("bool/int encodings wrong: %+v", log[3:6])
	}
	if r.Len() != 8 {
		t.Errorf("Len = %d, want 8", r.Len())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", r.Len())
	}
}

func TestRecorderSnapshotIsCopy(t *testing.T) {
	var r Recorder
	r.EnterFunc("a")
	snap := r.Snapshot()
	r.EnterFunc("b")
	if len(snap) != 1 {
		t.Errorf("snapshot mutated by later writes: %+v", snap)
	}
}

func TestRecorderConcurrentSafe(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.EnterFunc("f")
				r.LocalBool("v", j%2 == 0)
			}
		}()
	}
	wg.Wait()
	if got := r.Len(); got != 1600 {
		t.Errorf("Len = %d, want 1600", got)
	}
}

func TestPropertyRoundTripArbitraryNames(t *testing.T) {
	// Any record whose name/value fit on one line survives a round trip.
	prop := func(nameSeed, valueSeed uint8) bool {
		name := "var_" + strings.Repeat("x", int(nameSeed%10)+1)
		value := "V" + strings.Repeat("y", int(valueSeed%10))
		log := Log{{Kind: KindGlobal, Name: name, Value: value}}
		got, err := ParseString(log.Render())
		return err == nil && len(got) == 1 && got[0] == log[0]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestKindStringUnknown(t *testing.T) {
	if got := Kind(99).String(); got != "KIND(99)" {
		t.Errorf("Kind(99).String() = %q", got)
	}
}
