package ltemodels

import (
	"testing"

	"prochecker/internal/core/fsmodel"
	"prochecker/internal/spec"
)

func TestMMEModelStructure(t *testing.T) {
	m := MME()
	if m.Initial != fsmodel.State(spec.MMEDeregistered) {
		t.Errorf("initial = %s", m.Initial)
	}
	if problems := m.Validate(); len(problems) != 0 {
		t.Errorf("MME model problems: %v", problems)
	}
	s, c, a, tr := m.Size()
	if s != 5 {
		t.Errorf("states = %d, want 5", s)
	}
	if c < 10 || a < 5 || tr < 15 {
		t.Errorf("model too small: %d conditions, %d actions, %d transitions", c, a, tr)
	}
}

func TestMMEAttachPathExists(t *testing.T) {
	m := MME()
	// Deregistered --attach_request--> common procedure with an
	// authentication challenge.
	found := false
	for _, tr := range m.OutgoingFrom(fsmodel.State(spec.MMEDeregistered)) {
		if tr.Cond.Message == spec.AttachRequest {
			found = true
			if len(tr.Actions) != 1 || tr.Actions[0] != spec.AuthRequest {
				t.Errorf("attach_request transition actions = %v", tr.Actions)
			}
		}
	}
	if !found {
		t.Error("no attach_request transition from deregistered")
	}
}

func TestLTEInspectorUEStructure(t *testing.T) {
	m := LTEInspectorUE()
	if m.Initial != UEDeregistered {
		t.Errorf("initial = %s", m.Initial)
	}
	if problems := m.Validate(); len(problems) != 0 {
		t.Errorf("UE model problems: %v", problems)
	}
	s, _, _, _ := m.Size()
	if s != 4 {
		t.Errorf("states = %d, want 4 (the coarse LTEInspector shape)", s)
	}
	// The coarse model carries no data predicates — that is its defining
	// contrast with the extracted models.
	for _, c := range m.Conditions() {
		if len(c.Predicates) != 0 {
			t.Errorf("coarse condition %s has predicates", c)
		}
	}
}

func TestUEStateMappingCoversCoarseStates(t *testing.T) {
	mapping := UEStateMapping()
	for _, s := range LTEInspectorUE().States() {
		if len(mapping[s]) == 0 {
			t.Errorf("coarse state %s unmapped", s)
		}
	}
	// Sub-states are one-to-many.
	if len(mapping[UEDeregistered]) < 2 {
		t.Error("ue_deregistered should map onto multiple TS 24.301 states")
	}
}

func TestModelsHaveInternalTriggers(t *testing.T) {
	for name, m := range map[string]*fsmodel.FSM{"UE": LTEInspectorUE(), "MME": MME()} {
		found := false
		for _, tr := range m.Transitions() {
			if tr.Cond.Message == spec.InternalEvent {
				found = true
			}
		}
		if !found {
			t.Errorf("%s model lacks internal-event transitions", name)
		}
	}
}
