// Package ltemodels provides the hand-constructed models the paper relies
// on where no implementation source is available:
//
//   - MME: the network-side FSM derived by Hussain et al. (LTEInspector)
//     from the 3GPP standard, used as the peer machine when composing the
//     threat-instrumented model — the paper does the same because it has
//     no access to a core-network implementation;
//   - LTEInspectorUE: the coarse UE model of LTEInspector, the baseline
//     for the RQ2 refinement comparison and the Figure 8 timing
//     comparison;
//   - UEStateMapping: the state mapping from LTEInspector's UE states to
//     the TS 24.301 states the automated extraction produces.
package ltemodels

import (
	"prochecker/internal/core/fsmodel"
	"prochecker/internal/spec"
)

// LTEInspector UE state names, as used in that paper.
const (
	UEDeregistered   fsmodel.State = "ue_deregistered"
	UERegisterInit   fsmodel.State = "ue_register_initiated"
	UERegistered     fsmodel.State = "ue_registered"
	UEDeregInitiated fsmodel.State = "ue_dereg_initiated"
)

func t(from, to fsmodel.State, cond spec.MessageName, actions ...spec.MessageName) fsmodel.Transition {
	if len(actions) == 0 {
		actions = []spec.MessageName{spec.NullAction}
	}
	return fsmodel.Transition{
		From: from, To: to,
		Cond:    fsmodel.Condition{Message: cond},
		Actions: actions,
	}
}

// MME returns the network-side EMM machine (MMEᵘ): conditions are uplink
// messages, actions downlink ones; internal_event transitions model
// network-initiated procedures (paging, identification,
// re-authentication, detach).
func MME() *fsmodel.FSM {
	m := fsmodel.New("MME/LTEInspector", fsmodel.State(spec.MMEDeregistered))
	deregistered := fsmodel.State(spec.MMEDeregistered)
	commonProc := fsmodel.State(spec.MMECommonProcInit)
	waitAttach := fsmodel.State(spec.MMEWaitAttachCompl)
	registered := fsmodel.State(spec.MMERegistered)
	deregInit := fsmodel.State(spec.MMEDeregInitiated)

	for _, tr := range []fsmodel.Transition{
		t(deregistered, commonProc, spec.AttachRequest, spec.AuthRequest),
		t(commonProc, commonProc, spec.AuthResponse, spec.SecurityModeCommand),
		t(commonProc, commonProc, spec.AuthSyncFailure, spec.AuthRequest),
		t(commonProc, deregistered, spec.AuthMACFailure),
		t(commonProc, waitAttach, spec.SecurityModeComplet, spec.AttachAccept),
		t(commonProc, deregistered, spec.SecurityModeReject),
		t(waitAttach, registered, spec.AttachComplete),
		t(registered, registered, spec.GUTIRealloComplete),
		t(registered, registered, spec.TAURequest, spec.TAUAccept),
		t(registered, registered, spec.TAUComplete),
		t(registered, registered, spec.ServiceRequest, spec.ServiceAccept),
		t(registered, registered, spec.IdentityResponse),
		t(registered, deregistered, spec.DetachRequestUE, spec.DetachAccept),
		t(deregInit, deregistered, spec.DetachAccept),
		// Re-authentication of a registered UE.
		t(registered, commonProc, spec.InternalEvent, spec.AuthRequest),
		// Network-initiated procedures.
		t(registered, registered, spec.InternalEvent, spec.Paging),
		t(registered, registered, spec.InternalEvent, spec.IdentityRequest),
		t(registered, deregInit, spec.InternalEvent, spec.DetachRequestNW),
	} {
		m.AddTransition(tr)
	}
	return m
}

// LTEInspectorUE returns the coarse UE model (LTEᵘ) used as the RQ2/RQ3
// comparison baseline: message-level conditions, no data predicates, no
// sub-states.
func LTEInspectorUE() *fsmodel.FSM {
	m := fsmodel.New("UE/LTEInspector", UEDeregistered)
	for _, tr := range []fsmodel.Transition{
		t(UEDeregistered, UERegisterInit, spec.InternalEvent, spec.AttachRequest),
		t(UERegisterInit, UERegisterInit, spec.AuthRequest, spec.AuthResponse),
		t(UERegisterInit, UERegisterInit, spec.SecurityModeCommand, spec.SecurityModeComplet),
		t(UERegisterInit, UERegistered, spec.AttachAccept, spec.AttachComplete),
		t(UERegisterInit, UEDeregistered, spec.AttachReject),
		t(UERegisterInit, UEDeregistered, spec.AuthReject),
		t(UERegistered, UERegistered, spec.AuthRequest, spec.AuthResponse),
		t(UERegistered, UERegistered, spec.GUTIRealloCommand, spec.GUTIRealloComplete),
		t(UERegistered, UERegistered, spec.InternalEvent, spec.TAURequest),
		t(UERegistered, UERegistered, spec.TAUAccept, spec.TAUComplete),
		t(UERegistered, UEDeregistered, spec.TAUReject),
		t(UERegistered, UERegistered, spec.Paging, spec.ServiceRequest),
		t(UERegistered, UERegistered, spec.ServiceAccept),
		t(UERegistered, UERegistered, spec.IdentityRequest, spec.IdentityResponse),
		t(UEDeregistered, UEDeregistered, spec.IdentityRequest, spec.IdentityResponse),
		t(UERegistered, UEDeregistered, spec.DetachRequestNW, spec.DetachAccept),
		t(UERegistered, UEDeregInitiated, spec.InternalEvent, spec.DetachRequestUE),
		t(UEDeregInitiated, UEDeregistered, spec.DetachAccept),
	} {
		m.AddTransition(tr)
	}
	return m
}

// MME-side ESM (bearer management) states for the session-management
// layer composition.
const (
	MMEESMInactive        fsmodel.State = "MME_ESM_BEARER_INACTIVE"
	MMEESMActivatePending fsmodel.State = "MME_ESM_BEARER_ACTIVE_PENDING"
	MMEESMActive          fsmodel.State = "MME_ESM_BEARER_ACTIVE"
	MMEESMDeactPending    fsmodel.State = "MME_ESM_BEARER_INACTIVE_PENDING"
)

// MMEESM returns the network-side ESM machine used to compose the
// session-management layer's threat model (the EMM layer's MME() sibling
// for challenge C4's per-layer verification).
func MMEESM() *fsmodel.FSM {
	m := fsmodel.New("MME-ESM/handbuilt", MMEESMInactive)
	for _, tr := range []fsmodel.Transition{
		t(MMEESMInactive, MMEESMActivatePending, spec.PDNConnectivityReq, spec.ActDefaultBearerReq),
		// The admission check may also reject the request outright.
		t(MMEESMInactive, MMEESMInactive, spec.PDNConnectivityReq, spec.PDNConnectivityRej),
		t(MMEESMActivatePending, MMEESMActive, spec.ActDefaultBearerAcc),
		t(MMEESMActivatePending, MMEESMInactive, spec.ActDefaultBearerRej),
		t(MMEESMActive, MMEESMDeactPending, spec.InternalEvent, spec.DeactBearerRequest),
		t(MMEESMDeactPending, MMEESMInactive, spec.DeactBearerAccept),
		t(MMEESMActive, MMEESMActive, spec.InternalEvent, spec.ESMInformationReq),
		t(MMEESMActive, MMEESMActive, spec.ESMInformationRespon),
	} {
		m.AddTransition(tr)
	}
	return m
}

// UEESMInternal returns the UE-initiated ESM transitions merged into the
// session-management composition (starting PDN connectivity).
func UEESMInternal() []fsmodel.Transition {
	return []fsmodel.Transition{
		t(fsmodel.State(spec.BearerInactive), fsmodel.State(spec.BearerActivePending),
			spec.InternalEvent, spec.PDNConnectivityReq),
	}
}

// UEStateMapping maps LTEInspector's coarse UE states onto the TS 24.301
// states of the automatically extracted models (one-to-many where the
// extraction surfaces sub-states).
func UEStateMapping() fsmodel.StateMapping {
	return fsmodel.StateMapping{
		UEDeregistered: {
			fsmodel.State(spec.EMMDeregistered),
			fsmodel.State(spec.EMMDeregisteredAttachNeeded),
		},
		UERegisterInit: {
			fsmodel.State(spec.EMMRegisteredInitiated),
		},
		UERegistered: {
			fsmodel.State(spec.EMMRegistered),
			fsmodel.State(spec.EMMRegisteredNormalService),
			fsmodel.State(spec.EMMTAUInitiated),
			fsmodel.State(spec.EMMServiceReqInitiated),
		},
		UEDeregInitiated: {
			fsmodel.State(spec.EMMDeregInitiated),
		},
	}
}
