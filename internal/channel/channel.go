// Package channel models the radio link between UE and MME as two
// unidirectional channels, matching the paper's protocol model (Section
// III-B). Each direction can be placed under Dolev-Yao adversary control:
// every packet in transit may be passed, dropped, modified, or have
// adversary-chosen packets injected around it, and every packet that
// crosses a public channel is captured into the adversary's knowledge —
// the capture buffer that later feeds replays and the CPV's derivability
// queries.
package channel

import (
	"fmt"

	"prochecker/internal/nas"
)

// Direction identifies one of the two unidirectional channels.
type Direction uint8

// The two directions.
const (
	Uplink   Direction = iota + 1 // UE -> MME
	Downlink                      // MME -> UE
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Uplink:
		return "uplink"
	case Downlink:
		return "downlink"
	default:
		return fmt.Sprintf("direction(%d)", uint8(d))
	}
}

// Adversary decides the fate of each packet in transit. Implementations
// must be deterministic for reproducible runs.
type Adversary interface {
	// Intercept receives a packet in transit and returns the packets that
	// are actually delivered, in order. Return nil to drop, {p} to pass,
	// a modified packet to tamper, or extra packets to inject.
	Intercept(dir Direction, p nas.Packet) []nas.Packet
}

// AdversaryFunc adapts a function to the Adversary interface.
type AdversaryFunc func(dir Direction, p nas.Packet) []nas.Packet

// Intercept implements Adversary.
func (f AdversaryFunc) Intercept(dir Direction, p nas.Packet) []nas.Packet {
	return f(dir, p)
}

var _ Adversary = AdversaryFunc(nil)

// PassThrough is the benign adversary: every packet is delivered intact.
type PassThrough struct{}

// Intercept implements Adversary.
func (PassThrough) Intercept(_ Direction, p nas.Packet) []nas.Packet {
	return []nas.Packet{p}
}

var _ Adversary = PassThrough{}

// Pair is the bidirectional link: two unidirectional queues under one
// adversary, with full capture history.
type Pair struct {
	adv      Adversary
	queues   map[Direction][]nas.Packet
	captured map[Direction][]nas.Packet
	dropped  map[Direction]int
}

// NewPair builds a link under the given adversary; nil means PassThrough.
func NewPair(adv Adversary) *Pair {
	if adv == nil {
		adv = PassThrough{}
	}
	return &Pair{
		adv:      adv,
		queues:   map[Direction][]nas.Packet{Uplink: nil, Downlink: nil},
		captured: map[Direction][]nas.Packet{Uplink: nil, Downlink: nil},
		dropped:  map[Direction]int{},
	}
}

// SetAdversary swaps the adversary mid-run (e.g. capture phase first, then
// the active attack phase, as P1's two phases require).
func (p *Pair) SetAdversary(adv Adversary) {
	if adv == nil {
		adv = PassThrough{}
	}
	p.adv = adv
}

// Send places a packet on the given direction's channel. The adversary
// observes (captures) it and decides what is actually enqueued.
func (p *Pair) Send(dir Direction, pkt nas.Packet) {
	p.captured[dir] = append(p.captured[dir], clonePacket(pkt))
	delivered := p.adv.Intercept(dir, clonePacket(pkt))
	if len(delivered) == 0 {
		p.dropped[dir]++
		return
	}
	for _, d := range delivered {
		p.queues[dir] = append(p.queues[dir], clonePacket(d))
	}
}

// Inject places an adversary-crafted packet directly on a channel without
// it originating from either endpoint.
func (p *Pair) Inject(dir Direction, pkt nas.Packet) {
	p.queues[dir] = append(p.queues[dir], clonePacket(pkt))
}

// Recv pops the next packet from the given direction, reporting ok=false
// when the channel is empty.
func (p *Pair) Recv(dir Direction) (nas.Packet, bool) {
	q := p.queues[dir]
	if len(q) == 0 {
		return nas.Packet{}, false
	}
	pkt := q[0]
	p.queues[dir] = q[1:]
	return pkt, true
}

// Pending reports how many packets are queued in the given direction.
func (p *Pair) Pending(dir Direction) int { return len(p.queues[dir]) }

// Captured returns the adversary's capture history for a direction (every
// packet ever sent on it, before interception).
func (p *Pair) Captured(dir Direction) []nas.Packet {
	out := make([]nas.Packet, len(p.captured[dir]))
	for i, pkt := range p.captured[dir] {
		out[i] = clonePacket(pkt)
	}
	return out
}

// Dropped reports how many sends the adversary suppressed entirely.
func (p *Pair) Dropped(dir Direction) int { return p.dropped[dir] }

// Flush discards all queued packets in both directions (e.g. between
// conformance test cases).
func (p *Pair) Flush() {
	p.queues[Uplink] = nil
	p.queues[Downlink] = nil
}

func clonePacket(p nas.Packet) nas.Packet {
	out := p
	out.Payload = append([]byte(nil), p.Payload...)
	return out
}

// DropFilter is an adversary that surreptitiously drops packets matched by
// a predicate (the P3 selective-denial attacker, who infers the message
// type from metadata) and passes everything else.
type DropFilter struct {
	Dir Direction
	// Match decides whether a packet should be dropped. It may inspect
	// only metadata visible on the air (header, sequence, length).
	Match func(p nas.Packet) bool
	// Limit caps how many packets are dropped; 0 means unlimited.
	Limit int

	droppedSoFar int
}

// Intercept implements Adversary.
func (d *DropFilter) Intercept(dir Direction, p nas.Packet) []nas.Packet {
	if dir == d.Dir && d.Match != nil && d.Match(p) && (d.Limit == 0 || d.droppedSoFar < d.Limit) {
		d.droppedSoFar++
		return nil
	}
	return []nas.Packet{p}
}

// DroppedSoFar reports how many packets this filter has suppressed.
func (d *DropFilter) DroppedSoFar() int { return d.droppedSoFar }

var _ Adversary = (*DropFilter)(nil)

// Recorder is an adversary decorator that additionally invokes a callback
// for every packet it sees; useful for attack tooling that watches for a
// specific capture opportunity.
type Recorder struct {
	Inner  Adversary
	OnSeen func(dir Direction, p nas.Packet)
}

// Intercept implements Adversary.
func (r *Recorder) Intercept(dir Direction, p nas.Packet) []nas.Packet {
	if r.OnSeen != nil {
		r.OnSeen(dir, clonePacket(p))
	}
	inner := r.Inner
	if inner == nil {
		inner = PassThrough{}
	}
	return inner.Intercept(dir, p)
}

var _ Adversary = (*Recorder)(nil)
