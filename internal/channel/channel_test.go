package channel

import (
	"testing"

	"prochecker/internal/nas"
)

func pkt(seq uint8) nas.Packet {
	return nas.Packet{Header: nas.HeaderIntegrity, Seq: seq, Payload: []byte{seq}}
}

func TestPassThroughDelivers(t *testing.T) {
	p := NewPair(nil)
	p.Send(Uplink, pkt(1))
	got, ok := p.Recv(Uplink)
	if !ok || got.Seq != 1 {
		t.Fatalf("Recv = %+v, %v", got, ok)
	}
	if _, ok := p.Recv(Uplink); ok {
		t.Error("second Recv should be empty")
	}
}

func TestDirectionsIndependent(t *testing.T) {
	p := NewPair(nil)
	p.Send(Uplink, pkt(1))
	if _, ok := p.Recv(Downlink); ok {
		t.Error("uplink packet leaked to downlink")
	}
}

func TestFIFOOrder(t *testing.T) {
	p := NewPair(nil)
	for i := uint8(1); i <= 3; i++ {
		p.Send(Downlink, pkt(i))
	}
	for i := uint8(1); i <= 3; i++ {
		got, ok := p.Recv(Downlink)
		if !ok || got.Seq != i {
			t.Fatalf("Recv %d = %+v, %v", i, got, ok)
		}
	}
}

func TestCaptureRecordsEverythingEvenDropped(t *testing.T) {
	drop := &DropFilter{Dir: Uplink, Match: func(nas.Packet) bool { return true }}
	p := NewPair(drop)
	p.Send(Uplink, pkt(7))
	if p.Pending(Uplink) != 0 {
		t.Error("dropped packet still queued")
	}
	if got := p.Dropped(Uplink); got != 1 {
		t.Errorf("Dropped = %d, want 1", got)
	}
	cap := p.Captured(Uplink)
	if len(cap) != 1 || cap[0].Seq != 7 {
		t.Errorf("Captured = %+v, want the dropped packet", cap)
	}
}

func TestDropFilterLimit(t *testing.T) {
	drop := &DropFilter{Dir: Downlink, Match: func(nas.Packet) bool { return true }, Limit: 2}
	p := NewPair(drop)
	for i := uint8(0); i < 4; i++ {
		p.Send(Downlink, pkt(i))
	}
	if got := drop.DroppedSoFar(); got != 2 {
		t.Errorf("DroppedSoFar = %d, want 2", got)
	}
	if got := p.Pending(Downlink); got != 2 {
		t.Errorf("Pending = %d, want 2", got)
	}
}

func TestDropFilterOnlyItsDirection(t *testing.T) {
	drop := &DropFilter{Dir: Downlink, Match: func(nas.Packet) bool { return true }}
	p := NewPair(drop)
	p.Send(Uplink, pkt(1))
	if p.Pending(Uplink) != 1 {
		t.Error("uplink packet dropped by downlink filter")
	}
}

func TestInjectBypassesAdversary(t *testing.T) {
	drop := &DropFilter{Dir: Downlink, Match: func(nas.Packet) bool { return true }}
	p := NewPair(drop)
	p.Inject(Downlink, pkt(9))
	if got, ok := p.Recv(Downlink); !ok || got.Seq != 9 {
		t.Errorf("injected packet not delivered: %+v, %v", got, ok)
	}
	if len(p.Captured(Downlink)) != 0 {
		t.Error("injected packet entered capture history")
	}
}

func TestAdversaryFuncModifies(t *testing.T) {
	mod := AdversaryFunc(func(_ Direction, p nas.Packet) []nas.Packet {
		p.Seq = 42
		return []nas.Packet{p}
	})
	p := NewPair(mod)
	p.Send(Uplink, pkt(1))
	got, _ := p.Recv(Uplink)
	if got.Seq != 42 {
		t.Errorf("Seq = %d, want 42", got.Seq)
	}
	// Capture history holds the original, pre-modification packet.
	if cap := p.Captured(Uplink); cap[0].Seq != 1 {
		t.Errorf("captured Seq = %d, want original 1", cap[0].Seq)
	}
}

func TestAdversaryFuncInjectsExtra(t *testing.T) {
	dup := AdversaryFunc(func(_ Direction, p nas.Packet) []nas.Packet {
		return []nas.Packet{p, p}
	})
	p := NewPair(dup)
	p.Send(Downlink, pkt(3))
	if got := p.Pending(Downlink); got != 2 {
		t.Errorf("Pending = %d, want 2", got)
	}
}

func TestSetAdversarySwapsMidRun(t *testing.T) {
	p := NewPair(nil)
	p.Send(Uplink, pkt(1))
	p.SetAdversary(&DropFilter{Dir: Uplink, Match: func(nas.Packet) bool { return true }})
	p.Send(Uplink, pkt(2))
	if got := p.Pending(Uplink); got != 1 {
		t.Errorf("Pending = %d, want 1 (second send dropped)", got)
	}
	p.SetAdversary(nil)
	p.Send(Uplink, pkt(3))
	if got := p.Pending(Uplink); got != 2 {
		t.Errorf("Pending = %d, want 2 after reverting to pass-through", got)
	}
}

func TestFlushClearsQueuesNotCaptures(t *testing.T) {
	p := NewPair(nil)
	p.Send(Uplink, pkt(1))
	p.Send(Downlink, pkt(2))
	p.Flush()
	if p.Pending(Uplink) != 0 || p.Pending(Downlink) != 0 {
		t.Error("Flush left packets queued")
	}
	if len(p.Captured(Uplink)) != 1 || len(p.Captured(Downlink)) != 1 {
		t.Error("Flush erased capture history")
	}
}

func TestRecorderDecorator(t *testing.T) {
	var seen []uint8
	rec := &Recorder{OnSeen: func(_ Direction, p nas.Packet) { seen = append(seen, p.Seq) }}
	p := NewPair(rec)
	p.Send(Uplink, pkt(5))
	p.Send(Downlink, pkt(6))
	if len(seen) != 2 || seen[0] != 5 || seen[1] != 6 {
		t.Errorf("seen = %v, want [5 6]", seen)
	}
	if p.Pending(Uplink) != 1 || p.Pending(Downlink) != 1 {
		t.Error("recorder with nil inner should pass packets through")
	}
}

func TestClonePreventsAliasing(t *testing.T) {
	p := NewPair(nil)
	orig := pkt(1)
	p.Send(Uplink, orig)
	orig.Payload[0] = 0xFF // mutate after send
	got, _ := p.Recv(Uplink)
	if got.Payload[0] == 0xFF {
		t.Error("queued packet aliases caller's payload")
	}
	cap := p.Captured(Uplink)
	cap[0].Payload[0] = 0xEE
	if p.Captured(Uplink)[0].Payload[0] == 0xEE {
		t.Error("Captured returns aliased payloads")
	}
}

func TestDirectionString(t *testing.T) {
	if Uplink.String() != "uplink" || Downlink.String() != "downlink" {
		t.Error("direction strings wrong")
	}
	if Direction(9).String() != "direction(9)" {
		t.Error("unknown direction string wrong")
	}
}
