// Fault-injection adversaries: composable, deterministically seeded
// channel decorators modelling the noisy, hostile radio conditions the
// paper's Dolev-Yao adversary induces — probabilistic loss, payload
// corruption, duplication, reordering, and scripted per-step faults.
// Each satisfies Adversary, so they slot unchanged into conformance
// runs, testbed replays and the threat model; each is driven by its own
// seeded PRNG, so a run is byte-for-byte reproducible from its seed.
package channel

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"prochecker/internal/nas"
)

// FaultCounter is implemented by adversaries that can report how many
// faults they actually applied, for run summaries.
type FaultCounter interface {
	Faults() int
}

// Faults sums the fault counts of every FaultCounter in adv (walking
// into Chain stages); adversaries that cannot count contribute zero.
func Faults(adv Adversary) int {
	switch a := adv.(type) {
	case *Chain:
		n := 0
		for _, s := range a.Stages {
			n += Faults(s)
		}
		return n
	case FaultCounter:
		return a.Faults()
	default:
		return 0
	}
}

// FaultsByKind breaks the fault count down per fault kind ("drop",
// "corrupt", "dup", "reorder", "scheduled"), walking into Chain stages.
// Adversaries that injected nothing contribute no key, so a benign run
// yields an empty map.
func FaultsByKind(adv Adversary) map[string]int {
	out := make(map[string]int)
	addFaultsByKind(adv, out)
	return out
}

func addFaultsByKind(adv Adversary, out map[string]int) {
	add := func(kind string, n int) {
		if n > 0 {
			out[kind] += n
		}
	}
	switch a := adv.(type) {
	case *Chain:
		for _, s := range a.Stages {
			addFaultsByKind(s, out)
		}
	case *ProbDrop:
		add("drop", a.Faults())
	case *Corrupter:
		add("corrupt", a.Faults())
	case *Duplicator:
		add("dup", a.Faults())
	case *Reorderer:
		add("reorder", a.Faults())
	case *ScheduledFault:
		add("scheduled", a.Faults())
	case FaultCounter:
		add("other", a.Faults())
	}
}

// Chain composes adversaries into one: every packet emitted by stage i
// is fed through stage i+1, so a duplicate made early can still be
// corrupted or dropped later.
type Chain struct {
	Stages []Adversary
}

// Intercept implements Adversary.
func (c *Chain) Intercept(dir Direction, p nas.Packet) []nas.Packet {
	pkts := []nas.Packet{p}
	for _, stage := range c.Stages {
		var next []nas.Packet
		for _, q := range pkts {
			next = append(next, stage.Intercept(dir, q)...)
		}
		if len(next) == 0 {
			return nil
		}
		pkts = next
	}
	return pkts
}

var _ Adversary = (*Chain)(nil)

// matchDir reports whether a fault configured for want applies to dir;
// the zero Direction means both.
func matchDir(want, dir Direction) bool {
	return want == 0 || want == dir
}

// ProbDrop drops each matching packet independently with probability P —
// the lossy-link adversary.
type ProbDrop struct {
	Dir Direction // zero means both directions
	P   float64

	rng     *rand.Rand
	dropped int
}

// NewProbDrop builds a seeded probabilistic dropper.
func NewProbDrop(dir Direction, p float64, seed int64) *ProbDrop {
	return &ProbDrop{Dir: dir, P: p, rng: rand.New(rand.NewSource(seed))}
}

// Intercept implements Adversary.
func (d *ProbDrop) Intercept(dir Direction, p nas.Packet) []nas.Packet {
	if matchDir(d.Dir, dir) && d.rng.Float64() < d.P {
		d.dropped++
		return nil
	}
	return []nas.Packet{p}
}

// Faults implements FaultCounter.
func (d *ProbDrop) Faults() int { return d.dropped }

var _ Adversary = (*ProbDrop)(nil)

// Corrupter flips one random byte of the payload of each matching
// packet with probability P, modelling on-air bit errors and blind
// tampering. Header metadata is left intact (a real jammer corrupts the
// body it cannot parse); packets with empty payloads pass untouched.
type Corrupter struct {
	Dir Direction
	P   float64

	rng       *rand.Rand
	corrupted int
}

// NewCorrupter builds a seeded byte-corruption adversary.
func NewCorrupter(dir Direction, p float64, seed int64) *Corrupter {
	return &Corrupter{Dir: dir, P: p, rng: rand.New(rand.NewSource(seed))}
}

// Intercept implements Adversary.
func (c *Corrupter) Intercept(dir Direction, p nas.Packet) []nas.Packet {
	if matchDir(c.Dir, dir) && len(p.Payload) > 0 && c.rng.Float64() < c.P {
		out := p
		out.Payload = append([]byte(nil), p.Payload...)
		i := c.rng.Intn(len(out.Payload))
		// XOR with a non-zero mask so the byte always changes.
		out.Payload[i] ^= byte(1 + c.rng.Intn(255))
		c.corrupted++
		return []nas.Packet{out}
	}
	return []nas.Packet{p}
}

// Faults implements FaultCounter.
func (c *Corrupter) Faults() int { return c.corrupted }

var _ Adversary = (*Corrupter)(nil)

// Duplicator re-delivers each matching packet with probability P — the
// replaying relay that needs no protocol knowledge.
type Duplicator struct {
	Dir Direction
	P   float64

	rng        *rand.Rand
	duplicated int
}

// NewDuplicator builds a seeded duplication adversary.
func NewDuplicator(dir Direction, p float64, seed int64) *Duplicator {
	return &Duplicator{Dir: dir, P: p, rng: rand.New(rand.NewSource(seed))}
}

// Intercept implements Adversary.
func (d *Duplicator) Intercept(dir Direction, p nas.Packet) []nas.Packet {
	if matchDir(d.Dir, dir) && d.rng.Float64() < d.P {
		d.duplicated++
		return []nas.Packet{p, p}
	}
	return []nas.Packet{p}
}

// Faults implements FaultCounter.
func (d *Duplicator) Faults() int { return d.duplicated }

var _ Adversary = (*Duplicator)(nil)

// Reorderer delays packets to swap their delivery order: with
// probability P a matching packet is held back, and the next packet on
// the same direction is delivered ahead of it. A packet still held when
// the run ends is never delivered — indistinguishable, to the
// endpoints, from tail loss on a real air interface.
type Reorderer struct {
	Dir Direction
	P   float64

	rng       *rand.Rand
	held      map[Direction]*nas.Packet
	reordered int
}

// NewReorderer builds a seeded delay/reorder adversary.
func NewReorderer(dir Direction, p float64, seed int64) *Reorderer {
	return &Reorderer{
		Dir:  dir,
		P:    p,
		rng:  rand.New(rand.NewSource(seed)),
		held: make(map[Direction]*nas.Packet),
	}
}

// Intercept implements Adversary.
func (r *Reorderer) Intercept(dir Direction, p nas.Packet) []nas.Packet {
	if h := r.held[dir]; h != nil {
		r.held[dir] = nil
		return []nas.Packet{p, *h}
	}
	if matchDir(r.Dir, dir) && r.rng.Float64() < r.P {
		held := p
		r.held[dir] = &held
		r.reordered++
		return nil
	}
	return []nas.Packet{p}
}

// Faults implements FaultCounter.
func (r *Reorderer) Faults() int { return r.reordered }

var _ Adversary = (*Reorderer)(nil)

// FaultOp is one scripted fault a ScheduledFault applies.
type FaultOp uint8

// The scripted fault operations.
const (
	OpPass    FaultOp = iota // deliver untouched (explicit no-op)
	OpDrop                   // suppress the packet
	OpCorrupt                // flip one payload byte
	OpDup                    // deliver twice
)

// String implements fmt.Stringer.
func (o FaultOp) String() string {
	switch o {
	case OpPass:
		return "pass"
	case OpDrop:
		return "drop"
	case OpCorrupt:
		return "corrupt"
	case OpDup:
		return "dup"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ScheduledFault applies a scripted fault at exact step numbers: the
// Nth matching packet (counting from 0 across both directions unless
// Dir narrows it) suffers Schedule[N]. It is fully deterministic with
// no PRNG at all — the tool for reproducing a one-packet perturbation,
// e.g. "drop exactly the third downlink message".
type ScheduledFault struct {
	Dir Direction
	// Schedule maps the matching-packet index to the fault applied to
	// it; unscheduled steps pass untouched.
	Schedule map[int]FaultOp

	step    int
	applied int
}

// Intercept implements Adversary.
func (s *ScheduledFault) Intercept(dir Direction, p nas.Packet) []nas.Packet {
	if !matchDir(s.Dir, dir) {
		return []nas.Packet{p}
	}
	op, scripted := s.Schedule[s.step]
	s.step++
	if !scripted || op == OpPass {
		return []nas.Packet{p}
	}
	s.applied++
	switch op {
	case OpDrop:
		return nil
	case OpCorrupt:
		out := p
		out.Payload = append([]byte(nil), p.Payload...)
		if len(out.Payload) > 0 {
			out.Payload[0] ^= 0xFF
		}
		return []nas.Packet{out}
	case OpDup:
		return []nas.Packet{p, p}
	default:
		return []nas.Packet{p}
	}
}

// Faults implements FaultCounter.
func (s *ScheduledFault) Faults() int { return s.applied }

var _ Adversary = (*ScheduledFault)(nil)

// FaultConfig declares a seeded fault mix. The zero value is benign.
type FaultConfig struct {
	// Seed drives every stage's PRNG; two runs with equal configs
	// produce identical fault decisions.
	Seed int64
	// Per-fault probabilities in [0, 1]; zero disables the stage.
	Drop      float64
	Corrupt   float64
	Duplicate float64
	Reorder   float64
}

// Enabled reports whether any fault stage is active.
func (c FaultConfig) Enabled() bool {
	return c.Drop > 0 || c.Corrupt > 0 || c.Duplicate > 0 || c.Reorder > 0
}

// String renders the config in ParseFaultSpec's syntax.
func (c FaultConfig) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("drop", c.Drop)
	add("corrupt", c.Corrupt)
	add("dup", c.Duplicate)
	add("reorder", c.Reorder)
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Build assembles the adversary chain for this config: reorder first
// (it restores packet multiplicity), then duplication, corruption and
// loss, each stage on its own seed-derived PRNG so adding one stage
// does not perturb another's decisions.
func (c FaultConfig) Build() Adversary {
	ch := &Chain{}
	if c.Reorder > 0 {
		ch.Stages = append(ch.Stages, NewReorderer(0, c.Reorder, c.Seed^0x5eed0001))
	}
	if c.Duplicate > 0 {
		ch.Stages = append(ch.Stages, NewDuplicator(0, c.Duplicate, c.Seed^0x5eed0002))
	}
	if c.Corrupt > 0 {
		ch.Stages = append(ch.Stages, NewCorrupter(0, c.Corrupt, c.Seed^0x5eed0003))
	}
	if c.Drop > 0 {
		ch.Stages = append(ch.Stages, NewProbDrop(0, c.Drop, c.Seed^0x5eed0004))
	}
	return ch
}

// AdversaryFactory derives one adversary per conformance case: case i
// runs under Seed+i, so cases are mutually independent yet the whole
// suite replays identically from the base seed.
func (c FaultConfig) AdversaryFactory() func(caseIndex int) Adversary {
	return func(caseIndex int) Adversary {
		cfg := c
		cfg.Seed = c.Seed + int64(caseIndex)
		return cfg.Build()
	}
}

// ParseFaultSpec parses the CLI fault syntax: comma-separated
// key=probability pairs, e.g. "drop=0.05,corrupt=0.02,dup=0.01,
// reorder=0.1". Keys: drop, corrupt, dup (or duplicate), reorder (or
// delay). The seed is supplied separately.
func ParseFaultSpec(spec string, seed int64) (FaultConfig, error) {
	cfg := FaultConfig{Seed: seed}
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return cfg, fmt.Errorf("channel: fault spec %q: want key=prob, got %q", spec, part)
		}
		p, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return cfg, fmt.Errorf("channel: fault spec %q: bad probability %q: %v", spec, kv[1], err)
		}
		if p < 0 || p > 1 {
			return cfg, fmt.Errorf("channel: fault spec %q: probability %g outside [0,1]", spec, p)
		}
		switch key := strings.ToLower(kv[0]); key {
		case "drop":
			cfg.Drop = p
		case "corrupt":
			cfg.Corrupt = p
		case "dup", "duplicate":
			cfg.Duplicate = p
		case "reorder", "delay":
			cfg.Reorder = p
		default:
			return cfg, fmt.Errorf("channel: fault spec %q: unknown fault %q (want %s)",
				spec, key, strings.Join(faultKeys(), "|"))
		}
	}
	return cfg, nil
}

func faultKeys() []string {
	keys := []string{"drop", "corrupt", "dup", "reorder"}
	sort.Strings(keys)
	return keys
}
