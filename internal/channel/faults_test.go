package channel

import (
	"bytes"
	"fmt"
	"testing"

	"prochecker/internal/nas"
)

// mkPackets builds a deterministic stream of n distinct packets.
func mkPackets(n int) []nas.Packet {
	out := make([]nas.Packet, n)
	for i := range out {
		out[i] = nas.Packet{
			Header:  nas.HeaderPlain,
			Seq:     uint8(i),
			Payload: []byte{byte(i), byte(i + 1), byte(i + 2), byte(i + 3)},
		}
	}
	return out
}

// runThrough feeds the stream to adv on the downlink and renders the
// delivered packets into a comparable transcript.
func runThrough(adv Adversary, pkts []nas.Packet) string {
	var b bytes.Buffer
	for _, p := range pkts {
		for _, d := range adv.Intercept(Downlink, p) {
			fmt.Fprintf(&b, "%d:%x;", d.Seq, d.Payload)
		}
	}
	return b.String()
}

func TestProbDropIsSeededAndDeterministic(t *testing.T) {
	pkts := mkPackets(200)
	a := runThrough(NewProbDrop(0, 0.3, 7), pkts)
	b := runThrough(NewProbDrop(0, 0.3, 7), pkts)
	if a != b {
		t.Error("same seed produced different drop decisions")
	}
	c := runThrough(NewProbDrop(0, 0.3, 8), pkts)
	if a == c {
		t.Error("different seeds produced identical drop decisions (suspicious)")
	}
	d := NewProbDrop(0, 0.3, 7)
	runThrough(d, pkts)
	if d.Faults() == 0 || d.Faults() == len(pkts) {
		t.Errorf("dropped %d of %d packets at p=0.3", d.Faults(), len(pkts))
	}
}

func TestProbDropRespectsDirection(t *testing.T) {
	d := NewProbDrop(Uplink, 1.0, 1)
	if got := d.Intercept(Downlink, mkPackets(1)[0]); len(got) != 1 {
		t.Errorf("downlink packet intercepted by uplink-only dropper: %d delivered", len(got))
	}
	if got := d.Intercept(Uplink, mkPackets(1)[0]); len(got) != 0 {
		t.Errorf("uplink packet survived p=1.0 dropper")
	}
}

func TestCorrupterFlipsExactlyOneByte(t *testing.T) {
	c := NewCorrupter(0, 1.0, 3)
	orig := mkPackets(1)[0]
	out := c.Intercept(Downlink, orig)
	if len(out) != 1 {
		t.Fatalf("corrupter delivered %d packets, want 1", len(out))
	}
	if len(out[0].Payload) != len(orig.Payload) {
		t.Fatalf("corruption changed payload length %d -> %d", len(orig.Payload), len(out[0].Payload))
	}
	diff := 0
	for i := range orig.Payload {
		if orig.Payload[i] != out[0].Payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corruption changed %d bytes, want exactly 1", diff)
	}
	if c.Faults() != 1 {
		t.Errorf("Faults() = %d, want 1", c.Faults())
	}
	// The original packet must not be mutated in place.
	if !bytes.Equal(orig.Payload, []byte{0, 1, 2, 3}) {
		t.Error("corrupter mutated the input packet")
	}
}

func TestCorrupterSkipsEmptyPayload(t *testing.T) {
	c := NewCorrupter(0, 1.0, 3)
	out := c.Intercept(Downlink, nas.Packet{Header: nas.HeaderPlain})
	if len(out) != 1 || c.Faults() != 0 {
		t.Errorf("empty payload should pass untouched: %d delivered, %d faults", len(out), c.Faults())
	}
}

func TestDuplicatorDelivers(t *testing.T) {
	d := NewDuplicator(0, 1.0, 9)
	out := d.Intercept(Uplink, mkPackets(1)[0])
	if len(out) != 2 {
		t.Fatalf("p=1.0 duplicator delivered %d packets, want 2", len(out))
	}
	if !bytes.Equal(out[0].Payload, out[1].Payload) {
		t.Error("duplicate differs from original")
	}
}

func TestReordererSwapsAdjacentPackets(t *testing.T) {
	r := NewReorderer(0, 1.0, 5)
	pkts := mkPackets(2)
	first := r.Intercept(Downlink, pkts[0])
	if len(first) != 0 {
		t.Fatalf("p=1.0 reorderer should hold the first packet, delivered %d", len(first))
	}
	second := r.Intercept(Downlink, pkts[1])
	if len(second) != 2 || second[0].Seq != 1 || second[1].Seq != 0 {
		t.Fatalf("expected swapped delivery [1 0], got %v", seqs(second))
	}
	if r.Faults() != 1 {
		t.Errorf("Faults() = %d, want 1", r.Faults())
	}
}

func seqs(pkts []nas.Packet) []uint8 {
	out := make([]uint8, len(pkts))
	for i, p := range pkts {
		out[i] = p.Seq
	}
	return out
}

func TestScheduledFault(t *testing.T) {
	s := &ScheduledFault{Schedule: map[int]FaultOp{
		1: OpDrop,
		2: OpCorrupt,
		3: OpDup,
	}}
	pkts := mkPackets(5)
	var delivered [][]nas.Packet
	for _, p := range pkts {
		delivered = append(delivered, s.Intercept(Downlink, p))
	}
	if len(delivered[0]) != 1 {
		t.Error("step 0 (unscheduled) should pass")
	}
	if len(delivered[1]) != 0 {
		t.Error("step 1 should drop")
	}
	if len(delivered[2]) != 1 || bytes.Equal(delivered[2][0].Payload, pkts[2].Payload) {
		t.Error("step 2 should corrupt the payload")
	}
	if len(delivered[3]) != 2 {
		t.Error("step 3 should duplicate")
	}
	if len(delivered[4]) != 1 {
		t.Error("step 4 (unscheduled) should pass")
	}
	if s.Faults() != 3 {
		t.Errorf("Faults() = %d, want 3", s.Faults())
	}
}

func TestChainComposesAndCounts(t *testing.T) {
	ch := &Chain{Stages: []Adversary{
		NewDuplicator(0, 1.0, 1),
		NewProbDrop(0, 0.0, 2), // never drops: both duplicates survive
	}}
	out := ch.Intercept(Downlink, mkPackets(1)[0])
	if len(out) != 2 {
		t.Fatalf("chain delivered %d packets, want 2", len(out))
	}
	if got := Faults(ch); got != 1 {
		t.Errorf("Faults(chain) = %d, want 1", got)
	}
	// A dropping tail stage suppresses everything.
	ch.Stages[1] = NewProbDrop(0, 1.0, 2)
	if out := ch.Intercept(Downlink, mkPackets(1)[0]); len(out) != 0 {
		t.Errorf("chain with p=1.0 tail dropper delivered %d packets", len(out))
	}
}

func TestFaultConfigBuildDeterminism(t *testing.T) {
	cfg := FaultConfig{Seed: 42, Drop: 0.2, Corrupt: 0.2, Duplicate: 0.1, Reorder: 0.1}
	pkts := mkPackets(300)
	a := runThrough(cfg.Build(), pkts)
	b := runThrough(cfg.Build(), pkts)
	if a != b {
		t.Error("equal configs produced different fault transcripts")
	}
	cfg2 := cfg
	cfg2.Seed = 43
	if a == runThrough(cfg2.Build(), pkts) {
		t.Error("different seeds produced identical transcripts (suspicious)")
	}
}

func TestFaultConfigFactoryPerCaseSeeds(t *testing.T) {
	cfg := FaultConfig{Seed: 10, Drop: 0.5}
	f := cfg.AdversaryFactory()
	pkts := mkPackets(100)
	if runThrough(f(0), pkts) != runThrough(f(0), pkts) {
		t.Error("factory not deterministic per case index")
	}
	if runThrough(f(0), pkts) == runThrough(f(1), pkts) {
		t.Error("distinct case indexes share fault decisions (suspicious)")
	}
}

func TestParseFaultSpec(t *testing.T) {
	cfg, err := ParseFaultSpec("drop=0.05, corrupt=0.02,dup=0.01,reorder=0.1", 99)
	if err != nil {
		t.Fatalf("ParseFaultSpec: %v", err)
	}
	want := FaultConfig{Seed: 99, Drop: 0.05, Corrupt: 0.02, Duplicate: 0.01, Reorder: 0.1}
	if cfg != want {
		t.Errorf("parsed %+v, want %+v", cfg, want)
	}
	if !cfg.Enabled() {
		t.Error("parsed config should be enabled")
	}
	if empty, err := ParseFaultSpec("", 1); err != nil || empty.Enabled() {
		t.Errorf("empty spec: cfg=%+v err=%v", empty, err)
	}
	for _, bad := range []string{"drop", "drop=x", "drop=1.5", "teleport=0.1"} {
		if _, err := ParseFaultSpec(bad, 1); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestFaultAdversariesSlotIntoPair(t *testing.T) {
	// The decorators must satisfy Adversary so Pair accepts them
	// unchanged; a p=1.0 dropper counts as Pair-level drops too.
	pair := NewPair(NewProbDrop(0, 1.0, 4))
	pair.Send(Downlink, mkPackets(1)[0])
	if pair.Pending(Downlink) != 0 {
		t.Error("dropped packet still queued")
	}
	if pair.Dropped(Downlink) != 1 {
		t.Errorf("Pair.Dropped = %d, want 1", pair.Dropped(Downlink))
	}
	if len(pair.Captured(Downlink)) != 1 {
		t.Error("capture history should record the packet before the fault")
	}
}
