// The security-context lattice: how much cryptographic context the UE
// side of the model has established at each state. Levels are ordered
//
//	none < identified < authenticated < secured
//
// and transitions raise the level through *evidence*: predicates a
// handler can only have evaluated if the corresponding material exists.
// A mac_valid predicate needs integrity keys (authenticated); a
// count_fresh predicate needs an activated NAS security context with a
// live COUNT (secured); emitting an identity or attach request marks
// the UE as identified. Entering a deregistered-family state drops the
// modelled context.
package dataflow

import (
	"sort"
	"strings"

	"prochecker/internal/core/fsmodel"
	"prochecker/internal/spec"
)

// Level is one rung of the security-context lattice.
type Level int

// The lattice, least to greatest.
const (
	LevelNone Level = iota
	LevelIdentified
	LevelAuthenticated
	LevelSecured
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelIdentified:
		return "identified"
	case LevelAuthenticated:
		return "authenticated"
	case LevelSecured:
		return "secured"
	default:
		return "level(?)"
	}
}

func maxLevel(a, b Level) Level {
	if a > b {
		return a
	}
	return b
}

func minLevel(a, b Level) Level {
	if a < b {
		return a
	}
	return b
}

// deregisteredState reports whether entering s drops the modelled
// security context (the EMM deregistered family, including the
// deregistration-initiated states).
func deregisteredState(s fsmodel.State) bool {
	return strings.Contains(string(s), "DEREG")
}

// predValue returns the value of the named predicate variable on the
// edge's condition, with ok reporting presence.
func predValue(e Edge, v spec.ConditionVar) (string, bool) {
	for _, p := range e.T.Cond.Predicates {
		if p.Var == string(v) {
			return p.Value, true
		}
	}
	return "", false
}

// emits reports whether the edge's actions contain m.
func emits(e Edge, m spec.MessageName) bool {
	for _, a := range e.T.Actions {
		if a == m {
			return true
		}
	}
	return false
}

// accepted reports whether the edge processes its trigger — a state
// change or any non-null action — as opposed to discarding it.
func accepted(e Edge) bool {
	if e.T.To != e.T.From {
		return true
	}
	for _, a := range e.T.Actions {
		if a != spec.NullAction {
			return true
		}
	}
	return false
}

// transferLevel is the shared transfer function of both context
// analyses: raise the incoming level by the evidence the transition
// carries, then drop everything when the target state is in the
// deregistered family.
func transferLevel(in Level, e Edge) Level {
	out := in
	if accepted(e) {
		if mv, ok := predValue(e, spec.CondMACValid); ok && mv == "1" {
			// Verifying a MAC needs integrity keys from a completed AKA
			// run; evaluating a NAS COUNT additionally needs an
			// activated security context.
			if _, hasCount := predValue(e, spec.CondCountFresh); hasCount {
				out = maxLevel(out, LevelSecured)
			} else {
				out = maxLevel(out, LevelAuthenticated)
			}
		}
		if emits(e, spec.SecurityModeComplet) {
			if mv, ok := predValue(e, spec.CondMACValid); ok && mv == "1" {
				out = maxLevel(out, LevelSecured)
			}
		}
		if emits(e, spec.AttachRequest) || emits(e, spec.IdentityResponse) {
			out = maxLevel(out, LevelIdentified)
		}
	}
	if deregisteredState(e.T.To) {
		out = LevelNone
	}
	return out
}

// ContextLevels is the result of the security-context analyses over one
// model graph.
type ContextLevels struct {
	// Must is the level every path into the state guarantees (meet over
	// paths); unreachable states sit at LevelNone.
	Must map[fsmodel.State]Level
	// May is the level some path into the state can establish (join
	// over paths).
	May map[fsmodel.State]Level
	// Iterations sums both fixpoints' worklist pops.
	Iterations int
}

// Context runs the security-context analyses over the graph.
func Context(g *Graph) *ContextLevels {
	may := Solve(g, Problem[Level]{
		Name:     "security-context-may",
		Init:     LevelNone,
		Unknown:  LevelNone,
		Join:     maxLevel,
		Equal:    func(a, b Level) bool { return a == b },
		Transfer: transferLevel,
	})
	must := Solve(g, Problem[Level]{
		Name:    "security-context-must",
		Init:    LevelNone,
		Unknown: LevelSecured, // meet identity: top of the lattice
		Join:    minLevel,
		Equal:   func(a, b Level) bool { return a == b },
		Transfer: func(in Level, e Edge) Level {
			return transferLevel(in, e)
		},
	})
	out := &ContextLevels{
		Must:       make(map[fsmodel.State]Level, len(g.states)),
		May:        make(map[fsmodel.State]Level, len(g.states)),
		Iterations: may.Iterations + must.Iterations,
	}
	// Clamp unreachable states to LevelNone in the must map: their
	// fixpoint fact is the vacuous meet identity, and no guarantee
	// holds about a state no path enters.
	reach := reachable(g)
	for _, s := range g.states {
		out.May[s] = may.Facts[s]
		if reach[s] {
			out.Must[s] = must.Facts[s]
		} else {
			out.Must[s] = LevelNone
		}
	}
	return out
}

// PreAuthAcceptances returns transitions that accept a protected-only
// message at a state whose may-level is LevelNone — a state no path can
// ever equip with a security context — and move out of the deregistered
// family on its strength. The UE there cannot have verified the
// message's integrity, so the acceptance trusts an unverifiable claim.
// Discards, rejects and deregistration teardown (targets inside the
// deregistered family) are not reported: refusing or tearing down on an
// unverified message is the correct reaction.
func PreAuthAcceptances(g *Graph, levels *ContextLevels) []fsmodel.Transition {
	var out []fsmodel.Transition
	for _, s := range g.States() {
		if levels.May[s] != LevelNone {
			continue
		}
		for _, e := range g.Out(s) {
			if e.Internal || !accepted(e) || e.T.Cond.Message == "" {
				continue
			}
			if spec.PlainOnAir(e.T.Cond.Message) || deregisteredState(e.T.To) {
				continue
			}
			out = append(out, e.T)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// reachable computes the states reachable from the graph's initial
// state over all edges.
func reachable(g *Graph) map[fsmodel.State]bool {
	seen := map[fsmodel.State]bool{}
	if g.Initial == "" {
		return seen
	}
	seen[g.Initial] = true
	stack := []fsmodel.State{g.Initial}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[s] {
			if !seen[e.T.To] {
				seen[e.T.To] = true
				stack = append(stack, e.T.To)
			}
		}
	}
	return seen
}
