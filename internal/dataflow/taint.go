// The taint/secrecy pass: identity material (the IMSI, the GUTI,
// key-derived authentication responses) tracked from its introduction
// points to transitions that put it on a plaintext channel slot after
// the security context reached the level that makes the plaintext
// emission avoidable — plus the stale-count window, the set of states
// whose security context may derive from a replayed (count_fresh=0)
// acceptance.
package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"prochecker/internal/core/fsmodel"
	"prochecker/internal/spec"
)

// Material names the class of identity material a transition exposes.
type Material string

// The tracked identity material classes.
const (
	MaterialIMSI       Material = "IMSI"
	MaterialGUTI       Material = "GUTI"
	MaterialKeyDerived Material = "key-derived response"
)

// Exposure is one plaintext-identity finding: a transition that emits
// (or applies) identity material over a plaintext channel slot at a
// state where every path has already established a security context.
type Exposure struct {
	// T is the exposing transition.
	T fsmodel.Transition
	// Material is the identity material class involved.
	Material Material
	// Channel is the plaintext slot the material crosses ("chan_ul"
	// for emissions, "chan_dl" for applied plaintext assignments).
	Channel string
	// Level is the must-context level at the transition's source state.
	Level Level
	// Why explains the exposure in one clause.
	Why string
}

// authenticatedFresh reports whether the edge's trigger is integrity
// protected and fresh: mac_valid=1 with no staleness predicate
// (count_fresh=0, sqn_in_range=0, sqn_fresh=0). Acting on such a
// trigger is attributable to the genuine peer; anything weaker is an
// adversary-reachable trigger.
func authenticatedFresh(e Edge) bool {
	mv, ok := predValue(e, spec.CondMACValid)
	if !ok || mv != "1" {
		return false
	}
	for _, v := range []spec.ConditionVar{spec.CondCountFresh, spec.CondSQNInRange, spec.CondSQNFresh} {
		if val, ok := predValue(e, v); ok && val == "0" {
			return false
		}
	}
	return true
}

// Exposures runs the taint pass over the graph: for every transition
// whose trigger is not authenticated-fresh, at a state where the must
// context level is already secured, report identity material the
// transition emits plain-on-air or applies from a plaintext downlink.
// The pre-security baseline (an identity_response or authentication
// exchange before any context exists) is deliberately not reported —
// it is the protocol's own bootstrap, present in every implementation.
func Exposures(g *Graph, levels *ContextLevels) []Exposure {
	var out []Exposure
	for _, s := range g.States() {
		if levels.Must[s] < LevelSecured {
			continue
		}
		for _, e := range g.Out(s) {
			if e.Internal || !accepted(e) || authenticatedFresh(e) {
				continue
			}
			out = append(out, edgeExposures(e, levels.Must[s])...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].T.Key() != out[j].T.Key() {
			return out[i].T.Key() < out[j].T.Key()
		}
		return out[i].Material < out[j].Material
	})
	return out
}

// edgeExposures classifies the identity material one adversary-
// triggerable edge moves across plaintext slots.
func edgeExposures(e Edge, lvl Level) []Exposure {
	var out []Exposure
	trigger := describeTrigger(e)
	// Uplink emissions: identity material in plain-on-air responses.
	if emits(e, spec.IdentityResponse) {
		out = append(out, Exposure{
			T: e.T, Material: MaterialIMSI, Channel: "chan_ul", Level: lvl,
			Why: "identity_response travels plaintext on the uplink, answering " + trigger,
		})
	}
	if emits(e, spec.AuthResponse) {
		out = append(out, Exposure{
			T: e.T, Material: MaterialKeyDerived, Channel: "chan_ul", Level: lvl,
			Why: "authentication_response carries a key-derived RES on the plaintext uplink, answering " + trigger,
		})
	}
	// Downlink applications: a plaintext guti_reallocation_command that
	// is processed assigns identity material that crossed chan_dl in
	// the clear.
	if e.T.Cond.Message == spec.GUTIRealloCommand {
		if ph, ok := predValue(e, spec.CondPlainHeader); ok && ph == "1" {
			out = append(out, Exposure{
				T: e.T, Material: MaterialGUTI, Channel: "chan_dl", Level: lvl,
				Why: "a plaintext guti_reallocation_command is applied, so the new GUTI crossed the downlink in the clear",
			})
		}
	}
	return out
}

// describeTrigger renders the edge's trigger weakness for diagnostics.
func describeTrigger(e Edge) string {
	var weak []string
	if _, ok := predValue(e, spec.CondMACValid); !ok {
		weak = append(weak, "an unauthenticated trigger")
	} else if mv, _ := predValue(e, spec.CondMACValid); mv != "1" {
		weak = append(weak, "a MAC-invalid trigger")
	}
	for _, v := range []spec.ConditionVar{spec.CondCountFresh, spec.CondSQNInRange, spec.CondSQNFresh} {
		if val, ok := predValue(e, v); ok && val == "0" {
			weak = append(weak, string(v)+"=0 (replayable)")
		}
	}
	if len(weak) == 0 {
		weak = append(weak, "an adversary-reachable trigger")
	}
	return strings.Join(weak, ", ")
}

// StaleWindow is the stale-count taint result: the acceptances that
// introduce a replay-derived context and the states whose context may
// derive from one.
type StaleWindow struct {
	// Acceptances are the count_fresh=0 transitions that are processed
	// rather than discarded, in deterministic order.
	Acceptances []fsmodel.Transition
	// Window is the set of states reachable while the context may
	// still derive from a stale acceptance, sorted.
	Window []fsmodel.State
}

// staleAcceptance reports whether the edge processes a trigger with a
// stale NAS COUNT.
func staleAcceptance(e Edge) bool {
	if e.Internal || !accepted(e) {
		return false
	}
	cf, ok := predValue(e, spec.CondCountFresh)
	return ok && cf == "0"
}

// Stale runs the stale-count taint analysis: a boolean may-taint
// introduced at every stale acceptance, cleared by an authenticated-
// fresh count-checked acceptance (the context is re-established from
// live material) and by deregistration (the context is gone).
func Stale(g *Graph) *StaleWindow {
	res := Solve(g, Problem[bool]{
		Name:    "stale-count-window",
		Init:    false,
		Unknown: false,
		Join:    func(a, b bool) bool { return a || b },
		Equal:   func(a, b bool) bool { return a == b },
		Transfer: func(in bool, e Edge) bool {
			if staleAcceptance(e) {
				return true
			}
			if deregisteredState(e.T.To) {
				return false
			}
			if authenticatedFresh(e) {
				if _, hasCount := predValue(e, spec.CondCountFresh); hasCount && accepted(e) {
					return false
				}
			}
			return in
		},
	})
	out := &StaleWindow{}
	for _, s := range g.States() {
		if res.Facts[s] {
			out.Window = append(out.Window, s)
		}
		for _, e := range g.Out(s) {
			if staleAcceptance(e) {
				out.Acceptances = append(out.Acceptances, e.T)
			}
		}
	}
	sort.Slice(out.Acceptances, func(i, j int) bool {
		return out.Acceptances[i].Key() < out.Acceptances[j].Key()
	})
	return out
}

// WindowString renders the window for diagnostics.
func (w *StaleWindow) WindowString() string {
	if len(w.Window) == 0 {
		return "no states"
	}
	parts := make([]string, len(w.Window))
	for i, s := range w.Window {
		parts[i] = string(s)
	}
	return fmt.Sprintf("%d state(s): %s", len(w.Window), strings.Join(parts, ", "))
}
