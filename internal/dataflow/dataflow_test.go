package dataflow

import (
	"reflect"
	"testing"

	"prochecker/internal/core/fsmodel"
	"prochecker/internal/spec"
	"prochecker/internal/ts"
)

// trans builds a transition with a single-message condition, optional
// predicates as var=value pairs, and actions.
func trans(from, to fsmodel.State, msg spec.MessageName, preds map[string]string, actions ...spec.MessageName) fsmodel.Transition {
	t := fsmodel.Transition{
		From:    from,
		To:      to,
		Cond:    fsmodel.Condition{Message: msg},
		Actions: actions,
	}
	for _, k := range sortedKeys(preds) {
		t.Cond.Predicates = append(t.Cond.Predicates, fsmodel.Predicate{Var: k, Value: preds[k]})
	}
	return t
}

func sortedKeys(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// miniFSM models a reduced attach flow:
//
//	DEREG --[identity_request plain / identity_response]--> DEREG   (bootstrap)
//	DEREG --[attach_request internal]--> INIT
//	INIT  --[auth_request mac=1 sqn=1 / auth_response]--> INIT
//	INIT  --[smc mac=1 count=1 / smc_complete]--> REG
//	REG   --[identity_request mac=1 count=1 / identity_response]--> REG
func miniFSM() (*fsmodel.FSM, []fsmodel.Transition) {
	f := fsmodel.New("UE/mini", "DEREG")
	f.AddTransition(trans("DEREG", "DEREG", spec.IdentityRequest,
		map[string]string{string(spec.CondPlainHeader): "1"}, spec.IdentityResponse))
	f.AddTransition(trans("INIT", "INIT", spec.AuthRequest,
		map[string]string{string(spec.CondMACValid): "1", string(spec.CondSQNInRange): "1", string(spec.CondPlainHeader): "1"},
		spec.AuthResponse))
	f.AddTransition(trans("INIT", "REG", spec.SecurityModeCommand,
		map[string]string{string(spec.CondMACValid): "1", string(spec.CondCountFresh): "1"},
		spec.SecurityModeComplet))
	f.AddTransition(trans("REG", "REG", spec.IdentityRequest,
		map[string]string{string(spec.CondMACValid): "1", string(spec.CondCountFresh): "1"},
		spec.IdentityResponse))
	internal := []fsmodel.Transition{
		trans("DEREG", "INIT", spec.InternalEvent, nil, spec.AttachRequest),
	}
	return f, internal
}

func TestSolveDeterministic(t *testing.T) {
	f, internal := miniFSM()
	var first *ContextLevels
	for i := 0; i < 5; i++ {
		g := NewGraph(f, internal)
		got := Context(g)
		if first == nil {
			first = got
			continue
		}
		if got.Iterations != first.Iterations {
			t.Fatalf("run %d: iterations %d, want %d", i, got.Iterations, first.Iterations)
		}
		if !reflect.DeepEqual(got.Must, first.Must) || !reflect.DeepEqual(got.May, first.May) {
			t.Fatalf("run %d: facts diverged", i)
		}
	}
}

func TestContextLevels(t *testing.T) {
	f, internal := miniFSM()
	g := NewGraph(f, internal)
	lv := Context(g)

	wantMust := map[fsmodel.State]Level{
		"DEREG": LevelNone,       // deregistered drops everything
		"INIT":  LevelIdentified, // attach_request emitted on entry
		"REG":   LevelSecured,    // only path runs SMC with count evidence
	}
	for s, want := range wantMust {
		if got := lv.Must[s]; got != want {
			t.Errorf("must[%s] = %v, want %v", s, got, want)
		}
	}
	// May at INIT rises to Secured via the count-checked identity
	// self-loop evidence? No: that loop is at REG. INIT's may level comes
	// from the mac=1 auth exchange: Authenticated.
	if got := lv.May["INIT"]; got != LevelAuthenticated {
		t.Errorf("may[INIT] = %v, want %v", got, LevelAuthenticated)
	}
	if got := lv.May["DEREG"]; got != LevelNone {
		t.Errorf("may[DEREG] = %v, want %v", got, LevelNone)
	}
}

func TestContextUnreachableClamped(t *testing.T) {
	f, internal := miniFSM()
	f.AddState("ORPHAN")
	f.AddTransition(trans("ORPHAN", "ORPHAN", spec.IdentityRequest,
		map[string]string{string(spec.CondMACValid): "1", string(spec.CondCountFresh): "1"},
		spec.IdentityResponse))
	g := NewGraph(f, internal)
	lv := Context(g)
	if got := lv.Must["ORPHAN"]; got != LevelNone {
		t.Errorf("must[ORPHAN] = %v, want %v (unreachable states hold no guarantee)", got, LevelNone)
	}
}

func TestExposuresCleanOnMini(t *testing.T) {
	f, internal := miniFSM()
	g := NewGraph(f, internal)
	lv := Context(g)
	if exp := Exposures(g, lv); len(exp) != 0 {
		t.Fatalf("clean model reported %d exposure(s): %+v", len(exp), exp)
	}
}

func TestExposuresPlainIdentityPostContext(t *testing.T) {
	f, internal := miniFSM()
	// The OAI defect: a plaintext identity_request answered after the
	// context is established.
	f.AddTransition(trans("REG", "REG", spec.IdentityRequest,
		map[string]string{string(spec.CondPlainHeader): "1"}, spec.IdentityResponse))
	// The srsLTE defect shape: a replayed (sqn stale) authentication
	// request answered post-context.
	f.AddTransition(trans("REG", "REG", spec.AuthRequest,
		map[string]string{string(spec.CondMACValid): "1", string(spec.CondSQNInRange): "0", string(spec.CondPlainHeader): "1"},
		spec.AuthResponse))
	g := NewGraph(f, internal)
	lv := Context(g)
	exp := Exposures(g, lv)
	if len(exp) != 2 {
		t.Fatalf("got %d exposure(s), want 2: %+v", len(exp), exp)
	}
	materials := map[Material]bool{}
	for _, e := range exp {
		materials[e.Material] = true
		if e.Level != LevelSecured {
			t.Errorf("exposure %s at level %v, want secured", e.Material, e.Level)
		}
	}
	if !materials[MaterialIMSI] || !materials[MaterialKeyDerived] {
		t.Errorf("materials = %v, want IMSI and key-derived", materials)
	}
}

func TestExposuresPlainGUTIApplication(t *testing.T) {
	f, internal := miniFSM()
	f.AddTransition(trans("REG", "REG", spec.GUTIRealloCommand,
		map[string]string{string(spec.CondPlainHeader): "1"}, spec.GUTIRealloComplete))
	g := NewGraph(f, internal)
	exp := Exposures(g, Context(g))
	if len(exp) != 1 || exp[0].Material != MaterialGUTI || exp[0].Channel != "chan_dl" {
		t.Fatalf("got %+v, want one GUTI/chan_dl exposure", exp)
	}
}

func TestExposuresIgnoreDiscardedTriggers(t *testing.T) {
	f, internal := miniFSM()
	// A conformant model *discards* the plaintext identity request: a
	// self-loop with only a null action must not count as an exposure.
	f.AddTransition(trans("REG", "REG", spec.IdentityRequest,
		map[string]string{string(spec.CondPlainHeader): "1"}, spec.NullAction))
	g := NewGraph(f, internal)
	if exp := Exposures(g, Context(g)); len(exp) != 0 {
		t.Fatalf("discarded trigger reported as exposure: %+v", exp)
	}
}

func TestPreAuthAcceptances(t *testing.T) {
	f, internal := miniFSM()
	g := NewGraph(f, internal)
	if got := PreAuthAcceptances(g, Context(g)); len(got) != 0 {
		t.Fatalf("clean model reported pre-auth acceptances: %v", got)
	}

	// The srsLTE defect shape: a protected-only attach_accept processed
	// at the context-less deregistered state, straight into registration.
	f.AddTransition(trans("DEREG", "REG", spec.AttachAccept,
		map[string]string{string(spec.CondMACValid): "1", string(spec.CondCountFresh): "0"},
		spec.AttachComplete))
	// Teardown on an unverified message is fine: target stays in the
	// deregistered family.
	f.AddTransition(trans("DEREG", "DEREG", spec.SecurityModeCommand,
		map[string]string{string(spec.CondMACValid): "1", string(spec.CondCountFresh): "1"},
		spec.SecurityModeReject))
	g = NewGraph(f, internal)
	got := PreAuthAcceptances(g, Context(g))
	if len(got) != 1 || got[0].Cond.Message != spec.AttachAccept {
		t.Fatalf("got %v, want exactly the attach_accept acceptance", got)
	}
}

func TestStaleWindow(t *testing.T) {
	f, internal := miniFSM()
	f.AddTransition(trans("REG", "REG", spec.AttachAccept,
		map[string]string{string(spec.CondMACValid): "1", string(spec.CondCountFresh): "0"},
		spec.AttachComplete))
	g := NewGraph(f, internal)
	w := Stale(g)
	if len(w.Acceptances) != 1 {
		t.Fatalf("got %d stale acceptance(s), want 1", len(w.Acceptances))
	}
	found := false
	for _, s := range w.Window {
		if s == "REG" {
			found = true
		}
	}
	if !found {
		t.Errorf("window %v does not include REG", w.Window)
	}
	// The deregistered state never sits in the window: deregistration
	// clears the context-derived taint.
	for _, s := range w.Window {
		if s == "DEREG" {
			t.Errorf("window includes DEREG; deregistration must clear the taint")
		}
	}
}

func TestStaleWindowEmptyOnMini(t *testing.T) {
	f, internal := miniFSM()
	g := NewGraph(f, internal)
	w := Stale(g)
	if len(w.Acceptances) != 0 || len(w.Window) != 0 {
		t.Fatalf("clean model has stale window %+v", w)
	}
	if got := w.WindowString(); got != "no states" {
		t.Errorf("WindowString() = %q", got)
	}
}

func miniSystem(t *testing.T) *ts.System {
	t.Helper()
	sys := ts.NewSystem("mini")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(sys.AddVar("ue", "DEREG", "INIT", "REG"))
	must(sys.AddVar("chan", "null", "attach_request", "attach_accept"))
	must(sys.AddRule(ts.Rule{
		Name:    "ue:attach",
		Guard:   ts.Eq{Var: "ue", Value: "DEREG"},
		Assigns: []ts.Assign{{Var: "ue", Value: "INIT"}, {Var: "chan", Value: "attach_request"}},
	}))
	must(sys.AddRule(ts.Rule{
		Name:    "mme:accept",
		Guard:   ts.And{ts.Eq{Var: "ue", Value: "INIT"}, ts.Eq{Var: "chan", Value: "attach_request"}},
		Assigns: []ts.Assign{{Var: "ue", Value: "REG"}, {Var: "chan", Value: "attach_accept"}},
	}))
	must(sys.AddRule(ts.Rule{
		Name:  "dead:never",
		Guard: ts.And{ts.Eq{Var: "ue", Value: "DEREG"}, ts.Eq{Var: "chan", Value: "attach_accept"}},
	}))
	return sys
}

func TestFireableRules(t *testing.T) {
	sys := miniSystem(t)
	r := FireableRules(sys)
	if !r.Fireable["ue:attach"] || !r.Fireable["mme:accept"] {
		t.Fatalf("live rules not fireable: %v", r.Fireable)
	}
	// dead:never needs ue=DEREG while chan=attach_accept. The cartesian
	// abstraction cannot refute that correlation — both values are
	// individually reachable — so it must (soundly) stay fireable.
	if !r.Fireable["dead:never"] {
		t.Fatalf("cartesian abstraction unexpectedly refuted a correlated guard")
	}
	if r.Rules != 3 {
		t.Errorf("Rules = %d, want 3", r.Rules)
	}
	if r.Witness() == "" {
		t.Error("empty witness")
	}
}

func TestFireableRulesRefutesUnreachableValue(t *testing.T) {
	sys := miniSystem(t)
	if err := sys.AddVar("mode", "off", "on"); err != nil {
		t.Fatal(err)
	}
	// No rule ever assigns mode=on, so any guard requiring it is
	// statically unfireable.
	if err := sys.AddRule(ts.Rule{
		Name:  "gated:unreachable",
		Guard: ts.Eq{Var: "mode", Value: "on"},
	}); err != nil {
		t.Fatal(err)
	}
	r := FireableRules(sys)
	if r.Fireable["gated:unreachable"] {
		t.Fatal("rule guarded on an unassigned value reported fireable")
	}
	// Neq and In over the same variable.
	if !condSatisfiable(ts.Neq{Var: "mode", Value: "on"}, map[string]map[string]bool{"mode": {"off": true}}) {
		t.Error("Neq off!=on should be satisfiable")
	}
	if condSatisfiable(ts.Neq{Var: "mode", Value: "off"}, map[string]map[string]bool{"mode": {"off": true}}) {
		t.Error("Neq with singleton matching set should be unsatisfiable")
	}
	if condSatisfiable(ts.In{Var: "mode", Values: []string{"on"}}, map[string]map[string]bool{"mode": {"off": true}}) {
		t.Error("In {on} over {off} should be unsatisfiable")
	}
	if !condSatisfiable(ts.Not{C: ts.Eq{Var: "mode", Value: "off"}}, map[string]map[string]bool{"mode": {"off": true}}) {
		t.Error("Not must stay satisfiable (over-approximation)")
	}
	if !condSatisfiable(nil, nil) || !condSatisfiable(ts.True{}, nil) {
		t.Error("trivial conditions must be satisfiable")
	}
	if condSatisfiable(ts.Or{}, nil) {
		t.Error("empty Or must be unsatisfiable")
	}
}
