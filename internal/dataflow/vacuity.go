// The reachability/vacuity pass: an abstract cartesian reachability
// analysis over the threat-composed transition system. Each variable is
// abstracted to the set of values it can ever hold (seeded from the
// initial assignment); a rule is fireable when its guard is satisfiable
// over those sets, and firing a rule adds its assignments to the sets.
// The fixpoint over-approximates concrete reachability, so a rule the
// analysis marks unfireable can never fire in the concrete system — the
// soundness direction vacuity pruning needs.
package dataflow

import (
	"fmt"
	"sort"

	"prochecker/internal/ts"
)

// RuleReach is the abstract-reachability fixpoint over one system.
type RuleReach struct {
	// Fireable holds the names of rules whose guard is satisfiable over
	// the abstract value sets; any rule absent here can never fire.
	Fireable map[string]bool
	// Values maps each variable to the sorted set of values it can reach.
	Values map[string][]string
	// Rules is the total rule count, for reporting.
	Rules int
	// Iterations counts fixpoint rounds, a termination witness.
	Iterations int
}

// FireableRules runs the abstract reachability fixpoint over sys.
func FireableRules(sys *ts.System) *RuleReach {
	vals := make(map[string]map[string]bool, len(sys.Vars()))
	init := sys.InitialState()
	for _, v := range sys.Vars() {
		vals[v.Name] = map[string]bool{sys.Get(init, v.Name): true}
	}
	rules := sys.Rules()
	out := &RuleReach{
		Fireable: make(map[string]bool, len(rules)),
		Rules:    len(rules),
	}
	for changed := true; changed; {
		changed = false
		out.Iterations++
		for _, r := range rules {
			if !condSatisfiable(r.Guard, vals) {
				continue
			}
			if !out.Fireable[r.Name] {
				out.Fireable[r.Name] = true
				changed = true
			}
			for _, a := range r.Assigns {
				set := vals[a.Var]
				if set == nil {
					set = make(map[string]bool)
					vals[a.Var] = set
				}
				if !set[a.Value] {
					set[a.Value] = true
					changed = true
				}
			}
		}
	}
	out.Values = make(map[string][]string, len(vals))
	for name, set := range vals {
		list := make([]string, 0, len(set))
		for v := range set {
			list = append(list, v)
		}
		sort.Strings(list)
		out.Values[name] = list
	}
	return out
}

// condSatisfiable reports whether c can hold under SOME assignment
// drawn from the per-variable value sets. The check is cartesian (no
// cross-variable correlation), so it over-approximates: true may be
// spurious, false is definitive.
func condSatisfiable(c ts.Cond, vals map[string]map[string]bool) bool {
	switch cc := c.(type) {
	case nil, ts.True:
		return true
	case ts.Eq:
		set, ok := vals[cc.Var]
		if !ok {
			// Unknown variable: Get yields "", so Eq can only hold for the
			// empty value — mirror the interpreter and call it unsatisfiable
			// unless the property literally tests "".
			return cc.Value == ""
		}
		return set[cc.Value]
	case ts.Neq:
		set, ok := vals[cc.Var]
		if !ok {
			return cc.Value != ""
		}
		for v := range set {
			if v != cc.Value {
				return true
			}
		}
		return false
	case ts.In:
		set, ok := vals[cc.Var]
		if !ok {
			return false
		}
		for _, v := range cc.Values {
			if set[v] {
				return true
			}
		}
		return false
	case ts.And:
		for _, sub := range cc {
			if !condSatisfiable(sub, vals) {
				return false
			}
		}
		return true
	case ts.Or:
		for _, sub := range cc {
			if condSatisfiable(sub, vals) {
				return true
			}
		}
		return false
	case ts.Not:
		// Precise refutation of a negation needs must-information the
		// cartesian abstraction lacks; stay sound by assuming satisfiable.
		return true
	default:
		// Unknown condition kinds are assumed satisfiable (sound).
		return true
	}
}

// Witness renders a one-line static witness for reports.
func (r *RuleReach) Witness() string {
	return fmt.Sprintf("abstract reachability: %d of %d rules fireable after %d round(s)",
		len(r.Fireable), r.Rules, r.Iterations)
}
