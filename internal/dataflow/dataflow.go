// Package dataflow is the static-analysis layer over the protocol
// models: a generic forward dataflow framework (worklist fixpoint over
// join-semilattice facts) instantiated over the extracted FSM plus the
// composition environment's UE-internal transitions, and an abstract
// reachability analysis over the threat-composed transition system.
//
// Three concrete analyses ride on the framework:
//
//   - the security-context lattice (none → identified → authenticated →
//     secured), computed both as a must-analysis (the level every path
//     guarantees) and a may-analysis (the level some path can reach);
//   - a taint/secrecy pass tracking identity material (IMSI, GUTI,
//     key-derived responses) to transitions that emit it on a plaintext
//     channel slot after the context reached the level that makes the
//     plaintext emission avoidable, plus the stale-count taint window;
//   - a rule-level reachability pass over ts.System (FireableRules)
//     that under-approximates vacuity: a property whose trigger matches
//     no statically fireable rule holds without exploration.
//
// The lint PC1xx family and the model checker's vacuity pre-pruning are
// both built from these results.
package dataflow

import (
	"sort"

	"prochecker/internal/core/fsmodel"
)

// Edge is one transition of the analysis graph. Internal marks edges
// merged from the composition environment (UE-initiated procedures)
// rather than extracted from the implementation log.
type Edge struct {
	T        fsmodel.Transition
	Internal bool
}

// Graph is the effective control-flow graph the FSM analyses run over:
// the extracted transitions plus the composition's internal ones, with
// deterministic state and edge order.
type Graph struct {
	Initial fsmodel.State
	states  []fsmodel.State
	out     map[fsmodel.State][]Edge
	in      map[fsmodel.State][]Edge
}

// NewGraph assembles the analysis graph from an FSM and the internal
// transitions the composition merges into it.
func NewGraph(fsm *fsmodel.FSM, internal []fsmodel.Transition) *Graph {
	g := &Graph{
		Initial: fsm.Initial,
		out:     make(map[fsmodel.State][]Edge),
		in:      make(map[fsmodel.State][]Edge),
	}
	seen := make(map[fsmodel.State]bool)
	add := func(s fsmodel.State) {
		if s != "" && !seen[s] {
			seen[s] = true
			g.states = append(g.states, s)
		}
	}
	add(fsm.Initial)
	for _, s := range fsm.States() {
		add(s)
	}
	addEdge := func(e Edge) {
		add(e.T.From)
		add(e.T.To)
		g.out[e.T.From] = append(g.out[e.T.From], e)
		g.in[e.T.To] = append(g.in[e.T.To], e)
	}
	for _, tr := range fsm.Transitions() {
		addEdge(Edge{T: tr})
	}
	for _, tr := range internal {
		addEdge(Edge{T: tr, Internal: true})
	}
	sort.Slice(g.states, func(i, j int) bool { return g.states[i] < g.states[j] })
	return g
}

// States returns the node set in sorted order.
func (g *Graph) States() []fsmodel.State { return g.states }

// Out returns the edges leaving s, FSM edges first in insertion order.
func (g *Graph) Out(s fsmodel.State) []Edge { return g.out[s] }

// In returns the edges entering s.
func (g *Graph) In(s fsmodel.State) []Edge { return g.in[s] }

// Problem is one forward dataflow instance over a Graph. Facts form a
// join-semilattice under Join with identity Unknown; Init seeds the
// initial state. Transfer maps the fact at an edge's source through the
// edge. The framework computes the least fixpoint of
//
//	fact(s) = Join(seed(s), Join over e∈In(s) of Transfer(fact(e.From), e))
//
// where seed(initial) = Init and seed(s) = Unknown elsewhere.
type Problem[F any] struct {
	// Name labels the analysis in diagnostics.
	Name string
	// Init is the fact at the graph's initial state.
	Init F
	// Unknown is Join's identity: the fact of a state no path has
	// reached yet.
	Unknown F
	// Join combines facts flowing into the same state. It must be
	// commutative, associative and idempotent.
	Join func(a, b F) F
	// Equal detects the fixpoint.
	Equal func(a, b F) bool
	// Transfer propagates a fact across one edge.
	Transfer func(in F, e Edge) F
}

// Result carries the per-state fixpoint facts.
type Result[F any] struct {
	Facts map[fsmodel.State]F
	// Iterations counts worklist pops until the fixpoint, a determinism
	// and termination witness for tests.
	Iterations int
}

// Solve runs the worklist fixpoint. Iteration order is deterministic:
// states enter the worklist in sorted order and re-enter at the tail
// exactly once while dirty, so equal inputs yield equal iteration
// counts and equal results.
func Solve[F any](g *Graph, p Problem[F]) *Result[F] {
	facts := make(map[fsmodel.State]F, len(g.states))
	for _, s := range g.states {
		if s == g.Initial {
			facts[s] = p.Init
		} else {
			facts[s] = p.Unknown
		}
	}
	queued := make(map[fsmodel.State]bool, len(g.states))
	var work []fsmodel.State
	for _, s := range g.states {
		work = append(work, s)
		queued[s] = true
	}
	res := &Result[F]{}
	for len(work) > 0 {
		s := work[0]
		work = work[1:]
		queued[s] = false
		res.Iterations++
		cur := facts[s]
		for _, e := range g.in[s] {
			cur = p.Join(cur, p.Transfer(facts[e.T.From], e))
		}
		if p.Equal(cur, facts[s]) {
			continue
		}
		facts[s] = cur
		for _, e := range g.out[s] {
			if !queued[e.T.To] {
				queued[e.T.To] = true
				work = append(work, e.T.To)
			}
		}
	}
	res.Facts = facts
	return res
}
