package security

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testKey(seed string) Key { return KeyFromBytes([]byte(seed)) }

func TestDeriveDeterministicAndDistinct(t *testing.T) {
	k := testKey("subscriber-k")
	a := k.Derive("CK", []byte{1, 2, 3})
	b := k.Derive("CK", []byte{1, 2, 3})
	c := k.Derive("IK", []byte{1, 2, 3})
	d := k.Derive("CK", []byte{1, 2, 4})
	if a != b {
		t.Error("same label+ctx produced different keys")
	}
	if a == c {
		t.Error("different labels produced same key")
	}
	if a == d {
		t.Error("different ctx produced same key")
	}
}

func TestDeriveHierarchyStable(t *testing.T) {
	k := testKey("k")
	h1 := DeriveHierarchy(k, []byte("rand-1"))
	h2 := DeriveHierarchy(k, []byte("rand-1"))
	h3 := DeriveHierarchy(k, []byte("rand-2"))
	if h1 != h2 {
		t.Error("hierarchy derivation not deterministic")
	}
	if h1.KASME == h3.KASME {
		t.Error("different RAND produced same KASME")
	}
	if h1.KNASint == h1.KNASenc {
		t.Error("integrity and ciphering keys collide")
	}
}

func TestNASMACRoundTrip(t *testing.T) {
	k := testKey("int")
	msg := []byte("attach_accept payload")
	mac := NASMAC(k, 7, 1, msg)
	if !VerifyNASMAC(k, 7, 1, msg, mac) {
		t.Error("valid MAC rejected")
	}
	tests := []struct {
		name  string
		count uint32
		dir   uint8
		msg   []byte
	}{
		{"wrong count", 8, 1, msg},
		{"wrong direction", 7, 0, msg},
		{"tampered message", 7, 1, []byte("attach_accept payloaD")},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if VerifyNASMAC(k, tt.count, tt.dir, tt.msg, mac) {
				t.Error("invalid MAC accepted")
			}
		})
	}
}

func TestNASMACWrongKeyRejected(t *testing.T) {
	msg := []byte("m")
	mac := NASMAC(testKey("a"), 0, 0, msg)
	if VerifyNASMAC(testKey("b"), 0, 0, msg, mac) {
		t.Error("MAC verified under wrong key")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	k := testKey("enc")
	msg := []byte("secret NAS payload with some length to cross block boundaries....")
	ct, err := Encrypt(k, 3, 0, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if bytes.Equal(ct, msg) {
		t.Error("ciphertext equals plaintext")
	}
	pt, err := Decrypt(k, 3, 0, ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !bytes.Equal(pt, msg) {
		t.Errorf("round trip = %q, want %q", pt, msg)
	}
}

func TestDecryptWrongParamsGarbles(t *testing.T) {
	k := testKey("enc")
	msg := []byte("payload")
	ct, err := Encrypt(k, 3, 0, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	pt, err := Decrypt(k, 4, 0, ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if bytes.Equal(pt, msg) {
		t.Error("decrypt with wrong count still recovered plaintext")
	}
}

func TestEncryptPropertyRoundTrip(t *testing.T) {
	k := testKey("quick")
	prop := func(msg []byte, count uint32, dir bool) bool {
		d := uint8(0)
		if dir {
			d = 1
		}
		ct, err := Encrypt(k, count, d, msg)
		if err != nil {
			return false
		}
		pt, err := Decrypt(k, count, d, ct)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorVerifies(t *testing.T) {
	k := testKey("usim-k")
	var rand [RANDSize]byte
	copy(rand[:], "0123456789abcdef")
	v := GenerateVector(k, rand, 42)

	sqn, err := OpenAUTN(k, rand, v.AUTN)
	if err != nil {
		t.Fatalf("OpenAUTN: %v", err)
	}
	if sqn != 42 {
		t.Errorf("recovered SQN = %d, want 42", sqn)
	}
	if got := F2(k, rand[:]); got != v.XRES {
		t.Error("XRES does not match F2 recomputation")
	}
}

func TestOpenAUTNWrongKey(t *testing.T) {
	var rand [RANDSize]byte
	v := GenerateVector(testKey("right"), rand, 1)
	if _, err := OpenAUTN(testKey("wrong"), rand, v.AUTN); err == nil {
		t.Error("AUTN verified under wrong key")
	}
}

func TestOpenAUTNTamperedMAC(t *testing.T) {
	k := testKey("k")
	var rand [RANDSize]byte
	v := GenerateVector(k, rand, 9)
	v.AUTN[AUTNSize-1] ^= 0xff
	if _, err := OpenAUTN(k, rand, v.AUTN); err == nil {
		t.Error("tampered AUTN accepted")
	}
}

func TestAUTNConcealsSQN(t *testing.T) {
	// Two vectors for different SQNs under the same RAND must differ, but
	// the SQN must not appear in the clear (it is XORed with AK).
	k := testKey("k")
	var rand [RANDSize]byte
	v1 := GenerateVector(k, rand, 5)
	v2 := GenerateVector(k, rand, 6)
	if v1.AUTN == v2.AUTN {
		t.Error("different SQNs produced identical AUTN")
	}
	var plain [8]byte
	plain[7] = 5
	if bytes.Contains(v1.AUTN[:AKSize], plain[5:]) {
		t.Error("SQN appears unconcealed in AUTN")
	}
}

func TestAUTSRoundTrip(t *testing.T) {
	k := testKey("k")
	var rand [RANDSize]byte
	copy(rand[:], "fedcba9876543210")
	auts := GenerateAUTS(k, rand, 77)
	sqnMS, err := OpenAUTS(k, rand, auts)
	if err != nil {
		t.Fatalf("OpenAUTS: %v", err)
	}
	if sqnMS != 77 {
		t.Errorf("recovered SQN_MS = %d, want 77", sqnMS)
	}
}

func TestAUTSWrongKeyRejected(t *testing.T) {
	var rand [RANDSize]byte
	auts := GenerateAUTS(testKey("a"), rand, 1)
	if _, err := OpenAUTS(testKey("b"), rand, auts); err == nil {
		t.Error("AUTS verified under wrong key")
	}
}

func TestVectorPropertySQNRoundTrip(t *testing.T) {
	k := testKey("prop")
	prop := func(seed [RANDSize]byte, sqn uint32) bool {
		v := GenerateVector(k, seed, uint64(sqn))
		got, err := OpenAUTN(k, seed, v.AUTN)
		return err == nil && got == uint64(sqn)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKeyFromBytesShortSeedOK(t *testing.T) {
	a := KeyFromBytes([]byte("x"))
	b := KeyFromBytes([]byte("y"))
	if a == b {
		t.Error("distinct seeds produced same key")
	}
}
