// Package security implements the cryptographic substrate of the 4G LTE
// NAS layer used by the in-repo UE and MME implementations: the EPS key
// hierarchy (K -> CK/IK -> K_ASME -> NAS keys), an EIA-style integrity
// algorithm (HMAC-SHA-256 truncated to 32 bits, standing in for
// 128-EIA2), an EEA-style ciphering algorithm (AES-CTR, standing in for
// 128-EEA2), and MILENAGE-like f1..f5* authentication functions.
//
// The algorithms are functionally faithful stand-ins: the paper's analysis
// never depends on the concrete ciphers, only on the Dolev-Yao contract
// that MACs are unforgeable without the key and ciphertext is opaque
// without the key.
package security

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// KeySize is the byte length of every key in the simulated hierarchy.
const KeySize = 32

// MACSize is the byte length of the NAS message authentication code
// (4 bytes, as in 128-EIA2).
const MACSize = 4

// Key is a symmetric key in the EPS key hierarchy.
type Key [KeySize]byte

// ErrShortKeyMaterial is returned when provided key material is too short
// to derive a Key.
var ErrShortKeyMaterial = errors.New("security: key material shorter than KeySize")

// KeyFromBytes builds a Key from arbitrary-length material by hashing it,
// so test fixtures can use short human-readable seeds.
func KeyFromBytes(material []byte) Key {
	return Key(sha256.Sum256(material))
}

// Derive computes a child key from k using a labelled KDF
// (HMAC-SHA-256(k, label || ctx)), mirroring the TS 33.401 KDF structure.
func (k Key) Derive(label string, ctx []byte) Key {
	mac := hmac.New(sha256.New, k[:])
	mac.Write([]byte(label))
	mac.Write(ctx)
	var out Key
	copy(out[:], mac.Sum(nil))
	return out
}

// Hierarchy holds the derived key set for one EPS security context.
type Hierarchy struct {
	KASME   Key // anchor key derived from CK/IK
	KNASint Key // NAS integrity key
	KNASenc Key // NAS ciphering key
}

// DeriveHierarchy derives the EPS key hierarchy from the permanent key K
// and the authentication RAND, following the K -> CK/IK -> K_ASME -> NAS
// keys chain of TS 33.401.
func DeriveHierarchy(k Key, rand []byte) Hierarchy {
	ck := k.Derive("CK", rand)
	ik := k.Derive("IK", rand)
	kasme := ck.Derive("KASME", ik[:])
	return Hierarchy{
		KASME:   kasme,
		KNASint: kasme.Derive("NAS-int", nil),
		KNASenc: kasme.Derive("NAS-enc", nil),
	}
}

// NASMAC computes the 4-byte NAS integrity MAC over msg bound to the given
// NAS COUNT and direction (0 = uplink, 1 = downlink), like 128-EIA2.
func NASMAC(kint Key, count uint32, direction uint8, msg []byte) [MACSize]byte {
	mac := hmac.New(sha256.New, kint[:])
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], count)
	hdr[4] = direction
	mac.Write(hdr[:])
	mac.Write(msg)
	var out [MACSize]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// VerifyNASMAC reports whether got is the correct MAC for msg under kint,
// count and direction. Comparison is constant time.
func VerifyNASMAC(kint Key, count uint32, direction uint8, msg []byte, got [MACSize]byte) bool {
	want := NASMAC(kint, count, direction, msg)
	return hmac.Equal(want[:], got[:])
}

// Encrypt ciphers msg with AES-CTR keyed by kenc, with the counter block
// bound to the NAS COUNT and direction (128-EEA2 structure). Encryption is
// its own inverse with the same parameters.
func Encrypt(kenc Key, count uint32, direction uint8, msg []byte) ([]byte, error) {
	block, err := aes.NewCipher(kenc[:16])
	if err != nil {
		return nil, fmt.Errorf("security: building cipher: %w", err)
	}
	var iv [aes.BlockSize]byte
	binary.BigEndian.PutUint32(iv[:4], count)
	iv[4] = direction
	stream := cipher.NewCTR(block, iv[:])
	out := make([]byte, len(msg))
	stream.XORKeyStream(out, msg)
	return out, nil
}

// Decrypt reverses Encrypt with the same parameters.
func Decrypt(kenc Key, count uint32, direction uint8, ct []byte) ([]byte, error) {
	return Encrypt(kenc, count, direction, ct)
}

// AKA vector field sizes.
const (
	RANDSize = 16
	RESSize  = 8
	AUTNSize = 16
	AKSize   = 6
	AMFSize  = 2
	MACASize = 8
)

// Vector is an EPS authentication vector as produced by the home network's
// f1..f5 functions for a given RAND and SQN.
type Vector struct {
	RAND [RANDSize]byte
	AUTN [AUTNSize]byte // (SQN xor AK) || AMF || MAC-A
	XRES [RESSize]byte
}

// f computes a labelled PRF output of the given size, the common core of
// the MILENAGE-like f1..f5* stand-ins.
func f(k Key, label string, rand []byte, extra []byte, size int) []byte {
	mac := hmac.New(sha256.New, k[:])
	mac.Write([]byte(label))
	mac.Write(rand)
	mac.Write(extra)
	return mac.Sum(nil)[:size]
}

// F1 is the network authentication function: MAC-A over (SQN, RAND, AMF).
func F1(k Key, rand []byte, sqn uint64, amf [AMFSize]byte) [MACASize]byte {
	var sqnb [8]byte
	binary.BigEndian.PutUint64(sqnb[:], sqn)
	var out [MACASize]byte
	copy(out[:], f(k, "f1", rand, append(sqnb[:], amf[:]...), MACASize))
	return out
}

// F2 is the response function: RES/XRES.
func F2(k Key, rand []byte) [RESSize]byte {
	var out [RESSize]byte
	copy(out[:], f(k, "f2", rand, nil, RESSize))
	return out
}

// F5 is the anonymity-key function used to conceal SQN inside AUTN.
func F5(k Key, rand []byte) [AKSize]byte {
	var out [AKSize]byte
	copy(out[:], f(k, "f5", rand, nil, AKSize))
	return out
}

// F1Star is the resynchronisation MAC function (MAC-S) used in AUTS.
func F1Star(k Key, rand []byte, sqn uint64) [MACASize]byte {
	var sqnb [8]byte
	binary.BigEndian.PutUint64(sqnb[:], sqn)
	var out [MACASize]byte
	copy(out[:], f(k, "f1*", rand, sqnb[:], MACASize))
	return out
}

// F5Star is the resynchronisation anonymity-key function.
func F5Star(k Key, rand []byte) [AKSize]byte {
	var out [AKSize]byte
	copy(out[:], f(k, "f5*", rand, nil, AKSize))
	return out
}

// GenerateVector builds an authentication vector for the subscriber key k,
// challenge rand and sequence number sqn (48-bit), as the HSS/MME does.
func GenerateVector(k Key, rand [RANDSize]byte, sqn uint64) Vector {
	amf := [AMFSize]byte{0x80, 0x00}
	maca := F1(k, rand[:], sqn, amf)
	ak := F5(k, rand[:])

	var v Vector
	v.RAND = rand
	v.XRES = F2(k, rand[:])
	// AUTN = (SQN xor AK)(6) || AMF(2) || MAC-A(8)
	var sqnb [8]byte
	binary.BigEndian.PutUint64(sqnb[:], sqn)
	for i := 0; i < AKSize; i++ {
		v.AUTN[i] = sqnb[2+i] ^ ak[i]
	}
	copy(v.AUTN[AKSize:AKSize+AMFSize], amf[:])
	copy(v.AUTN[AKSize+AMFSize:], maca[:])
	return v
}

// OpenAUTN verifies AUTN against k and rand, returning the concealed SQN.
// It fails with ErrMACMismatch when MAC-A does not verify — the condition
// that makes a UE answer auth_mac_failure.
func OpenAUTN(k Key, rand [RANDSize]byte, autn [AUTNSize]byte) (uint64, error) {
	ak := F5(k, rand[:])
	var sqnb [8]byte
	for i := 0; i < AKSize; i++ {
		sqnb[2+i] = autn[i] ^ ak[i]
	}
	sqn := binary.BigEndian.Uint64(sqnb[:])
	var amf [AMFSize]byte
	copy(amf[:], autn[AKSize:AKSize+AMFSize])
	want := F1(k, rand[:], sqn, amf)
	if !hmac.Equal(want[:], autn[AKSize+AMFSize:]) {
		return 0, ErrMACMismatch
	}
	return sqn, nil
}

// ErrMACMismatch indicates an AUTN or NAS MAC that fails verification.
var ErrMACMismatch = errors.New("security: MAC mismatch")

// AUTSSize is the byte length of the resynchronisation token.
const AUTSSize = AKSize + MACASize

// GenerateAUTS builds the resynchronisation token the USIM returns in an
// auth_sync_failure: (SQN_MS xor AK*) || MAC-S.
func GenerateAUTS(k Key, rand [RANDSize]byte, sqnMS uint64) [AUTSSize]byte {
	akStar := F5Star(k, rand[:])
	macS := F1Star(k, rand[:], sqnMS)
	var out [AUTSSize]byte
	var sqnb [8]byte
	binary.BigEndian.PutUint64(sqnb[:], sqnMS)
	for i := 0; i < AKSize; i++ {
		out[i] = sqnb[2+i] ^ akStar[i]
	}
	copy(out[AKSize:], macS[:])
	return out
}

// OpenAUTS verifies an AUTS token and recovers SQN_MS, as the HSS does
// during resynchronisation.
func OpenAUTS(k Key, rand [RANDSize]byte, auts [AUTSSize]byte) (uint64, error) {
	akStar := F5Star(k, rand[:])
	var sqnb [8]byte
	for i := 0; i < AKSize; i++ {
		sqnb[2+i] = auts[i] ^ akStar[i]
	}
	sqnMS := binary.BigEndian.Uint64(sqnb[:])
	want := F1Star(k, rand[:], sqnMS)
	if !hmac.Equal(want[:], auts[AKSize:]) {
		return 0, ErrMACMismatch
	}
	return sqnMS, nil
}
